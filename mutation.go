package kplist

// The dynamic-graph surface: edge mutations against a live Session. Apply
// threads a mutation batch through the incremental clique-delta engine
// (internal/graph.DynGraph, DESIGN.md §9) and then invalidates only the
// cached results whose listings the batch actually changed — decided per
// cached clique size by re-enumerating locally around the touched edges,
// never by flushing the whole cache.

import (
	"context"

	"kplist/internal/graph"
)

// Mutation is one edge-level change; see AddEdgeMutation/DelEdgeMutation.
// Within a batch, mutations apply in order and the last op per edge wins.
type Mutation = graph.Mutation

// MutOp is a mutation kind.
type MutOp = graph.MutOp

// Mutation kinds.
const (
	// MutAdd inserts an edge (a no-op if present).
	MutAdd = graph.MutAdd
	// MutDel removes an edge (a no-op if absent).
	MutDel = graph.MutDel
)

// AddEdgeMutation builds an insert mutation for {u, v}.
func AddEdgeMutation(u, v V) Mutation {
	return Mutation{Op: MutAdd, Edge: Edge{U: u, V: v}.Canon()}
}

// DelEdgeMutation builds a delete mutation for {u, v}.
func DelEdgeMutation(u, v V) Mutation {
	return Mutation{Op: MutDel, Edge: Edge{U: u, V: v}.Canon()}
}

// ApplyResult describes the effect of one Session.Apply.
type ApplyResult struct {
	// AddedEdges and RemovedEdges count the effective edge changes: a
	// batch that inserts a present edge or deletes an absent one counts
	// nothing, so the numbers depend only on the initial and final edge
	// sets.
	AddedEdges   int `json:"addedEdges"`
	RemovedEdges int `json:"removedEdges"`
	// Touched is the sorted vertex cover of the effective edges — every
	// clique the batch created or destroyed contains one of these.
	Touched []V `json:"touched,omitempty"`
	// Rebuilt reports that the batch exceeded the incremental engine's
	// density threshold and invalidation fell back to a full cache flush.
	Rebuilt bool `json:"rebuilt"`
	// InvalidatedResults and InvalidatedTruths count the cached query
	// results and ground-truth memos the batch dropped; cached listings
	// the batch provably did not change are retained (their round bills
	// describe the pre-apply prefix — exact listings, historical costs).
	InvalidatedResults int `json:"invalidatedResults"`
	InvalidatedTruths  int `json:"invalidatedTruths"`
	// N and M describe the post-apply graph; Graph is its immutable
	// snapshot (the value Session.Graph now returns).
	N     int    `json:"n"`
	M     int    `json:"m"`
	Graph *Graph `json:"-"`
}

// SetMutationHook installs (or, with nil, removes) a commit hook on the
// session's mutation path: Apply hands it each batch's effective
// mutations (canonical, deduplicated, deletions before insertions) after
// validation and before anything changes. A hook error aborts the Apply
// with the graph untouched — this is the durability barrier kplistd uses
// to make the write-ahead log never lag the served state. No-op batches
// never reach the hook.
func (s *Session) SetMutationHook(h func([]Mutation) error) {
	s.applyMu.Lock()
	s.mutHook = h
	s.applyMu.Unlock()
}

// Apply applies a batch of edge mutations to the session's graph and
// returns what changed. The whole batch validates first — one bad
// mutation (endpoint outside [0, N), self-loop, unknown op) rejects it
// with ErrInvalidMutation and nothing changes. Mutators serialize;
// queries keep serving concurrently, each against exactly one linearized
// prefix of the mutation history: a query in flight when Apply lands
// answers for the pre-apply graph, queries arriving after Apply returns
// see the post-apply graph.
//
// Cache invalidation is selective. For each cached clique size p the
// engine checks whether any removed edge supported a p-clique (in the old
// graph) or any inserted edge completes one (in the new graph) — a local
// frontier enumeration, independent of the total clique population — and
// only affected entries are dropped. Batches past the density threshold
// skip the per-size analysis and flush everything (ApplyResult.Rebuilt).
func (s *Session) Apply(ctx context.Context, muts []Mutation) (*ApplyResult, error) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrSessionClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	old := s.state.Load()
	if s.dyn == nil {
		s.dyn = graph.NewDynGraph(old.g, graph.DynConfig{})
	}
	s.dyn.SetCommitHook(s.mutHook)
	delta, err := s.dyn.ApplyBatch(muts)
	if err != nil {
		return nil, err
	}
	res := &ApplyResult{
		AddedEdges:   len(delta.AddedEdges),
		RemovedEdges: len(delta.RemovedEdges),
		Touched:      delta.Touched,
		Rebuilt:      delta.Rebuilt,
	}
	if delta.Effective() == 0 {
		res.Graph, res.N, res.M = old.g, old.g.N(), old.g.M()
		return res, nil
	}
	newG := s.dyn.Snapshot()
	next := &sessionState{g: newG, degen: newG.Degeneracy()}

	// Decide, per clique size currently cached or memoized, whether the
	// batch changed that listing. The existence checks enumerate around
	// the frontier only, and run outside every lock.
	ps := make(map[int]bool)
	s.mu.Lock()
	for key := range s.entries {
		ps[key.P] = true
	}
	s.mu.Unlock()
	s.gtMu.Lock()
	for p := range s.gt {
		ps[p] = true
	}
	s.gtMu.Unlock()
	affected := make(map[int]bool, len(ps))
	for p := range ps {
		affected[p] = listingAffected(old.g, newG, delta, p)
	}

	// Swap the state and drop the affected entries in one critical
	// section: queries observe either (old state, entry intact) or (new
	// state, entry gone), never a stale entry after the swap. Entries for
	// sizes cached after the analysis snapshot are dropped conservatively.
	s.mu.Lock()
	s.state.Store(next)
	for key := range s.entries {
		if aff, known := affected[key.P]; !known || aff {
			delete(s.entries, key)
			res.InvalidatedResults++
		}
	}
	s.stats.Unique = len(s.entries)
	s.gtMu.Lock()
	for p, e := range s.gt {
		if aff, known := affected[p]; !known || aff {
			delete(s.gt, p)
			res.InvalidatedTruths++
		} else {
			// The p-listing provably did not change, so the memo stays
			// valid for the new snapshot — re-key it (the compute
			// goroutine never touches e.g, and e.g is only read under
			// gtMu) so post-apply lookups keep hitting.
			e.g = newG
		}
	}
	s.gtMu.Unlock()
	s.mu.Unlock()

	// Fold the batch into the maintained clique sketches: pure insertions
	// inscribe incrementally, deletions mark stale (estimate.go).
	s.maintainSketches(old.g, newG, delta)

	res.Graph, res.N, res.M = newG, newG.N(), newG.M()
	return res, nil
}

// listingAffected reports whether the batch described by delta changes
// the p-clique listing: exactly when some removed edge lay in a p-clique
// of the old graph or some inserted edge lies in one of the new graph.
func listingAffected(oldG, newG *Graph, delta *graph.Delta, p int) bool {
	if delta.Rebuilt {
		return true
	}
	switch {
	case p <= 1:
		return false // vertex listings don't see edges
	case p == 2:
		return delta.Effective() > 0
	}
	for _, e := range delta.RemovedEdges {
		if oldG.HasCliqueThroughEdge(e, p) {
			return true
		}
	}
	for _, e := range delta.AddedEdges {
		if newG.HasCliqueThroughEdge(e, p) {
			return true
		}
	}
	return false
}
