package kplist

// The durable-store surface: snapshot files, per-graph write-ahead logs,
// and crash recovery. A Graph serializes to an immutable snapshot file
// (versioned header, checksummed sections, flat little-endian arrays)
// that OpenGraphSnapshot serves straight off a read-only memory mapping —
// including the clique-enumeration kernel's CSR, so a reloaded graph
// lists cliques without re-deriving anything. GraphStore adds the WAL and
// compaction on top; kplistd's -data-dir persistence is built from these
// pieces. See DESIGN.md §10 for the formats and the recovery sequence.

import "kplist/internal/graph"

// GraphSnapshot is an opened snapshot file serving an immutable Graph
// directly off its memory mapping.
type GraphSnapshot = graph.GraphSnapshot

// GraphStore is one graph's durable backing: a snapshot file plus a WAL
// of committed mutation batches, with compaction and crash recovery.
type GraphStore = graph.GraphStore

// StoreConfig tunes a GraphStore (compaction thresholds, fsync policy).
type StoreConfig = graph.StoreConfig

// RecoveryStats describes what OpenGraphStore found on disk and replayed.
type RecoveryStats = graph.RecoveryStats

// WriteGraphSnapshot writes g to path as an immutable snapshot file,
// crash-atomically. The graph's enumeration kernel is forced and stored,
// so opening the file never rebuilds it. epoch tags the WAL sequence
// number the snapshot covers through (0 for a standalone snapshot).
func WriteGraphSnapshot(path string, g *Graph, epoch uint64) error {
	return graph.WriteGraphSnapshot(path, g, epoch)
}

// OpenGraphSnapshot memory-maps the snapshot at path, validates every
// checksum, and returns a ready-to-serve Graph whose adjacency and
// enumeration kernel alias the mapping: listings run with zero rebuild
// work. Close the snapshot only after its graph's last use.
func OpenGraphSnapshot(path string) (*GraphSnapshot, error) {
	return graph.OpenGraphSnapshot(path)
}

// CreateGraphStore initializes dir as a durable store holding g: a
// snapshot at epoch 0 plus an empty WAL.
func CreateGraphStore(dir string, g *Graph, cfg StoreConfig) (*GraphStore, error) {
	return graph.CreateGraphStore(dir, g, cfg)
}

// CreateGraphStoreAt is CreateGraphStore with an explicit snapshot epoch:
// the cluster's replica-repair install path seeds a store at the owner's
// applied-batch sequence number so recovery and future WAL appends stay
// aligned with the cluster's numbering.
func CreateGraphStoreAt(dir string, g *Graph, epoch uint64, cfg StoreConfig) (*GraphStore, error) {
	return graph.CreateGraphStoreAt(dir, g, epoch, cfg)
}

// OpenGraphStore recovers the store in dir — newest valid snapshot plus
// WAL-tail replay — returning the store, the recovered graph, and what
// recovery did. The graph reflects exactly the batches the store
// acknowledged before the last shutdown or crash. Unlike
// OpenGraphSnapshot it is heap-owned (the stored kernel is adopted via a
// copy, never re-derived), so it stays valid after the store is closed.
func OpenGraphStore(dir string, cfg StoreConfig) (*GraphStore, *Graph, RecoveryStats, error) {
	return graph.OpenGraphStore(dir, cfg)
}
