package kplist

// The approximate query tier (DESIGN.md §14) at the Session layer: a
// maintained HLL fingerprint of the distinct-clique set per requested
// (p, precision, seed), plus Estimate — the planner-driven entry point
// that answers a clique-count question with the exact kernel, the sketch,
// or edge sampling, always labelling the answer so an estimate can never
// be mistaken for truth.
//
// Sketches follow the ground-truth memo discipline: entries are keyed by
// the graph snapshot pointer they were inscribed from, concurrent first
// requests coalesce, and published sketches are immutable. Mutation
// batches of pure insertions are folded in incrementally (every new
// p-clique contains an added edge, and HLL inscription is idempotent, so
// re-enumerating the frontier around the added edges reproduces the
// from-scratch sketch byte-for-byte); any deletion or rebuild marks the
// sketch stale, and the next request lazily rebuilds it — both paths
// counted in SessionStats.

import (
	"context"
	"fmt"
	"time"

	"kplist/internal/graph"
	"kplist/internal/sketch"
)

// CliqueSketch is the mergeable fixed-size HLL fingerprint of a
// distinct-clique set; see internal/sketch.
type CliqueSketch = sketch.CliqueHLL

// Estimate methods, as reported in EstimateResult.Method and accepted as
// EstimateRequest.Method overrides.
const (
	EstimateExact  = sketch.MethodExact
	EstimateHLL    = sketch.MethodHLL
	EstimateSample = sketch.MethodSample
)

// maxSketchEntries bounds the maintained-sketch map: distinct
// (p, precision, seed) requests are distinct entries, so untrusted query
// streams must not grow it unboundedly. Past the bound, completed entries
// for superseded snapshots are dropped first.
const maxSketchEntries = 16

type sketchKey struct {
	p, precision int
	seed         int64
}

// sketchEntry is one published (or in-flight) sketch build; h is immutable
// once done closes, and g is the snapshot it describes.
type sketchEntry struct {
	done  chan struct{}
	g     *Graph
	h     *sketch.CliqueHLL
	err   error
	stale bool
}

// EstimateRequest asks for an approximate (or budget-checked exact)
// p-clique count.
type EstimateRequest struct {
	// P is the clique size (≥ 3).
	P int
	// Eps is the relative-error target (default 0.05); Conf the two-sided
	// confidence level (default 0.95). Together they size the sketch
	// precision and the adaptive sample count.
	Eps, Conf float64
	// Budget is the per-request cost budget the planner prices the exact
	// kernel against; 0 means unbudgeted (exact wins).
	Budget time.Duration
	// Method, when set to one of the Estimate* constants, bypasses the
	// planner. Empty or "auto" lets it decide.
	Method string
	// Seed drives the sketch hash and the sampling RNG (deterministic
	// replay); Samples, when > 0, fixes the sample count; Precision, when
	// > 0, overrides the eps-derived sketch precision.
	Seed      int64
	Samples   int
	Precision int
}

// EstimateResult is the labelled answer: Exact is true only when the exact
// kernel produced it, in which case CILo = CIHi = Estimate.
type EstimateResult struct {
	P                    int
	Estimate, CILo, CIHi float64
	// Method is which path answered; Exact guards against mistaking an
	// estimate for truth.
	Method string
	Exact  bool
	// Samples is the edge-sample count (sampling only); Precision the
	// sketch precision (HLL only); StaleRebuilt reports the answer forced
	// a lazy rebuild of a deletion-staled sketch.
	Samples      int
	Precision    int
	Eps, Conf    float64
	StaleRebuilt bool
}

func (r EstimateRequest) withDefaults() EstimateRequest {
	if r.Eps <= 0 {
		r.Eps = sketch.DefaultEps
	}
	if !(r.Conf > 0 && r.Conf < 1) {
		r.Conf = sketch.DefaultConf
	}
	if r.Method == "auto" {
		r.Method = ""
	}
	if r.Precision <= 0 {
		r.Precision = sketch.PrecisionForEps(r.Eps, r.Conf)
	}
	return r
}

// Estimate answers a p-clique count question through the planner: exact
// kernel when the modeled cost fits the budget, the maintained sketch when
// one is fresh, edge sampling otherwise. See EstimateRequest/EstimateResult.
func (s *Session) Estimate(ctx context.Context, req EstimateRequest) (*EstimateResult, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrSessionClosed
	}
	if req.P < 3 {
		return nil, fmt.Errorf("%w: estimate requires p ≥ 3, got %d", ErrInvalidQuery, req.P)
	}
	switch req.Method {
	case "", "auto", EstimateExact, EstimateHLL, EstimateSample:
	default:
		return nil, fmt.Errorf("%w: unknown estimate method %q", ErrInvalidQuery, req.Method)
	}
	req = req.withDefaults()
	if req.Precision < sketch.MinPrecision || req.Precision > sketch.MaxPrecision {
		return nil, fmt.Errorf("%w: sketch precision %d outside [%d, %d]",
			ErrInvalidQuery, req.Precision, sketch.MinPrecision, sketch.MaxPrecision)
	}
	st := s.state.Load()
	key := sketchKey{p: req.P, precision: req.Precision, seed: req.Seed}
	dec := sketch.Plan(sketch.PlanInput{
		N: st.g.N(), M: st.g.M(), Degeneracy: st.degen.Degeneracy, P: req.P,
		Budget:         req.Budget,
		HasFreshSketch: s.sketchFresh(key, st.g),
		Method:         req.Method,
	})
	out := &EstimateResult{P: req.P, Method: dec.Method, Eps: req.Eps, Conf: req.Conf}
	switch dec.Method {
	case EstimateExact:
		n, err := exactCountContext(ctx, st.g, req.P)
		if err != nil {
			return nil, err
		}
		out.Estimate, out.CILo, out.CIHi, out.Exact = float64(n), float64(n), float64(n), true
	case EstimateHLL:
		h, staleRebuilt, err := s.sketchFor(ctx, key, st)
		if err != nil {
			return nil, err
		}
		out.Estimate = h.Estimate()
		out.CILo, out.CIHi = h.ConfidenceInterval(req.Conf)
		out.Precision, out.StaleRebuilt = h.Precision(), staleRebuilt
	case EstimateSample:
		r, err := sketch.RunSample(ctx, st.g, sketch.SampleConfig{
			P: req.P, Seed: req.Seed, Samples: req.Samples,
			Eps: req.Eps, Conf: req.Conf, Budget: req.Budget,
		})
		if err != nil {
			return nil, err
		}
		out.Estimate, out.CILo, out.CIHi, out.Samples = r.Estimate, r.CILo, r.CIHi, r.Samples
	}
	return out, nil
}

// Sketch returns the maintained HLL fingerprint of the session's current
// p-clique set at the given precision and seed, building (or lazily
// rebuilding a deletion-staled one, reported by the second return) on
// first request. The returned sketch is immutable — MarshalBinary it for
// transport, Clone it to mutate.
func (s *Session) Sketch(ctx context.Context, p, precision int, seed int64) (*CliqueSketch, bool, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, false, ErrSessionClosed
	}
	if p < 1 {
		return nil, false, fmt.Errorf("%w: sketch requires p ≥ 1, got %d", ErrInvalidQuery, p)
	}
	if precision <= 0 {
		precision = sketch.PrecisionForEps(0, 0)
	}
	if precision < sketch.MinPrecision || precision > sketch.MaxPrecision {
		return nil, false, fmt.Errorf("%w: sketch precision %d outside [%d, %d]",
			ErrInvalidQuery, precision, sketch.MinPrecision, sketch.MaxPrecision)
	}
	return s.sketchFor(ctx, sketchKey{p: p, precision: precision, seed: seed}, s.state.Load())
}

// sketchFresh reports whether a completed, non-stale sketch for key exists
// against the snapshot g — the planner's HasFreshSketch input.
func (s *Session) sketchFresh(key sketchKey, g *Graph) bool {
	s.skMu.Lock()
	e, ok := s.sketches[key]
	s.skMu.Unlock()
	if !ok || e.g != g || e.stale {
		return false
	}
	select {
	case <-e.done:
		return e.err == nil
	default:
		return true // in flight against the right snapshot: joining is cheap
	}
}

// sketchFor returns the sketch for key against the snapshot st, coalescing
// concurrent first builds exactly like groundTruthFor. The second return
// reports that this request rebuilt a deletion-staled sketch.
func (s *Session) sketchFor(ctx context.Context, key sketchKey, st *sessionState) (*sketch.CliqueHLL, bool, error) {
	s.skMu.Lock()
	if e, ok := s.sketches[key]; ok && e.g == st.g && !e.stale {
		s.skMu.Unlock()
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if e.err != nil {
			return nil, false, e.err
		}
		return e.h, false, nil
	}
	staleRebuild := false
	if e, ok := s.sketches[key]; ok && e.stale {
		staleRebuild = true
	}
	e := &sketchEntry{done: make(chan struct{}), g: st.g}
	s.sketches[key] = e
	s.evictSketchOverflowLocked(st.g)
	s.mu.Lock()
	s.stats.SketchBuilds++
	if staleRebuild {
		s.stats.SketchStaleRebuilds++
	}
	s.mu.Unlock()
	s.skMu.Unlock()

	h, err := buildSketch(ctx, st.g, key)
	if err != nil {
		// Failed builds are forgotten so the next request retries, exactly
		// like finishEntry's failure path.
		s.skMu.Lock()
		if s.sketches[key] == e {
			delete(s.sketches, key)
		}
		s.skMu.Unlock()
		e.err = err
		close(e.done)
		return nil, false, err
	}
	e.h = h
	close(e.done)
	return h, staleRebuild, nil
}

// buildSketch inscribes every p-clique of g from scratch, honoring ctx
// between visitor batches.
func buildSketch(ctx context.Context, g *Graph, key sketchKey) (*sketch.CliqueHLL, error) {
	h, err := sketch.NewCliqueHLL(key.precision, key.seed)
	if err != nil {
		return nil, err
	}
	n := 0
	ctxStopped := false
	g.VisitCliquesUntil(key.p, func(c Clique) bool {
		h.Inscribe(c)
		n++
		if n%visitCtxCheckEvery == 0 && ctx.Err() != nil {
			ctxStopped = true
			return false
		}
		return true
	})
	if ctxStopped {
		return nil, ctx.Err()
	}
	return h, nil
}

// exactCountContext counts p-cliques through the streaming kernel with
// periodic context checks, so a budgeted exact answer stays cancellable.
func exactCountContext(ctx context.Context, g *Graph, p int) (int64, error) {
	var n int64
	ctxStopped := false
	g.VisitCliquesUntil(p, func(Clique) bool {
		n++
		if n%visitCtxCheckEvery == 0 && ctx.Err() != nil {
			ctxStopped = true
			return false
		}
		return true
	})
	if ctxStopped {
		return 0, ctx.Err()
	}
	return n, nil
}

// evictSketchOverflowLocked (skMu held) bounds the sketch map: past
// maxSketchEntries, completed entries for snapshots other than the current
// one go first, then arbitrary completed entries. In-flight builds are
// never dropped.
func (s *Session) evictSketchOverflowLocked(current *Graph) {
	if len(s.sketches) <= maxSketchEntries {
		return
	}
	for pass := 0; pass < 2 && len(s.sketches) > maxSketchEntries; pass++ {
		for k, e := range s.sketches {
			if len(s.sketches) <= maxSketchEntries {
				break
			}
			select {
			case <-e.done:
			default:
				continue
			}
			if pass == 0 && e.g == current && !e.stale {
				continue
			}
			delete(s.sketches, k)
		}
	}
}

// maintainSketches folds one applied mutation batch into every maintained
// sketch (applyMu held by Apply). Pure-insertion batches inscribe the
// frontier around the added edges into a clone published for the new
// snapshot — byte-identical to a from-scratch rebuild, since every new
// p-clique contains an added edge and inscription is idempotent. Any
// deletion or density-threshold rebuild marks the sketch stale instead
// (HLL registers cannot un-inscribe); the next request rebuilds lazily.
func (s *Session) maintainSketches(oldG, newG *Graph, delta *graph.Delta) {
	s.skMu.Lock()
	defer s.skMu.Unlock()
	var incremental, staleMarked int64
	for key, e := range s.sketches {
		select {
		case <-e.done:
		default:
			// An in-flight build of some snapshot; its waiters still get a
			// consistent answer, but the map entry is superseded.
			delete(s.sketches, key)
			continue
		}
		if e.err != nil || e.g != oldG {
			delete(s.sketches, key)
			continue
		}
		if e.stale {
			continue // already awaiting lazy rebuild
		}
		if delta.Rebuilt || len(delta.RemovedEdges) > 0 {
			e.stale = true
			staleMarked++
			continue
		}
		h := e.h.Clone()
		for _, ae := range delta.AddedEdges {
			newG.VisitCliquesThroughEdge(ae, key.p, func(c Clique) bool {
				h.Inscribe(c)
				return true
			})
		}
		ne := &sketchEntry{done: make(chan struct{}), g: newG, h: h}
		close(ne.done)
		s.sketches[key] = ne
		incremental++
	}
	if incremental > 0 || staleMarked > 0 {
		s.mu.Lock()
		s.stats.SketchIncremental += incremental
		s.stats.SketchStaleMarked += staleMarked
		s.mu.Unlock()
	}
}
