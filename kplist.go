// Package kplist is a Go implementation of "On Distributed Listing of
// Cliques" (Censor-Hillel, Le Gall, Leitersdorf — PODC 2020): sub-linear
// round CONGEST algorithms for listing Kp for every p ≥ 4, the Õ(n^{2/3})
// K4 variant, and the sparsity-aware Θ̃(1 + m/n^{1+2/p}) CONGESTED CLIQUE
// lister for every p ≥ 3.
//
// The package executes the algorithms over a simulated synchronous
// message-passing substrate: data genuinely moves between per-node states
// (outputs are exact and verified against sequential enumeration), and
// every communication phase charges a round ledger according to the
// CONGEST cost model (see DESIGN.md §5). Use the Result's Rounds/Phases to
// study the round complexity, and Cliques for the actual listing.
//
// Quick start:
//
//	g, _ := kplist.NewGraph(5, []kplist.Edge{{U:0,V:1},{U:0,V:2},{U:0,V:3},
//		{U:1,V:2},{U:1,V:3},{U:2,V:3},{U:3,V:4}})
//	res, err := kplist.ListCONGEST(g, 4, kplist.Options{})
//	// res.Cliques == [[0 1 2 3]], res.Rounds = the CONGEST bill
//
// To serve many queries against one graph, open a Session: the shared
// preprocessing (degree order) runs once, queries flow through a bounded
// scheduler, and repeated queries hit a keyed result cache:
//
//	inst, _ := kplist.GenerateWorkload(
//		kplist.DefaultWorkloadSpec(kplist.WorkloadPlantedClique, 200, 42))
//	s := kplist.NewSession(inst.G, kplist.SessionConfig{MaxConcurrent: 4})
//	defer s.Close()
//	for _, br := range s.QueryBatch([]kplist.Query{{P: 4}, {P: 5}, {P: 4}}) {
//		// br.Result, br.Err; the second {P: 4} is a cache hit
//	}
//
// GenerateWorkload is the scenario-generator subsystem: seeded graph
// families (power-law, planted cliques, bipartite, stochastic block,
// Kronecker, grids) with guaranteed structural properties — see
// DESIGN.md §6.
//
// Session.QueryContext threads a context into the engine run loops
// (cancellation is honored between engine rounds), and request-level
// failures wrap the typed sentinels ErrInvalidQuery, ErrUnknownEngine,
// ErrUnknownFamily and ErrSessionClosed. cmd/kplistd serves all of this
// over HTTP — multi-tenant registry, LRU session pool, admission control,
// NDJSON streaming — see DESIGN.md §7.
package kplist

import (
	"context"
	"fmt"
	"math/rand"

	"kplist/internal/baseline"
	"kplist/internal/congest"
	"kplist/internal/core"
	"kplist/internal/graph"
	"kplist/internal/sparselist"
)

// Graph is an immutable undirected simple graph; see NewGraph.
type Graph = graph.Graph

// Edge is an undirected edge {U, V}.
type Edge = graph.Edge

// Clique is a sorted list of vertex IDs forming a clique.
type Clique = graph.Clique

// CliqueSet is a set of cliques keyed canonically.
type CliqueSet = graph.CliqueSet

// NewCliqueSet builds a canonical set from a list of cliques.
func NewCliqueSet(cs []Clique) CliqueSet { return graph.NewCliqueSet(cs) }

// PhaseCost is one named phase's share of the round/message bill.
type PhaseCost = congest.PhaseCost

// V is a vertex identifier.
type V = graph.V

// NewGraph builds a graph with n vertices from an edge list; duplicate
// edges and self-loops are dropped.
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.New(n, edges) }

// ErdosRenyi samples G(n, p) with the given seed.
func ErdosRenyi(n int, p float64, seed int64) *Graph {
	return graph.ErdosRenyi(n, p, rand.New(rand.NewSource(seed)))
}

// GNM samples a uniform graph with exactly m edges.
func GNM(n, m int, seed int64) *Graph {
	return graph.GNM(n, m, rand.New(rand.NewSource(seed)))
}

// PlantedCliques overlays vertex-disjoint k-cliques on a sparse background
// and returns the graph plus the planted cliques.
func PlantedCliques(n, k, count int, bgProb float64, seed int64) (*Graph, []Clique) {
	g, planted := graph.PlantedCliques(n, k, count, bgProb, rand.New(rand.NewSource(seed)))
	out := make([]Clique, len(planted))
	for i, c := range planted {
		out[i] = Clique(c)
	}
	return g, out
}

// Complete returns K_n.
func Complete(n int) *Graph { return graph.Complete(n) }

// Options configures a listing run.
type Options struct {
	// Seed drives all randomness (decomposition starts, partitions).
	// Runs are deterministic given a seed.
	Seed int64
	// FastK4 selects the Theorem 1.2 Õ(n^{2/3}) variant; only valid with
	// p = 4 in ListCONGEST.
	FastK4 bool
	// Paranoid enables internal invariant checking after every phase.
	Paranoid bool
	// PaperCosts charges explicit log-factors for the Õ(·) terms instead
	// of the default structural (polylog = 1) model used for exponent
	// fitting.
	PaperCosts bool
	// FinalExponent overrides the outer loop's stopping exponent
	// (default max(3/4, p/(p+2)), or 2/3 under FastK4).
	FinalExponent float64
	// Workers bounds the host goroutines used to simulate phases the
	// paper runs in parallel (per-cluster work, listing nodes). 0 means
	// GOMAXPROCS, 1 forces sequential simulation; results and round
	// bills are identical for every value — only wall-clock changes.
	Workers int
}

func (o Options) costModel() congest.CostModel {
	if o.PaperCosts {
		return congest.PaperCosts()
	}
	return congest.UnitCosts()
}

// Result carries a listing outcome plus its communication bill.
type Result struct {
	// Cliques is the exact set of Kp instances, sorted lexicographically.
	Cliques []Clique
	// Rounds is the total CONGEST round bill.
	Rounds int64
	// Messages is the total word count moved.
	Messages int64
	// Phases breaks the bill down by algorithm phase.
	Phases []PhaseCost
	// OuterIterations is the number of arboricity-halving passes
	// (ListCONGEST only).
	OuterIterations int
	// ArboricityLadder traces the arboricity bound per outer pass
	// (ListCONGEST only).
	ArboricityLadder []int
}

func newResult(set CliqueSet, ledger *congest.Ledger) *Result {
	return &Result{
		Cliques:  set.Cliques(),
		Rounds:   ledger.Rounds(),
		Messages: ledger.Messages(),
		Phases:   ledger.Phases(),
	}
}

// ListCONGEST lists every Kp of g in the CONGEST model using the paper's
// main pipeline: Theorem 1.1 for p ≥ 4, or Theorem 1.2 when opt.FastK4 is
// set (p must be 4). The result's Rounds follow the Õ(n^{3/4} + n^{p/(p+2)})
// (resp. Õ(n^{2/3})) bill.
func ListCONGEST(g *Graph, p int, opt Options) (*Result, error) {
	return listCONGESTContext(context.Background(), g, p, opt)
}

// listCONGESTContext is ListCONGEST under a context; the Session serving
// path uses it so cancelled queries stop between engine rounds.
func listCONGESTContext(ctx context.Context, g *Graph, p int, opt Options) (*Result, error) {
	if p < 4 {
		return nil, fmt.Errorf("%w: ListCONGEST requires p ≥ 4 (Theorem 1.1); use ListCongestedClique or ListBroadcast for p = 3", ErrInvalidQuery)
	}
	var ledger congest.Ledger
	res, err := core.ListCliques(g, core.Params{
		Ctx:           ctx,
		P:             p,
		FastK4:        opt.FastK4,
		Seed:          opt.Seed,
		Paranoid:      opt.Paranoid,
		FinalExponent: opt.FinalExponent,
		Workers:       opt.Workers,
	}, opt.costModel(), &ledger)
	if err != nil {
		return nil, err
	}
	out := newResult(res.Cliques, &ledger)
	out.OuterIterations = res.OuterIterations
	out.ArboricityLadder = res.ArboricityLadder
	return out, nil
}

// ListCongestedClique lists every Kp of g in the CONGESTED CLIQUE model
// using the sparsity-aware algorithm of Theorem 1.3: Θ̃(1 + m/n^{1+2/p})
// rounds, for every p ≥ 3.
func ListCongestedClique(g *Graph, p int, opt Options) (*Result, error) {
	return listCongestedCliqueContext(context.Background(), g, p, opt)
}

func listCongestedCliqueContext(ctx context.Context, g *Graph, p int, opt Options) (*Result, error) {
	var ledger congest.Ledger
	res, err := sparselist.CongestedCliqueOnGraphCtx(ctx, g, p, opt.Seed, opt.Workers, opt.costModel(), &ledger)
	if err != nil {
		return nil, err
	}
	return newResult(res.Cliques, &ledger), nil
}

// ListBroadcast lists every Kp with the trivial Θ̃(n)-round broadcast
// algorithm (Remark 2.6) — the baseline every sub-linear result is
// measured against.
func ListBroadcast(g *Graph, p int, opt Options) (*Result, error) {
	return listBroadcastContext(context.Background(), g, p, opt)
}

func listBroadcastContext(ctx context.Context, g *Graph, p int, opt Options) (*Result, error) {
	// The broadcast baseline is a single round-batch (broadcast + local
	// enumeration), so the only cancellation point is before it starts.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var ledger congest.Ledger
	set, err := baseline.BroadcastListGraph(g, p, opt.costModel(), &ledger)
	if err != nil {
		return nil, err
	}
	return newResult(set, &ledger), nil
}

// ListEdenK4 lists every K4 with the (simplified) previous
// state-of-the-art algorithm of Eden et al. (DISC 2019) — the E4
// comparison baseline.
func ListEdenK4(g *Graph, opt Options) (*Result, error) {
	var ledger congest.Ledger
	set, err := baseline.EdenK4List(g, baseline.EdenK4Params{Seed: opt.Seed}, opt.costModel(), &ledger)
	if err != nil {
		return nil, err
	}
	return newResult(set, &ledger), nil
}

// GroundTruth lists every Kp exactly (no simulation, no bill) — the
// reference the distributed outputs are compared against. It runs on the
// enumeration kernel (flat CSR of the degeneracy DAG, zero-allocation
// recursion, parallel root fan-out; DESIGN.md §8); output is sorted
// lexicographically and byte-identical for every level of host
// parallelism.
func GroundTruth(g *Graph, p int) []Clique { return g.ListCliques(p) }

// GroundTruthCount counts Kp instances without materializing them — the
// kernel's counting mode skips clique emission entirely, so it is the
// cheapest exact census available.
func GroundTruthCount(g *Graph, p int) int64 { return g.CountCliques(p) }

// Verify checks that cliques is exactly the set of Kp instances of g,
// returning a descriptive error on the first discrepancy.
func Verify(g *Graph, p int, cliques []Clique) error {
	got := graph.NewCliqueSet(cliques)
	want := graph.NewCliqueSet(g.ListCliques(p))
	if got.Equal(want) {
		return nil
	}
	if missing := want.Minus(got); len(missing) > 0 {
		return fmt.Errorf("kplist: %d cliques missing (first: %v)", len(missing), missing[0])
	}
	extra := got.Minus(want)
	return fmt.Errorf("kplist: %d spurious cliques (first: %v)", len(extra), extra[0])
}
