package kplist_test

// The differential test harness: every workload generator family runs
// through every listing algorithm and is compared against the sequential
// baseline (GroundTruth). Randomized sizes and seeds; -short trims the
// trial count, not the family × algorithm coverage.

import (
	"fmt"
	"math/rand"
	"testing"

	"kplist"
	"kplist/internal/workload"
)

// differentialAlgos is every public listing engine with its p-domain.
var differentialAlgos = []struct {
	algo kplist.Algorithm
	minP int
	maxP int
}{
	{kplist.AlgoCongestedClique, 3, 5},
	{kplist.AlgoBroadcast, 3, 5},
	{kplist.AlgoCONGEST, 4, 5},
	{kplist.AlgoFastK4, 4, 4},
}

func TestDifferentialFamiliesTimesAlgorithms(t *testing.T) {
	trials := 3
	if testing.Short() {
		trials = 1
	}
	rng := rand.New(rand.NewSource(20260728))
	for _, family := range workload.Families() {
		family := family
		t.Run(family, func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				n := 40 + rng.Intn(60)
				seed := rng.Int63n(1 << 30)
				spec := workload.DefaultSpec(family, n, seed)
				if family == workload.FamilyPlantedClique {
					// Vary the planted shape too: k in 4..6, as many as fit.
					spec.CliqueSize = 4 + rng.Intn(3)
					spec.CliqueCount = 1 + rng.Intn(2)
				}
				inst, err := workload.Generate(spec)
				if err != nil {
					t.Fatalf("generate %+v: %v", spec, err)
				}
				if err := inst.Check(); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				runDifferential(t, inst)
			}
		})
	}
}

func runDifferential(t *testing.T, inst *workload.Instance) {
	t.Helper()
	g := inst.G
	for _, a := range differentialAlgos {
		for p := a.minP; p <= a.maxP; p++ {
			res, err := runAlgo(g, a.algo, p, inst.Spec.Seed)
			if err != nil {
				t.Errorf("%s n=%d seed=%d %s p=%d: %v",
					inst.Spec.Family, g.N(), inst.Spec.Seed, a.algo, p, err)
				continue
			}
			// Exact agreement with the sequential baseline.
			if err := kplist.Verify(g, p, res.Cliques); err != nil {
				t.Errorf("%s n=%d seed=%d %s p=%d: differential mismatch: %v",
					inst.Spec.Family, g.N(), inst.Spec.Seed, a.algo, p, err)
			}
			// Recall: planted cliques of exactly size p must all be listed.
			listed := map[string]bool{}
			for _, c := range res.Cliques {
				listed[fmt.Sprint(c)] = true
			}
			for _, c := range inst.Props.Planted {
				if len(c) == p && !listed[fmt.Sprint(kplist.Clique(c))] {
					t.Errorf("%s %s p=%d: planted clique %v not listed",
						inst.Spec.Family, a.algo, p, c)
				}
			}
			// Structural guarantees transfer to outputs.
			if inst.Props.TriangleFree && len(res.Cliques) != 0 {
				t.Errorf("%s %s p=%d: triangle-free family listed %d cliques",
					inst.Spec.Family, a.algo, p, len(res.Cliques))
			}
			if b := inst.Props.DegeneracyBound; b > 0 && p > b+1 && len(res.Cliques) != 0 {
				t.Errorf("%s %s p=%d: degeneracy ≤ %d forbids Kp, listed %d",
					inst.Spec.Family, a.algo, p, b, len(res.Cliques))
			}
		}
	}
}

func runAlgo(g *kplist.Graph, algo kplist.Algorithm, p int, seed int64) (*kplist.Result, error) {
	opt := kplist.Options{Seed: seed}
	switch algo {
	case kplist.AlgoCONGEST:
		return kplist.ListCONGEST(g, p, opt)
	case kplist.AlgoFastK4:
		opt.FastK4 = true
		return kplist.ListCONGEST(g, p, opt)
	case kplist.AlgoCongestedClique:
		return kplist.ListCongestedClique(g, p, opt)
	case kplist.AlgoBroadcast:
		return kplist.ListBroadcast(g, p, opt)
	}
	return nil, fmt.Errorf("unknown algo %q", algo)
}

// TestDifferentialPlantedAlwaysFound plants cliques across several shapes
// and asserts perfect recall on every engine that lists that p.
func TestDifferentialPlantedAlwaysFound(t *testing.T) {
	shapes := []struct{ n, k, count int }{
		{60, 4, 3},
		{80, 5, 2},
		{100, 6, 1},
	}
	if testing.Short() {
		shapes = shapes[:1]
	}
	for _, sh := range shapes {
		spec := workload.DefaultSpec(workload.FamilyPlantedClique, sh.n, int64(sh.n))
		spec.CliqueSize = sh.k
		spec.CliqueCount = sh.count
		spec.Background = 0.08
		inst, err := workload.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range differentialAlgos {
			if sh.k < a.minP || sh.k > a.maxP {
				continue
			}
			res, err := runAlgo(inst.G, a.algo, sh.k, spec.Seed)
			if err != nil {
				t.Fatalf("%s k=%d: %v", a.algo, sh.k, err)
			}
			listed := map[string]bool{}
			for _, c := range res.Cliques {
				listed[fmt.Sprint(c)] = true
			}
			for _, c := range inst.Props.Planted {
				if !listed[fmt.Sprint(kplist.Clique(c))] {
					t.Errorf("%s n=%d k=%d: planted %v missing", a.algo, sh.n, sh.k, c)
				}
			}
		}
	}
}

// TestDifferentialViaSession reruns one differential sweep through the
// Session batch API with Verify on: the serving path must be exactly as
// correct as the direct calls, and the batch must coalesce duplicates.
func TestDifferentialViaSession(t *testing.T) {
	inst := workload.MustGenerate(workload.DefaultSpec(workload.FamilyStochasticBlock, 72, 5))
	s := kplist.NewSession(inst.G, kplist.SessionConfig{Verify: true, MaxConcurrent: 4})
	defer s.Close()
	var qs []kplist.Query
	for _, a := range differentialAlgos {
		for p := a.minP; p <= a.maxP; p++ {
			qs = append(qs, kplist.Query{P: p, Algo: a.algo}, kplist.Query{P: p, Algo: a.algo})
		}
	}
	for _, br := range s.QueryBatch(qs) {
		if br.Err != nil {
			t.Fatalf("%+v: %v", br.Query, br.Err)
		}
	}
	st := s.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Hits+st.Misses != int64(len(qs)) {
		t.Errorf("batch should both execute and coalesce: %+v", st)
	}
}
