package kplist_test

// The differential test harness: every workload generator family runs
// through every listing algorithm and is compared against the sequential
// baseline (GroundTruth). Randomized sizes and seeds; -short trims the
// trial count, not the family × algorithm coverage.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"kplist"
	"kplist/internal/graph"
	"kplist/internal/workload"
)

// differentialAlgos is every public listing engine with its p-domain.
var differentialAlgos = []struct {
	algo kplist.Algorithm
	minP int
	maxP int
}{
	{kplist.AlgoCongestedClique, 3, 5},
	{kplist.AlgoBroadcast, 3, 5},
	{kplist.AlgoCONGEST, 4, 5},
	{kplist.AlgoFastK4, 4, 4},
}

func TestDifferentialFamiliesTimesAlgorithms(t *testing.T) {
	trials := 3
	if testing.Short() {
		trials = 1
	}
	rng := rand.New(rand.NewSource(20260728))
	for _, family := range workload.Families() {
		family := family
		t.Run(family, func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				n := 40 + rng.Intn(60)
				seed := rng.Int63n(1 << 30)
				spec := workload.DefaultSpec(family, n, seed)
				if family == workload.FamilyPlantedClique {
					// Vary the planted shape too: k in 4..6, as many as fit.
					spec.CliqueSize = 4 + rng.Intn(3)
					spec.CliqueCount = 1 + rng.Intn(2)
				}
				inst, err := workload.Generate(spec)
				if err != nil {
					t.Fatalf("generate %+v: %v", spec, err)
				}
				if err := inst.Check(); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				runDifferential(t, inst)
			}
		})
	}
}

func runDifferential(t *testing.T, inst *workload.Instance) {
	t.Helper()
	g := inst.G
	for _, a := range differentialAlgos {
		for p := a.minP; p <= a.maxP; p++ {
			res, err := runAlgo(g, a.algo, p, inst.Spec.Seed)
			if err != nil {
				t.Errorf("%s n=%d seed=%d %s p=%d: %v",
					inst.Spec.Family, g.N(), inst.Spec.Seed, a.algo, p, err)
				continue
			}
			// Exact agreement with the sequential baseline.
			if err := kplist.Verify(g, p, res.Cliques); err != nil {
				t.Errorf("%s n=%d seed=%d %s p=%d: differential mismatch: %v",
					inst.Spec.Family, g.N(), inst.Spec.Seed, a.algo, p, err)
			}
			// Recall: planted cliques of exactly size p must all be listed.
			listed := map[string]bool{}
			for _, c := range res.Cliques {
				listed[fmt.Sprint(c)] = true
			}
			for _, c := range inst.Props.Planted {
				if len(c) == p && !listed[fmt.Sprint(kplist.Clique(c))] {
					t.Errorf("%s %s p=%d: planted clique %v not listed",
						inst.Spec.Family, a.algo, p, c)
				}
			}
			// Structural guarantees transfer to outputs.
			if inst.Props.TriangleFree && len(res.Cliques) != 0 {
				t.Errorf("%s %s p=%d: triangle-free family listed %d cliques",
					inst.Spec.Family, a.algo, p, len(res.Cliques))
			}
			if b := inst.Props.DegeneracyBound; b > 0 && p > b+1 && len(res.Cliques) != 0 {
				t.Errorf("%s %s p=%d: degeneracy ≤ %d forbids Kp, listed %d",
					inst.Spec.Family, a.algo, p, b, len(res.Cliques))
			}
		}
	}
}

func runAlgo(g *kplist.Graph, algo kplist.Algorithm, p int, seed int64) (*kplist.Result, error) {
	opt := kplist.Options{Seed: seed}
	switch algo {
	case kplist.AlgoCONGEST:
		return kplist.ListCONGEST(g, p, opt)
	case kplist.AlgoFastK4:
		opt.FastK4 = true
		return kplist.ListCONGEST(g, p, opt)
	case kplist.AlgoCongestedClique:
		return kplist.ListCongestedClique(g, p, opt)
	case kplist.AlgoBroadcast:
		return kplist.ListBroadcast(g, p, opt)
	}
	return nil, fmt.Errorf("unknown algo %q", algo)
}

// TestDifferentialPlantedAlwaysFound plants cliques across several shapes
// and asserts perfect recall on every engine that lists that p.
func TestDifferentialPlantedAlwaysFound(t *testing.T) {
	shapes := []struct{ n, k, count int }{
		{60, 4, 3},
		{80, 5, 2},
		{100, 6, 1},
	}
	if testing.Short() {
		shapes = shapes[:1]
	}
	for _, sh := range shapes {
		spec := workload.DefaultSpec(workload.FamilyPlantedClique, sh.n, int64(sh.n))
		spec.CliqueSize = sh.k
		spec.CliqueCount = sh.count
		spec.Background = 0.08
		inst, err := workload.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range differentialAlgos {
			if sh.k < a.minP || sh.k > a.maxP {
				continue
			}
			res, err := runAlgo(inst.G, a.algo, sh.k, spec.Seed)
			if err != nil {
				t.Fatalf("%s k=%d: %v", a.algo, sh.k, err)
			}
			listed := map[string]bool{}
			for _, c := range res.Cliques {
				listed[fmt.Sprint(c)] = true
			}
			for _, c := range inst.Props.Planted {
				if !listed[fmt.Sprint(kplist.Clique(c))] {
					t.Errorf("%s n=%d k=%d: planted %v missing", a.algo, sh.n, sh.k, c)
				}
			}
		}
	}
}

// TestDifferentialViaSession reruns one differential sweep through the
// Session batch API with Verify on: the serving path must be exactly as
// correct as the direct calls, and the batch must coalesce duplicates.
func TestDifferentialViaSession(t *testing.T) {
	inst := workload.MustGenerate(workload.DefaultSpec(workload.FamilyStochasticBlock, 72, 5))
	s := kplist.NewSession(inst.G, kplist.SessionConfig{Verify: true, MaxConcurrent: 4})
	defer s.Close()
	var qs []kplist.Query
	for _, a := range differentialAlgos {
		for p := a.minP; p <= a.maxP; p++ {
			qs = append(qs, kplist.Query{P: p, Algo: a.algo}, kplist.Query{P: p, Algo: a.algo})
		}
	}
	for _, br := range s.QueryBatch(qs) {
		if br.Err != nil {
			t.Fatalf("%+v: %v", br.Query, br.Err)
		}
	}
	st := s.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Hits+st.Misses != int64(len(qs)) {
		t.Errorf("batch should both execute and coalesce: %+v", st)
	}
}

// referenceListCliques is the pre-kernel sequential enumerator (the
// per-recursion-allocating laterAdj walk the kernel replaced), kept as an
// independent brute-force reference: every workload family must get a
// byte-for-byte identical listing from the kernel at every worker count.
func referenceListCliques(g *kplist.Graph, p int) []kplist.Clique {
	if p <= 0 {
		return nil
	}
	var out []kplist.Clique
	if p == 1 {
		for v := 0; v < g.N(); v++ {
			out = append(out, kplist.Clique{kplist.V(v)})
		}
		return out
	}
	rank := g.Degeneracy().Rank
	laterAdj := make([][]kplist.V, g.N())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(kplist.V(v)) {
			if rank[v] < rank[w] {
				laterAdj[v] = append(laterAdj[v], w)
			}
		}
	}
	prefix := make(kplist.Clique, 0, p)
	var rec func(cands []kplist.V, need int)
	rec = func(cands []kplist.V, need int) {
		for i, v := range cands {
			if len(cands)-i < need {
				return
			}
			prefix = append(prefix, v)
			if need == 1 {
				cp := make(kplist.Clique, p)
				copy(cp, prefix)
				sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
				out = append(out, cp)
			} else {
				rec(graph.IntersectSorted(cands[i+1:], g.Neighbors(v)), need-1)
			}
			prefix = prefix[:len(prefix)-1]
		}
	}
	for v := 0; v < g.N(); v++ {
		if len(laterAdj[v]) < p-1 {
			continue
		}
		prefix = append(prefix, kplist.V(v))
		rec(laterAdj[v], p-1)
		prefix = prefix[:0]
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// cliqueBytes flattens a listing into its canonical key bytes, making
// "byte-for-byte identical" a single comparison.
func cliqueBytes(cs []kplist.Clique) string {
	var buf []byte
	for _, c := range cs {
		buf = c.AppendKey(buf)
	}
	return string(buf)
}

// TestDifferentialKernelVsReference compares the kernel (sequential and
// 8-way parallel) byte-for-byte against the reference enumerator on every
// workload family × p ∈ {3, 4, 5}.
func TestDifferentialKernelVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	trials := 2
	if testing.Short() {
		trials = 1
	}
	for _, family := range workload.Families() {
		family := family
		t.Run(family, func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				n := 40 + rng.Intn(70)
				seed := rng.Int63n(1 << 30)
				inst, err := workload.Generate(workload.DefaultSpec(family, n, seed))
				if err != nil {
					t.Fatal(err)
				}
				for p := 3; p <= 5; p++ {
					want := cliqueBytes(referenceListCliques(inst.G, p))
					for _, workers := range []int{1, 8} {
						got := cliqueBytes(inst.G.ListCliquesWorkers(p, workers))
						if got != want {
							t.Fatalf("%s n=%d seed=%d p=%d workers=%d: kernel listing is not byte-identical to the reference enumerator",
								family, n, seed, p, workers)
						}
					}
					if got := kplist.GroundTruthCount(inst.G, p); got != int64(len(want)/(4*p)) {
						t.Fatalf("%s n=%d seed=%d p=%d: count %d, want %d",
							family, n, seed, p, got, len(want)/(4*p))
					}
				}
			}
		})
	}
}
