package kplist

import (
	"errors"

	"kplist/internal/graph"
	"kplist/internal/workload"
)

// Typed sentinels for the public serving surface. Every error returned by
// Session.Query/QueryContext and GenerateWorkload that stems from the
// caller's request (rather than an internal failure) wraps one of these,
// so servers can branch with errors.Is and map caller mistakes to 4xx
// responses while genuine failures stay 5xx.
var (
	// ErrSessionClosed reports a query against a Close()d Session.
	ErrSessionClosed = errors.New("kplist: session is closed")
	// ErrUnknownEngine reports a Query.Algo outside the Algo* constants.
	ErrUnknownEngine = errors.New("kplist: unknown engine")
	// ErrInvalidQuery reports a Query whose parameters are outside the
	// selected engine's domain (e.g. p = 3 for the CONGEST pipeline).
	ErrInvalidQuery = errors.New("kplist: invalid query")
	// ErrUnknownFamily reports a WorkloadSpec.Family outside the
	// registered generator families.
	ErrUnknownFamily = workload.ErrUnknownFamily
	// ErrInvalidMutation reports a Session.Apply mutation outside the
	// graph's domain: an endpoint not in [0, N), a self-loop, or an
	// unknown op. The whole batch is rejected and nothing changes.
	ErrInvalidMutation = graph.ErrBadMutation
)
