package kplist

import (
	"fmt"

	"kplist/internal/algebraic"
	"kplist/internal/congest"
)

// Detection and counting variants. The paper's §5 notes that in CONGEST no
// better algorithms are known for Kp detection or counting than listing —
// these wrappers therefore run the listing pipeline and derive the
// detection/counting answer, billing the same rounds. The one exception
// the paper highlights is triangle counting in the CONGESTED CLIQUE,
// where algebraic methods are faster on dense graphs; CountTrianglesCC
// implements that route.

// DetectCONGEST reports whether g contains a Kp, via the Theorem 1.1
// pipeline (no faster detection is known in CONGEST, §5). The returned
// Result carries at most one witness clique and the full round bill.
func DetectCONGEST(g *Graph, p int, opt Options) (bool, *Result, error) {
	res, err := ListCONGEST(g, p, opt)
	if err != nil {
		return false, nil, err
	}
	found := len(res.Cliques) > 0
	if found {
		res.Cliques = res.Cliques[:1]
	}
	return found, res, nil
}

// CountCONGEST returns the number of Kp instances in g, via the
// Theorem 1.1 pipeline (no faster counting is known in CONGEST, §5).
func CountCONGEST(g *Graph, p int, opt Options) (int64, *Result, error) {
	res, err := ListCONGEST(g, p, opt)
	if err != nil {
		return 0, nil, err
	}
	return int64(len(res.Cliques)), res, nil
}

// CountTrianglesCC counts triangles in the CONGESTED CLIQUE via the
// algebraic (matrix multiplication) route — O(n^{1/3}) rounds regardless
// of density, faster than listing on dense graphs (§5 discussion;
// Censor-Hillel et al.).
func CountTrianglesCC(g *Graph, opt Options) (int64, *Result, error) {
	var ledger congest.Ledger
	count, err := algebraic.TriangleCountCC(g, opt.costModel(), &ledger)
	if err != nil {
		return 0, nil, err
	}
	return count, &Result{
		Rounds:   ledger.Rounds(),
		Messages: ledger.Messages(),
		Phases:   ledger.Phases(),
	}, nil
}

// DetectCongestedClique reports whether g contains a Kp in the CONGESTED
// CLIQUE model, via the Theorem 1.3 lister.
func DetectCongestedClique(g *Graph, p int, opt Options) (bool, *Result, error) {
	res, err := ListCongestedClique(g, p, opt)
	if err != nil {
		return false, nil, err
	}
	found := len(res.Cliques) > 0
	if found {
		res.Cliques = res.Cliques[:1]
	}
	return found, res, nil
}

// String renders a compact one-line summary of a result.
func (r *Result) String() string {
	return fmt.Sprintf("cliques=%d rounds=%d messages=%d phases=%d",
		len(r.Cliques), r.Rounds, r.Messages, len(r.Phases))
}
