package kplist

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"kplist/internal/graph"
)

// twoTriangleGraph is 0-1-2 (triangle), 3-4-5 (triangle), plus spare
// vertices 6..9 to mutate against.
func twoTriangleGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraph(10, []Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2},
		{U: 3, V: 4}, {U: 3, V: 5}, {U: 4, V: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSessionApplyBasic(t *testing.T) {
	s := NewSession(twoTriangleGraph(t), SessionConfig{})
	defer s.Close()
	q := Query{P: 3, Algo: AlgoCongestedClique}
	res, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cliques) != 2 {
		t.Fatalf("seed triangles: %d", len(res.Cliques))
	}

	// Close a third triangle on 6-7-8.
	ar, err := s.Apply(context.Background(), []Mutation{
		AddEdgeMutation(6, 7), AddEdgeMutation(7, 8), AddEdgeMutation(6, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ar.AddedEdges != 3 || ar.RemovedEdges != 0 || ar.Rebuilt {
		t.Fatalf("apply result %+v", ar)
	}
	if !reflect.DeepEqual(ar.Touched, []V{6, 7, 8}) {
		t.Fatalf("touched %v", ar.Touched)
	}
	if ar.InvalidatedResults != 1 {
		t.Fatalf("cached p=3 result not invalidated: %+v", ar)
	}
	if ar.Graph != s.Graph() || ar.M != 9 || s.Graph().M() != 9 {
		t.Fatalf("graph not swapped: m=%d", s.Graph().M())
	}

	res, err = s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cliques) != 3 {
		t.Fatalf("triangles after apply: %d", len(res.Cliques))
	}
	if err := Verify(s.Graph(), 3, res.Cliques); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Misses != 2 {
		t.Fatalf("expected a fresh execution after invalidation: %+v", st)
	}
}

func TestSessionApplySelectiveInvalidation(t *testing.T) {
	s := NewSession(twoTriangleGraph(t), SessionConfig{})
	defer s.Close()
	q3 := Query{P: 3, Algo: AlgoCongestedClique}
	q4 := Query{P: 4, Algo: AlgoCongestedClique}
	for _, q := range []Query{q3, q4} {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}

	// Closing triangle 6-7-8 adds K3s but no K4: only the p=3 entry may
	// drop.
	ar, err := s.Apply(context.Background(), []Mutation{
		AddEdgeMutation(6, 7), AddEdgeMutation(7, 8), AddEdgeMutation(6, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ar.InvalidatedResults != 1 {
		t.Fatalf("want exactly the p=3 entry invalidated, got %d", ar.InvalidatedResults)
	}
	if _, err := s.Query(q4); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Hits != 1 {
		t.Fatalf("p=4 entry should have survived: %+v", st)
	}
	if _, err := s.Query(q3); err != nil { // repopulate the p=3 entry
		t.Fatal(err)
	}

	// Completing the K4 on 0-1-2-6 affects both sizes.
	ar, err = s.Apply(context.Background(), []Mutation{
		AddEdgeMutation(0, 6), AddEdgeMutation(1, 6), AddEdgeMutation(2, 6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ar.InvalidatedResults != 2 {
		t.Fatalf("want both sizes invalidated, got %d", ar.InvalidatedResults)
	}
	res4, err := s.Query(q4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res4.Cliques) != 1 || !reflect.DeepEqual(res4.Cliques[0], Clique{0, 1, 2, 6}) {
		t.Fatalf("K4 listing after apply: %v", res4.Cliques)
	}
	if _, err := s.Query(q3); err != nil { // repopulate the p=3 entry
		t.Fatal(err)
	}

	// Deleting an edge of that K4 affects both again.
	ar, err = s.Apply(context.Background(), []Mutation{DelEdgeMutation(2, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if ar.RemovedEdges != 1 || ar.InvalidatedResults != 2 {
		t.Fatalf("deletion result %+v", ar)
	}
	if res4, err = s.Query(q4); err != nil || len(res4.Cliques) != 0 {
		t.Fatalf("K4 should be gone: %v, %v", res4, err)
	}
}

func TestSessionApplyNoOpAndErrors(t *testing.T) {
	s := NewSession(twoTriangleGraph(t), SessionConfig{})
	if _, err := s.Query(Query{P: 3}); err != nil {
		t.Fatal(err)
	}

	// Redundant batch: nothing effective, nothing invalidated.
	ar, err := s.Apply(context.Background(), []Mutation{AddEdgeMutation(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if ar.AddedEdges != 0 || ar.InvalidatedResults != 0 || ar.M != 6 {
		t.Fatalf("no-op apply %+v", ar)
	}
	if _, err := s.Query(Query{P: 3}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Hits != 1 {
		t.Fatalf("no-op apply must keep the cache: %+v", st)
	}

	// Bad mutations reject the whole batch, typed.
	for _, muts := range [][]Mutation{
		{AddEdgeMutation(0, 99)},
		{AddEdgeMutation(3, 3)},
		{{Op: MutOp(7), Edge: Edge{U: 0, V: 1}}},
	} {
		if _, err := s.Apply(context.Background(), muts); !errors.Is(err, ErrInvalidMutation) {
			t.Fatalf("want ErrInvalidMutation, got %v", err)
		}
	}
	if s.Graph().M() != 6 {
		t.Fatal("rejected batch changed the graph")
	}

	// Empty batch is fine; closed session is not.
	if _, err := s.Apply(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Apply(context.Background(), []Mutation{AddEdgeMutation(6, 7)}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("want ErrSessionClosed, got %v", err)
	}
}

func TestSessionApplyInvalidatesGroundTruth(t *testing.T) {
	s := NewSession(twoTriangleGraph(t), SessionConfig{})
	defer s.Close()
	if got := s.GroundTruth(3); len(got) != 2 {
		t.Fatalf("seed ground truth: %d", len(got))
	}
	ar, err := s.Apply(context.Background(), []Mutation{
		AddEdgeMutation(6, 7), AddEdgeMutation(7, 8), AddEdgeMutation(6, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ar.InvalidatedTruths != 1 {
		t.Fatalf("ground-truth memo not invalidated: %+v", ar)
	}
	if got := s.GroundTruth(3); len(got) != 3 {
		t.Fatalf("ground truth after apply: %d", len(got))
	}
	// Streaming sees the new graph too.
	n := 0
	if err := s.VisitGroundTruth(context.Background(), 3, func(Clique) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("streamed %d cliques", n)
	}
	// Degeneracy tracks the mutated graph.
	if d := s.Degeneracy(); d != 2 {
		t.Fatalf("degeneracy after apply: %d", d)
	}
}

// TestSessionApplyConcurrentQueries interleaves queries with mutation
// batches and checks that every answer matches some prefix of the
// mutation history — the linearization property the soak test drives at
// scale.
func TestSessionApplyConcurrentQueries(t *testing.T) {
	g := ErdosRenyi(48, 0.25, 5)
	s := NewSession(g, SessionConfig{})
	defer s.Close()

	// Precompute the per-prefix triangle censuses: prefix i = seed graph
	// plus i applied batches.
	batches := [][]Mutation{
		{AddEdgeMutation(0, 1), AddEdgeMutation(1, 2), AddEdgeMutation(0, 2)},
		{DelEdgeMutation(0, 1)},
		{AddEdgeMutation(3, 4), DelEdgeMutation(1, 2)},
		{AddEdgeMutation(0, 1), AddEdgeMutation(5, 6)},
	}
	valid := map[int64]bool{}
	dyn := graph.NewDynGraph(g, graph.DynConfig{})
	valid[GroundTruthCount(g, 3)] = true
	for _, b := range batches {
		if _, err := dyn.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		valid[GroundTruthCount(dyn.Snapshot(), 3)] = true
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	counts := make(chan int64, 4096)
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Query(Query{P: 3, Algo: AlgoCongestedClique, Seed: seed})
				if err != nil {
					errs <- err
					return
				}
				select {
				case counts <- int64(len(res.Cliques)):
				default:
				}
			}
		}(int64(w % 3))
	}
	for _, b := range batches {
		if _, err := s.Apply(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	close(counts)
	for err := range errs {
		t.Fatal(err)
	}
	for c := range counts {
		if !valid[c] {
			t.Fatalf("observed triangle count %d matches no mutation prefix (valid: %v)", c, valid)
		}
	}
}
