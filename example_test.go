package kplist_test

import (
	"fmt"

	"kplist"
)

// The examples below run as part of `go test` and double as godoc usage
// documentation for the public API.

func ExampleListCONGEST() {
	// A wheel: hub 0 connected to a 5-cycle 1..5.
	g, _ := kplist.NewGraph(6, []kplist.Edge{
		{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 1},
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}, {U: 0, V: 5},
	})
	res, err := kplist.ListCONGEST(g, 4, kplist.Options{Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("K4 count:", len(res.Cliques))
	// The wheel has triangles but no K4.
	tri, _ := kplist.ListCongestedClique(g, 3, kplist.Options{Seed: 1})
	fmt.Println("K3 count:", len(tri.Cliques))
	// Output:
	// K4 count: 0
	// K3 count: 5
}

func ExampleListCongestedClique() {
	g := kplist.Complete(6)
	res, err := kplist.ListCongestedClique(g, 5, kplist.Options{Seed: 7})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, c := range res.Cliques {
		fmt.Println(c)
	}
	// Output:
	// [0 1 2 3 4]
	// [0 1 2 3 5]
	// [0 1 2 4 5]
	// [0 1 3 4 5]
	// [0 2 3 4 5]
	// [1 2 3 4 5]
}

func ExampleVerify() {
	g := kplist.Complete(5)
	res, _ := kplist.ListBroadcast(g, 4, kplist.Options{})
	fmt.Println("exact:", kplist.Verify(g, 4, res.Cliques) == nil)
	// Dropping a clique is caught.
	fmt.Println("tampered:", kplist.Verify(g, 4, res.Cliques[1:]) == nil)
	// Output:
	// exact: true
	// tampered: false
}

func ExampleDetectCONGEST() {
	g, _ := kplist.PlantedCliques(100, 5, 1, 0.02, 3)
	found, res, err := kplist.DetectCONGEST(g, 5, kplist.Options{Seed: 3})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("found:", found, "witnesses:", len(res.Cliques))
	// Output:
	// found: true witnesses: 1
}

func ExampleSession() {
	// Generate a workload with two planted K5s, then serve a batch of
	// queries through one session: the second {P: 5} is a cache hit.
	spec := kplist.DefaultWorkloadSpec(kplist.WorkloadPlantedClique, 120, 7)
	spec.CliqueSize = 5
	spec.CliqueCount = 2
	inst, err := kplist.GenerateWorkload(spec)
	if err != nil {
		fmt.Println(err)
		return
	}
	s := kplist.NewSession(inst.G, kplist.SessionConfig{MaxConcurrent: 2, Verify: true})
	defer s.Close()
	for _, br := range s.QueryBatch([]kplist.Query{{P: 5}, {P: 4}, {P: 5}}) {
		if br.Err != nil {
			fmt.Println(br.Err)
			return
		}
	}
	res, _ := s.Query(kplist.Query{P: 5}) // cached
	st := s.Stats()
	fmt.Println("K5s:", len(res.Cliques), "executions:", st.Misses, "hits:", st.Hits)
	// Output:
	// K5s: 2 executions: 2 hits: 2
}

func ExampleGenerateWorkload() {
	// A plain grid is triangle-free with degeneracy ≤ 2 — guaranteed by
	// the family, verified by Check.
	inst, err := kplist.GenerateWorkload(
		kplist.DefaultWorkloadSpec(kplist.WorkloadGrid, 25, 1))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("check:", inst.Check() == nil,
		"triangle-free:", inst.Props.TriangleFree,
		"degeneracy bound:", inst.Props.DegeneracyBound)
	// Output:
	// check: true triangle-free: true degeneracy bound: 2
}

func ExampleCountTrianglesCC() {
	g := kplist.Complete(10)
	count, _, err := kplist.CountTrianglesCC(g, kplist.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("triangles:", count) // C(10,3)
	// Output:
	// triangles: 120
}
