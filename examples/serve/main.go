// Command serve demonstrates the kplistd serving layer end to end: it
// boots the server in-process on an ephemeral port, registers one graph by
// generating a planted-clique workload and another by uploading an edge
// list, runs single and batch queries with engine selection, streams the
// clique listing as NDJSON, and dumps a slice of the /metrics exposition.
//
//	go run ./examples/serve
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"kplist"
	"kplist/internal/server"
)

func main() {
	srv := server.New(server.Config{
		PoolSize:        2,
		DefaultDeadline: 30 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Println("kplistd serving on", ts.URL)

	// Register a generated workload graph (what `curl -X POST /v1/graphs`
	// with a workload spec does).
	spec := kplist.DefaultWorkloadSpec(kplist.WorkloadPlantedClique, 300, 42)
	spec.CliqueSize = 4
	info := post[map[string]any](ts.URL+"/v1/graphs", map[string]any{
		"name": "demo-planted", "workload": spec,
	})
	id := info["id"].(string)
	fmt.Printf("registered %s: n=%v m=%v planted=%v\n", id, info["n"], info["m"], info["planted"])

	// And an uploaded K5 on 6 vertices.
	up := post[map[string]any](ts.URL+"/v1/graphs", map[string]any{
		"name": "demo-upload", "n": 6,
		"edges": [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}, {4, 5}},
	})
	fmt.Printf("registered %s: n=%v m=%v (upload)\n", up["id"], up["n"], up["m"])

	// A batch query with engine selection; the duplicate coalesces on the
	// session result cache.
	batch := post[map[string]any](ts.URL+"/v1/graphs/"+id+"/query", map[string]any{
		"queries": []map[string]any{
			{"p": 4, "algo": "congested-clique"},
			{"p": 4, "algo": "congest"},
			{"p": 4, "algo": "congested-clique"}, // duplicate → cache hit
			{"p": 3},
		},
	})
	for _, r := range batch["results"].([]any) {
		m := r.(map[string]any)
		q := m["query"].(map[string]any)
		fmt.Printf("  p=%v algo=%-16v cliques=%-5v rounds=%v\n",
			q["p"], q["algo"], m["cliques"], m["rounds"])
	}

	// Stream the K4 listing as NDJSON and count lines client-side.
	resp, err := http.Get(ts.URL + "/v1/graphs/" + id + "/cliques?p=4&stream=1")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	lines, first := 0, ""
	for sc.Scan() {
		if lines == 0 {
			first = sc.Text()
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d cliques (server says %s); first line: %s\n",
		lines, resp.Header.Get("X-Kplist-Clique-Count"), first)

	// Observability: a slice of the Prometheus exposition.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		log.Fatal(err)
	}
	fmt.Println("metrics excerpt:")
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "kplistd_pool_") || strings.HasPrefix(line, "kplistd_session_") {
			fmt.Println(" ", line)
		}
	}
}

// post sends v as JSON and decodes the response into T, exiting on any
// error — demo-grade plumbing.
func post[T any](url string, v any) T {
	buf, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("%s: status %d: %v", url, resp.StatusCode, out)
	}
	return out
}
