// Live CONGEST engine demo: unlike the benchmark pipeline (which charges a
// validated cost model), this example runs an actual goroutine-per-node
// synchronous network — one goroutine per vertex, lockstep rounds, one
// O(log n)-bit word per edge per round enforced mechanically — and
// executes the trivial broadcast listing protocol (Remark 2.6) on it:
// every node pushes its outgoing edges to all neighbors, then lists the
// cliques it sees. The union of the nodes' outputs is verified against
// ground truth, and the engine's real round count matches the cost-model
// prediction (max out-degree).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"

	"kplist/internal/congest"
	"kplist/internal/graph"
)

func main() {
	const n, p = 48, 4
	rng := rand.New(rand.NewSource(11))
	g := graph.ErdosRenyi(n, 0.3, rng)
	orient := g.DegeneracyOrientation()
	maxOut := orient.MaxOutDegree()
	fmt.Printf("graph: n=%d m=%d, degeneracy orientation out-degree %d\n", g.N(), g.M(), maxOut)

	var (
		mu     sync.Mutex
		output = make(graph.CliqueSet)
	)
	prog := func(ctx *congest.Context) error {
		me := ctx.ID()
		out := orient.Out(me)
		// Everyone runs exactly maxOut broadcast rounds in lockstep; nodes
		// with fewer out-edges idle for the remainder.
		known := make([]graph.Edge, 0, g.Degree(me)+g.Degree(me)*maxOut)
		for _, w := range g.Neighbors(me) {
			known = append(known, graph.Edge{U: me, V: w}.Canon())
		}
		for r := 0; r < maxOut; r++ {
			if r < len(out) {
				if err := ctx.Broadcast(congest.Word{Tag: congest.TagEdge, A: me, B: out[r]}); err != nil {
					return err
				}
			}
			in, err := ctx.NextRound()
			if err != nil {
				return err
			}
			for _, msg := range in {
				if msg.Word.Tag == congest.TagEdge {
					known = append(known, graph.Edge{U: msg.Word.A, V: msg.Word.B}.Canon())
				}
			}
		}
		// Local listing over everything this node heard.
		ll := graph.NewLocalLister(known)
		ll.VisitCliques(p, func(c graph.Clique) {
			mu.Lock()
			output.Add(c)
			mu.Unlock()
		})
		return nil
	}

	net := congest.NewNetwork(g, congest.Options{})
	stats, err := net.Run(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %d real rounds, %d messages delivered\n", stats.Rounds, stats.Messages)
	fmt.Printf("cost model predicts %d rounds (max out-degree) — engine used %d\n", maxOut, stats.Rounds)

	want := graph.NewCliqueSet(g.ListCliques(p))
	if !output.Equal(want) {
		log.Fatalf("listing mismatch: got %d cliques, want %d", output.Len(), want.Len())
	}
	fmt.Printf("union of node outputs: %d K%d cliques — exact match with ground truth\n", output.Len(), p)

	cliques := output.Cliques()
	sort.Slice(cliques, func(i, j int) bool { return cliques[i].Key() < cliques[j].Key() })
	for i, c := range cliques {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(cliques)-10)
			break
		}
		fmt.Println("  ", c)
	}
}
