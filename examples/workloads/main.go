// Workloads: tour the scenario-generator families and serve a mixed query
// batch through the Session API. Each family prints the structural census
// it guarantees (degeneracy bounds, planted cliques, triangle-freeness) as
// measured on the generated graph; the Session demo then shows the
// preprocessing/listing split — one shared precompute, many cached
// queries.
package main

import (
	"fmt"
	"log"
	"time"

	"kplist"
)

func main() {
	const n, seed = 160, 42

	fmt.Println("== workload families ==")
	fmt.Printf("%-20s %6s %7s %11s %10s  %s\n", "family", "m", "maxdeg", "degeneracy", "triangles", "guarantees")
	for _, family := range kplist.WorkloadFamilies() {
		inst, err := kplist.GenerateWorkload(kplist.DefaultWorkloadSpec(family, n, seed))
		if err != nil {
			log.Fatal(err)
		}
		g := inst.G
		tri, _ := kplist.ListCongestedClique(g, 3, kplist.Options{Seed: seed})
		guarantee := ""
		if inst.Props.TriangleFree {
			guarantee += "triangle-free "
		}
		if inst.Props.DegeneracyBound > 0 {
			guarantee += fmt.Sprintf("degeneracy≤%d ", inst.Props.DegeneracyBound)
		}
		if len(inst.Props.Planted) > 0 {
			guarantee += fmt.Sprintf("%d planted K%d", len(inst.Props.Planted), len(inst.Props.Planted[0]))
		}
		fmt.Printf("%-20s %6d %7d %11d %10d  %s\n",
			family, g.M(), g.MaxDegree(), g.Degeneracy().Degeneracy, len(tri.Cliques), guarantee)
	}

	// A serving session: open once on a planted workload, precompute the
	// shared artefacts, then serve a burst of mixed queries. Repeats of a
	// query cost a cache lookup, not a simulation.
	fmt.Println("\n== session batch serving ==")
	spec := kplist.DefaultWorkloadSpec(kplist.WorkloadPlantedClique, 200, seed)
	spec.CliqueSize = 5
	spec.CliqueCount = 3
	inst, err := kplist.GenerateWorkload(spec)
	if err != nil {
		log.Fatal(err)
	}
	sess := kplist.NewSession(inst.G, kplist.SessionConfig{MaxConcurrent: 4, Verify: true})
	defer sess.Close()
	fmt.Printf("graph: n=%d m=%d, session degeneracy precompute: %d\n",
		inst.G.N(), inst.G.M(), sess.Degeneracy())

	distinct := []kplist.Query{
		{P: 3, Algo: kplist.AlgoCongestedClique},
		{P: 4, Algo: kplist.AlgoCONGEST},
		{P: 4, Algo: kplist.AlgoFastK4},
		{P: 5, Algo: kplist.AlgoCongestedClique},
		{P: 5, Algo: kplist.AlgoCONGEST},
	}
	var batch []kplist.Query
	for wave := 0; wave < 24; wave++ { // 120 queries, 5 distinct
		batch = append(batch, distinct...)
	}
	start := time.Now()
	results := sess.QueryBatch(batch)
	elapsed := time.Since(start)
	for _, br := range results {
		if br.Err != nil {
			log.Fatalf("%+v: %v", br.Query, br.Err)
		}
	}
	st := sess.Stats()
	fmt.Printf("served %d queries in %v: %d executions, %d cache hits (peak concurrency %d)\n",
		st.Queries, elapsed.Round(time.Millisecond), st.Misses, st.Hits, st.PeakConcurrent)
	for _, q := range distinct {
		res, err := sess.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  p=%d %-17s %5d cliques %8d rounds %10d messages\n",
			q.P, q.Algo, len(res.Cliques), res.Rounds, res.Messages)
	}
	fmt.Println("all results verified against the sequential ground truth")
}
