// Social-network scenario: clique listing is the core primitive of
// community and quasi-clique detection in social graphs — the motivating
// workload for distributed subgraph listing. This example builds a
// power-law (Chung–Lu) graph with planted friend groups, lists K4 and K5
// with the paper's pipeline and with the previous state of the art, and
// compares their round bills.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"kplist"
	"kplist/internal/graph"
)

func main() {
	const n = 300
	rng := rand.New(rand.NewSource(7))

	// Power-law degree background (exponent 2.5, average degree 6) — the
	// heavy tail produces a dense core, like real social graphs.
	weights := graph.PowerLawWeights(n, 2.5, 6)
	bg := graph.ChungLu(weights, rng)

	// Plant five friend groups of size 6 on top.
	edges := bg.Edges()
	groups := make([][]graph.V, 0, 5)
	perm := rng.Perm(n)
	at := 0
	for gidx := 0; gidx < 5; gidx++ {
		members := make([]graph.V, 6)
		for i := range members {
			members[i] = graph.V(perm[at])
			at++
		}
		groups = append(groups, members)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				edges = append(edges, graph.Edge{U: members[i], V: members[j]})
			}
		}
	}
	g, err := kplist.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: n=%d m=%d (power-law background + 5 planted friend groups)\n\n", g.N(), g.M())

	for _, p := range []int{4, 5} {
		res, err := kplist.ListCONGEST(g, p, kplist.Options{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		if err := kplist.Verify(g, p, res.Cliques); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("K%d: %d cliques in %d rounds (verified)\n", p, len(res.Cliques), res.Rounds)
	}

	// Every planted friend group must appear among the K6s.
	res6, err := kplist.ListCONGEST(g, 6, kplist.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	found := 0
	for _, members := range groups {
		want := make(kplist.Clique, len(members))
		copy(want, members)
		for _, c := range res6.Cliques {
			if equal(c, want) {
				found++
				break
			}
		}
	}
	fmt.Printf("K6: %d cliques; recovered %d/5 planted friend groups\n\n", len(res6.Cliques), found)

	// Compare against the previous state of the art and the trivial
	// algorithm on the same graph.
	eden, err := kplist.ListEdenK4(g, kplist.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	bcast, err := kplist.ListBroadcast(g, 4, kplist.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round bill comparison for K4 on this graph:\n")
	ours, err := kplist.ListCONGEST(g, 4, kplist.Options{Seed: 3, FastK4: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-34s %8d rounds\n", "this paper (Thm 1.2 fast K4)", ours.Rounds)
	fmt.Printf("  %-34s %8d rounds\n", "Eden et al. style (DISC 19)", eden.Rounds)
	fmt.Printf("  %-34s %8d rounds\n", "trivial broadcast", bcast.Rounds)
}

func equal(a, b kplist.Clique) bool {
	if len(a) != len(b) {
		return false
	}
	// Planted groups are stored unsorted; sort-insensitive compare via set.
	seen := make(map[kplist.V]bool, len(a))
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			return false
		}
	}
	return true
}
