// Quickstart: list K4 cliques of a small random graph with the paper's
// CONGEST pipeline (Theorem 1.1), inspect the round bill, and verify the
// output against sequential ground truth.
package main

import (
	"fmt"
	"log"

	"kplist"
)

func main() {
	// A 200-vertex random graph with three planted K5s on a sparse
	// background.
	g, planted := kplist.PlantedCliques(200, 5, 3, 0.08, 42)
	fmt.Printf("graph: n=%d m=%d, planted K5s: %v\n\n", g.N(), g.M(), planted)

	// List all K4s (every planted K5 contains five of them).
	res, err := kplist.ListCONGEST(g, 4, kplist.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K4 listing: %d cliques in %d CONGEST rounds (%d messages)\n",
		len(res.Cliques), res.Rounds, res.Messages)
	for _, pc := range res.Phases {
		fmt.Printf("  %-34s %8d rounds\n", pc.Name, pc.Rounds)
	}

	// The library's outputs are exact — Verify compares against a
	// sequential enumeration.
	if err := kplist.Verify(g, 4, res.Cliques); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nverified: output matches sequential ground truth exactly")

	// The same graph in the CONGESTED CLIQUE model (Theorem 1.3) — on a
	// sparse graph this is much cheaper than the worst case.
	cc, err := kplist.ListCongestedClique(g, 5, kplist.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nK5 in the CONGESTED CLIQUE: %d cliques in %d rounds\n", len(cc.Cliques), cc.Rounds)
	for _, c := range cc.Cliques {
		fmt.Println("  ", c)
	}
}
