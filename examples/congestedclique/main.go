// Congested-clique crossover demo (Theorem 1.3): the sparsity-aware lister
// runs in Θ̃(1 + m/n^{1+2/p}) rounds — constant until the edge count
// crosses n^{1+2/p}, then linear in m. This example sweeps the density of
// a 256-node graph for p = 3, 4, 5 and prints the measured rounds next to
// the predicted crossover, demonstrating that denser graphs are only
// expensive past the theorem's threshold and that larger cliques cross
// over earlier.
package main

import (
	"fmt"
	"log"
	"math"

	"kplist"
)

func main() {
	const n = 256
	for _, p := range []int{3, 4, 5} {
		crossover := math.Pow(n, 1+2.0/float64(p))
		fmt.Printf("p=%d: predicted crossover at m ≈ n^{1+2/p} = %.0f\n", p, crossover)
		fmt.Printf("%10s %10s %12s %10s\n", "m", "rounds", "pred rounds", "cliques")
		for _, m := range []int{256, 1024, 4096, 16384, 32640} {
			g := kplist.GNM(n, m, int64(m))
			res, err := kplist.ListCongestedClique(g, p, kplist.Options{Seed: 9})
			if err != nil {
				log.Fatal(err)
			}
			if err := kplist.Verify(g, p, res.Cliques); err != nil {
				log.Fatalf("m=%d p=%d: %v", m, p, err)
			}
			pred := math.Max(1, float64(m)/crossover)
			fmt.Printf("%10d %10d %12.1f %10d\n", m, res.Rounds, pred, len(res.Cliques))
		}
		fmt.Println()
	}
	fmt.Println("all outputs verified against sequential ground truth")
}
