// Expander-decomposition lab: runs the Definition 2.2 decomposition on
// several structurally different graph families and prints what it found —
// clusters with their sizes, minimum degrees, conductances and mixing-time
// estimates, the arboricity-bounded Es remainder, and the Er leftover
// fraction. A direct window into the substrate the whole clique-listing
// pipeline stands on.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"kplist/internal/congest"
	"kplist/internal/expander"
	"kplist/internal/graph"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	families := []struct {
		name string
		g    *graph.Graph
		thr  int
	}{
		{"erdos-renyi n=400 p=0.1 (expander)", graph.ErdosRenyi(400, 0.1, rng), 8},
		{"caveman 6 caves of 16 (communities)", graph.Caveman(6, 16), 5},
		{"barbell K25—K25 (one bottleneck)", graph.Barbell(25, 3), 5},
		{"turan T(90,3) (dense, K4-free)", graph.Turan(90, 3), 10},
		{"cycle C200 (everything peels)", graph.Cycle(200), 3},
	}
	for _, f := range families {
		el := graph.NewEdgeList(f.g.Edges())
		var ledger congest.Ledger
		d, err := expander.Decompose(f.g.N(), el, expander.Params{Threshold: f.thr, Seed: 1},
			congest.UnitCosts(), &ledger)
		if err != nil {
			log.Fatalf("%s: %v", f.name, err)
		}
		if err := d.Check(f.g.N(), el); err != nil {
			log.Fatalf("%s: invariants violated: %v", f.name, err)
		}
		fmt.Printf("== %s\n", f.name)
		fmt.Printf("   n=%d m=%d threshold=%d   |Em|=%d |Es|=%d |Er|=%d (budget %d)\n",
			f.g.N(), f.g.M(), d.Threshold, len(d.Em), len(d.Es), len(d.Er), f.g.M()/6)
		fmt.Printf("   Es orientation out-degree: %d (≤ threshold %d)\n",
			d.EsOrient.MaxOutDegree(), d.Threshold)
		for _, cl := range d.Clusters {
			fmt.Printf("   cluster %d: k=%-4d minDeg=%-3d conductance=%.4f mixing≈%.0f rounds\n",
				cl.ID, cl.K(), cl.MinDegree, cl.Conductance, cl.MixingTime)
		}
		if len(d.Clusters) == 0 {
			fmt.Println("   (no clusters — the whole graph peeled into Es)")
		}
		fmt.Printf("   decomposition bill: %d rounds\n\n", ledger.Rounds())
	}
	fmt.Println("all decompositions passed the Definition 2.2 invariant checker")
}
