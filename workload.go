package kplist

import "kplist/internal/workload"

// The workload surface re-exports internal/workload: seeded scenario
// generators beyond G(n,p) whose instances carry the structural properties
// (planted cliques, degeneracy bounds, triangle-freeness) that experiments
// and the differential test harness assert against. See DESIGN.md §6 for
// the family ↔ sparsity-regime map.

// WorkloadSpec selects and sizes one workload instance.
type WorkloadSpec = workload.Spec

// WorkloadInstance is a generated graph plus its guaranteed properties.
type WorkloadInstance = workload.Instance

// WorkloadProperties are the structural guarantees an instance ships with.
type WorkloadProperties = workload.Properties

// Workload family names accepted by GenerateWorkload.
const (
	WorkloadBarabasiAlbert    = workload.FamilyBarabasiAlbert
	WorkloadBipartite         = workload.FamilyBipartite
	WorkloadBoundedDegeneracy = workload.FamilyBoundedDegeneracy
	WorkloadGrid              = workload.FamilyGrid
	WorkloadKronecker         = workload.FamilyKronecker
	WorkloadPlantedClique     = workload.FamilyPlantedClique
	WorkloadStochasticBlock   = workload.FamilyStochasticBlock
)

// WorkloadFamilies returns the registered family names in stable order.
func WorkloadFamilies() []string { return workload.Families() }

// DefaultWorkloadSpec returns the representative spec for a family at size
// n — the parameters the experiments and the differential suite use.
func DefaultWorkloadSpec(family string, n int, seed int64) WorkloadSpec {
	return workload.DefaultSpec(family, n, seed)
}

// GenerateWorkload builds the workload instance described by spec,
// deterministically under spec.Seed.
func GenerateWorkload(spec WorkloadSpec) (*WorkloadInstance, error) {
	return workload.Generate(spec)
}

// MutationTraceSpec selects and sizes one mutation trace (the dynamic
// scenario axis: batches of edge mutations to Apply against a Session).
type MutationTraceSpec = workload.TraceSpec

// MutationTrace is a generated schedule of mutation batches; every
// mutation is effective against the evolving graph it was generated for.
type MutationTrace = workload.MutationTrace

// Mutation-trace schedule names accepted by GenerateMutationTrace.
const (
	TraceInsert         = workload.ScheduleInsert
	TraceDelete         = workload.ScheduleDelete
	TraceChurn          = workload.ScheduleChurn
	TraceRebuildTrigger = workload.ScheduleRebuildTrigger
)

// MutationTraceSchedules returns the registered schedule names in stable
// order.
func MutationTraceSchedules() []string { return workload.TraceSchedules() }

// GenerateMutationTrace builds the mutation trace described by spec
// against g, deterministically under spec.Seed. The batches are valid to
// apply in order starting from a graph equal to g — see Session.Apply.
func GenerateMutationTrace(g *Graph, spec MutationTraceSpec) (*MutationTrace, error) {
	return workload.GenerateTrace(g, spec)
}
