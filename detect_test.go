package kplist

import (
	"strings"
	"testing"
)

func TestDetectCONGEST(t *testing.T) {
	with := Complete(10)
	found, res, err := DetectCONGEST(with, 5, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("K10 contains K5")
	}
	if len(res.Cliques) != 1 {
		t.Errorf("witness count = %d, want 1", len(res.Cliques))
	}
	without := ErdosRenyi(60, 0.05, 2)
	found, res, err = DetectCONGEST(without, 6, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if found && without.CountCliques(6) == 0 {
		t.Error("false positive detection")
	}
	if !found && len(res.Cliques) != 0 {
		t.Error("no witness expected")
	}
}

func TestCountCONGEST(t *testing.T) {
	g := Complete(8)
	count, res, err := CountCONGEST(g, 4, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if count != 70 {
		t.Errorf("C(8,4) = 70, got %d", count)
	}
	if res.Rounds <= 0 {
		t.Error("no bill")
	}
}

func TestCountTrianglesCC(t *testing.T) {
	g := ErdosRenyi(150, 0.3, 4)
	count, res, err := CountTrianglesCC(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if count != g.CountCliques(3) {
		t.Errorf("algebraic count %d, enumeration %d", count, g.CountCliques(3))
	}
	if res.Rounds <= 0 {
		t.Error("no bill")
	}
	// §5: on dense graphs the counter is cheaper than the lister.
	dense := ErdosRenyi(150, 0.8, 5)
	_, cres, err := CountTrianglesCC(dense, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lres, err := ListCongestedClique(dense, 3, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Rounds >= lres.Rounds {
		t.Errorf("dense: counting (%d) should beat listing (%d)", cres.Rounds, lres.Rounds)
	}
}

func TestDetectCongestedClique(t *testing.T) {
	g, _ := PlantedCliques(80, 5, 1, 0.02, 6)
	found, res, err := DetectCongestedClique(g, 5, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !found || len(res.Cliques) != 1 {
		t.Error("planted K5 should be detected with one witness")
	}
}

func TestResultString(t *testing.T) {
	g := Complete(6)
	res, err := ListBroadcast(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"cliques=15", "rounds=", "messages="} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}
