// Benchmarks: one testing.B target per paper artefact (DESIGN.md §4).
// Each benchmark executes the full simulated algorithm and reports the
// charged CONGEST rounds as a custom metric alongside wall-clock cost.
// cmd/benchrunner regenerates the full sweep tables recorded in
// EXPERIMENTS.md; these targets pin each experiment at a representative
// point so `go test -bench=.` exercises every code path.
package kplist

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"kplist/internal/arblist"
	"kplist/internal/baseline"
	"kplist/internal/congest"
	"kplist/internal/core"
	"kplist/internal/expander"
	"kplist/internal/graph"
	"kplist/internal/sparselist"
	"kplist/internal/workload"
)

// benchGraphCONGEST is the community workload at a representative size.
func benchGraphCONGEST() (*graph.Graph, int) {
	rng := rand.New(rand.NewSource(1))
	const n, pocketSize = 384, 64
	density := 0.7
	var edges []graph.Edge
	base := 0
	for c := 0; c < 4; c++ {
		sub := graph.RandomBipartite(pocketSize, density, rng)
		for _, e := range sub.Edges() {
			edges = append(edges, graph.Edge{U: e.U + graph.V(base), V: e.V + graph.V(base)})
		}
		base += pocketSize
	}
	for v := base; v < n; v++ {
		lo := rng.Intn(4) * pocketSize
		deg := 3
		if v%3 == 0 {
			deg = 9
		}
		for i := 0; i < deg; i++ {
			edges = append(edges, graph.Edge{U: graph.V(v), V: graph.V(lo + rng.Intn(pocketSize))})
		}
	}
	g := graph.MustNew(n, edges)
	return g, int(density * float64(pocketSize) / 4)
}

// BenchmarkE1_Thm11_KpCongest: Theorem 1.1 pipeline per clique size.
func BenchmarkE1_Thm11_KpCongest(b *testing.B) {
	g, thr := benchGraphCONGEST()
	for _, p := range []int{4, 5, 6} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			if testing.Short() && p > 5 {
				b.Skip("skipping the largest clique size in -short mode")
			}
			var rounds int64
			for i := 0; i < b.N; i++ {
				var ledger congest.Ledger
				_, err := core.ListCliques(g, core.Params{
					P: p, Seed: 1, FinalExponent: 0.4, ClusterThreshold: thr,
				}, congest.UnitCosts(), &ledger)
				if err != nil {
					b.Fatal(err)
				}
				rounds = ledger.Rounds()
			}
			b.ReportMetric(float64(rounds), "congest-rounds")
		})
	}
}

// BenchmarkE2_Thm12_K4Fast: fast-K4 (Theorem 1.2) vs the general pipeline.
func BenchmarkE2_Thm12_K4Fast(b *testing.B) {
	g, thr := benchGraphCONGEST()
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"general", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				var ledger congest.Ledger
				_, err := core.ListCliques(g, core.Params{
					P: 4, FastK4: mode.fast, Seed: 1, FinalExponent: 0.4, ClusterThreshold: thr,
				}, congest.UnitCosts(), &ledger)
				if err != nil {
					b.Fatal(err)
				}
				rounds = ledger.Rounds()
			}
			b.ReportMetric(float64(rounds), "congest-rounds")
		})
	}
}

// BenchmarkE3_Thm13_CongestedClique: the sparsity-aware lister below and
// above the m ≈ n^{1+2/p} crossover.
func BenchmarkE3_Thm13_CongestedClique(b *testing.B) {
	const n = 256
	for _, tc := range []struct {
		p int
		m int
	}{{3, 2000}, {3, 16000}, {4, 2000}, {4, 8000}, {5, 2000}} {
		b.Run(fmt.Sprintf("p=%d/m=%d", tc.p, tc.m), func(b *testing.B) {
			if testing.Short() && tc.m > 8000 {
				b.Skip("skipping the densest sweep point in -short mode")
			}
			g := graph.GNM(n, tc.m, rand.New(rand.NewSource(3)))
			var rounds int64
			for i := 0; i < b.N; i++ {
				var ledger congest.Ledger
				_, err := sparselist.CongestedCliqueOnGraph(g, tc.p, 3, 0, congest.UnitCosts(), &ledger)
				if err != nil {
					b.Fatal(err)
				}
				rounds = ledger.Rounds()
			}
			b.ReportMetric(float64(rounds), "cc-rounds")
		})
	}
}

// BenchmarkE4_Comparison: this paper vs the Eden-style baseline vs the
// trivial broadcast, all listing K4 on the same graph.
func BenchmarkE4_Comparison(b *testing.B) {
	g, thr := benchGraphCONGEST()
	b.Run("ours-fastk4", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			var ledger congest.Ledger
			if _, err := core.ListCliques(g, core.Params{
				P: 4, FastK4: true, Seed: 1, FinalExponent: 0.4, ClusterThreshold: thr,
			}, congest.UnitCosts(), &ledger); err != nil {
				b.Fatal(err)
			}
			rounds = ledger.Rounds()
		}
		b.ReportMetric(float64(rounds), "congest-rounds")
	})
	b.Run("eden-style", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			var ledger congest.Ledger
			if _, err := baseline.EdenK4List(g, baseline.EdenK4Params{
				Seed: 1, ClusterThreshold: thr,
			}, congest.UnitCosts(), &ledger); err != nil {
				b.Fatal(err)
			}
			rounds = ledger.Rounds()
		}
		b.ReportMetric(float64(rounds), "congest-rounds")
	})
	b.Run("broadcast", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			var ledger congest.Ledger
			if _, err := baseline.BroadcastListGraph(g, 4, congest.UnitCosts(), &ledger); err != nil {
				b.Fatal(err)
			}
			rounds = ledger.Rounds()
		}
		b.ReportMetric(float64(rounds), "congest-rounds")
	})
}

// BenchmarkE5_LowerBoundGap: proximity of the measured bill to the
// Ω̃(n^{(p-2)/p}) lower bound at the benchmark point.
func BenchmarkE5_LowerBoundGap(b *testing.B) {
	g, thr := benchGraphCONGEST()
	n := float64(g.N())
	for _, p := range []int{4, 6} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			if testing.Short() && p > 4 {
				b.Skip("skipping the largest clique size in -short mode")
			}
			var gap float64
			for i := 0; i < b.N; i++ {
				var ledger congest.Ledger
				if _, err := core.ListCliques(g, core.Params{
					P: p, Seed: 1, FinalExponent: 0.4, ClusterThreshold: thr,
				}, congest.UnitCosts(), &ledger); err != nil {
					b.Fatal(err)
				}
				lb := math.Pow(n, float64(p-2)/float64(p))
				gap = float64(ledger.Rounds()) / lb
			}
			b.ReportMetric(gap, "rounds/LB")
		})
	}
}

// BenchmarkE6_IterativeDecay: one LIST run, reporting the number of
// ARB-LIST passes needed to exhaust Er (the ×4 decay law).
func BenchmarkE6_IterativeDecay(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := graph.ErdosRenyi(240, 0.4, rng)
	el := graph.NewEdgeList(g.Edges())
	var passes int
	for i := 0; i < b.N; i++ {
		var ledger congest.Ledger
		res, err := arblist.List(g.N(), el, arblist.Params{P: 4, Seed: 5}, congest.UnitCosts(), &ledger)
		if err != nil {
			b.Fatal(err)
		}
		passes = res.Iterations
	}
	b.ReportMetric(float64(passes), "arb-passes")
}

// BenchmarkE7_Ablations: bad-edge delaying on vs off (max edges brought
// into a single cluster node).
func BenchmarkE7_Ablations(b *testing.B) {
	g, thr := benchGraphCONGEST()
	el := graph.NewEdgeList(g.Edges())
	for _, mode := range []struct {
		name string
		bad  int
	}{{"delay-on", 0}, {"delay-off", 1 << 30}} {
		b.Run(mode.name, func(b *testing.B) {
			var maxLearned int64
			for i := 0; i < b.N; i++ {
				var ledger congest.Ledger
				res, err := arblist.ArbList(g.N(), nil, nil, el, arblist.Params{
					P: 4, Seed: 1, BadThreshold: mode.bad, ClusterThreshold: thr,
				}, congest.UnitCosts(), &ledger)
				if err != nil {
					b.Fatal(err)
				}
				maxLearned = res.Stats.MaxLearned
			}
			b.ReportMetric(float64(maxLearned), "max-learned")
		})
	}
}

// BenchmarkWorkloadGenerate pins the generator subsystem's throughput per
// family at a representative size.
func BenchmarkWorkloadGenerate(b *testing.B) {
	for _, family := range workload.Families() {
		b.Run(family, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := workload.Generate(workload.DefaultSpec(family, 512, int64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSessionServe pins the Session serving path: "miss" pays one full
// listing execution per iteration (fresh seed defeats the cache), "hit"
// measures the cached fast path a warm serving tier actually runs.
func BenchmarkSessionServe(b *testing.B) {
	inst := workload.MustGenerate(workload.DefaultSpec(workload.FamilyPlantedClique, 192, 1))
	b.Run("miss", func(b *testing.B) {
		s := NewSession(inst.G, SessionConfig{})
		defer s.Close()
		for i := 0; i < b.N; i++ {
			if _, err := s.Query(Query{P: 4, Algo: AlgoCongestedClique, Seed: int64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		s := NewSession(inst.G, SessionConfig{})
		defer s.Close()
		if _, err := s.Query(Query{P: 4, Algo: AlgoCongestedClique}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Query(Query{P: 4, Algo: AlgoCongestedClique}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSubstrates pins the hot substrate paths so regressions in the
// simulator itself are visible independently of the algorithms.
func BenchmarkSubstrates(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g := graph.ErdosRenyi(400, 0.1, rng)
	el := graph.NewEdgeList(g.Edges())
	b.Run("degeneracy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Degeneracy()
		}
	})
	b.Run("clique-enum-k4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.CountCliques(4)
		}
	})
	b.Run("expander-decompose", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var ledger congest.Ledger
			if _, err := expander.Decompose(g.N(), el, expander.Params{Threshold: 8, Seed: int64(i)},
				congest.UnitCosts(), &ledger); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("engine-flood", func(b *testing.B) {
		ring := graph.Cycle(64)
		for i := 0; i < b.N; i++ {
			net := congest.NewNetwork(ring, congest.Options{})
			if _, err := net.Run(func(ctx *congest.Context) error {
				for r := 0; r < 8; r++ {
					if err := ctx.Broadcast(congest.Word{Tag: congest.TagToken}); err != nil {
						return err
					}
					if _, err := ctx.NextRound(); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
