package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs run() with stdout redirected to a pipe-backed temp file.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunCongestVerify(t *testing.T) {
	out, err := capture(t, []string{"-n", "80", "-density", "0.3", "-p", "4", "-algo", "congest", "-verify", "-q", "-seed", "3"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"graph: n=80", "rounds:", "verification: OK", "phase breakdown"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllAlgos(t *testing.T) {
	for _, algo := range []string{"congest", "fastk4", "cclique", "broadcast", "eden"} {
		out, err := capture(t, []string{"-n", "60", "-density", "0.3", "-p", "4", "-algo", algo, "-verify", "-q"})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out, "verification: OK") {
			t.Errorf("%s did not verify:\n%s", algo, out)
		}
	}
}

func TestRunGNM(t *testing.T) {
	out, err := capture(t, []string{"-n", "50", "-m", "200", "-p", "3", "-algo", "cclique", "-q"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "m=200") {
		t.Errorf("GNM edge count not honored:\n%s", out)
	}
}

func TestRunUnknownAlgo(t *testing.T) {
	if _, err := capture(t, []string{"-algo", "nonsense"}); err == nil {
		t.Error("unknown algo should error")
	}
}

func TestRunPrintsCliquesWithoutQuiet(t *testing.T) {
	out, err := capture(t, []string{"-n", "10", "-density", "1", "-p", "4", "-algo", "broadcast"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[0 1 2 3]") {
		t.Errorf("clique listing missing:\n%s", out)
	}
}

func TestLoadEdgesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	content := "# demo\n0 1\n1 2\n0 2\n2 3\n"
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, []string{"-edges", path, "-n", "4", "-p", "3", "-algo", "broadcast", "-verify", "-q"})
	if err != nil {
		t.Fatalf("run with -edges: %v", err)
	}
	if !strings.Contains(out, "cliques: 1") {
		t.Errorf("expected one triangle:\n%s", out)
	}
	// Malformed file errors out.
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("x y\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, []string{"-edges", bad, "-n", "4"}); err == nil {
		t.Error("malformed edge file should error")
	}
	if _, err := capture(t, []string{"-edges", filepath.Join(dir, "missing.txt"), "-n", "4"}); err == nil {
		t.Error("missing file should error")
	}
}

func TestEffectiveP(t *testing.T) {
	if effectiveP("fastk4", 7) != 4 || effectiveP("eden", 7) != 4 || effectiveP("congest", 5) != 5 {
		t.Error("effectiveP wrong")
	}
}
