// Command kplist lists Kp cliques of a generated or loaded graph with the
// paper's algorithms and prints the exact output size plus the CONGEST
// round bill, broken down by phase.
//
// Usage:
//
//	kplist -n 256 -density 0.35 -p 4 -algo congest
//	kplist -n 256 -m 4000 -p 3 -algo cclique
//	kplist -edges graph.txt -p 4 -algo eden
//
// The -edges file format is one "u v" pair per line (0-based vertex IDs);
// -n must be given alongside it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"kplist"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kplist:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("kplist", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 200, "number of vertices for generated graphs (also required with -edges)")
		density = fs.Float64("density", 0.3, "Erdős–Rényi edge probability (ignored when -m or -edges set)")
		m       = fs.Int("m", 0, "exact edge count (G(n,m)) instead of density")
		p       = fs.Int("p", 4, "clique size to list")
		algo    = fs.String("algo", "congest", "algorithm: congest | fastk4 | cclique | broadcast | eden")
		seed    = fs.Int64("seed", 1, "random seed (deterministic runs)")
		edges   = fs.String("edges", "", "load graph from an edge-list file instead of generating")
		verify  = fs.Bool("verify", false, "verify output against sequential ground truth")
		paper   = fs.Bool("papercosts", false, "charge explicit log factors for the Õ(·) terms")
		quiet   = fs.Bool("q", false, "suppress the clique listing, print only the summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *kplist.Graph
	var err error
	switch {
	case *edges != "":
		g, err = loadEdges(*edges, *n)
		if err != nil {
			return err
		}
	case *m > 0:
		g = kplist.GNM(*n, *m, *seed)
	default:
		g = kplist.ErdosRenyi(*n, *density, *seed)
	}
	fmt.Fprintf(out, "graph: n=%d m=%d\n", g.N(), g.M())

	opt := kplist.Options{Seed: *seed, PaperCosts: *paper}
	var res *kplist.Result
	switch *algo {
	case "congest":
		res, err = kplist.ListCONGEST(g, *p, opt)
	case "fastk4":
		opt.FastK4 = true
		res, err = kplist.ListCONGEST(g, 4, opt)
	case "cclique":
		res, err = kplist.ListCongestedClique(g, *p, opt)
	case "broadcast":
		res, err = kplist.ListBroadcast(g, *p, opt)
	case "eden":
		res, err = kplist.ListEdenK4(g, opt)
	default:
		return fmt.Errorf("unknown -algo %q", *algo)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "algorithm: %s   p=%d   seed=%d\n", *algo, *p, *seed)
	fmt.Fprintf(out, "cliques: %d\n", len(res.Cliques))
	fmt.Fprintf(out, "rounds: %d   messages: %d\n", res.Rounds, res.Messages)
	if res.OuterIterations > 0 {
		fmt.Fprintf(out, "outer iterations: %d   arboricity ladder: %v\n", res.OuterIterations, res.ArboricityLadder)
	}
	fmt.Fprintln(out, "phase breakdown:")
	for _, pc := range res.Phases {
		fmt.Fprintf(out, "  %-34s %10d rounds %14d msgs\n", pc.Name, pc.Rounds, pc.Messages)
	}
	if *verify {
		if err := kplist.Verify(g, effectiveP(*algo, *p), res.Cliques); err != nil {
			return fmt.Errorf("verification FAILED: %w", err)
		}
		fmt.Fprintln(out, "verification: OK (exact match with sequential ground truth)")
	}
	if !*quiet {
		for _, c := range res.Cliques {
			fmt.Fprintln(out, c)
		}
	}
	return nil
}

func effectiveP(algo string, p int) int {
	if algo == "fastk4" || algo == "eden" {
		return 4
	}
	return p
}

func loadEdges(path string, n int) (*kplist.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var edges []kplist.Edge
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var u, v int
		if _, err := fmt.Sscanf(text, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		edges = append(edges, kplist.Edge{U: kplist.V(u), V: kplist.V(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return kplist.NewGraph(n, edges)
}
