package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"kplist/internal/cluster"
	"kplist/internal/server"
)

// TestMain doubles as a cluster-mode node daemon: when re-executed with
// KPLISTGW_NODE_CHILD=1 the test binary runs a real kplistd-equivalent
// process (server.Open in cluster mode over a data dir), so the failover
// test can SIGKILL an actual owner process rather than close an
// in-process listener.
func TestMain(m *testing.M) {
	if os.Getenv("KPLISTGW_NODE_CHILD") == "1" {
		if err := nodeChild(); err != nil {
			fmt.Fprintln(os.Stderr, "kplistgw node child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func nodeChild() error {
	cfg, err := cluster.ParseConfig(os.Getenv("KPLISTGW_NODE_PEERS"))
	if err != nil {
		return err
	}
	ring, err := cluster.NewRing(cfg)
	if err != nil {
		return err
	}
	srv, err := server.Open(server.Config{
		DefaultDeadline: time.Minute,
		ClusterSelf:     os.Getenv("KPLISTGW_NODE_SELF"),
		ClusterRing:     ring,
		DataDir:         os.Getenv("KPLISTGW_NODE_DIR"),
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "kplistnode listening on %s\n", ln.Addr())
	return http.Serve(ln, srv.Handler())
}

// spawnNode re-execs the test binary as cluster node `self` and returns
// the process plus its base URL once it is listening. peersSpec only
// needs the member names to be right — node-side placement hashes names,
// never addresses.
func spawnNode(t *testing.T, self, peersSpec, dir string) (*exec.Cmd, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"KPLISTGW_NODE_CHILD=1",
		"KPLISTGW_NODE_SELF="+self,
		"KPLISTGW_NODE_PEERS="+peersSpec,
		"KPLISTGW_NODE_DIR="+dir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "kplistnode listening on "); ok {
				addrc <- strings.Fields(rest)[0]
			}
			// Keep draining so the child never blocks on a full pipe.
		}
	}()
	select {
	case addr := <-addrc:
		return cmd, "http://" + addr
	case <-time.After(15 * time.Second):
		t.Fatalf("node %s never reported its listen address", self)
		return nil, ""
	}
}

// startGateway runs the gateway daemon loop in-process on :0 and returns
// its base URL plus the error channel the loop reports on at shutdown.
func startGateway(t *testing.T, ctx context.Context, args []string) (string, <-chan error) {
	t.Helper()
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, args, io.Discard, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr.String(), errc
	case err := <-errc:
		t.Fatalf("gateway exited before listening: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("gateway never reported its listen address")
	}
	return "", nil
}

func doJSON(method, url string, body any) (*http.Response, []byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(buf))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp, nil, err
	}
	return resp, out, nil
}

// failoverWorkload is the deterministic register body + mutation batches
// shared by the cluster under kill and the never-killed replay.
func failoverWorkload() (map[string]any, []map[string]any) {
	const n = 80
	rng := rand.New(rand.NewSource(43))
	var edges [][2]int32
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.08 {
				edges = append(edges, [2]int32{u, v})
			}
		}
	}
	reg := map[string]any{"name": "failover", "n": n, "edges": edges}
	batches := make([]map[string]any, 120)
	for i := range batches {
		muts := make([]map[string]any, 16)
		for j := range muts {
			op := "add"
			if rng.Intn(2) == 0 {
				op = "remove"
			}
			u := rng.Intn(n)
			v := rng.Intn(n - 1)
			if v >= u {
				v++
			}
			muts[j] = map[string]any{"op": op, "u": u, "v": v}
		}
		batches[i] = map[string]any{"mutations": muts}
	}
	return reg, batches
}

func cliqueStream(t *testing.T, base, id string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/graphs/" + id + "/cliques?p=3&algo=truth&order=lex&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestGatewayRunLifecycle checks the daemon surface: flag validation,
// ready reporting on -addr :0, /metrics and /healthz serving, graceful
// shutdown on context cancel.
func TestGatewayRunLifecycle(t *testing.T) {
	if err := run(context.Background(), nil, io.Discard, nil); err == nil ||
		!strings.Contains(err.Error(), "-peers is required") {
		t.Fatalf("missing -peers should fail, got %v", err)
	}
	if err := run(context.Background(), []string{"-peers", "bad name=x"}, io.Discard, nil); err == nil {
		t.Fatal("malformed peers spec should fail")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// 127.0.0.1:9 (discard) refuses connections, so the member probes down.
	base, errc := startGateway(t, ctx, []string{
		"-addr", "127.0.0.1:0", "-peers", "n1=127.0.0.1:9", "-probe-interval", "50ms"})

	resp, body, err := doJSON(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "kplistgw_ring_members 1") {
		t.Fatalf("metrics: status %d body %s", resp.StatusCode, body)
	}
	resp, body, err = doJSON(http.MethodGet, base+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), `"down"`) {
		t.Fatalf("healthz with dead member: status %d body %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("gateway never shut down after cancel")
	}
}

// TestGatewayFailoverSIGKILL is the acceptance crash test: three real
// node processes (R=2) behind the gateway daemon, the graph's owner is
// SIGKILLed mid-load, and the cluster must lose zero acknowledged PATCH
// batches — the replica's stream must byte-equal a never-killed replay of
// some prefix j with acked ≤ j ≤ attempted — while reads keep succeeding.
func TestGatewayFailoverSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary; skipped in -short")
	}
	names := []string{"n1", "n2", "n3"}
	// Node-side spec: placeholder addresses, real names. Nodes only gate
	// by ring ownership, which hashes names.
	placeholder := "n1=127.0.0.1:1,n2=127.0.0.1:1,n3=127.0.0.1:1"
	cmds := make(map[string]*exec.Cmd, len(names))
	addrs := make(map[string]string, len(names))
	for _, name := range names {
		cmd, base := spawnNode(t, name, placeholder, t.TempDir())
		cmds[name], addrs[name] = cmd, base
	}
	peers := make([]string, len(names))
	for i, name := range names {
		peers[i] = name + "=" + addrs[name]
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, _ := startGateway(t, ctx, []string{
		"-addr", "127.0.0.1:0",
		"-peers", strings.Join(peers, ","),
		"-replication", "2",
		"-probe-interval", "200ms",
		"-retry-backoff", "5ms"})

	reg, batches := failoverWorkload()
	resp, body, err := doJSON(http.MethodPost, base+"/v1/graphs", reg)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d body %s", resp.StatusCode, body)
	}
	var info struct {
		ID       string   `json:"id"`
		Owner    string   `json:"owner"`
		Replicas []string `json:"replicas"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	// replicas lists the R−1 non-owner members.
	if info.Owner == "" || len(info.Replicas) != 1 {
		t.Fatalf("gateway meta lacks placement: %s", body)
	}

	// Stream batches through the gateway and SIGKILL the owner process
	// once enough are acknowledged — the kill lands while later batches
	// are in flight, so some will be refused (writes never fail over).
	acked, attempted := 0, 0
	for _, b := range batches {
		attempted++
		resp, body, err := doJSON(http.MethodPatch, base+"/v1/graphs/"+info.ID+"/edges", b)
		if err != nil {
			break
		}
		if resp.StatusCode != http.StatusOK {
			if acked < 25 {
				t.Fatalf("patch %d: status %d body %s", attempted, resp.StatusCode, body)
			}
			break // owner is gone; the gateway correctly refuses the write
		}
		acked++
		if acked == 25 {
			go func() { _ = cmds[info.Owner].Process.Kill() }()
		}
	}
	_, _ = cmds[info.Owner].Process.Wait()
	if acked < 25 {
		t.Fatalf("only %d batches acknowledged before failure", acked)
	}

	// Reads keep succeeding through the gateway via the replica.
	status, got := cliqueStream(t, base, info.ID)
	if status != http.StatusOK {
		t.Fatalf("read after owner kill: status %d", status)
	}
	if got == "" {
		t.Fatal("empty stream after failover — comparison is vacuous")
	}

	// Never-killed replays: a standalone in-process server fed the same
	// register body and the first j batches. The replica must serve
	// exactly one prefix in [acked, attempted]: every acknowledged batch
	// was fanned out before the gateway acked, and no partial batch can
	// exist — batches are atomic.
	replay := func(j int) string {
		t.Helper()
		s, err := server.Open(server.Config{DefaultDeadline: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		resp, body, err := doJSON(http.MethodPost, ts.URL+"/v1/graphs", reg)
		if err != nil || resp.StatusCode != http.StatusCreated {
			t.Fatalf("replay register: %v status %v %s", err, resp, body)
		}
		var ri struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &ri); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < j; i++ {
			resp, body, err := doJSON(http.MethodPatch, ts.URL+"/v1/graphs/"+ri.ID+"/edges", batches[i])
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("replay patch %d: %v status %v %s", i, err, resp, body)
			}
		}
		_, stream := cliqueStream(t, ts.URL, ri.ID)
		return stream
	}
	matched := -1
	for j := acked; j <= attempted && j <= len(batches); j++ {
		if replay(j) == got {
			matched = j
			break
		}
	}
	if matched < 0 {
		t.Fatalf("failover stream matches no batch prefix in [%d, %d] — acknowledged writes were lost",
			acked, attempted)
	}
	t.Logf("killed owner %s after acking %d/%d sent batches; replica state = prefix %d",
		info.Owner, acked, attempted, matched)

	// The gateway's health view reflects the dead member, and writes to
	// the dead owner's graphs are refused rather than silently dropped.
	resp, body, err = doJSON(http.MethodGet, base+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), info.Owner) {
		t.Fatalf("healthz after kill: status %d body %s", resp.StatusCode, body)
	}
	resp, _, err = doJSON(http.MethodPatch, base+"/v1/graphs/"+info.ID+"/edges", batches[0])
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("write with dead owner answered %d, want 502", resp.StatusCode)
	}
}
