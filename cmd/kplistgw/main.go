// Command kplistgw is the kplist cluster gateway: it fronts a static
// membership of kplistd nodes with the same /v1 API a single node serves.
// Graph IDs are placed on a deterministic consistent-hash ring (owner +
// R−1 replicas); the gateway routes every request to the owner, fails
// reads over to replicas when the owner is down, fans mutation batches
// out to replicas after the owner acknowledges, and serves partitioned
// graphs (?partitioned=1) by scatter–gather: each shard streams its
// assigned part-tuples and the gateway merges the NDJSON streams into the
// same byte sequence a single node would emit.
//
// Replication self-heals: mutation batches that fail to reach a replica
// are buffered as hints (-hint-queue) and replayed in order when the
// member recovers, and a background anti-entropy sweeper
// (-repair-interval) compares per-graph state digests across the replica
// set and reinstalls diverged copies from the owner's export.
//
//	kplistd -addr :8081 -cluster-self n1 -cluster-peers 'n1=:8081,n2=:8082,n3=:8083' &
//	kplistd -addr :8082 -cluster-self n2 -cluster-peers 'n1=:8081,n2=:8082,n3=:8083' &
//	kplistd -addr :8083 -cluster-self n3 -cluster-peers 'n1=:8081,n2=:8082,n3=:8083' &
//	kplistgw -addr :8080 -peers 'n1=:8081,n2=:8082,n3=:8083'
//
//	curl -s -X POST localhost:8080/v1/graphs \
//	  -d '{"name":"demo","workload":{"family":"planted-clique","n":256,"seed":7,"cliqueSize":4}}'
//	curl -s 'localhost:8080/v1/graphs/<id>/cliques?p=4&stream=1'
//	curl -s localhost:8080/healthz
//
// See DESIGN.md §12 for the cluster architecture and §13 for the
// self-healing replication machinery.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kplist/internal/cluster"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "kplistgw:", err)
		os.Exit(1)
	}
}

// run starts the gateway and blocks until ctx is cancelled (then drains
// connections) or the listener fails. When ready is non-nil the bound
// address is sent on it once listening — the test hook for -addr :0.
func run(ctx context.Context, args []string, logw io.Writer, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("kplistgw", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		peers   = fs.String("peers", "", "cluster membership: @file.json, or inline name=addr,name=addr,...")
		repl    = fs.Int("replication", 0, "replicas per graph including the owner (0 = config default 2)")
		vnodes  = fs.Int("vnodes", 0, "virtual nodes per member on the hash ring (0 = config default 64)")
		seed    = fs.Int64("hash-seed", 0, "hash-ring seed (must match the nodes' -cluster-seed)")
		probe   = fs.Duration("probe-interval", 2*time.Second, "member health-probe period")
		backoff = fs.Duration("retry-backoff", 25*time.Millisecond, "base pause before each read-failover attempt")
		hintQ   = fs.Int("hint-queue", 0, "hinted-handoff batches buffered per down replica (0 = default 128, <0 disables handoff)")
		repair  = fs.Duration("repair-interval", 0, "anti-entropy sweep period (0 = default 5s, <0 disables the sweeper)")
		jitter  = fs.Int64("jitter-seed", 0, "seed for probe/backoff jitter (0 = default 1; fix for reproducible runs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peers == "" {
		return errors.New("-peers is required")
	}
	ccfg, err := cluster.ParseConfig(*peers)
	if err != nil {
		return err
	}
	if *repl > 0 {
		ccfg.Replication = *repl
	}
	if *vnodes > 0 {
		ccfg.VNodes = *vnodes
	}
	if *seed != 0 {
		ccfg.Seed = *seed
	}
	client, err := cluster.NewClient(ccfg, cluster.ClientOptions{
		ProbeInterval:  *probe,
		RetryBackoff:   *backoff,
		HintQueueLimit: *hintQ,
		RepairInterval: *repair,
		JitterSeed:     *jitter,
	})
	if err != nil {
		return err
	}
	client.Start()
	defer client.Close()
	gw := cluster.NewGateway(client)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ring := client.Ring()
	fmt.Fprintf(logw, "kplistgw listening on %s (%d members, replication=%d, vnodes=%d, probe=%s)\n",
		ln.Addr(), len(ring.Members()), ring.Replication(), ring.Config().VNodes, *probe)
	if ready != nil {
		ready <- ln.Addr()
	}

	hs := &http.Server{Handler: gw}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintln(logw, "kplistgw: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
