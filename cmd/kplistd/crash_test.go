package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"kplist/internal/server"
)

// TestMain doubles as the crash-test daemon: when re-executed with
// KPLISTD_CRASH_CHILD=1 the test binary runs the real daemon loop
// instead of the test suite, so TestCrashRecoveryRoundTrip can SIGKILL
// an actual kplistd process rather than simulate one in-process.
func TestMain(m *testing.M) {
	if os.Getenv("KPLISTD_CRASH_CHILD") == "1" {
		err := run(context.Background(), strings.Fields(os.Getenv("KPLISTD_CRASH_ARGS")), os.Stderr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kplistd child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// spawnDaemon re-execs the test binary as a kplistd daemon over dir and
// returns the process plus its base URL once it is listening.
func spawnDaemon(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"KPLISTD_CRASH_CHILD=1",
		"KPLISTD_CRASH_ARGS=-addr 127.0.0.1:0 -data-dir "+dir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "kplistd listening on "); ok {
				addrc <- strings.Fields(rest)[0]
			}
			// Keep draining so the child never blocks on a full pipe.
		}
	}()
	select {
	case addr := <-addrc:
		return cmd, "http://" + addr
	case <-time.After(15 * time.Second):
		t.Fatal("child daemon never reported its listen address")
		return nil, ""
	}
}

func doJSON(method, url string, body any) (*http.Response, []byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(buf))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp, nil, err
	}
	return resp, out, nil
}

// crashWorkload is the deterministic register body + mutation batches
// shared by the killed daemon and the never-killed replay.
func crashWorkload() (map[string]any, []map[string]any) {
	const n = 80
	rng := rand.New(rand.NewSource(42))
	var edges [][2]int32
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.08 {
				edges = append(edges, [2]int32{u, v})
			}
		}
	}
	reg := map[string]any{"name": "crash", "n": n, "edges": edges}
	batches := make([]map[string]any, 120)
	for i := range batches {
		muts := make([]map[string]any, 16)
		for j := range muts {
			op := "add"
			if rng.Intn(2) == 0 {
				op = "remove"
			}
			u := rng.Intn(n)
			v := rng.Intn(n - 1)
			if v >= u {
				v++
			}
			muts[j] = map[string]any{"op": op, "u": u, "v": v}
		}
		batches[i] = map[string]any{"mutations": muts}
	}
	return reg, batches
}

func cliqueStream(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/graphs/" + id + "/cliques?p=3&algo=truth")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cliques stream: status %d body %s", resp.StatusCode, body)
	}
	return string(body)
}

// TestCrashRecoveryRoundTrip is the satellite end-to-end check: a real
// kplistd process under mutation churn is SIGKILLed mid-batch, restarted
// on the same data dir, and must serve a clique stream byte-identical to
// a never-killed in-process replay of some acknowledged batch prefix j
// with acked ≤ j ≤ attempted — batches are atomic, so no partial batch
// can survive the crash.
func TestCrashRecoveryRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary; skipped in -short")
	}
	dir := t.TempDir()
	cmd, base := spawnDaemon(t, dir)

	reg, batches := crashWorkload()
	resp, body, err := doJSON(http.MethodPost, base+"/v1/graphs", reg)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d body %s", resp.StatusCode, body)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}

	// Stream batches at the daemon and SIGKILL it once enough are
	// acknowledged — the kill lands while later batches are in flight.
	acked, attempted := 0, 0
	for _, b := range batches {
		attempted++
		resp, body, err := doJSON(http.MethodPatch, base+"/v1/graphs/"+info.ID+"/edges", b)
		if err != nil {
			break // the kill severed the connection
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("patch %d: status %d body %s", attempted, resp.StatusCode, body)
		}
		acked++
		if acked == 25 {
			go func() { _ = cmd.Process.Kill() }()
		}
	}
	_, _ = cmd.Process.Wait()
	if acked < 25 {
		t.Fatalf("only %d batches acknowledged before failure", acked)
	}

	// Restart on the same data dir and capture what survived.
	_, base2 := spawnDaemon(t, dir)
	got := cliqueStream(t, base2, info.ID)

	// Never-killed replays: an in-process ephemeral server fed the same
	// register body and the first j batches. The crashed daemon must
	// serve exactly one such prefix.
	replay := func(j int) string {
		t.Helper()
		s, err := server.Open(server.Config{DefaultDeadline: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		resp, body, err := doJSON(http.MethodPost, ts.URL+"/v1/graphs", reg)
		if err != nil || resp.StatusCode != http.StatusCreated {
			t.Fatalf("replay register: %v status %v %s", err, resp, body)
		}
		for i := 0; i < j; i++ {
			resp, body, err := doJSON(http.MethodPatch, ts.URL+"/v1/graphs/"+info.ID+"/edges", batches[i])
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("replay patch %d: %v status %v %s", i, err, resp, body)
			}
		}
		return cliqueStream(t, ts.URL, info.ID)
	}
	matched := -1
	for j := acked; j <= attempted && j <= len(batches); j++ {
		if replay(j) == got {
			matched = j
			break
		}
	}
	if matched < 0 {
		t.Fatalf("recovered stream matches no batch prefix in [%d, %d] — durability or atomicity violated",
			acked, attempted)
	}
	t.Logf("killed after acking %d/%d sent batches; recovered state = prefix %d", acked, attempted, matched)

	// The recovered daemon keeps accepting mutations on the same graph.
	if resp, body, err := doJSON(http.MethodPatch, base2+"/v1/graphs/"+info.ID+"/edges", batches[len(batches)-1]); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("patch after recovery: %v status %v %s", err, resp, body)
	}
}
