// Command kplistd serves clique-listing queries over HTTP: a multi-tenant
// graph registry (upload edge lists or generate workload-family graphs),
// an LRU pool of open sessions, engine-selectable single/batch queries,
// NDJSON clique streaming, and admission control with load-shedding.
// Every graph carries an applied-batch sequence number exposed through
// /v1/graphs/{id}/digest (seq + edge-set content hash) and
// /v1/graphs/{id}/export (a register document that reproduces state and
// seq on another node); in cluster mode, replica applies are seq-tagged
// so duplicates are acknowledged idempotently and gaps are refused —
// the foundation of the gateway's hinted handoff and anti-entropy repair.
//
//	kplistd -addr :8080
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/graphs \
//	  -d '{"name":"demo","workload":{"family":"planted-clique","n":256,"seed":7,"cliqueSize":4}}'
//	curl -s -X POST localhost:8080/v1/graphs/g1/query -d '{"p":4}'
//	curl -s 'localhost:8080/v1/graphs/g1/cliques?p=4&stream=1'
//	curl -s localhost:8080/metrics
//
// See DESIGN.md §7 for the serving architecture.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kplist"
	"kplist/internal/cluster"
	"kplist/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "kplistd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled (then drains
// connections) or the listener fails. When ready is non-nil the bound
// address is sent on it once listening — the test hook for -addr :0.
func run(ctx context.Context, args []string, logw io.Writer, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("kplistd", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		poolSize    = fs.Int("pool", 8, "max open sessions (LRU-evicted beyond this)")
		maxGraphs   = fs.Int("max-graphs", 64, "max registered graphs")
		inFlight    = fs.Int("inflight", 0, "max concurrently executing requests (0 = 2×GOMAXPROCS)")
		queue       = fs.Int("queue", 64, "max requests waiting for an execution slot before shedding 429s")
		deadline    = fs.Duration("deadline", 30*time.Second, "default per-request deadline")
		maxDeadline = fs.Duration("max-deadline", 2*time.Minute, "ceiling for ?deadline_ms= overrides")
		sessConc    = fs.Int("session-concurrency", 0, "per-session scheduler bound (0 = GOMAXPROCS)")
		verify      = fs.Bool("verify", false, "cross-check every fresh result against sequential ground truth")
		dataDir     = fs.String("data-dir", "", "directory for durable graph state (snapshots + WALs); empty = in-memory only")
		noSync      = fs.Bool("no-fsync", false, "skip the per-batch WAL fsync (faster, loses acknowledged batches on crash)")
		clusterSelf = fs.String("cluster-self", "", "this node's member name in -cluster-peers (enables cluster mode)")
		clusterPeer = fs.String("cluster-peers", "", "cluster membership: @file.json, or inline name=addr,name=addr,...")
		clusterRepl = fs.Int("cluster-replication", 0, "replicas per graph including the owner (0 = config default 2)")
		clusterVN   = fs.Int("cluster-vnodes", 0, "virtual nodes per member on the hash ring (0 = config default 64)")
		clusterSeed = fs.Int64("cluster-seed", 0, "hash-ring seed (must match the gateway's)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ring *cluster.Ring
	if *clusterSelf != "" || *clusterPeer != "" {
		if *clusterSelf == "" || *clusterPeer == "" {
			return errors.New("cluster mode needs both -cluster-self and -cluster-peers")
		}
		ccfg, err := cluster.ParseConfig(*clusterPeer)
		if err != nil {
			return err
		}
		if *clusterRepl > 0 {
			ccfg.Replication = *clusterRepl
		}
		if *clusterVN > 0 {
			ccfg.VNodes = *clusterVN
		}
		if *clusterSeed != 0 {
			ccfg.Seed = *clusterSeed
		}
		if _, ok := ccfg.MemberNamed(*clusterSelf); !ok {
			return fmt.Errorf("-cluster-self %q is not a member of -cluster-peers", *clusterSelf)
		}
		ring, err = cluster.NewRing(ccfg)
		if err != nil {
			return err
		}
	}
	cfg := server.Config{
		MaxGraphs:       *maxGraphs,
		PoolSize:        *poolSize,
		MaxInFlight:     *inFlight,
		QueueLimit:      *queue,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		Session: kplist.SessionConfig{
			MaxConcurrent: *sessConc,
			Verify:        *verify,
		},
		DataDir:     *dataDir,
		Store:       kplist.StoreConfig{NoSync: *noSync},
		ClusterSelf: *clusterSelf,
		ClusterRing: ring,
	}
	srv, err := server.Open(cfg)
	if err != nil {
		return fmt.Errorf("opening data dir %s: %w", *dataDir, err)
	}
	defer srv.Close()
	if *dataDir != "" {
		rep := srv.Recovery()
		fmt.Fprintf(logw, "kplistd: recovered %d graph(s) from %s (%d WAL records replayed, %d truncation(s), %d orphan(s) swept) in %s\n",
			rep.Graphs, *dataDir, rep.WALRecordsReplayed, rep.WALTruncations, rep.OrphansSwept,
			rep.Elapsed.Round(time.Millisecond))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "kplistd listening on %s (pool=%d graphs=%d queue=%d deadline=%s)\n",
		ln.Addr(), *poolSize, *maxGraphs, *queue, *deadline)
	if ring != nil {
		fmt.Fprintf(logw, "kplistd: cluster mode as %q (%d members, replication=%d, vnodes=%d)\n",
			*clusterSelf, len(ring.Members()), ring.Replication(), ring.Config().VNodes)
	}
	if ready != nil {
		ready <- ln.Addr()
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintln(logw, "kplistd: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		// Connections drained: flush and release the durable stores so a
		// graceful shutdown leaves fully-synced WALs.
		return srv.Close()
	}
}
