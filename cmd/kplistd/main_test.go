package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDaemonServesAndShutsDown boots the daemon on an ephemeral port,
// registers a graph, queries it, and then cancels the context — the
// graceful-shutdown path must drain and return nil.
func TestDaemonServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	var logs strings.Builder
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-pool", "2"}, &logs, ready)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v\n%s", err, logs.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	reg := `{"workload":{"family":"planted-clique","n":80,"seed":3,"cliqueSize":4}}`
	resp, err = http.Post(base+"/v1/graphs", "application/json", strings.NewReader(reg))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/graphs/"+info.ID+"/query", "application/json",
		strings.NewReader(`{"p":4}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"cliques"`) {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown returned %v\n%s", err, logs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(logs.String(), "listening on") {
		t.Errorf("startup log missing:\n%s", logs.String())
	}
}

func TestDaemonBadFlag(t *testing.T) {
	var logs strings.Builder
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, &logs, nil); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestDaemonBadAddr(t *testing.T) {
	var logs strings.Builder
	err := run(context.Background(), []string{"-addr", "256.256.256.256:99999"}, &logs, nil)
	if err == nil {
		t.Error("unlistenable address should error")
	}
}
