// Command benchrunner regenerates every experiment series recorded in
// EXPERIMENTS.md (the paper's per-theorem round-complexity artefacts,
// DESIGN.md §4). Run with no flags for the full suite, or select
// experiments with -only.
//
//	benchrunner                 # everything, default sizes
//	benchrunner -only e1,e3     # selected experiments
//	benchrunner -quick          # small sizes (seconds instead of minutes)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kplist/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchrunner", flag.ContinueOnError)
	var (
		only    = fs.String("only", "", "comma-separated experiments to run (e1..e11, kernel); empty = all")
		quick   = fs.Bool("quick", false, "small sizes for a fast smoke run")
		seed    = fs.Int64("seed", 1, "random seed")
		workers = fs.Int("workers", 0, "host goroutines for parallel-phase simulation (0 = GOMAXPROCS)")
		kernOut = fs.String("kernelbench", "", "write the kernel throughput baseline (BENCH_kernel.json) to this path; implies the kernel sweep runs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := map[string]bool{}
	if *only != "" {
		for _, tag := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(tag))] = true
		}
	}
	enabled := func(tag string) bool { return len(want) == 0 || want[tag] }

	cfg := bench.Config{Seed: *seed, Workers: *workers}
	ablN, ccN := 240, 200
	if *quick {
		cfg.Sizes = []int{256, 384, 512}
		cfg.EdgeCounts = []int{250, 500, 1000, 2000, 4000}
		cfg.CCN = 128
		cfg.Ps = []int{4, 5}
		cfg.WorkloadSizes = []int{96, 128, 192}
		cfg.PoolSizes = []int{1, 2, 3}
		ablN, ccN = 96, 100
	}

	type runner struct {
		tag string
		fn  func() ([]bench.Series, error)
	}
	runners := []runner{
		{"e1", func() ([]bench.Series, error) { return bench.E1Theorem11(cfg) }},
		{"e2", func() ([]bench.Series, error) { return bench.E2FastK4(cfg) }},
		{"e3", func() ([]bench.Series, error) { return bench.E3CongestedClique(cfg) }},
		{"e4", func() ([]bench.Series, error) { return bench.E4Comparison(cfg) }},
		{"e5", func() ([]bench.Series, error) { return bench.E5LowerBoundGap(cfg) }},
		{"e6", func() ([]bench.Series, error) { return bench.E6IterativeDecay(ablN, 0.4, *seed, *workers) }},
		{"e7", func() ([]bench.Series, error) { return bench.E7Ablations(ablN, 0.4, *seed, *workers) }},
		{"e8", func() ([]bench.Series, error) { return bench.E8CountingVsListing(ccN, *seed, *workers) }},
		{"e9", func() ([]bench.Series, error) { return bench.E9WorkloadFamilies(cfg) }},
		{"e10", func() ([]bench.Series, error) { return bench.E10SessionAmortization(cfg) }},
		{"e11", func() ([]bench.Series, error) { return bench.E11ServerThroughput(cfg) }},
	}
	known := map[string]bool{"kernel": true}
	for _, r := range runners {
		known[r.tag] = true
	}
	for tag := range want {
		if !known[tag] {
			tags := make([]string, 0, len(runners))
			for _, r := range runners {
				tags = append(tags, r.tag)
			}
			tags = append(tags, "kernel")
			return fmt.Errorf("unknown experiment %q (known: %s)", tag, strings.Join(tags, ", "))
		}
	}
	for _, r := range runners {
		if !enabled(r.tag) {
			continue
		}
		fmt.Fprintf(w, "==== %s ====\n", strings.ToUpper(r.tag))
		series, err := r.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", r.tag, err)
		}
		fmt.Fprint(w, bench.RenderAll(series))
	}
	// The kernel throughput sweep is wall-clock (never golden-pinned), so
	// it runs only when asked for: via -only kernel, or implicitly when a
	// -kernelbench baseline path is given.
	if want["kernel"] || *kernOut != "" {
		fmt.Fprintln(w, "==== KERNEL ====")
		kb := bench.KernelBench(*seed, *quick)
		fmt.Fprint(w, kb.Table())
		if *kernOut != "" {
			buf, err := json.MarshalIndent(kb, "", "  ")
			if err != nil {
				return fmt.Errorf("kernel baseline: %w", err)
			}
			if err := os.WriteFile(*kernOut, append(buf, '\n'), 0o644); err != nil {
				return fmt.Errorf("kernel baseline: %w", err)
			}
			fmt.Fprintf(w, "wrote %s\n", *kernOut)
		}
	}
	return nil
}
