// Command benchrunner regenerates every experiment series recorded in
// EXPERIMENTS.md (the paper's per-theorem round-complexity artefacts,
// DESIGN.md §4) and drives the continuous-benchmarking loop (DESIGN.md
// §11). Run with no flags for the full suite, or select experiments with
// -only.
//
//	benchrunner                 # everything, default sizes
//	benchrunner -only e1,e3     # selected experiments
//	benchrunner -quick          # small sizes (seconds instead of minutes)
//	benchrunner -quick -update  # regenerate the committed goldens
//
// Continuous benchmarking (DESIGN.md §11):
//
//	benchrunner -kernelbench BENCH_kernel.json   # append a kernel run to the trajectory
//	benchrunner -only e13 -storebench BENCH_store.json
//	benchrunner -only e14 -clusterbench BENCH_cluster.json
//	benchrunner -only e15 -sketchbench BENCH_sketch.json
//	benchrunner -compare -kernelbench BENCH_kernel.json -storebench BENCH_store.json
//	benchrunner -autotune tuning.json            # measure the kernel knobs on this host
//	benchrunner -tuning tuning.json ...          # run any of the above under a profile
//
// -compare emits the newest run in standard Go benchfmt, judges it
// against the median of the trajectory's same-host history, and exits
// non-zero on regression — the CI bench-gate job.
//
// Golden maintenance: -update rewrites the golden files under -goldendir
// (default cmd/benchrunner/testdata when run from the repo root) — and it
// is scoped by -only: a golden is rewritten only when every experiment it
// pins is selected, so `-only e11 -update` refreshes server_quick.golden
// and leaves the others byte-identical.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"kplist/internal/bench"
	"kplist/internal/graph"
)

// golden binds one committed golden file to the experiments whose -quick
// output it pins.
type golden struct {
	file string
	tags []string
}

// goldens is the registry of committed golden files. The file content is
// exactly the output of `benchrunner -quick -only <tags>`.
func goldens() []golden {
	return []golden{
		{file: "workloads_quick.golden", tags: []string{"e9", "e10"}},
		{file: "server_quick.golden", tags: []string{"e11"}},
		{file: "dynamic_quick.golden", tags: []string{"e12"}},
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchrunner", flag.ContinueOnError)
	var (
		only       = fs.String("only", "", "comma-separated experiments to run (e1..e15, kernel); empty = all")
		quick      = fs.Bool("quick", false, "small sizes for a fast smoke run")
		seed       = fs.Int64("seed", 1, "random seed")
		workers    = fs.Int("workers", 0, "host goroutines for parallel-phase simulation and the kernel sweep fan-out (0 = GOMAXPROCS / the default {1,8} ladder)")
		kernOut    = fs.String("kernelbench", "", "append this run to the kernel perf trajectory (BENCH_kernel.json) at this path; implies the kernel sweep runs")
		storeOut   = fs.String("storebench", "", "append this run to the persistence trajectory (BENCH_store.json) at this path; implies e13 runs")
		clusterOut = fs.String("clusterbench", "", "append this run to the cluster trajectory (BENCH_cluster.json) at this path; implies e14 runs")
		sketchOut  = fs.String("sketchbench", "", "append this run to the estimator trajectory (BENCH_sketch.json) at this path; implies e15 runs")
		update     = fs.Bool("update", false, "rewrite the golden files whose experiments are all selected (requires -quick; scoped by -only)")
		goldenDir  = fs.String("goldendir", filepath.Join("cmd", "benchrunner", "testdata"), "directory holding the golden files -update rewrites")
		compare    = fs.Bool("compare", false, "compare the newest run of the -kernelbench/-storebench trajectories against their same-host history (Go benchfmt output; non-zero exit on regression) instead of running experiments")
		threshold  = fs.Float64("threshold", bench.DefaultCompareThreshold, "base relative regression threshold for -compare (widened per cell by historical noise)")
		autotune   = fs.String("autotune", "", "measure the kernel/incremental-engine tuning knobs on this host and write the profile to this path")
		tuningIn   = fs.String("tuning", "", "load a tuning profile (from -autotune) and apply it before running")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := map[string]bool{}
	if *only != "" {
		for _, tag := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(tag))] = true
		}
	}
	enabled := func(tag string) bool { return len(want) == 0 || want[tag] }
	if *update && !*quick {
		return fmt.Errorf("-update rewrites the -quick goldens; run with -quick")
	}
	if *tuningIn != "" {
		profile, err := bench.LoadTuningProfile(*tuningIn)
		if err != nil {
			return fmt.Errorf("tuning profile: %w", err)
		}
		if host := bench.Fingerprint(); !profile.Host.Comparable(host) {
			fmt.Fprintf(os.Stderr, "benchrunner: warning: tuning profile %s was measured on %s, this host is %s\n",
				*tuningIn, profile.Host, host)
		}
		graph.SetTuning(profile.Tuning)
		fmt.Fprintf(w, "applied tuning profile %s\n", *tuningIn)
	}
	if *compare {
		return runCompare(w, *kernOut, *storeOut, *clusterOut, *sketchOut, *threshold)
	}

	cfg := bench.Config{Seed: *seed, Workers: *workers}
	ablN, ccN := 240, 200
	if *quick {
		cfg.Sizes = []int{256, 384, 512}
		cfg.EdgeCounts = []int{250, 500, 1000, 2000, 4000}
		cfg.CCN = 128
		cfg.Ps = []int{4, 5}
		cfg.WorkloadSizes = []int{96, 128, 192}
		cfg.PoolSizes = []int{1, 2, 3}
		cfg.DynN = 96
		ablN, ccN = 96, 100
	}

	type runner struct {
		tag string
		fn  func() ([]bench.Series, error)
	}
	runners := []runner{
		{"e1", func() ([]bench.Series, error) { return bench.E1Theorem11(cfg) }},
		{"e2", func() ([]bench.Series, error) { return bench.E2FastK4(cfg) }},
		{"e3", func() ([]bench.Series, error) { return bench.E3CongestedClique(cfg) }},
		{"e4", func() ([]bench.Series, error) { return bench.E4Comparison(cfg) }},
		{"e5", func() ([]bench.Series, error) { return bench.E5LowerBoundGap(cfg) }},
		{"e6", func() ([]bench.Series, error) { return bench.E6IterativeDecay(ablN, 0.4, *seed, *workers) }},
		{"e7", func() ([]bench.Series, error) { return bench.E7Ablations(ablN, 0.4, *seed, *workers) }},
		{"e8", func() ([]bench.Series, error) { return bench.E8CountingVsListing(ccN, *seed, *workers) }},
		{"e9", func() ([]bench.Series, error) { return bench.E9WorkloadFamilies(cfg) }},
		{"e10", func() ([]bench.Series, error) { return bench.E10SessionAmortization(cfg) }},
		{"e11", func() ([]bench.Series, error) { return bench.E11ServerThroughput(cfg) }},
		{"e12", func() ([]bench.Series, error) { return bench.E12IncrementalChurn(cfg) }},
	}
	known := map[string]bool{"kernel": true, "e13": true, "e14": true, "e15": true}
	for _, r := range runners {
		known[r.tag] = true
	}
	for tag := range want {
		if !known[tag] {
			tags := make([]string, 0, len(runners))
			for _, r := range runners {
				tags = append(tags, r.tag)
			}
			tags = append(tags, "e13", "e14", "e15", "kernel")
			return fmt.Errorf("unknown experiment %q (known: %s)", tag, strings.Join(tags, ", "))
		}
	}
	outputs := map[string]string{}
	for _, r := range runners {
		if !enabled(r.tag) {
			continue
		}
		series, err := r.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", r.tag, err)
		}
		section := fmt.Sprintf("==== %s ====\n%s", strings.ToUpper(r.tag), bench.RenderAll(series))
		outputs[r.tag] = section
		fmt.Fprint(w, section)
	}
	// The kernel throughput sweep is wall-clock (never golden-pinned), so
	// it runs only when asked for: via -only kernel, or implicitly when a
	// -kernelbench trajectory path is given. The JSON output is an
	// APPENDED trajectory (atomic temp-file + rename, the same overwrite
	// discipline as the store), never an overwritten sample.
	if want["kernel"] || *kernOut != "" {
		fmt.Fprintln(w, "==== KERNEL ====")
		kb := bench.KernelBench(*seed, *quick, *workers)
		fmt.Fprint(w, kb.Table())
		if *kernOut != "" {
			n, err := bench.AppendRun(*kernOut, kb)
			if err != nil {
				return fmt.Errorf("kernel trajectory: %w", err)
			}
			fmt.Fprintf(w, "appended run %d to %s\n", n, *kernOut)
		}
	}
	// E13 (persistence) is wall-clock like the kernel sweep: it runs via
	// -only e13 or implicitly when a -storebench path is given.
	if want["e13"] || *storeOut != "" {
		fmt.Fprintln(w, "==== E13 ====")
		sr, err := bench.StoreBench(*seed, *quick)
		if err != nil {
			return fmt.Errorf("e13: %w", err)
		}
		fmt.Fprint(w, sr.Table())
		if *storeOut != "" {
			n, err := bench.AppendRun(*storeOut, sr)
			if err != nil {
				return fmt.Errorf("store trajectory: %w", err)
			}
			fmt.Fprintf(w, "appended run %d to %s\n", n, *storeOut)
		}
	}
	// E14 (cluster) is wall-clock like the kernel sweep: it runs via
	// -only e14 or implicitly when a -clusterbench path is given.
	if want["e14"] || *clusterOut != "" {
		fmt.Fprintln(w, "==== E14 ====")
		cr, err := bench.ClusterBench(*seed, *quick)
		if err != nil {
			return fmt.Errorf("e14: %w", err)
		}
		fmt.Fprint(w, cr.Table())
		if *clusterOut != "" {
			n, err := bench.AppendRun(*clusterOut, cr)
			if err != nil {
				return fmt.Errorf("cluster trajectory: %w", err)
			}
			fmt.Fprintf(w, "appended run %d to %s\n", n, *clusterOut)
		}
	}
	// E15 (estimators) is wall-clock like the kernel sweep: it runs via
	// -only e15 or implicitly when a -sketchbench path is given.
	if want["e15"] || *sketchOut != "" {
		fmt.Fprintln(w, "==== E15 ====")
		er, err := bench.SketchBench(*seed, *quick)
		if err != nil {
			return fmt.Errorf("e15: %w", err)
		}
		fmt.Fprint(w, er.Table())
		if *sketchOut != "" {
			n, err := bench.AppendRun(*sketchOut, er)
			if err != nil {
				return fmt.Errorf("sketch trajectory: %w", err)
			}
			fmt.Fprintf(w, "appended run %d to %s\n", n, *sketchOut)
		}
	}
	if *autotune != "" {
		fmt.Fprintln(w, "==== AUTOTUNE ====")
		profile := bench.Autotune(*seed, *quick)
		fmt.Fprint(w, profile.Table())
		if err := bench.SaveTuningProfile(*autotune, profile); err != nil {
			return fmt.Errorf("tuning profile: %w", err)
		}
		fmt.Fprintf(w, "wrote %s\n", *autotune)
	}
	if *update {
		return updateGoldens(w, *goldenDir, outputs, enabled)
	}
	return nil
}

// runCompare is the -compare mode: load each given trajectory, emit the
// newest run as Go benchfmt, judge it against the same-host history, and
// error (non-zero exit) when any cell regressed. A trajectory whose
// newest run has no comparable history is REFUSED — reported and skipped,
// never failed — so a new machine's first run cannot masquerade as a
// regression.
func runCompare(w io.Writer, kernPath, storePath, clusterPath, sketchPath string, threshold float64) error {
	if kernPath == "" && storePath == "" && clusterPath == "" && sketchPath == "" {
		return fmt.Errorf("-compare needs at least one trajectory: give -kernelbench, -storebench, -clusterbench and/or -sketchbench")
	}
	var regressed []string
	if kernPath != "" {
		traj, err := bench.LoadKernelTrajectory(kernPath)
		if err != nil {
			return fmt.Errorf("compare: %w", err)
		}
		if n := len(traj.Runs); n > 0 {
			fmt.Fprint(w, traj.Runs[n-1].Benchfmt())
		}
		report := bench.CompareKernel(traj, threshold)
		fmt.Fprint(w, report.Table())
		for _, c := range report.Regressions() {
			regressed = append(regressed, c.Name)
		}
	}
	if storePath != "" {
		traj, err := bench.LoadStoreTrajectory(storePath)
		if err != nil {
			return fmt.Errorf("compare: %w", err)
		}
		if n := len(traj.Runs); n > 0 {
			fmt.Fprint(w, traj.Runs[n-1].Benchfmt())
		}
		report := bench.CompareStore(traj, threshold)
		fmt.Fprint(w, report.Table())
		for _, c := range report.Regressions() {
			regressed = append(regressed, c.Name)
		}
	}
	if clusterPath != "" {
		traj, err := bench.LoadClusterTrajectory(clusterPath)
		if err != nil {
			return fmt.Errorf("compare: %w", err)
		}
		if n := len(traj.Runs); n > 0 {
			fmt.Fprint(w, traj.Runs[n-1].Benchfmt())
		}
		report := bench.CompareCluster(traj, threshold)
		fmt.Fprint(w, report.Table())
		for _, c := range report.Regressions() {
			regressed = append(regressed, c.Name)
		}
	}
	if sketchPath != "" {
		traj, err := bench.LoadSketchTrajectory(sketchPath)
		if err != nil {
			return fmt.Errorf("compare: %w", err)
		}
		if n := len(traj.Runs); n > 0 {
			fmt.Fprint(w, traj.Runs[n-1].Benchfmt())
		}
		report := bench.CompareSketch(traj, threshold)
		fmt.Fprint(w, report.Table())
		for _, c := range report.Regressions() {
			regressed = append(regressed, c.Name)
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("performance regression in %d cell(s): %s",
			len(regressed), strings.Join(regressed, ", "))
	}
	return nil
}

// updateGoldens rewrites each registered golden whose experiments were all
// selected this run; partially selected groups are skipped (a golden must
// never be written with half its sections missing).
func updateGoldens(w io.Writer, dir string, outputs map[string]string, enabled func(string) bool) error {
	wrote := 0
	for _, gl := range goldens() {
		complete := true
		var content strings.Builder
		for _, tag := range gl.tags {
			if !enabled(tag) {
				complete = false
				break
			}
			content.WriteString(outputs[tag])
		}
		if !complete {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("golden update: %w", err)
		}
		path := filepath.Join(dir, gl.file)
		if err := os.WriteFile(path, []byte(content.String()), 0o644); err != nil {
			return fmt.Errorf("golden update: %w", err)
		}
		fmt.Fprintf(w, "updated %s\n", path)
		wrote++
	}
	if wrote == 0 {
		// Distinguish "you selected half a golden group" (a mistake worth
		// failing on) from "nothing you selected is golden-pinned at all"
		// (the kernel and e13 sweeps are wall-clock by design, so
		// `-only kernel -update` has nothing to do and should say so, not
		// fail with a misleading error).
		anyPinned := false
		for _, gl := range goldens() {
			for _, tag := range gl.tags {
				if enabled(tag) {
					anyPinned = true
				}
			}
		}
		if !anyPinned {
			fmt.Fprintln(w, "-update: selection contains no golden-pinned experiments (the kernel and e13 sweeps are wall-clock and never golden-pinned); nothing to update")
			return nil
		}
		return fmt.Errorf("-update wrote nothing: no golden's experiment set is fully selected")
	}
	return nil
}
