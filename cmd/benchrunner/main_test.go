package main

import (
	"strings"
	"testing"
)

func TestRunSelectedExperiments(t *testing.T) {
	var sb strings.Builder
	// Tiny footprint: quick sizes, only the fast experiments.
	if err := run([]string{"-quick", "-only", "e6"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "==== E6 ====") {
		t.Errorf("missing E6 header:\n%s", out)
	}
	if !strings.Contains(out, "|Er| per ARB-LIST pass") {
		t.Errorf("missing E6 series:\n%s", out)
	}
	if strings.Contains(out, "==== E1 ====") {
		t.Error("-only e6 should not run E1")
	}
}

func TestRunE7(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "e7"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "bad-edge delaying") {
		t.Errorf("missing ablation series:\n%s", sb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &sb); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunUnknownTagIsNoop(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "e99"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(sb.String(), "====") {
		t.Error("unknown tag should run nothing")
	}
}
