package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kplist/internal/bench"
	"kplist/internal/graph"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

func TestRunSelectedExperiments(t *testing.T) {
	var sb strings.Builder
	// Tiny footprint: quick sizes, only the fast experiments.
	if err := run([]string{"-quick", "-only", "e6"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "==== E6 ====") {
		t.Errorf("missing E6 header:\n%s", out)
	}
	if !strings.Contains(out, "|Er| per ARB-LIST pass") {
		t.Errorf("missing E6 series:\n%s", out)
	}
	if strings.Contains(out, "==== E1 ====") {
		t.Error("-only e6 should not run E1")
	}
}

func TestRunE7(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "e7"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "bad-edge delaying") {
		t.Errorf("missing ablation series:\n%s", sb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &sb); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunUnknownExperimentErrors(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-only", "e99"}, &sb)
	if err == nil {
		t.Fatal("unknown experiment name should error")
	}
	if !strings.Contains(err.Error(), "e99") || !strings.Contains(err.Error(), "e9") {
		t.Errorf("error should name the bad tag and list known ones: %v", err)
	}
	if sb.Len() != 0 {
		t.Errorf("unknown tag must not produce output:\n%s", sb.String())
	}
	// The error fires even when valid tags accompany the bad one.
	if err := run([]string{"-only", "e6,nope"}, &sb); err == nil {
		t.Error("mixed valid/unknown tags should error")
	}
}

// checkGolden runs `-quick -only <tags>` and compares the output against
// the committed golden. With the test -update flag it first regenerates
// the golden through the tool's own scoped -update path, so there is
// exactly one write path for golden content.
func checkGolden(t *testing.T, tags, file string, headers ...string) {
	t.Helper()
	args := []string{"-quick", "-only", tags}
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := sb.String()
	for _, h := range headers {
		if !strings.Contains(got, h) {
			t.Fatalf("missing %s header:\n%s", h, got)
		}
	}
	if *update {
		if err := run(append(args, "-update", "-goldendir", "testdata"), io.Discard); err != nil {
			t.Fatalf("golden update: %v", err)
		}
	}
	golden := filepath.Join("testdata", file)
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestWorkloadExperimentsGolden pins the full -quick output of the
// workload-family experiments (E9/E10); TestServerExperimentGolden the
// serving experiment (E11); TestDynamicExperimentGolden the dynamic-graph
// churn experiment (E12). Everything printed is deterministic under the
// default seed; regenerate with `go test ./cmd/benchrunner -run Golden
// -update` after intentional changes to the generators, the engines or
// the table format.
func TestServerExperimentGolden(t *testing.T) {
	checkGolden(t, "e11", "server_quick.golden", "==== E11 ====")
}

func TestWorkloadExperimentsGolden(t *testing.T) {
	checkGolden(t, "e9,e10", "workloads_quick.golden", "==== E9 ====", "==== E10 ====")
}

func TestDynamicExperimentGolden(t *testing.T) {
	checkGolden(t, "e12", "dynamic_quick.golden", "==== E12 ====")
}

// TestUpdateScopedByOnly pins the golden-hygiene fix: -update rewrites
// exactly the goldens whose experiment sets are fully selected by -only,
// never the rest, and refuses to write a partial group.
func TestUpdateScopedByOnly(t *testing.T) {
	dir := t.TempDir()

	// Selecting e12 only must write dynamic_quick.golden and nothing else.
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "e12", "-update", "-goldendir", dir}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "dynamic_quick.golden" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("-only e12 -update wrote %v, want exactly dynamic_quick.golden", names)
	}
	// The written golden is exactly the run's E12 output.
	buf, err := os.ReadFile(filepath.Join(dir, "dynamic_quick.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), string(buf)) {
		t.Fatal("written golden does not match the run output")
	}

	// A partially selected group (e9 without e10) must write nothing and
	// say so.
	if err := run([]string{"-quick", "-only", "e9", "-update", "-goldendir", t.TempDir()}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "wrote nothing") {
		t.Fatalf("partial group update should refuse, got %v", err)
	}

	// -update without -quick is a mistake (the goldens pin quick output).
	if err := run([]string{"-only", "e12", "-update"}, io.Discard); err == nil {
		t.Fatal("-update without -quick should error")
	}
}

// TestKernelBaseline runs the kernel throughput sweep in quick mode and
// checks the appended trajectory document: full family × p × workers
// coverage and deterministic clique counts (ns/op is hardware noise and
// not asserted). Worker counts must not change any cell's clique census.
func TestKernelBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "kernel", "-kernelbench", path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "==== KERNEL ====") {
		t.Errorf("missing kernel table:\n%s", sb.String())
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trajectory not written: %v", err)
	}
	var doc struct {
		Runs []struct {
			GoVersion string `json:"goVersion"`
			Host      struct {
				Cores int `json:"cores"`
			} `json:"host"`
			Rows []struct {
				Family  string `json:"family"`
				P       int    `json:"p"`
				Workers int    `json:"workers"`
				Cliques int64  `json:"cliques"`
				NsPerOp int64  `json:"nsPerOp"`
			} `json:"rows"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("bad trajectory JSON: %v", err)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("trajectory has %d runs, want 1", len(doc.Runs))
	}
	kb := doc.Runs[0]
	if kb.GoVersion == "" || len(kb.Rows) != 3*3*2 {
		t.Fatalf("run has %d rows (want 18), goVersion %q", len(kb.Rows), kb.GoVersion)
	}
	if kb.Host.Cores <= 0 {
		t.Errorf("run is missing its host fingerprint: %s", buf[:200])
	}
	census := map[string]int64{}
	for _, r := range kb.Rows {
		if r.NsPerOp <= 0 {
			t.Errorf("%s p=%d workers=%d: ns/op %d", r.Family, r.P, r.Workers, r.NsPerOp)
		}
		key := fmt.Sprintf("%s/p=%d", r.Family, r.P)
		if prev, ok := census[key]; ok && prev != r.Cliques {
			t.Errorf("%s: clique census differs across worker counts: %d vs %d", key, prev, r.Cliques)
		}
		census[key] = r.Cliques
	}
	// -only kernel must not run the experiment series.
	if strings.Contains(sb.String(), "==== E6 ====") {
		t.Error("-only kernel should not run E6")
	}
}

// TestKernelTrajectoryAppendsAndMigrates seeds the path with a LEGACY
// single-run baseline document, then appends twice: the legacy document
// must survive verbatim as run 0 and the file must accumulate runs — the
// BENCH_kernel.json migration semantics.
func TestKernelTrajectoryAppendsAndMigrates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
	legacy := `{"goVersion":"go1.0-legacy","gomaxprocs":1,"quick":false,"seed":1,"rows":[{"family":"sparse-gnp","n":1024,"m":10562,"p":3,"workers":1,"cliques":1435,"nsPerOp":945455}]}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 3; i++ {
		var sb strings.Builder
		if err := run([]string{"-quick", "-only", "kernel", "-kernelbench", path}, &sb); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := fmt.Sprintf("appended run %d to %s", i, path); !strings.Contains(sb.String(), want) {
			t.Errorf("append %d missing %q:\n%s", i, want, sb.String())
		}
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("bad trajectory JSON: %v", err)
	}
	if len(doc.Runs) != 3 {
		t.Fatalf("trajectory has %d runs, want 3 (legacy + 2 appends)", len(doc.Runs))
	}
	var run0 struct {
		GoVersion string `json:"goVersion"`
		Rows      []struct {
			Cliques int64 `json:"cliques"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(doc.Runs[0], &run0); err != nil {
		t.Fatal(err)
	}
	if run0.GoVersion != "go1.0-legacy" || len(run0.Rows) != 1 || run0.Rows[0].Cliques != 1435 {
		t.Errorf("legacy baseline was not preserved as run 0: %s", doc.Runs[0])
	}
	// No stray temp files from the atomic writes.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("append left temp files behind: %v", names)
	}
}

// TestKernelSweepHonorsWorkers pins the -workers bugfix: the kernel sweep
// must measure the requested fan-out, not a hardcoded ladder.
func TestKernelSweepHonorsWorkers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "kernel", "-workers", "3", "-kernelbench", path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Workers int `json:"workers"`
			Rows    []struct {
				Workers int `json:"workers"`
			} `json:"rows"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("want 1 run, got %d", len(doc.Runs))
	}
	if doc.Runs[0].Workers != 3 {
		t.Errorf("run did not record -workers 3, got %d", doc.Runs[0].Workers)
	}
	counts := map[int]bool{}
	for _, r := range doc.Runs[0].Rows {
		counts[r.Workers] = true
	}
	if !counts[3] || counts[8] {
		t.Errorf("sweep measured worker counts %v, want {1, 3}", counts)
	}
}

// TestUpdateWithNoGoldenPinnedSelection pins the misleading-error bugfix:
// -update with a selection that is never golden-pinned (kernel, e13) must
// explain that instead of failing.
func TestUpdateWithNoGoldenPinnedSelection(t *testing.T) {
	for _, tags := range []string{"kernel", "e13"} {
		dir := t.TempDir()
		var sb strings.Builder
		if err := run([]string{"-quick", "-only", tags, "-update", "-goldendir", dir}, &sb); err != nil {
			t.Fatalf("-only %s -update should not fail: %v", tags, err)
		}
		if !strings.Contains(sb.String(), "never golden-pinned") {
			t.Errorf("-only %s -update should explain there is nothing to update:\n%s", tags, sb.String())
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Errorf("-only %s -update wrote files: %v", tags, entries)
		}
	}
}

// TestStoreTrajectoryAppends runs E13 twice against the same
// BENCH_store.json and checks the file accumulates runs instead of being
// overwritten — the trajectory semantics the continuous-benchmarking
// direction depends on.
func TestStoreTrajectoryAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_store.json")
	for i := 1; i <= 2; i++ {
		var sb strings.Builder
		if err := run([]string{"-quick", "-only", "e13", "-storebench", path}, &sb); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !strings.Contains(sb.String(), "==== E13 ====") ||
			!strings.Contains(sb.String(), "cold-open-from-mmap") {
			t.Errorf("run %d missing E13 table:\n%s", i, sb.String())
		}
		if want := fmt.Sprintf("appended run %d to %s", i, path); !strings.Contains(sb.String(), want) {
			t.Errorf("run %d missing %q:\n%s", i, want, sb.String())
		}
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			GoVersion string `json:"goVersion"`
			Snapshots []struct {
				Family     string `json:"family"`
				ColdOpenNs int64  `json:"coldOpenNs"`
			} `json:"snapshots"`
			WAL []struct {
				Fsync      bool  `json:"fsync"`
				NsPerBatch int64 `json:"nsPerBatch"`
			} `json:"wal"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("bad trajectory JSON: %v", err)
	}
	if len(doc.Runs) != 2 {
		t.Fatalf("trajectory has %d runs, want 2", len(doc.Runs))
	}
	for _, r := range doc.Runs {
		if r.GoVersion == "" || len(r.Snapshots) != 3 || len(r.WAL) != 2 {
			t.Fatalf("malformed run: %+v", r)
		}
		for _, s := range r.Snapshots {
			if s.ColdOpenNs <= 0 {
				t.Errorf("%s: non-positive cold-open time", s.Family)
			}
		}
	}
}

// writeSyntheticKernelTrajectory builds a same-host trajectory of
// baseRuns runs whose cells sit at base ns ± jitter, then one newest run
// scaled by newestScale, and writes it to path.
func writeSyntheticKernelTrajectory(t *testing.T, path string, baseRuns int, newestScale float64) {
	t.Helper()
	host := bench.HostFingerprint{CPU: "synthetic-cpu", Cores: 8, GOMAXPROCS: 8, GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"}
	mkRun := func(scale float64, jitter int64) bench.KernelRun {
		run := bench.KernelRun{Host: host, GoVersion: host.GoVersion, GOMAXPROCS: 8, Quick: true, Seed: 1}
		for i, family := range []string{"sparse-gnp", "dense-gnp"} {
			base := int64(1_000_000 * (i + 1))
			run.Rows = append(run.Rows, bench.KernelMeasurement{
				Family: family, N: 128, M: 1000, P: 4, Workers: 1, Cliques: 42,
				NsPerOp: int64(float64(base)*scale) + jitter,
			})
		}
		return run
	}
	for i := 0; i < baseRuns; i++ {
		if _, err := bench.AppendRun(path, mkRun(1.0, int64(i*9000-9000))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := bench.AppendRun(path, mkRun(newestScale, 0)); err != nil {
		t.Fatal(err)
	}
}

// TestCompareGate pins the CI regression gate end to end through the CLI:
// an injected ≥10% regression fails with a named cell, within-noise
// jitter passes, and a trajectory with no comparable history is refused,
// not failed.
func TestCompareGate(t *testing.T) {
	t.Run("regression fails", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
		writeSyntheticKernelTrajectory(t, path, 3, 1.5)
		var sb strings.Builder
		err := run([]string{"-compare", "-kernelbench", path}, &sb)
		if err == nil || !strings.Contains(err.Error(), "regression") {
			t.Fatalf("injected 50%% regression should fail the gate, got %v\n%s", err, sb.String())
		}
		if !strings.Contains(sb.String(), "REGRESSED") {
			t.Errorf("report should mark the regressed cells:\n%s", sb.String())
		}
		if !strings.Contains(sb.String(), "BenchmarkKernel/family=") {
			t.Errorf("compare should emit Go benchfmt:\n%s", sb.String())
		}
	})
	t.Run("jitter passes", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
		writeSyntheticKernelTrajectory(t, path, 3, 1.02)
		var sb strings.Builder
		if err := run([]string{"-compare", "-kernelbench", path}, &sb); err != nil {
			t.Fatalf("2%% jitter should pass the gate: %v\n%s", err, sb.String())
		}
	})
	t.Run("mismatched host refuses", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
		writeSyntheticKernelTrajectory(t, path, 3, 1.0)
		// Append a wildly slower run from a DIFFERENT host: must be
		// refused, not reported as a regression.
		other := bench.KernelRun{
			Host:      bench.HostFingerprint{CPU: "other-cpu", Cores: 2, GOMAXPROCS: 2, GoVersion: "go1.24.0", OS: "linux", Arch: "arm64"},
			GoVersion: "go1.24.0", GOMAXPROCS: 2, Quick: true, Seed: 1,
			Rows: []bench.KernelMeasurement{{Family: "sparse-gnp", N: 128, M: 1000, P: 4, Workers: 1, Cliques: 42, NsPerOp: 9_000_000}},
		}
		if _, err := bench.AppendRun(path, other); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := run([]string{"-compare", "-kernelbench", path}, &sb); err != nil {
			t.Fatalf("cross-host comparison must be refused, not failed: %v\n%s", err, sb.String())
		}
		if !strings.Contains(sb.String(), "comparison skipped") {
			t.Errorf("report should say the comparison was skipped:\n%s", sb.String())
		}
	})
	t.Run("no trajectory given", func(t *testing.T) {
		if err := run([]string{"-compare"}, io.Discard); err == nil {
			t.Fatal("-compare with no trajectory paths should error")
		}
	})
}

// TestAutotuneProfileRoundTrip runs the (quick) autotune sweep through
// the CLI, then loads the emitted profile back with -tuning.
func TestAutotuneProfileRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("autotune sweep in -short mode")
	}
	path := filepath.Join(t.TempDir(), "tuning.json")
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "kernel", "-autotune", path}, &sb); err != nil {
		t.Fatalf("autotune: %v", err)
	}
	if !strings.Contains(sb.String(), "==== AUTOTUNE ====") || !strings.Contains(sb.String(), "<- picked") {
		t.Errorf("missing autotune evidence table:\n%s", sb.String())
	}
	profile, err := bench.LoadTuningProfile(path)
	if err != nil {
		t.Fatalf("load profile: %v", err)
	}
	if profile.Tuning.RootChunk < 1 || profile.Tuning.BitsetCut < 1 || profile.Tuning.RebuildFraction <= 0 ||
		profile.Tuning.SessionPoolSize < 1 || profile.Tuning.BatchWorkers < 1 {
		t.Errorf("profile has unmeasured knobs: %+v", profile.Tuning)
	}
	// Applying the profile must work end to end (host matches, so no
	// warning path involved).
	defer graph.SetTuning(graph.Tuning{})
	var sb2 strings.Builder
	if err := run([]string{"-quick", "-only", "e6", "-tuning", path}, &sb2); err != nil {
		t.Fatalf("-tuning: %v", err)
	}
	if !strings.Contains(sb2.String(), "applied tuning profile") {
		t.Errorf("missing tuning-applied notice:\n%s", sb2.String())
	}
}

// TestStoreBenchRunsWithoutTrajectory checks -only e13 alone prints the
// table and writes nothing.
func TestStoreBenchRunsWithoutTrajectory(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "e13"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "WAL append throughput") {
		t.Errorf("missing WAL table:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "appended run") {
		t.Errorf("no -storebench given but a trajectory was written:\n%s", sb.String())
	}
}

// TestClusterTrajectoryAppends runs E14 twice against the same
// BENCH_cluster.json and checks the trajectory accumulates well-formed
// runs, with the stream byte counts identical across every (shards,
// replication) cell — the scatter determinism surfaced as a bench
// invariant.
func TestClusterTrajectoryAppends(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	for i := 1; i <= 2; i++ {
		var sb strings.Builder
		if err := run([]string{"-quick", "-only", "e14", "-clusterbench", path}, &sb); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !strings.Contains(sb.String(), "==== E14 ====") ||
			!strings.Contains(sb.String(), "scatter–gather") {
			t.Errorf("run %d missing E14 table:\n%s", i, sb.String())
		}
		if want := fmt.Sprintf("appended run %d to %s", i, path); !strings.Contains(sb.String(), want) {
			t.Errorf("run %d missing %q:\n%s", i, want, sb.String())
		}
	}
	traj, err := bench.LoadClusterTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Runs) != 2 {
		t.Fatalf("trajectory has %d runs, want 2", len(traj.Runs))
	}
	for _, r := range traj.Runs {
		if r.GoVersion == "" || len(r.Cells) != 5 {
			t.Fatalf("malformed run: %+v", r)
		}
		for _, c := range r.Cells {
			if c.StreamNs <= 0 || c.ScatterNs <= 0 || c.PatchNsPerBatch <= 0 {
				t.Errorf("shards=%d repl=%d: non-positive measurement: %+v", c.Shards, c.Replication, c)
			}
			if c.StreamBytes != r.Cells[0].StreamBytes {
				t.Errorf("shards=%d repl=%d: stream bytes %d differ from cell 0's %d — scatter not byte-identical",
					c.Shards, c.Replication, c.StreamBytes, r.Cells[0].StreamBytes)
			}
		}
	}
	// -compare on the two-run trajectory must load and render. The huge
	// threshold keeps this a plumbing test: back-to-back quick runs on a
	// loaded test machine can legitimately differ by more than the real
	// gate's 8%.
	var sb strings.Builder
	if err := run([]string{"-compare", "-threshold", "10", "-clusterbench", path}, &sb); err != nil {
		t.Fatalf("compare: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "BenchmarkClusterScatter/") {
		t.Errorf("compare missing cluster benchfmt:\n%s", sb.String())
	}
}
