package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

func TestRunSelectedExperiments(t *testing.T) {
	var sb strings.Builder
	// Tiny footprint: quick sizes, only the fast experiments.
	if err := run([]string{"-quick", "-only", "e6"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "==== E6 ====") {
		t.Errorf("missing E6 header:\n%s", out)
	}
	if !strings.Contains(out, "|Er| per ARB-LIST pass") {
		t.Errorf("missing E6 series:\n%s", out)
	}
	if strings.Contains(out, "==== E1 ====") {
		t.Error("-only e6 should not run E1")
	}
}

func TestRunE7(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "e7"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "bad-edge delaying") {
		t.Errorf("missing ablation series:\n%s", sb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &sb); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunUnknownExperimentErrors(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-only", "e99"}, &sb)
	if err == nil {
		t.Fatal("unknown experiment name should error")
	}
	if !strings.Contains(err.Error(), "e99") || !strings.Contains(err.Error(), "e9") {
		t.Errorf("error should name the bad tag and list known ones: %v", err)
	}
	if sb.Len() != 0 {
		t.Errorf("unknown tag must not produce output:\n%s", sb.String())
	}
	// The error fires even when valid tags accompany the bad one.
	if err := run([]string{"-only", "e6,nope"}, &sb); err == nil {
		t.Error("mixed valid/unknown tags should error")
	}
}

// TestWorkloadExperimentsGolden pins the full -quick output of the
// workload-family experiments (E9/E10). Everything they print is
// deterministic under the default seed; regenerate with
// `go test ./cmd/benchrunner -run Golden -update` after intentional
// changes to the generators, the lister bills, or the table format.
// TestServerExperimentGolden pins the full -quick output of the serving
// experiment (E11): the request trace, the pool hit/eviction profile and
// the round bills are all deterministic under the default seed.
// Regenerate with `go test ./cmd/benchrunner -run ServerExperimentGolden
// -update` after intentional changes to the serving layer or generators.
func TestServerExperimentGolden(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "e11"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := sb.String()
	if !strings.Contains(got, "==== E11 ====") {
		t.Fatalf("missing E11 header:\n%s", got)
	}
	golden := filepath.Join("testdata", "server_quick.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

func TestWorkloadExperimentsGolden(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "e9,e10"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := sb.String()
	for _, want := range []string{"==== E9 ====", "==== E10 ===="} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %s header:\n%s", want, got)
		}
	}
	golden := filepath.Join("testdata", "workloads_quick.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestKernelBaseline runs the kernel throughput sweep in quick mode and
// checks the JSON baseline document: full family × p × workers coverage
// and deterministic clique counts (ns/op is hardware noise and not
// asserted). Worker counts must not change any cell's clique census.
func TestKernelBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "kernel", "-kernelbench", path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "==== KERNEL ====") {
		t.Errorf("missing kernel table:\n%s", sb.String())
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	var kb struct {
		GoVersion string `json:"goVersion"`
		Rows      []struct {
			Family  string `json:"family"`
			P       int    `json:"p"`
			Workers int    `json:"workers"`
			Cliques int64  `json:"cliques"`
			NsPerOp int64  `json:"nsPerOp"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf, &kb); err != nil {
		t.Fatalf("bad baseline JSON: %v", err)
	}
	if kb.GoVersion == "" || len(kb.Rows) != 3*3*2 {
		t.Fatalf("baseline has %d rows (want 18), goVersion %q", len(kb.Rows), kb.GoVersion)
	}
	census := map[string]int64{}
	for _, r := range kb.Rows {
		if r.NsPerOp <= 0 {
			t.Errorf("%s p=%d workers=%d: ns/op %d", r.Family, r.P, r.Workers, r.NsPerOp)
		}
		key := fmt.Sprintf("%s/p=%d", r.Family, r.P)
		if prev, ok := census[key]; ok && prev != r.Cliques {
			t.Errorf("%s: clique census differs across worker counts: %d vs %d", key, prev, r.Cliques)
		}
		census[key] = r.Cliques
	}
	// -only kernel must not run the experiment series.
	if strings.Contains(sb.String(), "==== E6 ====") {
		t.Error("-only kernel should not run E6")
	}
}
