package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

func TestRunSelectedExperiments(t *testing.T) {
	var sb strings.Builder
	// Tiny footprint: quick sizes, only the fast experiments.
	if err := run([]string{"-quick", "-only", "e6"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "==== E6 ====") {
		t.Errorf("missing E6 header:\n%s", out)
	}
	if !strings.Contains(out, "|Er| per ARB-LIST pass") {
		t.Errorf("missing E6 series:\n%s", out)
	}
	if strings.Contains(out, "==== E1 ====") {
		t.Error("-only e6 should not run E1")
	}
}

func TestRunE7(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "e7"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "bad-edge delaying") {
		t.Errorf("missing ablation series:\n%s", sb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &sb); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunUnknownExperimentErrors(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-only", "e99"}, &sb)
	if err == nil {
		t.Fatal("unknown experiment name should error")
	}
	if !strings.Contains(err.Error(), "e99") || !strings.Contains(err.Error(), "e9") {
		t.Errorf("error should name the bad tag and list known ones: %v", err)
	}
	if sb.Len() != 0 {
		t.Errorf("unknown tag must not produce output:\n%s", sb.String())
	}
	// The error fires even when valid tags accompany the bad one.
	if err := run([]string{"-only", "e6,nope"}, &sb); err == nil {
		t.Error("mixed valid/unknown tags should error")
	}
}

// checkGolden runs `-quick -only <tags>` and compares the output against
// the committed golden. With the test -update flag it first regenerates
// the golden through the tool's own scoped -update path, so there is
// exactly one write path for golden content.
func checkGolden(t *testing.T, tags, file string, headers ...string) {
	t.Helper()
	args := []string{"-quick", "-only", tags}
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := sb.String()
	for _, h := range headers {
		if !strings.Contains(got, h) {
			t.Fatalf("missing %s header:\n%s", h, got)
		}
	}
	if *update {
		if err := run(append(args, "-update", "-goldendir", "testdata"), io.Discard); err != nil {
			t.Fatalf("golden update: %v", err)
		}
	}
	golden := filepath.Join("testdata", file)
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestWorkloadExperimentsGolden pins the full -quick output of the
// workload-family experiments (E9/E10); TestServerExperimentGolden the
// serving experiment (E11); TestDynamicExperimentGolden the dynamic-graph
// churn experiment (E12). Everything printed is deterministic under the
// default seed; regenerate with `go test ./cmd/benchrunner -run Golden
// -update` after intentional changes to the generators, the engines or
// the table format.
func TestServerExperimentGolden(t *testing.T) {
	checkGolden(t, "e11", "server_quick.golden", "==== E11 ====")
}

func TestWorkloadExperimentsGolden(t *testing.T) {
	checkGolden(t, "e9,e10", "workloads_quick.golden", "==== E9 ====", "==== E10 ====")
}

func TestDynamicExperimentGolden(t *testing.T) {
	checkGolden(t, "e12", "dynamic_quick.golden", "==== E12 ====")
}

// TestUpdateScopedByOnly pins the golden-hygiene fix: -update rewrites
// exactly the goldens whose experiment sets are fully selected by -only,
// never the rest, and refuses to write a partial group.
func TestUpdateScopedByOnly(t *testing.T) {
	dir := t.TempDir()

	// Selecting e12 only must write dynamic_quick.golden and nothing else.
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "e12", "-update", "-goldendir", dir}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "dynamic_quick.golden" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("-only e12 -update wrote %v, want exactly dynamic_quick.golden", names)
	}
	// The written golden is exactly the run's E12 output.
	buf, err := os.ReadFile(filepath.Join(dir, "dynamic_quick.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), string(buf)) {
		t.Fatal("written golden does not match the run output")
	}

	// A partially selected group (e9 without e10) must write nothing and
	// say so.
	if err := run([]string{"-quick", "-only", "e9", "-update", "-goldendir", t.TempDir()}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "wrote nothing") {
		t.Fatalf("partial group update should refuse, got %v", err)
	}

	// -update without -quick is a mistake (the goldens pin quick output).
	if err := run([]string{"-only", "e12", "-update"}, io.Discard); err == nil {
		t.Fatal("-update without -quick should error")
	}
}

// TestKernelBaseline runs the kernel throughput sweep in quick mode and
// checks the JSON baseline document: full family × p × workers coverage
// and deterministic clique counts (ns/op is hardware noise and not
// asserted). Worker counts must not change any cell's clique census.
func TestKernelBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "kernel", "-kernelbench", path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "==== KERNEL ====") {
		t.Errorf("missing kernel table:\n%s", sb.String())
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	var kb struct {
		GoVersion string `json:"goVersion"`
		Rows      []struct {
			Family  string `json:"family"`
			P       int    `json:"p"`
			Workers int    `json:"workers"`
			Cliques int64  `json:"cliques"`
			NsPerOp int64  `json:"nsPerOp"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf, &kb); err != nil {
		t.Fatalf("bad baseline JSON: %v", err)
	}
	if kb.GoVersion == "" || len(kb.Rows) != 3*3*2 {
		t.Fatalf("baseline has %d rows (want 18), goVersion %q", len(kb.Rows), kb.GoVersion)
	}
	census := map[string]int64{}
	for _, r := range kb.Rows {
		if r.NsPerOp <= 0 {
			t.Errorf("%s p=%d workers=%d: ns/op %d", r.Family, r.P, r.Workers, r.NsPerOp)
		}
		key := fmt.Sprintf("%s/p=%d", r.Family, r.P)
		if prev, ok := census[key]; ok && prev != r.Cliques {
			t.Errorf("%s: clique census differs across worker counts: %d vs %d", key, prev, r.Cliques)
		}
		census[key] = r.Cliques
	}
	// -only kernel must not run the experiment series.
	if strings.Contains(sb.String(), "==== E6 ====") {
		t.Error("-only kernel should not run E6")
	}
}

// TestStoreTrajectoryAppends runs E13 twice against the same
// BENCH_store.json and checks the file accumulates runs instead of being
// overwritten — the trajectory semantics the continuous-benchmarking
// direction depends on.
func TestStoreTrajectoryAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_store.json")
	for i := 1; i <= 2; i++ {
		var sb strings.Builder
		if err := run([]string{"-quick", "-only", "e13", "-storebench", path}, &sb); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !strings.Contains(sb.String(), "==== E13 ====") ||
			!strings.Contains(sb.String(), "cold-open-from-mmap") {
			t.Errorf("run %d missing E13 table:\n%s", i, sb.String())
		}
		if want := fmt.Sprintf("appended run %d to %s", i, path); !strings.Contains(sb.String(), want) {
			t.Errorf("run %d missing %q:\n%s", i, want, sb.String())
		}
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			GoVersion string `json:"goVersion"`
			Snapshots []struct {
				Family     string `json:"family"`
				ColdOpenNs int64  `json:"coldOpenNs"`
			} `json:"snapshots"`
			WAL []struct {
				Fsync      bool  `json:"fsync"`
				NsPerBatch int64 `json:"nsPerBatch"`
			} `json:"wal"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("bad trajectory JSON: %v", err)
	}
	if len(doc.Runs) != 2 {
		t.Fatalf("trajectory has %d runs, want 2", len(doc.Runs))
	}
	for _, r := range doc.Runs {
		if r.GoVersion == "" || len(r.Snapshots) != 3 || len(r.WAL) != 2 {
			t.Fatalf("malformed run: %+v", r)
		}
		for _, s := range r.Snapshots {
			if s.ColdOpenNs <= 0 {
				t.Errorf("%s: non-positive cold-open time", s.Family)
			}
		}
	}
}

// TestStoreBenchRunsWithoutTrajectory checks -only e13 alone prints the
// table and writes nothing.
func TestStoreBenchRunsWithoutTrajectory(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "e13"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "WAL append throughput") {
		t.Errorf("missing WAL table:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "appended run") {
		t.Errorf("no -storebench given but a trajectory was written:\n%s", sb.String())
	}
}
