package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kplist/internal/congest"
	"kplist/internal/graph"
)

// runExact asserts the full pipeline output equals sequential ground truth.
func runExact(t *testing.T, g *graph.Graph, prm Params) (*Result, *congest.Ledger) {
	t.Helper()
	var ledger congest.Ledger
	res, err := ListCliques(g, prm, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatalf("ListCliques(p=%d): %v", prm.P, err)
	}
	want := graph.NewCliqueSet(g.ListCliques(prm.P))
	if !res.Cliques.Equal(want) {
		t.Fatalf("p=%d: got %d cliques, want %d; missing=%v extra=%v",
			prm.P, res.Cliques.Len(), want.Len(),
			want.Minus(res.Cliques), res.Cliques.Minus(want))
	}
	return res, &ledger
}

func TestTheorem11ExactOnER(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		n    int
		dens float64
		p    int
	}{
		{120, 0.4, 4},
		{120, 0.4, 5},
		{100, 0.45, 6},
		{150, 0.25, 4},
	} {
		g := graph.ErdosRenyi(tc.n, tc.dens, rng)
		res, ledger := runExact(t, g, Params{P: tc.p, Seed: 11})
		if ledger.Rounds() == 0 {
			t.Error("no rounds charged")
		}
		if res.OuterIterations == 0 && res.FinalEdges == 0 && g.M() > 0 {
			t.Error("pipeline did nothing")
		}
	}
}

func TestTheorem12FastK4Exact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dens := range []float64{0.3, 0.5} {
		g := graph.ErdosRenyi(130, dens, rng)
		runExact(t, g, Params{P: 4, FastK4: true, Seed: 22})
	}
}

func TestPlantedCliquesListedExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, planted := graph.PlantedCliques(150, 6, 4, 0.08, rng)
	res, _ := runExact(t, g, Params{P: 6, Seed: 33})
	for _, c := range planted {
		if !res.Cliques.Has(graph.Clique(c)) {
			t.Errorf("planted K6 %v missing", c)
		}
	}
}

func TestParanoidMode(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.ErdosRenyi(100, 0.4, rng)
	runExact(t, g, Params{P: 4, Seed: 44, Paranoid: true})
}

func TestForcedPipelineIterations(t *testing.T) {
	// A tiny FinalExponent forces the outer loop to iterate rather than
	// falling straight to the broadcast phase.
	rng := rand.New(rand.NewSource(5))
	g := graph.ErdosRenyi(140, 0.5, rng)
	res, _ := runExact(t, g, Params{P: 4, Seed: 55, FinalExponent: 0.1})
	if res.OuterIterations == 0 {
		t.Error("expected outer iterations with FinalExponent=0.1")
	}
	// Ladder must be non-increasing.
	for i := 1; i < len(res.ArboricityLadder); i++ {
		if res.ArboricityLadder[i] > res.ArboricityLadder[i-1] {
			t.Errorf("arboricity ladder rose: %v", res.ArboricityLadder)
		}
	}
}

func TestSparseGraphSkipsToFinal(t *testing.T) {
	// A path has degeneracy 1 ≤ n^{3/4}: the pipeline should go straight
	// to the final broadcast phase and still be exact (zero K4s).
	g := graph.Path(200)
	res, ledger := runExact(t, g, Params{P: 4, Seed: 66})
	if res.OuterIterations != 0 {
		t.Errorf("sparse graph ran %d outer iterations", res.OuterIterations)
	}
	if ledger.Phase("broadcast-listing").Rounds == 0 {
		t.Error("final phase not billed")
	}
}

func TestEmptyAndErrorCases(t *testing.T) {
	var ledger congest.Ledger
	empty := graph.MustNew(0, nil)
	res, err := ListCliques(empty, Params{P: 4, Seed: 1}, congest.UnitCosts(), &ledger)
	if err != nil || res.Cliques.Len() != 0 {
		t.Errorf("empty graph: %v, %d cliques", err, res.Cliques.Len())
	}
	g := graph.Complete(5)
	if _, err := ListCliques(g, Params{P: 3}, congest.UnitCosts(), &ledger); err == nil {
		t.Error("p=3 should be rejected (Theorem 1.1 is p ≥ 4)")
	}
	if _, err := ListCliques(g, Params{P: 5, FastK4: true}, congest.UnitCosts(), &ledger); err == nil {
		t.Error("FastK4 with p≠4 should be rejected")
	}
}

func TestCompleteGraphAllP(t *testing.T) {
	// K_30 at p=6,7 enumerates millions of cliques and dominates the
	// package's wall-clock; short mode keeps the p=4,5 coverage.
	g := graph.Complete(30)
	maxP := 7
	if testing.Short() {
		maxP = 5
	}
	for p := 4; p <= maxP; p++ {
		runExact(t, g, Params{P: p, Seed: int64(p)})
	}
}

func TestPaperBadThresholdStillExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.ErdosRenyi(110, 0.4, rng)
	runExact(t, g, Params{P: 4, Seed: 77, PaperBadThreshold: true})
}

// Property: the pipeline is exact across random seeds, densities, p, and
// both K4 modes.
func TestQuickPipelineExact(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, densRaw, pRaw uint8, fast bool) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 4 + int(pRaw%3)
		if fast {
			p = 4
		}
		g := graph.ErdosRenyi(70, 0.25+float64(densRaw%100)/350.0, rng)
		var ledger congest.Ledger
		res, err := ListCliques(g, Params{P: p, FastK4: fast, Seed: seed}, congest.UnitCosts(), &ledger)
		if err != nil {
			return false
		}
		return res.Cliques.Equal(graph.NewCliqueSet(g.ListCliques(p)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestFinalExponentDefaults(t *testing.T) {
	if got := (Params{P: 4}).finalExponent(); got != 0.75 {
		t.Errorf("p=4 exponent = %v, want 0.75 (n^{3/4} dominates)", got)
	}
	if got := (Params{P: 6}).finalExponent(); got != 0.75 {
		t.Errorf("p=6 exponent = %v, want 0.75 = 6/8", got)
	}
	if got := (Params{P: 8}).finalExponent(); got != 0.8 {
		t.Errorf("p=8 exponent = %v, want 8/10", got)
	}
	if got := (Params{P: 4, FastK4: true}).finalExponent(); got < 0.66 || got > 0.67 {
		t.Errorf("fast-K4 exponent = %v, want 2/3", got)
	}
	if got := (Params{P: 4, FinalExponent: 0.5}).finalExponent(); got != 0.5 {
		t.Error("explicit exponent should pass through")
	}
}

func TestClusterThresholdOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.ErdosRenyi(100, 0.4, rng)
	// An explicit threshold must flow into the ARB-LIST passes (visible in
	// the pass census) and keep the pipeline exact.
	var ledger congest.Ledger
	res, err := ListCliques(g, Params{P: 4, Seed: 9, FinalExponent: 0.1, ClusterThreshold: 7},
		congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cliques.Equal(graph.NewCliqueSet(g.ListCliques(4))) {
		t.Fatal("override run not exact")
	}
	found := false
	for _, lr := range res.ListResults {
		for _, st := range lr.PassStats {
			if st.ClusterThr == 7 {
				found = true
			}
		}
	}
	if res.OuterIterations > 0 && !found {
		t.Error("explicit cluster threshold did not reach the passes")
	}
}

func TestMaxOuterCap(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.ErdosRenyi(100, 0.4, rng)
	var ledger congest.Ledger
	res, err := ListCliques(g, Params{P: 4, Seed: 10, FinalExponent: 0.01, MaxOuter: 1},
		congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatal(err)
	}
	if res.OuterIterations > 1 {
		t.Errorf("MaxOuter=1 but ran %d iterations", res.OuterIterations)
	}
	// The final broadcast phase must still make the output exact.
	if !res.Cliques.Equal(graph.NewCliqueSet(g.ListCliques(4))) {
		t.Error("capped run not exact")
	}
}
