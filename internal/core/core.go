// Package core implements the paper's headline algorithms: Theorem 1.1
// (Kp-listing in CONGEST in Õ(n^{3/4} + n^{p/(p+2)}) rounds for all p ≥ 4,
// §2.2's outer arboricity-halving iteration over Algorithm LIST) and
// Theorem 1.2 (K4-listing in Õ(n^{2/3}) rounds, the §3 variant).
package core

import (
	"context"
	"fmt"
	"math"

	"kplist/internal/arblist"
	"kplist/internal/baseline"
	"kplist/internal/congest"
	"kplist/internal/graph"
)

// Params configures a Theorem 1.1 / 1.2 run.
type Params struct {
	// Ctx, when non-nil, is checked between engine rounds — at every
	// outer halving iteration, every ARB-LIST pass inside it, and before
	// the final broadcast phase — so a cancelled run stops burning CPU
	// within one round of work. nil means no cancellation.
	Ctx context.Context
	// P is the clique size, ≥ 4 (use sparselist.CongestedClique for p=3 in
	// the congested clique, or baseline.BroadcastListGraph in CONGEST).
	P int
	// FastK4 selects the Theorem 1.2 variant (§3); requires P == 4.
	FastK4 bool
	// FinalExponent is the δ at which the outer loop stops and the
	// remaining low-arboricity graph is broadcast-listed: the paper's
	// max(3/4, p/(p+2)) (or 2/3 under FastK4). 0 derives it; explicit
	// values let experiments sweep the cutoff.
	FinalExponent float64
	// Seed drives all randomness.
	Seed int64
	// Paranoid enables invariant checks in every pass.
	Paranoid bool
	// MaxOuter caps the outer halving loop; 0 means log2(n)+4.
	MaxOuter int
	// PaperBadThreshold passes through to ARB-LIST.
	PaperBadThreshold bool
	// ClusterThreshold, when positive, fixes the expander-decomposition
	// peel threshold instead of the paper's A/(2·log n) derivation. At
	// practical n the derived threshold is a small constant, which makes
	// every dense component one all-covering cluster; experiments set an
	// explicit threshold to exercise the heavy/light machinery (DESIGN.md
	// substitution 3).
	ClusterThreshold int
	// Workers bounds the host goroutines simulating parallel per-cluster
	// phases (threaded through to ARB-LIST). 0 means GOMAXPROCS, 1 forces
	// the sequential loop; the output and the charged bill are identical
	// for every value.
	Workers int
}

func (p Params) finalExponent() float64 {
	if p.FinalExponent > 0 {
		return p.FinalExponent
	}
	if p.FastK4 {
		return 2.0 / 3
	}
	e := float64(p.P) / float64(p.P+2)
	if e < 0.75 {
		e = 0.75
	}
	return e
}

// Result is the outcome of a full Kp-listing run.
type Result struct {
	// Cliques is the exact set of Kp instances of the input graph.
	Cliques graph.CliqueSet
	// OuterIterations counts LIST invocations (the §2.2 halving ladder).
	OuterIterations int
	// ArboricityLadder traces the orientation out-degree bound before each
	// outer iteration and before the final phase.
	ArboricityLadder []int
	// FinalEdges is the number of edges handled by the final broadcast
	// phase.
	FinalEdges int
	// ListResults holds the per-iteration LIST outcomes for experiments.
	ListResults []*arblist.ListResult
}

// ListCliques runs the full pipeline of Theorem 1.1 (or Theorem 1.2 when
// prm.FastK4) on g, charging every phase to the ledger. The returned clique
// set is exact: integration tests compare it against sequential ground
// truth with set equality.
func ListCliques(g *graph.Graph, prm Params, cm congest.CostModel, ledger *congest.Ledger) (*Result, error) {
	if prm.P < 4 {
		return nil, fmt.Errorf("core: p=%d < 4 (Theorem 1.1 covers p ≥ 4)", prm.P)
	}
	if prm.FastK4 && prm.P != 4 {
		return nil, fmt.Errorf("core: FastK4 requires p=4, got p=%d", prm.P)
	}
	n := g.N()
	if n == 0 {
		return &Result{Cliques: make(graph.CliqueSet)}, nil
	}
	edges := graph.NewEdgeList(g.Edges())
	finalThr := int(math.Ceil(math.Pow(float64(n), prm.finalExponent())))
	maxOuter := prm.MaxOuter
	if maxOuter <= 0 {
		maxOuter = int(congest.Log2Ceil(n)) + 4
	}

	out := &Result{Cliques: make(graph.CliqueSet)}
	arbBound := currentArbBound(n, edges)
	for iter := 0; iter < maxOuter && len(edges) > 0 && arbBound > finalThr; iter++ {
		if err := congest.CtxErr(prm.Ctx); err != nil {
			return nil, err
		}
		out.ArboricityLadder = append(out.ArboricityLadder, arbBound)
		lg := congest.Log2Ceil(n)
		threshold := arbBound / int(2*lg)
		if prm.ClusterThreshold > 0 {
			threshold = prm.ClusterThreshold
		}
		if threshold < 1 {
			threshold = 1
		}
		res, err := arblist.List(n, edges, arblist.Params{
			Ctx:               prm.Ctx,
			P:                 prm.P,
			ClusterThreshold:  threshold,
			FastK4:            prm.FastK4,
			Seed:              prm.Seed + int64(iter)*7_777_777,
			Paranoid:          prm.Paranoid,
			PaperBadThreshold: prm.PaperBadThreshold,
			Workers:           prm.Workers,
		}, cm, ledger)
		if err != nil {
			return nil, fmt.Errorf("core: outer iteration %d: %w", iter, err)
		}
		for key := range res.Cliques {
			out.Cliques[key] = struct{}{}
		}
		out.ListResults = append(out.ListResults, res)
		out.OuterIterations++
		edges = res.Es
		newBound := currentArbBound(n, edges)
		if newBound >= arbBound {
			// No sparsification progress; the final phase handles the rest
			// at its (honest) broadcast price.
			arbBound = newBound
			break
		}
		arbBound = newBound
	}

	// Final phase (§2.2): the remaining graph has low arboricity; every
	// node broadcasts its outgoing edges and lists locally.
	out.ArboricityLadder = append(out.ArboricityLadder, arbBound)
	out.FinalEdges = len(edges)
	if len(edges) > 0 {
		if err := congest.CtxErr(prm.Ctx); err != nil {
			return nil, err
		}
		fullGraph, err := edges.Graph(n)
		if err != nil {
			return nil, err
		}
		cliques, err := baseline.BroadcastList(n, edges, fullGraph.DegeneracyOrientation(), prm.P, cm, ledger)
		if err != nil {
			return nil, fmt.Errorf("core: final phase: %w", err)
		}
		for key := range cliques {
			out.Cliques[key] = struct{}{}
		}
	}
	return out, nil
}

// currentArbBound returns the degeneracy of the working edge set — the
// certified out-degree bound the pipeline halves per outer iteration (the
// paper's n^{d_k}).
func currentArbBound(n int, edges graph.EdgeList) int {
	if len(edges) == 0 {
		return 0
	}
	g, err := edges.Graph(n)
	if err != nil {
		// Edges came from a validated working set; a failure here is a
		// programming error upstream.
		panic(fmt.Sprintf("core: invalid working edge set: %v", err))
	}
	d := g.Degeneracy().Degeneracy
	if d < 1 {
		d = 1
	}
	return d
}
