package faultnet

// The declarative half of the fabric: a schedule is a small text program
// of fault events keyed to the global request counter, so a test reads
// as a fault timeline instead of a tangle of imperative toggles:
//
//	@0  drop n2 0.5 path=/replica   # half of n2's replica applies vanish
//	@20 partition n3                # blackhole n3 at the 20th request
//	@40 heal n3                     # and let it back in at the 40th
//
// Lines are "@N verb member [p|duration] [path=substr]"; blank lines and
// #-comments are skipped. Verbs: drop and inject500 take a probability
// in [0,1], delay takes a Go duration, partition and heal take nothing.
// Member "*" addresses every proxy. Events fire once, in order, when the
// fabric's request counter reaches their position.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Event is one scheduled fault transition.
type Event struct {
	At     uint64 // global request count at which the event fires
	Verb   string // drop | inject500 | delay | partition | heal
	Member string // member name, or "*" for all
	P      float64
	Delay  time.Duration
	Path   string // substring filter; empty matches every path
}

// ParseSchedule parses the schedule text, returning events sorted by
// firing position (stable, so same-position events keep source order).
func ParseSchedule(text string) ([]Event, error) {
	var events []Event
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		ev, err := parseEvent(fields)
		if err != nil {
			return nil, fmt.Errorf("faultnet: schedule line %d: %w", lineNo+1, err)
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}

func parseEvent(fields []string) (Event, error) {
	var ev Event
	if !strings.HasPrefix(fields[0], "@") {
		return ev, fmt.Errorf("expected @N position, got %q", fields[0])
	}
	at, err := strconv.ParseUint(fields[0][1:], 10, 64)
	if err != nil {
		return ev, fmt.Errorf("bad position %q: %v", fields[0], err)
	}
	if len(fields) < 3 {
		return ev, fmt.Errorf("expected \"@N verb member\", got %d fields", len(fields))
	}
	ev.At, ev.Verb, ev.Member = at, fields[1], fields[2]
	args := fields[3:]

	switch ev.Verb {
	case "drop", "inject500":
		if len(args) == 0 {
			return ev, fmt.Errorf("%s needs a probability", ev.Verb)
		}
		p, err := strconv.ParseFloat(args[0], 64)
		if err != nil || p < 0 || p > 1 {
			return ev, fmt.Errorf("bad probability %q", args[0])
		}
		ev.P = p
		args = args[1:]
	case "delay":
		if len(args) == 0 {
			return ev, fmt.Errorf("delay needs a duration")
		}
		d, err := time.ParseDuration(args[0])
		if err != nil || d < 0 {
			return ev, fmt.Errorf("bad duration %q", args[0])
		}
		ev.Delay = d
		args = args[1:]
	case "partition", "heal":
		// no arguments beyond the optional path filter (ignored by both)
	default:
		return ev, fmt.Errorf("unknown verb %q", ev.Verb)
	}

	for _, a := range args {
		val, ok := strings.CutPrefix(a, "path=")
		if !ok {
			return ev, fmt.Errorf("unexpected argument %q", a)
		}
		ev.Path = val
	}
	return ev, nil
}
