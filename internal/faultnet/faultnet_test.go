package faultnet

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// backend returns an httptest server answering 200 "ok:<path>" plus the
// proxied member wrapped around it.
func newFabricMember(t *testing.T, n *Net, name string) (*Proxy, *httptest.Server) {
	t.Helper()
	be := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok:%s", r.URL.Path)
	}))
	t.Cleanup(be.Close)
	p := n.Proxy(name, be.URL)
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	return p, front
}

// testClient disables keep-alives: a GET aborted on a reused connection
// would otherwise be retried transparently by net/http, consuming an
// extra request count and skewing the schedule-position assertions.
var testClient = &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

func get(t *testing.T, url string) (int, string, error) {
	t.Helper()
	resp, err := testClient.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), nil
}

func TestProxyForwardsVerbatim(t *testing.T) {
	n := New(1)
	_, front := newFabricMember(t, n, "n1")
	status, body, err := get(t, front.URL+"/v1/graphs/g1")
	if err != nil {
		t.Fatalf("healthy proxy errored: %v", err)
	}
	if status != http.StatusOK || body != "ok:/v1/graphs/g1" {
		t.Fatalf("got %d %q", status, body)
	}
	if st := n.Stats(); st.Requests != 1 || st.Drops != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(1)
	_, front := newFabricMember(t, n, "n1")
	n.Partition("n1")
	if _, _, err := get(t, front.URL+"/x"); err == nil {
		t.Fatal("partitioned member answered")
	}
	if st := n.Stats(); st.Blackhole != 1 {
		t.Fatalf("blackhole count = %d, want 1", st.Blackhole)
	}
	n.Heal("n1")
	if _, _, err := get(t, front.URL+"/x"); err != nil {
		t.Fatalf("healed member still dark: %v", err)
	}
}

func TestDropIsSeededAndDeterministic(t *testing.T) {
	outcomes := func(seed int64) string {
		n := New(seed)
		_, front := newFabricMember(t, n, "n1")
		n.Drop("n1", 0.5, "")
		var b strings.Builder
		for i := 0; i < 32; i++ {
			if _, _, err := get(t, front.URL+"/x"); err != nil {
				b.WriteByte('D')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := outcomes(42), outcomes(42)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "D") || !strings.Contains(a, ".") {
		t.Fatalf("p=0.5 over 32 requests should mix drops and passes: %s", a)
	}
	if c := outcomes(7); c == a {
		t.Fatalf("different seeds produced identical outcome sequences: %s", c)
	}
}

func TestDropPathFilter(t *testing.T) {
	n := New(1)
	_, front := newFabricMember(t, n, "n1")
	n.Drop("n1", 1.0, "/replica")
	if _, _, err := get(t, front.URL+"/v1/graphs/g1/replica"); err == nil {
		t.Fatal("matching path survived a p=1 drop")
	}
	if _, _, err := get(t, front.URL+"/v1/graphs/g1/edges"); err != nil {
		t.Fatalf("non-matching path dropped: %v", err)
	}
	if st := n.Stats(); st.Drops != 1 {
		t.Fatalf("drops = %d, want 1", st.Drops)
	}
}

func TestInject500(t *testing.T) {
	n := New(1)
	_, front := newFabricMember(t, n, "n1")
	n.Inject500("n1", 1.0, "")
	status, _, err := get(t, front.URL+"/x")
	if err != nil || status != http.StatusInternalServerError {
		t.Fatalf("got %d, %v; want 500", status, err)
	}
	if st := n.Stats(); st.Injected != 1 {
		t.Fatalf("injected = %d, want 1", st.Injected)
	}
}

func TestDelay(t *testing.T) {
	n := New(1)
	_, front := newFabricMember(t, n, "n1")
	n.Delay("n1", 30*time.Millisecond, "")
	start := time.Now()
	if _, _, err := get(t, front.URL+"/x"); err != nil {
		t.Fatalf("delayed request failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("request returned in %v, before the 30ms delay", elapsed)
	}
	if st := n.Stats(); st.Delayed != 1 {
		t.Fatalf("delayed = %d, want 1", st.Delayed)
	}
}

func TestSetBackendSwap(t *testing.T) {
	n := New(1)
	p, front := newFabricMember(t, n, "n1")
	be2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "second")
	}))
	defer be2.Close()
	p.SetBackend(be2.URL)
	_, body, err := get(t, front.URL+"/x")
	if err != nil || body != "second" {
		t.Fatalf("after swap got %q, %v", body, err)
	}
	if p.Name() != "n1" {
		t.Fatalf("Name() = %q", p.Name())
	}
}

func TestDeadBackendAbortsConnection(t *testing.T) {
	n := New(1)
	p, front := newFabricMember(t, n, "n1")
	p.SetBackend("http://127.0.0.1:1") // nothing listens there
	if _, _, err := get(t, front.URL+"/x"); err == nil {
		t.Fatal("dead backend answered")
	}
}

func TestScheduleFiresAtRequestCount(t *testing.T) {
	n := New(1)
	_, front := newFabricMember(t, n, "n1")
	events, err := ParseSchedule(`
		# partition at the 3rd request, heal at the 5th
		@3 partition n1
		@5 heal n1
	`)
	if err != nil {
		t.Fatal(err)
	}
	n.SetSchedule(events)
	var outcome []bool
	for i := 0; i < 6; i++ {
		_, _, err := get(t, front.URL+"/x")
		outcome = append(outcome, err == nil)
	}
	// Requests 1–2 pass; 3 admits, fires the partition, and dies; 4 dies;
	// 5 admits, fires the heal, and passes; 6 passes.
	want := []bool{true, true, false, false, true, true}
	for i := range want {
		if outcome[i] != want[i] {
			t.Fatalf("request %d: pass=%v, want %v (all: %v)", i+1, outcome[i], want[i], outcome)
		}
	}
}

func TestScheduleWildcardMember(t *testing.T) {
	n := New(1)
	_, f1 := newFabricMember(t, n, "n1")
	_, f2 := newFabricMember(t, n, "n2")
	n.Partition("*")
	if _, _, err := get(t, f1.URL+"/x"); err == nil {
		t.Fatal("n1 survived a wildcard partition")
	}
	if _, _, err := get(t, f2.URL+"/x"); err == nil {
		t.Fatal("n2 survived a wildcard partition")
	}
	n.Heal("*")
	if _, _, err := get(t, f1.URL+"/x"); err != nil {
		t.Fatalf("n1 still dark after wildcard heal: %v", err)
	}
}

func TestProxyReRegisterKeepsState(t *testing.T) {
	n := New(1)
	p1, _ := newFabricMember(t, n, "n1")
	p2 := n.Proxy("n1", "http://example.invalid")
	if p1 != p2 {
		t.Fatal("re-registering a member name minted a new proxy")
	}
}

func TestParseScheduleGrammar(t *testing.T) {
	events, err := ParseSchedule(`
		@0 drop n2 0.5 path=/replica
		@20 partition n3
		@40 heal n3
		@10 delay n1 5ms path=/edges
		@0 inject500 n3 0.25
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events", len(events))
	}
	// Sorted by position, stable within equal positions.
	if events[0].Verb != "drop" || events[0].P != 0.5 || events[0].Path != "/replica" {
		t.Fatalf("events[0] = %+v", events[0])
	}
	if events[1].Verb != "inject500" || events[1].Member != "n3" || events[1].P != 0.25 {
		t.Fatalf("events[1] = %+v", events[1])
	}
	if events[2].Verb != "delay" || events[2].Delay != 5*time.Millisecond || events[2].Path != "/edges" {
		t.Fatalf("events[2] = %+v", events[2])
	}
	if events[3].At != 20 || events[4].At != 40 {
		t.Fatalf("positions not sorted: %+v", events)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, bad := range []string{
		"drop n1 0.5",          // missing @N
		"@x drop n1 0.5",       // bad position
		"@1 drop n1",           // missing probability
		"@1 drop n1 1.5",       // probability out of range
		"@1 delay n1",          // missing duration
		"@1 delay n1 fast",     // bad duration
		"@1 explode n1",        // unknown verb
		"@1 partition",         // missing member
		"@1 drop n1 0.5 po=/x", // unexpected argument
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
	events, err := ParseSchedule("\n# only comments\n\n")
	if err != nil || len(events) != 0 {
		t.Fatalf("comment-only schedule: %v, %d events", err, len(events))
	}
}
