// Package faultnet is a deterministic fault-injection fabric for cluster
// tests (DESIGN.md §13): each member's HTTP endpoint is wrapped in a
// chaos proxy that can drop connections, delay requests, inject 500s, or
// blackhole the member entirely (partition). Faults are driven two ways —
// imperatively from test code, or declaratively by a schedule of events
// keyed to the fabric's global request counter ("at the 40th request,
// partition n3"). All randomness comes from per-proxy RNGs seeded from
// the fabric seed and the member name, so a given seed yields the same
// drop decisions request-for-request; schedules keyed to the request
// counter make the fault timeline itself reproducible.
//
// A dropped or partitioned request aborts the connection *before*
// reaching the backend, so from the cluster's point of view an unacked
// request is also an unapplied one — the invariant the convergence suite
// leans on when it asserts zero acknowledged-write loss.
package faultnet

import (
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stats is a snapshot of what the fabric has done so far.
type Stats struct {
	Requests  uint64 // requests that entered any proxy
	Drops     uint64 // connections aborted by drop faults
	Blackhole uint64 // connections aborted by partitions
	Injected  uint64 // 500s fabricated without reaching the backend
	Delayed   uint64 // requests that sat out a delay fault
}

// Net is one fault-injection fabric: a set of named chaos proxies
// sharing a seed, a global request counter, and an event schedule.
type Net struct {
	seed int64
	hc   *http.Client

	reqs      atomic.Uint64
	drops     atomic.Uint64
	blackhole atomic.Uint64
	injected  atomic.Uint64
	delayed   atomic.Uint64

	mu      sync.Mutex
	proxies map[string]*Proxy
	sched   []Event
	next    int // first unfired schedule event
}

// New builds an empty fabric. The seed determines every probabilistic
// fault decision the fabric will ever make.
func New(seed int64) *Net {
	return &Net{
		seed:    seed,
		hc:      &http.Client{},
		proxies: make(map[string]*Proxy),
	}
}

// Proxy registers (or returns) the chaos proxy named name fronting the
// backend URL. The returned value is an http.Handler — mount it in an
// httptest.Server and hand that server's URL to the cluster membership.
func (n *Net) Proxy(name, backend string) *Proxy {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.proxies[name]; ok {
		p.SetBackend(backend)
		return p
	}
	h := fnv.New64a()
	_, _ = io.WriteString(h, name)
	p := &Proxy{
		net:  n,
		name: name,
		rng:  rand.New(rand.NewSource(n.seed ^ int64(h.Sum64()))),
	}
	p.backend.Store(backend)
	n.proxies[name] = p
	return p
}

// SetSchedule installs the declarative fault timeline. Events must be
// sorted by At (ParseSchedule guarantees it); each fires once, when the
// global request counter reaches its position.
func (n *Net) SetSchedule(events []Event) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sched = events
	n.next = 0
}

// Stats snapshots the fabric counters.
func (n *Net) Stats() Stats {
	return Stats{
		Requests:  n.reqs.Load(),
		Drops:     n.drops.Load(),
		Blackhole: n.blackhole.Load(),
		Injected:  n.injected.Load(),
		Delayed:   n.delayed.Load(),
	}
}

// Drop sets member's drop fault: abort a fraction p of requests whose
// path contains pathSub (empty matches all). p = 0 clears the fault.
func (n *Net) Drop(member string, p float64, pathSub string) {
	n.apply(Event{Verb: "drop", Member: member, P: p, Path: pathSub})
}

// Inject500 sets member's 500-injection fault, same matching rules.
func (n *Net) Inject500(member string, p float64, pathSub string) {
	n.apply(Event{Verb: "inject500", Member: member, P: p, Path: pathSub})
}

// Delay makes matching requests to member sit out d before forwarding.
func (n *Net) Delay(member string, d time.Duration, pathSub string) {
	n.apply(Event{Verb: "delay", Member: member, Delay: d, Path: pathSub})
}

// Partition blackholes member: every connection aborts without reaching
// the backend, exactly like a network partition or a SIGKILLed process.
func (n *Net) Partition(member string) {
	n.apply(Event{Verb: "partition", Member: member})
}

// Heal clears every fault on member ("*" heals the whole fabric).
func (n *Net) Heal(member string) {
	n.apply(Event{Verb: "heal", Member: member})
}

// apply executes one event against the fabric.
func (n *Net) apply(ev Event) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for name, p := range n.proxies {
		if ev.Member != "*" && ev.Member != name {
			continue
		}
		p.apply(ev)
	}
}

// admit counts one request in and fires any schedule events whose
// position has arrived. Returns the request's global sequence number.
func (n *Net) admit() uint64 {
	c := n.reqs.Add(1)
	n.mu.Lock()
	for n.next < len(n.sched) && n.sched[n.next].At <= c {
		ev := n.sched[n.next]
		n.next++
		for name, p := range n.proxies {
			if ev.Member != "*" && ev.Member != name {
				continue
			}
			p.apply(ev)
		}
	}
	n.mu.Unlock()
	return c
}

// faults is one proxy's current fault configuration.
type faults struct {
	partitioned bool
	dropP       float64
	dropPath    string
	injectP     float64
	injectPath  string
	delay       time.Duration
	delayPath   string
}

// Proxy is one member's chaos front: a transparent reverse proxy that
// consults its fault configuration before every forward.
type Proxy struct {
	net     *Net
	name    string
	backend atomic.Value // string: the real member's base URL

	mu  sync.Mutex
	rng *rand.Rand
	f   faults
}

// SetBackend repoints the proxy at a new backend URL — the kill-restart
// move: stop the old member, start its replacement on a fresh listener,
// and swap the address while the proxy (the member's stable identity in
// the ring) stays put.
func (p *Proxy) SetBackend(url string) { p.backend.Store(url) }

// Name returns the member name the proxy fronts.
func (p *Proxy) Name() string { return p.name }

func (p *Proxy) apply(ev Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch ev.Verb {
	case "drop":
		p.f.dropP, p.f.dropPath = ev.P, ev.Path
	case "inject500":
		p.f.injectP, p.f.injectPath = ev.P, ev.Path
	case "delay":
		p.f.delay, p.f.delayPath = ev.Delay, ev.Path
	case "partition":
		p.f.partitioned = true
	case "heal":
		p.f = faults{}
	}
}

// decide evaluates the fault configuration for one request path,
// drawing from the seeded RNG under the lock so the draw sequence is a
// pure function of the seed and the order requests reach this proxy.
func (p *Proxy) decide(path string) (verdict string, delay time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case p.f.partitioned:
		return "blackhole", 0
	case p.f.dropP > 0 && strings.Contains(path, p.f.dropPath) && p.rng.Float64() < p.f.dropP:
		return "drop", 0
	case p.f.injectP > 0 && strings.Contains(path, p.f.injectPath) && p.rng.Float64() < p.f.injectP:
		return "inject500", 0
	case p.f.delay > 0 && strings.Contains(path, p.f.delayPath):
		return "delay", p.f.delay
	}
	return "", 0
}

// ServeHTTP runs the request through the fault gauntlet and, if it
// survives, forwards it to the backend verbatim. Drop and blackhole
// abort the connection (http.ErrAbortHandler) before the backend sees
// anything, so the client observes a transport error and the member
// observes nothing.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.net.admit()
	verdict, delay := p.decide(r.URL.Path)
	switch verdict {
	case "blackhole":
		p.net.blackhole.Add(1)
		panic(http.ErrAbortHandler)
	case "drop":
		p.net.drops.Add(1)
		panic(http.ErrAbortHandler)
	case "inject500":
		p.net.injected.Add(1)
		http.Error(w, "faultnet: injected failure", http.StatusInternalServerError)
		return
	case "delay":
		p.net.delayed.Add(1)
		select {
		case <-r.Context().Done():
			panic(http.ErrAbortHandler)
		case <-time.After(delay):
		}
	}

	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		p.backend.Load().(string)+r.URL.RequestURI(), r.Body)
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	req.Header = r.Header.Clone()
	resp, err := p.net.hc.Do(req)
	if err != nil {
		// Backend gone (killed between heal and restart): surface the same
		// connection abort a real dead process would.
		panic(http.ErrAbortHandler)
	}
	defer resp.Body.Close()
	for k, vv := range resp.Header {
		for _, v := range vv {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
