package server

import (
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"kplist"
	"kplist/internal/cluster"
	"kplist/internal/graph"
)

// Config sizes the serving layer. Zero values take the documented
// defaults, so Config{} is a working single-host configuration.
type Config struct {
	// MaxGraphs bounds the registry (default 64). Registration beyond it
	// fails with 409 — graphs are tenant state and are never silently
	// dropped.
	MaxGraphs int
	// PoolSize bounds the LRU pool of open sessions (default
	// graph.Tuning.SessionPoolSize, 8 untuned): the resident preprocessed
	// working set.
	PoolSize int
	// Session configures every pooled session (per-session scheduler
	// bound, Verify, PruneByDegeneracy).
	Session kplist.SessionConfig
	// MaxInFlight bounds concurrently executing requests (default
	// 2·GOMAXPROCS); QueueLimit bounds how many more may wait for a slot
	// (default 64). Beyond both, requests shed with 429.
	MaxInFlight int
	QueueLimit  int
	// DefaultDeadline caps each admitted request's queue+execution time
	// (default 30s); ?deadline_ms= overrides per request, clamped to
	// MaxDeadline (default 2m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxUploadN and MaxUploadEdges bound registered graphs — uploaded
	// edge lists directly, generated workloads via the spec's expected
	// edge count (defaults 1<<20 vertices, 1<<23 edges); MaxBodyBytes
	// bounds the request body (default 256 MiB); MaxBatchQueries bounds
	// one query request's batch length (default 1024).
	MaxUploadN      int
	MaxUploadEdges  int
	MaxBodyBytes    int64
	MaxBatchQueries int
	// MaxMutationBatch bounds one PATCH /edges request's mutation count
	// (default 4096).
	MaxMutationBatch int
	// ClusterSelf and ClusterRing put the node in cluster mode: the node
	// builds the same consistent-hash ring as the gateway (ClusterSelf
	// must be this node's member name in it) and refuses unmarked external
	// requests for graphs it does not host with 421 Misdirected Request
	// plus an owner hint — gateway traffic carries the cluster header and
	// bypasses the check. Both empty/nil (the default) means standalone.
	ClusterSelf string
	ClusterRing *cluster.Ring
	// DataDir, when non-empty, makes the server durable: every registered
	// graph gets a snapshot file + write-ahead log under it, mutation
	// batches are logged before they are acknowledged, and Open recovers
	// the whole registry from disk on boot. Empty means fully in-memory
	// (the pre-durability behavior).
	DataDir string
	// Store tunes the per-graph durable stores (compaction thresholds,
	// fsync policy). Ignored when DataDir is empty.
	Store kplist.StoreConfig
}

func (c Config) withDefaults() Config {
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 64
	}
	if c.PoolSize <= 0 {
		c.PoolSize = graph.CurrentTuning().SessionPoolSize
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.MaxUploadN <= 0 {
		c.MaxUploadN = 1 << 20
	}
	if c.MaxUploadEdges <= 0 {
		c.MaxUploadEdges = 1 << 23
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.MaxBatchQueries <= 0 {
		c.MaxBatchQueries = 1024
	}
	if c.MaxMutationBatch <= 0 {
		c.MaxMutationBatch = 4096
	}
	return c
}

// Server is the kplistd serving layer: registry + session pool + handlers
// behind admission control and instrumentation. Create with New, mount
// via Handler.
type Server struct {
	cfg  Config
	reg  *Registry
	pool *SessionPool
	adm  *admission
	met  *metrics
	mux  *http.ServeMux

	// mutLocks serializes the apply→registry-publish critical section of
	// PATCH /edges per graph ID: without it, two concurrent PATCHes could
	// commit their Registry.UpdateGraph calls in the opposite order of
	// their (session-serialized) Applies, leaving the registry holding the
	// older snapshot. Entries are dropped on DELETE; IDs never recycle.
	mutLocks sync.Map // graph ID → *sync.Mutex

	// seqs tracks each graph's applied-mutation sequence number (graph ID
	// → *atomic.Uint64): +1 per effective batch, written only under the
	// graph's mutation lock, mirrored by the WAL on durable nodes and
	// restored from it at boot. The digest endpoint exposes it so the
	// cluster can compare replica positions without replaying anything.
	seqs sync.Map

	// persist is the durable backing (nil when Config.DataDir is empty);
	// recovery describes what Open replayed at boot.
	persist  *persistence
	recovery RecoveryReport
}

// lockMutations takes id's mutation lock and returns the unlock.
func (s *Server) lockMutations(id string) func() {
	mu, _ := s.mutLocks.LoadOrStore(id, &sync.Mutex{})
	m := mu.(*sync.Mutex)
	m.Lock()
	return m.Unlock
}

// New builds a Server from cfg. With Config.DataDir set it delegates to
// Open and panics on a recovery failure — callers that persist should
// use Open and handle the error.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("server.New with DataDir: %v (use server.Open)", err))
	}
	return s
}

// Open builds a Server from cfg, recovering the registry from
// Config.DataDir when set: every graph the manifest lists is reopened
// from its newest valid snapshot plus a WAL-tail replay, so the server
// resumes serving exactly the mutation batches it had acknowledged.
// Close flushes and releases the durable state.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		reg:  NewRegistry(cfg.MaxGraphs),
		pool: NewSessionPool(cfg.PoolSize, cfg.Session),
		adm:  newAdmission(cfg.MaxInFlight, cfg.QueueLimit, cfg.DefaultDeadline),
		met:  newMetrics(),
	}
	if cfg.DataDir != "" {
		p, rep, err := openPersistence(cfg.DataDir, cfg.Store, s.reg)
		if err != nil {
			return nil, err
		}
		s.persist = p
		s.recovery = rep
		// Recovered graphs resume at the WAL's sequence number — exactly
		// one record per acknowledged effective batch, monotonic across
		// compactions — so digests survive restarts.
		for id, seq := range p.walSeqs() {
			s.appliedSeq(id).Store(seq)
		}
	}
	s.mux = http.NewServeMux()
	// Health and metrics bypass admission: they must answer precisely
	// when the serving path is saturated.
	s.route("GET /healthz", http.HandlerFunc(s.handleHealthz), false)
	s.route("GET /metrics", http.HandlerFunc(s.handleMetrics), false)
	s.route("POST /v1/graphs", s.clusterGate(http.HandlerFunc(s.handleRegister), true), true)
	s.route("GET /v1/graphs", http.HandlerFunc(s.handleList), true)
	s.route("GET /v1/graphs/{id}", s.clusterGate(http.HandlerFunc(s.handleGet), false), true)
	s.route("DELETE /v1/graphs/{id}", s.clusterGate(http.HandlerFunc(s.handleDelete), true), true)
	s.route("POST /v1/graphs/{id}/query", s.clusterGate(http.HandlerFunc(s.handleQuery), false), true)
	s.route("GET /v1/graphs/{id}/cliques", s.clusterGate(http.HandlerFunc(s.handleCliques), false), true)
	s.route("GET /v1/graphs/{id}/sketch", s.clusterGate(http.HandlerFunc(s.handleSketch), false), true)
	s.route("PATCH /v1/graphs/{id}/edges", s.clusterGate(http.HandlerFunc(s.handlePatchEdges), true), true)
	s.route("PATCH /v1/graphs/{id}/replica", http.HandlerFunc(s.handleReplicaApply), true)
	s.route("GET /v1/graphs/{id}/digest", s.clusterGate(http.HandlerFunc(s.handleDigest), false), true)
	s.route("GET /v1/graphs/{id}/export", s.clusterGate(http.HandlerFunc(s.handleExport), false), true)
	return s, nil
}

// clusterGate enforces static-sharding ownership on unmarked (external)
// traffic when the node runs in cluster mode. Requests carrying the
// cluster forward header — gateway and peer traffic — pass through
// untouched; so does everything in standalone mode. For external traffic,
// writes must land on the graph's ring owner and reads on any member of
// its replica set; anything else answers 421 Misdirected Request with the
// owner's name and address, so a client talking to the wrong node learns
// where to go instead of reading a graph this node never hosts.
func (s *Server) clusterGate(h http.Handler, write bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ring := s.cfg.ClusterRing
		if ring == nil || r.Header.Get(cluster.ForwardHeader) != "" {
			h.ServeHTTP(w, r)
			return
		}
		id := r.PathValue("id")
		if id == "" {
			// POST /v1/graphs: external registration must go through the
			// gateway — node-local IDs would diverge from cluster placement.
			s.met.recordMisdirect()
			writeJSON(w, http.StatusMisdirectedRequest, map[string]any{
				"error": "cluster mode: register graphs through the gateway",
			})
			return
		}
		owner := ring.Owner(id)
		allowed := owner.Name == s.cfg.ClusterSelf
		if !allowed && !write {
			for _, m := range ring.ReplicaSet(id, ring.Replication()) {
				if m.Name == s.cfg.ClusterSelf {
					allowed = true
					break
				}
			}
		}
		if allowed {
			h.ServeHTTP(w, r)
			return
		}
		s.met.recordMisdirect()
		writeJSON(w, http.StatusMisdirectedRequest, map[string]any{
			"error":     fmt.Sprintf("graph %s is not hosted here", id),
			"owner":     owner.Name,
			"ownerAddr": owner.Addr,
		})
	})
}

// Recovery returns what boot recovery found and replayed (the zero value
// when the server is in-memory or the data dir was fresh).
func (s *Server) Recovery() RecoveryReport { return s.recovery }

// Close flushes and closes every per-graph durable store. In-memory
// servers have nothing to release; the call is then a no-op. Serve no
// requests after Close.
func (s *Server) Close() error {
	if s.persist == nil {
		return nil
	}
	return s.persist.closeAll()
}

// route mounts h at pattern with instrumentation, and (when admitted) the
// deadline + accept-queue middleware. The pattern string doubles as the
// metrics route label.
func (s *Server) route(pattern string, h http.Handler, admitted bool) {
	if admitted {
		h = withDeadline(s.cfg.DefaultDeadline, s.cfg.MaxDeadline, s.adm.admit(h))
	}
	s.mux.Handle(pattern, s.met.instrument(pattern, h))
}

// Handler returns the root handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the session pool (experiments and tests inspect it).
func (s *Server) Pool() *SessionPool { return s.pool }

// Registry exposes the graph registry (experiments and tests inspect it).
func (s *Server) Registry() *Registry { return s.reg }

// gauges samples the server-level gauges rendered by /metrics.
func (s *Server) gauges() map[string]float64 {
	ps := s.pool.Stats()
	g := map[string]float64{
		"kplistd_graphs":                      float64(s.reg.Len()),
		"kplistd_pool_capacity":               float64(s.cfg.PoolSize),
		"kplistd_pool_open_sessions":          float64(ps.Open),
		"kplistd_pool_hits_total":             float64(ps.Hits),
		"kplistd_pool_misses_total":           float64(ps.Misses),
		"kplistd_pool_evictions_total":        float64(ps.Evictions),
		"kplistd_session_queries_total":       float64(ps.SessionQueries),
		"kplistd_session_cache_hits_total":    float64(ps.SessionHits),
		"kplistd_session_cache_misses_total":  float64(ps.SessionMisses),
		"kplistd_admission_shed_total":        float64(s.adm.shed.Load()),
		"kplistd_admission_queue_timeouts":    float64(s.adm.timedOut.Load()),
		"kplistd_admission_waiting":           float64(s.adm.waiting.Load()),
		"kplistd_admission_inflight_capacity": float64(s.cfg.MaxInFlight),
	}
	if s.persist != nil {
		g["kplistd_persistence_enabled"] = 1
		g["kplistd_recovery_duration_seconds"] = s.recovery.Elapsed.Seconds()
		g["kplistd_recovery_graphs"] = float64(s.recovery.Graphs)
		g["kplistd_recovery_wal_records_replayed"] = float64(s.recovery.WALRecordsReplayed)
	}
	return g
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	s.met.render(&b, s.gauges())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
