package server

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// admission is the load-shedding front door: at most inFlight requests
// execute concurrently, at most queueLimit more wait for a slot, and
// everything beyond that is shed with a 429 immediately — the server
// prefers a fast honest "no" over unbounded queueing. A queued request
// whose deadline expires before a slot frees leaves with 503, so queue
// time is bounded by the per-request deadline.
type admission struct {
	queueLimit int64
	deadline   time.Duration
	slots      chan struct{}
	waiting    atomic.Int64
	shed       atomic.Int64
	timedOut   atomic.Int64
}

func newAdmission(inFlight, queueLimit int, deadline time.Duration) *admission {
	if deadline <= 0 {
		deadline = 30 * time.Second
	}
	return &admission{
		queueLimit: int64(queueLimit),
		deadline:   deadline,
		slots:      make(chan struct{}, inFlight),
	}
}

// retryAfterSecs derives the Retry-After hint from live queue pressure:
// every queued request drains (or times out) within the default
// deadline, so the expected wait scales with how full the accept queue
// is — a nearly empty queue suggests a second, a full one the whole
// deadline. Clamped to [1, deadline] whole seconds.
func (a *admission) retryAfterSecs() int64 {
	limit := a.queueLimit
	if limit < 1 {
		limit = 1
	}
	waiting := a.waiting.Load()
	if waiting < 0 {
		waiting = 0
	}
	secs := (waiting*int64(a.deadline/time.Second) + limit - 1) / limit
	if max := int64(a.deadline / time.Second); secs > max {
		secs = max
	}
	if secs < 1 {
		secs = 1
	}
	return secs
}

// admit wraps h with the accept-queue discipline.
func (a *admission) admit(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Fast path: a free execution slot admits immediately and never
		// counts against the queue, so a burst onto an idle server is
		// admitted up to MaxInFlight before any queue accounting starts.
		select {
		case a.slots <- struct{}{}:
			defer func() { <-a.slots }()
			h.ServeHTTP(w, r)
			return
		default:
		}
		if a.waiting.Add(1) > a.queueLimit {
			a.waiting.Add(-1)
			a.shed.Add(1)
			w.Header().Set("Retry-After", strconv.FormatInt(a.retryAfterSecs(), 10))
			http.Error(w, "overloaded: accept queue full", http.StatusTooManyRequests)
			return
		}
		select {
		case a.slots <- struct{}{}:
			a.waiting.Add(-1)
			defer func() { <-a.slots }()
			h.ServeHTTP(w, r)
		case <-r.Context().Done():
			a.waiting.Add(-1)
			a.timedOut.Add(1)
			w.Header().Set("Retry-After", strconv.FormatInt(a.retryAfterSecs(), 10))
			http.Error(w, "deadline exceeded while queued", http.StatusServiceUnavailable)
		}
	})
}

// withDeadline attaches the per-request execution deadline: the
// ?deadline_ms= override clamped to [1ms, max], else def. The deadline
// covers queueing and execution, and cancellation propagates through
// Session.QueryContext into the engine round loops.
func withDeadline(def, max time.Duration, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := def
		if s := r.URL.Query().Get("deadline_ms"); s != "" {
			ms, err := strconv.ParseInt(s, 10, 64)
			if err != nil || ms < 1 {
				http.Error(w, "bad deadline_ms", http.StatusBadRequest)
				return
			}
			// Clamp before converting: ms·Millisecond overflows int64 for
			// huge values, and a negative duration would expire instantly.
			if ms > int64(max/time.Millisecond) {
				d = max
			} else {
				d = time.Duration(ms) * time.Millisecond
			}
		}
		if d > max {
			d = max
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// latencyBounds are the histogram bucket upper bounds in seconds.
var latencyBounds = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

type histogram struct {
	buckets []int64 // len(latencyBounds)+1, last = +Inf
	sum     float64
	count   int64
}

func (h *histogram) observe(sec float64) {
	i := sort.SearchFloat64s(latencyBounds, sec)
	h.buckets[i]++
	h.sum += sec
	h.count++
}

// metrics is the per-endpoint observability store rendered by /metrics in
// the Prometheus text exposition format (hand-rolled — no dependency).
type metrics struct {
	started time.Time

	mu       sync.Mutex
	requests map[string]map[int]int64 // route → status → count
	latency  map[string]*histogram    // route → latency histogram

	// Mutation-path counters (the PATCH /edges handler): applied edge
	// mutations, batches split by how the incremental engine handled them,
	// and the clique-delta (Session.Apply) latency histogram.
	mutOps         int64
	mutIncremental int64
	mutRebuild     int64
	mutLatency     *histogram

	// Durability counters (the -data-dir path): committed WAL appends
	// with their fsync-inclusive latency, and snapshot compactions.
	walAppends         int64
	walFsync           *histogram
	compactions        int64
	compactionFailures int64

	// Estimate-path counters: mode=estimate queries split by the method
	// that answered (exact / hll / sample) — the planner's decision mix is
	// the operator's signal that budgets actually steer work off the exact
	// kernel.
	estimates map[string]int64

	// Cluster counters: replica-apply batches accepted from a gateway, and
	// unmarked requests refused because this node does not host the graph.
	// Duplicates are sequence-tagged replica applies acknowledged without
	// re-applying (hinted-handoff replays); gaps are out-of-order replica
	// applies refused because this replica missed acknowledged batches.
	replicaApplies    int64
	replicaDuplicates int64
	replicaGaps       int64
	misdirected       int64
}

func newMetrics() *metrics {
	return &metrics{
		started:   time.Now(),
		requests:  make(map[string]map[int]int64),
		latency:   make(map[string]*histogram),
		estimates: make(map[string]int64),
		mutLatency: &histogram{
			buckets: make([]int64, len(latencyBounds)+1),
		},
		walFsync: &histogram{
			buckets: make([]int64, len(latencyBounds)+1),
		},
	}
}

// recordWALAppend accounts one durable WAL append (fsync included).
func (m *metrics) recordWALAppend(elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.walAppends++
	m.walFsync.observe(elapsed.Seconds())
}

// recordCompaction accounts one WAL-into-snapshot compaction.
func (m *metrics) recordCompaction() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.compactions++
}

// recordCompactionFailure accounts one failed compaction attempt — the
// WAL keeps growing until one succeeds, so the counter is the operator's
// disk-pressure signal.
func (m *metrics) recordCompactionFailure() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.compactionFailures++
}

// recordReplicaApply accounts one mutation batch applied through the
// cluster replica endpoint.
func (m *metrics) recordReplicaApply() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replicaApplies++
}

// recordReplicaDuplicate accounts one already-applied sequence-tagged
// batch acknowledged idempotently on the replica path.
func (m *metrics) recordReplicaDuplicate() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replicaDuplicates++
}

// recordReplicaGap accounts one replica apply refused because its
// sequence number skipped past batches this replica never saw.
func (m *metrics) recordReplicaGap() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replicaGaps++
}

// recordMisdirect accounts one unmarked request refused with 421 because
// this node does not host the requested graph.
func (m *metrics) recordMisdirect() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.misdirected++
}

// recordEstimate accounts one mode=estimate query by answering method.
func (m *metrics) recordEstimate(method string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.estimates[method]++
}

// recordMutation accounts one applied mutation batch.
func (m *metrics) recordMutation(ops int, rebuilt bool, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mutOps += int64(ops)
	if rebuilt {
		m.mutRebuild++
	} else {
		m.mutIncremental++
	}
	m.mutLatency.observe(elapsed.Seconds())
}

func (m *metrics) record(route string, status int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus, ok := m.requests[route]
	if !ok {
		byStatus = make(map[int]int64)
		m.requests[route] = byStatus
	}
	byStatus[status]++
	h, ok := m.latency[route]
	if !ok {
		h = &histogram{buckets: make([]int64, len(latencyBounds)+1)}
		m.latency[route] = h
	}
	h.observe(elapsed.Seconds())
}

// statusWriter captures the response status while passing Flush through —
// the NDJSON streaming path needs the flusher.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument records per-route counters and latency around h.
func (m *metrics) instrument(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		m.record(route, sw.status, time.Since(start))
	})
}

// render writes the Prometheus text exposition. Server-level gauges
// (pool occupancy, registry size, admission counters) are sampled by the
// caller and passed in so the metrics store stays free of server wiring.
func (m *metrics) render(w *strings.Builder, gauges map[string]float64) {
	fmt.Fprintf(w, "# TYPE kplistd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "kplistd_uptime_seconds %.3f\n", time.Since(m.started).Seconds())

	names := make([]string, 0, len(gauges))
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, gauges[name])
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	routes := make([]string, 0, len(m.requests))
	for route := range m.requests {
		routes = append(routes, route)
	}
	sort.Strings(routes)

	fmt.Fprintf(w, "# TYPE kplistd_requests_total counter\n")
	for _, route := range routes {
		statuses := make([]int, 0, len(m.requests[route]))
		for st := range m.requests[route] {
			statuses = append(statuses, st)
		}
		sort.Ints(statuses)
		for _, st := range statuses {
			fmt.Fprintf(w, "kplistd_requests_total{route=%q,status=\"%d\"} %d\n",
				route, st, m.requests[route][st])
		}
	}

	fmt.Fprintf(w, "# TYPE kplistd_request_duration_seconds histogram\n")
	for _, route := range routes {
		h := m.latency[route]
		var cum int64
		for i, bound := range latencyBounds {
			cum += h.buckets[i]
			fmt.Fprintf(w, "kplistd_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n",
				route, bound, cum)
		}
		cum += h.buckets[len(latencyBounds)]
		fmt.Fprintf(w, "kplistd_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, cum)
		fmt.Fprintf(w, "kplistd_request_duration_seconds_sum{route=%q} %g\n", route, h.sum)
		fmt.Fprintf(w, "kplistd_request_duration_seconds_count{route=%q} %d\n", route, h.count)
	}

	fmt.Fprintf(w, "# TYPE kplistd_mutations_total counter\n")
	fmt.Fprintf(w, "kplistd_mutations_total %d\n", m.mutOps)
	fmt.Fprintf(w, "# TYPE kplistd_mutation_batches_total counter\n")
	fmt.Fprintf(w, "kplistd_mutation_batches_total{mode=\"incremental\"} %d\n", m.mutIncremental)
	fmt.Fprintf(w, "kplistd_mutation_batches_total{mode=\"rebuild\"} %d\n", m.mutRebuild)
	fmt.Fprintf(w, "# TYPE kplistd_mutation_apply_seconds histogram\n")
	{
		h := m.mutLatency
		var cum int64
		for i, bound := range latencyBounds {
			cum += h.buckets[i]
			fmt.Fprintf(w, "kplistd_mutation_apply_seconds_bucket{le=\"%g\"} %d\n", bound, cum)
		}
		cum += h.buckets[len(latencyBounds)]
		fmt.Fprintf(w, "kplistd_mutation_apply_seconds_bucket{le=\"+Inf\"} %d\n", cum)
		fmt.Fprintf(w, "kplistd_mutation_apply_seconds_sum %g\n", h.sum)
		fmt.Fprintf(w, "kplistd_mutation_apply_seconds_count %d\n", h.count)
	}

	fmt.Fprintf(w, "# TYPE kplistd_estimate_queries_total counter\n")
	// The three planner methods always render (zero included) so dashboards
	// see a stable label set from first scrape.
	methods := []string{"exact", "hll", "sample"}
	for method := range m.estimates {
		switch method {
		case "exact", "hll", "sample":
		default:
			methods = append(methods, method)
		}
	}
	sort.Strings(methods)
	for _, method := range methods {
		fmt.Fprintf(w, "kplistd_estimate_queries_total{method=%q} %d\n", method, m.estimates[method])
	}

	fmt.Fprintf(w, "# TYPE kplistd_replica_applies_total counter\n")
	fmt.Fprintf(w, "kplistd_replica_applies_total %d\n", m.replicaApplies)
	fmt.Fprintf(w, "# TYPE kplistd_replica_duplicates_total counter\n")
	fmt.Fprintf(w, "kplistd_replica_duplicates_total %d\n", m.replicaDuplicates)
	fmt.Fprintf(w, "# TYPE kplistd_replica_seq_gaps_total counter\n")
	fmt.Fprintf(w, "kplistd_replica_seq_gaps_total %d\n", m.replicaGaps)
	fmt.Fprintf(w, "# TYPE kplistd_misdirected_total counter\n")
	fmt.Fprintf(w, "kplistd_misdirected_total %d\n", m.misdirected)

	fmt.Fprintf(w, "# TYPE kplistd_wal_appends_total counter\n")
	fmt.Fprintf(w, "kplistd_wal_appends_total %d\n", m.walAppends)
	fmt.Fprintf(w, "# TYPE kplistd_snapshot_compactions_total counter\n")
	fmt.Fprintf(w, "kplistd_snapshot_compactions_total %d\n", m.compactions)
	fmt.Fprintf(w, "# TYPE kplistd_snapshot_compaction_failures_total counter\n")
	fmt.Fprintf(w, "kplistd_snapshot_compaction_failures_total %d\n", m.compactionFailures)
	fmt.Fprintf(w, "# TYPE kplistd_wal_fsync_seconds histogram\n")
	{
		h := m.walFsync
		var cum int64
		for i, bound := range latencyBounds {
			cum += h.buckets[i]
			fmt.Fprintf(w, "kplistd_wal_fsync_seconds_bucket{le=\"%g\"} %d\n", bound, cum)
		}
		cum += h.buckets[len(latencyBounds)]
		fmt.Fprintf(w, "kplistd_wal_fsync_seconds_bucket{le=\"+Inf\"} %d\n", cum)
		fmt.Fprintf(w, "kplistd_wal_fsync_seconds_sum %g\n", h.sum)
		fmt.Fprintf(w, "kplistd_wal_fsync_seconds_count %d\n", h.count)
	}
}
