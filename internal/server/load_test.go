package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kplist"
	"kplist/internal/server"
)

// TestLoad128Clients is the acceptance load test (run under -race in CI):
// 128 concurrent clients hammer one kplistd instance with queries and
// streams. The accept queue is sized above the client count, so nothing
// may shed: every request must come back 200 with an exact answer —
// zero dropped-but-accepted requests.
func TestLoad128Clients(t *testing.T) {
	const clients = 128
	srv, ts := newTestServer(t, func(c *server.Config) {
		c.PoolSize = 2
		c.QueueLimit = 2 * clients
		c.MaxInFlight = 8
		c.DefaultDeadline = time.Minute
	})
	idA, instA := registerWorkload(t, ts.URL, 90, 11)
	idB, instB := registerWorkload(t, ts.URL, 70, 13)

	wantA := kplist.GroundTruth(instA.G, 4)
	wantB := kplist.GroundTruth(instB.G, 4)
	var expectA bytes.Buffer
	for _, c := range wantA {
		line, _ := json.Marshal(c)
		expectA.Write(line)
		expectA.WriteByte('\n')
	}

	client := &http.Client{Timeout: time.Minute}
	var wrong, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mixed traffic: batch query on A, single on B, stream on A.
			resp, body := doPost(t, client, ts.URL+"/v1/graphs/"+idA+"/query", map[string]any{
				"queries": []map[string]any{
					{"p": 4, "algo": "congested-clique"},
					{"p": 3},
					{"p": 4, "algo": "congested-clique"}, // duplicate → cache
				},
			})
			switch resp.StatusCode {
			case http.StatusOK:
				var qr struct {
					Results []struct {
						Cliques int    `json:"cliques"`
						Error   string `json:"error"`
					} `json:"results"`
				}
				if err := json.Unmarshal(body, &qr); err != nil ||
					len(qr.Results) != 3 ||
					qr.Results[0].Error != "" ||
					qr.Results[0].Cliques != len(wantA) ||
					qr.Results[0].Cliques != qr.Results[2].Cliques {
					t.Errorf("client %d: bad batch answer: %s", i, body)
					wrong.Add(1)
				}
			case http.StatusTooManyRequests:
				shed.Add(1)
			default:
				t.Errorf("client %d: batch status %d: %s", i, resp.StatusCode, body)
				wrong.Add(1)
			}

			resp, body = doPost(t, client, ts.URL+"/v1/graphs/"+idB+"/query",
				map[string]any{"p": 4, "algo": "congested-clique"})
			if resp.StatusCode == http.StatusOK {
				var qr struct {
					Results []struct {
						Cliques int `json:"cliques"`
					} `json:"results"`
				}
				if err := json.Unmarshal(body, &qr); err != nil ||
					len(qr.Results) != 1 || qr.Results[0].Cliques != len(wantB) {
					t.Errorf("client %d: bad single answer: %s", i, body)
					wrong.Add(1)
				}
			} else {
				t.Errorf("client %d: single status %d", i, resp.StatusCode)
				wrong.Add(1)
			}

			resp, body = doGet(t, client, ts.URL+"/v1/graphs/"+idA+"/cliques?p=4&algo=congested-clique")
			if resp.StatusCode != http.StatusOK || !bytes.Equal(body, expectA.Bytes()) {
				t.Errorf("client %d: stream status %d, %d bytes (want %d)",
					i, resp.StatusCode, len(body), expectA.Len())
				wrong.Add(1)
			}
		}(i)
	}
	wg.Wait()

	if w := wrong.Load(); w != 0 {
		t.Fatalf("%d wrong answers under load", w)
	}
	// The queue was sized above the client count: nothing may have shed.
	if s := shed.Load(); s != 0 {
		t.Fatalf("%d requests shed despite queue capacity %d", s, 2*clients)
	}
	st := srv.Pool().Stats()
	if st.SessionQueries == 0 || st.Open > 2 {
		t.Errorf("pool stats after load: %+v", st)
	}
}

func doPost(t *testing.T, c *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := c.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	out := readAll(t, resp)
	return resp, out
}

func doGet(t *testing.T, c *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("get %s: %v", url, err)
	}
	defer resp.Body.Close()
	out := readAll(t, resp)
	return resp, out
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return buf.Bytes()
}

// TestAdmissionSheds429UnderSaturation pins the load-shedding contract:
// with one execution slot and a one-deep queue, a burst of slow cold
// queries must shed some requests with 429 — and nothing may land outside
// {200, 429, 503}.
func TestAdmissionSheds429UnderSaturation(t *testing.T) {
	_, ts := newTestServer(t, func(c *server.Config) {
		c.MaxInFlight = 1
		c.QueueLimit = 1
		c.DefaultDeadline = time.Minute
	})
	// Dense stochastic-block, sized so every cold congested-clique query
	// still runs ~10ms on the fast enumeration kernel and the burst
	// genuinely overlaps on the single slot.
	spec := kplist.DefaultWorkloadSpec(kplist.WorkloadStochasticBlock, 512, 17)
	resp0, body0 := postJSON(t, ts.URL+"/v1/graphs", map[string]any{"workload": spec})
	if resp0.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp0.StatusCode, body0)
	}
	var info server.GraphInfo
	if err := json.Unmarshal(body0, &info); err != nil {
		t.Fatal(err)
	}
	id := info.ID

	const burst = 24
	client := &http.Client{Timeout: time.Minute}
	var ok, shed, timedOut, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds defeat the session cache, so every admitted
			// request occupies the single slot for real work.
			resp, _ := doPost(t, client, ts.URL+"/v1/graphs/"+id+"/query",
				map[string]any{"p": 4, "algo": "congested-clique", "seed": i})
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
			case http.StatusServiceUnavailable:
				timedOut.Add(1)
			default:
				other.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("statuses outside the admission contract: ok=%d shed=%d timeout=%d other=%d",
			ok.Load(), shed.Load(), timedOut.Load(), other.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("saturation must not starve every request")
	}
	if shed.Load() == 0 {
		t.Fatal("a 24-burst against a 2-deep server must shed")
	}
	if got := ok.Load() + shed.Load() + timedOut.Load(); got != burst {
		t.Fatalf("accounted %d of %d requests", got, burst)
	}
}

// TestDeadlineReturns503 pins the per-request deadline: while a long batch
// occupies the single execution slot, a request with a 5ms deadline must
// leave the queue with 503 and a deadline error — and the server stays
// serviceable afterwards. (Engine-level mid-run cancellation is covered by
// the Session tests; this exercises the queue half of the deadline.)
func TestDeadlineReturns503(t *testing.T) {
	_, ts := newTestServer(t, func(c *server.Config) {
		c.MaxInFlight = 1
		c.QueueLimit = 8
		c.DefaultDeadline = time.Minute
		c.Session = kplist.SessionConfig{MaxConcurrent: 1}
	})
	// A dense stochastic-block graph: a cold congested-clique p=4 query
	// on it runs ~10ms, so the 50-query batch below holds the slot for
	// hundreds of ms.
	spec := kplist.DefaultWorkloadSpec(kplist.WorkloadStochasticBlock, 256, 19)
	resp0, body0 := postJSON(t, ts.URL+"/v1/graphs", map[string]any{"workload": spec})
	if resp0.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp0.StatusCode, body0)
	}
	var info server.GraphInfo
	if err := json.Unmarshal(body0, &info); err != nil {
		t.Fatal(err)
	}
	id := info.ID

	// A batch of distinct-seed cold queries serialized through a
	// MaxConcurrent=1 session holds the slot for hundreds of ms.
	var batch []map[string]any
	for i := 0; i < 50; i++ {
		batch = append(batch, map[string]any{"p": 4, "algo": "congested-clique", "seed": i})
	}
	slow := make(chan int, 1)
	go func() {
		resp, _ := doPost(t, &http.Client{Timeout: time.Minute}, ts.URL+"/v1/graphs/"+id+"/query",
			map[string]any{"queries": batch})
		slow <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond) // let the batch take the slot

	resp, body := postJSON(t, ts.URL+"/v1/graphs/"+id+"/query?deadline_ms=5",
		map[string]any{"p": 4, "seed": 999})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline query: status %d body %s, want 503", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("deadline")) {
		t.Errorf("503 body should carry the deadline error, got %s", body)
	}
	if st := <-slow; st != http.StatusOK {
		t.Fatalf("slow batch finished %d, want 200", st)
	}
	// The deadline miss left everything reusable.
	resp, body = postJSON(t, ts.URL+"/v1/graphs/"+id+"/query", map[string]any{"p": 4, "seed": 999})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up query: status %d body %s", resp.StatusCode, body)
	}
	var qr struct {
		Results []struct {
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &qr); err != nil || len(qr.Results) != 1 || qr.Results[0].Error != "" {
		t.Fatalf("follow-up not clean: %s", body)
	}
}
