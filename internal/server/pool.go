package server

import (
	"container/list"
	"context"
	"sync"

	"kplist"
	"kplist/internal/graph"
)

// PoolStats is a snapshot of the session pool's counters.
type PoolStats struct {
	// Open is the number of sessions currently in the pool (can briefly
	// exceed capacity while evicted sessions drain in-flight queries).
	Open int
	// Hits are Acquires served by an already-open session; Misses opened
	// a fresh one; Evictions count capacity- and invalidation-driven
	// closes (scheduled — the close itself waits for the last reference).
	Hits, Misses, Evictions int64
	// SessionQueries/SessionHits/SessionMisses aggregate the per-session
	// result-cache counters across open and retired sessions.
	SessionQueries, SessionHits, SessionMisses int64
}

// SessionPool is an LRU cache of open kplist.Sessions keyed by graph ID.
// Opening a session pays the graph's preprocessing (the degeneracy peel),
// so the pool is the serving layer's working set: capacity bounds resident
// preprocessed state, and least-recently-queried graphs are evicted first.
//
// Acquire/release is refcounted: an evicted session is removed from the
// pool immediately (new acquires open a fresh one) but closed only when
// its last in-flight query releases it, so eviction never fails an
// admitted request.
type SessionPool struct {
	mu       sync.Mutex
	capacity int
	cfg      kplist.SessionConfig

	lru     *list.List // of *poolEntry; front = most recently used
	entries map[string]*poolEntry

	hits, misses, evictions int64
	// retired accumulates result-cache counters of closed sessions so
	// /metrics never loses history to eviction.
	retired struct{ queries, hits, misses int64 }
}

type poolEntry struct {
	id      string
	elem    *list.Element
	refs    int
	evicted bool
	ready   chan struct{}
	sess    *kplist.Session // set before ready closes
}

// NewSessionPool returns a pool of at most capacity open sessions
// (≤ 0 means the tuned graph.Tuning.SessionPoolSize, 8 untuned), each
// opened with cfg.
func NewSessionPool(capacity int, cfg kplist.SessionConfig) *SessionPool {
	if capacity <= 0 {
		capacity = graph.CurrentTuning().SessionPoolSize
	}
	return &SessionPool{
		capacity: capacity,
		cfg:      cfg,
		lru:      list.New(),
		entries:  make(map[string]*poolEntry),
	}
}

// Acquire returns the pooled session for id, opening one when absent,
// plus a release func the caller must invoke once done querying. The
// graph to open on comes from the `open` callback, invoked at open time —
// not captured at request-decode time — so a mutation (PATCH) that lands
// between the caller's registry lookup and the open never freezes a
// pre-mutation graph into the pool. Concurrent first acquires for the
// same id coalesce onto one opening; the expensive open (degeneracy peel)
// runs outside the pool lock. A caller coalescing onto someone else's
// open honors ctx while waiting (the opener itself always finishes the
// open — others depend on it), so a short-deadline request never pins its
// admission slot for the full preprocessing of a large graph.
func (p *SessionPool) Acquire(ctx context.Context, id string, open func() *kplist.Graph) (*kplist.Session, func(), error) {
	p.mu.Lock()
	if e, ok := p.entries[id]; ok {
		e.refs++
		p.lru.MoveToFront(e.elem)
		p.hits++
		p.mu.Unlock()
		// An already-open session wins over an expired context (select
		// between two ready channels picks randomly).
		select {
		case <-e.ready:
			return e.sess, func() { p.release(e) }, nil
		default:
		}
		select {
		case <-e.ready:
			return e.sess, func() { p.release(e) }, nil
		case <-ctx.Done():
			p.release(e)
			return nil, nil, ctx.Err()
		}
	}
	e := &poolEntry{id: id, refs: 1, ready: make(chan struct{})}
	e.elem = p.lru.PushFront(e)
	p.entries[id] = e
	p.misses++
	p.evictOverflowLocked()
	p.mu.Unlock()

	e.sess = kplist.NewSession(open(), p.cfg)
	close(e.ready)
	return e.sess, func() { p.release(e) }, nil
}

// evictLocked removes e from the pool: new acquires will open fresh, the
// session closes when the last reference releases.
func (p *SessionPool) evictLocked(e *poolEntry) {
	p.lru.Remove(e.elem)
	delete(p.entries, e.id)
	e.evicted = true
	p.evictions++
	if e.refs == 0 {
		p.closeRetiredLocked(e)
	}
}

// evictOverflowLocked trims the LRU tail down to capacity. Evicted entries
// leave the map immediately; their sessions close on last release.
func (p *SessionPool) evictOverflowLocked() {
	for p.lru.Len() > p.capacity {
		p.evictLocked(p.lru.Back().Value.(*poolEntry))
	}
}

func (p *SessionPool) release(e *poolEntry) {
	p.mu.Lock()
	e.refs--
	if e.evicted && e.refs == 0 {
		p.closeRetiredLocked(e)
	}
	p.mu.Unlock()
}

// closeRetiredLocked folds the dying session's cache counters into the
// retired accumulator and closes it. refs == 0 implies the opener already
// released, so e.sess is set.
func (p *SessionPool) closeRetiredLocked(e *poolEntry) {
	st := e.sess.Stats()
	p.retired.queries += st.Queries
	p.retired.hits += st.Hits
	p.retired.misses += st.Misses
	e.sess.Close()
}

// Invalidate evicts id's session (if pooled) regardless of recency — the
// DELETE /v1/graphs/{id} path. In-flight queries complete first.
func (p *SessionPool) Invalidate(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[id]; ok {
		p.evictLocked(e)
	}
}

// InvalidateOther evicts id's pooled session unless it is exactly sess —
// the mutation path's consistency hook. A PATCH applies to the session it
// acquired; if that session was concurrently evicted and a fresh one
// opened from the registry's pre-mutation graph, the fresh session would
// keep serving the old prefix to every later request. Called after the
// registry swap, this evicts such a stale entry (including one still
// opening) so the next acquire reopens from the updated registry graph.
func (p *SessionPool) InvalidateOther(id string, sess *kplist.Session) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[id]
	if !ok {
		return
	}
	select {
	case <-e.ready:
		if e.sess == sess {
			return // the pooled session is the one just mutated — current
		}
	default: // still opening: graph provenance unknown, evict to be safe
	}
	p.evictLocked(e)
}

// Contains reports whether id currently has a pooled session (test hook).
func (p *SessionPool) Contains(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.entries[id]
	return ok
}

// Stats returns a snapshot of the pool counters, aggregating the
// result-cache counters of every open session with the retired history.
func (p *SessionPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStats{
		Open:           len(p.entries),
		Hits:           p.hits,
		Misses:         p.misses,
		Evictions:      p.evictions,
		SessionQueries: p.retired.queries,
		SessionHits:    p.retired.hits,
		SessionMisses:  p.retired.misses,
	}
	for _, e := range p.entries {
		select {
		case <-e.ready:
			s := e.sess.Stats()
			st.SessionQueries += s.Queries
			st.SessionHits += s.Hits
			st.SessionMisses += s.Misses
		default: // still opening; counts are zero anyway
		}
	}
	return st
}
