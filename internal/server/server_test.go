package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kplist"
	"kplist/internal/server"
)

// newTestServer starts an httptest server over a small default config; the
// overrides mutate the config before New.
func newTestServer(t *testing.T, override func(*server.Config)) (*server.Server, *httptest.Server) {
	t.Helper()
	cfg := server.Config{
		MaxGraphs:       8,
		PoolSize:        4,
		QueueLimit:      256,
		MaxInFlight:     8,
		DefaultDeadline: time.Minute,
	}
	if override != nil {
		override(&cfg)
	}
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// registerWorkload registers a planted-clique workload graph and returns
// its ID and the generated instance for ground-truth comparison.
func registerWorkload(t *testing.T, base string, n int, seed int64) (string, *kplist.WorkloadInstance) {
	t.Helper()
	spec := kplist.DefaultWorkloadSpec(kplist.WorkloadPlantedClique, n, seed)
	spec.CliqueSize = 4
	inst, err := kplist.GenerateWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, base+"/v1/graphs", map[string]any{
		"name":     fmt.Sprintf("planted-%d-%d", n, seed),
		"workload": spec,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d body %s", resp.StatusCode, body)
	}
	var info server.GraphInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.N != inst.G.N() || info.M != inst.G.M() {
		t.Fatalf("registered info %+v does not match generated graph n=%d m=%d",
			info, inst.G.N(), inst.G.M())
	}
	return info.ID, inst
}

// TestRegisterQueryStreamEvict is the end-to-end happy path: register a
// workload graph, query it (single and batch), stream its cliques as
// NDJSON byte-matching the sequential ground truth, then force an LRU
// eviction and check the evicted graph still answers identically.
func TestRegisterQueryStreamEvict(t *testing.T) {
	srv, ts := newTestServer(t, func(c *server.Config) { c.PoolSize = 1 })
	id, inst := registerWorkload(t, ts.URL, 120, 7)

	// Single query.
	resp, body := postJSON(t, ts.URL+"/v1/graphs/"+id+"/query",
		map[string]any{"p": 4, "algo": "congested-clique"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d body %s", resp.StatusCode, body)
	}
	var qr struct {
		Results []struct {
			Cliques int   `json:"cliques"`
			Rounds  int64 `json:"rounds"`
			Error   string
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	want := kplist.GroundTruth(inst.G, 4)
	if len(qr.Results) != 1 || qr.Results[0].Cliques != len(want) {
		t.Fatalf("query results %+v, want %d cliques", qr.Results, len(want))
	}
	if qr.Results[0].Rounds <= 0 {
		t.Errorf("query must carry a positive round bill, got %d", qr.Results[0].Rounds)
	}

	// Batch with a duplicate: both results agree; the session cache served
	// the duplicate (visible in /metrics as a session cache hit).
	resp, body = postJSON(t, ts.URL+"/v1/graphs/"+id+"/query", map[string]any{
		"queries": []map[string]any{
			{"p": 4, "algo": "congested-clique"},
			{"p": 4, "algo": "congested-clique"},
			{"p": 3},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) != 3 || qr.Results[0].Cliques != qr.Results[1].Cliques {
		t.Fatalf("batch results inconsistent: %+v", qr.Results)
	}
	for i, r := range qr.Results {
		if r.Error != "" {
			t.Errorf("batch result %d failed: %s", i, r.Error)
		}
	}

	// Stream: NDJSON bytes must equal the ground truth serialized the same
	// way — the acceptance byte-match.
	resp, body = get(t, ts.URL+"/v1/graphs/"+id+"/cliques?p=4&algo=congested-clique&stream=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content-type %q", ct)
	}
	var expect bytes.Buffer
	for _, c := range want {
		line, _ := json.Marshal(c)
		expect.Write(line)
		expect.WriteByte('\n')
	}
	if !bytes.Equal(body, expect.Bytes()) {
		t.Fatalf("stream bytes do not match ground truth:\ngot  %d bytes\nwant %d bytes", len(body), expect.Len())
	}
	if got := resp.Header.Get("X-Kplist-Clique-Count"); got != fmt.Sprint(len(want)) {
		t.Errorf("X-Kplist-Clique-Count = %s, want %d", got, len(want))
	}

	// Pool size is 1: registering and querying a second graph evicts the
	// first session. The evicted graph must then answer identically from a
	// fresh session.
	id2, _ := registerWorkload(t, ts.URL, 100, 9)
	if _, body := postJSON(t, ts.URL+"/v1/graphs/"+id2+"/query", map[string]any{"p": 4}); !json.Valid(body) {
		t.Fatalf("second graph query: %s", body)
	}
	if srv.Pool().Contains(id) {
		t.Fatal("first session should have been evicted from a size-1 pool")
	}
	resp, body = get(t, ts.URL+"/v1/graphs/"+id+"/cliques?p=4&algo=congested-clique")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-eviction stream: status %d", resp.StatusCode)
	}
	if !bytes.Equal(body, expect.Bytes()) {
		t.Fatal("evicted graph answered differently after re-opening")
	}
	if st := srv.Pool().Stats(); st.Evictions == 0 {
		t.Errorf("expected at least one eviction: %+v", st)
	}
}

// TestLRUEvictionCorrectness cycles graphs through a size-2 pool and
// checks every evicted graph re-opens with identical answers, and that
// eviction follows recency (the least recently queried graph leaves).
func TestLRUEvictionCorrectness(t *testing.T) {
	srv, ts := newTestServer(t, func(c *server.Config) { c.PoolSize = 2 })
	type gr struct {
		id    string
		inst  *kplist.WorkloadInstance
		first string
	}
	var graphs []gr
	for i := 0; i < 3; i++ {
		id, inst := registerWorkload(t, ts.URL, 80+10*i, int64(20+i))
		g := gr{id: id, inst: inst}
		resp, body := get(t, ts.URL+"/v1/graphs/"+id+"/cliques?p=4")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("first stream %s: status %d", id, resp.StatusCode)
		}
		g.first = string(body)
		graphs = append(graphs, g)
	}
	// Pool holds the two most recent; graph 0 was evicted.
	if srv.Pool().Contains(graphs[0].id) {
		t.Error("LRU violation: oldest graph still pooled")
	}
	for _, g := range graphs {
		resp, body := get(t, ts.URL+"/v1/graphs/"+g.id+"/cliques?p=4")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("re-stream %s: status %d", g.id, resp.StatusCode)
		}
		if string(body) != g.first {
			t.Errorf("graph %s answered differently after eviction cycle", g.id)
		}
	}
	st := srv.Pool().Stats()
	if st.Evictions == 0 || st.Open > 2 {
		t.Errorf("pool stats %+v: want evictions > 0 and open ≤ 2", st)
	}
}

// TestErrorMapping pins the typed-error → HTTP status contract.
func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, func(c *server.Config) { c.MaxGraphs = 1 })
	id, _ := registerWorkload(t, ts.URL, 60, 3)

	cases := []struct {
		name string
		do   func() int
		want int
	}{
		{"unknown graph", func() int {
			resp, _ := postJSON(t, ts.URL+"/v1/graphs/nope/query", map[string]any{"p": 4})
			return resp.StatusCode
		}, http.StatusNotFound},
		{"unknown engine", func() int {
			resp, _ := postJSON(t, ts.URL+"/v1/graphs/"+id+"/query", map[string]any{"p": 4, "algo": "quantum"})
			return resp.StatusCode
		}, http.StatusBadRequest},
		{"invalid query domain", func() int {
			resp, _ := postJSON(t, ts.URL+"/v1/graphs/"+id+"/query", map[string]any{"p": 3, "algo": "congest"})
			return resp.StatusCode
		}, http.StatusBadRequest},
		{"unknown family", func() int {
			resp, _ := postJSON(t, ts.URL+"/v1/graphs", map[string]any{
				"workload": map[string]any{"family": "no-such-family", "n": 10}})
			return resp.StatusCode
		}, http.StatusBadRequest},
		{"registry full", func() int {
			resp, _ := postJSON(t, ts.URL+"/v1/graphs", map[string]any{"n": 3, "edges": [][2]int{{0, 1}}})
			return resp.StatusCode
		}, http.StatusConflict},
		{"bad upload endpoint", func() int {
			resp, _ := postJSON(t, ts.URL+"/v1/graphs", map[string]any{"n": 2, "edges": [][2]int{{0, 5}}})
			return resp.StatusCode
		}, http.StatusBadRequest},
		{"missing p on stream", func() int {
			resp, _ := get(t, ts.URL+"/v1/graphs/"+id+"/cliques")
			return resp.StatusCode
		}, http.StatusBadRequest},
		{"bad deadline", func() int {
			resp, _ := get(t, ts.URL+"/v1/graphs/"+id+"/cliques?p=4&deadline_ms=zero")
			return resp.StatusCode
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if got := tc.do(); got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}
	// Note: "bad upload endpoint" consumed nothing (registry full fires
	// first at MaxGraphs=1), so order matters: registry-full case above
	// already proved 409.
}

// TestResourceGuards pins the admission-time resource bounds: oversized
// workload specs are rejected before any generation work, oversized
// batches before any query work, and a huge deadline_ms clamps instead of
// overflowing into an instantly-expired context.
func TestResourceGuards(t *testing.T) {
	_, ts := newTestServer(t, nil)
	id, _ := registerWorkload(t, ts.URL, 60, 4)

	// Workload with too many vertices.
	resp, body := postJSON(t, ts.URL+"/v1/graphs", map[string]any{
		"workload": map[string]any{"family": "grid", "n": 1 << 21}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("huge-n workload: %d %s, want 400", resp.StatusCode, body)
	}
	// Workload within the vertex bound whose expected edge count explodes
	// (dense stochastic block): rejected by the estimate, never generated.
	resp, body = postJSON(t, ts.URL+"/v1/graphs", map[string]any{
		"workload": map[string]any{"family": "stochastic-block", "n": 1 << 19, "pIn": 1.0, "pOut": 0.5}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("dense workload: %d %s, want 400", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "edges") {
		t.Errorf("rejection should name the edge bound: %s", body)
	}

	// A batch longer than MaxBatchQueries (default 1024).
	big := make([]map[string]any, 1025)
	for i := range big {
		big[i] = map[string]any{"p": 4, "seed": i}
	}
	resp, body = postJSON(t, ts.URL+"/v1/graphs/"+id+"/query", map[string]any{"queries": big})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: %d %s, want 400", resp.StatusCode, body)
	}

	// deadline_ms beyond the Duration range clamps to MaxDeadline and the
	// query succeeds.
	resp, body = postJSON(t, ts.URL+"/v1/graphs/"+id+"/query?deadline_ms=99999999999999999",
		map[string]any{"p": 4})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("huge deadline_ms: %d %s, want 200 (clamped)", resp.StatusCode, body)
	}
}

// TestUploadedGraphQuery registers an explicit edge list (K4 plus a tail)
// and checks the listing.
func TestUploadedGraphQuery(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := postJSON(t, ts.URL+"/v1/graphs", map[string]any{
		"name": "k4tail", "n": 5,
		"edges": [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	var info server.GraphInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/graphs/"+info.ID+"/query",
		map[string]any{"p": 4, "includeCliques": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var qr struct {
		Results []struct {
			CliqueList []kplist.Clique `json:"cliqueList"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) != 1 || len(qr.Results[0].CliqueList) != 1 ||
		fmt.Sprint(qr.Results[0].CliqueList[0]) != "[0 1 2 3]" {
		t.Fatalf("want the single K4 [0 1 2 3], got %+v", qr.Results)
	}
}

// TestDeleteInvalidatesPool removes a graph and checks both the 404 and
// that its pooled session left.
func TestDeleteInvalidatesPool(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	id, _ := registerWorkload(t, ts.URL, 60, 5)
	if resp, _ := postJSON(t, ts.URL+"/v1/graphs/"+id+"/query", map[string]any{"p": 4}); resp.StatusCode != 200 {
		t.Fatalf("prime query failed: %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if srv.Pool().Contains(id) {
		t.Error("session survived graph deletion")
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/graphs/"+id+"/query", map[string]any{"p": 4}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("query after delete: %d, want 404", resp.StatusCode)
	}
}

// TestHealthzAndMetrics checks the observability surface: healthz JSON and
// the Prometheus exposition carrying the per-endpoint and pool series.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, nil)
	id, _ := registerWorkload(t, ts.URL, 60, 1)
	postJSON(t, ts.URL+"/v1/graphs/"+id+"/query", map[string]any{"p": 4})
	postJSON(t, ts.URL+"/v1/graphs/"+id+"/query", map[string]any{"p": 4}) // cache hit

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var hz map[string]any
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" || hz["graphs"].(float64) != 1 {
		t.Errorf("healthz %v", hz)
	}

	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`kplistd_requests_total{route="POST /v1/graphs",status="201"} 1`,
		`kplistd_requests_total{route="POST /v1/graphs/{id}/query",status="200"} 2`,
		"kplistd_pool_open_sessions 1",
		"kplistd_session_cache_hits_total 1",
		"kplistd_request_duration_seconds_bucket",
		"kplistd_admission_shed_total 0",
		"kplistd_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestStreamNonStreaming checks the stream=0 JSON document form.
func TestStreamNonStreaming(t *testing.T) {
	_, ts := newTestServer(t, nil)
	id, inst := registerWorkload(t, ts.URL, 80, 2)
	resp, body := get(t, ts.URL+"/v1/graphs/"+id+"/cliques?p=4&stream=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream=0: %d %s", resp.StatusCode, body)
	}
	var doc struct {
		Count   int             `json:"count"`
		Cliques []kplist.Clique `json:"cliques"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if want := len(kplist.GroundTruth(inst.G, 4)); doc.Count != want || len(doc.Cliques) != want {
		t.Errorf("count %d cliques %d, want %d", doc.Count, len(doc.Cliques), want)
	}
}

// TestTruthStreaming exercises the algo=truth path: the NDJSON stream
// must carry exactly the ground-truth clique set, be byte-identical
// across repeated requests (the kernel's enumeration order is
// deterministic), and the document form must match the memoized listing.
func TestTruthStreaming(t *testing.T) {
	_, ts := newTestServer(t, nil)
	id, inst := registerWorkload(t, ts.URL, 90, 11)
	want := kplist.NewCliqueSet(kplist.GroundTruth(inst.G, 4))

	resp, body := get(t, ts.URL+"/v1/graphs/"+id+"/cliques?p=4&algo=truth")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("truth stream: status %d body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("truth stream content-type %q", ct)
	}
	if src := resp.Header.Get("X-Kplist-Source"); src != "ground-truth" {
		t.Errorf("X-Kplist-Source = %q", src)
	}
	got := make(kplist.CliqueSet)
	lines := 0
	for _, ln := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if ln == "" {
			continue
		}
		var c kplist.Clique
		if err := json.Unmarshal([]byte(ln), &c); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", ln, err)
		}
		got.Add(c)
		lines++
	}
	if lines != want.Len() || !got.Equal(want) {
		t.Fatalf("truth stream listed %d cliques (%d distinct), want %d", lines, got.Len(), want.Len())
	}

	// Determinism: a second request streams identical bytes.
	resp2, body2 := get(t, ts.URL+"/v1/graphs/"+id+"/cliques?p=4&algo=truth")
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body, body2) {
		t.Fatal("truth stream is not byte-deterministic across requests")
	}

	// Document form: count + cliques from the memoized ground truth.
	resp, body = get(t, ts.URL+"/v1/graphs/"+id+"/cliques?p=4&algo=truth&stream=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("truth document: status %d body %s", resp.StatusCode, body)
	}
	var doc struct {
		Count   int             `json:"count"`
		Source  string          `json:"source"`
		Cliques []kplist.Clique `json:"cliques"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Count != want.Len() || doc.Source != "ground-truth" || len(doc.Cliques) != want.Len() {
		t.Fatalf("truth document %+v, want %d cliques", doc, want.Len())
	}
	if got := resp.Header.Get("X-Kplist-Clique-Count"); got != fmt.Sprint(want.Len()) {
		t.Errorf("X-Kplist-Clique-Count = %s, want %d", got, want.Len())
	}

	// Domain validation still applies.
	if resp, _ := get(t, ts.URL+"/v1/graphs/"+id+"/cliques?p=0&algo=truth"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("p=0 truth stream: status %d, want 400", resp.StatusCode)
	}
}
