package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"kplist"
)

// errorResponse is the JSON error envelope every non-2xx body uses.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// statusFor maps typed kplist/server errors onto HTTP statuses: caller
// mistakes (unknown engine/family, out-of-domain query) are 4xx, deadline
// and shutdown conditions 5xx, everything unrecognized 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, kplist.ErrInvalidQuery),
		errors.Is(err, kplist.ErrUnknownEngine),
		errors.Is(err, kplist.ErrUnknownFamily):
		return http.StatusBadRequest
	case errors.Is(err, ErrGraphNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrRegistryFull), errors.Is(err, ErrDuplicateGraphID):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, kplist.ErrSessionClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// registerRequest registers a graph: either an explicit edge list over n
// vertices, or a workload spec to generate from (exactly one of the two).
// ID is the cluster extension: the gateway mints one graph ID and has the
// owner and every replica register under it, so placement and lookups
// agree across the membership. Explicit IDs may not use the registry's
// auto-assigned "g<n>" namespace.
type registerRequest struct {
	ID       string               `json:"id,omitempty"`
	Name     string               `json:"name,omitempty"`
	N        int                  `json:"n,omitempty"`
	Edges    [][2]int32           `json:"edges,omitempty"`
	Workload *kplist.WorkloadSpec `json:"workload,omitempty"`
	// Family and Seq are the repair-install extension: an anti-entropy
	// full-state transfer POSTs an owner's /export document here, and the
	// replica adopts the graph's family label and applied-batch sequence
	// number along with its edges (Seq is ignored for workload bodies —
	// generated graphs start their history at 0).
	Family string `json:"family,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad register body: %w", err))
		return
	}
	var (
		g       *kplist.Graph
		family  string
		planted []kplist.Clique
	)
	switch {
	case req.Workload != nil && req.Edges != nil:
		writeError(w, http.StatusBadRequest, errors.New("provide either edges or workload, not both"))
		return
	case req.Workload != nil:
		// Bound generation cost before generating: the same vertex/edge
		// limits the upload path enforces, with the edge side checked
		// against the spec's expected edge count (generation is Θ(edges)).
		if req.Workload.N > s.cfg.MaxUploadN {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("workload n=%d exceeds limit %d", req.Workload.N, s.cfg.MaxUploadN))
			return
		}
		est, err := req.Workload.EstimatedEdges()
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		if est > int64(s.cfg.MaxUploadEdges) {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("workload expects ≈%d edges, exceeding limit %d", est, s.cfg.MaxUploadEdges))
			return
		}
		inst, err := kplist.GenerateWorkload(*req.Workload)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		g = inst.G
		family = inst.Spec.Family
		for _, c := range inst.Props.Planted {
			planted = append(planted, kplist.Clique(c))
		}
	default:
		if req.N < 0 || req.N > s.cfg.MaxUploadN {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("n=%d outside [0, %d]", req.N, s.cfg.MaxUploadN))
			return
		}
		if len(req.Edges) > s.cfg.MaxUploadEdges {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("%d edges exceeds limit %d", len(req.Edges), s.cfg.MaxUploadEdges))
			return
		}
		edges := make([]kplist.Edge, len(req.Edges))
		for i, e := range req.Edges {
			edges[i] = kplist.Edge{U: e[0], V: e[1]}
		}
		var err error
		g, err = kplist.NewGraph(req.N, edges)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		family = req.Family
	}
	seq := req.Seq
	if req.Workload != nil {
		seq = 0
	}
	// The registry admits (or refuses) first: a capacity rejection must
	// never create files, so ErrRegistryFull leaves no debris on disk.
	var (
		info GraphInfo
		err  error
	)
	if req.ID != "" {
		info, err = s.reg.RegisterWithID(req.ID, req.Name, family, g, planted)
	} else {
		info, err = s.reg.Register(req.Name, family, g, planted)
	}
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if s.persist != nil {
		if err := s.persist.create(info, g, seq, s.reg); err != nil {
			// Roll the registration back: a graph the store cannot hold
			// durably is not registered at all.
			_ = s.reg.Remove(info.ID)
			writeError(w, http.StatusInternalServerError,
				fmt.Errorf("persisting graph %s: %w", info.ID, err))
			return
		}
	}
	if seq > 0 {
		s.appliedSeq(info.ID).Store(seq)
	}
	w.Header().Set(SeqHeader, strconv.FormatUint(seq, 10))
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.List()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rg, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, rg.Info)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Hold the graph's mutation lock so a concurrent PATCH can't append
	// to a WAL whose files are being removed underneath it.
	unlock := s.lockMutations(id)
	defer unlock()
	if err := s.reg.Remove(id); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if s.persist != nil {
		if err := s.persist.remove(id, s.reg); err != nil {
			// The graph is gone from the registry either way; report the
			// cleanup failure (orphaned files are swept at next boot).
			writeError(w, http.StatusInternalServerError,
				fmt.Errorf("removing graph %s files: %w", id, err))
			s.pool.Invalidate(id)
			s.mutLocks.Delete(id)
			return
		}
	}
	s.pool.Invalidate(id)
	s.mutLocks.Delete(id) // IDs never recycle, so the lock is garbage now
	s.seqs.Delete(id)
	w.WriteHeader(http.StatusNoContent)
}

// apiQuery is the wire form of one kplist.Query.
type apiQuery struct {
	P             int     `json:"p"`
	Algo          string  `json:"algo,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	PaperCosts    bool    `json:"paperCosts,omitempty"`
	FinalExponent float64 `json:"finalExponent,omitempty"`
}

func (q apiQuery) toQuery() kplist.Query {
	return kplist.Query{
		P:             q.P,
		Algo:          kplist.Algorithm(q.Algo),
		Seed:          q.Seed,
		PaperCosts:    q.PaperCosts,
		FinalExponent: q.FinalExponent,
	}
}

// queryRequest is a batch (Queries) or a single query (the inline apiQuery
// fields, used when Queries is empty).
type queryRequest struct {
	apiQuery
	Queries        []apiQuery `json:"queries,omitempty"`
	IncludeCliques bool       `json:"includeCliques,omitempty"`
}

type queryResult struct {
	Query      apiQuery        `json:"query"`
	Cliques    int             `json:"cliques"`
	Rounds     int64           `json:"rounds"`
	Messages   int64           `json:"messages"`
	CliqueList []kplist.Clique `json:"cliqueList,omitempty"`
	Error      string          `json:"error,omitempty"`
}

type queryResponse struct {
	Graph   string        `json:"graph"`
	Results []queryResult `json:"results"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rg, err := s.reg.Get(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "exact":
	case "estimate":
		// The approximate tier (estimate.go): answer with a point
		// estimate + confidence interval instead of exact enumeration.
		s.handleEstimate(w, r, id, rg)
		return
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown mode %q", mode))
		return
	}
	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad query body: %w", err))
		return
	}
	if len(req.Queries) > s.cfg.MaxBatchQueries {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d queries exceeds limit %d", len(req.Queries), s.cfg.MaxBatchQueries))
		return
	}
	single := len(req.Queries) == 0
	wire := req.Queries
	if single {
		wire = []apiQuery{req.apiQuery}
	}
	qs := make([]kplist.Query, len(wire))
	for i, q := range wire {
		qs[i] = q.toQuery()
	}

	sess, release, err := s.acquireChecked(r.Context(), id, rg.G)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	defer release()
	batch := sess.QueryBatchContext(r.Context(), qs)

	resp := queryResponse{Graph: id, Results: make([]queryResult, len(batch))}
	for i, br := range batch {
		qr := queryResult{Query: wire[i]}
		if br.Err != nil {
			qr.Error = br.Err.Error()
		} else {
			qr.Cliques = len(br.Result.Cliques)
			qr.Rounds = br.Result.Rounds
			qr.Messages = br.Result.Messages
			if req.IncludeCliques {
				qr.CliqueList = br.Result.Cliques
			}
		}
		resp.Results[i] = qr
	}
	// A single failed query maps its typed error to the response status;
	// batches always answer 200 with per-result errors.
	if single && batch[0].Err != nil {
		writeJSON(w, statusFor(batch[0].Err), resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// mutationWire is the wire form of one edge mutation.
type mutationWire struct {
	// Op is "add" or "remove" (alias "del").
	Op string `json:"op"`
	U  int32  `json:"u"`
	V  int32  `json:"v"`
}

// patchRequest is the PATCH /v1/graphs/{id}/edges body.
type patchRequest struct {
	Mutations []mutationWire `json:"mutations"`
}

// patchResponse reports what one mutation batch did.
type patchResponse struct {
	Graph string `json:"graph"`
	// Mutations echoes the batch length; AddedEdges/RemovedEdges count the
	// effective changes (redundant ops are no-ops).
	Mutations    int  `json:"mutations"`
	AddedEdges   int  `json:"addedEdges"`
	RemovedEdges int  `json:"removedEdges"`
	Rebuilt      bool `json:"rebuilt"`
	// InvalidatedResults counts the session cache entries the batch
	// dropped; untouched listings stay served from cache.
	InvalidatedResults int `json:"invalidatedResults"`
	N                  int `json:"n"`
	M                  int `json:"m"`
	// Seq is the graph's applied-batch sequence number after this request
	// (also in the X-Kplist-Seq header); Duplicate marks a replica apply
	// that was skipped because its sequence number was already applied —
	// the idempotence the hinted-handoff replay path relies on.
	Seq       uint64 `json:"seq"`
	Duplicate bool   `json:"duplicate,omitempty"`
}

// handlePatchEdges applies a batch of edge mutations to a registered
// graph through its pooled session's incremental clique-delta engine,
// then swaps the mutated snapshot into the registry so the change
// survives session eviction. Affected cached results are invalidated
// selectively inside Session.Apply — a mutation burst never flushes the
// whole working set.
func (s *Server) handlePatchEdges(w http.ResponseWriter, r *http.Request) {
	s.applyPatch(w, r, false)
}

// handleReplicaApply is the cluster replication path: the gateway
// acknowledges a PATCH once the owner has committed it, then replays the
// same batch here on every replica. The apply pipeline is identical to
// the owner's (WAL barrier first, then the incremental engine) — only the
// accounting differs, so replica write volume is visible separately from
// client write volume on /metrics.
func (s *Server) handleReplicaApply(w http.ResponseWriter, r *http.Request) {
	s.applyPatch(w, r, true)
}

func (s *Server) applyPatch(w http.ResponseWriter, r *http.Request, replica bool) {
	id := r.PathValue("id")
	rg, err := s.reg.Get(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	var req patchRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad mutation body: %w", err))
		return
	}
	if len(req.Mutations) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty mutation batch"))
		return
	}
	if len(req.Mutations) > s.cfg.MaxMutationBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d mutations exceeds limit %d", len(req.Mutations), s.cfg.MaxMutationBatch))
		return
	}
	muts := make([]kplist.Mutation, len(req.Mutations))
	for i, mw := range req.Mutations {
		switch mw.Op {
		case "add":
			muts[i] = kplist.AddEdgeMutation(mw.U, mw.V)
		case "remove", "del":
			muts[i] = kplist.DelEdgeMutation(mw.U, mw.V)
		default:
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("mutation %d: unknown op %q (want \"add\" or \"remove\")", i, mw.Op))
			return
		}
	}

	// Serialize acquire→apply→publish per graph. The lock must precede the
	// acquire: otherwise two PATCHes racing a pool eviction can each open a
	// session from the same pre-mutation registry graph, and the second
	// publish silently drops the first batch. Held across the acquire, the
	// second PATCH's open callback reads the registry only after the first
	// has published.
	unlock := s.lockMutations(id)
	defer unlock()

	// Replica applies carry the owner-assigned sequence number and must
	// land strictly in order: a duplicate (hinted-handoff replay, fan-out
	// retry) is acknowledged without re-applying, and a gap means this
	// replica missed acknowledged batches — applying out of order would
	// bury the divergence in the WAL, so it is refused and left to the
	// anti-entropy sweeper's full-state repair.
	seq := s.appliedSeq(id)
	var hdrSeq uint64
	if replica {
		hdrSeq, _ = strconv.ParseUint(r.Header.Get(SeqHeader), 10, 64)
	}
	if hdrSeq > 0 {
		cur := seq.Load()
		if hdrSeq <= cur {
			s.met.recordReplicaDuplicate()
			w.Header().Set(SeqHeader, strconv.FormatUint(cur, 10))
			writeJSON(w, http.StatusOK, patchResponse{
				Graph: id, Mutations: len(muts), Duplicate: true,
				Seq: cur, N: rg.G.N(), M: rg.G.M(),
			})
			return
		}
		if hdrSeq != cur+1 {
			s.met.recordReplicaGap()
			writeError(w, http.StatusConflict,
				fmt.Errorf("replica seq gap on graph %s: applied %d, got %d", id, cur, hdrSeq))
			return
		}
	}

	sess, release, err := s.acquireChecked(r.Context(), id, rg.G)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	defer release()

	// Durability barrier: with persistence on, the session hands each
	// batch's effective mutations to the graph's WAL before anything
	// mutates — an append failure rejects the whole batch, so the log
	// never lags the served state. The hook is (re)installed under the
	// mutation lock; sessions reopened by the pool start without one.
	var st *kplist.GraphStore
	if s.persist != nil {
		st = s.persist.store(id)
	}
	if st != nil {
		sess.SetMutationHook(func(eff []kplist.Mutation) error {
			t0 := time.Now()
			if err := st.AppendBatch(eff); err != nil {
				return err
			}
			s.met.recordWALAppend(time.Since(t0))
			return nil
		})
	}
	start := time.Now()
	ar, err := sess.Apply(r.Context(), muts)
	if err != nil {
		if errors.Is(err, kplist.ErrInvalidMutation) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeError(w, statusFor(err), err)
		return
	}
	s.met.recordMutation(len(muts), ar.Rebuilt, time.Since(start))
	if replica {
		s.met.recordReplicaApply()
	}

	// Publish the mutated snapshot: registry first (future session opens
	// must see it), then evict any pooled session that is not the one just
	// mutated — a concurrent eviction may have reopened from the stale
	// registry graph between our acquire and the update.
	if _, err := s.reg.UpdateGraph(id, ar.Graph); err != nil {
		// The graph was deleted mid-flight; drop any pooled successor.
		s.pool.Invalidate(id)
		writeError(w, statusFor(err), err)
		return
	}
	s.pool.InvalidateOther(id, sess)

	// Compact when the WAL has outgrown its bounds: the just-published
	// snapshot reflects every logged batch, the mutation lock keeps new
	// appends out, and a failure is retried on a later batch (recovery
	// replays the long log either way). A failure never surfaces to the
	// client — the batch is committed — but it is logged and counted:
	// a persistently failing compaction (disk full) lets the WAL grow
	// without bound, and the operator needs the signal.
	if st != nil && st.ShouldCompact() {
		if err := st.Compact(ar.Graph); err != nil {
			s.met.recordCompactionFailure()
			log.Printf("kplistd: compacting graph %s: %v", id, err)
		} else {
			s.met.recordCompaction()
		}
	}

	// Advance the applied-sequence counter: replica applies adopt the
	// owner's number; owner (and standalone) applies count effective
	// batches only, so the counter stays in lockstep with the WAL, which
	// never sees no-op batches either.
	newSeq := seq.Load()
	if hdrSeq > 0 {
		newSeq = hdrSeq
		seq.Store(hdrSeq)
	} else if ar.AddedEdges+ar.RemovedEdges > 0 {
		newSeq++
		seq.Store(newSeq)
	}
	w.Header().Set(SeqHeader, strconv.FormatUint(newSeq, 10))

	writeJSON(w, http.StatusOK, patchResponse{
		Graph:              id,
		Mutations:          len(muts),
		AddedEdges:         ar.AddedEdges,
		RemovedEdges:       ar.RemovedEdges,
		Rebuilt:            ar.Rebuilt,
		InvalidatedResults: ar.InvalidatedResults,
		N:                  ar.N,
		M:                  ar.M,
		Seq:                newSeq,
	})
}

// acquireChecked acquires id's pooled session and then re-checks the
// registry: a DELETE racing between the handler's registry lookup and the
// pool acquire would otherwise re-insert a session for a removed graph
// that no future request can ever hit (a leak until LRU pressure). Seeing
// the graph gone after the acquire, it invalidates the fresh entry and
// reports not-found. A pool miss opens on the registry's graph read at
// open time (falling back to the handler's snapshot if the graph vanished
// mid-open — the post-acquire re-check catches that), so a PATCH landing
// between the handler's lookup and the open never freezes a pre-mutation
// graph into the pool.
func (s *Server) acquireChecked(ctx context.Context, id string, g *kplist.Graph) (*kplist.Session, func(), error) {
	sess, release, err := s.pool.Acquire(ctx, id, func() *kplist.Graph {
		if cur, err := s.reg.Get(id); err == nil {
			return cur.G
		}
		return g
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := s.reg.Get(id); err != nil {
		release()
		s.pool.Invalidate(id)
		return nil, nil, err
	}
	return sess, release, nil
}

// streamFlushEvery is how many NDJSON lines go out between flushes: large
// enough to amortize syscalls, small enough that a slow consumer of a
// million-clique result never forces the server to buffer more than one
// chunk.
const streamFlushEvery = 1024

func (s *Server) handleCliques(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rg, err := s.reg.Get(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	qv := r.URL.Query()
	p, err := strconv.Atoi(qv.Get("p"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad or missing p: %q", qv.Get("p")))
		return
	}
	var seed int64
	if sv := qv.Get("seed"); sv != "" {
		seed, err = strconv.ParseInt(sv, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad seed: %q", sv))
			return
		}
	}
	sess, release, err := s.acquireChecked(r.Context(), id, rg.G)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	defer release()

	// algo=truth streams the sequential ground-truth kernel directly:
	// no engine run, no round bill, and — with stream=1 — no []Clique is
	// ever materialized, whatever the output size.
	if qv.Get("algo") == "truth" {
		s.serveTruthCliques(w, r, sess, id, p, qv.Get("stream") == "0", qv.Get("order") == "lex")
		return
	}

	q := kplist.Query{P: p, Algo: kplist.Algorithm(qv.Get("algo")), Seed: seed}
	res, err := sess.QueryContext(r.Context(), q)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}

	w.Header().Set("X-Kplist-Clique-Count", strconv.Itoa(len(res.Cliques)))
	w.Header().Set("X-Kplist-Rounds", strconv.FormatInt(res.Rounds, 10))
	w.Header().Set("X-Kplist-Messages", strconv.FormatInt(res.Messages, 10))
	if qv.Get("stream") == "0" {
		writeJSON(w, http.StatusOK, map[string]any{
			"graph": id, "p": p, "count": len(res.Cliques),
			"rounds": res.Rounds, "messages": res.Messages,
			"cliques": res.Cliques,
		})
		return
	}

	// NDJSON: one clique per line in the result's lexicographic order, so
	// the byte stream is deterministic and never materialized whole — the
	// buffered writer flushes every streamFlushEvery lines.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, 64<<10)
	flusher, _ := w.(http.Flusher)
	for i, c := range res.Cliques {
		line, err := json.Marshal(c)
		if err != nil {
			return // headers sent; nothing recoverable
		}
		if _, err := bw.Write(line); err != nil {
			return
		}
		if err := bw.WriteByte('\n'); err != nil {
			return
		}
		if (i+1)%streamFlushEvery == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	_ = bw.Flush()
}

// serveTruthCliques answers /cliques?algo=truth. The document form
// (stream=0) rides the session's memoized ground truth; the NDJSON form
// streams straight off the enumeration kernel's visitor — one reused
// line buffer, flushed every streamFlushEvery lines, in the kernel's
// deterministic enumeration order — so the response is byte-identical
// across requests without the server ever holding the listing. With
// order=lex the stream rides the memoized lexicographically sorted
// listing instead: visit order depends on the graph's degeneracy
// structure, so only the lexicographic form is comparable across
// different graphs covering the same cliques — which is what the cluster
// gateway's scatter–gather merge needs for byte-identical output.
func (s *Server) serveTruthCliques(w http.ResponseWriter, r *http.Request, sess *kplist.Session, id string, p int, document, lex bool) {
	if p < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("ground truth requires p ≥ 1, got %d", p))
		return
	}
	w.Header().Set("X-Kplist-Source", "ground-truth")
	if document {
		cs := sess.GroundTruth(p)
		w.Header().Set("X-Kplist-Clique-Count", strconv.Itoa(len(cs)))
		writeJSON(w, http.StatusOK, map[string]any{
			"graph": id, "p": p, "source": "ground-truth",
			"count": len(cs), "cliques": cs,
		})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, 64<<10)
	flusher, _ := w.(http.Flusher)
	line := make([]byte, 0, 64)
	lines := 0
	emit := func(c kplist.Clique) bool {
		line = line[:0]
		line = append(line, '[')
		for i, v := range c {
			if i > 0 {
				line = append(line, ',')
			}
			line = strconv.AppendInt(line, int64(v), 10)
		}
		line = append(line, ']', '\n')
		if _, werr := bw.Write(line); werr != nil {
			return false // client gone; stop enumerating
		}
		lines++
		if lines%streamFlushEvery == 0 {
			if werr := bw.Flush(); werr != nil {
				return false
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return true
	}
	if lex {
		for _, c := range sess.GroundTruth(p) {
			if r.Context().Err() != nil || !emit(c) {
				return
			}
		}
		_ = bw.Flush()
		return
	}
	err := sess.VisitGroundTruth(r.Context(), p, emit)
	if err != nil {
		return // headers already sent; the truncated stream is the signal
	}
	_ = bw.Flush()
}

// buildInfo is sampled once: the module version and VCS revision when
// the binary carries them, plus the toolchain.
var buildInfo = func() map[string]string {
	out := map[string]string{"go": runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		out["version"] = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			out["revision"] = kv.Value
		case "vcs.modified":
			out["dirty"] = kv.Value
		}
	}
	return out
}()

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	ps := s.pool.Stats()
	resp := map[string]any{
		"status":        "ok",
		"graphs":        s.reg.Len(),
		"openSessions":  ps.Open,
		"uptimeSeconds": int64(time.Since(s.met.started).Seconds()),
		"build":         buildInfo,
	}
	if s.persist != nil {
		resp["dataDir"] = s.persist.dir
		resp["recovery"] = s.recovery
	}
	writeJSON(w, http.StatusOK, resp)
}
