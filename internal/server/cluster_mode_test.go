package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"kplist/internal/cluster"
	"kplist/internal/server"
)

// clusterModeServer starts one cluster-mode node ("n1" of a 3-member
// ring, R=2) and returns its base URL plus the shared ring.
func clusterModeServer(t *testing.T) (string, *cluster.Ring) {
	t.Helper()
	ring, err := cluster.NewRing(cluster.Config{Members: []cluster.Member{
		{Name: "n1", Addr: "h1:1"}, {Name: "n2", Addr: "h2:1"}, {Name: "n3", Addr: "h3:1"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, func(c *server.Config) {
		c.ClusterSelf = "n1"
		c.ClusterRing = ring
	})
	return ts.URL, ring
}

// idHostedBy searches the explicit-ID namespace for a graph ID whose
// cluster placement satisfies pred.
func idHostedBy(t *testing.T, ring *cluster.Ring, pred func(owner string, replicas []cluster.Member) bool) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("c%04x", i)
		set := ring.ReplicaSet(id, ring.Replication())
		if pred(set[0].Name, set) {
			return id
		}
	}
	t.Fatal("no graph ID with the wanted placement in 10000 candidates")
	return ""
}

// forward sends a request marked as intra-cluster traffic.
func forward(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

// TestClusterModeGate drives the node-side ownership gate end to end:
// unmarked registration is always refused, reads are allowed exactly on
// the replica set, writes exactly on the owner, refusals carry the owner
// hint, and the replica-apply endpoint feeds the replication metrics.
func TestClusterModeGate(t *testing.T) {
	base, ring := clusterModeServer(t)

	// External registration must go through the gateway.
	resp, body := postJSON(t, base+"/v1/graphs", map[string]any{
		"name": "x", "n": 4, "edges": [][2]int{{0, 1}}})
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("unmarked register: status %d body %s", resp.StatusCode, body)
	}

	// Forwarded registration with an explicit ID owned by this node.
	owned := idHostedBy(t, ring, func(owner string, _ []cluster.Member) bool { return owner == "n1" })
	reg := map[string]any{
		"id": owned, "name": "owned", "n": 5,
		"edges": [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}}}
	if resp, body := forward(t, http.MethodPost, base+"/v1/graphs", reg); resp.StatusCode != http.StatusCreated {
		t.Fatalf("forwarded register: status %d body %s", resp.StatusCode, body)
	}
	// Same ID again: duplicate, 409.
	if resp, _ := forward(t, http.MethodPost, base+"/v1/graphs", reg); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate explicit ID: status %d, want 409", resp.StatusCode)
	}
	// The auto namespace is reserved for node-local IDs.
	auto := map[string]any{"id": "g7", "name": "squat", "n": 3, "edges": [][2]int{{0, 1}}}
	if resp, _ := forward(t, http.MethodPost, base+"/v1/graphs", auto); resp.StatusCode != http.StatusConflict {
		t.Fatalf("auto-namespace explicit ID: status %d, want 409", resp.StatusCode)
	}

	// Reads on a replica-set member pass without the forward mark.
	if resp, body := get(t, base+"/v1/graphs/"+owned); resp.StatusCode != http.StatusOK {
		t.Fatalf("read of hosted graph: status %d body %s", resp.StatusCode, body)
	}
	// The graph list is ungated (the gateway merges per-node lists).
	if resp, _ := get(t, base+"/v1/graphs"); resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}

	// Unmarked writes are refused even on the owner's own graph… no:
	// writes are gated on ownership, and n1 owns this graph, so the PATCH
	// passes; a graph n1 merely replicates must refuse the write.
	patch := map[string]any{"mutations": []map[string]any{{"op": "add", "u": 0, "v": 3}}}
	buf, _ := json.Marshal(patch)
	resp2, err := http.DefaultClient.Do(mustReq(t, http.MethodPatch, base+"/v1/graphs/"+owned+"/edges", buf))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("owner-side write: status %d", resp2.StatusCode)
	}

	// A graph hosted here only as a replica: reads pass, writes bounce
	// with the owner hint.
	replicated := idHostedBy(t, ring, func(owner string, set []cluster.Member) bool {
		if owner == "n1" {
			return false
		}
		for _, m := range set {
			if m.Name == "n1" {
				return true
			}
		}
		return false
	})
	regR := map[string]any{"id": replicated, "name": "replica", "n": 3, "edges": [][2]int{{0, 1}, {1, 2}}}
	if resp, body := forward(t, http.MethodPost, base+"/v1/graphs", regR); resp.StatusCode != http.StatusCreated {
		t.Fatalf("replica register: status %d body %s", resp.StatusCode, body)
	}
	if resp, _ := get(t, base+"/v1/graphs/"+replicated); resp.StatusCode != http.StatusOK {
		t.Fatalf("replica read: status %d", resp.StatusCode)
	}
	resp3, err := http.DefaultClient.Do(mustReq(t, http.MethodPatch, base+"/v1/graphs/"+replicated+"/edges", buf))
	if err != nil {
		t.Fatal(err)
	}
	var hint struct {
		Owner     string `json:"owner"`
		OwnerAddr string `json:"ownerAddr"`
	}
	json.NewDecoder(resp3.Body).Decode(&hint)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("replica-side write: status %d, want 421", resp3.StatusCode)
	}
	if hint.Owner == "" || hint.Owner == "n1" || hint.OwnerAddr == "" {
		t.Fatalf("misdirect hint should name the real owner, got %+v", hint)
	}

	// And a graph not hosted here at all refuses reads too.
	foreign := idHostedBy(t, ring, func(_ string, set []cluster.Member) bool {
		for _, m := range set {
			if m.Name == "n1" {
				return false
			}
		}
		return true
	})
	if resp, _ := get(t, base+"/v1/graphs/"+foreign); resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("foreign read: status %d, want 421", resp.StatusCode)
	}

	// Replica apply: the fan-out endpoint mutates without re-gating on
	// ownership and counts into the replication metrics.
	patchR := map[string]any{"mutations": []map[string]any{{"op": "add", "u": 0, "v": 2}}}
	if resp, body := forward(t, http.MethodPatch, base+"/v1/graphs/"+replicated+"/replica", patchR); resp.StatusCode != http.StatusOK {
		t.Fatalf("replica apply: status %d body %s", resp.StatusCode, body)
	}
	resp4, metrics := get(t, base+"/metrics")
	if resp4.StatusCode != http.StatusOK {
		t.Fatal("metrics unavailable")
	}
	for _, want := range []string{"kplistd_replica_applies_total 1", "kplistd_misdirected_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func mustReq(t *testing.T, method, url string, body []byte) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	return req
}

// TestTruthStreamLexOrder pins the order=lex contract the scatter–gather
// merge depends on: the memoized lexicographic truth stream must hold the
// same clique set as the visit-order stream, sorted lexicographically —
// and must equal the engine stream, which is lexicographic by
// construction.
func TestTruthStreamLexOrder(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := postJSON(t, ts.URL+"/v1/graphs", map[string]any{
		"name": "lex", "workload": map[string]any{"family": "stochastic-block", "n": 60, "seed": int64(5)}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d body %s", resp.StatusCode, body)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	fetch := func(query string) string {
		resp, body := get(t, ts.URL+"/v1/graphs/"+info.ID+"/cliques?p=3&stream=1"+query)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cliques %s: status %d body %s", query, resp.StatusCode, body)
		}
		return string(body)
	}
	visit := fetch("&algo=truth")
	lex := fetch("&algo=truth&order=lex")
	engine := fetch("")
	if lex != engine {
		t.Fatal("order=lex truth stream differs from the engine stream")
	}
	sortLines := func(s string) string {
		lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
		// Lexicographic on the parsed vertex tuples, not the raw text.
		parse := func(l string) []int {
			var vs []int
			json.Unmarshal([]byte(l), &vs)
			return vs
		}
		for i := 1; i < len(lines); i++ {
			for j := i; j > 0; j-- {
				a, b := parse(lines[j-1]), parse(lines[j])
				gt := false
				for k := 0; k < len(a) && k < len(b); k++ {
					if a[k] != b[k] {
						gt = a[k] > b[k]
						break
					}
				}
				if !gt {
					break
				}
				lines[j-1], lines[j] = lines[j], lines[j-1]
			}
		}
		return strings.Join(lines, "\n") + "\n"
	}
	if sortLines(visit) != lex {
		t.Fatal("visit-order truth stream does not hold the same cliques as order=lex")
	}
	if visit == "" || lex == "" {
		t.Fatal("empty streams — the comparison is vacuous")
	}
}
