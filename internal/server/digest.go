package server

// The self-healing replication surface (DESIGN.md §13): every graph
// carries an applied-mutation sequence number, /digest fingerprints the
// exact served state cheaply, and /export hands the whole graph plus its
// sequence position to the anti-entropy repairer in one document. The
// sequence counter advances once per *effective* mutation batch — the
// same discipline as the WAL, so on a durable node the counter and
// GraphStore.LastSeq agree and boot recovery restores it from the log.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync/atomic"

	"kplist"
)

// SeqHeader carries batch sequence numbers on the cluster replication
// path: the gateway tags each replica apply with the owner-assigned
// number on the request, and every mutation response reports the graph's
// applied sequence number back.
const SeqHeader = "X-Kplist-Seq"

// appliedSeq returns id's applied-batch counter, creating it at zero on
// first touch. Writes happen only under the graph's mutation lock; reads
// (digest, export) may race a batch and see the pre-batch value, which
// the anti-entropy protocol tolerates by re-checking on the next sweep.
func (s *Server) appliedSeq(id string) *atomic.Uint64 {
	if v, ok := s.seqs.Load(id); ok {
		return v.(*atomic.Uint64)
	}
	v, _ := s.seqs.LoadOrStore(id, new(atomic.Uint64))
	return v.(*atomic.Uint64)
}

// edgeSetHash fingerprints g's exact state: FNV-1a 64 over the vertex
// count and every edge (u,v) with u<v in ascending order. Adjacency rows
// are sorted and deduplicated by construction, so two graphs hash equal
// iff they have the same vertex count and edge set — regardless of the
// mutation history that produced them.
func edgeSetHash(g *kplist.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.N()))
	_, _ = h.Write(buf[:])
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(kplist.V(u)) {
			if int(v) <= u {
				continue
			}
			binary.LittleEndian.PutUint32(buf[:4], uint32(u))
			binary.LittleEndian.PutUint32(buf[4:], uint32(v))
			_, _ = h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// digestResponse is GET /v1/graphs/{id}/digest: the applied-batch
// sequence number plus the content hash of the edge set. Two nodes whose
// digests match serve byte-identical listings for the graph.
type digestResponse struct {
	Graph string `json:"graph"`
	Seq   uint64 `json:"seq"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	Hash  string `json:"hash"`
}

// handleDigest answers with the graph's version digest. It takes the
// mutation lock so the (seq, hash) pair is a consistent cut — a digest
// torn across a concurrent batch would read as divergence and trigger a
// repair that wasn't needed.
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	unlock := s.lockMutations(id)
	defer unlock()
	rg, err := s.reg.Get(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, digestResponse{
		Graph: id,
		Seq:   s.appliedSeq(id).Load(),
		N:     rg.G.N(),
		M:     rg.G.M(),
		Hash:  fmt.Sprintf("%016x", edgeSetHash(rg.G)),
	})
}

// exportResponse is GET /v1/graphs/{id}/export: the full-state transfer
// document. Its shape is a registerRequest (explicit ID, edge list) plus
// the applied sequence number, so the anti-entropy repairer can POST it
// verbatim to a replica and the replica adopts both the state and the
// owner's position in the batch stream.
type exportResponse struct {
	ID     string     `json:"id"`
	Name   string     `json:"name,omitempty"`
	Family string     `json:"family,omitempty"`
	N      int        `json:"n"`
	Seq    uint64     `json:"seq,omitempty"`
	Edges  [][2]int32 `json:"edges"`
}

// handleExport serializes the graph under its mutation lock, so the
// exported edge set and sequence number are the same consistent cut — no
// batch can land between them.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	unlock := s.lockMutations(id)
	defer unlock()
	rg, err := s.reg.Get(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	g := rg.G
	edges := make([][2]int32, 0, g.M())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(kplist.V(u)) {
			if int(v) > u {
				edges = append(edges, [2]int32{int32(u), int32(v)})
			}
		}
	}
	writeJSON(w, http.StatusOK, exportResponse{
		ID:     id,
		Name:   rg.Info.Name,
		Family: rg.Info.Family,
		N:      g.N(),
		Seq:    s.appliedSeq(id).Load(),
		Edges:  edges,
	})
}
