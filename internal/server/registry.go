// Package server is the kplistd serving layer: a multi-tenant graph
// registry (upload edge lists or generate from workload specs), an LRU
// pool of open kplist.Sessions with capacity-bounded eviction, HTTP JSON
// handlers with NDJSON clique streaming, and admission control (bounded
// accept queue, per-request deadlines, load-shedding 429s) with
// Prometheus-style observability. See DESIGN.md §7.
package server

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"

	"kplist"
)

// Registry errors; handlers map them to 404/409 responses.
var (
	// ErrGraphNotFound reports a lookup of an unregistered (or removed)
	// graph ID.
	ErrGraphNotFound = errors.New("server: graph not found")
	// ErrRegistryFull reports a Register against a registry at MaxGraphs.
	ErrRegistryFull = errors.New("server: graph registry full")
	// ErrDuplicateGraphID reports a RegisterWithID under an ID that is
	// already registered (or squats on the auto "g<n>" namespace).
	ErrDuplicateGraphID = errors.New("server: graph ID unavailable")
)

// GraphInfo is the wire-visible description of a registered graph.
type GraphInfo struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	Family string `json:"family,omitempty"`
	// Planted is the number of structurally guaranteed cliques the
	// generating workload spec planted (0 for uploads).
	Planted int `json:"planted,omitempty"`
}

// RegisteredGraph is one tenant graph: immutable once registered, so
// handlers may hold it without locks.
type RegisteredGraph struct {
	Info    GraphInfo
	G       *kplist.Graph
	Planted []kplist.Clique
}

// Registry is the multi-tenant graph store. It owns only the immutable
// graphs; open sessions live in the SessionPool, keyed by graph ID, so
// removing a graph invalidates its pooled session but never an in-flight
// query (the pool refcounts).
type Registry struct {
	mu     sync.Mutex
	max    int
	nextID int
	graphs map[string]*RegisteredGraph
}

// NewRegistry returns a registry admitting at most maxGraphs graphs
// (≤ 0 means 64).
func NewRegistry(maxGraphs int) *Registry {
	if maxGraphs <= 0 {
		maxGraphs = 64
	}
	return &Registry{max: maxGraphs, graphs: make(map[string]*RegisteredGraph)}
}

// Register stores g under a fresh deterministic ID ("g1", "g2", …) and
// returns its info. It fails with ErrRegistryFull at capacity — the
// registry never silently evicts: graphs are tenant state, so freeing
// space is an explicit Remove.
func (r *Registry) Register(name, family string, g *kplist.Graph, planted []kplist.Clique) (GraphInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.graphs) >= r.max {
		return GraphInfo{}, fmt.Errorf("%w (%d graphs; remove one first)", ErrRegistryFull, r.max)
	}
	r.nextID++
	info := GraphInfo{
		ID:      fmt.Sprintf("g%d", r.nextID),
		Name:    name,
		N:       g.N(),
		M:       g.M(),
		Family:  family,
		Planted: len(planted),
	}
	r.graphs[info.ID] = &RegisteredGraph{Info: info, G: g, Planted: planted}
	return info, nil
}

// autoID matches the registry's own "g<n>" namespace; explicit IDs may
// not squat on it, so auto-assignment never collides with RegisterWithID.
var autoID = regexp.MustCompile(`^g[0-9]+$`)

// RegisterWithID stores g under a caller-chosen ID — the cluster path,
// where the gateway mints one ID and every replica registers the same
// graph under it. It fails on a duplicate ID, an ID inside the auto
// namespace ("g<n>"), or at capacity.
func (r *Registry) RegisterWithID(id, name, family string, g *kplist.Graph, planted []kplist.Clique) (GraphInfo, error) {
	if id == "" || autoID.MatchString(id) {
		return GraphInfo{}, fmt.Errorf("%w: %q is empty or inside the reserved g<n> namespace", ErrDuplicateGraphID, id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.graphs) >= r.max {
		return GraphInfo{}, fmt.Errorf("%w (%d graphs; remove one first)", ErrRegistryFull, r.max)
	}
	if _, dup := r.graphs[id]; dup {
		return GraphInfo{}, fmt.Errorf("%w: %q already registered", ErrDuplicateGraphID, id)
	}
	info := GraphInfo{
		ID:      id,
		Name:    name,
		N:       g.N(),
		M:       g.M(),
		Family:  family,
		Planted: len(planted),
	}
	r.graphs[id] = &RegisteredGraph{Info: info, G: g, Planted: planted}
	return info, nil
}

// Get returns the registered graph for id.
func (r *Registry) Get(id string) (*RegisteredGraph, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrGraphNotFound, id)
	}
	return rg, nil
}

// UpdateGraph swaps id's graph for a mutated successor, refreshing the
// wire-visible edge count. The planted-clique annotation is dropped — a
// mutation may destroy the structural guarantee the generator made.
// Future session opens (after pool eviction) see the successor, so
// mutations survive the session working set.
func (r *Registry) UpdateGraph(id string, g *kplist.Graph) (GraphInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	if !ok {
		return GraphInfo{}, fmt.Errorf("%w: %q", ErrGraphNotFound, id)
	}
	info := rg.Info
	info.N = g.N()
	info.M = g.M()
	info.Planted = 0
	r.graphs[id] = &RegisteredGraph{Info: info, G: g}
	return info, nil
}

// Restore reinserts a recovered graph under its original ID — the boot
// recovery path. Unlike Register it never allocates an ID; it fails on a
// duplicate ID or at capacity.
func (r *Registry) Restore(info GraphInfo, g *kplist.Graph) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.graphs) >= r.max {
		return fmt.Errorf("%w (%d graphs)", ErrRegistryFull, r.max)
	}
	if _, dup := r.graphs[info.ID]; dup {
		return fmt.Errorf("server: duplicate graph ID %q in recovery", info.ID)
	}
	info.N = g.N()
	info.M = g.M()
	r.graphs[info.ID] = &RegisteredGraph{Info: info, G: g}
	return nil
}

// NextID returns the ID counter (persisted in the manifest so recovered
// registries never recycle IDs).
func (r *Registry) NextID() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextID
}

// SetNextID raises the ID counter to at least n — recovery restores the
// persisted counter through this, so IDs stay unique across restarts.
func (r *Registry) SetNextID(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.nextID {
		r.nextID = n
	}
}

// Remove unregisters id. The caller is responsible for invalidating any
// pooled session for it.
func (r *Registry) Remove(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[id]; !ok {
		return fmt.Errorf("%w: %q", ErrGraphNotFound, id)
	}
	delete(r.graphs, id)
	return nil
}

// List returns every registered graph's info, sorted by ID.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, len(r.graphs))
	for _, rg := range r.graphs {
		out = append(out, rg.Info)
	}
	sort.Slice(out, func(i, j int) bool {
		// IDs are "g<counter>": compare numerically via length-then-lex.
		if len(out[i].ID) != len(out[j].ID) {
			return len(out[i].ID) < len(out[j].ID)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.graphs)
}
