package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"kplist"
	"kplist/internal/sketch"
)

// The approximate query tier's HTTP surface (DESIGN.md §14):
// POST /v1/graphs/{id}/query?mode=estimate answers a clique-count query
// with a point estimate plus confidence interval instead of an exact
// enumeration, and GET /v1/graphs/{id}/sketch serves the maintained
// CliqueHLL in its binary codec — the primitive the cluster gateway
// scatters over shards and merges register-wise.

// estimateResponse is the ?mode=estimate answer. Exact is false on every
// estimator path so a caller can never mistake an estimate for truth; the
// interval [ci_lo, ci_hi] holds at the echoed confidence level.
type estimateResponse struct {
	Graph        string  `json:"graph"`
	P            int     `json:"p"`
	Estimate     float64 `json:"estimate"`
	CILo         float64 `json:"ci_lo"`
	CIHi         float64 `json:"ci_hi"`
	Method       string  `json:"method"`
	Exact        bool    `json:"exact"`
	Eps          float64 `json:"eps"`
	Conf         float64 `json:"conf"`
	Samples      int     `json:"samples,omitempty"`
	Precision    int     `json:"precision,omitempty"`
	StaleRebuilt bool    `json:"staleRebuilt,omitempty"`
}

// queryFloat parses an optional float query parameter; absent means 0.
func queryFloat(q url.Values, name string) (float64, error) {
	s := q.Get(name)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %q", name, s)
	}
	return v, nil
}

// queryInt parses an optional integer query parameter; absent means 0.
func queryInt(q url.Values, name string) (int64, error) {
	s := q.Get(name)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %q", name, s)
	}
	return v, nil
}

// estimateParams assembles the EstimateRequest from the URL parameters
// (eps, conf, budget_ms, method, samples, precision) and the decoded
// query body (p, seed).
func estimateParams(q url.Values, body apiQuery) (kplist.EstimateRequest, error) {
	req := kplist.EstimateRequest{P: body.P, Seed: body.Seed, Method: q.Get("method")}
	var err error
	if req.Eps, err = queryFloat(q, "eps"); err != nil {
		return req, err
	}
	if req.Eps < 0 {
		return req, fmt.Errorf("bad eps: %g is negative", req.Eps)
	}
	if req.Conf, err = queryFloat(q, "conf"); err != nil {
		return req, err
	}
	if req.Conf < 0 || req.Conf >= 1 {
		return req, fmt.Errorf("bad conf: %g outside (0, 1)", req.Conf)
	}
	budgetMS, err := queryInt(q, "budget_ms")
	if err != nil {
		return req, err
	}
	if budgetMS < 0 {
		return req, fmt.Errorf("bad budget_ms: %d is negative", budgetMS)
	}
	req.Budget = time.Duration(budgetMS) * time.Millisecond
	samples, err := queryInt(q, "samples")
	if err != nil {
		return req, err
	}
	precision, err := queryInt(q, "precision")
	if err != nil {
		return req, err
	}
	if sv := q.Get("seed"); sv != "" {
		// A URL seed overrides the body's: the gateway propagates sketch
		// parameters through the URL alone.
		if req.Seed, err = queryInt(q, "seed"); err != nil {
			return req, err
		}
	}
	req.Samples, req.Precision = int(samples), int(precision)
	return req, nil
}

// handleEstimate is the ?mode=estimate branch of POST /query: one inline
// query answered by the Session's planner (exact kernel priced against
// budget_ms, else the maintained sketch, else edge sampling).
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request, id string, rg *RegisteredGraph) {
	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad query body: %w", err))
		return
	}
	if len(req.Queries) > 0 {
		writeError(w, http.StatusBadRequest,
			errors.New("mode=estimate answers a single inline query, not a batch"))
		return
	}
	est, err := estimateParams(r.URL.Query(), req.apiQuery)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, release, err := s.acquireChecked(r.Context(), id, rg.G)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	defer release()
	res, err := sess.Estimate(r.Context(), est)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	s.met.recordEstimate(res.Method)
	writeJSON(w, http.StatusOK, estimateResponse{
		Graph:        id,
		P:            res.P,
		Estimate:     res.Estimate,
		CILo:         res.CILo,
		CIHi:         res.CIHi,
		Method:       res.Method,
		Exact:        res.Exact,
		Eps:          res.Eps,
		Conf:         res.Conf,
		Samples:      res.Samples,
		Precision:    res.Precision,
		StaleRebuilt: res.StaleRebuilt,
	})
}

// Sketch response headers: the decoded parameters ride alongside the
// binary body so a caller (or the gateway) can sanity-check compatibility
// without parsing the frame.
const (
	sketchHeaderP            = "X-Kplist-Sketch-P"
	sketchHeaderPrecision    = "X-Kplist-Sketch-Precision"
	sketchHeaderSeed         = "X-Kplist-Sketch-Seed"
	sketchHeaderStaleRebuilt = "X-Kplist-Sketch-Stale-Rebuilt"
)

// handleSketch serves GET /v1/graphs/{id}/sketch: the maintained
// CliqueHLL for (p, precision, seed) in its binary codec. precision=0
// resolves from eps/conf exactly as the estimate path does, so a default
// sketch fetch and a default mode=estimate ride the same maintained
// sketch. The encoding carries no counters, so two nodes holding the same
// distinct-clique set answer byte-identically — the invariant the
// gateway's register-wise shard merge is pinned against.
func (s *Server) handleSketch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rg, err := s.reg.Get(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	q := r.URL.Query()
	p, err := strconv.Atoi(q.Get("p"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad or missing p: %q", q.Get("p")))
		return
	}
	seed, err := queryInt(q, "seed")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	precision, err := queryInt(q, "precision")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if precision == 0 {
		eps, err := queryFloat(q, "eps")
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		conf, err := queryFloat(q, "conf")
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		precision = int64(sketch.PrecisionForEps(eps, conf))
	}
	sess, release, err := s.acquireChecked(r.Context(), id, rg.G)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	defer release()
	h, staleRebuilt, err := sess.Sketch(r.Context(), p, int(precision), seed)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	data, err := h.MarshalBinary()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(sketchHeaderP, strconv.Itoa(p))
	w.Header().Set(sketchHeaderPrecision, strconv.Itoa(h.Precision()))
	w.Header().Set(sketchHeaderSeed, strconv.FormatInt(h.Seed(), 10))
	if staleRebuilt {
		w.Header().Set(sketchHeaderStaleRebuilt, "true")
	}
	_, _ = w.Write(data)
}
