package server_test

// Node-side self-healing surface (DESIGN.md §13): the applied-batch
// sequence counter, the /digest and /export endpoints, and the replica
// apply seq discipline (idempotent duplicates, refused gaps) the
// gateway's hinted handoff and anti-entropy sweeper build on.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"kplist/internal/cluster"
	"kplist/internal/server"
)

type digestDoc struct {
	Graph string `json:"graph"`
	Seq   uint64 `json:"seq"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	Hash  string `json:"hash"`
}

func getDigest(t *testing.T, base, id string) (digestDoc, int) {
	t.Helper()
	resp, body := get(t, base+"/v1/graphs/"+id+"/digest")
	var d digestDoc
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &d); err != nil {
			t.Fatalf("bad digest body %s: %v", body, err)
		}
	}
	return d, resp.StatusCode
}

func patchBody(ops ...[3]any) map[string]any {
	muts := make([]map[string]any, len(ops))
	for i, op := range ops {
		muts[i] = map[string]any{"op": op[0], "u": op[1], "v": op[2]}
	}
	return map[string]any{"mutations": muts}
}

func TestDigestSeqAdvancesPerEffectiveBatch(t *testing.T) {
	_, ts := newTestServer(t, nil)
	reg := map[string]any{"id": "cdig01", "n": 4, "edges": [][2]int{{0, 1}, {1, 2}}}
	if resp, body := postJSON(t, ts.URL+"/v1/graphs", reg); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}

	d0, st := getDigest(t, ts.URL, "cdig01")
	if st != http.StatusOK || d0.Seq != 0 || d0.N != 4 || d0.M != 2 || len(d0.Hash) != 16 {
		t.Fatalf("fresh digest %+v (status %d)", d0, st)
	}

	// An effective batch advances the counter and changes the hash.
	resp, body := patchJSON(t, ts.URL+"/v1/graphs/cdig01/edges",
		patchBody([3]any{"add", 2, 3}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(server.SeqHeader); got != "1" {
		t.Fatalf("patch response %s = %q, want 1", server.SeqHeader, got)
	}
	var pr struct {
		Seq uint64 `json:"seq"`
	}
	json.Unmarshal(body, &pr)
	if pr.Seq != 1 {
		t.Fatalf("patch body seq = %d, want 1", pr.Seq)
	}
	d1, _ := getDigest(t, ts.URL, "cdig01")
	if d1.Seq != 1 || d1.Hash == d0.Hash {
		t.Fatalf("post-batch digest %+v should advance seq and change hash (was %+v)", d1, d0)
	}

	// A no-op batch (re-adding an existing edge) leaves both untouched —
	// the same discipline as the WAL, which never logs no-op batches.
	resp, _ = patchJSON(t, ts.URL+"/v1/graphs/cdig01/edges",
		patchBody([3]any{"add", 0, 1}))
	if got := resp.Header.Get(server.SeqHeader); got != "1" {
		t.Fatalf("no-op batch moved the seq header to %q", got)
	}
	d2, _ := getDigest(t, ts.URL, "cdig01")
	if d2.Seq != 1 || d2.Hash != d1.Hash {
		t.Fatalf("no-op batch changed the digest: %+v -> %+v", d1, d2)
	}

	if _, st := getDigest(t, ts.URL, "nope"); st != http.StatusNotFound {
		t.Fatalf("digest of a missing graph: %d, want 404", st)
	}
}

// replicaApply sends a sequence-tagged replica apply.
func replicaApply(t *testing.T, base, id string, seq uint64, body map[string]any) (*http.Response, []byte) {
	t.Helper()
	buf, _ := json.Marshal(body)
	req, err := http.NewRequest(http.MethodPatch, base+"/v1/graphs/"+id+"/replica", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardHeader, "1")
	req.Header.Set(server.SeqHeader, strconv.FormatUint(seq, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func TestReplicaApplySeqDiscipline(t *testing.T) {
	_, ts := newTestServer(t, nil)
	reg := map[string]any{"id": "crep01", "n": 4, "edges": [][2]int{{0, 1}}}
	if resp, _ := postJSON(t, ts.URL+"/v1/graphs", reg); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}

	// In-order apply adopts the owner's number.
	resp, body := replicaApply(t, ts.URL, "crep01", 1, patchBody([3]any{"add", 1, 2}))
	if resp.StatusCode != http.StatusOK || resp.Header.Get(server.SeqHeader) != "1" {
		t.Fatalf("seq-1 apply: %d %s (hdr %q)", resp.StatusCode, body, resp.Header.Get(server.SeqHeader))
	}
	d1, _ := getDigest(t, ts.URL, "crep01")

	// Replaying the same batch (hinted-handoff replay, fan-out retry) is
	// acknowledged without re-applying.
	resp, body = replicaApply(t, ts.URL, "crep01", 1, patchBody([3]any{"add", 1, 2}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate apply: %d %s", resp.StatusCode, body)
	}
	var dup struct {
		Duplicate bool   `json:"duplicate"`
		Seq       uint64 `json:"seq"`
	}
	json.Unmarshal(body, &dup)
	if !dup.Duplicate || dup.Seq != 1 {
		t.Fatalf("duplicate apply body %s: want duplicate=true seq=1", body)
	}
	if d, _ := getDigest(t, ts.URL, "crep01"); d.Hash != d1.Hash || d.Seq != 1 {
		t.Fatalf("duplicate apply mutated state: %+v -> %+v", d1, d)
	}

	// A gap is refused: applying it would bury the missed batches.
	resp, body = replicaApply(t, ts.URL, "crep01", 3, patchBody([3]any{"add", 2, 3}))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("gapped apply: %d %s, want 409", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "seq gap") {
		t.Fatalf("gap refusal body %s should name the gap", body)
	}

	// The next in-order batch still lands.
	if resp, _ := replicaApply(t, ts.URL, "crep01", 2, patchBody([3]any{"add", 2, 3})); resp.StatusCode != http.StatusOK {
		t.Fatalf("seq-2 apply after refused gap: %d", resp.StatusCode)
	}

	// Both outcomes are counted on /metrics.
	_, mb := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"kplistd_replica_duplicates_total 1",
		"kplistd_replica_seq_gaps_total 1",
	} {
		if !strings.Contains(string(mb), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

func TestExportInstallRoundtrip(t *testing.T) {
	_, src := newTestServer(t, nil)
	_, dst := newTestServer(t, nil)

	reg := map[string]any{"id": "cexp01", "name": "exported", "n": 5, "edges": [][2]int{{0, 1}, {1, 2}}}
	if resp, _ := postJSON(t, src.URL+"/v1/graphs", reg); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	for _, ops := range [][3]any{{"add", 2, 3}, {"add", 3, 4}} {
		if resp, _ := patchJSON(t, src.URL+"/v1/graphs/cexp01/edges", patchBody(ops)); resp.StatusCode != http.StatusOK {
			t.Fatalf("patch: %d", resp.StatusCode)
		}
	}
	srcDigest, _ := getDigest(t, src.URL, "cexp01")
	if srcDigest.Seq != 2 {
		t.Fatalf("source seq = %d, want 2", srcDigest.Seq)
	}

	// Export is a register document plus the sequence position.
	resp, body := get(t, src.URL+"/v1/graphs/cexp01/export")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: %d %s", resp.StatusCode, body)
	}
	var doc map[string]any
	json.Unmarshal(body, &doc)
	if doc["id"] != "cexp01" || doc["seq"].(float64) != 2 || doc["name"] != "exported" {
		t.Fatalf("export doc %s", body)
	}

	// Installing it verbatim on another node reproduces state AND seq.
	ir, err := http.Post(dst.URL+"/v1/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	ir.Body.Close()
	if ir.StatusCode != http.StatusCreated {
		t.Fatalf("install: %d", ir.StatusCode)
	}
	if got := ir.Header.Get(server.SeqHeader); got != "2" {
		t.Fatalf("install response %s = %q, want 2", server.SeqHeader, got)
	}
	dstDigest, _ := getDigest(t, dst.URL, "cexp01")
	if dstDigest.Seq != srcDigest.Seq || dstDigest.Hash != srcDigest.Hash {
		t.Fatalf("installed digest %+v != source %+v", dstDigest, srcDigest)
	}

	// The installed replica resumes the batch stream where the owner was:
	// the next in-order seq applies, the one after it gaps.
	if resp, _ := replicaApply(t, dst.URL, "cexp01", 3, patchBody([3]any{"add", 0, 2})); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-install seq-3 apply: %d", resp.StatusCode)
	}
	if resp, _ := replicaApply(t, dst.URL, "cexp01", 5, patchBody([3]any{"add", 0, 3})); resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-install gapped apply: %d, want 409", resp.StatusCode)
	}

	// Workload registrations ignore a smuggled seq — generated graphs
	// start their history at zero.
	wl := map[string]any{"id": "cexp02", "seq": 9,
		"workload": map[string]any{"family": "grid", "n": 16, "seed": 1}}
	if resp, _ := postJSON(t, dst.URL+"/v1/graphs", wl); resp.StatusCode != http.StatusCreated {
		t.Fatalf("workload register: %d", resp.StatusCode)
	}
	if d, _ := getDigest(t, dst.URL, "cexp02"); d.Seq != 0 {
		t.Fatalf("workload graph adopted seq %d, want 0", d.Seq)
	}
}
