package server

// The persistence layer behind -data-dir: each registered graph owns a
// kplist.GraphStore (snapshot + WAL) under <dataDir>/graphs/<id>/, and a
// manifest at <dataDir>/manifest.json records the registry's identity
// state (ID counter, names, families) that the graph files themselves do
// not carry. Boot recovery reads the manifest, recovers every listed
// store, restores the registry, and sweeps orphaned graph directories —
// the debris of a crash between store creation and the manifest write.
//
// Ordering: graph files are created before the manifest lists them and
// removed after the manifest forgets them, so the manifest only ever
// points at directories that exist. Capacity is rejected before any file
// is created, so ErrRegistryFull never leaves debris. One mutex
// serializes every create/remove end to end — the manifest is rewritten
// whole on each change, so interleaved writers could corrupt it or
// last-rename-wins could drop the other call's acknowledged graph (whose
// directory the next boot would then sweep as an orphan). The manifest
// is derived from this layer's own record of which stores exist, not
// from the registry, which may already list a graph whose store creation
// is still queued behind the lock.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"kplist"
)

const manifestName = "manifest.json"

// manifest is the JSON document at <dataDir>/manifest.json.
type manifest struct {
	NextID int             `json:"nextId"`
	Graphs []manifestGraph `json:"graphs"`
}

// manifestGraph is the registry state one graph needs beyond its store:
// N and M are re-derived from the recovered graph. Planted is only the
// count — the clique lists themselves are generator provenance, not
// serving state, and are not persisted.
type manifestGraph struct {
	ID      string `json:"id"`
	Name    string `json:"name,omitempty"`
	Family  string `json:"family,omitempty"`
	Planted int    `json:"planted,omitempty"`
}

// RecoveryReport summarizes one boot recovery, for the startup log line,
// /healthz and the recovery gauges.
type RecoveryReport struct {
	Graphs             int           `json:"graphs"`
	WALRecordsReplayed int64         `json:"walRecordsReplayed"`
	WALTruncations     int           `json:"walTruncations"`
	OrphansSwept       int           `json:"orphansSwept"`
	Elapsed            time.Duration `json:"-"`
	ElapsedSeconds     float64       `json:"elapsedSeconds"`
}

// persistence owns the data directory: the per-graph stores and the
// manifest. The stores themselves are driven under the server's
// per-graph mutation locks; mu guards the maps and serializes the
// create/remove critical sections (store lookups on the mutation path
// briefly share it — a PATCH may wait out another graph's registration).
type persistence struct {
	dir string
	cfg kplist.StoreConfig

	mu     sync.Mutex
	stores map[string]*kplist.GraphStore
	// infos is what the manifest lists: exactly the graphs whose store
	// files exist on disk.
	infos map[string]manifestGraph
}

func (p *persistence) graphDir(id string) string {
	return filepath.Join(p.dir, "graphs", id)
}

// openPersistence recovers (or initializes) the data directory into reg
// and returns the persistence handle plus what recovery did.
func openPersistence(dir string, cfg kplist.StoreConfig, reg *Registry) (*persistence, RecoveryReport, error) {
	start := time.Now()
	p := &persistence{
		dir:    dir,
		cfg:    cfg,
		stores: make(map[string]*kplist.GraphStore),
		infos:  make(map[string]manifestGraph),
	}
	var rep RecoveryReport
	if err := os.MkdirAll(filepath.Join(dir, "graphs"), 0o755); err != nil {
		return nil, rep, err
	}
	man, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, rep, err
	}
	reg.SetNextID(man.NextID)
	for _, mg := range man.Graphs {
		st, g, stats, err := kplist.OpenGraphStore(p.graphDir(mg.ID), cfg)
		if err != nil {
			p.closeAll()
			return nil, rep, fmt.Errorf("server: recovering graph %s: %w", mg.ID, err)
		}
		info := GraphInfo{ID: mg.ID, Name: mg.Name, Family: mg.Family, Planted: mg.Planted}
		if err := reg.Restore(info, g); err != nil {
			st.Close()
			p.closeAll()
			return nil, rep, err
		}
		p.stores[mg.ID] = st
		p.infos[mg.ID] = mg
		rep.Graphs++
		rep.WALRecordsReplayed += stats.WALRecords
		if stats.WALTorn || stats.WALCorrupt {
			rep.WALTruncations++
		}
	}
	// Sweep directories the manifest does not list: a crash between store
	// creation and the manifest write, or between manifest removal and
	// directory removal.
	entries, err := os.ReadDir(filepath.Join(dir, "graphs"))
	if err != nil {
		p.closeAll()
		return nil, rep, err
	}
	for _, ent := range entries {
		if _, listed := p.infos[ent.Name()]; !listed {
			if err := os.RemoveAll(filepath.Join(dir, "graphs", ent.Name())); err != nil {
				p.closeAll()
				return nil, rep, err
			}
			rep.OrphansSwept++
		}
	}
	rep.Elapsed = time.Since(start)
	rep.ElapsedSeconds = rep.Elapsed.Seconds()
	return p, rep, nil
}

func readManifest(path string) (manifest, error) {
	var man manifest
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return man, nil // fresh data dir
	}
	if err != nil {
		return man, err
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return man, fmt.Errorf("server: corrupt manifest %s: %w", path, err)
	}
	return man, nil
}

// writeManifestLocked writes p.infos as the manifest, atomically (unique
// temp file + fsync + rename). Callers hold p.mu, so manifest states
// land on disk in the same order the maps changed.
func (p *persistence) writeManifestLocked(nextID int) error {
	man := manifest{NextID: nextID}
	for _, mg := range p.infos {
		man.Graphs = append(man.Graphs, mg)
	}
	sort.Slice(man.Graphs, func(i, j int) bool {
		// IDs are "g<counter>": compare numerically via length-then-lex.
		if len(man.Graphs[i].ID) != len(man.Graphs[j].ID) {
			return len(man.Graphs[i].ID) < len(man.Graphs[j].ID)
		}
		return man.Graphs[i].ID < man.Graphs[j].ID
	})
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(p.dir, manifestName+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, filepath.Join(p.dir, manifestName)); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// store returns id's open store (nil when the graph predates -data-dir
// or persistence is off for it).
func (p *persistence) store(id string) *kplist.GraphStore {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stores[id]
}

// walSeqs snapshots every open store's WAL sequence number — boot
// recovery restores each graph's applied-batch counter from it.
func (p *persistence) walSeqs() map[string]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]uint64, len(p.stores))
	for id, st := range p.stores {
		out[id] = st.LastSeq()
	}
	return out
}

// create initializes the graph's durable store holding g and records it
// in the manifest. Called after the registry admitted the graph
// (capacity is its concern); on failure the caller rolls the
// registration back. A non-zero seq seeds the store at that sequence
// number — the replica-repair install path, where the graph arrives
// already carrying the owner's applied-batch position.
func (p *persistence) create(info GraphInfo, g *kplist.Graph, seq uint64, reg *Registry) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, err := kplist.CreateGraphStoreAt(p.graphDir(info.ID), g, seq, p.cfg)
	if err != nil {
		os.RemoveAll(p.graphDir(info.ID))
		return err
	}
	p.infos[info.ID] = manifestGraph{
		ID: info.ID, Name: info.Name, Family: info.Family, Planted: info.Planted,
	}
	if err := p.writeManifestLocked(reg.NextID()); err != nil {
		delete(p.infos, info.ID)
		st.Close()
		os.RemoveAll(p.graphDir(info.ID))
		return err
	}
	p.stores[info.ID] = st
	return nil
}

// remove closes id's store, forgets it in the manifest, then deletes its
// files — in that order, so the manifest never points at a missing
// directory and a crash mid-remove leaves only an orphan the next boot
// sweeps.
func (p *persistence) remove(id string, reg *Registry) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stores[id]
	delete(p.stores, id)
	if st != nil {
		if err := st.Close(); err != nil {
			return err
		}
	}
	if _, listed := p.infos[id]; listed {
		delete(p.infos, id)
		if err := p.writeManifestLocked(reg.NextID()); err != nil {
			return err
		}
	}
	return os.RemoveAll(p.graphDir(id))
}

// closeAll closes every open store (shutdown flush, or recovery-failure
// cleanup).
func (p *persistence) closeAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var err error
	for id, st := range p.stores {
		if cerr := st.Close(); cerr != nil && err == nil {
			err = cerr
		}
		delete(p.stores, id)
	}
	return err
}
