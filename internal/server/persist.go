package server

// The persistence layer behind -data-dir: each registered graph owns a
// kplist.GraphStore (snapshot + WAL) under <dataDir>/graphs/<id>/, and a
// manifest at <dataDir>/manifest.json records the registry's identity
// state (ID counter, names, families) that the graph files themselves do
// not carry. Boot recovery reads the manifest, recovers every listed
// store, restores the registry, and sweeps orphaned graph directories —
// the debris of a crash between store creation and the manifest write.
//
// Ordering: graph files are created before the manifest lists them and
// removed after the manifest forgets them, so the manifest only ever
// points at directories that exist. Capacity is rejected before any file
// is created, so ErrRegistryFull never leaves debris.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"kplist"
)

const manifestName = "manifest.json"

// manifest is the JSON document at <dataDir>/manifest.json.
type manifest struct {
	NextID int             `json:"nextId"`
	Graphs []manifestGraph `json:"graphs"`
}

// manifestGraph is the registry state one graph needs beyond its store:
// N and M are re-derived from the recovered graph. Planted is only the
// count — the clique lists themselves are generator provenance, not
// serving state, and are not persisted.
type manifestGraph struct {
	ID      string `json:"id"`
	Name    string `json:"name,omitempty"`
	Family  string `json:"family,omitempty"`
	Planted int    `json:"planted,omitempty"`
}

// RecoveryReport summarizes one boot recovery, for the startup log line,
// /healthz and the recovery gauges.
type RecoveryReport struct {
	Graphs             int           `json:"graphs"`
	WALRecordsReplayed int64         `json:"walRecordsReplayed"`
	WALTruncations     int           `json:"walTruncations"`
	OrphansSwept       int           `json:"orphansSwept"`
	Elapsed            time.Duration `json:"-"`
	ElapsedSeconds     float64       `json:"elapsedSeconds"`
}

// persistence owns the data directory: the per-graph stores and the
// manifest. Store lookups are lock-protected; the stores themselves are
// driven under the server's per-graph mutation locks.
type persistence struct {
	dir string
	cfg kplist.StoreConfig

	mu     sync.Mutex
	stores map[string]*kplist.GraphStore
}

func (p *persistence) graphDir(id string) string {
	return filepath.Join(p.dir, "graphs", id)
}

// openPersistence recovers (or initializes) the data directory into reg
// and returns the persistence handle plus what recovery did.
func openPersistence(dir string, cfg kplist.StoreConfig, reg *Registry) (*persistence, RecoveryReport, error) {
	start := time.Now()
	p := &persistence{dir: dir, cfg: cfg, stores: make(map[string]*kplist.GraphStore)}
	var rep RecoveryReport
	if err := os.MkdirAll(filepath.Join(dir, "graphs"), 0o755); err != nil {
		return nil, rep, err
	}
	man, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, rep, err
	}
	reg.SetNextID(man.NextID)
	for _, mg := range man.Graphs {
		st, g, stats, err := kplist.OpenGraphStore(p.graphDir(mg.ID), cfg)
		if err != nil {
			p.closeAll()
			return nil, rep, fmt.Errorf("server: recovering graph %s: %w", mg.ID, err)
		}
		info := GraphInfo{ID: mg.ID, Name: mg.Name, Family: mg.Family, Planted: mg.Planted}
		if err := reg.Restore(info, g); err != nil {
			st.Close()
			p.closeAll()
			return nil, rep, err
		}
		p.stores[mg.ID] = st
		rep.Graphs++
		rep.WALRecordsReplayed += stats.WALRecords
		if stats.WALTorn || stats.WALCorrupt {
			rep.WALTruncations++
		}
	}
	// Sweep directories the manifest does not list: a crash between store
	// creation and the manifest write, or between manifest removal and
	// directory removal.
	listed := make(map[string]bool, len(man.Graphs))
	for _, mg := range man.Graphs {
		listed[mg.ID] = true
	}
	entries, err := os.ReadDir(filepath.Join(dir, "graphs"))
	if err != nil {
		p.closeAll()
		return nil, rep, err
	}
	for _, ent := range entries {
		if !listed[ent.Name()] {
			if err := os.RemoveAll(filepath.Join(dir, "graphs", ent.Name())); err != nil {
				p.closeAll()
				return nil, rep, err
			}
			rep.OrphansSwept++
		}
	}
	rep.Elapsed = time.Since(start)
	rep.ElapsedSeconds = rep.Elapsed.Seconds()
	return p, rep, nil
}

func readManifest(path string) (manifest, error) {
	var man manifest
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return man, nil // fresh data dir
	}
	if err != nil {
		return man, err
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return man, fmt.Errorf("server: corrupt manifest %s: %w", path, err)
	}
	return man, nil
}

// writeManifest snapshots the registry into the manifest, atomically
// (temp + rename).
func (p *persistence) writeManifest(reg *Registry) error {
	man := manifest{NextID: reg.NextID()}
	for _, info := range reg.List() {
		man.Graphs = append(man.Graphs, manifestGraph{
			ID: info.ID, Name: info.Name, Family: info.Family, Planted: info.Planted,
		})
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(p.dir, manifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// store returns id's open store (nil when the graph predates -data-dir
// or persistence is off for it).
func (p *persistence) store(id string) *kplist.GraphStore {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stores[id]
}

// create initializes id's durable store holding g and records it in the
// manifest. Called after the registry admitted the graph (capacity is
// its concern); on failure the caller rolls the registration back.
func (p *persistence) create(id string, g *kplist.Graph, reg *Registry) error {
	st, err := kplist.CreateGraphStore(p.graphDir(id), g, p.cfg)
	if err != nil {
		os.RemoveAll(p.graphDir(id))
		return err
	}
	if err := p.writeManifest(reg); err != nil {
		st.Close()
		os.RemoveAll(p.graphDir(id))
		return err
	}
	p.mu.Lock()
	p.stores[id] = st
	p.mu.Unlock()
	return nil
}

// remove closes id's store, forgets it in the manifest, then deletes its
// files — in that order, so the manifest never points at a missing
// directory and a crash mid-remove leaves only an orphan the next boot
// sweeps.
func (p *persistence) remove(id string, reg *Registry) error {
	p.mu.Lock()
	st := p.stores[id]
	delete(p.stores, id)
	p.mu.Unlock()
	if st != nil {
		if err := st.Close(); err != nil {
			return err
		}
	}
	if err := p.writeManifest(reg); err != nil {
		return err
	}
	return os.RemoveAll(p.graphDir(id))
}

// closeAll closes every open store (shutdown flush, or recovery-failure
// cleanup).
func (p *persistence) closeAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var err error
	for id, st := range p.stores {
		if cerr := st.Close(); cerr != nil && err == nil {
			err = cerr
		}
		delete(p.stores, id)
	}
	return err
}
