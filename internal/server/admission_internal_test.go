package server

// S2: the Retry-After hint is derived from live queue pressure instead
// of a hardcoded 1 — internal tests drive retryAfterSecs directly, plus
// one end-to-end check that the shed path carries the derived header.

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestRetryAfterSecsScalesWithQueuePressure(t *testing.T) {
	a := newAdmission(1, 10, 20*time.Second)
	for _, tc := range []struct {
		waiting int64
		want    int64
	}{
		{0, 1},   // empty queue: come back in a second
		{1, 2},   // ceil(1·20/10)
		{5, 10},  // half-full queue: half the deadline
		{10, 20}, // full queue: the whole deadline
		{99, 20}, // clamped at the deadline even past the limit
	} {
		a.waiting.Store(tc.waiting)
		if got := a.retryAfterSecs(); got != tc.want {
			t.Errorf("waiting=%d: retryAfterSecs() = %d, want %d", tc.waiting, got, tc.want)
		}
	}
}

func TestRetryAfterSecsDegenerateConfigs(t *testing.T) {
	// Zero queue limit and a sub-second deadline must still produce a
	// positive whole-second hint.
	a := newAdmission(1, 0, 500*time.Millisecond)
	if got := a.retryAfterSecs(); got != 1 {
		t.Fatalf("zero-limit admission: retryAfterSecs() = %d, want 1", got)
	}
	a.waiting.Store(-3) // racing decrements can transiently undershoot
	if got := a.retryAfterSecs(); got != 1 {
		t.Fatalf("negative waiting: retryAfterSecs() = %d, want 1", got)
	}
}

func TestShedResponseCarriesDerivedRetryAfter(t *testing.T) {
	a := newAdmission(1, 1, 10*time.Second)
	release := make(chan struct{})
	h := a.admit(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		<-release
	}))
	defer close(release)

	// Occupy the single slot, then the single queue seat.
	for i := 0; i < 2; i++ {
		go func() {
			r := httptest.NewRequest(http.MethodGet, "/x", nil)
			h.ServeHTTP(httptest.NewRecorder(), r)
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.waiting.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue seat never occupied")
		}
		time.Sleep(time.Millisecond)
	}

	// The next request sheds with 429 and the pressure-derived hint:
	// 1 waiting × 10s deadline / limit 1 = 10 seconds.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "10" {
		t.Fatalf("Retry-After = %q, want \"10\" (derived, not hardcoded 1)", got)
	}
}
