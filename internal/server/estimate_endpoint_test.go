package server_test

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"kplist"
	"kplist/internal/sketch"
)

// estimateWire mirrors the mode=estimate response body.
type estimateWire struct {
	Graph        string  `json:"graph"`
	P            int     `json:"p"`
	Estimate     float64 `json:"estimate"`
	CILo         float64 `json:"ci_lo"`
	CIHi         float64 `json:"ci_hi"`
	Method       string  `json:"method"`
	Exact        bool    `json:"exact"`
	Eps          float64 `json:"eps"`
	Conf         float64 `json:"conf"`
	Samples      int     `json:"samples"`
	Precision    int     `json:"precision"`
	StaleRebuilt bool    `json:"staleRebuilt"`
}

func estTruth(t *testing.T, g *kplist.Graph, p int) float64 {
	t.Helper()
	s := kplist.NewSession(g, kplist.SessionConfig{})
	defer s.Close()
	return float64(len(s.GroundTruth(p)))
}

func TestEstimateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	id, inst := registerWorkload(t, ts.URL, 96, 31)
	truth := estTruth(t, inst.G, 3)

	// Unbudgeted default: the planner answers exactly.
	resp, body := postJSON(t, ts.URL+"/v1/graphs/"+id+"/query?mode=estimate", map[string]any{"p": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: status %d body %s", resp.StatusCode, body)
	}
	var er estimateWire
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Exact || er.Method != "exact" || er.Estimate != truth {
		t.Fatalf("unbudgeted estimate: %+v (truth %v)", er, truth)
	}

	// Forced estimator paths must label themselves inexact and cover truth.
	for _, method := range []string{"hll", "sample"} {
		resp, body := postJSON(t,
			ts.URL+"/v1/graphs/"+id+"/query?mode=estimate&method="+method+"&eps=0.05&conf=0.99&samples=2048",
			map[string]any{"p": 3, "seed": 7})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d body %s", method, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Exact || er.Method != method {
			t.Fatalf("%s: mislabelled %+v", method, er)
		}
		if truth < er.CILo || truth > er.CIHi {
			t.Fatalf("%s: CI [%v, %v] misses truth %v (estimate %v)",
				method, er.CILo, er.CIHi, truth, er.Estimate)
		}
	}

	// A tight budget steers the planner off the exact kernel — on a graph
	// dense enough that the priced exact cost clears the 1ms floor.
	spec := kplist.DefaultWorkloadSpec(kplist.WorkloadStochasticBlock, 384, 9)
	resp, body = postJSON(t, ts.URL+"/v1/graphs", map[string]any{"workload": spec})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register dense: status %d body %s", resp.StatusCode, body)
	}
	var dense struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &dense); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/graphs/"+dense.ID+"/query?mode=estimate&budget_ms=1&samples=256",
		map[string]any{"p": 4, "seed": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted: status %d body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Exact {
		t.Fatalf("budgeted estimate answered exactly: %+v", er)
	}

	// The method mix lands on /metrics.
	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	for _, want := range []string{
		`kplistd_estimate_queries_total{method="exact"} 1`,
		`kplistd_estimate_queries_total{method="hll"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestEstimateEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	id, _ := registerWorkload(t, ts.URL, 48, 5)
	cases := []struct {
		name, url string
		body      any
	}{
		{"unknown mode", "/query?mode=guess", map[string]any{"p": 3}},
		{"batch body", "/query?mode=estimate", map[string]any{"queries": []map[string]any{{"p": 3}}}},
		{"bad p", "/query?mode=estimate", map[string]any{"p": 2}},
		{"bad eps", "/query?mode=estimate&eps=nope", map[string]any{"p": 3}},
		{"negative eps", "/query?mode=estimate&eps=-0.1", map[string]any{"p": 3}},
		{"bad conf", "/query?mode=estimate&conf=1.5", map[string]any{"p": 3}},
		{"bad budget", "/query?mode=estimate&budget_ms=-5", map[string]any{"p": 3}},
		{"bad method", "/query?mode=estimate&method=guess", map[string]any{"p": 3}},
		{"bad precision", "/query?mode=estimate&precision=99&method=hll", map[string]any{"p": 3}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/graphs/"+id+tc.url, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, body)
		}
	}
}

func TestSketchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	id, inst := registerWorkload(t, ts.URL, 96, 31)

	resp, body := get(t, ts.URL+"/v1/graphs/"+id+"/sketch?p=3&precision=12&seed=7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sketch: status %d body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}
	if got := resp.Header.Get("X-Kplist-Sketch-Precision"); got != "12" {
		t.Fatalf("precision header %q", got)
	}
	if got := resp.Header.Get("X-Kplist-Sketch-Seed"); got != "7" {
		t.Fatalf("seed header %q", got)
	}
	var h sketch.CliqueHLL
	if err := h.UnmarshalBinary(body); err != nil {
		t.Fatalf("served sketch does not decode: %v", err)
	}

	// The served bytes equal a sketch built directly over the same graph:
	// the codec is deterministic in the distinct-clique set.
	want, err := sketch.NewCliqueHLL(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	want.InscribeGraph(inst.G, 3)
	wb, _ := want.MarshalBinary()
	if string(body) != string(wb) {
		t.Fatal("served sketch differs from a direct build over the same graph")
	}

	// precision=0 resolves from eps/conf like the estimate path.
	resp, _ = get(t, ts.URL+"/v1/graphs/"+id+"/sketch?p=3&seed=7&eps=0.02&conf=0.95")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eps sketch: status %d", resp.StatusCode)
	}
	wantPrec := sketch.PrecisionForEps(0.02, 0.95)
	if got := resp.Header.Get("X-Kplist-Sketch-Precision"); got != strconv.Itoa(wantPrec) {
		t.Fatalf("eps-resolved precision header %q, want %d", got, wantPrec)
	}

	// Parameter validation.
	for _, u := range []string{
		"/sketch",            // missing p
		"/sketch?p=0",        // invalid p
		"/sketch?p=3&seed=x", // bad seed
		"/sketch?p=3&eps=x",  // bad eps
		"/sketch?p=3&precision=99",
	} {
		resp, body := get(t, ts.URL+"/v1/graphs/"+id+u)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", u, resp.StatusCode, body)
		}
	}
	if resp, _ := get(t, ts.URL+"/v1/graphs/nope/sketch?p=3"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing graph: status %d, want 404", resp.StatusCode)
	}
}
