package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"kplist"
	"kplist/internal/server"
)

// newPersistentServer opens a server over dir and mounts it; the caller
// restarts by calling it again with the same dir.
func newPersistentServer(t *testing.T, dir string, override func(*server.Config)) (*server.Server, *httptest.Server) {
	t.Helper()
	cfg := server.Config{
		MaxGraphs:       8,
		PoolSize:        4,
		QueueLimit:      256,
		MaxInFlight:     8,
		DefaultDeadline: time.Minute,
		DataDir:         dir,
		Store:           kplist.StoreConfig{NoSync: true},
	}
	if override != nil {
		override(&cfg)
	}
	s, err := server.Open(cfg)
	if err != nil {
		t.Fatalf("server.Open: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	return s, ts
}

func truthStream(t *testing.T, base, id string, p int) string {
	t.Helper()
	resp, body := get(t, base+"/v1/graphs/"+id+"/cliques?p="+strconv.Itoa(p)+"&algo=truth")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cliques stream: status %d body %s", resp.StatusCode, body)
	}
	return string(body)
}

// The tentpole round trip at the HTTP level: register, mutate, shut
// down cleanly, reopen the same data dir, and get a byte-identical
// ground-truth stream plus continued mutability.
func TestPersistenceRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, ts := newPersistentServer(t, dir, nil)
	id, _ := registerWorkload(t, ts.URL, 120, 7)

	resp, body := patchJSON(t, ts.URL+"/v1/graphs/"+id+"/edges",
		mutBody(mut("add", 0, 1), mut("add", 0, 2), mut("add", 1, 2), mut("remove", 5, 6)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch: status %d body %s", resp.StatusCode, body)
	}
	wantStream := truthStream(t, ts.URL, id, 3)
	var wantInfo server.GraphInfo
	if r, b := get(t, ts.URL+"/v1/graphs/"+id); r.StatusCode != http.StatusOK {
		t.Fatalf("get: %d", r.StatusCode)
	} else if err := json.Unmarshal(b, &wantInfo); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := s1.Close(); err != nil { // clean shutdown: flush the WALs
		t.Fatalf("close: %v", err)
	}

	s2, ts2 := newPersistentServer(t, dir, nil)
	if rep := s2.Recovery(); rep.Graphs != 1 {
		t.Fatalf("recovery: %+v, want 1 graph", rep)
	}
	var gotInfo server.GraphInfo
	if r, b := get(t, ts2.URL+"/v1/graphs/"+id); r.StatusCode != http.StatusOK {
		t.Fatalf("get after restart: %d (%s)", r.StatusCode, b)
	} else if err := json.Unmarshal(b, &gotInfo); err != nil {
		t.Fatal(err)
	}
	if gotInfo.N != wantInfo.N || gotInfo.M != wantInfo.M || gotInfo.Name != wantInfo.Name {
		t.Errorf("info after restart: %+v, want %+v", gotInfo, wantInfo)
	}
	if got := truthStream(t, ts2.URL, id, 3); got != wantStream {
		t.Error("ground-truth stream differs after restart")
	}
	// The recovered graph keeps accepting mutations.
	if r, b := patchJSON(t, ts2.URL+"/v1/graphs/"+id+"/edges",
		mutBody(mut("add", 10, 11))); r.StatusCode != http.StatusOK {
		t.Fatalf("patch after restart: %d (%s)", r.StatusCode, b)
	}

	// /healthz reports the durable state.
	_, hb := get(t, ts2.URL+"/healthz")
	var hz struct {
		DataDir  string            `json:"dataDir"`
		Build    map[string]string `json:"build"`
		Recovery *struct {
			Graphs int `json:"graphs"`
		} `json:"recovery"`
	}
	if err := json.Unmarshal(hb, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.DataDir != dir || hz.Recovery == nil || hz.Recovery.Graphs != 1 || hz.Build["go"] == "" {
		t.Errorf("healthz: %s", hb)
	}
}

// New IDs never recycle across restarts: the manifest persists the
// counter, so a graph registered after a restart cannot collide with a
// recovered one's files.
func TestPersistenceIDsNeverRecycle(t *testing.T) {
	dir := t.TempDir()
	_, ts := newPersistentServer(t, dir, nil)
	id1, _ := registerWorkload(t, ts.URL, 60, 1)
	ts.Close()

	_, ts2 := newPersistentServer(t, dir, nil)
	id2, _ := registerWorkload(t, ts2.URL, 60, 2)
	if id1 == id2 {
		t.Fatalf("restart recycled graph ID %s", id1)
	}
}

func graphDirExists(dir, id string) bool {
	_, err := os.Stat(filepath.Join(dir, "graphs", id))
	return err == nil
}

// DELETE removes the graph's files and manifest entry; a subsequent
// restart must not resurrect it, and a fresh registration starts clean.
func TestDeleteRemovesDurableState(t *testing.T) {
	dir := t.TempDir()
	_, ts := newPersistentServer(t, dir, nil)
	id, _ := registerWorkload(t, ts.URL, 60, 3)
	if !graphDirExists(dir, id) {
		t.Fatalf("no durable files for %s after register", id)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if graphDirExists(dir, id) {
		t.Errorf("graph dir %s survived DELETE", id)
	}
	man, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(man), `"`+id+`"`) {
		t.Errorf("manifest still lists %s after DELETE: %s", id, man)
	}
	ts.Close()

	s2, ts2 := newPersistentServer(t, dir, nil)
	if s2.Recovery().Graphs != 0 {
		t.Errorf("deleted graph resurrected: %+v", s2.Recovery())
	}
	if r, _ := get(t, ts2.URL+"/v1/graphs/"+id); r.StatusCode != http.StatusNotFound {
		t.Errorf("deleted graph answers %d after restart", r.StatusCode)
	}
}

// A capacity rejection must leave no files behind (satellite: registry
// lifecycle vs the store).
func TestRegistryFullLeavesNoOrphanFiles(t *testing.T) {
	dir := t.TempDir()
	_, ts := newPersistentServer(t, dir, func(c *server.Config) { c.MaxGraphs = 1 })
	registerWorkload(t, ts.URL, 60, 4)
	resp, body := postJSON(t, ts.URL+"/v1/graphs", map[string]any{
		"n": 3, "edges": [][2]int32{{0, 1}},
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second register: status %d body %s", resp.StatusCode, body)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "graphs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("%d graph dirs after a capacity rejection, want 1", len(entries))
	}
}

// Directories the manifest does not list — a crash between store
// creation and the manifest write — are swept at boot.
func TestOrphanDirectorySweep(t *testing.T) {
	dir := t.TempDir()
	_, ts := newPersistentServer(t, dir, nil)
	registerWorkload(t, ts.URL, 60, 5)
	ts.Close()
	orphan := filepath.Join(dir, "graphs", "g99")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, "wal.log"), []byte("KPWAL1\n\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, _ := newPersistentServer(t, dir, nil)
	if s2.Recovery().OrphansSwept != 1 {
		t.Errorf("recovery swept %d orphans, want 1", s2.Recovery().OrphansSwept)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphan directory survived boot")
	}
}

// Concurrent registrations and deletes must serialize their manifest
// rewrites: with interleaved writers, last-rename-wins could publish a
// manifest that forgets another call's acknowledged graph, whose
// directory the next boot then sweeps as an orphan. Every acknowledged
// registration that was not deleted must survive a restart.
func TestConcurrentRegisterDeletePersistsSurvivors(t *testing.T) {
	dir := t.TempDir()
	s1, ts := newPersistentServer(t, dir, func(c *server.Config) { c.MaxGraphs = 64 })

	const workers = 10
	ids := make([]string, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := strings.NewReader(`{"n":3,"edges":[[0,1],[1,2],[0,2]]}`)
			resp, err := http.Post(ts.URL+"/v1/graphs", "application/json", body)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var info struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusCreated || info.ID == "" {
				errs[i] = fmt.Errorf("status %d id %q", resp.StatusCode, info.ID)
				return
			}
			ids[i] = info.ID
			// Odd workers immediately delete what they registered, racing
			// their manifest removal against the other workers' creates.
			if i%2 == 1 {
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/"+info.ID, nil)
				dresp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs[i] = err
					return
				}
				dresp.Body.Close()
				if dresp.StatusCode != http.StatusNoContent {
					errs[i] = fmt.Errorf("delete status %d", dresp.StatusCode)
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	ts.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newPersistentServer(t, dir, func(c *server.Config) { c.MaxGraphs = 64 })
	if want := workers / 2; s2.Recovery().Graphs != want {
		t.Errorf("recovery found %d graphs, want %d", s2.Recovery().Graphs, want)
	}
	for i, id := range ids {
		r, b := get(t, ts2.URL+"/v1/graphs/"+id)
		if i%2 == 1 {
			if r.StatusCode != http.StatusNotFound {
				t.Errorf("deleted graph %s resurrected: %d (%s)", id, r.StatusCode, b)
			}
			if graphDirExists(dir, id) {
				t.Errorf("deleted graph %s left files behind", id)
			}
			continue
		}
		if r.StatusCode != http.StatusOK {
			t.Errorf("graph %s lost across restart: %d (%s)", id, r.StatusCode, b)
		}
	}
}

// Ephemeral servers (no DataDir) must behave exactly as before: no
// files, no recovery block in /healthz.
func TestEphemeralServerUnchanged(t *testing.T) {
	_, ts := newTestServer(t, nil)
	id, _ := registerWorkload(t, ts.URL, 60, 6)
	_, hb := get(t, ts.URL+"/healthz")
	var hz map[string]any
	if err := json.Unmarshal(hb, &hz); err != nil {
		t.Fatal(err)
	}
	if _, has := hz["dataDir"]; has {
		t.Errorf("ephemeral healthz advertises a data dir: %s", hb)
	}
	if r, _ := get(t, ts.URL+"/v1/graphs/"+id); r.StatusCode != http.StatusOK {
		t.Errorf("ephemeral get: %d", r.StatusCode)
	}
}
