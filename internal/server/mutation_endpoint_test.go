package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"kplist"
	"kplist/internal/server"
)

func patchJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPatch, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func mutBody(muts ...map[string]any) map[string]any {
	return map[string]any{"mutations": muts}
}

func mut(op string, u, v int) map[string]any {
	return map[string]any{"op": op, "u": u, "v": v}
}

// queryCliqueCount runs one p-query and returns the reported clique count.
func queryCliqueCount(t *testing.T, base, id string, p int) int {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/graphs/"+id+"/query",
		map[string]any{"p": p, "algo": "congested-clique"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d body %s", resp.StatusCode, body)
	}
	var qr struct {
		Results []struct {
			Cliques int    `json:"cliques"`
			Error   string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) != 1 || qr.Results[0].Error != "" {
		t.Fatalf("query results %+v", qr)
	}
	return qr.Results[0].Cliques
}

// registerEdgeGraph uploads an explicit edge list and returns its ID.
func registerEdgeGraph(t *testing.T, base string, n int, edges [][2]int32) string {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/graphs", map[string]any{"n": n, "edges": edges})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d body %s", resp.StatusCode, body)
	}
	var info server.GraphInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return info.ID
}

// TestPatchEdgesEndToEnd mutates an uploaded graph through the PATCH
// endpoint and checks the listing, the registry info and the metrics all
// track the mutation.
func TestPatchEdgesEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// Two disjoint triangles over 10 vertices.
	id := registerEdgeGraph(t, ts.URL, 10, [][2]int32{
		{0, 1}, {0, 2}, {1, 2},
		{3, 4}, {3, 5}, {4, 5},
	})
	if got := queryCliqueCount(t, ts.URL, id, 3); got != 2 {
		t.Fatalf("seed triangles: %d", got)
	}

	// Close a third triangle; one redundant op rides along.
	resp, body := patchJSON(t, ts.URL+"/v1/graphs/"+id+"/edges", mutBody(
		mut("add", 6, 7), mut("add", 7, 8), mut("add", 6, 8), mut("add", 0, 1),
	))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch: status %d body %s", resp.StatusCode, body)
	}
	var pr struct {
		Mutations          int  `json:"mutations"`
		AddedEdges         int  `json:"addedEdges"`
		RemovedEdges       int  `json:"removedEdges"`
		Rebuilt            bool `json:"rebuilt"`
		InvalidatedResults int  `json:"invalidatedResults"`
		M                  int  `json:"m"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Mutations != 4 || pr.AddedEdges != 3 || pr.RemovedEdges != 0 || pr.Rebuilt || pr.M != 9 {
		t.Fatalf("patch response %+v", pr)
	}
	if pr.InvalidatedResults != 1 {
		t.Fatalf("cached p=3 result not invalidated: %+v", pr)
	}
	if got := queryCliqueCount(t, ts.URL, id, 3); got != 3 {
		t.Fatalf("triangles after patch: %d", got)
	}

	// Deleting one edge of a triangle removes it again.
	resp, body = patchJSON(t, ts.URL+"/v1/graphs/"+id+"/edges", mutBody(mut("remove", 6, 7)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch: status %d body %s", resp.StatusCode, body)
	}
	if got := queryCliqueCount(t, ts.URL, id, 3); got != 2 {
		t.Fatalf("triangles after delete: %d", got)
	}

	// Registry info reflects the mutated edge count.
	resp, body = get(t, ts.URL+"/v1/graphs/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d", resp.StatusCode)
	}
	var info server.GraphInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.M != 8 {
		t.Fatalf("registry m=%d after mutations, want 8", info.M)
	}

	// Metrics: mutation counters and the apply-latency histogram exist.
	_, body = get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"kplistd_mutations_total 5",
		`kplistd_mutation_batches_total{mode="incremental"} 2`,
		`kplistd_mutation_batches_total{mode="rebuild"} 0`,
		"kplistd_mutation_apply_seconds_count 2",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestPatchEdgesValidation exercises the 4xx paths.
func TestPatchEdgesValidation(t *testing.T) {
	_, ts := newTestServer(t, func(c *server.Config) { c.MaxMutationBatch = 4 })
	id := registerEdgeGraph(t, ts.URL, 4, [][2]int32{{0, 1}})

	cases := []struct {
		name string
		body any
		want int
	}{
		{"empty batch", mutBody(), http.StatusBadRequest},
		{"unknown op", mutBody(mut("toggle", 0, 1)), http.StatusBadRequest},
		{"out of range", mutBody(mut("add", 0, 99)), http.StatusBadRequest},
		{"self loop", mutBody(mut("add", 2, 2)), http.StatusBadRequest},
		{"oversized batch", mutBody(
			mut("add", 0, 1), mut("add", 0, 2), mut("add", 0, 3),
			mut("add", 1, 2), mut("add", 1, 3),
		), http.StatusBadRequest},
		{"bad json", "not an object", http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := patchJSON(t, ts.URL+"/v1/graphs/"+id+"/edges", tc.body)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d body %s", tc.name, resp.StatusCode, body)
		}
	}
	// Unknown graph is 404.
	resp, _ := patchJSON(t, ts.URL+"/v1/graphs/nope/edges", mutBody(mut("add", 0, 1)))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d", resp.StatusCode)
	}
	// Rejected batches left the graph untouched.
	if got := queryCliqueCount(t, ts.URL, id, 3); got != 0 {
		t.Fatalf("graph mutated by rejected batches: %d triangles", got)
	}
}

// TestPatchEdgesSurvivesEviction checks the mutation's durability story:
// after PATCH, evicting the graph's pooled session (by touching other
// graphs through a size-1 pool) must not roll the mutation back, because
// the registry holds the mutated snapshot.
func TestPatchEdgesSurvivesEviction(t *testing.T) {
	srv, ts := newTestServer(t, func(c *server.Config) { c.PoolSize = 1 })
	id := registerEdgeGraph(t, ts.URL, 6, [][2]int32{{0, 1}, {1, 2}})
	other := registerEdgeGraph(t, ts.URL, 4, [][2]int32{{0, 1}})

	resp, body := patchJSON(t, ts.URL+"/v1/graphs/"+id+"/edges", mutBody(mut("add", 0, 2)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch: status %d body %s", resp.StatusCode, body)
	}
	// Evict id's session.
	if got := queryCliqueCount(t, ts.URL, other, 3); got != 0 {
		t.Fatalf("other graph triangles: %d", got)
	}
	if srv.Pool().Contains(id) {
		t.Fatal("pool still holds the mutated graph's session")
	}
	// A fresh session must serve the mutated graph.
	if got := queryCliqueCount(t, ts.URL, id, 3); got != 1 {
		t.Fatalf("mutation rolled back after eviction: %d triangles", got)
	}
}

// TestPatchEdgesRebuildMode drives a batch past the incremental engine's
// density threshold and checks the response and metrics record the
// rebuild fallback.
func TestPatchEdgesRebuildMode(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// A 40-vertex path: 39 edges; deleting 34 > max(32, 10% of 39).
	var edges [][2]int32
	for v := int32(1); v < 40; v++ {
		edges = append(edges, [2]int32{v - 1, v})
	}
	id := registerEdgeGraph(t, ts.URL, 40, edges)
	var muts []map[string]any
	for v := 1; v <= 34; v++ {
		muts = append(muts, mut("remove", v-1, v))
	}
	resp, body := patchJSON(t, ts.URL+"/v1/graphs/"+id+"/edges", mutBody(muts...))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch: status %d body %s", resp.StatusCode, body)
	}
	var pr struct {
		Rebuilt      bool `json:"rebuilt"`
		RemovedEdges int  `json:"removedEdges"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Rebuilt || pr.RemovedEdges != 34 {
		t.Fatalf("rebuild batch response %+v (body %s)", pr, body)
	}
	_, mbody := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(mbody), `kplistd_mutation_batches_total{mode="rebuild"} 1`) {
		t.Fatalf("rebuild not counted:\n%s", mbody)
	}
}

// TestPatchEdgesWorkloadGraph mutates a generated workload graph and
// checks the planted annotation is dropped (the guarantee no longer
// holds) while the listing stays exact.
func TestPatchEdgesWorkloadGraph(t *testing.T) {
	_, ts := newTestServer(t, nil)
	id, inst := registerWorkload(t, ts.URL, 80, 3)
	planted := inst.Props.Planted[0]
	resp, body := patchJSON(t, ts.URL+"/v1/graphs/"+id+"/edges",
		mutBody(mut("remove", int(planted[0]), int(planted[1]))))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch: status %d body %s", resp.StatusCode, body)
	}
	resp, body = get(t, ts.URL+"/v1/graphs/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d", resp.StatusCode)
	}
	var info server.GraphInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Planted != 0 {
		t.Fatalf("planted annotation survived a mutation: %+v", info)
	}
	// The served listing matches ground truth on the mutated graph.
	want := len(mutatedGroundTruth(t, inst, planted))
	if got := queryCliqueCount(t, ts.URL, id, 4); got != want {
		t.Fatalf("K4 count %d, want %d", got, want)
	}
}

// mutatedGroundTruth recomputes the K4 ground truth after removing the
// first planted clique's first edge.
func mutatedGroundTruth(t *testing.T, inst *kplist.WorkloadInstance, planted kplist.Clique) []kplist.Clique {
	t.Helper()
	var edges []kplist.Edge
	cut := kplist.Edge{U: planted[0], V: planted[1]}
	for _, e := range inst.G.Edges() {
		if e == cut {
			continue
		}
		edges = append(edges, e)
	}
	g, err := kplist.NewGraph(inst.G.N(), edges)
	if err != nil {
		t.Fatal(err)
	}
	return kplist.GroundTruth(g, 4)
}
