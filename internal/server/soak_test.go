//go:build soak

package server_test

// The opt-in server soak: 64 concurrent clients hammer one graph with a
// mix of queries and PATCH mutations for 60 seconds (5 under -short),
// asserting zero stale reads and a stable goroutine count at exit. Run
// with:
//
//	go test -race -tags soak -run TestServerSoak ./internal/server
//
// Stale-read definition: every response must be consistent with some
// linearized prefix of the mutation history. Mutator clients own disjoint
// three-vertex regions, so after a client's PATCH response returns, the
// presence (or absence) of its region's triangle is determined for every
// later linearized query — read-your-writes through the selective cache
// invalidation, the session pool and the registry swap.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kplist"
	"kplist/internal/server"
)

const (
	soakMutators = 16 // one three-vertex region each: vertices [3i, 3i+2]
	soakReaders  = 48
	soakN        = 128 // region vertices [0,48), background [48,128)
)

func TestServerSoak(t *testing.T) {
	duration := 60 * time.Second
	if testing.Short() {
		duration = 5 * time.Second
	}
	before := runtime.NumGoroutine()

	_, ts := newTestServer(t, func(c *server.Config) {
		c.MaxInFlight = 128
		c.QueueLimit = 2048
		c.DefaultDeadline = time.Minute
	})
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 128}}

	// Background edges among vertices ≥ 48 give the reader queries a
	// population; region vertices stay untouched by the seed so each
	// mutator fully owns its triangle.
	rng := rand.New(rand.NewSource(99))
	var edges [][2]int32
	for i := 0; i < 400; i++ {
		u := int32(48 + rng.Intn(soakN-48))
		v := int32(48 + rng.Intn(soakN-48))
		if u != v {
			edges = append(edges, [2]int32{u, v})
		}
	}
	id := registerEdgeGraph(t, ts.URL, soakN, edges)

	var (
		wg        sync.WaitGroup
		stop      = make(chan struct{})
		staleMu   sync.Mutex
		staleErrs []string
		requests  atomic.Int64
	)
	reportStale := func(format string, args ...any) {
		staleMu.Lock()
		if len(staleErrs) < 10 {
			staleErrs = append(staleErrs, fmt.Sprintf(format, args...))
		}
		staleMu.Unlock()
	}

	patch := func(muts ...map[string]any) error {
		resp, body := patchJSONClient(t, client, ts.URL+"/v1/graphs/"+id+"/edges", mutBody(muts...))
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("patch status %d: %s", resp.StatusCode, body)
		}
		return nil
	}
	// listTriangles returns the served triangle listing via the query
	// endpoint (includeCliques).
	listTriangles := func(seed int64) ([]kplist.Clique, error) {
		resp, body := postJSONClient(t, client, ts.URL+"/v1/graphs/"+id+"/query",
			map[string]any{"p": 3, "algo": "congested-clique", "seed": seed, "includeCliques": true})
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("query status %d: %s", resp.StatusCode, body)
		}
		var qr struct {
			Results []struct {
				CliqueList []kplist.Clique `json:"cliqueList"`
				Error      string          `json:"error"`
			} `json:"results"`
		}
		if err := json.Unmarshal(body, &qr); err != nil {
			return nil, err
		}
		if len(qr.Results) != 1 || qr.Results[0].Error != "" {
			return nil, fmt.Errorf("query results: %s", body)
		}
		return qr.Results[0].CliqueList, nil
	}
	hasTriangle := func(cs []kplist.Clique, a, b, c int32) bool {
		for _, cl := range cs {
			if len(cl) == 3 && cl[0] == a && cl[1] == b && cl[2] == c {
				return true
			}
		}
		return false
	}

	// Mutator clients: toggle the owned triangle and check read-your-writes
	// after every PATCH.
	for i := 0; i < soakMutators; i++ {
		wg.Add(1)
		go func(region int) {
			defer wg.Done()
			a, b, c := int32(3*region), int32(3*region+1), int32(3*region+2)
			closed := false
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if !closed {
					err = patch(mut("add", int(a), int(b)), mut("add", int(b), int(c)), mut("add", int(a), int(c)))
				} else {
					err = patch(mut("remove", int(a), int(b)))
				}
				if err != nil {
					reportStale("region %d: %v", region, err)
					return
				}
				closed = !closed
				requests.Add(1)
				cs, err := listTriangles(int64(region))
				if err != nil {
					reportStale("region %d: %v", region, err)
					return
				}
				requests.Add(1)
				if got := hasTriangle(cs, a, b, c); got != closed {
					reportStale("region %d iter %d: stale read — triangle present=%v, want %v",
						region, iter, got, closed)
					return
				}
			}
		}(i)
	}

	// Reader clients: mixed p queries and NDJSON streaming; responses must
	// be well-formed, with triangle listings never exceeding the reachable
	// population (16 region triangles + the static background census).
	bgTriangles := backgroundTriangleCount(t, soakN, edges)
	for i := 0; i < soakReaders; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cs, err := listTriangles(seed % 4)
				if err != nil {
					reportStale("reader %d: %v", seed, err)
					return
				}
				requests.Add(1)
				regionCount := 0
				for _, cl := range cs {
					if cl[2] < 48 {
						regionCount++
					}
				}
				staticCount := len(cs) - regionCount
				if regionCount > soakMutators || staticCount != bgTriangles {
					reportStale("reader %d: listing outside the reachable set (region=%d static=%d want static=%d)",
						seed, regionCount, staticCount, bgTriangles)
					return
				}
			}
		}(int64(i))
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	staleMu.Lock()
	for _, e := range staleErrs {
		t.Error(e)
	}
	staleMu.Unlock()
	if n := requests.Load(); n < int64(soakMutators+soakReaders) {
		t.Fatalf("soak made only %d requests", n)
	}
	t.Logf("soak: %d requests over %v", requests.Load(), duration)

	// Goroutine stability: after the clients drain and the server closes,
	// the count settles back near the pre-test level.
	client.CloseIdleConnections()
	ts.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+8 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("goroutine count did not settle: before=%d after=%d", before, runtime.NumGoroutine())
}

// backgroundTriangleCount computes the static triangle census of the
// seed's background edges (region vertices hold no seed edges, so the
// background census never changes during the soak).
func backgroundTriangleCount(t *testing.T, n int, edges [][2]int32) int {
	t.Helper()
	es := make([]kplist.Edge, len(edges))
	for i, e := range edges {
		es[i] = kplist.Edge{U: e[0], V: e[1]}
	}
	g, err := kplist.NewGraph(n, es)
	if err != nil {
		t.Fatal(err)
	}
	return int(kplist.GroundTruthCount(g, 3))
}

// patchJSONClient / postJSONClient are the shared-client variants of the
// helpers in mutation_endpoint_test.go (the soak reuses one transport so
// 64 clients don't exhaust ephemeral ports).
func patchJSONClient(t *testing.T, c *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	return doJSON(t, c, http.MethodPatch, url, body)
}

func postJSONClient(t *testing.T, c *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	return doJSON(t, c, http.MethodPost, url, body)
}

func doJSON(t *testing.T, c *http.Client, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}
