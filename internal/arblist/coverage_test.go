package arblist

import (
	"math/rand"
	"testing"

	"kplist/internal/congest"
	"kplist/internal/graph"
)

// These tests exercise the §2.4.2 coverage argument case by case on
// crafted instances: a K4 with a goal edge inside a cluster and its
// outside edge in each of the paper's categories (heavy–heavy, light
// endpoint with a good witness) must be listed by the cluster pass —
// black-box through ArbList, but with the scenario constructed so the
// relevant code path is the only one that can find the clique.

// pocketWithOutsiders builds one dense bipartite pocket of size `pocket`
// (vertices 0..pocket-1, sides [0,half) and [half,pocket)), plus the
// given extra edges, over n vertices.
func pocketWithOutsiders(t *testing.T, n, pocket int, extra []graph.Edge) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	sub := graph.RandomBipartite(pocket, 0.8, rng)
	edges := append([]graph.Edge{}, sub.Edges()...)
	edges = append(edges, extra...)
	return graph.MustNew(n, edges)
}

// attach connects v to `count` distinct pocket vertices starting at lo.
func attach(v graph.V, lo, count int) []graph.Edge {
	out := make([]graph.Edge, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, graph.Edge{U: v, V: graph.V(lo + i)})
	}
	return out
}

func runArb(t *testing.T, g *graph.Graph, prm Params) *ArbResult {
	t.Helper()
	var ledger congest.Ledger
	res, err := ArbList(g.N(), nil, nil, graph.NewEdgeList(g.Edges()), prm, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatalf("ArbList: %v", err)
	}
	return res
}

// TestCoverageHeavyHeavyOutsideEdge: K4 {u, w, v, v'} where the outside
// edge {v, v'} joins two C-heavy nodes. Case 1 of §2.4.2: the edge is
// oriented away from one of them, which ships all its out-edges into the
// cluster.
func TestCoverageHeavyHeavyOutsideEdge(t *testing.T) {
	const pocket, half = 40, 20
	u, w := graph.V(0), graph.V(half) // opposite sides: {u,w} likely a pocket edge
	v, vp := graph.V(50), graph.V(51)
	extra := []graph.Edge{
		{U: u, V: w}, // ensure the goal edge exists
		{U: v, V: vp},
		{U: v, V: u}, {U: v, V: w},
		{U: vp, V: u}, {U: vp, V: w},
	}
	// Make v and v' heavy *outsiders*: their in-cluster degree must exceed
	// the heavy threshold (4) while their total degree stays at the peel
	// threshold (8) so they are peeled out of the cluster. Each gets u, w
	// plus five more pocket neighbors (g_{v,C} = 7) plus the edge {v,v'}.
	extra = append(extra, attach(v, 2, 5)...)
	extra = append(extra, attach(vp, half+2, 5)...)
	g := pocketWithOutsiders(t, 60, pocket, extra)
	res := runArb(t, g, Params{P: 4, Seed: 1, ClusterThreshold: 8, HeavyThreshold: 4})
	if res.Stats.Clusters == 0 {
		t.Fatal("pocket did not become a cluster")
	}
	if res.Stats.HeavyNodes < 2 {
		t.Fatalf("v and v' should be heavy; census: %+v", res.Stats)
	}
	want := graph.Clique{u, w, v, vp}
	if !res.EmHat.Contains(graph.Edge{U: u, V: w}) {
		t.Skip("goal edge landed outside EmHat in this decomposition")
	}
	if !res.Cliques.Has(want) {
		t.Errorf("heavy-heavy K4 %v not listed", want)
	}
}

// TestCoverageLightOutsideEdge: K4 {u, w, v, v'} where v is C-light. Case
// 2 of §2.4.2: the good endpoint of the goal edge broadcasts its light
// list and learns {v, v'} from the replies.
func TestCoverageLightOutsideEdge(t *testing.T) {
	const pocket, half = 40, 20
	u, w := graph.V(0), graph.V(half)
	v, vp := graph.V(50), graph.V(51)
	extra := []graph.Edge{
		{U: u, V: w},
		{U: v, V: vp},
		{U: v, V: u}, {U: v, V: w}, // v has exactly 2 pocket neighbors → light
		{U: vp, V: u}, {U: vp, V: w},
	}
	g := pocketWithOutsiders(t, 60, pocket, extra)
	res := runArb(t, g, Params{P: 4, Seed: 2, ClusterThreshold: 8, HeavyThreshold: 6})
	if res.Stats.Clusters == 0 {
		t.Fatal("pocket did not become a cluster")
	}
	if res.Stats.LightNodes == 0 {
		t.Fatalf("v, v' should be light; census: %+v", res.Stats)
	}
	want := graph.Clique{u, w, v, vp}
	if !res.EmHat.Contains(graph.Edge{U: u, V: w}) {
		t.Skip("goal edge landed outside EmHat in this decomposition")
	}
	if !res.Cliques.Has(want) {
		t.Errorf("light-endpoint K4 %v not listed", want)
	}
}

// TestCoverageLightEdgeFastK4: same light scenario under the §3 fast-K4
// variant, where the light node itself must list the clique.
func TestCoverageLightEdgeFastK4(t *testing.T) {
	const pocket, half = 40, 20
	u, w := graph.V(0), graph.V(half)
	v, vp := graph.V(50), graph.V(51)
	extra := []graph.Edge{
		{U: u, V: w},
		{U: v, V: vp},
		{U: v, V: u}, {U: v, V: w},
		{U: vp, V: u}, {U: vp, V: w},
	}
	g := pocketWithOutsiders(t, 60, pocket, extra)
	res := runArb(t, g, Params{P: 4, Seed: 3, ClusterThreshold: 8, HeavyThreshold: 6, FastK4: true})
	if res.Stats.Clusters == 0 {
		t.Fatal("pocket did not become a cluster")
	}
	want := graph.Clique{u, w, v, vp}
	if !res.Cliques.Has(want) {
		t.Errorf("fast-K4 light pass missed %v", want)
	}
}

// TestCoverageK5WithTwoOutsiders: a K5 with two vertices outside the
// cluster — the case that broke the Eden et al. approach for p ≥ 5 (§1.1)
// and that the paper's edge-import machinery handles uniformly.
func TestCoverageK5WithTwoOutsiders(t *testing.T) {
	const pocket, half = 40, 20
	u, w, x := graph.V(0), graph.V(half), graph.V(1) // x on u's side; {x,w} crosses
	v, vp := graph.V(50), graph.V(51)
	extra := []graph.Edge{
		{U: u, V: w}, {U: x, V: w}, {U: u, V: x}, // in-pocket triangle (u,x same side: add edge)
		{U: v, V: vp},
		{U: v, V: u}, {U: v, V: w}, {U: v, V: x},
		{U: vp, V: u}, {U: vp, V: w}, {U: vp, V: x},
	}
	g := pocketWithOutsiders(t, 60, pocket, extra)
	res := runArb(t, g, Params{P: 5, Seed: 4, ClusterThreshold: 8, HeavyThreshold: 6})
	if res.Stats.Clusters == 0 {
		t.Fatal("pocket did not become a cluster")
	}
	want := graph.Clique{u, x, w, v, vp}
	touched := false
	for i := 0; i < len(want); i++ {
		for j := i + 1; j < len(want); j++ {
			if res.EmHat.Contains(graph.Edge{U: want[i], V: want[j]}) {
				touched = true
			}
		}
	}
	if !touched {
		t.Skip("K5 has no goal edge in this decomposition")
	}
	if !res.Cliques.Has(want) {
		t.Errorf("K5 with two outsiders %v not listed", want)
	}
}

// TestBadNodesExcludedFromLightLearning: on the celebrity workload, bad
// nodes must not run the light-learning exchange — their light lists are
// the ones that blow the budget.
func TestBadNodesExcludedFromLightLearning(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, pocket = 300, 60
	var edges []graph.Edge
	sub := graph.RandomBipartite(pocket, 0.8, rng)
	edges = append(edges, sub.Edges()...)
	celeb := graph.V(0)
	for v := pocket; v < n; v++ {
		edges = append(edges, graph.Edge{U: graph.V(v), V: celeb})
		edges = append(edges, graph.Edge{U: graph.V(v), V: graph.V(2 + rng.Intn(pocket-2))})
	}
	g := graph.MustNew(n, edges)
	var withLedger, withoutLedger congest.Ledger
	if _, err := ArbList(g.N(), nil, nil, graph.NewEdgeList(g.Edges()),
		Params{P: 4, Seed: 6, ClusterThreshold: 10, BadThreshold: 20}, congest.UnitCosts(), &withLedger); err != nil {
		t.Fatal(err)
	}
	if _, err := ArbList(g.N(), nil, nil, graph.NewEdgeList(g.Edges()),
		Params{P: 4, Seed: 6, ClusterThreshold: 10, BadThreshold: 1 << 30}, congest.UnitCosts(), &withoutLedger); err != nil {
		t.Fatal(err)
	}
	on := withLedger.Phase("arb-light-learn").Rounds
	off := withoutLedger.Phase("arb-light-learn").Rounds
	if on >= off {
		t.Errorf("bad-node exclusion should shrink light-learning: %d (on) vs %d (off)", on, off)
	}
}
