package arblist

import (
	"math/rand"
	"reflect"
	"testing"

	"kplist/internal/congest"
	"kplist/internal/graph"
)

// TestArbListWorkersEquivalent asserts that the parallel cluster fan-out is
// invisible: every worker count yields the same cliques, edge sets, stats
// census, and ledger bill as the fully sequential loop.
func TestArbListWorkersEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, dens := range []float64{0.15, 0.45} {
		g := graph.ErdosRenyi(90, dens, rng)
		el := graph.NewEdgeList(g.Edges())
		run := func(workers int) (*ArbResult, []congest.PhaseCost) {
			var ledger congest.Ledger
			res, err := ArbList(g.N(), nil, nil, el, Params{
				P: 4, Seed: 99, ClusterThreshold: 6, Workers: workers,
			}, congest.UnitCosts(), &ledger)
			if err != nil {
				t.Fatalf("ArbList(workers=%d): %v", workers, err)
			}
			return res, ledger.Phases()
		}
		seqRes, seqPhases := run(1)
		for _, workers := range []int{2, 8} {
			parRes, parPhases := run(workers)
			if !seqRes.Cliques.Equal(parRes.Cliques) {
				t.Fatalf("workers=%d: clique sets differ", workers)
			}
			if !reflect.DeepEqual(seqRes.EmHat, parRes.EmHat) ||
				!reflect.DeepEqual(seqRes.EsHat, parRes.EsHat) ||
				!reflect.DeepEqual(seqRes.ErHat, parRes.ErHat) {
				t.Fatalf("workers=%d: edge sets differ", workers)
			}
			if seqRes.Stats != parRes.Stats {
				t.Fatalf("workers=%d: stats %+v != %+v", workers, parRes.Stats, seqRes.Stats)
			}
			if !reflect.DeepEqual(seqPhases, parPhases) {
				t.Fatalf("workers=%d: ledger bills differ:\n  seq: %+v\n  par: %+v",
					workers, seqPhases, parPhases)
			}
		}
	}
}

// TestListWorkersEquivalent runs the full LIST ladder at several worker
// counts and checks the outputs coincide.
func TestListWorkersEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.ErdosRenyi(80, 0.35, rng)
	el := graph.NewEdgeList(g.Edges())
	run := func(workers int) *ListResult {
		var ledger congest.Ledger
		res, err := List(g.N(), el, Params{P: 4, Seed: 5, ClusterThreshold: 5, Workers: workers},
			congest.UnitCosts(), &ledger)
		if err != nil {
			t.Fatalf("List(workers=%d): %v", workers, err)
		}
		return res
	}
	seq := run(1)
	par := run(4)
	if !seq.Cliques.Equal(par.Cliques) {
		t.Fatal("clique sets differ between worker counts")
	}
	if seq.Iterations != par.Iterations || !reflect.DeepEqual(seq.ErSizes, par.ErSizes) {
		t.Fatalf("pass structure differs: %d/%v vs %d/%v",
			seq.Iterations, seq.ErSizes, par.Iterations, par.ErSizes)
	}
	if !reflect.DeepEqual(seq.PassStats, par.PassStats) {
		t.Fatal("pass stats differ between worker counts")
	}
}
