package arblist

import (
	"fmt"

	"kplist/internal/baseline"
	"kplist/internal/congest"
	"kplist/internal/graph"
)

// ListResult is the outcome of Algorithm LIST (Theorem 2.8).
type ListResult struct {
	// Cliques are all Kp listed: every Kp with at least one edge outside
	// the returned Es is guaranteed present.
	Cliques graph.CliqueSet
	// Es is the surviving sparse edge set (the theorem's Ẽs); its
	// certified orientation bounds the new arboricity.
	Es graph.EdgeList
	// EsOrient orients Es with max out-degree ≤ iterations · threshold
	// (the paper's n^δ·log n = A/2 ladder).
	EsOrient *graph.Orientation
	// Iterations is the number of ARB-LIST passes performed.
	Iterations int
	// FellBack reports whether the broadcast fallback fired (Er failed to
	// shrink within the iteration cap — cannot happen in the paper's
	// asymptotic regime; at practical scale it is billed honestly).
	FellBack bool
	// PassStats holds the per-pass census, for the E6 experiment.
	PassStats []ArbStats
	// ErSizes traces |Er| at the start of each pass (the ×4 decay law).
	ErSizes []int
}

// List runs Algorithm LIST (Theorem 2.8): iterate ARB-LIST on the working
// graph, listing every Kp that has at least one edge in each pass's EmHat
// and removing those edges, until Er is empty. The surviving Es has an
// orientation whose out-degree grew by at most the cluster threshold per
// pass — the paper's guarantee that the output arboricity is A/2 when the
// threshold is A/(2 log n).
func List(n int, edges graph.EdgeList, prm Params, cm congest.CostModel, ledger *congest.Ledger) (*ListResult, error) {
	if prm.P < 3 {
		return nil, fmt.Errorf("arblist: p=%d < 3", prm.P)
	}
	es := graph.EdgeList{}
	esOrient, err := graph.NewOrientation(n, make([][]graph.V, n))
	if err != nil {
		return nil, err
	}
	er := edges
	out := &ListResult{Cliques: make(graph.CliqueSet)}
	cap := prm.maxIterations(n)
	for iter := 0; len(er) > 0 && iter < cap; iter++ {
		if err := congest.CtxErr(prm.Ctx); err != nil {
			return nil, err
		}
		out.ErSizes = append(out.ErSizes, len(er))
		passPrm := prm
		passPrm.Seed = prm.Seed + int64(iter)*1_000_003
		res, err := ArbList(n, es, esOrient, er, passPrm, cm, ledger)
		if err != nil {
			return nil, fmt.Errorf("arblist: pass %d: %w", iter, err)
		}
		for key := range res.Cliques {
			out.Cliques[key] = struct{}{}
		}
		out.PassStats = append(out.PassStats, res.Stats)
		out.Iterations++
		if len(res.ErHat) >= len(er) {
			// No progress (possible only at practical scale when bad
			// edges dominate): fall back to broadcast listing of what
			// remains, billed at its true cost.
			es, esOrient, er = res.EsHat, res.EsHatOrient, res.ErHat
			break
		}
		es, esOrient, er = res.EsHat, res.EsHatOrient, res.ErHat
	}
	if len(er) > 0 {
		out.FellBack = true
		full := graph.Union(es, er)
		fullGraph, err := full.Graph(n)
		if err != nil {
			return nil, err
		}
		cliques, err := baseline.BroadcastList(n, full, fullGraph.DegeneracyOrientation(), prm.P, cm, ledger)
		if err != nil {
			return nil, fmt.Errorf("arblist: fallback: %w", err)
		}
		for key := range cliques {
			out.Cliques[key] = struct{}{}
		}
		// Everything left is now listed; Er is consumed, Es survives as
		// the sparse remainder contract.
	}
	out.Es = es
	out.EsOrient = esOrient
	return out, nil
}
