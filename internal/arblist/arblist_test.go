package arblist

import (
	"math/rand"
	"testing"

	"kplist/internal/congest"
	"kplist/internal/graph"
)

// cliqueTouches reports whether clique c has at least one edge inside el
// (el normalized).
func cliqueTouches(c graph.Clique, el graph.EdgeList) bool {
	for i := 0; i < len(c); i++ {
		for j := i + 1; j < len(c); j++ {
			if el.Contains(graph.Edge{U: c[i], V: c[j]}) {
				return true
			}
		}
	}
	return false
}

// checkArbContract verifies the Theorem 2.9 contract for one pass:
// partition exactness, orientation bound, and goal-edge listing coverage.
func checkArbContract(t *testing.T, n int, es, er graph.EdgeList, res *ArbResult, p int) {
	t.Helper()
	input := graph.Union(es, er)
	together := graph.Union(graph.Union(res.EmHat, res.EsHat), res.ErHat)
	if len(together) != len(input) || len(graph.Subtract(together, input)) != 0 {
		t.Fatalf("EmHat/EsHat/ErHat do not partition the input: %d vs %d edges", len(together), len(input))
	}
	if !graph.Disjoint(res.EmHat, res.EsHat) || !graph.Disjoint(res.EmHat, res.ErHat) || !graph.Disjoint(res.EsHat, res.ErHat) {
		t.Fatal("output sets not disjoint")
	}
	cover := res.EsHatOrient.Edges()
	if len(cover) != len(res.EsHat) || len(graph.Subtract(cover, res.EsHat)) != 0 {
		t.Fatal("EsHat orientation does not cover EsHat")
	}
	// Coverage: every Kp of the working graph with ≥1 edge in EmHat is
	// listed.
	g, err := input.Graph(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range g.ListCliques(p) {
		if cliqueTouches(c, res.EmHat) && !res.Cliques.Has(c) {
			t.Fatalf("K%d %v has a goal edge but was not listed", p, c)
		}
	}
	// Soundness: everything listed is a real clique of the working graph.
	for key := range res.Cliques {
		c := graph.CliqueFromKey(key)
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if !g.HasEdge(c[i], c[j]) {
					t.Fatalf("fabricated clique %v", c)
				}
			}
		}
	}
}

func TestArbListDenseGraphK4(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyi(150, 0.4, rng)
	er := graph.NewEdgeList(g.Edges())
	var ledger congest.Ledger
	res, err := ArbList(g.N(), nil, nil, er, Params{P: 4, Seed: 1, Paranoid: true}, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatalf("ArbList: %v", err)
	}
	checkArbContract(t, g.N(), nil, er, res, 4)
	if res.Stats.Clusters == 0 {
		t.Error("dense ER graph should produce clusters")
	}
	if len(res.EmHat) == 0 {
		t.Error("dense ER graph should produce goal edges")
	}
	if len(res.ErHat) >= len(er) {
		t.Errorf("|ErHat| = %d did not shrink from |Er| = %d", len(res.ErHat), len(er))
	}
	if ledger.Rounds() == 0 {
		t.Error("no rounds charged")
	}
}

func TestArbListK5AndK6(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.ErdosRenyi(120, 0.45, rng)
	er := graph.NewEdgeList(g.Edges())
	for _, p := range []int{5, 6} {
		var ledger congest.Ledger
		res, err := ArbList(g.N(), nil, nil, er, Params{P: p, Seed: 2}, congest.UnitCosts(), &ledger)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		checkArbContract(t, g.N(), nil, er, res, p)
	}
}

func TestArbListWithPriorEs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.ErdosRenyi(130, 0.35, rng)
	all := graph.NewEdgeList(g.Edges())
	// Split: a third of edges pre-assigned to Es with a peel orientation.
	esOrient, esEdges, _ := graph.PeelOrientation(g.N(), all, 10)
	er := graph.Subtract(all, esEdges)
	var ledger congest.Ledger
	res, err := ArbList(g.N(), esEdges, esOrient, er, Params{P: 4, Seed: 3}, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatalf("ArbList: %v", err)
	}
	checkArbContract(t, g.N(), esEdges, er, res, 4)
	// Prior Es must survive inside EsHat.
	if len(graph.Subtract(esEdges, res.EsHat)) != 0 {
		t.Error("input Es edges leaked out of EsHat")
	}
}

func TestArbListFastK4(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.ErdosRenyi(150, 0.4, rng)
	er := graph.NewEdgeList(g.Edges())
	var ledger congest.Ledger
	res, err := ArbList(g.N(), nil, nil, er, Params{P: 4, Seed: 4, FastK4: true}, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatalf("ArbList fast-K4: %v", err)
	}
	checkArbContract(t, g.N(), nil, er, res, 4)
	if res.Stats.BadEdges != 0 {
		t.Error("fast-K4 mode must not demote bad edges")
	}
}

func TestArbListSparseGraphNoClusters(t *testing.T) {
	g := graph.Cycle(60)
	er := graph.NewEdgeList(g.Edges())
	var ledger congest.Ledger
	res, err := ArbList(g.N(), nil, nil, er, Params{P: 4, ClusterThreshold: 3, Seed: 5}, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatalf("ArbList: %v", err)
	}
	if res.Stats.Clusters != 0 {
		t.Error("cycle should produce no clusters")
	}
	if len(res.EsHat) != g.M() {
		t.Errorf("all edges should peel to EsHat, got %d/%d", len(res.EsHat), g.M())
	}
	if len(res.EmHat) != 0 || len(res.ErHat) != 0 {
		t.Error("no goal or leftover edges expected")
	}
}

func TestArbListRejectsBadP(t *testing.T) {
	var ledger congest.Ledger
	if _, err := ArbList(10, nil, nil, nil, Params{P: 2}, congest.UnitCosts(), &ledger); err == nil {
		t.Error("p=2 should error")
	}
}

func TestListContract(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.ErdosRenyi(140, 0.4, rng)
	edges := graph.NewEdgeList(g.Edges())
	var ledger congest.Ledger
	res, err := List(g.N(), edges, Params{P: 4, Seed: 6}, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	// Es ⊆ input; everything outside Es is accounted for.
	if len(graph.Subtract(res.Es, edges)) != 0 {
		t.Fatal("Es contains foreign edges")
	}
	// Contract: every K4 with at least one edge outside Es is listed.
	for _, c := range g.ListCliques(4) {
		removed := graph.Subtract(edges, res.Es)
		if cliqueTouches(c, removed) && !res.Cliques.Has(c) {
			t.Fatalf("K4 %v touches removed edges but was not listed", c)
		}
	}
	if res.Iterations == 0 {
		t.Error("expected at least one pass")
	}
	if res.EsOrient.MaxOutDegree() == 0 && len(res.Es) > 0 {
		t.Error("non-empty Es with empty orientation")
	}
}

func TestListErDecay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.ErdosRenyi(160, 0.45, rng)
	edges := graph.NewEdgeList(g.Edges())
	var ledger congest.Ledger
	res, err := List(g.N(), edges, Params{P: 4, Seed: 7}, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if res.FellBack {
		t.Log("fallback fired (acceptable at this scale), skipping decay check")
		return
	}
	// The paper guarantees |Er| shrinks ×4 per pass; at practical scale we
	// require strict decay.
	for i := 1; i < len(res.ErSizes); i++ {
		if res.ErSizes[i] >= res.ErSizes[i-1] {
			t.Errorf("pass %d: |Er| grew %d → %d", i, res.ErSizes[i-1], res.ErSizes[i])
		}
	}
}

func TestListOrientationLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.ErdosRenyi(140, 0.4, rng)
	edges := graph.NewEdgeList(g.Edges())
	var ledger congest.Ledger
	prm := Params{P: 4, Seed: 8}
	res, err := List(g.N(), edges, prm, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	// Out-degree of the surviving orientation grows ≤ threshold per pass
	// (the (c+1)·n^δ ladder of Theorem 2.9).
	if len(res.PassStats) == 0 {
		t.Skip("no passes")
	}
	maxAllowed := 0
	for _, st := range res.PassStats {
		maxAllowed += st.ClusterThr
	}
	if got := res.EsOrient.MaxOutDegree(); got > maxAllowed {
		t.Errorf("EsOrient out-degree %d exceeds ladder bound %d", got, maxAllowed)
	}
}

func TestListEmptyInput(t *testing.T) {
	var ledger congest.Ledger
	res, err := List(20, nil, Params{P: 4, Seed: 1}, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if res.Cliques.Len() != 0 || len(res.Es) != 0 || res.Iterations != 0 {
		t.Error("empty input should be a no-op")
	}
}

func TestListFallbackOnIterationCap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.ErdosRenyi(120, 0.4, rng)
	edges := graph.NewEdgeList(g.Edges())
	var ledger congest.Ledger
	res, err := List(g.N(), edges, Params{P: 4, Seed: 9, MaxIterations: 1}, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if !res.FellBack {
		t.Skip("Er emptied in one pass; fallback not exercised")
	}
	// Even with the fallback, the full contract holds.
	for _, c := range g.ListCliques(4) {
		removed := graph.Subtract(edges, res.Es)
		if cliqueTouches(c, removed) && !res.Cliques.Has(c) {
			t.Fatalf("K4 %v not listed despite fallback", c)
		}
	}
	if ledger.Phase("broadcast-listing").Rounds == 0 {
		t.Error("fallback should charge broadcast rounds")
	}
}

func TestParamsDerivation(t *testing.T) {
	p := Params{}
	if p.clusterThreshold(1024, 512) != 512/20 {
		t.Errorf("clusterThreshold = %d", p.clusterThreshold(1024, 512))
	}
	if p.clusterThreshold(1024, 1) != 1 {
		t.Error("threshold clamps to 1")
	}
	if got := p.heavyThreshold(256, 100); got != 4 {
		t.Errorf("heavy threshold for n=256 = %d, want 256^(1/4)=4", got)
	}
	fast := Params{FastK4: true}
	if got := fast.heavyThreshold(1000, 100); got != 10 {
		t.Errorf("fast-K4 heavy threshold = %d, want 100/10=10", got)
	}
	if got := p.badThreshold(100); got != 10 {
		t.Errorf("bad threshold = %d, want sqrt(100)=10", got)
	}
	paper := Params{PaperBadThreshold: true}
	if got := paper.badThreshold(100); got != 100*10*7 {
		t.Errorf("paper bad threshold = %d, want 100·10·7", got)
	}
	explicit := Params{ClusterThreshold: 42, HeavyThreshold: 17, BadThreshold: 3, MaxIterations: 5}
	if explicit.clusterThreshold(1, 1) != 42 || explicit.heavyThreshold(1, 1) != 17 ||
		explicit.badThreshold(1) != 3 || explicit.maxIterations(1) != 5 {
		t.Error("explicit params should pass through")
	}
}
