package arblist

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"kplist/internal/congest"
	"kplist/internal/expander"
	"kplist/internal/graph"
	"kplist/internal/routing"
	"kplist/internal/sparselist"
)

// ArbResult is the outcome of one ARB-LIST pass (Theorem 2.9).
type ArbResult struct {
	// Cliques are all Kp listed by this pass: every Kp with at least one
	// goal edge (EmHat) is guaranteed present; Kp discovered incidentally
	// may appear too, which only helps.
	Cliques graph.CliqueSet
	// EmHat are the goal edges: cluster edges minus bad edges. All their
	// Kp instances are listed, so they can be removed from the graph.
	EmHat graph.EdgeList
	// EsHat is the new sparse set: the input Es plus the decomposition's
	// Es, with a certified orientation.
	EsHat graph.EdgeList
	// EsHatOrient orients EsHat; its max out-degree grows by at most the
	// cluster threshold per pass (the paper's (c+1)·n^δ ladder).
	EsHatOrient *graph.Orientation
	// ErHat is the leftover: the decomposition's Er plus bad edges.
	ErHat graph.EdgeList
	// Stats records the classification census for experiments.
	Stats ArbStats
}

// ArbStats is the per-pass census.
type ArbStats struct {
	Clusters    int
	HeavyNodes  int
	LightNodes  int
	BadNodes    int
	BadEdges    int
	GoalEdges   int
	MaxLearned  int64 // max edges brought into any single cluster node
	HeavyThresh int
	BadThresh   int
	ClusterThr  int
}

// ArbList runs one pass of Algorithm ARB-LIST (Theorem 2.9) on the current
// working graph E = es ∪ er over n vertices. esOrient orients es (nil for
// empty es). It decomposes er, brings every outside edge that could form a
// Kp with a cluster goal edge into the cluster (heavy/light machinery,
// §2.4.1), verifies the §2.4.2 coverage, and lists inside each cluster via
// the sparsity-aware algorithm (§2.4.3). All round charges follow
// DESIGN.md §5.
func ArbList(n int, es graph.EdgeList, esOrient *graph.Orientation, er graph.EdgeList, prm Params, cm congest.CostModel, ledger *congest.Ledger) (*ArbResult, error) {
	if prm.P < 3 {
		return nil, fmt.Errorf("arblist: p=%d < 3", prm.P)
	}
	if esOrient == nil {
		var err error
		esOrient, err = graph.NewOrientation(n, make([][]graph.V, n))
		if err != nil {
			return nil, err
		}
	}
	full := graph.Union(es, er)
	fullGraph, err := full.Graph(n)
	if err != nil {
		return nil, fmt.Errorf("arblist: building working graph: %w", err)
	}
	fullOrient := fullGraph.DegeneracyOrientation()
	arb := fullOrient.MaxOutDegree()
	if arb < 1 {
		arb = 1
	}
	clusterThr := prm.clusterThreshold(n, arb)
	heavyThr := prm.heavyThreshold(n, arb)
	badThr := prm.badThreshold(n)

	decomp, err := expander.Decompose(n, er, expander.Params{
		Threshold: clusterThr,
		Seed:      prm.Seed,
	}, cm, ledger)
	if err != nil {
		return nil, fmt.Errorf("arblist: decomposition: %w", err)
	}
	if prm.Paranoid {
		if err := decomp.Check(n, er); err != nil {
			return nil, fmt.Errorf("arblist: decomposition invariants: %w", err)
		}
	}

	esHat := graph.Union(es, decomp.Es)
	esHatOrient, err := esOrient.Merge(decomp.EsOrient)
	if err != nil {
		return nil, fmt.Errorf("arblist: merging orientations: %w", err)
	}

	stats := ArbStats{
		Clusters:    len(decomp.Clusters),
		HeavyThresh: heavyThr,
		BadThresh:   badThr,
		ClusterThr:  clusterThr,
	}
	cliques := make(graph.CliqueSet)
	var badEdgesAll graph.EdgeList

	// Per-cluster phases run in parallel across clusters in the paper's
	// model, and we simulate them the same way: each cluster is processed
	// on its own host goroutine against a private ledger / clique set /
	// stats census, and the results are folded in cluster order, so the
	// outcome is bit-identical to the sequential loop at any worker count.
	// Every per-cluster phase charges with ChargeMax, so folding the
	// private ledgers with MergeMax reproduces exactly the parallel
	// super-phase bill (max rounds across clusters, messages summed).
	type clusterOut struct {
		bad     graph.EdgeList
		cliques graph.CliqueSet
		stats   ArbStats
		ledger  *congest.Ledger
		err     error
	}
	outs := make([]clusterOut, len(decomp.Clusters))
	var failed atomic.Bool // short-circuits remaining clusters once one errs
	runCluster := func(i int) {
		if failed.Load() {
			return
		}
		out := &outs[i]
		out.cliques = make(graph.CliqueSet)
		out.ledger = &congest.Ledger{}
		out.bad, out.err = processCluster(n, fullGraph, fullOrient, decomp.Clusters[i],
			prm, heavyThr, badThr, cm, out.ledger, out.cliques, &out.stats)
		if out.err != nil {
			failed.Store(true)
		}
	}
	if workers := prm.workers(); workers <= 1 || len(decomp.Clusters) <= 1 {
		for i := range decomp.Clusters {
			runCluster(i)
			if outs[i].err != nil {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range decomp.Clusters {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				runCluster(i)
			}(i)
		}
		wg.Wait()
	}
	// Surface the first (by cluster order) error before folding: once one
	// cluster fails, later clusters may have been skipped entirely and
	// carry no results to merge.
	for i, cl := range decomp.Clusters {
		if outs[i].err != nil {
			return nil, fmt.Errorf("arblist: cluster %d: %w", cl.ID, outs[i].err)
		}
	}
	local := &congest.Ledger{}
	for i := range decomp.Clusters {
		out := &outs[i]
		for key := range out.cliques {
			cliques[key] = struct{}{}
		}
		stats.HeavyNodes += out.stats.HeavyNodes
		stats.LightNodes += out.stats.LightNodes
		stats.BadNodes += out.stats.BadNodes
		if out.stats.MaxLearned > stats.MaxLearned {
			stats.MaxLearned = out.stats.MaxLearned
		}
		local.MergeMax(out.ledger)
		badEdgesAll = append(badEdgesAll, out.bad...)
	}
	if prm.FastK4 {
		// §3: light-incident K4s are listed by the light nodes themselves,
		// sequentially over clusters.
		if err := fastK4LightPass(n, fullGraph, decomp, heavyThr, ledger, cliques); err != nil {
			return nil, fmt.Errorf("arblist: fast-K4 light pass: %w", err)
		}
	}
	ledger.Merge(local)

	badEdgesAll.Normalize()
	emHat := graph.Subtract(decomp.Em, badEdgesAll)
	erHat := graph.Union(decomp.Er, badEdgesAll)
	stats.BadEdges = len(badEdgesAll)
	stats.GoalEdges = len(emHat)

	return &ArbResult{
		Cliques:     cliques,
		EmHat:       emHat,
		EsHat:       esHat,
		EsHatOrient: esHatOrient,
		ErHat:       erHat,
		Stats:       stats,
	}, nil
}

// processCluster runs §2.4.1–§2.4.3 for one cluster: classify outside
// nodes, import heavy out-edges, demote bad-bad edges, learn light-incident
// outside edges (general mode), reshuffle, and list. Returns the bad edges
// (moved to ErHat by the caller).
func processCluster(n int, g *graph.Graph, fullOrient *graph.Orientation, cl *expander.Cluster,
	prm Params, heavyThr, badThr int, cm congest.CostModel, local *congest.Ledger,
	cliques graph.CliqueSet, stats *ArbStats) (graph.EdgeList, error) {

	// Classification (§2.4.1). Every member broadcasts its cluster ID to
	// its outside neighbors: one round; each outside node counts its
	// in-cluster neighbors.
	gvC := make(map[graph.V]int)               // outside node -> #neighbors in C
	clusterNbrs := make(map[graph.V][]graph.V) // outside node -> its members
	var boundaryWords int64
	for _, u := range cl.Nodes {
		for _, x := range g.Neighbors(u) {
			if cl.Contains(x) {
				continue
			}
			gvC[x]++
			clusterNbrs[x] = append(clusterNbrs[x], u)
			boundaryWords++
		}
	}
	local.ChargeMax("arb-classify", 1, boundaryWords)

	heavy := make(map[graph.V]bool, len(gvC))
	var heavies []graph.V
	for x, cnt := range gvC {
		if cnt > heavyThr {
			heavy[x] = true
			heavies = append(heavies, x)
		}
	}
	sort.Slice(heavies, func(i, j int) bool { return heavies[i] < heavies[j] })
	stats.HeavyNodes += len(heavies)
	stats.LightNodes += len(gvC) - len(heavies)

	// Heavy nodes send all their out-edges into the cluster, chunked
	// across their in-cluster neighbors (§2.4.1): rounds = max chunk.
	receivedAt := make(map[graph.V][]graph.Edge)
	var maxChunk, heavyWords int64
	for _, x := range heavies {
		outs := fullOrient.Out(x)
		nbrs := clusterNbrs[x]
		if len(nbrs) == 0 {
			continue
		}
		chunk := congest.CeilDiv(int64(len(outs)), int64(len(nbrs)))
		if chunk > maxChunk {
			maxChunk = chunk
		}
		for i, w := range outs {
			u := nbrs[i%len(nbrs)]
			receivedAt[u] = append(receivedAt[u], graph.Edge{U: x, V: w}.Canon())
			heavyWords++
		}
	}
	local.ChargeMax("arb-heavy-send", maxChunk, heavyWords)

	// Bad nodes and light learning (general mode only; §3 skips both).
	var badEdges graph.EdgeList
	learnedAt := make(map[graph.V][]graph.Edge)
	if !prm.FastK4 {
		lightNbrs := make(map[graph.V][]graph.V, cl.K())
		bad := make(map[graph.V]bool)
		for _, u := range cl.Nodes {
			for _, x := range g.Neighbors(u) {
				if !cl.Contains(x) && !heavy[x] {
					lightNbrs[u] = append(lightNbrs[u], x)
				}
			}
			if len(lightNbrs[u]) > badThr {
				bad[u] = true
			}
		}
		stats.BadNodes += len(bad)
		for _, e := range cl.Edges {
			if bad[e.U] && bad[e.V] {
				badEdges = append(badEdges, e)
			}
		}
		badEdges.Normalize()

		// Good nodes tell every outside neighbor their light list; the
		// neighbor answers which light nodes it is adjacent to. Rounds:
		// 2 · max light-list length (query + reply per boundary edge).
		var maxLights, lightWords int64
		for _, u := range cl.Nodes {
			if bad[u] {
				continue
			}
			lights := lightNbrs[u]
			if len(lights) == 0 {
				continue
			}
			if int64(len(lights)) > maxLights {
				maxLights = int64(len(lights))
			}
			for _, x := range g.Neighbors(u) {
				if cl.Contains(x) {
					continue
				}
				lightWords += 2 * int64(len(lights))
				for _, w := range lights {
					if x != w && g.HasEdge(x, w) {
						learnedAt[u] = append(learnedAt[u], graph.Edge{U: x, V: w}.Canon())
					}
				}
			}
		}
		local.ChargeMax("arb-light-learn", 2*maxLights, lightWords)
	}

	// Reshuffle (§2.4.3): every edge known inside the cluster is routed to
	// the member responsible for the vertex the edge is oriented away from.
	rt := routing.NewRouter(cl, n, cm)
	rs := routing.NewResponsibility(cl, n)
	var envs []routing.Envelope[graph.Edge]
	var maxKnown int64
	addKnown := func(u graph.V, e graph.Edge) {
		tail := fullOrient.Owner(e)
		if tail < 0 {
			tail = e.U
		}
		envs = append(envs, routing.Envelope[graph.Edge]{From: u, To: rs.OwnerOf(tail), Payload: e})
	}
	for _, u := range cl.Nodes {
		var known int64
		for _, w := range g.Neighbors(u) {
			addKnown(u, graph.Edge{U: u, V: w}.Canon())
			known++
		}
		for _, e := range receivedAt[u] {
			addKnown(u, e)
			known++
		}
		for _, e := range learnedAt[u] {
			addKnown(u, e)
			known++
		}
		if known > maxKnown {
			maxKnown = known
		}
	}
	if maxKnown > stats.MaxLearned {
		stats.MaxLearned = maxKnown
	}
	inbox, err := routing.Deliver(rt, local, "arb-reshuffle", envs)
	if err != nil {
		return nil, err
	}
	heldBy := make(map[graph.V]graph.EdgeList, len(inbox))
	for owner, got := range inbox {
		el := make(graph.EdgeList, 0, len(got))
		for _, env := range got {
			el = append(el, env.Payload)
		}
		el.Normalize()
		heldBy[owner] = el
	}

	// Sparsity-aware listing (§2.4.3) over everything the cluster knows.
	res, err := sparselist.InCluster(rt, rs, sparselist.Input{
		N:    n,
		P:    prm.P,
		Seed: prm.Seed ^ int64(cl.ID+1)*0x9E3779B9,
	}, cm, local, heldBy)
	if err != nil {
		return nil, err
	}
	for key := range res.Cliques {
		cliques[key] = struct{}{}
	}
	return badEdges, nil
}

// fastK4LightPass implements the §3 sequential pass: for each cluster, each
// C-light node broadcasts each of its cluster neighbors' IDs to all its
// neighbors, learns which are adjacent, and lists the K4s it sees. Charged
// additively per cluster (the pass is sequential over clusters).
func fastK4LightPass(n int, g *graph.Graph, decomp *expander.Decomposition, heavyThr int,
	ledger *congest.Ledger, cliques graph.CliqueSet) error {
	for _, cl := range decomp.Clusters {
		// Identify light nodes of this cluster.
		gvC := make(map[graph.V][]graph.V)
		for _, u := range cl.Nodes {
			for _, x := range g.Neighbors(u) {
				if !cl.Contains(x) {
					gvC[x] = append(gvC[x], u)
				}
			}
		}
		var maxCn, words int64
		lights := make([]graph.V, 0, len(gvC))
		for x, cn := range gvC {
			if len(cn) <= heavyThr {
				lights = append(lights, x)
				if int64(len(cn)) > maxCn {
					maxCn = int64(len(cn))
				}
			}
		}
		sort.Slice(lights, func(i, j int) bool { return lights[i] < lights[j] })
		for _, x := range lights {
			cn := gvC[x]
			known := make([]graph.Edge, 0, g.Degree(x)+len(cn)*4)
			for _, y := range g.Neighbors(x) {
				known = append(known, graph.Edge{U: x, V: y}.Canon())
			}
			// x broadcasts each cluster neighbor u to every neighbor y;
			// y replies whether u ~ y.
			for _, u := range cn {
				for _, y := range g.Neighbors(x) {
					words += 2
					if y != u && g.HasEdge(u, y) {
						known = append(known, graph.Edge{U: u, V: y}.Canon())
					}
				}
			}
			graph.NewLocalLister(known).AddCliques(4, cliques)
		}
		// Rounds for this cluster: each light node broadcasts |Cn| IDs and
		// receives as many replies per edge, all lights in parallel.
		ledger.Charge("arb-k4-light-list", 2*maxCn, words)
	}
	return nil
}
