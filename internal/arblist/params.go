// Package arblist implements the paper's core machinery: Algorithm
// ARB-LIST (Theorem 2.9) — one expander-decomposition pass that brings all
// relevant outside edges into each cluster (heavy/light/bad-edge
// machinery, §2.4.1–2.4.2) and runs the sparsity-aware lister inside each
// cluster (§2.4.3) — and Algorithm LIST (Theorem 2.8), which iterates
// ARB-LIST until the leftover set Er is exhausted while the sparse set Es
// keeps a certified low-arboricity orientation.
package arblist

import (
	"context"
	"math"
	"runtime"

	"kplist/internal/congest"
)

// Params configures one ARB-LIST / LIST run.
type Params struct {
	// Ctx, when non-nil, is polled between LIST passes so a cancelled run
	// stops within one ARB-LIST round of work. nil means no cancellation.
	Ctx context.Context
	// P is the clique size, ≥ 4 for the general pipeline (the in-cluster
	// lister itself also supports p = 3).
	P int
	// ClusterThreshold is the expander-decomposition peel threshold (the
	// concrete n^δ). 0 derives it from the current arboricity bound per
	// §2.2: threshold = A/(2·log2 n), clamped to ≥ 1.
	ClusterThreshold int
	// HeavyThreshold is the number of in-cluster neighbors above which an
	// outside node is C-heavy. 0 derives ceil(n^{1/4}) (paper, §2.4.1); in
	// FastK4 mode it derives A/ceil(n^{1/3}) (§3).
	HeavyThreshold int
	// BadThreshold is the number of C-light neighbors above which a
	// cluster node is bad. 0 derives the practical ceil(sqrt(n));
	// PaperBadThreshold selects the literal 100·sqrt(n)·log2(n).
	BadThreshold int
	// PaperBadThreshold switches BadThreshold derivation to the paper
	// constant (at practical n this classifies nobody bad, which is
	// faithful: the constants were chosen to make bad nodes negligible).
	PaperBadThreshold bool
	// FastK4 enables the §3 variant: heavy threshold A/n^{1/3}, no bad
	// edges, light-incident outside edges handled by the C-light nodes
	// themselves in a sequential pass over clusters.
	FastK4 bool
	// Seed drives the decomposition spectral starts and the random
	// partitions.
	Seed int64
	// Paranoid enables expensive invariant checking (decomposition Check,
	// partition audits) after every phase.
	Paranoid bool
	// MaxIterations caps LIST's inner loop; 0 means 4·log2(n)+8. If Er is
	// still non-empty at the cap, LIST falls back to broadcast listing of
	// the remainder (charged honestly).
	MaxIterations int
	// Workers bounds the host goroutines used to simulate per-cluster
	// phases, which the paper runs in parallel across clusters. 0 means
	// GOMAXPROCS; 1 forces the fully sequential loop. The output (cliques,
	// edge sets, stats, and ledger bill) is identical for every value:
	// clusters are isolated and their results are merged in cluster order.
	Workers int
}

// workers resolves the cluster-simulation parallelism.
func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// clusterThreshold resolves the peel threshold for an n-vertex graph whose
// current arboricity bound is arb.
func (p Params) clusterThreshold(n, arb int) int {
	if p.ClusterThreshold > 0 {
		return p.ClusterThreshold
	}
	lg := congest.Log2Ceil(n)
	t := arb / int(2*lg)
	if t < 1 {
		t = 1
	}
	return t
}

// heavyThreshold resolves the C-heavy cutoff. arb is the current
// arboricity bound (the paper's n^d).
func (p Params) heavyThreshold(n, arb int) int {
	if p.HeavyThreshold > 0 {
		return p.HeavyThreshold
	}
	if p.FastK4 {
		// §3: threshold n^{d-1/3} = A / n^{1/3}.
		t := int(math.Ceil(float64(arb) / math.Cbrt(float64(n))))
		if t < 1 {
			t = 1
		}
		return t
	}
	t := int(math.Ceil(math.Pow(float64(n), 0.25)))
	if t < 1 {
		t = 1
	}
	return t
}

// badThreshold resolves the bad-node cutoff.
func (p Params) badThreshold(n int) int {
	if p.BadThreshold > 0 {
		return p.BadThreshold
	}
	if p.PaperBadThreshold {
		return int(math.Ceil(100 * math.Sqrt(float64(n)) * float64(congest.Log2Ceil(n))))
	}
	t := int(math.Ceil(math.Sqrt(float64(n))))
	if t < 1 {
		t = 1
	}
	return t
}

// maxIterations resolves LIST's iteration cap.
func (p Params) maxIterations(n int) int {
	if p.MaxIterations > 0 {
		return p.MaxIterations
	}
	return int(4*congest.Log2Ceil(n)) + 8
}
