package store

// The immutable snapshot file: one versioned header, a checksummed
// section table, and flat little-endian int32 arrays laid out 8-byte
// aligned so an mmap-opened file serves them as Go slices without a
// decode pass. Writes are crash-atomic: the file is assembled under a
// temporary name, fsynced, renamed into place, and the directory synced,
// so a reader only ever observes a complete snapshot or none.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot file layout constants.
const (
	snapMagic   = "KPSNAP1\n"
	snapVersion = 1

	// snapFixedHeader is the byte length of the header before the section
	// table: magic(8) + version(4) + sectionCount(4) + N(8) + M(8) +
	// MaxOut(4) + MaxID(4) + Epoch(8) + reserved(8).
	snapFixedHeader = 56
	// snapSectionEntry is the byte length of one section-table entry:
	// name(8) + offset(8) + length(8) + crc(4) + pad(4).
	snapSectionEntry = 32

	// snapMaxSections bounds the section table so a corrupt count cannot
	// drive a huge allocation before the header CRC is checked.
	snapMaxSections = 64
)

// ErrCorruptSnapshot reports a snapshot file that failed structural or
// checksum validation; the file must not be served.
var ErrCorruptSnapshot = errors.New("store: corrupt snapshot")

// Meta is the snapshot's fixed metadata: the graph dimensions the decoded
// sections describe, plus the WAL epoch the snapshot covers through
// (records with sequence ≤ Epoch are already folded in).
type Meta struct {
	N      int64
	M      int64
	MaxOut int32
	MaxID  int32
	Epoch  uint64
}

// Section is one named flat array of a snapshot. Names are at most 8
// bytes; the payload is little-endian int32s.
type Section struct {
	Name string
	Data []int32
}

// WriteSnapshot writes a snapshot file at path atomically (temp file +
// fsync + rename + directory sync). Section names must be unique and at
// most 8 bytes.
func WriteSnapshot(path string, meta Meta, sections []Section) error {
	if len(sections) > snapMaxSections {
		return fmt.Errorf("store: %d sections exceeds the %d limit", len(sections), snapMaxSections)
	}
	seen := make(map[string]bool, len(sections))
	for _, s := range sections {
		if len(s.Name) == 0 || len(s.Name) > 8 {
			return fmt.Errorf("store: bad section name %q (want 1..8 bytes)", s.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("store: duplicate section %q", s.Name)
		}
		seen[s.Name] = true
	}

	headerLen := snapFixedHeader + len(sections)*snapSectionEntry + 4 // + header CRC
	payloadStart := align8(headerLen)
	header := make([]byte, payloadStart)
	copy(header, snapMagic)
	binary.LittleEndian.PutUint32(header[8:], snapVersion)
	binary.LittleEndian.PutUint32(header[12:], uint32(len(sections)))
	binary.LittleEndian.PutUint64(header[16:], uint64(meta.N))
	binary.LittleEndian.PutUint64(header[24:], uint64(meta.M))
	binary.LittleEndian.PutUint32(header[32:], uint32(meta.MaxOut))
	binary.LittleEndian.PutUint32(header[36:], uint32(meta.MaxID))
	binary.LittleEndian.PutUint64(header[40:], meta.Epoch)

	off := int64(payloadStart)
	for i, s := range sections {
		e := header[snapFixedHeader+i*snapSectionEntry:]
		copy(e[:8], s.Name)
		data := bytesFromInt32s(s.Data)
		binary.LittleEndian.PutUint64(e[8:], uint64(off))
		binary.LittleEndian.PutUint64(e[16:], uint64(len(data)))
		binary.LittleEndian.PutUint32(e[24:], crc32.Checksum(data, castagnoli))
		off = align8i64(off + int64(len(data)))
	}
	crcAt := snapFixedHeader + len(sections)*snapSectionEntry
	binary.LittleEndian.PutUint32(header[crcAt:], crc32.Checksum(header[:crcAt], castagnoli))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(header); err != nil {
		return err
	}
	at := int64(payloadStart)
	pad := make([]byte, 8)
	for _, s := range sections {
		data := bytesFromInt32s(s.Data)
		if _, err := tmp.Write(data); err != nil {
			return err
		}
		at += int64(len(data))
		if aligned := align8i64(at); aligned > at {
			if _, err := tmp.Write(pad[:aligned-at]); err != nil {
				return err
			}
			at = aligned
		}
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return syncDir(dir)
}

// Snapshot is an opened (memory-mapped) snapshot file. Sections alias the
// mapping, so they are valid only until Close; callers treat them as
// immutable.
type Snapshot struct {
	meta     Meta
	sections map[string][]int32
	mapped   []byte // nil after Close or when the open fell back to a read
	closed   bool
}

// OpenSnapshot maps the snapshot at path, validates the header and every
// section checksum, and returns it ready to serve sections zero-copy.
func OpenSnapshot(path string) (*Snapshot, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := decodeSnapshot(data)
	if err != nil {
		unmapFile(mapped)
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	snap.mapped = mapped
	return snap, nil
}

// decodeSnapshot validates data as a snapshot image and indexes its
// sections (aliasing data). It is the pure decoding core OpenSnapshot and
// the header fuzz target share.
func decodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < snapFixedHeader+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than a header", ErrCorruptSnapshot, len(data))
	}
	if string(data[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptSnapshot, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != snapVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptSnapshot, v)
	}
	count := int(binary.LittleEndian.Uint32(data[12:]))
	if count < 0 || count > snapMaxSections {
		return nil, fmt.Errorf("%w: section count %d outside [0,%d]", ErrCorruptSnapshot, count, snapMaxSections)
	}
	crcAt := snapFixedHeader + count*snapSectionEntry
	if len(data) < crcAt+4 {
		return nil, fmt.Errorf("%w: truncated section table", ErrCorruptSnapshot)
	}
	if got, want := crc32.Checksum(data[:crcAt], castagnoli), binary.LittleEndian.Uint32(data[crcAt:]); got != want {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrCorruptSnapshot)
	}
	snap := &Snapshot{
		meta: Meta{
			N:      int64(binary.LittleEndian.Uint64(data[16:])),
			M:      int64(binary.LittleEndian.Uint64(data[24:])),
			MaxOut: int32(binary.LittleEndian.Uint32(data[32:])),
			MaxID:  int32(binary.LittleEndian.Uint32(data[36:])),
			Epoch:  binary.LittleEndian.Uint64(data[40:]),
		},
		sections: make(map[string][]int32, count),
	}
	if snap.meta.N < 0 || snap.meta.M < 0 {
		return nil, fmt.Errorf("%w: negative dimensions n=%d m=%d", ErrCorruptSnapshot, snap.meta.N, snap.meta.M)
	}
	for i := 0; i < count; i++ {
		e := data[snapFixedHeader+i*snapSectionEntry:]
		name := sectionName(e[:8])
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		crc := binary.LittleEndian.Uint32(e[24:])
		if name == "" {
			return nil, fmt.Errorf("%w: empty section name in entry %d", ErrCorruptSnapshot, i)
		}
		if _, dup := snap.sections[name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorruptSnapshot, name)
		}
		if off%8 != 0 || length%4 != 0 || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %q range [%d,+%d) outside %d-byte file",
				ErrCorruptSnapshot, name, off, length, len(data))
		}
		payload := data[off : off+length]
		if got := crc32.Checksum(payload, castagnoli); got != crc {
			return nil, fmt.Errorf("%w: section %q checksum mismatch", ErrCorruptSnapshot, name)
		}
		snap.sections[name] = int32sFromBytes(payload)
	}
	return snap, nil
}

// Meta returns the snapshot metadata.
func (s *Snapshot) Meta() Meta { return s.meta }

// Int32s returns the named section. The slice aliases the mapping (on
// little-endian hosts) and must not be modified or retained past Close.
func (s *Snapshot) Int32s(name string) ([]int32, error) {
	sec, ok := s.sections[name]
	if !ok {
		return nil, fmt.Errorf("%w: missing section %q", ErrCorruptSnapshot, name)
	}
	return sec, nil
}

// Close unmaps the file. Every section slice obtained from the snapshot
// is invalid afterwards.
func (s *Snapshot) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.sections = nil
	m := s.mapped
	s.mapped = nil
	return unmapFile(m)
}

func sectionName(b []byte) string {
	n := len(b)
	for n > 0 && b[n-1] == 0 {
		n--
	}
	return string(b[:n])
}

func align8(n int) int        { return (n + 7) &^ 7 }
func align8i64(n int64) int64 { return (n + 7) &^ 7 }

// syncDir fsyncs a directory so a just-renamed file survives a crash.
// Filesystems that refuse to sync directories are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync() // best-effort: some filesystems reject directory fsync
	return nil
}
