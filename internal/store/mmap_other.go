//go:build !unix

package store

import "os"

// mapFile on platforms without mmap reads the whole file; sections are
// then served from the heap copy (still zero further decoding).
func mapFile(path string) (data, mapped []byte, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return b, nil, nil
}

func unmapFile([]byte) error { return nil }
