package store

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testSections() (Meta, []Section) {
	meta := Meta{N: 4, M: 3, MaxOut: 2, MaxID: 3, Epoch: 7}
	sections := []Section{
		{Name: "adjoff", Data: []int32{0, 2, 4, 5, 6}},
		{Name: "adjhead", Data: []int32{1, 2, 0, 3, 0, 1}},
		{Name: "empty", Data: nil},
	}
	return meta, sections
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.kpsnap")
	meta, sections := testSections()
	if err := WriteSnapshot(path, meta, sections); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	defer snap.Close()
	if got := snap.Meta(); got != meta {
		t.Errorf("meta round trip: got %+v want %+v", got, meta)
	}
	for _, s := range sections {
		got, err := snap.Int32s(s.Name)
		if err != nil {
			t.Fatalf("Int32s(%q): %v", s.Name, err)
		}
		if len(got) != len(s.Data) {
			t.Fatalf("section %q: got %d ints, want %d", s.Name, len(got), len(s.Data))
		}
		for i := range got {
			if got[i] != s.Data[i] {
				t.Errorf("section %q[%d]: got %d want %d", s.Name, i, got[i], s.Data[i])
			}
		}
	}
	if _, err := snap.Int32s("nosuch"); !errors.Is(err, ErrCorruptSnapshot) {
		t.Errorf("missing section: got %v, want ErrCorruptSnapshot", err)
	}
}

func TestSnapshotWriteValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.kpsnap")
	if err := WriteSnapshot(path, Meta{}, []Section{{Name: "ninecharss"}}); err == nil {
		t.Error("9-byte section name accepted")
	}
	if err := WriteSnapshot(path, Meta{}, []Section{{Name: ""}}); err == nil {
		t.Error("empty section name accepted")
	}
	if err := WriteSnapshot(path, Meta{}, []Section{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate section name accepted")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("rejected write left a file behind: %v", err)
	}
}

// Every single-bit flip in a meaningful byte must be detected: the
// header and each section are independently checksummed and
// bounds-checked. Only 8-byte-alignment padding (never read back) is
// outside checksum coverage.
func TestSnapshotBitFlipsDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.kpsnap")
	meta, sections := testSections()
	if err := WriteSnapshot(path, meta, sections); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Coverage map: the checksummed header (incl. its CRC) plus each
	// section's payload range, straight from the section table.
	covered := make([]bool, len(orig))
	crcAt := snapFixedHeader + len(sections)*snapSectionEntry
	for i := 0; i < crcAt+4; i++ {
		covered[i] = true
	}
	for i := range sections {
		e := orig[snapFixedHeader+i*snapSectionEntry:]
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		for j := off; j < off+length; j++ {
			covered[j] = true
		}
	}
	for byteAt := 0; byteAt < len(orig); byteAt++ {
		if !covered[byteAt] {
			continue
		}
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), orig...)
			mut[byteAt] ^= 1 << bit
			snap, err := decodeSnapshot(mut)
			if err == nil {
				snap.Close()
				t.Fatalf("bit flip at byte %d bit %d went undetected", byteAt, bit)
			}
		}
	}
}

func TestSnapshotTruncations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.kpsnap")
	meta, sections := testSections()
	if err := WriteSnapshot(path, meta, sections); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(orig); n++ {
		if snap, err := decodeSnapshot(orig[:n]); err == nil {
			snap.Close()
			t.Fatalf("truncation to %d of %d bytes went undetected", n, len(orig))
		}
	}
}

func TestSnapshotOverwriteAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.kpsnap")
	meta, sections := testSections()
	if err := WriteSnapshot(path, meta, sections); err != nil {
		t.Fatal(err)
	}
	meta.Epoch = 99
	if err := WriteSnapshot(path, meta, sections); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	snap, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("OpenSnapshot after overwrite: %v", err)
	}
	defer snap.Close()
	if snap.Meta().Epoch != 99 {
		t.Errorf("epoch after overwrite: got %d want 99", snap.Meta().Epoch)
	}
	// The temp file must not linger.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries after overwrite, want 1", len(entries))
	}
}

func TestInt32sBytesRoundTrip(t *testing.T) {
	in := []int32{0, 1, -1, 1 << 30, -(1 << 30), 123456789}
	out := int32sFromBytes(bytesFromInt32s(in))
	if len(out) != len(in) {
		t.Fatalf("length: got %d want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("[%d]: got %d want %d", i, out[i], in[i])
		}
	}
	if got := int32sFromBytes(nil); len(got) != 0 {
		t.Errorf("nil bytes: got %d ints", len(got))
	}
}
