package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpenWAL(t *testing.T, path string) (*WAL, ScanResult) {
	t.Helper()
	w, res, err := OpenWAL(path, true)
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", path, err)
	}
	return w, res
}

func TestWALAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, res := mustOpenWAL(t, path)
	if len(res.Records) != 0 || res.Torn || res.Corrupt {
		t.Fatalf("fresh log scan: %+v", res)
	}
	payloads := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma-longer-payload")}
	for i, p := range payloads {
		seq, err := w.Append(p)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want {
			t.Errorf("Append %d: seq %d, want %d", i, seq, want)
		}
	}
	if w.Records() != 3 || w.LastSeq() != 3 {
		t.Errorf("after appends: records=%d lastSeq=%d", w.Records(), w.LastSeq())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, res2 := mustOpenWAL(t, path)
	defer w2.Close()
	if res2.Torn || res2.Corrupt {
		t.Errorf("clean reopen flagged torn=%v corrupt=%v", res2.Torn, res2.Corrupt)
	}
	if len(res2.Records) != len(payloads) {
		t.Fatalf("reopen recovered %d records, want %d", len(res2.Records), len(payloads))
	}
	for i, rec := range res2.Records {
		if rec.Seq != uint64(i+1) || !bytes.Equal(rec.Payload, payloads[i]) {
			t.Errorf("record %d: seq=%d payload=%q", i, rec.Seq, rec.Payload)
		}
	}
	if seq, err := w2.Append([]byte("delta")); err != nil || seq != 4 {
		t.Errorf("append after reopen: seq=%d err=%v, want 4", seq, err)
	}
}

// A torn tail — any strict prefix of the final frame — must recover every
// earlier record and position the log so the next append reuses the torn
// record's sequence number.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _ := mustOpenWAL(t, path)
	if _, err := w.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	keep := w.Size()
	if _, err := w.Append([]byte("third-to-be-torn")); err != nil {
		t.Fatal(err)
	}
	full := w.Size()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := keep + 1; cut < full; cut++ {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.log", cut))
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tw, res := mustOpenWAL(t, torn)
		if !res.Torn || res.Corrupt {
			t.Errorf("cut=%d: torn=%v corrupt=%v, want torn only", cut, res.Torn, res.Corrupt)
		}
		if len(res.Records) != 2 {
			t.Fatalf("cut=%d: recovered %d records, want 2", cut, len(res.Records))
		}
		if tw.Size() != keep {
			t.Errorf("cut=%d: size after truncate %d, want %d", cut, tw.Size(), keep)
		}
		if seq, err := tw.Append([]byte("replacement")); err != nil || seq != 3 {
			t.Errorf("cut=%d: append after truncate seq=%d err=%v, want 3", cut, seq, err)
		}
		tw.Close()
	}
}

// An fsync failure must leave no trace of the unacknowledged frame:
// were it left on disk, the next successful append would write a
// duplicate sequence number after it, and the recovery scan's
// monotonicity check would truncate the later, acknowledged batch.
func TestWALAppendSyncFailureRollsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	committed := w.Size()
	realSync := w.sync
	w.sync = func() error { return errors.New("injected fsync failure") }
	if _, err := w.Append([]byte("never-acked")); err == nil {
		t.Fatal("append with failing fsync reported success")
	}
	if w.Size() != committed || w.LastSeq() != 1 || w.Records() != 1 {
		t.Errorf("after failed append: size=%d lastSeq=%d records=%d, want size=%d lastSeq=1 records=1",
			w.Size(), w.LastSeq(), w.Records(), committed)
	}
	w.sync = realSync
	if seq, err := w.Append([]byte("second")); err != nil || seq != 2 {
		t.Fatalf("append after transient fsync failure: seq=%d err=%v, want 2", seq, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, res := mustOpenWAL(t, path)
	defer w2.Close()
	if res.Torn || res.Corrupt {
		t.Errorf("reopen flagged torn=%v corrupt=%v after a rolled-back fsync failure", res.Torn, res.Corrupt)
	}
	if len(res.Records) != 2 ||
		!bytes.Equal(res.Records[0].Payload, []byte("committed")) ||
		!bytes.Equal(res.Records[1].Payload, []byte("second")) {
		t.Errorf("recovered %d records, want the two acknowledged payloads", len(res.Records))
	}
}

func TestWALCorruptRecordEndsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := mustOpenWAL(t, path)
	if _, err := w.Append([]byte("keep-me")); err != nil {
		t.Fatal(err)
	}
	boundary := w.Size()
	if _, err := w.Append([]byte("corrupt-me")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[boundary+walFrameHeader] ^= 0x40 // flip a payload bit in record 2
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, res := mustOpenWAL(t, path)
	defer w2.Close()
	if !res.Corrupt {
		t.Error("bit-flipped record not flagged corrupt")
	}
	if len(res.Records) != 1 || !bytes.Equal(res.Records[0].Payload, []byte("keep-me")) {
		t.Errorf("recovered %d records", len(res.Records))
	}
	if w2.Size() != boundary {
		t.Errorf("size %d after corrupt truncate, want %d", w2.Size(), boundary)
	}
}

func TestWALBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("NOTAWAL!extra"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path, true); !errors.Is(err, ErrCorruptWAL) {
		t.Errorf("bad magic: got %v, want ErrCorruptWAL", err)
	}
}

func TestWALResetAndAdvanceSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := mustOpenWAL(t, path)
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 {
		t.Errorf("records after reset: %d", w.Records())
	}
	// Sequence numbers keep counting past the reset within one process...
	if seq, err := w.Append([]byte("y")); err != nil || seq != 6 {
		t.Errorf("append after reset: seq=%d err=%v, want 6", seq, err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// ...and across a restart the snapshot epoch restores the floor.
	w2, res := mustOpenWAL(t, path)
	defer w2.Close()
	if len(res.Records) != 0 {
		t.Fatalf("reopen after reset recovered %d records", len(res.Records))
	}
	w2.AdvanceSeq(6) // the compacted snapshot's epoch
	if seq, err := w2.Append([]byte("z")); err != nil || seq != 7 {
		t.Errorf("append after AdvanceSeq: seq=%d err=%v, want 7", seq, err)
	}
	w2.AdvanceSeq(3) // never lowers the floor
	if w2.LastSeq() != 7 {
		t.Errorf("AdvanceSeq lowered lastSeq to %d", w2.LastSeq())
	}
}

func TestScanRecordsRejectsNonIncreasingSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := mustOpenWAL(t, path)
	if _, err := w.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	one := w.Size() - int64(len(walMagic))
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the frame: same seq twice must flag corruption.
	frame := data[len(walMagic) : int64(len(walMagic))+one]
	res, err := ScanRecords(append(data, frame...))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Corrupt || len(res.Records) != 1 {
		t.Errorf("duplicated seq: corrupt=%v records=%d, want corrupt with 1 record", res.Corrupt, len(res.Records))
	}
}

// TestWALSyncedLifecycle runs the WAL with per-append fsync enabled (the
// production configuration) end to end: creation syncs the header,
// appends sync each frame, Reset syncs the truncation, and the explicit
// Sync flush succeeds.
func TestWALSyncedLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "synced.wal")
	w, res, err := OpenWAL(path, false)
	if err != nil {
		t.Fatalf("OpenWAL synced: %v", err)
	}
	if len(res.Records) != 0 || res.Torn || res.Corrupt {
		t.Fatalf("fresh synced WAL scan: %+v", res)
	}
	if _, err := w.Append([]byte("batch-1")); err != nil {
		t.Fatalf("synced append: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("explicit sync: %v", err)
	}
	if err := w.Reset(); err != nil {
		t.Fatalf("synced reset: %v", err)
	}
	if w.Records() != 0 || w.Size() != int64(len(walMagic)) {
		t.Fatalf("after reset: records=%d size=%d", w.Records(), w.Size())
	}
	// Sequence numbers survive the reset.
	if seq, err := w.Append([]byte("batch-2")); err != nil || seq != 2 {
		t.Fatalf("post-reset append: seq=%d err=%v", seq, err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, res2, err := OpenWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Records) != 1 || res2.Records[0].Seq != 2 {
		t.Fatalf("reopen after synced lifecycle: %+v", res2)
	}
}

// TestWALFailedRollbackPoisonsLog closes the file out from under the WAL
// so an append's write fails AND the rollback's truncate fails: the log
// must mark itself unusable and refuse every later append rather than
// acknowledge writes past a stale frame.
func TestWALFailedRollbackPoisonsLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "poison.wal")
	w, _ := mustOpenWAL(t, path)
	if _, err := w.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	w.f.Close() // sabotage: write and truncate now both fail
	if _, err := w.Append([]byte("doomed")); err == nil {
		t.Fatal("append on closed file succeeded")
	}
	if !w.failed {
		t.Fatal("failed rollback did not poison the log")
	}
	if _, err := w.Append([]byte("after")); err == nil || !strings.Contains(err.Error(), "unusable") {
		t.Fatalf("poisoned log accepted an append: %v", err)
	}
}
