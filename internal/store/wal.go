package store

// The write-ahead log: an append-only file of length-prefixed, CRC-32C'd
// records, one per committed mutation batch. Appends are fsynced before
// they return (one fsync per batch — the batching is the record), so an
// acknowledged batch survives a crash; a torn tail from an interrupted
// append is detected by the framing and truncated on the next open, so
// batches are atomic: fully replayed or fully absent. Records carry a
// monotone sequence number, letting recovery skip records a snapshot has
// already folded in without ever truncating concurrently with a snapshot
// write.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

const (
	walMagic = "KPWAL1\n\x00"
	// walFrameHeader is the per-record framing: payload length u32 +
	// CRC-32C u32 (over seq+payload) + sequence u64.
	walFrameHeader = 16
	// walMaxRecord bounds one record's payload so a corrupt length field
	// cannot drive an absurd allocation during a scan.
	walMaxRecord = 1 << 28
)

// ErrCorruptWAL reports WAL bytes that fail validation before the tail —
// a mid-log corruption, not a torn final append.
var ErrCorruptWAL = errors.New("store: corrupt WAL")

// Record is one decoded WAL record.
type Record struct {
	Seq     uint64
	Payload []byte
}

// ScanResult describes one pass over a WAL image.
type ScanResult struct {
	Records []Record
	// Valid is the byte length of the well-formed prefix (including the
	// file header); everything beyond it is a torn or corrupt tail.
	Valid int64
	// Torn reports a trailing partial frame (a crashed append); Corrupt a
	// structurally complete record that failed its checksum or bounds.
	// Both end the scan at Valid.
	Torn, Corrupt bool
}

// ScanRecords decodes a WAL image (header included). It never panics:
// malformed input ends the scan with Torn or Corrupt set and Valid
// marking the last trustworthy byte. Payload slices alias data.
func ScanRecords(data []byte) (ScanResult, error) {
	var res ScanResult
	if len(data) < len(walMagic) {
		res.Torn = len(data) > 0
		return res, nil
	}
	if string(data[:len(walMagic)]) != walMagic {
		return res, fmt.Errorf("%w: bad magic %q", ErrCorruptWAL, data[:len(walMagic)])
	}
	off := int64(len(walMagic))
	res.Valid = off
	var lastSeq uint64
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return res, nil
		}
		if len(rest) < walFrameHeader {
			res.Torn = true
			return res, nil
		}
		plen := binary.LittleEndian.Uint32(rest)
		crc := binary.LittleEndian.Uint32(rest[4:])
		if plen > walMaxRecord {
			res.Corrupt = true
			return res, nil
		}
		frame := walFrameHeader + int(plen)
		if len(rest) < frame {
			res.Torn = true
			return res, nil
		}
		body := rest[8:frame] // seq + payload, the checksummed region
		if crc32.Checksum(body, castagnoli) != crc {
			res.Corrupt = true
			return res, nil
		}
		seq := binary.LittleEndian.Uint64(body)
		if seq <= lastSeq {
			// Sequence numbers are strictly increasing; a repeat means the
			// frame decoded "validly" out of garbage.
			res.Corrupt = true
			return res, nil
		}
		lastSeq = seq
		res.Records = append(res.Records, Record{Seq: seq, Payload: body[8:]})
		off += int64(frame)
		res.Valid = off
	}
}

// WAL is an open write-ahead log. Appends serialize on the caller (the
// mutation path is already serialized per graph); the WAL itself adds no
// locking.
type WAL struct {
	f       *os.File
	path    string
	noSync  bool
	failed  bool // a rollback could not restore the committed prefix
	size    int64
	lastSeq uint64
	records int64
	sync    func() error // fsync; a test seam for injecting sync failures
}

// OpenWAL opens (creating if absent) the WAL at path, scans it, truncates
// any torn or corrupt tail, and returns the log positioned for appends
// plus the surviving records. noSync disables the per-append fsync (tests
// and benchmarks only). Record payloads are copies, safe to retain.
func OpenWAL(path string, noSync bool) (*WAL, ScanResult, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, ScanResult{}, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, ScanResult{}, err
	}
	if len(data) == 0 {
		if _, err := f.Write([]byte(walMagic)); err != nil {
			f.Close()
			return nil, ScanResult{}, err
		}
		if !noSync {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, ScanResult{}, err
			}
		}
		data = []byte(walMagic)
	}
	res, err := ScanRecords(data)
	if err != nil {
		f.Close()
		return nil, res, err
	}
	for i := range res.Records {
		res.Records[i].Payload = append([]byte(nil), res.Records[i].Payload...)
	}
	if res.Valid < int64(len(data)) {
		if err := f.Truncate(res.Valid); err != nil {
			f.Close()
			return nil, res, err
		}
	}
	if _, err := f.Seek(res.Valid, io.SeekStart); err != nil {
		f.Close()
		return nil, res, err
	}
	w := &WAL{f: f, path: path, noSync: noSync, size: res.Valid, records: int64(len(res.Records))}
	w.sync = f.Sync
	if n := len(res.Records); n > 0 {
		w.lastSeq = res.Records[n-1].Seq
	}
	return w, res, nil
}

// Append writes one record with the next sequence number and fsyncs
// before returning (unless the log was opened noSync). On a write or
// fsync error the file is truncated back to the last committed record so
// the log never carries an unacknowledged tail: were a failed-fsync
// frame left behind, the next successful Append would reuse its sequence
// number after it, and the recovery scan's monotonicity check would
// truncate the later, acknowledged batch. If the rollback itself fails,
// the WAL refuses every further append — acknowledging writes past an
// unremovable stale frame would corrupt the log.
func (w *WAL) Append(payload []byte) (seq uint64, err error) {
	if w.failed {
		return 0, fmt.Errorf("store: WAL %s unusable after a failed rollback", w.path)
	}
	seq = w.lastSeq + 1
	frame := make([]byte, walFrameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint64(frame[8:], seq)
	copy(frame[walFrameHeader:], payload)
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(frame[8:], castagnoli))
	if _, err := w.f.Write(frame); err != nil {
		w.rollback()
		return 0, err
	}
	if !w.noSync {
		if err := w.sync(); err != nil {
			w.rollback()
			return 0, err
		}
	}
	w.size += int64(len(frame))
	w.lastSeq = seq
	w.records++
	return seq, nil
}

// rollback rewinds the file to the last committed byte after a failed
// append, marking the log unusable if the rewind itself fails.
func (w *WAL) rollback() {
	if err := w.f.Truncate(w.size); err != nil {
		w.failed = true
		return
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		w.failed = true
	}
}

// LastSeq returns the sequence number of the most recent record (0 when
// the log is empty).
func (w *WAL) LastSeq() uint64 { return w.lastSeq }

// AdvanceSeq raises the sequence floor so future appends number after
// seq. Recovery calls it with the snapshot epoch: a log emptied by Reset
// must not reissue sequence numbers the snapshot already covers, or
// replay would skip fresh records.
func (w *WAL) AdvanceSeq(seq uint64) {
	if seq > w.lastSeq {
		w.lastSeq = seq
	}
}

// Records returns how many records the log currently holds.
func (w *WAL) Records() int64 { return w.records }

// Size returns the log's byte length.
func (w *WAL) Size() int64 { return w.size }

// Reset truncates the log back to its header — called after a snapshot
// has folded every record in. Sequence numbers keep counting from where
// they were, so a crash between the snapshot rename and the reset is
// harmless: recovery skips records at or below the snapshot epoch.
func (w *WAL) Reset() error {
	base := int64(len(walMagic))
	if err := w.f.Truncate(base); err != nil {
		return err
	}
	if _, err := w.f.Seek(base, io.SeekStart); err != nil {
		return err
	}
	if !w.noSync {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	w.size = base
	w.records = 0
	return nil
}

// Sync forces an fsync — the graceful-shutdown flush for noSync logs.
func (w *WAL) Sync() error { return w.f.Sync() }

// Close syncs and closes the log.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
