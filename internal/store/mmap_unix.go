//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only. It returns the file contents and the
// mapping to hand back to unmapFile; an empty file maps to (nil, nil).
func mapFile(path string) (data, mapped []byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("store: %s: %d bytes exceeds the address space", path, size)
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	return m, m, nil
}

// unmapFile releases a mapping returned by mapFile (nil is a no-op).
func unmapFile(mapped []byte) error {
	if mapped == nil {
		return nil
	}
	return syscall.Munmap(mapped)
}
