package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// fuzzWALImage builds a valid WAL image with the given payloads, for
// seeding the corpus.
func fuzzWALImage(payloads ...[]byte) []byte {
	img := []byte(walMagic)
	for i, p := range payloads {
		frame := make([]byte, walFrameHeader+len(p))
		binary.LittleEndian.PutUint32(frame, uint32(len(p)))
		binary.LittleEndian.PutUint64(frame[8:], uint64(i+1))
		copy(frame[walFrameHeader:], p)
		binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(frame[8:], castagnoli))
		img = append(img, frame...)
	}
	return img
}

// FuzzWALDecode drives ScanRecords with arbitrary bytes: it must never
// panic, and whatever it accepts must be internally consistent — records
// within the valid prefix, strictly increasing sequence numbers, and a
// re-scan of the valid prefix reproducing exactly the same records
// (decode is deterministic and truncation-stable).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add(fuzzWALImage([]byte("hello")))
	f.Add(fuzzWALImage([]byte("a"), []byte(""), bytes.Repeat([]byte("b"), 100)))
	f.Add(fuzzWALImage([]byte("torn"))[:len(walMagic)+5])
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := ScanRecords(data)
		if err != nil {
			return // rejected outright (bad magic) — fine
		}
		if res.Valid < 0 || res.Valid > int64(len(data)) {
			t.Fatalf("Valid=%d outside [0,%d]", res.Valid, len(data))
		}
		var last uint64
		for i, rec := range res.Records {
			if rec.Seq <= last {
				t.Fatalf("record %d: seq %d not above %d", i, rec.Seq, last)
			}
			last = rec.Seq
		}
		// Re-scanning the valid prefix must yield the same records and no
		// torn/corrupt flags: truncating at Valid is a safe recovery.
		if res.Valid >= int64(len(walMagic)) {
			again, err := ScanRecords(data[:res.Valid])
			if err != nil {
				t.Fatalf("re-scan of valid prefix errored: %v", err)
			}
			if again.Torn || again.Corrupt {
				t.Fatalf("valid prefix re-scan flagged torn=%v corrupt=%v", again.Torn, again.Corrupt)
			}
			if len(again.Records) != len(res.Records) {
				t.Fatalf("re-scan: %d records, first scan %d", len(again.Records), len(res.Records))
			}
			for i := range again.Records {
				if again.Records[i].Seq != res.Records[i].Seq ||
					!bytes.Equal(again.Records[i].Payload, res.Records[i].Payload) {
					t.Fatalf("re-scan record %d differs", i)
				}
			}
		}
	})
}

// FuzzSnapshotHeader drives the snapshot decoder with arbitrary bytes:
// it must never panic and never accept an image whose sections escape
// the file bounds.
func FuzzSnapshotHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapMagic))
	// A small valid snapshot as a seed so mutations explore the
	// accept/reject boundary.
	img := validSnapshotImage(f)
	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		for name := range snap.sections {
			if _, err := snap.Int32s(name); err != nil {
				t.Fatalf("accepted snapshot cannot serve section %q: %v", name, err)
			}
		}
		snap.Close()
	})
}

func validSnapshotImage(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	path := dir + "/seed.kpsnap"
	err := WriteSnapshot(path, Meta{N: 3, M: 2, MaxOut: 1, MaxID: 2, Epoch: 1}, []Section{
		{Name: "adjoff", Data: []int32{0, 1, 3, 4}},
		{Name: "adjhead", Data: []int32{1, 0, 2, 1}},
	})
	if err != nil {
		f.Fatal(err)
	}
	data, mapped, err := mapFile(path)
	if err != nil {
		f.Fatal(err)
	}
	img := append([]byte(nil), data...)
	unmapFile(mapped)
	return img
}
