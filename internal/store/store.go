// Package store is the durable storage backend behind the graph layers:
// immutable snapshot files holding the flat little-endian CSR arrays the
// enumeration kernel runs on (versioned header, per-section checksums,
// memory-mapped on open so a reloaded graph serves listing queries
// directly off disk), and a length-prefixed CRC'd write-ahead log for
// mutation batches with fsync-on-commit and torn-tail recovery. The
// package is deliberately ignorant of graph semantics — it moves named
// int32 sections and opaque record payloads; internal/graph owns the
// encoding of adjacency and kernel CSR into them. See DESIGN.md §10 for
// the file formats and the recovery sequence.
package store

import (
	"encoding/binary"
	"hash/crc32"
	"unsafe"
)

// castagnoli is the CRC-32C table every checksum in the package uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian reports whether the host lays out integers little-
// endian — the file format's byte order — so sections can be served
// zero-copy straight out of the mapping. Big-endian hosts fall back to a
// decoded copy.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// int32sFromBytes interprets b (little-endian int32 payload, 4-byte
// aligned length) as an []int32: an aliasing cast on little-endian hosts,
// a decoded copy otherwise.
func int32sFromBytes(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// bytesFromInt32s returns the little-endian byte image of s. On little-
// endian hosts it aliases s; callers must treat the result as read-only
// and must not retain it past s.
func bytesFromInt32s(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
	}
	out := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}
