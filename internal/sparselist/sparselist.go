// Package sparselist implements the paper's sparsity-aware Kp-listing
// algorithm (§2.4.3), in both of its roles:
//
//   - standalone in the CONGESTED CLIQUE model (Theorem 1.3:
//     Θ̃(1 + m/n^{1+2/p}) rounds for all p ≥ 3), and
//   - as the in-cluster listing step of ARB-LIST, where a cluster of k
//     nodes lists every Kp among the edges it has learned, paying
//     Theorem 2.4 routing inside the cluster.
//
// Mechanics (both modes): partition the vertex set into t parts (t = k^{1/p});
// assign each listing node a p-tuple of parts via the radix representation
// of its ID; deliver every known edge to each node whose tuple contains the
// parts of both endpoints; each node lists the p-cliques it sees. Lemma 2.7
// bounds the number of edges between any two parts, which bounds per-node
// receive load and hence rounds.
package sparselist

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"kplist/internal/congest"
	"kplist/internal/graph"
	"kplist/internal/partition"
	"kplist/internal/routing"
)

// Input is the listing problem handed to the sparsity-aware algorithm.
type Input struct {
	// Ctx, when non-nil, is polled at the phase boundaries of the
	// standalone congested-clique run (before orientation, after the
	// partition, before the listing step) so a cancelled run stops within
	// one phase of work. nil means no cancellation.
	Ctx context.Context
	// N is the number of vertices in the underlying graph (part choices
	// are drawn for every vertex).
	N int
	// P is the clique size, ≥ 3.
	P int
	// Edges is the edge universe to list cliques in.
	Edges graph.EdgeList
	// Orient assigns each edge to the listing node hosting its tail; nil
	// means a degeneracy orientation of Edges is computed (standalone CC
	// mode, where every vertex is a listing node).
	Orient *graph.Orientation
	// Seed drives the random partition.
	Seed int64
	// Workers bounds the host goroutines the local listing step spreads
	// over (the paper's listing nodes work in parallel). 0 means
	// GOMAXPROCS, 1 forces the sequential loop; the output and the bill
	// are identical for every value.
	Workers int
}

// workers resolves the host parallelism of the listing step.
func (in Input) workers() int {
	if in.Workers > 0 {
		return in.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result carries the listed cliques and the load statistics the cost model
// charged for.
type Result struct {
	Cliques graph.CliqueSet
	// MaxNodeLoad is the busiest node's sent+received word count.
	MaxNodeLoad int64
	// TotalMessages is the total number of edge-words delivered.
	TotalMessages int64
	// Parts is the number of parts t used.
	Parts int
	// MaxPairEdges is the largest number of edges between any two parts
	// (the Lemma 2.7 quantity).
	MaxPairEdges int64
}

// CongestedClique runs Theorem 1.3 on an n-node congested clique: all n
// vertices are listing nodes, each initially knowing its incident edges,
// and the bill is ceil(maxLoad/(n-1)) rounds charged to the ledger.
//
// When padToLemma27 is set and the graph is too sparse for Lemma 2.7's
// hypotheses, fake edges are added (marked, never listed) until
// m/n^{1/p} = 20·n·log n, exactly as §4 prescribes; this only affects the
// bill, never the output.
func CongestedClique(in Input, padToLemma27 bool, cm congest.CostModel, ledger *congest.Ledger) (*Result, error) {
	if in.P < 3 {
		return nil, fmt.Errorf("sparselist: p=%d < 3", in.P)
	}
	if in.N < 1 {
		return nil, fmt.Errorf("sparselist: empty graph")
	}
	k := in.N
	t := partition.PartsForListing(k, in.P)
	rng := rand.New(rand.NewSource(in.Seed))

	if err := congest.CtxErr(in.Ctx); err != nil {
		return nil, err
	}
	orient := in.Orient
	if orient == nil {
		g, err := in.Edges.Graph(in.N)
		if err != nil {
			return nil, fmt.Errorf("sparselist: %w", err)
		}
		orient = g.DegeneracyOrientation()
	}

	edges := in.Edges
	realCount := len(edges)
	if padToLemma27 {
		edges = padFakeEdges(in.N, in.P, edges, rng)
	}

	part := partition.Random(in.N, t, rng)
	asg, err := partition.NewAssignment(k, t, in.P)
	if err != nil {
		return nil, fmt.Errorf("sparselist: %w", err)
	}

	if err := congest.CtxErr(in.Ctx); err != nil {
		return nil, err
	}
	res, err := runListing(in.P, edges[:realCount], edges[realCount:], part, asg,
		func(e graph.Edge) int32 {
			// In the congested clique, the listing node hosting an edge is
			// its tail vertex itself (every vertex is a listing node, with
			// new ID = vertex ID).
			owner := orient.Owner(e)
			if owner < 0 {
				owner = e.U
			}
			return int32(owner)
		}, in.workers())
	if err != nil {
		return nil, err
	}
	rounds := cm.CliqueRounds(k, res.MaxNodeLoad)
	ledger.Charge("congested-clique-listing", rounds, res.TotalMessages)
	res.Parts = t
	return res, nil
}

// InCluster runs the §2.4.3 step inside one cluster: heldBy maps each
// cluster member (by original vertex ID) to the edges it is responsible
// for after the reshuffle (grouped by simulated tail vertex). The router
// charges Theorem 2.4 bills for the partition broadcast and the delivery.
func InCluster(rt *routing.Router, rs *routing.Responsibility, in Input, cm congest.CostModel, ledger *congest.Ledger, heldBy map[graph.V]graph.EdgeList) (*Result, error) {
	if in.P < 3 {
		return nil, fmt.Errorf("sparselist: p=%d < 3", in.P)
	}
	cl := rt.Cluster()
	k := cl.K()
	t := partition.PartsForListing(k, in.P)
	rng := rand.New(rand.NewSource(in.Seed))
	part := partition.Random(in.N, t, rng)
	asg, err := partition.NewAssignment(k, t, in.P)
	if err != nil {
		return nil, fmt.Errorf("sparselist: %w", err)
	}

	// Phase: broadcast part choices. Every node draws the choices for the
	// O(n/k) vertices it simulates and broadcasts them to all k members:
	// each member sends and receives O(n) words (§2.4.3 charges Õ(n^{1−δ})
	// rounds via Theorem 2.4).
	sent := make(map[graph.V]int64, k)
	recv := make(map[graph.V]int64, k)
	for i := 0; i < k; i++ {
		lo, hi := rs.Range(i)
		member := cl.ByNewID(i)
		sent[member] = int64(hi-lo) * int64(k-1)
		recv[member] = int64(in.N) - int64(hi-lo)
	}
	if err := rt.ChargeLoads(ledger, "cluster-partition-broadcast", sent, recv); err != nil {
		return nil, err
	}

	// Validate holders and flatten the held edges; ownership for delivery
	// accounting is the holder's new ID.
	ownerOf := make(map[graph.Edge]int32)
	var all graph.EdgeList
	for member, el := range heldBy {
		id := cl.NewID(member)
		if id < 0 {
			return nil, fmt.Errorf("sparselist: holder %d not in cluster %d", member, cl.ID)
		}
		for _, e := range el {
			e = e.Canon()
			if _, dup := ownerOf[e]; !dup {
				ownerOf[e] = int32(id)
				all = append(all, e)
			}
		}
	}
	all.Normalize()

	// InCluster is itself invoked from per-cluster workers (ARB-LIST fans
	// out across clusters), so its listing step stays single-threaded.
	res, err := runListing(in.P, all, nil, part, asg, func(e graph.Edge) int32 {
		return ownerOf[e.Canon()]
	}, 1)
	if err != nil {
		return nil, err
	}
	// Phase: deliver edges to subscribers, Theorem 2.4 inside the cluster.
	rounds := cm.RouteRounds(in.N, res.MaxNodeLoad, int64(cl.MinDegree)) * cm.CliquePolylog(in.N)
	ledger.ChargeMax("cluster-sparse-listing", rounds, res.TotalMessages)
	res.Parts = t
	return res, nil
}

// runListing performs the shared delivery accounting and local listing.
// realEdges are listed; fakeEdges only contribute to loads. hostOf returns
// the listing-node ID (in [k]) hosting each edge. workers bounds the host
// goroutines used for the local listing step (1 = fully sequential; the
// output is identical for every value).
func runListing(p int, realEdges, fakeEdges graph.EdgeList,
	part *partition.Partition, asg *partition.Assignment, hostOf func(graph.Edge) int32, workers int) (*Result, error) {
	k := asg.K
	t := asg.T
	sent := make([]int64, k)
	recv := make([]int64, k)
	var totalMsgs int64

	// edgesByPair collects real edges per part pair for the listing step;
	// fake edges are accounted but never listed.
	edgesByPair := make([][]graph.Edge, partition.NumPairs(t))
	account := func(e graph.Edge, real bool) error {
		host := hostOf(e)
		if host < 0 || int(host) >= k {
			return fmt.Errorf("sparselist: edge %v hosted by invalid node %d", e, host)
		}
		pa, pb := part.PartOf[e.U], part.PartOf[e.V]
		subs := asg.Subscribers(pa, pb)
		sent[host] += int64(len(subs))
		totalMsgs += int64(len(subs))
		for _, s := range subs {
			recv[s]++
		}
		if real {
			edgesByPair[partition.PairIndex(int(pa), int(pb), t)] = append(
				edgesByPair[partition.PairIndex(int(pa), int(pb), t)], e)
		}
		return nil
	}
	for _, e := range realEdges {
		if err := account(e, true); err != nil {
			return nil, err
		}
	}
	for _, e := range fakeEdges {
		if err := account(e, false); err != nil {
			return nil, err
		}
	}
	var maxLoad, maxPair int64
	for i := 0; i < k; i++ {
		if l := sent[i] + recv[i]; l > maxLoad {
			maxLoad = l
		}
	}
	for _, el := range edgesByPair {
		if int64(len(el)) > maxPair {
			maxPair = int64(len(el))
		}
	}

	// Local listing: nodes with the same part multiset see the same edges,
	// so we list once per distinct multiset (outputs are identical to
	// every node listing independently; the bill above already reflects
	// the full redundant delivery). In the paper the listing nodes work in
	// parallel; the simulation spreads the distinct multisets across host
	// goroutines the same way — each lists into a private set, merged in
	// multiset order, so the output is identical at any worker count.
	seenMultiset := make(map[string]bool)
	total := partition.TupleCount(t, p)
	var distinct []int
	for id := 0; id < total; id++ {
		key := multisetKey(asg.Tuples[id])
		if seenMultiset[key] {
			continue
		}
		seenMultiset[key] = true
		distinct = append(distinct, id)
	}
	perTuple := make([]graph.CliqueSet, len(distinct))
	listTuple := func(j int) {
		tup := asg.Tuples[distinct[j]]
		var local []graph.Edge
		seenPair := make(map[int]bool, p*p)
		for i := 0; i < p; i++ {
			for jj := i; jj < p; jj++ {
				pi := partition.PairIndex(int(tup[i]), int(tup[jj]), t)
				if seenPair[pi] {
					continue
				}
				seenPair[pi] = true
				local = append(local, edgesByPair[pi]...)
			}
		}
		out := make(graph.CliqueSet)
		graph.NewLocalLister(local).AddCliques(p, out)
		perTuple[j] = out
	}
	if workers > len(distinct) {
		workers = len(distinct)
	}
	if workers <= 1 {
		for j := range distinct {
			listTuple(j)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(next.Add(1)) - 1
					if j >= len(distinct) {
						return
					}
					listTuple(j)
				}
			}()
		}
		wg.Wait()
	}
	cliques := make(graph.CliqueSet)
	for _, out := range perTuple {
		for key := range out {
			cliques[key] = struct{}{}
		}
	}
	return &Result{
		Cliques:       cliques,
		MaxNodeLoad:   maxLoad,
		TotalMessages: totalMsgs,
		MaxPairEdges:  maxPair,
	}, nil
}

func multisetKey(tup partition.Tuple) string {
	s := make([]int32, len(tup))
	copy(s, tup)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	b := make([]byte, 0, len(s)*2)
	for _, d := range s {
		b = append(b, byte(d), byte(d>>8))
	}
	return string(b)
}

// padFakeEdges implements the §4 padding: if m/n^{1/p} < 20·n·log n, add
// random fake edges (possibly parallel to real ones — they are distinct
// words on the wire) until equality. Fake edges are accounted for load but
// never listed.
func padFakeEdges(n, p int, edges graph.EdgeList, rng *rand.Rand) graph.EdgeList {
	if n < 2 {
		return edges
	}
	nroot := float64(n)
	target := int64(20 * nroot * float64(congest.Log2Ceil(n)) * math.Pow(nroot, 1.0/float64(p)))
	if int64(len(edges)) >= target {
		return edges
	}
	out := make(graph.EdgeList, len(edges), target)
	copy(out, edges)
	for int64(len(out)) < target {
		u := graph.V(rng.Intn(n))
		v := graph.V(rng.Intn(n))
		if u == v {
			continue
		}
		out = append(out, graph.Edge{U: u, V: v}.Canon())
	}
	return out
}

// CongestedCliqueOnGraph is a convenience wrapper: list all Kp of g in the
// congested clique model, verifying nothing is fabricated (every returned
// clique is checked against g). workers follows Input.Workers semantics
// (0 = GOMAXPROCS; identical output for every value).
func CongestedCliqueOnGraph(g *graph.Graph, p int, seed int64, workers int, cm congest.CostModel, ledger *congest.Ledger) (*Result, error) {
	return CongestedCliqueOnGraphCtx(nil, g, p, seed, workers, cm, ledger)
}

// CongestedCliqueOnGraphCtx is CongestedCliqueOnGraph under an optional
// context (nil means no cancellation); see Input.Ctx for the poll points.
func CongestedCliqueOnGraphCtx(ctx context.Context, g *graph.Graph, p int, seed int64, workers int, cm congest.CostModel, ledger *congest.Ledger) (*Result, error) {
	in := Input{Ctx: ctx, N: g.N(), P: p, Edges: graph.NewEdgeList(g.Edges()), Seed: seed, Workers: workers}
	res, err := CongestedClique(in, false, cm, ledger)
	if err != nil {
		return nil, err
	}
	for key := range res.Cliques {
		c := graph.CliqueFromKey(key)
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if !g.HasEdge(c[i], c[j]) {
					return nil, fmt.Errorf("sparselist: fabricated clique %v", c)
				}
			}
		}
	}
	return res, nil
}
