package sparselist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kplist/internal/congest"
	"kplist/internal/expander"
	"kplist/internal/graph"
	"kplist/internal/routing"
)

func TestCongestedCliqueMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		n    int
		dens float64
		p    int
	}{
		{60, 0.3, 3},
		{60, 0.3, 4},
		{80, 0.25, 5},
		{50, 0.5, 4},
		{100, 0.1, 3},
	} {
		g := graph.ErdosRenyi(tc.n, tc.dens, rng)
		var ledger congest.Ledger
		res, err := CongestedCliqueOnGraph(g, tc.p, 42, 0, congest.UnitCosts(), &ledger)
		if err != nil {
			t.Fatalf("n=%d p=%d: %v", tc.n, tc.p, err)
		}
		want := graph.NewCliqueSet(g.ListCliques(tc.p))
		if !res.Cliques.Equal(want) {
			t.Errorf("n=%d p=%d: got %d cliques, want %d; missing=%v extra=%v",
				tc.n, tc.p, res.Cliques.Len(), want.Len(),
				want.Minus(res.Cliques), res.Cliques.Minus(want))
		}
		if ledger.Rounds() < 1 {
			t.Error("listing should cost at least one round")
		}
	}
}

func TestCongestedCliquePlantedCliques(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, planted := graph.PlantedCliques(120, 6, 3, 0.03, rng)
	var ledger congest.Ledger
	res, err := CongestedCliqueOnGraph(g, 6, 7, 0, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range planted {
		if !res.Cliques.Has(graph.Clique(c)) {
			t.Errorf("planted K6 %v not listed", c)
		}
	}
}

func TestCongestedCliqueEmptyAndTiny(t *testing.T) {
	var ledger congest.Ledger
	g := graph.MustNew(5, nil)
	res, err := CongestedCliqueOnGraph(g, 3, 1, 0, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	if res.Cliques.Len() != 0 {
		t.Error("empty graph has no cliques")
	}
	if _, err := CongestedClique(Input{N: 0, P: 3}, false, congest.UnitCosts(), &ledger); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := CongestedClique(Input{N: 5, P: 2}, false, congest.UnitCosts(), &ledger); err == nil {
		t.Error("p=2 should error")
	}
}

// TestTheorem13RoundShape checks the headline shape of Theorem 1.3: at
// fixed n, rounds grow linearly in m beyond the crossover m ≈ n^{1+2/p}
// and sit near the floor below it.
func TestTheorem13RoundShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, p := 200, 3
	roundsAt := func(m int) int64 {
		g := graph.GNM(n, m, rng)
		var ledger congest.Ledger
		_, err := CongestedCliqueOnGraph(g, p, 5, 0, congest.UnitCosts(), &ledger)
		if err != nil {
			t.Fatal(err)
		}
		return ledger.Rounds()
	}
	sparse := roundsAt(400)
	dense := roundsAt(10000)
	if dense <= sparse {
		t.Errorf("dense graph (m=10000) rounds %d should exceed sparse (m=400) rounds %d", dense, sparse)
	}
	// Doubling m from dense should roughly double rounds (generous slack
	// for partition randomness and ceilings).
	denser := roundsAt(19900) // complete graph at n=200
	ratio := float64(denser) / float64(dense)
	if ratio < 1.0 || ratio > 2.6 {
		t.Errorf("rounds should scale near-linearly with m: %d → %d (ratio %v)", dense, denser, ratio)
	}
}

func TestFakeEdgePaddingOnlyAffectsBill(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.ErdosRenyi(50, 0.2, rng)
	in := Input{N: g.N(), P: 3, Edges: graph.NewEdgeList(g.Edges()), Seed: 9}
	var l1, l2 congest.Ledger
	plain, err := CongestedClique(in, false, congest.UnitCosts(), &l1)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := CongestedClique(in, true, congest.UnitCosts(), &l2)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Cliques.Equal(padded.Cliques) {
		t.Error("padding changed the output")
	}
	if l2.Rounds() < l1.Rounds() {
		t.Error("padding cannot reduce the bill")
	}
	if padded.TotalMessages <= plain.TotalMessages {
		t.Error("padding should add fake traffic")
	}
}

// Property: the congested-clique lister is exact on random graphs across
// seeds, densities, and p.
func TestQuickCongestedCliqueExact(t *testing.T) {
	f := func(seed int64, densRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 3 + int(pRaw%3)
		g := graph.ErdosRenyi(40, 0.15+float64(densRaw%100)/300.0, rng)
		var ledger congest.Ledger
		res, err := CongestedCliqueOnGraph(g, p, seed, 0, congest.UnitCosts(), &ledger)
		if err != nil {
			return false
		}
		return res.Cliques.Equal(graph.NewCliqueSet(g.ListCliques(p)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// clusterFixture builds a decomposition of a dense graph and returns its
// biggest cluster plus router/responsibility over the full vertex range.
func clusterFixture(t *testing.T, g *graph.Graph, threshold int) (*expander.Cluster, *routing.Router, *routing.Responsibility) {
	t.Helper()
	var ledger congest.Ledger
	d, err := expander.Decompose(g.N(), graph.NewEdgeList(g.Edges()),
		expander.Params{Threshold: threshold, Seed: 3}, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	best := d.Clusters[0]
	for _, cl := range d.Clusters {
		if cl.K() > best.K() {
			best = cl
		}
	}
	rt := routing.NewRouter(best, g.N(), congest.UnitCosts())
	rs := routing.NewResponsibility(best, g.N())
	return best, rt, rs
}

func TestInClusterListsEverythingItKnows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.ErdosRenyi(120, 0.3, rng)
	cl, rt, rs := clusterFixture(t, g, 6)

	// Give the cluster the whole graph, grouped by responsible member
	// (the owner of each edge's lower endpoint).
	heldBy := make(map[graph.V]graph.EdgeList)
	for _, e := range g.Edges() {
		owner := rs.OwnerOf(e.U)
		heldBy[owner] = append(heldBy[owner], e)
	}
	var ledger congest.Ledger
	in := Input{N: g.N(), P: 4, Edges: nil, Seed: 11}
	res, err := InCluster(rt, rs, in, congest.UnitCosts(), &ledger, heldBy)
	if err != nil {
		t.Fatalf("InCluster: %v", err)
	}
	want := graph.NewCliqueSet(g.ListCliques(4))
	if !res.Cliques.Equal(want) {
		t.Errorf("in-cluster listing: got %d cliques, want %d (cluster k=%d)",
			res.Cliques.Len(), want.Len(), cl.K())
	}
	if ledger.Phase("cluster-partition-broadcast").Rounds == 0 {
		t.Error("partition broadcast not billed")
	}
	if ledger.Phase("cluster-sparse-listing").Rounds == 0 {
		t.Error("listing delivery not billed")
	}
}

func TestInClusterRejectsForeignHolder(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.ErdosRenyi(100, 0.3, rng)
	_, rt, rs := clusterFixture(t, g, 6)
	outsider := graph.V(-1)
	for v := 0; v < g.N(); v++ {
		if !rt.Cluster().Contains(graph.V(v)) {
			outsider = graph.V(v)
			break
		}
	}
	if outsider == -1 {
		t.Skip("cluster covers whole graph")
	}
	heldBy := map[graph.V]graph.EdgeList{outsider: {graph.Edge{U: 0, V: 1}}}
	var ledger congest.Ledger
	_, err := InCluster(rt, rs, Input{N: g.N(), P: 4, Seed: 1}, congest.UnitCosts(), &ledger, heldBy)
	if err == nil {
		t.Error("foreign holder should be rejected")
	}
}

func TestResultLoadStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.ErdosRenyi(80, 0.3, rng)
	var ledger congest.Ledger
	res, err := CongestedCliqueOnGraph(g, 4, 3, 0, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxNodeLoad <= 0 || res.TotalMessages <= 0 || res.Parts < 1 {
		t.Errorf("stats not populated: %+v", res)
	}
	if res.MaxPairEdges <= 0 {
		t.Error("MaxPairEdges should be positive for a non-empty graph")
	}
	if res.MaxNodeLoad > res.TotalMessages*2 {
		t.Error("per-node load cannot exceed total traffic")
	}
}

func TestCongestedCliqueDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := graph.ErdosRenyi(70, 0.3, rng)
	run := func() (int64, int) {
		var ledger congest.Ledger
		res, err := CongestedCliqueOnGraph(g, 4, 99, 0, congest.UnitCosts(), &ledger)
		if err != nil {
			t.Fatal(err)
		}
		return ledger.Rounds(), res.Cliques.Len()
	}
	r1, c1 := run()
	r2, c2 := run()
	if r1 != r2 || c1 != c2 {
		t.Errorf("same seed diverged: (%d,%d) vs (%d,%d)", r1, c1, r2, c2)
	}
}

func TestInClusterEmptyHolders(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.ErdosRenyi(100, 0.3, rng)
	_, rt, rs := clusterFixture(t, g, 6)
	var ledger congest.Ledger
	res, err := InCluster(rt, rs, Input{N: g.N(), P: 4, Seed: 1}, congest.UnitCosts(), &ledger, nil)
	if err != nil {
		t.Fatalf("empty holders should be a valid (empty) problem: %v", err)
	}
	if res.Cliques.Len() != 0 {
		t.Error("no edges means no cliques")
	}
}
