package sparselist

import (
	"math/rand"
	"testing"

	"kplist/internal/congest"
	"kplist/internal/graph"
)

// TestListingWorkersEquivalent forces the standalone congested-clique
// lister onto a multi-goroutine pool (even on single-CPU hosts) and checks
// the output and bill are identical to the sequential run.
func TestListingWorkersEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.ErdosRenyi(120, 0.3, rng)
	run := func(workers int) (*Result, int64) {
		var ledger congest.Ledger
		res, err := CongestedCliqueOnGraph(g, 4, 7, workers, congest.UnitCosts(), &ledger)
		if err != nil {
			t.Fatalf("CongestedCliqueOnGraph(workers=%d): %v", workers, err)
		}
		return res, ledger.Rounds()
	}
	seqRes, seqRounds := run(1)
	for _, workers := range []int{3, 8} {
		parRes, parRounds := run(workers)
		if !seqRes.Cliques.Equal(parRes.Cliques) {
			t.Fatalf("workers=%d: clique sets differ", workers)
		}
		if seqRes.MaxNodeLoad != parRes.MaxNodeLoad || seqRes.TotalMessages != parRes.TotalMessages ||
			seqRes.MaxPairEdges != parRes.MaxPairEdges || seqRounds != parRounds {
			t.Fatalf("workers=%d: load stats or bill differ", workers)
		}
	}
}
