package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"kplist/internal/graph"
	"kplist/internal/store"
)

// E13 measures the persistence path (DESIGN.md §10): how fast a graph
// comes back from an mmap'd snapshot versus rebuilding it from its edge
// list, and how many mutation batches the WAL can commit per second with
// and without the per-batch fsync. Everything here is wall-clock, so E13
// is never golden-pinned; `benchrunner -storebench BENCH_store.json`
// APPENDS each run to the committed trajectory instead of freezing a
// single sample — the first step toward continuous benchmarking.

// StoreMeasurement is one family's snapshot round-trip cell. Both the
// cold-open and the rebuild legs end with the same p=3 census, so their
// difference isolates construction (mmap adoption vs CSR re-derivation).
type StoreMeasurement struct {
	Family        string  `json:"family"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	SnapshotBytes int64   `json:"snapshotBytes"`
	WriteNs       int64   `json:"writeNs"`
	ColdOpenNs    int64   `json:"coldOpenNs"`
	RebuildNs     int64   `json:"rebuildNs"`
	Speedup       float64 `json:"speedup"`
}

// WALMeasurement is one fsync-policy cell of the append-throughput sweep.
type WALMeasurement struct {
	Fsync      bool    `json:"fsync"`
	BatchBytes int     `json:"batchBytes"`
	Batches    int     `json:"batches"`
	NsPerBatch int64   `json:"nsPerBatch"`
	MBPerSec   float64 `json:"mbPerSec"`
}

// StoreRun is one benchrunner invocation's worth of measurements — one
// point on the BENCH_store.json trajectory.
type StoreRun struct {
	Date       string             `json:"date"`
	Host       HostFingerprint    `json:"host,omitzero"`
	GoVersion  string             `json:"goVersion"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Quick      bool               `json:"quick"`
	Seed       int64              `json:"seed"`
	Snapshots  []StoreMeasurement `json:"snapshots"`
	WAL        []WALMeasurement   `json:"wal"`
}

// StoreBaseline is the BENCH_store.json document: the append-only run
// trajectory (newest last).
type StoreBaseline struct {
	Runs []StoreRun `json:"runs"`
}

// StoreBench runs the persistence sweep in a throwaway directory. It
// reuses the kernel-sweep graph families so the snapshot numbers line up
// with the BENCH_kernel.json listing numbers.
func StoreBench(seed int64, quick bool) (*StoreRun, error) {
	dir, err := os.MkdirTemp("", "kplist-storebench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Best-of-7 for the same reason as the kernel sweep: these are sub-ms
	// file-I/O cells whose single-shot times jitter well past the -compare
	// gate's threshold on shared disks; the minimum over more repetitions
	// is the stable statistic (interference only ever adds time).
	reps := 7
	if quick {
		reps = 3
	}
	run := &StoreRun{
		Date:       time.Now().UTC().Format(time.RFC3339),
		Host:       Fingerprint(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Seed:       seed,
	}
	for i, tc := range kernelBenchGraphs(seed, quick) {
		path := filepath.Join(dir, fmt.Sprintf("bench-%d.kpsnap", i))
		edges := tc.g.Edges()
		n := tc.g.N()

		// Snapshot write (the first call also forces the kernel build on
		// tc.g, so warm once before timing).
		if err := graph.WriteGraphSnapshot(path, tc.g, 0); err != nil {
			return nil, fmt.Errorf("storebench %s: %w", tc.family, err)
		}
		write := bestOf(reps, func() error { return graph.WriteGraphSnapshot(path, tc.g, 0) })
		fi, err := os.Stat(path)
		if err != nil {
			return nil, err
		}

		// Cold open: mmap the snapshot, adopt its CSR, run one census.
		cold := bestOf(reps, func() error {
			gs, err := graph.OpenGraphSnapshot(path)
			if err != nil {
				return err
			}
			gs.Graph().CountCliquesWorkers(3, 1)
			return gs.Close()
		})
		// Rebuild: the same graph from its edge list, kernel re-derived,
		// same census.
		rebuild := bestOf(reps, func() error {
			g, err := graph.New(n, edges)
			if err != nil {
				return err
			}
			g.CountCliquesWorkers(3, 1)
			return nil
		})
		run.Snapshots = append(run.Snapshots, StoreMeasurement{
			Family:        tc.family,
			N:             n,
			M:             tc.g.M(),
			SnapshotBytes: fi.Size(),
			WriteNs:       write.Nanoseconds(),
			ColdOpenNs:    cold.Nanoseconds(),
			RebuildNs:     rebuild.Nanoseconds(),
			Speedup:       float64(rebuild) / float64(cold),
		})
	}

	// WAL append throughput: a fixed 16-mutation batch, committed with
	// and without the per-batch fsync.
	payload := graph.EncodeWALBatch(walBenchBatch(16))
	for _, fsync := range []bool{false, true} {
		batches := 4096
		if fsync {
			batches = 128 // each append pays a real fsync
		}
		if quick {
			batches /= 4
		}
		walPath := filepath.Join(dir, fmt.Sprintf("bench-fsync-%v.wal", fsync))
		w, _, err := store.OpenWAL(walPath, !fsync)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < batches; i++ {
			if _, err := w.Append(payload); err != nil {
				w.Close()
				return nil, err
			}
		}
		elapsed := time.Since(start)
		if err := w.Close(); err != nil {
			return nil, err
		}
		run.WAL = append(run.WAL, WALMeasurement{
			Fsync:      fsync,
			BatchBytes: len(payload),
			Batches:    batches,
			NsPerBatch: elapsed.Nanoseconds() / int64(batches),
			MBPerSec:   float64(len(payload)*batches) / 1e6 / elapsed.Seconds(),
		})
	}
	return run, nil
}

// walBenchBatch builds a deterministic mutation batch of the given size.
func walBenchBatch(size int) []graph.Mutation {
	muts := make([]graph.Mutation, size)
	for i := range muts {
		muts[i] = graph.Mutation{
			Op:   graph.MutAdd,
			Edge: graph.Edge{U: graph.V(i), V: graph.V(i + 1)},
		}
	}
	return muts
}

// bestOf times fn reps times and returns the fastest run; fn errors are
// surfaced as a poisoned (maximal) duration so the caller's numbers are
// visibly wrong rather than silently optimistic.
func bestOf(reps int, fn func() error) time.Duration {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if err := fn(); err != nil {
			return best
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// Table renders the run as an aligned text table (wall-clock —
// informational, never golden-pinned).
func (r *StoreRun) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# persistence: cold-open-from-mmap vs rebuild-from-edges (%s, GOMAXPROCS=%d, seed=%d)\n",
		r.GoVersion, r.GOMAXPROCS, r.Seed)
	fmt.Fprintf(&sb, "%12s %6s %8s %12s %12s %14s %14s %8s\n",
		"family", "n", "m", "snapBytes", "write-ns", "cold-open-ns", "rebuild-ns", "speedup")
	for _, m := range r.Snapshots {
		fmt.Fprintf(&sb, "%12s %6d %8d %12d %12d %14d %14d %7.2fx\n",
			m.Family, m.N, m.M, m.SnapshotBytes, m.WriteNs, m.ColdOpenNs, m.RebuildNs, m.Speedup)
	}
	fmt.Fprintf(&sb, "# WAL append throughput (16-mutation batches)\n")
	fmt.Fprintf(&sb, "%8s %12s %10s %14s %10s\n", "fsync", "batchBytes", "batches", "ns/batch", "MB/s")
	for _, m := range r.WAL {
		fmt.Fprintf(&sb, "%8v %12d %10d %14d %10.1f\n",
			m.Fsync, m.BatchBytes, m.Batches, m.NsPerBatch, m.MBPerSec)
	}
	return sb.String()
}
