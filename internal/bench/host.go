package bench

import (
	"bufio"
	"fmt"
	"os"
	"runtime"
	"strings"
)

// HostFingerprint identifies the machine a benchmark run was measured on.
// Wall-clock numbers from different hosts (or different go toolchains, or
// different GOMAXPROCS) are not comparable, so every trajectory run
// carries its fingerprint and the regression comparator refuses to
// compare across mismatches instead of reporting phantom regressions.
type HostFingerprint struct {
	// CPU is the processor model string (from /proc/cpuinfo on linux;
	// empty when undiscoverable).
	CPU string `json:"cpu,omitempty"`
	// Cores is the number of logical CPUs visible to the process.
	Cores int `json:"cores,omitempty"`
	// GOMAXPROCS is the worker ceiling the runtime was configured with.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// GoVersion is the toolchain that built the benchmark binary.
	GoVersion string `json:"goVersion,omitempty"`
	// OS and Arch are GOOS/GOARCH.
	OS   string `json:"os,omitempty"`
	Arch string `json:"arch,omitempty"`
}

// Fingerprint captures the current host.
func Fingerprint() HostFingerprint {
	return HostFingerprint{
		CPU:        cpuModel(),
		Cores:      runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

// IsZero reports whether the fingerprint is absent (a legacy run recorded
// before fingerprints existed).
func (h HostFingerprint) IsZero() bool { return h == HostFingerprint{} }

// Comparable reports whether wall-clock measurements from h and other can
// be meaningfully compared: same CPU model, core count, GOMAXPROCS, go
// toolchain, OS and architecture. A zero fingerprint is comparable to
// nothing, including another zero fingerprint.
func (h HostFingerprint) Comparable(other HostFingerprint) bool {
	if h.IsZero() || other.IsZero() {
		return false
	}
	return h == other
}

// String renders the fingerprint compactly for log lines and errors.
func (h HostFingerprint) String() string {
	if h.IsZero() {
		return "<no fingerprint>"
	}
	cpu := h.CPU
	if cpu == "" {
		cpu = "unknown-cpu"
	}
	return fmt.Sprintf("%s ×%d (GOMAXPROCS=%d, %s, %s/%s)",
		cpu, h.Cores, h.GOMAXPROCS, h.GoVersion, h.OS, h.Arch)
}

// cpuModel extracts the processor model name. Linux-only by inspection of
// /proc/cpuinfo; other platforms fall back to the empty string (the rest
// of the fingerprint still distinguishes hosts coarsely).
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		// x86 says "model name", arm says "Processor" or per-core
		// "CPU part"; take the first model-ish key.
		for _, key := range []string{"model name", "Processor", "cpu model"} {
			if rest, ok := strings.CutPrefix(line, key); ok {
				if i := strings.IndexByte(rest, ':'); i >= 0 {
					return strings.TrimSpace(rest[i+1:])
				}
			}
		}
	}
	return ""
}
