package bench

import (
	"fmt"
	"math/rand"

	"kplist/internal/graph"
	"kplist/internal/workload"
)

// E12 exercises the dynamic-graph subsystem (DESIGN.md §9): a churn
// schedule of 1%-of-edges mutation batches over a dense G(n, 0.4), with
// the incremental clique-delta engine maintaining the K3/K4 listings, and
// an adversarial rebuild-trigger schedule that forces the fallback path.
// Everything in the tables is a maintained census or a delta size — fully
// deterministic under cfg.Seed, so cmd/benchrunner pins E12 with a golden
// (the wall-clock speedup claim lives in TestE12IncrementalSpeedup and
// the BenchmarkDynGraph* benchmarks, never in the golden).

// dynN returns the vertex count for the E12 graph.
func (c Config) dynN() int {
	if c.DynN > 0 {
		return c.DynN
	}
	return 256
}

// E12IncrementalChurn applies seeded mutation schedules to G(n, 0.4) and
// reports the maintained clique censuses and per-batch deltas.
func E12IncrementalChurn(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	n := cfg.dynN()
	g := graph.ErdosRenyi(n, 0.4, rand.New(rand.NewSource(cfg.Seed)))

	var out []Series
	// Churn: batches of ~1% of the edges, patched incrementally.
	churn := Series{
		Name: fmt.Sprintf(
			"E12: incremental churn on G(%d,0.4) — maintained K4 (rounds col) / K3 (messages col) after each 1%%-of-edges batch",
			n),
		XLabel: "batch",
	}
	d := graph.NewDynGraph(g, graph.DynConfig{}, 3, 4)
	if err := appendSchedulePoints(&churn, d, g, workload.TraceSpec{
		Schedule:  workload.ScheduleChurn,
		Batches:   6,
		BatchSize: max(1, g.M()/100),
		Seed:      cfg.Seed,
	}); err != nil {
		return nil, fmt.Errorf("E12 churn: %w", err)
	}
	st := d.Stats()
	if st.Rebuilds != 0 {
		return nil, fmt.Errorf("E12 churn: 1%% batches must stay incremental, got %d rebuilds", st.Rebuilds)
	}
	out = append(out, churn)

	// Adversarial: every batch sized past the density threshold, so the
	// engine must fall back to full rebuilds (delta columns read -1: the
	// fallback recomputes, it does not diff).
	adv := Series{
		Name:   fmt.Sprintf("E12: adversarial rebuild-trigger schedule on G(%d,0.4)", n),
		XLabel: "batch",
	}
	d2 := graph.NewDynGraph(g, graph.DynConfig{}, 3, 4)
	if err := appendSchedulePoints(&adv, d2, g, workload.TraceSpec{
		Schedule: workload.ScheduleRebuildTrigger,
		Batches:  4,
		Seed:     cfg.Seed,
	}); err != nil {
		return nil, fmt.Errorf("E12 rebuild-trigger: %w", err)
	}
	st2 := d2.Stats()
	if st2.Incremental != 0 {
		return nil, fmt.Errorf("E12 rebuild-trigger: batches must rebuild, got %d incremental", st2.Incremental)
	}
	out = append(out, adv)
	return out, nil
}

// appendSchedulePoints generates the trace for spec against g, applies it
// batch by batch, and appends one point per batch: Rounds = maintained K4
// count, Messages = maintained K3 count, Meta = edges, per-batch K4 delta
// sizes (-1 under the rebuild fallback) and the fallback indicator. The
// maintained counts are verified against a from-scratch recount after the
// final batch — the experiment is its own differential check.
func appendSchedulePoints(s *Series, d *graph.DynGraph, g *graph.Graph, spec workload.TraceSpec) error {
	tr, err := workload.GenerateTrace(g, spec)
	if err != nil {
		return err
	}
	k4, _ := d.Count(4)
	k3, _ := d.Count(3)
	s.Points = append(s.Points, Point{
		X: 0, Rounds: k4, Messages: k3,
		Meta: map[string]float64{"m": float64(d.M()), "dK4add": 0, "dK4del": 0, "rebuild": 0},
	})
	for i, batch := range tr.Batches {
		delta, err := d.ApplyBatch(batch)
		if err != nil {
			return fmt.Errorf("batch %d: %w", i, err)
		}
		add, del := -1.0, -1.0
		rebuild := 1.0
		if !delta.Rebuilt {
			rebuild = 0
			for _, cd := range delta.Cliques {
				if cd.P == 4 {
					add, del = float64(len(cd.Added)), float64(len(cd.Removed))
				}
			}
		}
		k4, _ = d.Count(4)
		k3, _ = d.Count(3)
		s.Points = append(s.Points, Point{
			X: float64(i + 1), Rounds: k4, Messages: k3,
			Meta: map[string]float64{"m": float64(d.M()), "dK4add": add, "dK4del": del, "rebuild": rebuild},
		})
	}
	if got := d.Snapshot().CountCliques(4); got != k4 {
		return fmt.Errorf("maintained K4 count %d diverges from recount %d", k4, got)
	}
	return nil
}
