package bench

// The autotune sweep behind `benchrunner -autotune`: measure the kernel
// and incremental-engine knobs (DESIGN.md §11) on the CURRENT host and
// emit a TuningProfile the kernel can load, instead of trusting the
// hand-picked constants tuned on the original development box. Every
// knob is a pure performance trade-off — listing output is byte-identical
// under any profile — so the sweep only ever times, never re-validates.
//
// Knobs and how they are measured:
//   - rootChunk: parallel listing of the dense family across chunk sizes
//     (contention vs load balance).
//   - bitsetCut: single-worker listing of the dense family across
//     merge→probe switch ratios (the bitmap-vs-merge crossover).
//   - rowMinOut: single-worker listing of the sparse+planted families
//     with row bitmaps forced on earlier/later/off (whether building the
//     bitmaps pays off at moderate degeneracy).
//   - rebuildFraction / rebuildMinBatch: a seeded mutation-churn schedule
//     applied through DynGraph across threshold settings (incremental
//     patch vs full-rebuild crossover).
//   - sessionPoolSize: a locality-heavy graph-access trace replayed
//     through the serving layer's session pool across capacities
//     (resident preprocessed kernels vs re-peeling on miss).
//   - batchWorkers: a coalescing-heavy QueryBatch replayed across worker
//     floors (waiter scheduling vs goroutine overhead).

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"kplist"
	"kplist/internal/graph"
	"kplist/internal/server"
)

// AutotuneSample is one measured candidate of one knob.
type AutotuneSample struct {
	Knob    string `json:"knob"`
	Value   string `json:"value"`
	NsPerOp int64  `json:"nsPerOp"`
	Picked  bool   `json:"picked"`
}

// TuningProfile is the autotune output document: the picked knobs plus
// the evidence, fingerprinted because a profile measured on one machine
// is only advice on another.
type TuningProfile struct {
	Date     string           `json:"date"`
	Host     HostFingerprint  `json:"host"`
	Quick    bool             `json:"quick"`
	Seed     int64            `json:"seed"`
	Tuning   graph.Tuning     `json:"tuning"`
	Evidence []AutotuneSample `json:"evidence"`
}

// Autotune sweeps the tuning knobs on the current host and returns the
// fastest settings found. The process-wide tuning is restored to its
// prior value before returning — callers decide whether to apply the
// profile.
func Autotune(seed int64, quick bool) *TuningProfile {
	prev := graph.CurrentTuning()
	defer graph.SetTuning(prev)

	profile := &TuningProfile{
		Date:  time.Now().UTC().Format(time.RFC3339),
		Host:  Fingerprint(),
		Quick: quick,
		Seed:  seed,
	}
	reps := 3
	denseN, sparseN, plantedN, churnN := 192, 768, 384, 160
	if quick {
		reps = 2
		denseN, sparseN, plantedN, churnN = 128, 512, 256, 96
	}
	picked := graph.DefaultTuning()

	// sweep times each candidate under picked+candidate tuning, records
	// the evidence, applies the winner to picked, and returns it.
	sweep := func(knob string, values []string, apply func(*graph.Tuning, int), measure func() time.Duration) int {
		bestIdx := -1
		var bestNs int64
		start := len(profile.Evidence)
		for i := range values {
			t := picked
			apply(&t, i)
			graph.SetTuning(t)
			ns := measure().Nanoseconds()
			profile.Evidence = append(profile.Evidence, AutotuneSample{Knob: knob, Value: values[i], NsPerOp: ns})
			if bestIdx < 0 || ns < bestNs {
				bestIdx, bestNs = i, ns
			}
		}
		profile.Evidence[start+bestIdx].Picked = true
		apply(&picked, bestIdx)
		graph.SetTuning(picked)
		return bestIdx
	}

	rng := func(off int64) *rand.Rand { return rand.New(rand.NewSource(seed + off)) }
	newDense := func() *graph.Graph { return graph.ErdosRenyi(denseN, 0.4, rng(0)) }
	newSparse := func() *graph.Graph { return graph.ErdosRenyi(sparseN, 0.02, rng(1)) }
	newPlanted := func() *graph.Graph {
		g, _ := graph.PlantedCliques(plantedN, 5, 8, 0.05, rng(2))
		return g
	}

	// listNs builds fresh graphs (so their kernels capture the candidate
	// tuning) and times one full listing pass, best of reps.
	listNs := func(workers int, p int, mk ...func() *graph.Graph) time.Duration {
		return bestOf(reps, func() error {
			for _, f := range mk {
				f().ListCliquesWorkers(p, workers)
			}
			return nil
		})
	}

	// 1. Parallel root chunk: contention vs balance at the fan-out the
	// host actually has.
	workers := min(8, max(2, profile.Host.GOMAXPROCS))
	chunks := []int{8, 16, 32, 64, 128}
	sweep("rootChunk", intStrings(chunks),
		func(t *graph.Tuning, i int) { t.RootChunk = chunks[i] },
		func() time.Duration { return listNs(workers, 4, newDense) })

	// 2. Bitmap-vs-merge crossover ratio on the dense family.
	cuts := []int{1, 2, 3, 4, 6}
	sweep("bitsetCut", intStrings(cuts),
		func(t *graph.Tuning, i int) { t.BitsetCut = cuts[i] },
		func() time.Duration { return listNs(1, 4, newDense) })

	// 3. Row-bitmap build floor on the moderate-degeneracy families
	// (the dense family always clears any sane floor, so it carries no
	// signal here). The last candidate disables rows outright.
	const rowsOff = 1 << 30
	floors := []int{8, 16, 32, 64, rowsOff}
	floorLabels := []string{"8", "16", "32", "64", "off"}
	sweep("rowMinOut", floorLabels,
		func(t *graph.Tuning, i int) { t.RowMinOut = floors[i] },
		func() time.Duration { return listNs(1, 4, newSparse, newPlanted) })

	// 4. Incremental-apply rebuild thresholds under a seeded churn
	// schedule (mixed batch sizes straddling the candidate thresholds).
	base := graph.ErdosRenyi(churnN, 0.25, rng(3))
	schedule := churnSchedule(churnN, base.M(), rng(4))
	churnNs := func() time.Duration {
		return bestOf(reps, func() error {
			d := graph.NewDynGraph(base, graph.DynConfig{}, 3, 4)
			for _, batch := range schedule {
				if _, err := d.ApplyBatch(batch); err != nil {
					return err
				}
			}
			return nil
		})
	}
	fracs := []float64{0.02, 0.05, 0.10, 0.20, 0.40}
	fracLabels := make([]string, len(fracs))
	for i, f := range fracs {
		fracLabels[i] = fmt.Sprintf("%.2f", f)
	}
	sweep("rebuildFraction", fracLabels,
		func(t *graph.Tuning, i int) { t.RebuildFraction = fracs[i] },
		churnNs)
	minBatches := []int{8, 16, 32, 64, 128}
	sweep("rebuildMinBatch", intStrings(minBatches),
		func(t *graph.Tuning, i int) { t.RebuildMinBatch = minBatches[i] },
		churnNs)

	// 5. Serving-layer knobs (PR 8): the session-pool capacity under a
	// working set wider than any candidate, and the QueryBatch worker
	// floor. Both are read from the process-wide tuning at use time, so
	// the sweep machinery applies candidates exactly like the kernel knobs.
	poolGraphs := make([]*graph.Graph, 12)
	for i := range poolGraphs {
		g, _ := graph.PlantedCliques(plantedN/2, 4, 6, 0.04, rng(int64(10+i)))
		poolGraphs[i] = g
	}
	poolTrace := poolAccessTrace(len(poolGraphs), 180, rng(22))
	poolNs := func() time.Duration {
		return bestOf(reps, func() error {
			// Capacity 0 defers to the candidate tuning under test.
			pool := server.NewSessionPool(0, kplist.SessionConfig{MaxConcurrent: 2})
			defer func() {
				for i := range poolGraphs {
					pool.Invalidate(fmt.Sprintf("g%d", i))
				}
			}()
			for _, gi := range poolTrace {
				gi := gi
				sess, release, err := pool.Acquire(context.Background(), fmt.Sprintf("g%d", gi),
					func() *kplist.Graph { return poolGraphs[gi] })
				if err != nil {
					return err
				}
				_, err = sess.Query(kplist.Query{P: 3})
				release()
				if err != nil {
					return err
				}
			}
			return nil
		})
	}
	poolSizes := []int{2, 4, 8, 16}
	sweep("sessionPoolSize", intStrings(poolSizes),
		func(t *graph.Tuning, i int) { t.SessionPoolSize = poolSizes[i] },
		poolNs)

	batchG := graph.ErdosRenyi(denseN/2, 0.3, rng(30))
	batch := make([]kplist.Query, 96)
	for i := range batch {
		// 24 distinct cache keys duplicated 4×, so coalesced waiters are
		// part of what the worker floor schedules.
		batch[i] = kplist.Query{P: 3 + i%2, Seed: int64(i % 12)}
	}
	batchNs := func() time.Duration {
		return bestOf(reps, func() error {
			// A fresh session per rep: the keyed result cache would
			// otherwise serve later candidates for free.
			sess := kplist.NewSession(batchG, kplist.SessionConfig{MaxConcurrent: 2})
			defer sess.Close()
			for _, r := range sess.QueryBatch(batch) {
				if r.Err != nil {
					return r.Err
				}
			}
			return nil
		})
	}
	batchWorkers := []int{2, 4, 8, 16, 32}
	sweep("batchWorkers", intStrings(batchWorkers),
		func(t *graph.Tuning, i int) { t.BatchWorkers = batchWorkers[i] },
		batchNs)

	profile.Tuning = picked
	return profile
}

// poolAccessTrace is a deterministic graph-access sequence with temporal
// locality: mostly revisits of a drifting working set, occasionally a
// cold graph, so every candidate pool capacity sees both hits and misses.
func poolAccessTrace(graphs, accesses int, rng *rand.Rand) []int {
	zipf := rand.NewZipf(rng, 1.4, 1.0, uint64(graphs-1))
	trace := make([]int, accesses)
	for i := range trace {
		// The rotating offset drifts the hot set so small pools keep
		// evicting while large ones keep hitting.
		trace[i] = (int(zipf.Uint64()) + i/24) % graphs
	}
	return trace
}

// churnSchedule builds a deterministic mutation schedule: batches of
// geometrically ramping sizes toggling random vertex pairs, so small
// batches exercise the incremental path and large ones straddle every
// candidate rebuild threshold.
func churnSchedule(n, m int, rng *rand.Rand) [][]graph.Mutation {
	var schedule [][]graph.Mutation
	for size := 2; size <= max(m/3, 8); size *= 2 {
		for rep := 0; rep < 2; rep++ {
			batch := make([]graph.Mutation, 0, size)
			for len(batch) < size {
				u, v := graph.V(rng.Intn(n)), graph.V(rng.Intn(n))
				if u == v {
					continue
				}
				op := graph.MutAdd
				if rng.Intn(2) == 0 {
					op = graph.MutDel
				}
				batch = append(batch, graph.Mutation{Op: op, Edge: graph.Edge{U: u, V: v}})
			}
			schedule = append(schedule, batch)
		}
	}
	return schedule
}

// Table renders the profile: the picked tuning, then the evidence sweep.
func (p *TuningProfile) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# autotune (%s, quick=%v, seed=%d)\n", p.Host, p.Quick, p.Seed)
	t := p.Tuning
	fmt.Fprintf(&sb, "picked: rootChunk=%d bitsetCut=%d rowMinOut=%d rowMaxN=%d rebuildFraction=%.2f rebuildMinBatch=%d sessionPoolSize=%d batchWorkers=%d\n",
		t.RootChunk, t.BitsetCut, t.RowMinOut, t.RowMaxN, t.RebuildFraction, t.RebuildMinBatch, t.SessionPoolSize, t.BatchWorkers)
	fmt.Fprintf(&sb, "%-18s %10s %14s %s\n", "knob", "candidate", "ns/op", "")
	for _, s := range p.Evidence {
		mark := ""
		if s.Picked {
			mark = "<- picked"
		}
		fmt.Fprintf(&sb, "%-18s %10s %14d %s\n", s.Knob, s.Value, s.NsPerOp, mark)
	}
	return sb.String()
}

// SaveTuningProfile writes the profile as JSON, atomically.
func SaveTuningProfile(path string, p *TuningProfile) error {
	buf, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(buf, '\n'))
}

// LoadTuningProfile reads a profile written by SaveTuningProfile and
// validates its tuning. Callers decide whether a host mismatch matters
// (profiles are per-hardware advice, not correctness inputs).
func LoadTuningProfile(path string) (*TuningProfile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p TuningProfile
	if err := json.Unmarshal(buf, &p); err != nil {
		return nil, fmt.Errorf("%s is not a tuning profile: %w", path, err)
	}
	if err := p.Tuning.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &p, nil
}

func intStrings(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}
