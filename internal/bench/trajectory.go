package bench

// Trajectory files: BENCH_kernel.json and BENCH_store.json are
// append-only JSON documents of the shape {"runs": [run0, run1, ...]},
// newest last. Appending keeps every existing run as the raw bytes it was
// committed with — history is never re-marshaled through the current
// structs, so a field added to KernelRun can never silently rewrite (or
// drop fields from) runs recorded by older binaries. Writes are atomic
// (unique temp file + rename), so a crash mid-append can never corrupt
// the accumulated history.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// rawTrajectory is the generic runs document with each run kept as the
// exact bytes read from disk.
type rawTrajectory struct {
	Runs []json.RawMessage `json:"runs"`
}

// readTrajectory loads the trajectory at path. A missing file yields an
// empty trajectory. A legacy single-run document (the pre-trajectory
// BENCH_kernel.json shape: a JSON object with "rows" at top level and no
// "runs") is migrated in memory by wrapping it, verbatim, as run 0.
func readTrajectory(path string) (*rawTrajectory, error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &rawTrajectory{}, nil
	}
	if err != nil {
		return nil, err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(buf, &probe); err != nil {
		return nil, fmt.Errorf("%s is not a trajectory: %w", path, err)
	}
	if runsRaw, ok := probe["runs"]; ok {
		var runs []json.RawMessage
		if err := json.Unmarshal(runsRaw, &runs); err != nil {
			return nil, fmt.Errorf("%s: bad runs array: %w", path, err)
		}
		return &rawTrajectory{Runs: runs}, nil
	}
	if _, ok := probe["rows"]; ok {
		// Legacy frozen baseline: the whole document becomes run 0.
		return &rawTrajectory{Runs: []json.RawMessage{json.RawMessage(buf)}}, nil
	}
	return nil, fmt.Errorf("%s is neither a trajectory ({\"runs\": ...}) nor a legacy baseline ({\"rows\": ...})", path)
}

// AppendRun appends run (marshaled with the current schema) to the
// trajectory at path, migrating a legacy single-run document by keeping
// it as run 0, and writes the result atomically. It returns the new run
// count.
func AppendRun(path string, run any) (int, error) {
	doc, err := readTrajectory(path)
	if err != nil {
		return 0, err
	}
	raw, err := json.Marshal(run)
	if err != nil {
		return 0, err
	}
	doc.Runs = append(doc.Runs, raw)
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return 0, err
	}
	if err := WriteFileAtomic(path, append(buf, '\n')); err != nil {
		return 0, err
	}
	return len(doc.Runs), nil
}

// LoadKernelTrajectory reads and types the kernel trajectory at path
// (legacy single-run documents load as a one-run trajectory).
func LoadKernelTrajectory(path string) (*KernelTrajectory, error) {
	doc, err := readTrajectory(path)
	if err != nil {
		return nil, err
	}
	out := &KernelTrajectory{Runs: make([]KernelRun, len(doc.Runs))}
	for i, raw := range doc.Runs {
		if err := json.Unmarshal(raw, &out.Runs[i]); err != nil {
			return nil, fmt.Errorf("%s: run %d: %w", path, i, err)
		}
	}
	return out, nil
}

// LoadStoreTrajectory reads and types the persistence trajectory at path.
func LoadStoreTrajectory(path string) (*StoreBaseline, error) {
	doc, err := readTrajectory(path)
	if err != nil {
		return nil, err
	}
	out := &StoreBaseline{Runs: make([]StoreRun, len(doc.Runs))}
	for i, raw := range doc.Runs {
		if err := json.Unmarshal(raw, &out.Runs[i]); err != nil {
			return nil, fmt.Errorf("%s: run %d: %w", path, i, err)
		}
	}
	return out, nil
}

// LoadClusterTrajectory reads and types the cluster trajectory at path.
func LoadClusterTrajectory(path string) (*ClusterBaseline, error) {
	doc, err := readTrajectory(path)
	if err != nil {
		return nil, err
	}
	out := &ClusterBaseline{Runs: make([]ClusterRun, len(doc.Runs))}
	for i, raw := range doc.Runs {
		if err := json.Unmarshal(raw, &out.Runs[i]); err != nil {
			return nil, fmt.Errorf("%s: run %d: %w", path, i, err)
		}
	}
	return out, nil
}

// LoadSketchTrajectory reads and types the estimator trajectory at path.
func LoadSketchTrajectory(path string) (*SketchBaseline, error) {
	doc, err := readTrajectory(path)
	if err != nil {
		return nil, err
	}
	out := &SketchBaseline{Runs: make([]SketchRun, len(doc.Runs))}
	for i, raw := range doc.Runs {
		if err := json.Unmarshal(raw, &out.Runs[i]); err != nil {
			return nil, fmt.Errorf("%s: run %d: %w", path, i, err)
		}
	}
	return out, nil
}

// WriteFileAtomic writes data to path via a unique temp file in the same
// directory, fsynced and renamed into place — the same overwrite
// discipline internal/store uses for snapshots, so a crash mid-write
// leaves either the old file or the new one, never a truncated hybrid.
func WriteFileAtomic(path string, data []byte) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
