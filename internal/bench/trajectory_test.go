package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// legacyKernelDoc is a pre-trajectory BENCH_kernel.json: "rows" at top
// level, no "runs", no host fingerprint — and a deliberately quirky field
// order plus a field the current structs do not have, so any re-marshal
// through KernelRun would visibly rewrite it.
const legacyKernelDoc = `{
  "goVersion": "go1.23.0-legacy",
  "gomaxprocs": 16,
  "quick": false,
  "seed": 1,
  "retiredField": "must survive migration untouched",
  "rows": [
    {
      "family": "sparse-gnp",
      "n": 1024,
      "m": 10401,
      "p": 4,
      "workers": 1,
      "cliques": 1435,
      "nsPerOp": 12345678
    }
  ]
}
`

func rawRuns(t *testing.T, path string) []json.RawMessage {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return doc.Runs
}

// TestAppendMigratesLegacyDoc: appending to a legacy single-run document
// wraps it, verbatim, as run 0.
func TestAppendMigratesLegacyDoc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
	if err := os.WriteFile(path, []byte(legacyKernelDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := AppendRun(path, KernelRun{GoVersion: "go1.24.0", Seed: 1, Host: Fingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("AppendRun returned %d runs, want 2", n)
	}
	runs := rawRuns(t, path)
	if len(runs) != 2 {
		t.Fatalf("got %d runs on disk, want 2", len(runs))
	}
	var legacy, migrated any
	if err := json.Unmarshal([]byte(legacyKernelDoc), &legacy); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(runs[0], &migrated); err != nil {
		t.Fatal(err)
	}
	// Compare as values (indentation legitimately changes when the doc is
	// nested into the runs array) — the retired field must survive.
	legacyBuf, _ := json.Marshal(legacy)
	migratedBuf, _ := json.Marshal(migrated)
	if !bytes.Equal(legacyBuf, migratedBuf) {
		t.Errorf("legacy doc rewritten during migration:\nwas %s\nnow %s", legacyBuf, migratedBuf)
	}
	if !strings.Contains(string(runs[0]), "retiredField") {
		t.Error("unknown legacy field dropped by migration")
	}
	// And the typed loader sees both runs.
	traj, err := LoadKernelTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Runs) != 2 || traj.Runs[0].GoVersion != "go1.23.0-legacy" || traj.Runs[0].Rows[0].Cliques != 1435 {
		t.Errorf("typed load mangled the migration: %+v", traj.Runs)
	}
	if !traj.Runs[0].Host.IsZero() {
		t.Error("legacy run invented a host fingerprint")
	}
}

// TestAppendPreservesPriorRunsBytewise: each append must keep every prior
// run's raw bytes exactly — history is never re-marshaled through the
// current structs.
func TestAppendPreservesPriorRunsBytewise(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
	if err := os.WriteFile(path, []byte(legacyKernelDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	var before []json.RawMessage
	for i := 0; i < 3; i++ {
		if _, err := AppendRun(path, KernelRun{GoVersion: "go1.24.0", Seed: int64(i), Host: Fingerprint()}); err != nil {
			t.Fatal(err)
		}
		after := rawRuns(t, path)
		if len(after) != i+2 {
			t.Fatalf("append %d: got %d runs, want %d", i, len(after), i+2)
		}
		for j, prev := range before {
			if !bytes.Equal(prev, after[j]) {
				t.Fatalf("append %d rewrote run %d:\nwas %s\nnow %s", i, j, prev, after[j])
			}
		}
		before = after
	}
}

func TestReadTrajectoryMissingAndMalformed(t *testing.T) {
	dir := t.TempDir()
	doc, err := readTrajectory(filepath.Join(dir, "nope.json"))
	if err != nil || len(doc.Runs) != 0 {
		t.Fatalf("missing file should be an empty trajectory, got %v, %v", doc, err)
	}
	for name, body := range map[string]string{
		"garbage.json":   "not json at all",
		"wrongkind.json": `{"neitherRunsNorRows": 1}`,
		"badruns.json":   `{"runs": 42}`,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readTrajectory(p); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
		if _, err := AppendRun(p, KernelRun{}); err == nil {
			t.Errorf("%s: AppendRun must refuse rather than clobber", name)
		}
	}
}

// TestWriteFileAtomic: the write lands complete, leaves no temp files,
// and replaces rather than truncates.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second, longer payload")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "second, longer payload" {
		t.Fatalf("read back %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp files left behind: %v", entries)
	}
}

func TestFingerprint(t *testing.T) {
	fp := Fingerprint()
	if fp.IsZero() {
		t.Fatal("live fingerprint is zero")
	}
	if fp.Cores < 1 || fp.GOMAXPROCS < 1 || fp.GoVersion == "" || fp.OS == "" || fp.Arch == "" {
		t.Errorf("incomplete fingerprint: %+v", fp)
	}
	if !fp.Comparable(Fingerprint()) {
		t.Error("fingerprint not comparable to itself")
	}
	var zero HostFingerprint
	if zero.Comparable(zero) || fp.Comparable(zero) || zero.Comparable(fp) {
		t.Error("zero fingerprint must be comparable to nothing, itself included")
	}
	other := fp
	other.CPU = fp.CPU + " (different)"
	if fp.Comparable(other) {
		t.Error("differing CPU models compared")
	}
}
