package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"time"

	"kplist/internal/cluster"
	"kplist/internal/server"
)

// E14 measures the cluster serving layer end-to-end (DESIGN.md §12): a
// loopback cluster — N in-process kplistd nodes in cluster mode behind a
// gateway — swept across shard counts and replication factors. Three
// costs per cell: the owner-routed clique stream through the gateway, the
// scatter–gather merged stream of a partitioned registration, and the
// mutation-batch round trip including the synchronous replica fan-out.
// Everything is wall-clock, so E14 is never golden-pinned;
// `benchrunner -clusterbench BENCH_cluster.json` APPENDS each run to the
// committed trajectory like the kernel and store sweeps.

// ClusterMeasurement is one (shards, replication) cell of the sweep.
type ClusterMeasurement struct {
	Shards      int    `json:"shards"`
	Replication int    `json:"replication"`
	Family      string `json:"family"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	// StreamNs is one owner-routed lexicographic truth stream of the
	// whole graph through the gateway (routing + relay overhead on top of
	// the node's own enumeration).
	StreamNs int64 `json:"streamNs"`
	// ScatterNs is the same listing served from the partitioned
	// registration: every shard streams its signature subset and the
	// gateway k-way merges them back into one byte-identical stream.
	ScatterNs int64 `json:"scatterNs"`
	// PatchNsPerBatch is one 16-mutation PATCH through the gateway:
	// owner WAL-free apply + ack, then fan-out to the R−1 replicas.
	PatchNsPerBatch int64 `json:"patchNsPerBatch"`
	// StreamBytes sanity-pins that all cells of one run listed the same
	// graph (identical across shard counts by the scatter determinism).
	StreamBytes int64 `json:"streamBytes"`
}

// ClusterRun is one benchrunner invocation's worth of cluster cells — one
// point on the BENCH_cluster.json trajectory.
type ClusterRun struct {
	Date       string               `json:"date"`
	Host       HostFingerprint      `json:"host,omitzero"`
	GoVersion  string               `json:"goVersion"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Quick      bool                 `json:"quick"`
	Seed       int64                `json:"seed"`
	Cells      []ClusterMeasurement `json:"cells"`
}

// ClusterBaseline is the BENCH_cluster.json document: the append-only run
// trajectory (newest last).
type ClusterBaseline struct {
	Runs []ClusterRun `json:"runs"`
}

// benchCluster is a loopback cluster: n in-process cluster-mode servers
// behind httptest listeners fronted by an in-process gateway.
type benchCluster struct {
	gwURL string
	close func()
}

func newBenchCluster(shards, replication int, seed int64) (*benchCluster, error) {
	members := make([]cluster.Member, shards)
	for i := range members {
		members[i] = cluster.Member{Name: fmt.Sprintf("n%d", i+1), Addr: fmt.Sprintf("placeholder%d:1", i+1)}
	}
	nodeCfg := cluster.Config{Members: members, Replication: replication, Seed: seed}
	var servers []*httptest.Server
	closeAll := func() {
		for _, ts := range servers {
			ts.Close()
		}
	}
	real := make([]cluster.Member, shards)
	for i, m := range members {
		ring, err := cluster.NewRing(nodeCfg)
		if err != nil {
			closeAll()
			return nil, err
		}
		ts := httptest.NewServer(server.New(server.Config{
			ClusterSelf:     m.Name,
			ClusterRing:     ring,
			DefaultDeadline: time.Minute,
		}).Handler())
		servers = append(servers, ts)
		real[i] = cluster.Member{Name: m.Name, Addr: ts.URL}
	}
	client, err := cluster.NewClient(
		cluster.Config{Members: real, Replication: replication, Seed: seed},
		cluster.ClientOptions{RetryBackoff: time.Millisecond},
	)
	if err != nil {
		closeAll()
		return nil, err
	}
	gw := httptest.NewServer(cluster.NewGateway(client))
	servers = append(servers, gw)
	return &benchCluster{gwURL: gw.URL, close: closeAll}, nil
}

// clusterPost POSTs a JSON body and decodes the JSON response.
func clusterPost(url string, body any) (map[string]any, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("POST %s: status %d: %v", url, resp.StatusCode, out)
	}
	return out, nil
}

// clusterStream drains one clique NDJSON stream and returns its length.
func clusterStream(base, id, query string) (int64, error) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/graphs/%s/cliques?%s", base, id, query))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET cliques: status %d", resp.StatusCode)
	}
	return n, nil
}

// clusterSweep returns the (shards, replication) grid: replication never
// exceeds the member count (the ring would clamp it and the cell would
// silently duplicate a smaller one).
func clusterSweep() [][2]int {
	var grid [][2]int
	for _, shards := range []int{1, 2, 3} {
		for _, repl := range []int{1, 2} {
			if repl <= shards {
				grid = append(grid, [2]int{shards, repl})
			}
		}
	}
	return grid
}

// ClusterBench runs the shards × replication sweep on a loopback cluster.
func ClusterBench(seed int64, quick bool) (*ClusterRun, error) {
	reps := 5
	n, batches := 220, 24
	if quick {
		reps = 3
		n, batches = 120, 8
	}
	const family = "planted-clique"
	run := &ClusterRun{
		Date:       time.Now().UTC().Format(time.RFC3339),
		Host:       Fingerprint(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Seed:       seed,
	}
	body := map[string]any{
		"name":     fmt.Sprintf("%s-%d", family, seed),
		"workload": map[string]any{"family": family, "n": n, "seed": seed},
	}
	for _, cell := range clusterSweep() {
		shards, repl := cell[0], cell[1]
		c, err := newBenchCluster(shards, repl, seed)
		if err != nil {
			return nil, fmt.Errorf("clusterbench %d/%d: %w", shards, repl, err)
		}
		m := ClusterMeasurement{Shards: shards, Replication: repl, Family: family, N: n}

		meta, err := clusterPost(c.gwURL+"/v1/graphs", body)
		if err != nil {
			c.close()
			return nil, fmt.Errorf("clusterbench %d/%d register: %w", shards, repl, err)
		}
		id, _ := meta["id"].(string)
		if mm, ok := meta["m"].(float64); ok {
			m.M = int(mm)
		}
		pmeta, err := clusterPost(c.gwURL+"/v1/graphs?partitioned=1&p=3", body)
		if err != nil {
			c.close()
			return nil, fmt.Errorf("clusterbench %d/%d partitioned register: %w", shards, repl, err)
		}
		pid, _ := pmeta["id"].(string)

		// Warm both paths once (session-pool opens, shard peels), then
		// best-of time the steady-state streams.
		if m.StreamBytes, err = clusterStream(c.gwURL, id, "p=3&stream=1&algo=truth&order=lex"); err != nil {
			c.close()
			return nil, fmt.Errorf("clusterbench %d/%d stream: %w", shards, repl, err)
		}
		if _, err = clusterStream(c.gwURL, pid, "p=3&stream=1&algo=truth"); err != nil {
			c.close()
			return nil, fmt.Errorf("clusterbench %d/%d scatter: %w", shards, repl, err)
		}
		m.StreamNs = bestOf(reps, func() error {
			_, err := clusterStream(c.gwURL, id, "p=3&stream=1&algo=truth&order=lex")
			return err
		}).Nanoseconds()
		m.ScatterNs = bestOf(reps, func() error {
			_, err := clusterStream(c.gwURL, pid, "p=3&stream=1&algo=truth")
			return err
		}).Nanoseconds()

		// Mutation batches through the gateway: owner ack + replica
		// fan-out. Elapsed/batches (not best-of): each batch lands on a
		// different graph state, so the batches are the repetitions.
		rng := rand.New(rand.NewSource(seed))
		start := time.Now()
		for b := 0; b < batches; b++ {
			muts := make([]map[string]any, 16)
			for i := range muts {
				op := "add"
				if rng.Intn(2) == 0 {
					op = "remove"
				}
				u := rng.Intn(n)
				v := rng.Intn(n - 1)
				if v >= u {
					v++
				}
				muts[i] = map[string]any{"op": op, "u": u, "v": v}
			}
			buf, _ := json.Marshal(map[string]any{"mutations": muts})
			req, _ := http.NewRequest(http.MethodPatch, c.gwURL+"/v1/graphs/"+id+"/edges", bytes.NewReader(buf))
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				c.close()
				return nil, fmt.Errorf("clusterbench %d/%d patch: %w", shards, repl, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				c.close()
				return nil, fmt.Errorf("clusterbench %d/%d patch: status %d", shards, repl, resp.StatusCode)
			}
		}
		m.PatchNsPerBatch = time.Since(start).Nanoseconds() / int64(batches)

		c.close()
		run.Cells = append(run.Cells, m)
	}
	return run, nil
}

// Table renders the run as an aligned text table (wall-clock —
// informational, never golden-pinned).
func (r *ClusterRun) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# cluster: gateway stream / scatter–gather / replicated patch (%s, GOMAXPROCS=%d, seed=%d)\n",
		r.GoVersion, r.GOMAXPROCS, r.Seed)
	fmt.Fprintf(&sb, "%8s %6s %14s %6s %8s %14s %14s %16s %12s\n",
		"shards", "repl", "family", "n", "m", "stream-ns", "scatter-ns", "patch-ns/batch", "streamBytes")
	for _, m := range r.Cells {
		fmt.Fprintf(&sb, "%8d %6d %14s %6d %8d %14d %14d %16d %12d\n",
			m.Shards, m.Replication, m.Family, m.N, m.M, m.StreamNs, m.ScatterNs, m.PatchNsPerBatch, m.StreamBytes)
	}
	return sb.String()
}

// Benchfmt renders the cluster run in Go benchmark text format.
func (r *ClusterRun) Benchfmt() string {
	var sb strings.Builder
	benchfmtPreamble(&sb, r.Host)
	for _, m := range r.Cells {
		fmt.Fprintf(&sb, "BenchmarkClusterStream/shards=%d/repl=%d/n=%d \t1\t%d ns/op\n",
			m.Shards, m.Replication, m.N, m.StreamNs)
		fmt.Fprintf(&sb, "BenchmarkClusterScatter/shards=%d/repl=%d/n=%d \t1\t%d ns/op\n",
			m.Shards, m.Replication, m.N, m.ScatterNs)
		fmt.Fprintf(&sb, "BenchmarkClusterPatch/shards=%d/repl=%d/n=%d \t1\t%d ns/op\n",
			m.Shards, m.Replication, m.N, m.PatchNsPerBatch)
	}
	return sb.String()
}

// CompareCluster judges the newest cluster run against its same-host
// history. threshold ≤ 0 takes DefaultCompareThreshold.
func CompareCluster(traj *ClusterBaseline, threshold float64) *CompareReport {
	if threshold <= 0 {
		threshold = DefaultCompareThreshold
	}
	history := make([]runCells, len(traj.Runs))
	for i, run := range traj.Runs {
		cells := make(map[string]int64)
		for _, m := range run.Cells {
			base := fmt.Sprintf("cluster/shards=%d/repl=%d/n=%d", m.Shards, m.Replication, m.N)
			cells[base+"/stream"] = m.StreamNs
			cells[base+"/scatter"] = m.ScatterNs
			cells[base+"/patch"] = m.PatchNsPerBatch
		}
		history[i] = runCells{
			host:  run.Host,
			key:   fmt.Sprintf("quick=%v/seed=%d", run.Quick, run.Seed),
			cells: cells,
		}
	}
	return compareCells("cluster", history, threshold)
}
