package bench

import (
	"fmt"

	"kplist"
	"kplist/internal/workload"
)

// E9 and E10 exercise the workload-generator subsystem and the Session
// serving path (DESIGN.md §6): E9 sweeps every generator family through
// the sparsity-aware congested-clique lister, E10 measures how much of a
// mixed query batch the Session cache absorbs. Both are deterministic
// under cfg.Seed, so cmd/benchrunner pins them with a golden-output test.

// workloadSizes returns the n-ladder for the family sweeps: the config's
// WorkloadSizes if set, else a default that keeps the dense families
// (stochastic-block) within the exact-listing budget.
func (c Config) workloadSizes() []int {
	if len(c.WorkloadSizes) != 0 {
		return c.WorkloadSizes
	}
	return []int{256, 512, 768}
}

// E9WorkloadFamilies generates every registered workload family across the
// size ladder and runs the Theorem 1.3 congested-clique lister at p = 4 on
// each instance, reporting the round bill together with the structural
// census (edges, degeneracy, cliques listed). Planted-clique instances are
// additionally checked for perfect recall — a failed recall is an error,
// not a data point.
func E9WorkloadFamilies(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	const p = 4
	var out []Series
	for _, family := range workload.Families() {
		s := Series{
			Name:   fmt.Sprintf("E9: workload family %q — congested-clique lister rounds vs n (p=%d)", family, p),
			XLabel: "n",
		}
		for _, n := range cfg.workloadSizes() {
			spec := workload.DefaultSpec(family, n, cfg.Seed)
			if family == workload.FamilyPlantedClique {
				// Plant cliques of exactly the probed size so the recall
				// check below is live, not vacuous.
				spec.CliqueSize = p
			}
			inst, err := workload.Generate(spec)
			if err != nil {
				return nil, fmt.Errorf("E9 %s n=%d: %w", family, n, err)
			}
			res, err := kplist.ListCongestedClique(inst.G, p, kplist.Options{Seed: cfg.Seed, Workers: cfg.Workers})
			if err != nil {
				return nil, fmt.Errorf("E9 %s n=%d: %w", family, n, err)
			}
			if err := recallPlanted(inst, p, res.Cliques); err != nil {
				return nil, fmt.Errorf("E9 %s n=%d: %w", family, n, err)
			}
			s.Points = append(s.Points, Point{
				X:        float64(n),
				Rounds:   res.Rounds,
				Messages: res.Messages,
				Meta: map[string]float64{
					"m":          float64(inst.G.M()),
					"degeneracy": float64(inst.G.Degeneracy().Degeneracy),
					"cliques":    float64(len(res.Cliques)),
				},
			})
		}
		out = append(out, s)
	}
	return out, nil
}

func recallPlanted(inst *workload.Instance, p int, cliques []kplist.Clique) error {
	if len(inst.Props.Planted) == 0 || len(inst.Props.Planted[0]) != p {
		return nil
	}
	listed := map[string]bool{}
	for _, c := range cliques {
		listed[fmt.Sprint(c)] = true
	}
	for _, c := range inst.Props.Planted {
		if !listed[fmt.Sprint(kplist.Clique(c))] {
			return fmt.Errorf("planted clique %v not listed", c)
		}
	}
	return nil
}

// E10SessionAmortization opens one Session per workload size on the
// planted-clique family (with CliqueSize 4 so recall is measurable) and
// serves a mixed batch in which each distinct query repeats `waves` times.
// The series reports the rounds actually executed (the cache-miss bill)
// against the rounds that would have been billed without the session
// cache; their ratio is the amortization factor. Everything reported is
// deterministic under cfg.Seed — wall-clock never enters the table.
func E10SessionAmortization(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	const waves = 8
	s := Series{
		Name:   fmt.Sprintf("E10: Session amortization on planted-clique workload (×%d repeated mixed queries)", waves),
		XLabel: "n",
	}
	for _, n := range cfg.workloadSizes() {
		spec := workload.DefaultSpec(workload.FamilyPlantedClique, n, cfg.Seed)
		spec.CliqueSize = 4
		inst, err := workload.Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("E10 n=%d: %w", n, err)
		}
		sess := kplist.NewSession(inst.G, kplist.SessionConfig{MaxConcurrent: maxI(cfg.Workers, 1)})
		distinct := []kplist.Query{
			{P: 3, Algo: kplist.AlgoCongestedClique, Seed: cfg.Seed},
			{P: 4, Algo: kplist.AlgoCongestedClique, Seed: cfg.Seed},
			{P: 5, Algo: kplist.AlgoCongestedClique, Seed: cfg.Seed},
			{P: 4, Algo: kplist.AlgoCONGEST, Seed: cfg.Seed, Workers: cfg.Workers},
			{P: 4, Algo: kplist.AlgoFastK4, Seed: cfg.Seed, Workers: cfg.Workers},
		}
		var qs []kplist.Query
		for w := 0; w < waves; w++ {
			qs = append(qs, distinct...)
		}
		var servedRounds int64
		for _, br := range sess.QueryBatch(qs) {
			if br.Err != nil {
				sess.Close()
				return nil, fmt.Errorf("E10 n=%d %+v: %w", n, br.Query, br.Err)
			}
			servedRounds += br.Result.Rounds
		}
		// The cache-miss bill: each distinct query executed exactly once,
		// so re-querying the distinct set sums the executed work.
		var executedRounds, executedMsgs int64
		for _, q := range distinct {
			res, err := sess.Query(q)
			if err != nil {
				sess.Close()
				return nil, fmt.Errorf("E10 n=%d %+v: %w", n, q, err)
			}
			executedRounds += res.Rounds
			executedMsgs += res.Messages
		}
		st := sess.Stats()
		sess.Close()
		if int(st.Misses) != len(distinct) {
			return nil, fmt.Errorf("E10 n=%d: %d executions for %d distinct queries", n, st.Misses, len(distinct))
		}
		s.Points = append(s.Points, Point{
			X:        float64(n),
			Rounds:   executedRounds,
			Messages: executedMsgs,
			Meta: map[string]float64{
				"queries":      float64(st.Queries),
				"hits":         float64(st.Hits),
				"servedRounds": float64(servedRounds),
				"amortization": float64(servedRounds) / float64(executedRounds),
			},
		})
	}
	return []Series{s}, nil
}
