package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"kplist"
	"kplist/internal/server"
	"kplist/internal/workload"
)

// E11 exercises the kplistd serving layer end-to-end over HTTP (DESIGN.md
// §7): a fixed request trace — planted-clique graphs registered per
// workload size, then waves of repeated single-client queries — replayed
// against session pools of increasing capacity. Everything reported is
// deterministic (round bills, pool hit/miss/eviction counts); wall-clock
// throughput is measured separately by BenchmarkServerQuery, so the table
// is golden-testable like E9/E10.

// poolSizes returns the session-pool capacity sweep for E11.
func (c Config) poolSizes() []int {
	if len(c.PoolSizes) != 0 {
		return c.PoolSizes
	}
	return []int{1, 2, 4}
}

// e11Trace replays the fixed trace against one server and returns the
// summed response round bill plus the pool counters.
func e11Trace(cfg Config, poolSize int) (Point, error) {
	const waves = 3
	srv := server.New(server.Config{
		PoolSize:        poolSize,
		MaxGraphs:       16,
		QueueLimit:      64,
		DefaultDeadline: time.Minute,
		Session:         kplist.SessionConfig{MaxConcurrent: maxI(cfg.Workers, 1)},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(url string, body any) (map[string]any, error) {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, err
		}
		if resp.StatusCode/100 != 2 {
			return nil, fmt.Errorf("status %d: %v", resp.StatusCode, out)
		}
		return out, nil
	}

	// Register one planted-clique graph per workload size.
	var ids []string
	for _, n := range cfg.workloadSizes() {
		spec := workload.DefaultSpec(workload.FamilyPlantedClique, n, cfg.Seed)
		spec.CliqueSize = 4
		out, err := post(ts.URL+"/v1/graphs", map[string]any{"workload": spec})
		if err != nil {
			return Point{}, fmt.Errorf("register n=%d: %w", n, err)
		}
		id, _ := out["id"].(string)
		if id == "" {
			return Point{}, fmt.Errorf("register n=%d: no id in %v", n, out)
		}
		ids = append(ids, id)
	}

	// The trace: waves of single-client queries across every graph. With a
	// pool smaller than the graph count, each wave thrashes sessions
	// (evictions and cold re-opens); at capacity the first wave warms the
	// pool and later waves ride session caches end to end.
	var servedRounds, servedMsgs, requests int64
	for w := 0; w < waves; w++ {
		for _, id := range ids {
			for _, q := range []map[string]any{
				{"p": 4, "algo": "congested-clique", "seed": cfg.Seed},
				{"p": 3, "algo": "congested-clique", "seed": cfg.Seed},
			} {
				out, err := post(ts.URL+"/v1/graphs/"+id+"/query", q)
				if err != nil {
					return Point{}, fmt.Errorf("query %s %v: %w", id, q, err)
				}
				results, _ := out["results"].([]any)
				if len(results) != 1 {
					return Point{}, fmt.Errorf("query %s: malformed results %v", id, out)
				}
				r, _ := results[0].(map[string]any)
				if e, _ := r["error"].(string); e != "" {
					return Point{}, fmt.Errorf("query %s: %s", id, e)
				}
				servedRounds += int64(r["rounds"].(float64))
				servedMsgs += int64(r["messages"].(float64))
				requests++
			}
		}
	}
	ps := srv.Pool().Stats()
	return Point{
		X:        float64(poolSize),
		Rounds:   servedRounds,
		Messages: servedMsgs,
		Meta: map[string]float64{
			"requests":     float64(requests),
			"poolHits":     float64(ps.Hits),
			"poolMisses":   float64(ps.Misses),
			"evictions":    float64(ps.Evictions),
			"sessionHits":  float64(ps.SessionHits),
			"sessionMiss":  float64(ps.SessionMisses),
			"openSessions": float64(ps.Open),
		},
	}, nil
}

// E11ServerThroughput sweeps the session-pool capacity under the fixed
// serving trace. The deterministic signature of throughput is the pool
// hit/eviction profile: undersized pools re-open (re-peel) sessions every
// wave, while a full-size pool converges to pure session-cache hits.
func E11ServerThroughput(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	s := Series{
		Name: fmt.Sprintf("E11: kplistd serving trace — pool hit/eviction profile vs pool size (%d graphs × 3 waves × 2 queries)",
			len(cfg.workloadSizes())),
		XLabel: "poolSize",
	}
	for _, size := range cfg.poolSizes() {
		pt, err := e11Trace(cfg, size)
		if err != nil {
			return nil, fmt.Errorf("E11 pool=%d: %w", size, err)
		}
		s.Points = append(s.Points, pt)
	}
	return []Series{s}, nil
}
