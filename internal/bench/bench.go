// Package bench is the experiment harness: parameter sweeps over the
// listing algorithms, log-log exponent fitting, and text renderers for the
// series that EXPERIMENTS.md records. Each E-runner regenerates one of the
// paper artefacts indexed in DESIGN.md §4.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one measurement in a sweep.
type Point struct {
	// X is the sweep variable (n, or m for E3).
	X float64
	// Rounds is the charged CONGEST round bill.
	Rounds int64
	// Messages is the total word traffic.
	Messages int64
	// Meta carries experiment-specific extras (e.g. cliques found).
	Meta map[string]float64
}

// Series is one labelled measurement curve.
type Series struct {
	Name   string
	XLabel string
	// Expected is the reference exponent for this curve — the cost-model
	// prediction for the sweep's workload family (0 if not applicable).
	// The paper-asymptotic exponents are discussed in EXPERIMENTS.md.
	Expected float64
	Points   []Point
}

// FitExponent fits Rounds ≈ C·X^α by least squares on the log-log points
// and returns α with the correlation R². Points with non-positive values
// are skipped; fewer than two usable points yield (0, 0).
func (s *Series) FitExponent() (alpha, r2 float64) {
	var xs, ys []float64
	for _, p := range s.Points {
		if p.X > 0 && p.Rounds > 0 {
			xs = append(xs, math.Log(p.X))
			ys = append(ys, math.Log(float64(p.Rounds)))
		}
	}
	n := float64(len(xs))
	if n < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	alpha = (n*sxy - sx*sy) / den
	// R² via correlation coefficient.
	cden := math.Sqrt((n*sxx - sx*sx) * (n*syy - sy*sy))
	if cden == 0 {
		return alpha, 1
	}
	r := (n*sxy - sx*sy) / cden
	return alpha, r * r
}

// Table renders the series as an aligned text table.
func (s *Series) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	metaKeys := map[string]bool{}
	for _, p := range s.Points {
		for k := range p.Meta {
			metaKeys[k] = true
		}
	}
	keys := make([]string, 0, len(metaKeys))
	for k := range metaKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "%12s %12s %14s", s.XLabel, "rounds", "messages")
	for _, k := range keys {
		fmt.Fprintf(&b, " %14s", k)
	}
	b.WriteByte('\n')
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%12.0f %12d %14d", p.X, p.Rounds, p.Messages)
		for _, k := range keys {
			fmt.Fprintf(&b, " %14.3f", p.Meta[k])
		}
		b.WriteByte('\n')
	}
	if alpha, r2 := s.FitExponent(); r2 > 0 {
		fmt.Fprintf(&b, "fit: rounds ~ %s^%.3f (R²=%.3f", s.XLabel, alpha, r2)
		if s.Expected > 0 {
			fmt.Fprintf(&b, ", reference exponent %.3f", s.Expected)
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// RenderAll renders a collection of series separated by blank lines.
func RenderAll(series []Series) string {
	var b strings.Builder
	for i := range series {
		b.WriteString(series[i].Table())
		b.WriteByte('\n')
	}
	return b.String()
}
