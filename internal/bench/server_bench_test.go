package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"kplist/internal/server"
	"kplist/internal/workload"
)

// BenchmarkServerQuery measures the end-to-end HTTP query path of the
// serving layer: "hot" repeats one query so every request after the first
// rides the session result cache (HTTP + JSON + cache lookup), "cold"
// changes the seed every iteration so every request executes the engine.
// The gap between the two is the amortization the Session cache buys the
// server (compare E10 for the model-level view).
func BenchmarkServerQuery(b *testing.B) {
	n := 256
	if testing.Short() {
		n = 96
	}
	spec := workload.DefaultSpec(workload.FamilyPlantedClique, n, 1)
	spec.CliqueSize = 4

	newServer := func(b *testing.B) string {
		b.Helper()
		srv := server.New(server.Config{DefaultDeadline: time.Minute})
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(ts.Close)
		out := postObj(b, ts.URL+"/v1/graphs", map[string]any{"workload": spec})
		id, _ := out["id"].(string)
		if id == "" {
			b.Fatalf("register: %v", out)
		}
		return ts.URL + "/v1/graphs/" + id + "/query"
	}

	b.Run("hot", func(b *testing.B) {
		url := newServer(b)
		q := map[string]any{"p": 4, "algo": "congested-clique"}
		postObj(b, url, q) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			postObj(b, url, q)
		}
	})

	b.Run("cold", func(b *testing.B) {
		url := newServer(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh seed defeats the result cache: full engine run.
			postObj(b, url, map[string]any{"p": 4, "algo": "congested-clique", "seed": i + 1})
		}
	})
}

func postObj(b *testing.B, url string, body any) map[string]any {
	b.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		b.Fatal(fmt.Errorf("status %d: %v", resp.StatusCode, out))
	}
	return out
}
