package bench

import (
	"math"
	"strings"
	"testing"

	"kplist/internal/workload"
)

func TestFitExponentExact(t *testing.T) {
	// Perfect power law rounds = 3·x².
	s := Series{XLabel: "n"}
	for _, x := range []float64{10, 20, 40, 80} {
		s.Points = append(s.Points, Point{X: x, Rounds: int64(3 * x * x)})
	}
	alpha, r2 := s.FitExponent()
	if math.Abs(alpha-2) > 0.01 {
		t.Errorf("alpha = %v, want 2", alpha)
	}
	if r2 < 0.999 {
		t.Errorf("R² = %v, want ≈1", r2)
	}
}

func TestFitExponentDegenerate(t *testing.T) {
	s := Series{}
	if a, r := s.FitExponent(); a != 0 || r != 0 {
		t.Error("empty series should fit (0,0)")
	}
	s.Points = []Point{{X: 1, Rounds: 1}}
	if a, r := s.FitExponent(); a != 0 || r != 0 {
		t.Error("single point should fit (0,0)")
	}
	s.Points = []Point{{X: -1, Rounds: 5}, {X: 0, Rounds: 5}}
	if a, r := s.FitExponent(); a != 0 || r != 0 {
		t.Error("non-positive X points should be skipped")
	}
}

func TestTableRendering(t *testing.T) {
	s := Series{Name: "demo", XLabel: "n", Expected: 0.75}
	s.Points = append(s.Points, Point{X: 10, Rounds: 100, Messages: 1000, Meta: map[string]float64{"k": 1}})
	s.Points = append(s.Points, Point{X: 20, Rounds: 170, Messages: 2000, Meta: map[string]float64{"k": 2}})
	out := s.Table()
	for _, want := range []string{"demo", "rounds", "messages", "fit:", "reference exponent 0.750", "k"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	all := RenderAll([]Series{s, s})
	if strings.Count(all, "demo") != 2 {
		t.Error("RenderAll should render each series")
	}
}

// The E-runner smoke tests use tiny sizes: they verify the runners work
// end-to-end and produce plausible structure; the real sweeps live in
// cmd/benchrunner and the root bench_test.go. Under -short the largest
// series point and the repeat-averaging are dropped so the whole package
// stays in CI's minute budget.
func tinyConfig() Config {
	cfg := Config{
		Sizes:         []int{256, 384, 512},
		Density:       0.35,
		EdgeCounts:    []int{200, 800, 2000},
		CCN:           96,
		Ps:            []int{4, 5},
		Seed:          7,
		WorkloadSizes: []int{64, 96, 128},
	}
	if testing.Short() {
		cfg.Sizes = cfg.Sizes[:2]
		cfg.EdgeCounts = cfg.EdgeCounts[:2]
		cfg.WorkloadSizes = cfg.WorkloadSizes[:2]
		cfg.Repeats = 1
	}
	return cfg
}

func TestE1Smoke(t *testing.T) {
	cfg := tinyConfig()
	series, err := E1Theorem11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("want 2 series (p=4,5), got %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != len(cfg.Sizes) {
			t.Errorf("%s: %d points", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Rounds <= 0 {
				t.Errorf("%s: zero rounds at n=%v", s.Name, p.X)
			}
		}
		// Rounds must grow with n.
		if s.Points[len(s.Points)-1].Rounds <= s.Points[0].Rounds {
			t.Errorf("%s: rounds did not grow with n", s.Name)
		}
	}
}

func TestE2Smoke(t *testing.T) {
	series, err := E2FastK4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("want fast and general series")
	}
	// Both modes list the same cliques at each n.
	for i := range series[0].Points {
		if series[0].Points[i].Meta["cliques"] != series[1].Points[i].Meta["cliques"] {
			t.Error("fast and general K4 disagree on clique count")
		}
	}
}

func TestE3Smoke(t *testing.T) {
	series, err := E3CongestedClique(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Errorf("%s: no points", s.Name)
		}
		last := s.Points[len(s.Points)-1]
		first := s.Points[0]
		if last.Rounds < first.Rounds {
			t.Errorf("%s: rounds decreased with m", s.Name)
		}
	}
}

func TestE4Smoke(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{48, 72}
	series, err := E4Comparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("want 4 comparison series, got %d", len(series))
	}
	// All K4 algorithms agree on clique counts.
	for i := range series[0].Points {
		ours := series[0].Points[i].Meta["cliques"]
		eden := series[2].Points[i].Meta["cliques"]
		bc := series[3].Points[i].Meta["cliques"]
		if ours != eden || ours != bc {
			t.Errorf("K4 counts disagree at point %d: ours=%v eden=%v bcast=%v", i, ours, eden, bc)
		}
	}
}

func TestE5Smoke(t *testing.T) {
	series, err := E5LowerBoundGap(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		for _, p := range s.Points {
			if p.Meta["gap"] <= 0 {
				t.Errorf("%s: non-positive LB gap", s.Name)
			}
		}
	}
}

func TestE6Smoke(t *testing.T) {
	series, err := E6IterativeDecay(96, 0.4, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("want Er-decay and ladder series")
	}
	decay := series[0]
	for i := 1; i < len(decay.Points); i++ {
		if decay.Points[i].Rounds >= decay.Points[i-1].Rounds {
			t.Errorf("|Er| did not decay at pass %d: %v", i, decay.Points)
		}
	}
}

func TestE7Smoke(t *testing.T) {
	series, err := E7Ablations(96, 0.4, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("want 5 ablation series, got %d", len(series))
	}
	// The heavy-threshold sweep must have populated census metadata.
	sweep := series[4]
	for _, p := range sweep.Points {
		if p.Meta["heavy"]+p.Meta["light"] == 0 {
			t.Errorf("threshold %v classified nobody", p.X)
		}
	}
}

func TestE9WorkloadFamiliesSmoke(t *testing.T) {
	cfg := tinyConfig()
	series, err := E9WorkloadFamilies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(workload.Families()) {
		t.Fatalf("want one series per family, got %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != len(cfg.workloadSizes()) {
			t.Errorf("%s: %d points, want %d", s.Name, len(s.Points), len(cfg.workloadSizes()))
		}
		for _, p := range s.Points {
			for _, key := range []string{"degeneracy", "m", "cliques"} {
				if _, ok := p.Meta[key]; !ok {
					t.Errorf("%s: missing census metadata %q at n=%v", s.Name, key, p.X)
				}
			}
		}
	}
}

func TestE10SessionAmortizationSmoke(t *testing.T) {
	series, err := E10SessionAmortization(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("want one amortization series, got %d", len(series))
	}
	for _, p := range series[0].Points {
		// Every repeated wave beyond the first must be a cache hit, so the
		// amortization factor equals the wave count.
		if p.Meta["amortization"] < 2 {
			t.Errorf("n=%v: amortization %.2f < 2 — cache not engaging", p.X, p.Meta["amortization"])
		}
		if p.Meta["hits"] == 0 {
			t.Errorf("n=%v: no cache hits recorded", p.X)
		}
	}
}

func TestE8Smoke(t *testing.T) {
	series, err := E8CountingVsListing(80, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("want counting and listing series, got %d", len(series))
	}
	counting, listing := series[0], series[1]
	// Counting rounds are density-independent; listing rounds grow with m.
	first, last := counting.Points[0].Rounds, counting.Points[len(counting.Points)-1].Rounds
	if first != last {
		t.Errorf("algebraic counting rounds should not depend on m: %d vs %d", first, last)
	}
	if listing.Points[len(listing.Points)-1].Rounds <= listing.Points[0].Rounds {
		t.Error("listing rounds should grow with m")
	}
	// At the densest point, counting must win (the §5 claim).
	if counting.Points[len(counting.Points)-1].Rounds >= listing.Points[len(listing.Points)-1].Rounds {
		t.Error("dense point: counting should beat listing")
	}
}
