package bench

import (
	"strings"
	"testing"
)

func synthHost() HostFingerprint {
	return HostFingerprint{CPU: "test-cpu", Cores: 4, GOMAXPROCS: 4, GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"}
}

// synthKernelTrajectory builds runs whose single cell measures base ns
// plus the per-run deltas, all on the same host unless hosts overrides.
func synthKernelTrajectory(base int64, deltas []int64, hosts ...HostFingerprint) *KernelTrajectory {
	traj := &KernelTrajectory{}
	for i, d := range deltas {
		host := synthHost()
		if i < len(hosts) {
			host = hosts[i]
		}
		traj.Runs = append(traj.Runs, KernelRun{
			Host: host, GoVersion: host.GoVersion, GOMAXPROCS: host.GOMAXPROCS, Quick: true, Seed: 1,
			Rows: []KernelMeasurement{{Family: "sparse-gnp", N: 64, M: 500, P: 4, Workers: 1, Cliques: 7, NsPerOp: base + d}},
		})
	}
	return traj
}

func TestCompareClearRegression(t *testing.T) {
	// Stable history at ~1ms, newest run 50% slower: must regress.
	traj := synthKernelTrajectory(1_000_000, []int64{0, 5_000, -5_000, 500_000})
	r := CompareKernel(traj, 0)
	if r.Skipped != "" {
		t.Fatalf("unexpected skip: %s", r.Skipped)
	}
	regs := r.Regressions()
	if len(regs) != 1 {
		t.Fatalf("want 1 regression, got %d: %+v", len(regs), r.Cells)
	}
	if regs[0].Ratio < 1.4 || !strings.Contains(regs[0].Name, "sparse-gnp") {
		t.Errorf("bad verdict: %+v", regs[0])
	}
	if !strings.Contains(r.Table(), "REGRESSED") {
		t.Errorf("table should flag the cell:\n%s", r.Table())
	}
}

func TestCompareClearImprovement(t *testing.T) {
	traj := synthKernelTrajectory(1_000_000, []int64{0, 5_000, -5_000, -400_000})
	r := CompareKernel(traj, 0)
	if len(r.Regressions()) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", r.Cells)
	}
	if !strings.Contains(r.Table(), "improved") {
		t.Errorf("table should note the improvement:\n%s", r.Table())
	}
}

func TestCompareWithinNoiseJitter(t *testing.T) {
	// Newest run 5% over the median, below the 8% base threshold.
	traj := synthKernelTrajectory(1_000_000, []int64{0, 20_000, -20_000, 50_000})
	r := CompareKernel(traj, 0)
	if len(r.Regressions()) != 0 {
		t.Fatalf("within-noise jitter gated: %+v", r.Cells)
	}
}

func TestCompareNoiseWidensThreshold(t *testing.T) {
	// History jitters ±15% (relative MAD 0.15), so the limit must widen
	// to 3×0.15=45% and a 30% excursion must NOT be gated...
	traj := synthKernelTrajectory(1_000_000, []int64{150_000, -150_000, 0, 150_000, -150_000, 300_000})
	r := CompareKernel(traj, 0)
	if len(r.Regressions()) != 0 {
		t.Fatalf("noisy cell gated at base threshold: %+v", r.Cells)
	}
	if len(r.Cells) != 1 || r.Cells[0].Limit < 0.4 {
		t.Fatalf("limit should widen with historical MAD: %+v", r.Cells)
	}
	// ...while a stable history keeps the tight base threshold.
	tight := CompareKernel(synthKernelTrajectory(1_000_000, []int64{0, 1_000, -1_000, 300_000}), 0)
	if len(tight.Regressions()) != 1 {
		t.Fatalf("stable cell not gated at base threshold: %+v", tight.Cells)
	}
}

func TestCompareMismatchedHostRefuses(t *testing.T) {
	// All history is from another machine: the comparator must refuse,
	// not report the (meaningless) 3x slowdown as a regression.
	other := synthHost()
	other.CPU, other.Cores = "older-cpu", 2
	traj := synthKernelTrajectory(1_000_000, []int64{0, 0, 2_000_000}, other, other, synthHost())
	r := CompareKernel(traj, 0)
	if r.Skipped == "" {
		t.Fatalf("cross-host comparison not refused: %+v", r.Cells)
	}
	if len(r.Cells) != 0 || len(r.Regressions()) != 0 {
		t.Fatalf("skipped report must carry no verdicts: %+v", r.Cells)
	}
	if !strings.Contains(r.Skipped, "cross-machine") {
		t.Errorf("refusal should explain itself: %s", r.Skipped)
	}
}

func TestCompareZeroFingerprintComparableToNothing(t *testing.T) {
	// A legacy run 0 (migrated, no fingerprint) must never anchor a
	// comparison — even against another fingerprint-less run.
	traj := synthKernelTrajectory(1_000_000, []int64{0, 900_000}, HostFingerprint{}, HostFingerprint{})
	r := CompareKernel(traj, 0)
	if r.Skipped == "" || len(r.Regressions()) != 0 {
		t.Fatalf("fingerprint-less runs compared: skipped=%q cells=%+v", r.Skipped, r.Cells)
	}
}

func TestCompareConfigKeySeparatesRuns(t *testing.T) {
	// Same host but a different seed measures different graphs: refuse.
	traj := synthKernelTrajectory(1_000_000, []int64{0, 0, 800_000})
	traj.Runs[2].Seed = 99
	r := CompareKernel(traj, 0)
	if r.Skipped == "" {
		t.Fatalf("mismatched run configuration compared: %+v", r.Cells)
	}
}

func TestCompareEmptyAndSingle(t *testing.T) {
	if r := CompareKernel(&KernelTrajectory{}, 0); r.Skipped == "" {
		t.Error("empty trajectory should skip")
	}
	if r := CompareKernel(synthKernelTrajectory(1_000_000, []int64{0}), 0); r.Skipped == "" {
		t.Error("single-run trajectory should skip")
	}
}

func TestCompareStoreCells(t *testing.T) {
	host := synthHost()
	mkRun := func(scale float64) StoreRun {
		return StoreRun{
			Host: host, GoVersion: host.GoVersion, Quick: true, Seed: 1,
			Snapshots: []StoreMeasurement{{Family: "gnp", N: 256, M: 2000,
				WriteNs: int64(1_000_000 * scale), ColdOpenNs: int64(500_000 * scale), RebuildNs: int64(2_000_000 * scale)}},
			WAL: []WALMeasurement{{Fsync: false, Batches: 64, NsPerBatch: int64(40_000 * scale)}},
		}
	}
	traj := &StoreBaseline{Runs: []StoreRun{mkRun(1), mkRun(1.01), mkRun(0.99), mkRun(1.5)}}
	r := CompareStore(traj, 0)
	if r.Skipped != "" {
		t.Fatalf("unexpected skip: %s", r.Skipped)
	}
	// Every store cell (3 snapshot legs + 1 WAL leg) regressed by 50%.
	if got := len(r.Regressions()); got != 4 {
		t.Fatalf("want 4 regressed cells, got %d: %+v", got, r.Cells)
	}
}

func TestBenchfmtOutput(t *testing.T) {
	traj := synthKernelTrajectory(1_000_000, []int64{0})
	out := traj.Runs[0].Benchfmt()
	for _, want := range []string{
		"goos: linux\n", "goarch: amd64\n", "cpu: test-cpu\n",
		"BenchmarkKernel/family=sparse-gnp/n=64/p=4/workers=1 \t1\t1000000 ns/op\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("benchfmt missing %q:\n%s", want, out)
		}
	}
}
