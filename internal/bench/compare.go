package bench

// The regression comparator behind `benchrunner -compare`: judge the
// newest run of a trajectory against the median of its own host's
// history, cell by cell. Two design rules keep it honest on noisy CI
// hardware: (1) runs whose host fingerprints differ are never compared —
// a fingerprint mismatch REFUSES the comparison (CompareReport.Skipped)
// instead of reporting a phantom regression; (2) the threshold is
// noise-aware — each cell's limit is the larger of the configured base
// threshold and a multiple of the cell's own historical spread (relative
// median absolute deviation), so a cell that historically jitters ±6%
// is not gated at ±8%; and (3) a regression verdict requires the new
// measurement to exceed every comparable historical sample (the noise
// envelope) as well as the median threshold — a measurement some prior
// run of unchanged code already matched cannot indict a code change.

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultCompareThreshold is the base relative slowdown (new vs median)
// tolerated before a cell regresses: 8%, deliberately below the 10%
// regressions the acceptance gate must catch, with the noise term
// widening it on cells whose history is genuinely jittery.
const DefaultCompareThreshold = 0.08

// compareNoiseMult scales the historical relative MAD into the tolerance:
// limit = max(threshold, compareNoiseMult · relMAD).
const compareNoiseMult = 3.0

// CellVerdict is the judgement of one measurement cell.
type CellVerdict struct {
	// Name identifies the cell (family/n/p/workers for kernel cells,
	// family/leg for store cells).
	Name string
	// NewNs is the newest run's measurement, MedianNs the median of the
	// comparable history.
	NewNs, MedianNs int64
	// Ratio is NewNs/MedianNs; Limit the tolerated relative excess.
	Ratio, Limit float64
	// Samples is how many prior same-host runs measured this cell.
	Samples int
	// Regressed is Ratio > 1+Limit.
	Regressed bool
}

// CompareReport is the outcome of judging one trajectory's newest run.
type CompareReport struct {
	// Suite names the trajectory ("kernel", "store").
	Suite string
	// Threshold is the base relative threshold the comparison ran with.
	Threshold float64
	// NewHost is the newest run's fingerprint.
	NewHost HostFingerprint
	// History is the number of prior runs that were comparable (same
	// host fingerprint and run configuration).
	History int
	// Skipped, when non-empty, explains why the comparison was refused
	// (no prior runs, or none from this host/configuration). A skipped
	// report carries no cells and no regressions.
	Skipped string
	// Cells holds one verdict per cell measured by both the newest run
	// and at least one comparable prior run, sorted by name.
	Cells []CellVerdict
}

// Regressions returns the regressed cells.
func (r *CompareReport) Regressions() []CellVerdict {
	var out []CellVerdict
	for _, c := range r.Cells {
		if c.Regressed {
			out = append(out, c)
		}
	}
	return out
}

// Table renders the verdicts as an aligned text table.
func (r *CompareReport) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s: newest run vs same-host trajectory median (base threshold %.0f%%)\n",
		r.Suite, 100*r.Threshold)
	if r.Skipped != "" {
		fmt.Fprintf(&sb, "comparison skipped: %s\n", r.Skipped)
		return sb.String()
	}
	fmt.Fprintf(&sb, "# host: %s, comparable history: %d run(s)\n", r.NewHost, r.History)
	fmt.Fprintf(&sb, "%-44s %14s %14s %8s %8s %s\n", "cell", "new-ns", "median-ns", "ratio", "limit", "verdict")
	for _, c := range r.Cells {
		verdict := "ok"
		switch {
		case c.Regressed:
			verdict = "REGRESSED"
		case c.Ratio < 1:
			verdict = "improved"
		}
		fmt.Fprintf(&sb, "%-44s %14d %14d %7.3fx %7.0f%% %s\n",
			c.Name, c.NewNs, c.MedianNs, c.Ratio, 100*c.Limit, verdict)
	}
	return sb.String()
}

// runCells is the comparator's flattened view of one run: its host, a
// configuration key (runs with different configurations measure different
// graphs and must not be compared), and the named ns measurements.
type runCells struct {
	host  HostFingerprint
	key   string
	cells map[string]int64
}

// compareCells judges the newest run in history against the median of the
// prior runs sharing its host fingerprint and configuration key.
func compareCells(suite string, history []runCells, threshold float64) *CompareReport {
	r := &CompareReport{Suite: suite, Threshold: threshold}
	if len(history) == 0 {
		r.Skipped = "trajectory is empty"
		return r
	}
	newest := history[len(history)-1]
	r.NewHost = newest.host
	if len(history) == 1 {
		r.Skipped = "no prior runs to compare against"
		return r
	}
	var prior []runCells
	for _, h := range history[:len(history)-1] {
		if h.host.Comparable(newest.host) && h.key == newest.key {
			prior = append(prior, h)
		}
	}
	if len(prior) == 0 {
		r.Skipped = fmt.Sprintf(
			"no prior runs from this host/configuration (host %s, config %s) — cross-machine runs are never compared",
			newest.host, newest.key)
		return r
	}
	r.History = len(prior)

	names := make([]string, 0, len(newest.cells))
	for name := range newest.cells {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		newNs := newest.cells[name]
		var samples []int64
		for _, h := range prior {
			if ns, ok := h.cells[name]; ok && ns > 0 {
				samples = append(samples, ns)
			}
		}
		if len(samples) == 0 || newNs <= 0 {
			continue
		}
		med := medianInt64(samples)
		relMAD := relativeMAD(samples, med)
		limit := threshold
		if noisy := compareNoiseMult * relMAD; noisy > limit {
			limit = noisy
		}
		ratio := float64(newNs) / float64(med)
		// Noise envelope: a regression verdict additionally requires the
		// new measurement to exceed EVERY comparable historical sample —
		// if some prior run of unchanged code was this slow, the slowness
		// is inside the machine's demonstrated noise range, not a code
		// change. A real regression sits above the whole envelope.
		maxNs := samples[0]
		for _, s := range samples[1:] {
			if s > maxNs {
				maxNs = s
			}
		}
		r.Cells = append(r.Cells, CellVerdict{
			Name:      name,
			NewNs:     newNs,
			MedianNs:  med,
			Ratio:     ratio,
			Limit:     limit,
			Samples:   len(samples),
			Regressed: ratio > 1+limit && newNs > maxNs,
		})
	}
	return r
}

// medianInt64 returns the median of xs — the mean of the two middles for
// even counts, so a two-sample history is judged against the midpoint
// rather than its faster run (xs is copied, not reordered).
func medianInt64(xs []int64) int64 {
	s := make([]int64, len(xs))
	copy(s, xs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// relativeMAD is the median absolute deviation of xs around med, as a
// fraction of med (0 when med is 0 or there is a single sample).
func relativeMAD(xs []int64, med int64) float64 {
	if med <= 0 || len(xs) < 2 {
		return 0
	}
	devs := make([]int64, len(xs))
	for i, x := range xs {
		d := x - med
		if d < 0 {
			d = -d
		}
		devs[i] = d
	}
	return float64(medianInt64(devs)) / float64(med)
}

// CompareKernel judges the newest kernel run against its same-host
// history. threshold ≤ 0 takes DefaultCompareThreshold.
func CompareKernel(traj *KernelTrajectory, threshold float64) *CompareReport {
	if threshold <= 0 {
		threshold = DefaultCompareThreshold
	}
	history := make([]runCells, len(traj.Runs))
	for i, run := range traj.Runs {
		cells := make(map[string]int64, len(run.Rows))
		for _, row := range run.Rows {
			cells[fmt.Sprintf("kernel/%s/n=%d/p=%d/workers=%d", row.Family, row.N, row.P, row.Workers)] = row.NsPerOp
		}
		history[i] = runCells{
			host:  run.Host,
			key:   fmt.Sprintf("quick=%v/seed=%d", run.Quick, run.Seed),
			cells: cells,
		}
	}
	return compareCells("kernel", history, threshold)
}

// CompareStore judges the newest persistence run against its same-host
// history. threshold ≤ 0 takes DefaultCompareThreshold.
func CompareStore(traj *StoreBaseline, threshold float64) *CompareReport {
	if threshold <= 0 {
		threshold = DefaultCompareThreshold
	}
	history := make([]runCells, len(traj.Runs))
	for i, run := range traj.Runs {
		cells := make(map[string]int64)
		for _, s := range run.Snapshots {
			base := fmt.Sprintf("store/%s/n=%d", s.Family, s.N)
			cells[base+"/write"] = s.WriteNs
			cells[base+"/coldOpen"] = s.ColdOpenNs
			cells[base+"/rebuild"] = s.RebuildNs
		}
		for _, w := range run.WAL {
			cells[fmt.Sprintf("wal/fsync=%v/nsPerBatch", w.Fsync)] = w.NsPerBatch
		}
		history[i] = runCells{
			host:  run.Host,
			key:   fmt.Sprintf("quick=%v/seed=%d", run.Quick, run.Seed),
			cells: cells,
		}
	}
	return compareCells("store", history, threshold)
}

// Benchfmt renders the run's measurements in the standard Go benchmark
// text format (one `Benchmark.../cell 1 N ns/op` line per cell plus the
// goos/goarch/cpu preamble), so the trajectories feed straight into
// benchstat and the x/perf tooling.
func (b *KernelRun) Benchfmt() string {
	var sb strings.Builder
	benchfmtPreamble(&sb, b.Host)
	for _, r := range b.Rows {
		fmt.Fprintf(&sb, "BenchmarkKernel/family=%s/n=%d/p=%d/workers=%d \t1\t%d ns/op\n",
			r.Family, r.N, r.P, r.Workers, r.NsPerOp)
	}
	return sb.String()
}

// Benchfmt renders the persistence run in Go benchmark text format.
func (r *StoreRun) Benchfmt() string {
	var sb strings.Builder
	benchfmtPreamble(&sb, r.Host)
	for _, s := range r.Snapshots {
		fmt.Fprintf(&sb, "BenchmarkStoreWrite/family=%s/n=%d \t1\t%d ns/op\n", s.Family, s.N, s.WriteNs)
		fmt.Fprintf(&sb, "BenchmarkStoreColdOpen/family=%s/n=%d \t1\t%d ns/op\n", s.Family, s.N, s.ColdOpenNs)
		fmt.Fprintf(&sb, "BenchmarkStoreRebuild/family=%s/n=%d \t1\t%d ns/op\n", s.Family, s.N, s.RebuildNs)
	}
	for _, w := range r.WAL {
		fmt.Fprintf(&sb, "BenchmarkWALAppend/fsync=%v \t1\t%d ns/op\n", w.Fsync, w.NsPerBatch)
	}
	return sb.String()
}

func benchfmtPreamble(sb *strings.Builder, h HostFingerprint) {
	if h.OS != "" {
		fmt.Fprintf(sb, "goos: %s\n", h.OS)
	}
	if h.Arch != "" {
		fmt.Fprintf(sb, "goarch: %s\n", h.Arch)
	}
	if h.CPU != "" {
		fmt.Fprintf(sb, "cpu: %s\n", h.CPU)
	}
}
