package bench

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"kplist/internal/graph"
	"kplist/internal/workload"
)

func TestE12Deterministic(t *testing.T) {
	cfg := Config{Seed: 1, DynN: 96}
	a, err := E12IncrementalChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := E12IncrementalChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if RenderAll(a) != RenderAll(b) {
		t.Fatal("E12 output not deterministic under seed")
	}
	if len(a) != 2 {
		t.Fatalf("E12 produced %d series", len(a))
	}
	out := RenderAll(a)
	for _, want := range []string{"incremental churn", "rebuild-trigger", "dK4add", "rebuild"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E12 output missing %q:\n%s", want, out)
		}
	}
	// Churn points carry real deltas; adversarial points carry the -1
	// sentinel and the rebuild flag.
	for _, p := range a[0].Points[1:] {
		if p.Meta["rebuild"] != 0 || p.Meta["dK4add"] < 0 {
			t.Fatalf("churn point %+v not incremental", p)
		}
	}
	for _, p := range a[1].Points[1:] {
		if p.Meta["rebuild"] != 1 || p.Meta["dK4add"] != -1 {
			t.Fatalf("adversarial point %+v not a rebuild", p)
		}
	}
}

// TestE12IncrementalSpeedup is the acceptance benchmark: on G(256, 0.4)
// with p = 4, applying a 1%-of-edges churn batch through the incremental
// engine must be at least 5× faster than the full-rebuild fallback
// (median over the batches of one schedule; in practice the gap is well
// over an order of magnitude). Skipped under -short: it times real work.
func TestE12IncrementalSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison; skipped in -short")
	}
	const n, p = 256, 4
	g := graph.ErdosRenyi(n, 0.4, rand.New(rand.NewSource(1)))
	tr, err := workload.GenerateTrace(g, workload.TraceSpec{
		Schedule:  workload.ScheduleChurn,
		Batches:   5,
		BatchSize: max(1, g.M()/100),
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}

	inc := graph.NewDynGraph(g, graph.DynConfig{}, p)
	// Forcing RebuildMinBatch below any batch size makes every apply take
	// the full-rebuild path on an otherwise identical engine.
	reb := graph.NewDynGraph(g, graph.DynConfig{RebuildFraction: 1e-12, RebuildMinBatch: -1}, p)

	var incTimes, rebTimes []time.Duration
	for i, batch := range tr.Batches {
		start := time.Now()
		di, err := inc.ApplyBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		incTimes = append(incTimes, time.Since(start))
		start = time.Now()
		dr, err := reb.ApplyBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		rebTimes = append(rebTimes, time.Since(start))
		if di.Rebuilt || !dr.Rebuilt {
			t.Fatalf("batch %d: modes wrong (inc rebuilt=%v, reb rebuilt=%v)", i, di.Rebuilt, dr.Rebuilt)
		}
		// Both engines agree exactly after every batch.
		ci, _ := inc.Count(p)
		cr, _ := reb.Count(p)
		if ci != cr {
			t.Fatalf("batch %d: incremental K4 count %d != rebuild %d", i, ci, cr)
		}
	}
	incMed, rebMed := median(incTimes), median(rebTimes)
	speedup := float64(rebMed) / float64(incMed)
	t.Logf("incremental median %v, rebuild median %v, speedup %.1f×", incMed, rebMed, speedup)
	if speedup < 5 {
		t.Fatalf("incremental apply only %.1f× faster than rebuild (want ≥ 5×)", speedup)
	}
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
