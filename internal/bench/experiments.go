package bench

import (
	"fmt"
	"math"
	"math/rand"

	"kplist/internal/algebraic"
	"kplist/internal/arblist"
	"kplist/internal/baseline"
	"kplist/internal/congest"
	"kplist/internal/core"
	"kplist/internal/graph"
	"kplist/internal/sparselist"
)

// Config sizes an experiment run. The zero value is filled with the
// defaults used by cmd/benchrunner; bench_test.go passes smaller sizes.
type Config struct {
	// Sizes is the n sweep for E1/E2/E4/E5.
	Sizes []int
	// Density is the background edge probability for CONGEST sweeps.
	Density float64
	// EdgeCounts is the m sweep for E3 (at fixed CCN).
	EdgeCounts []int
	// CCN is the fixed n for the E3 congested-clique sweep.
	CCN int
	// Ps is the clique-size sweep for E1/E3/E5.
	Ps []int
	// Seed drives all randomness.
	Seed int64
	// PoolSizes is the session-pool capacity sweep for E11 (default
	// 1, 2, 4).
	PoolSizes []int
	// Repeats averages each sweep point over this many seeds (default 3)
	// to damp the discrete k^{1/p} radix and min-degree variance.
	Repeats int
	// FinalExponent is the outer-loop cutoff passed to the pipeline. The
	// paper's max(3/4, p/(p+2)) only bites at astronomical n (see
	// EXPERIMENTS.md); the default 0.45 forces the machinery to run so its
	// round structure is measurable. Set to a negative value to use the
	// paper-literal cutoff.
	FinalExponent float64
	// Workers bounds the host goroutines used to simulate parallel
	// per-cluster phases (threaded through core and arblist). 0 means
	// GOMAXPROCS; the measured round bills are identical for every value —
	// only wall-clock changes.
	Workers int
	// WorkloadSizes is the n sweep for the E9/E10 workload-family
	// experiments; empty uses a default ladder that keeps the dense
	// families within the exact-listing budget.
	WorkloadSizes []int
	// DynN is the vertex count for the E12 dynamic-graph churn experiment
	// (default 256, the acceptance-benchmark size).
	DynN int
}

func (c Config) withDefaults() Config {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{256, 384, 512, 768, 1024, 1536, 2048}
	}
	if c.Density == 0 {
		c.Density = 0.7
	}
	if len(c.EdgeCounts) == 0 {
		c.EdgeCounts = []int{500, 1000, 2000, 4000, 8000, 16000, 32000}
	}
	if c.CCN == 0 {
		c.CCN = 256
	}
	if len(c.Ps) == 0 {
		c.Ps = []int{4, 5, 6}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	if c.FinalExponent == 0 {
		c.FinalExponent = 0.4
	} else if c.FinalExponent < 0 {
		c.FinalExponent = 0
	}
	return c
}

// communityGraph generates the round-shape workload: four dense bipartite
// pockets (the clusters — heavy communication loads, zero pocket-internal
// cliques), satellite vertices attached below the peel threshold (so they
// are genuinely outside the clusters: some heavy, some light, with
// satellite–satellite edges for the light-learning phase to discover), and
// a few planted K6s so listing outputs are non-trivial. It returns the
// graph and the explicit cluster threshold matched to the pocket density.
// Exact listing stays tractable at n in the thousands because bipartite
// pockets are Kp-free.
func communityGraph(n int, density float64, seed int64) (*graph.Graph, int) {
	rng := rand.New(rand.NewSource(seed + int64(n)))
	const pockets = 4
	pocketSize := n / 6
	if pocketSize < 8 {
		pocketSize = 8
	}
	var edges []graph.Edge
	base := 0
	for c := 0; c < pockets && base+pocketSize <= n; c++ {
		sub := graph.RandomBipartite(pocketSize, density, rng)
		for _, e := range sub.Edges() {
			edges = append(edges, graph.Edge{U: e.U + graph.V(base), V: e.V + graph.V(base)})
		}
		base += pocketSize
	}
	// Threshold: half the expected pocket cross-degree, so pockets survive
	// the peel and satellites do not.
	threshold := int(density * float64(pocketSize) / 4)
	if threshold < 2 {
		threshold = 2
	}
	// Satellites: heavy ones exceed the n^{1/4}-ish heavy threshold within
	// one pocket; light ones sit below it; all stay below the peel
	// threshold. Light satellites also link to each other so the
	// light-learning phase has outside edges to discover.
	heavyDeg := int(math.Pow(float64(n), 0.25)) + 4
	if heavyDeg >= threshold {
		heavyDeg = threshold - 1
	}
	var prevLight graph.V = -1
	for v := base; v < n; v++ {
		pocket := rng.Intn(pockets)
		lo := pocket * pocketSize
		if v%3 == 0 && heavyDeg > 0 { // heavy satellite
			for i := 0; i < heavyDeg; i++ {
				edges = append(edges, graph.Edge{U: graph.V(v), V: graph.V(lo + rng.Intn(pocketSize))})
			}
		} else { // light satellite
			for i := 0; i < 3; i++ {
				edges = append(edges, graph.Edge{U: graph.V(v), V: graph.V(lo + rng.Intn(pocketSize))})
			}
			if prevLight >= 0 {
				edges = append(edges, graph.Edge{U: graph.V(v), V: prevLight})
			}
			prevLight = graph.V(v)
		}
	}
	g := graph.MustNew(n, edges)
	// Plant three K6s on top (anywhere) so the listing output is nonzero.
	planted, _ := graph.PlantedCliques(n, 6, 3, 0, rng)
	full := graph.Union(graph.NewEdgeList(g.Edges()), graph.NewEdgeList(planted.Edges()))
	return graph.MustNew(n, full), threshold
}

// E1Theorem11 sweeps n for each p and measures the Theorem 1.1 pipeline's
// round bill; the paper predicts exponent max(3/4, p/(p+2)).
func E1Theorem11(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	var out []Series
	for _, p := range cfg.Ps {
		// Workload-derived reference: the dominant in-cluster listing phase
		// charges p²·m_C/k^{1+2/p} with m_C ∝ n² and k ∝ n on the community
		// family, i.e. exponent 1−2/p (see EXPERIMENTS.md for the mapping to
		// the theorem's n^{p/(p+2)}).
		expected := 1 - 2.0/float64(p)
		s := Series{
			Name:     fmt.Sprintf("E1: Theorem 1.1 rounds vs n (p=%d, community workload, pocket density %.2f)", p, cfg.Density),
			XLabel:   "n",
			Expected: expected,
		}
		for _, n := range cfg.Sizes {
			var sumRounds, sumMsgs int64
			var sumCliques, sumOuter float64
			for r := 0; r < cfg.Repeats; r++ {
				seed := cfg.Seed + int64(r)*9973
				g, thr := communityGraph(n, cfg.Density, seed)
				var ledger congest.Ledger
				res, err := core.ListCliques(g, core.Params{
					P: p, Seed: seed, FinalExponent: cfg.FinalExponent, ClusterThreshold: thr,
					Workers: cfg.Workers,
				}, congest.UnitCosts(), &ledger)
				if err != nil {
					return nil, fmt.Errorf("E1 n=%d p=%d: %w", n, p, err)
				}
				sumRounds += ledger.Rounds()
				sumMsgs += ledger.Messages()
				sumCliques += float64(res.Cliques.Len())
				sumOuter += float64(res.OuterIterations)
			}
			rep := int64(cfg.Repeats)
			s.Points = append(s.Points, Point{
				X:        float64(n),
				Rounds:   sumRounds / rep,
				Messages: sumMsgs / rep,
				Meta: map[string]float64{
					"cliques": sumCliques / float64(rep),
					"outer":   sumOuter / float64(rep),
				},
			})
		}
		out = append(out, s)
	}
	return out, nil
}

// E2FastK4 compares the Theorem 1.2 fast-K4 path against the general
// pipeline at p=4; the paper predicts exponents 2/3 vs 3/4.
func E2FastK4(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	fast := Series{Name: "E2: Theorem 1.2 fast-K4 rounds vs n", XLabel: "n", Expected: 0.5}
	gen := Series{Name: "E2: general pipeline (p=4) rounds vs n", XLabel: "n", Expected: 0.5}
	for _, n := range cfg.Sizes {
		for _, mode := range []struct {
			series *Series
			fastK4 bool
		}{{&fast, true}, {&gen, false}} {
			var sumRounds, sumMsgs int64
			var sumCliques float64
			for r := 0; r < cfg.Repeats; r++ {
				seed := cfg.Seed + int64(r)*9973
				g, thr := communityGraph(n, cfg.Density, seed)
				var ledger congest.Ledger
				res, err := core.ListCliques(g, core.Params{
					P: 4, FastK4: mode.fastK4, Seed: seed, FinalExponent: cfg.FinalExponent,
					ClusterThreshold: thr, Workers: cfg.Workers,
				}, congest.UnitCosts(), &ledger)
				if err != nil {
					return nil, fmt.Errorf("E2 n=%d fast=%v: %w", n, mode.fastK4, err)
				}
				sumRounds += ledger.Rounds()
				sumMsgs += ledger.Messages()
				sumCliques += float64(res.Cliques.Len())
			}
			rep := int64(cfg.Repeats)
			mode.series.Points = append(mode.series.Points, Point{
				X:        float64(n),
				Rounds:   sumRounds / rep,
				Messages: sumMsgs / rep,
				Meta:     map[string]float64{"cliques": sumCliques / float64(rep)},
			})
		}
	}
	return []Series{fast, gen}, nil
}

// E3CongestedClique sweeps m at fixed n for each p; Theorem 1.3 predicts
// rounds ≈ max(1, m/n^{1+2/p}) — flat below the crossover, linear above.
func E3CongestedClique(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	ps := cfg.Ps
	if len(ps) == 0 || ps[0] > 3 {
		ps = append([]int{3}, ps...)
	}
	var out []Series
	for _, p := range ps {
		crossover := math.Pow(float64(cfg.CCN), 1+2.0/float64(p))
		s := Series{
			Name:   fmt.Sprintf("E3: Theorem 1.3 rounds vs m (CONGESTED CLIQUE, n=%d, p=%d, crossover m≈%.0f)", cfg.CCN, p, crossover),
			XLabel: "m",
		}
		for _, m := range cfg.EdgeCounts {
			maxM := cfg.CCN * (cfg.CCN - 1) / 2
			if m > maxM {
				continue
			}
			// Guard: exact listing must enumerate every clique; skip
			// points whose expected output exceeds the simulation budget
			// (the skip is reported, not silent — the m value is absent
			// from the table and noted in EXPERIMENTS.md).
			if expectedCliques(cfg.CCN, m, p) > 5e6 {
				continue
			}
			g := graph.GNM(cfg.CCN, m, rand.New(rand.NewSource(cfg.Seed+int64(m))))
			var ledger congest.Ledger
			res, err := sparselist.CongestedCliqueOnGraph(g, p, cfg.Seed, cfg.Workers, congest.UnitCosts(), &ledger)
			if err != nil {
				return nil, fmt.Errorf("E3 m=%d p=%d: %w", m, p, err)
			}
			s.Points = append(s.Points, Point{
				X:        float64(m),
				Rounds:   ledger.Rounds(),
				Messages: ledger.Messages(),
				Meta: map[string]float64{
					"cliques":   float64(res.Cliques.Len()),
					"predicted": math.Max(1, float64(m)/crossover),
				},
			})
		}
		out = append(out, s)
	}
	return out, nil
}

// expectedCliques estimates E[#Kp] of G(n,m): C(n,p)·q^{C(p,2)} with
// q = m / C(n,2).
func expectedCliques(n, m, p int) float64 {
	q := float64(m) / (float64(n) * float64(n-1) / 2)
	binom := 1.0
	for i := 0; i < p; i++ {
		binom = binom * float64(n-i) / float64(i+1)
	}
	return binom * math.Pow(q, float64(p*(p-1)/2))
}

// E4Comparison pits this paper's K4/K5 against the Eden-style baseline and
// the trivial broadcast at matched n — the §1 comparison table. Each point
// is averaged over cfg.Repeats seeds.
func E4Comparison(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	ours4 := Series{Name: "E4: this paper K4 (fast, Thm 1.2)", XLabel: "n", Expected: 0.5}
	ours5 := Series{Name: "E4: this paper K5 (Thm 1.1)", XLabel: "n", Expected: 0.6}
	eden := Series{Name: "E4: Eden-style K4 (DISC 19, prev. SOTA)", XLabel: "n", Expected: 1}
	bcast := Series{Name: "E4: trivial broadcast K4 (Remark 2.6)", XLabel: "n", Expected: 1}
	type acc struct {
		rounds, msgs int64
		cliques      float64
	}
	for _, n := range cfg.Sizes {
		var a4, a5, ae, ab acc
		for r := 0; r < cfg.Repeats; r++ {
			seed := cfg.Seed + int64(r)*9973
			g, thr := communityGraph(n, cfg.Density, seed)
			var l1 congest.Ledger
			r1, err := core.ListCliques(g, core.Params{
				P: 4, FastK4: true, Seed: seed, FinalExponent: cfg.FinalExponent,
				ClusterThreshold: thr, Workers: cfg.Workers,
			}, congest.UnitCosts(), &l1)
			if err != nil {
				return nil, fmt.Errorf("E4 ours4 n=%d: %w", n, err)
			}
			a4.rounds += l1.Rounds()
			a4.msgs += l1.Messages()
			a4.cliques += float64(r1.Cliques.Len())
			var l5 congest.Ledger
			r5, err := core.ListCliques(g, core.Params{
				P: 5, Seed: seed, FinalExponent: cfg.FinalExponent,
				ClusterThreshold: thr, Workers: cfg.Workers,
			}, congest.UnitCosts(), &l5)
			if err != nil {
				return nil, fmt.Errorf("E4 ours5 n=%d: %w", n, err)
			}
			a5.rounds += l5.Rounds()
			a5.msgs += l5.Messages()
			a5.cliques += float64(r5.Cliques.Len())
			var l2 congest.Ledger
			r2, err := baseline.EdenK4List(g, baseline.EdenK4Params{Seed: seed, ClusterThreshold: thr},
				congest.UnitCosts(), &l2)
			if err != nil {
				return nil, fmt.Errorf("E4 eden n=%d: %w", n, err)
			}
			ae.rounds += l2.Rounds()
			ae.msgs += l2.Messages()
			ae.cliques += float64(r2.Len())
			var l3 congest.Ledger
			r3, err := baseline.BroadcastListGraph(g, 4, congest.UnitCosts(), &l3)
			if err != nil {
				return nil, fmt.Errorf("E4 bcast n=%d: %w", n, err)
			}
			ab.rounds += l3.Rounds()
			ab.msgs += l3.Messages()
			ab.cliques += float64(r3.Len())
		}
		rep := int64(cfg.Repeats)
		for _, pair := range []struct {
			s *Series
			a acc
		}{{&ours4, a4}, {&ours5, a5}, {&eden, ae}, {&bcast, ab}} {
			pair.s.Points = append(pair.s.Points, Point{
				X: float64(n), Rounds: pair.a.rounds / rep, Messages: pair.a.msgs / rep,
				Meta: map[string]float64{"cliques": pair.a.cliques / float64(rep)},
			})
		}
	}
	return []Series{ours4, ours5, eden, bcast}, nil
}

// E5LowerBoundGap reports measured rounds ÷ n^{(p-2)/p}, the proximity to
// the Fischer et al. lower bound.
func E5LowerBoundGap(cfg Config) ([]Series, error) {
	cfg = cfg.withDefaults()
	e1, err := E1Theorem11(cfg)
	if err != nil {
		return nil, err
	}
	var out []Series
	for i, p := range cfg.Ps {
		s := Series{
			Name:   fmt.Sprintf("E5: rounds / n^{(p-2)/p} vs n (p=%d; LB Ω̃(n^{%.3f}))", p, float64(p-2)/float64(p)),
			XLabel: "n",
		}
		for _, pt := range e1[i].Points {
			lb := math.Pow(pt.X, float64(p-2)/float64(p))
			s.Points = append(s.Points, Point{
				X: pt.X, Rounds: pt.Rounds, Messages: pt.Messages,
				Meta: map[string]float64{"gap": float64(pt.Rounds) / lb},
			})
		}
		out = append(out, s)
	}
	return out, nil
}

// E6IterativeDecay traces the inner structure of the pipeline on a
// power-law graph (dense core, sparse fringe — the family that makes the
// iterations non-trivial): |Er| per ARB-LIST pass (paper: ≤ |Er|/4 + bad)
// and the arboricity ladder of the outer loop (paper: halving).
func E6IterativeDecay(n int, density float64, seed int64, workers int) ([]Series, error) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.ChungLu(graph.PowerLawWeights(n, 2.2, 12), rng)
	const thr = 6
	var ledger congest.Ledger
	lres, err := arblist.List(g.N(), graph.NewEdgeList(g.Edges()),
		arblist.Params{P: 4, Seed: seed, ClusterThreshold: thr, Workers: workers}, congest.UnitCosts(), &ledger)
	if err != nil {
		return nil, fmt.Errorf("E6 LIST: %w", err)
	}
	erDecay := Series{Name: fmt.Sprintf("E6a: |Er| per ARB-LIST pass (power-law n=%d, paper: ≤ |Er|/4 + bad)", n), XLabel: "pass"}
	for i, sz := range lres.ErSizes {
		erDecay.Points = append(erDecay.Points, Point{X: float64(i), Rounds: int64(sz)})
	}
	var ledger2 congest.Ledger
	cres, err := core.ListCliques(g, core.Params{P: 4, Seed: seed, FinalExponent: 0.1, ClusterThreshold: thr, Workers: workers}, congest.UnitCosts(), &ledger2)
	if err != nil {
		return nil, fmt.Errorf("E6 core: %w", err)
	}
	ladder := Series{Name: fmt.Sprintf("E6b: arboricity bound per outer pass (power-law n=%d, paper: halving)", n), XLabel: "pass"}
	for i, a := range cres.ArboricityLadder {
		ladder.Points = append(ladder.Points, Point{X: float64(i), Rounds: int64(a)})
	}
	_ = density
	return []Series{erDecay, ladder}, nil
}

// celebrityGraph builds the E7a workload: one dense bipartite pocket with
// four "celebrity" members (two per side, so celebrity–celebrity edges
// exist) to which a long chain of light satellites attaches. Celebrities
// accumulate hundreds of C-light neighbors — exactly the bad-node
// situation §2.4.1 defends against.
func celebrityGraph(n, pocket int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	sub := graph.RandomBipartite(pocket, 0.7, rng)
	edges = append(edges, sub.Edges()...)
	celebs := []graph.V{0, 1, graph.V(pocket / 2), graph.V(pocket/2 + 1)}
	for v := pocket; v < n; v++ {
		edges = append(edges, graph.Edge{U: graph.V(v), V: celebs[rng.Intn(len(celebs))]})
		edges = append(edges, graph.Edge{U: graph.V(v), V: celebs[rng.Intn(len(celebs))]})
		edges = append(edges, graph.Edge{U: graph.V(v), V: graph.V(4 + rng.Intn(pocket-4))})
		if v > pocket {
			edges = append(edges, graph.Edge{U: graph.V(v), V: graph.V(v - 1)})
		}
	}
	return graph.MustNew(n, edges)
}

// E7Ablations measures the design choices §1.2 calls out:
// (a) bad-edge delaying on/off on the celebrity workload → light-learning
// rounds and max per-node learned edges,
// (b) sparsity-aware vs naive in-cluster listing across sizes,
// (c) heavy-threshold sweep.
func E7Ablations(n int, density float64, seed int64, workers int) ([]Series, error) {
	// (a) bad-edge delaying on the celebrity workload.
	gc := celebrityGraph(maxI(n, 320), 80, seed)
	elc := graph.NewEdgeList(gc.Edges())
	aOn := Series{Name: fmt.Sprintf("E7a: bad-edge delaying ON (celebrity workload, n=%d)", gc.N()), XLabel: "n"}
	aOff := Series{Name: "E7a: bad-edge delaying OFF (threshold ∞)", XLabel: "n"}
	for _, mode := range []struct {
		s   *Series
		thr int
	}{{&aOn, 0}, {&aOff, 1 << 30}} {
		var ledger congest.Ledger
		res, err := arblist.ArbList(gc.N(), nil, nil, elc,
			arblist.Params{P: 4, Seed: seed, BadThreshold: mode.thr, ClusterThreshold: 10, Workers: workers},
			congest.UnitCosts(), &ledger)
		if err != nil {
			return nil, fmt.Errorf("E7a: %w", err)
		}
		mode.s.Points = append(mode.s.Points, Point{
			X: float64(gc.N()), Rounds: ledger.Rounds(), Messages: ledger.Messages(),
			Meta: map[string]float64{
				"maxLearned":  float64(res.Stats.MaxLearned),
				"badEdges":    float64(res.Stats.BadEdges),
				"badNodes":    float64(res.Stats.BadNodes),
				"lightLearnR": float64(ledger.Phase("arb-light-learn").Rounds),
			},
		})
	}

	// (b) sparsity-aware vs naive in-cluster listing across sizes: the
	// sparsity-aware delivery pays p²/t² of the edge set per node, the
	// naive collector pays the whole edge set at one node — the crossover
	// sits where t² = k^{2/p} overtakes p².
	bOurs := Series{Name: "E7b: sparsity-aware in-cluster listing (ours)", XLabel: "n"}
	bNaive := Series{Name: "E7b: naive collector in-cluster listing (Eden-style)", XLabel: "n"}
	for _, nn := range []int{240, 768, 1536} {
		g, thr := communityGraph(nn, 0.7, seed)
		el := graph.NewEdgeList(g.Edges())
		var ledger congest.Ledger
		if _, err := arblist.ArbList(g.N(), nil, nil, el,
			arblist.Params{P: 4, Seed: seed, ClusterThreshold: thr, Workers: workers},
			congest.UnitCosts(), &ledger); err != nil {
			return nil, err
		}
		pc := ledger.Phase("cluster-sparse-listing")
		bOurs.Points = append(bOurs.Points, Point{X: float64(nn), Rounds: pc.Rounds, Messages: pc.Messages})
		var ledger2 congest.Ledger
		if _, err := baseline.EdenK4List(g, baseline.EdenK4Params{
			ClusterThreshold: thr, Seed: seed}, congest.UnitCosts(), &ledger2); err != nil {
			return nil, err
		}
		pn := ledger2.Phase("eden-naive-listing")
		bNaive.Points = append(bNaive.Points, Point{X: float64(nn), Rounds: pn.Rounds, Messages: pn.Messages})
	}

	// (c) heavy-threshold sweep on the community workload.
	g7, thr7 := communityGraph(maxI(n, 240), 0.7, seed)
	el7 := graph.NewEdgeList(g7.Edges())
	c := Series{Name: fmt.Sprintf("E7c: rounds vs heavy threshold (community n=%d)", g7.N()), XLabel: "heavyThr"}
	for _, thr := range []int{2, 4, 8, 16, 32} {
		var ledger congest.Ledger
		res, err := arblist.ArbList(g7.N(), nil, nil, el7,
			arblist.Params{P: 4, Seed: seed, HeavyThreshold: thr, ClusterThreshold: thr7, Workers: workers},
			congest.UnitCosts(), &ledger)
		if err != nil {
			return nil, fmt.Errorf("E7c thr=%d: %w", thr, err)
		}
		c.Points = append(c.Points, Point{
			X: float64(thr), Rounds: ledger.Rounds(), Messages: ledger.Messages(),
			Meta: map[string]float64{
				"heavy": float64(res.Stats.HeavyNodes),
				"light": float64(res.Stats.LightNodes),
			},
		})
	}
	_ = density
	return []Series{aOn, aOff, bOurs, bNaive, c}, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E8CountingVsListing reproduces the §5 discussion: triangle counting via
// the algebraic route (O(n^{1/3}) rounds) against the sparsity-aware
// lister (Θ̃(1 + m/n^{5/3}) rounds) in the CONGESTED CLIQUE, sweeping
// density at fixed n. The lister wins while the graph is sparse; the
// counter wins once m crosses ≈ n^{4/3+1/3}.
func E8CountingVsListing(n int, seed int64, workers int) ([]Series, error) {
	counting := Series{Name: fmt.Sprintf("E8: algebraic triangle counting (CC, n=%d)", n), XLabel: "m"}
	listing := Series{Name: fmt.Sprintf("E8: sparsity-aware triangle listing (CC, n=%d)", n), XLabel: "m"}
	maxM := n * (n - 1) / 2
	for _, frac := range []float64{0.02, 0.05, 0.1, 0.2, 0.4, 0.8} {
		m := int(frac * float64(maxM))
		g := graph.GNM(n, m, rand.New(rand.NewSource(seed+int64(m))))
		var lc congest.Ledger
		count, err := algebraic.TriangleCountCC(g, congest.UnitCosts(), &lc)
		if err != nil {
			return nil, fmt.Errorf("E8 count m=%d: %w", m, err)
		}
		counting.Points = append(counting.Points, Point{
			X: float64(m), Rounds: lc.Rounds(), Messages: lc.Messages(),
			Meta: map[string]float64{"triangles": float64(count)},
		})
		var ll congest.Ledger
		res, err := sparselist.CongestedCliqueOnGraph(g, 3, seed, workers, congest.UnitCosts(), &ll)
		if err != nil {
			return nil, fmt.Errorf("E8 list m=%d: %w", m, err)
		}
		if int64(res.Cliques.Len()) != count {
			return nil, fmt.Errorf("E8 m=%d: lister found %d triangles, counter %d", m, res.Cliques.Len(), count)
		}
		listing.Points = append(listing.Points, Point{
			X: float64(m), Rounds: ll.Rounds(), Messages: ll.Messages(),
			Meta: map[string]float64{"triangles": float64(count)},
		})
	}
	return []Series{counting, listing}, nil
}
