package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"kplist/internal/graph"
)

// The kernel throughput trajectory: wall-clock measurements of the
// enumeration kernel (DESIGN.md §8) across the sparsity regimes and
// worker counts. `benchrunner -kernelbench` APPENDS each run to
// BENCH_kernel.json (the same runs-trajectory shape BENCH_store.json
// uses) so the listing-path perf history accumulates across commits and
// the -compare gate can judge the newest run against its own host's
// median. Clique counts are deterministic under the seed (and
// sanity-check the run); ns/op is hardware-dependent and deliberately
// kept out of the golden tests.

// KernelMeasurement is one (graph family, p, workers) cell of the sweep.
type KernelMeasurement struct {
	Family  string `json:"family"`
	N       int    `json:"n"`
	M       int    `json:"m"`
	P       int    `json:"p"`
	Workers int    `json:"workers"`
	Cliques int64  `json:"cliques"`
	NsPerOp int64  `json:"nsPerOp"`
}

// KernelRun is one benchrunner invocation's worth of kernel measurements
// — one point on the BENCH_kernel.json trajectory. The pre-trajectory
// BENCH_kernel.json document was exactly this shape minus date, host and
// workers, which is what lets the migration wrap the old frozen baseline
// verbatim as run 0.
type KernelRun struct {
	Date       string          `json:"date,omitempty"`
	Host       HostFingerprint `json:"host,omitzero"`
	GoVersion  string          `json:"goVersion"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Quick      bool            `json:"quick"`
	Seed       int64           `json:"seed"`
	// Workers is the -workers flag the sweep ran under (0 = the default
	// {1, 8} ladder); the per-cell counts are in the rows.
	Workers int                 `json:"workers,omitempty"`
	Rows    []KernelMeasurement `json:"rows"`
}

// KernelTrajectory is the BENCH_kernel.json document: the append-only run
// trajectory (newest last).
type KernelTrajectory struct {
	Runs []KernelRun `json:"runs"`
}

// kernelBenchGraphs builds the family sweep. quick shrinks the dense
// instance, which dominates the runtime.
func kernelBenchGraphs(seed int64, quick bool) []struct {
	family string
	g      *graph.Graph
} {
	sparseN, denseN, plantedN := 1024, 256, 512
	if quick {
		sparseN, denseN, plantedN = 512, 128, 256
	}
	rng := func(off int64) *rand.Rand { return rand.New(rand.NewSource(seed + off)) }
	planted, _ := graph.PlantedCliques(plantedN, 5, 8, 0.05, rng(2))
	return []struct {
		family string
		g      *graph.Graph
	}{
		{"sparse-gnp", graph.ErdosRenyi(sparseN, 0.02, rng(0))},
		{"dense-gnp", graph.ErdosRenyi(denseN, 0.4, rng(1))},
		{"planted", planted},
	}
}

// KernelBench measures the full listing path (enumerate, materialize,
// sort) for every family × p × workers cell, taking the best of reps
// runs after a kernel warm-up. workers sizes the parallel leg of the
// sweep: ≤ 0 keeps the default {1, 8} ladder, 1 measures only the
// sequential leg, and any other value replaces 8 — so `benchrunner
// -workers N` measures the fan-out it will actually serve with.
func KernelBench(seed int64, quick bool, workers int) *KernelRun {
	// Best-of-7: on shared/virtualized hardware a best-of-3 cell still
	// jitters ~10% between back-to-back runs, which is above the -compare
	// gate's 8% base threshold; taking the minimum over more repetitions
	// (external load only ever adds time) keeps run-to-run cell variance
	// comfortably inside the gate.
	reps := 7
	if quick {
		reps = 3
	}
	sweep := []int{1, 8}
	switch {
	case workers == 1:
		sweep = []int{1}
	case workers > 1:
		sweep = []int{1, workers}
	}
	out := &KernelRun{
		Date:       time.Now().UTC().Format(time.RFC3339),
		Host:       Fingerprint(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Seed:       seed,
		Workers:    max(workers, 0),
	}
	for _, tc := range kernelBenchGraphs(seed, quick) {
		for _, p := range []int{3, 4, 5} {
			for _, workers := range sweep {
				tc.g.CountCliquesWorkers(p, workers) // warm the kernel + arenas
				best := time.Duration(1<<63 - 1)
				var cliques int64
				for r := 0; r < reps; r++ {
					start := time.Now()
					cs := tc.g.ListCliquesWorkers(p, workers)
					if d := time.Since(start); d < best {
						best = d
					}
					cliques = int64(len(cs))
				}
				out.Rows = append(out.Rows, KernelMeasurement{
					Family:  tc.family,
					N:       tc.g.N(),
					M:       tc.g.M(),
					P:       p,
					Workers: workers,
					Cliques: cliques,
					NsPerOp: best.Nanoseconds(),
				})
			}
		}
	}
	return out
}

// Table renders the run as an aligned text table (clique counts are
// the deterministic signature; ns/op is informational).
func (b *KernelRun) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# kernel listing throughput (%s, GOMAXPROCS=%d, seed=%d)\n",
		b.GoVersion, b.GOMAXPROCS, b.Seed)
	fmt.Fprintf(&sb, "%12s %6s %8s %3s %8s %12s %14s\n",
		"family", "n", "m", "p", "workers", "cliques", "ns/op")
	for _, r := range b.Rows {
		fmt.Fprintf(&sb, "%12s %6d %8d %3d %8d %12d %14d\n",
			r.Family, r.N, r.M, r.P, r.Workers, r.Cliques, r.NsPerOp)
	}
	return sb.String()
}
