package bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"kplist"
	"kplist/internal/workload"
)

// E15 measures the approximate query tier (DESIGN.md §14): for each
// (n, p) cell of a dense stochastic-block sweep, the four costs a planner
// chooses between — the exact kernel count, the from-scratch HLL sketch
// inscription, an estimate served from the maintained (warm) sketch, and
// a fixed-size seeded edge-sampling estimate. Everything is wall-clock,
// so E15 is never golden-pinned; `benchrunner -sketchbench
// BENCH_sketch.json` APPENDS each run to the committed trajectory like
// the kernel, store, and cluster sweeps.

// SketchMeasurement is one (family, n, p) cell of the estimator sweep.
type SketchMeasurement struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	M      int    `json:"m"`
	P      int    `json:"p"`
	// ExactNs is the streaming exact kernel count (the planner's
	// "budget permitting" path).
	ExactNs int64 `json:"exactNs"`
	// SketchBuildNs is a from-scratch CliqueHLL inscription of the whole
	// distinct-clique set on a cold session — the cost mode=estimate pays
	// once before the maintained sketch starts answering for free.
	SketchBuildNs int64 `json:"sketchBuildNs"`
	// SketchQueryNs is an estimate served from the warm maintained sketch
	// (the steady-state mode=estimate cost).
	SketchQueryNs int64 `json:"sketchQueryNs"`
	// SampleNs is a seeded edge-sampling estimate at a fixed sample count
	// (the planner's fallback when no sketch is fresh and exact is over
	// budget).
	SampleNs int64 `json:"sampleNs"`
	// Samples is the fixed per-estimate sample count behind SampleNs.
	Samples int `json:"samples"`
	// ExactCount pins the ground truth; SketchEstimate and SampleEstimate
	// record the estimates so a run documents its accuracy, not just its
	// speed (the statistical guarantees are tested in internal/sketch).
	ExactCount     int64   `json:"exactCount"`
	SketchEstimate float64 `json:"sketchEstimate"`
	SampleEstimate float64 `json:"sampleEstimate"`
}

// SketchRun is one benchrunner invocation's worth of estimator cells —
// one point on the BENCH_sketch.json trajectory.
type SketchRun struct {
	Date       string              `json:"date"`
	Host       HostFingerprint     `json:"host,omitzero"`
	GoVersion  string              `json:"goVersion"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Quick      bool                `json:"quick"`
	Seed       int64               `json:"seed"`
	Cells      []SketchMeasurement `json:"cells"`
}

// SketchBaseline is the BENCH_sketch.json document: the append-only run
// trajectory (newest last).
type SketchBaseline struct {
	Runs []SketchRun `json:"runs"`
}

// bestOfPerOp times iters back-to-back calls of fn per rep and returns
// the best rep's per-call nanoseconds. The sketch cells are µs-scale (a
// warm sketch read is ~10µs), where a single call's best-of still
// straddles scheduler slices; batching widens the timed unit to ms scale
// so the per-op figure averages over the noise instead of sampling it.
func bestOfPerOp(reps, iters int, fn func() error) int64 {
	best := bestOf(reps, func() error {
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				return err
			}
		}
		return nil
	})
	return best.Nanoseconds() / int64(iters)
}

// SketchBench runs the estimator sweep on dense stochastic-block graphs
// (the regime where the approximate tier earns its keep: the exact
// kernel's priced cost grows with m·d^(p−2) while the sample and warm
// sketch paths stay flat).
func SketchBench(seed int64, quick bool) (*SketchRun, error) {
	reps := 5
	sizes := []int{256, 384}
	samples := 8192
	if quick {
		reps = 3
		sizes = []int{128, 192}
		samples = 2048
	}
	const family = workload.FamilyStochasticBlock
	ctx := context.Background()
	run := &SketchRun{
		Date:       time.Now().UTC().Format(time.RFC3339),
		Host:       Fingerprint(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Seed:       seed,
	}
	for _, n := range sizes {
		inst, err := workload.Generate(workload.DefaultSpec(family, n, seed))
		if err != nil {
			return nil, fmt.Errorf("sketchbench n=%d: %w", n, err)
		}
		for _, p := range []int{3, 4} {
			m := SketchMeasurement{Family: family, N: n, M: inst.G.M(), P: p, Samples: samples}

			// Exact kernel count: Estimate's exact path re-counts every
			// call (no memo), so a warm session times the kernel itself.
			exactSess := kplist.NewSession(inst.G, kplist.SessionConfig{})
			exact, err := exactSess.Estimate(ctx, kplist.EstimateRequest{P: p, Method: kplist.EstimateExact, Seed: seed})
			if err != nil {
				exactSess.Close()
				return nil, fmt.Errorf("sketchbench n=%d p=%d exact: %w", n, p, err)
			}
			m.ExactCount = int64(exact.Estimate)
			m.ExactNs = bestOfPerOp(reps, 16, func() error {
				_, err := exactSess.Estimate(ctx, kplist.EstimateRequest{P: p, Method: kplist.EstimateExact, Seed: seed})
				return err
			})
			exactSess.Close()

			// Cold sketch build: a fresh session per call, or the maintained
			// sketch memo would serve every call after the first for free.
			m.SketchBuildNs = bestOfPerOp(reps, 8, func() error {
				sess := kplist.NewSession(inst.G, kplist.SessionConfig{})
				defer sess.Close()
				res, err := sess.Estimate(ctx, kplist.EstimateRequest{P: p, Method: kplist.EstimateHLL, Seed: seed})
				if err == nil {
					m.SketchEstimate = res.Estimate
				}
				return err
			})

			// Warm sketch estimate: one session builds once, then every
			// further estimate reads the published registers.
			warmSess := kplist.NewSession(inst.G, kplist.SessionConfig{})
			if _, err := warmSess.Estimate(ctx, kplist.EstimateRequest{P: p, Method: kplist.EstimateHLL, Seed: seed}); err != nil {
				warmSess.Close()
				return nil, fmt.Errorf("sketchbench n=%d p=%d sketch warm: %w", n, p, err)
			}
			m.SketchQueryNs = bestOfPerOp(reps, 64, func() error {
				_, err := warmSess.Estimate(ctx, kplist.EstimateRequest{P: p, Method: kplist.EstimateHLL, Seed: seed})
				return err
			})

			// Edge sampling at a fixed sample count (deterministic cost and
			// replayable estimate: same seed, same answer).
			sample, err := warmSess.Estimate(ctx, kplist.EstimateRequest{
				P: p, Method: kplist.EstimateSample, Seed: seed, Samples: samples,
			})
			if err != nil {
				warmSess.Close()
				return nil, fmt.Errorf("sketchbench n=%d p=%d sample: %w", n, p, err)
			}
			m.SampleEstimate = sample.Estimate
			m.SampleNs = bestOfPerOp(reps, 4, func() error {
				_, err := warmSess.Estimate(ctx, kplist.EstimateRequest{
					P: p, Method: kplist.EstimateSample, Seed: seed, Samples: samples,
				})
				return err
			})
			warmSess.Close()

			run.Cells = append(run.Cells, m)
		}
	}
	return run, nil
}

// Table renders the run as an aligned text table (wall-clock —
// informational, never golden-pinned).
func (r *SketchRun) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# sketch: exact / HLL build / warm sketch / edge sampling (%s, GOMAXPROCS=%d, seed=%d)\n",
		r.GoVersion, r.GOMAXPROCS, r.Seed)
	fmt.Fprintf(&sb, "%18s %6s %8s %4s %12s %12s %12s %12s %10s %12s %12s\n",
		"family", "n", "m", "p", "exact-ns", "build-ns", "warm-ns", "sample-ns", "exact", "hll-est", "sample-est")
	for _, m := range r.Cells {
		fmt.Fprintf(&sb, "%18s %6d %8d %4d %12d %12d %12d %12d %10d %12.1f %12.1f\n",
			m.Family, m.N, m.M, m.P, m.ExactNs, m.SketchBuildNs, m.SketchQueryNs, m.SampleNs,
			m.ExactCount, m.SketchEstimate, m.SampleEstimate)
	}
	return sb.String()
}

// Benchfmt renders the sketch run in Go benchmark text format.
func (r *SketchRun) Benchfmt() string {
	var sb strings.Builder
	benchfmtPreamble(&sb, r.Host)
	for _, m := range r.Cells {
		fmt.Fprintf(&sb, "BenchmarkSketchExact/family=%s/n=%d/p=%d \t1\t%d ns/op\n",
			m.Family, m.N, m.P, m.ExactNs)
		fmt.Fprintf(&sb, "BenchmarkSketchBuild/family=%s/n=%d/p=%d \t1\t%d ns/op\n",
			m.Family, m.N, m.P, m.SketchBuildNs)
		fmt.Fprintf(&sb, "BenchmarkSketchWarm/family=%s/n=%d/p=%d \t1\t%d ns/op\n",
			m.Family, m.N, m.P, m.SketchQueryNs)
		fmt.Fprintf(&sb, "BenchmarkSketchSample/family=%s/n=%d/p=%d \t1\t%d ns/op\n",
			m.Family, m.N, m.P, m.SampleNs)
	}
	return sb.String()
}

// CompareSketch judges the newest sketch run against its same-host
// history. threshold ≤ 0 takes DefaultCompareThreshold.
func CompareSketch(traj *SketchBaseline, threshold float64) *CompareReport {
	if threshold <= 0 {
		threshold = DefaultCompareThreshold
	}
	history := make([]runCells, len(traj.Runs))
	for i, run := range traj.Runs {
		cells := make(map[string]int64)
		for _, m := range run.Cells {
			base := fmt.Sprintf("sketch/family=%s/n=%d/p=%d", m.Family, m.N, m.P)
			cells[base+"/exact"] = m.ExactNs
			cells[base+"/build"] = m.SketchBuildNs
			cells[base+"/warm"] = m.SketchQueryNs
			cells[base+"/sample"] = m.SampleNs
		}
		history[i] = runCells{
			host:  run.Host,
			key:   fmt.Sprintf("quick=%v/seed=%d", run.Quick, run.Seed),
			cells: cells,
		}
	}
	return compareCells("sketch", history, threshold)
}
