// Package integration cross-validates every listing algorithm in the
// repository against sequential ground truth and against each other, over
// a battery of workload families — the end-to-end safety net for the whole
// stack.
package integration

import (
	"fmt"
	"math/rand"
	"testing"

	"kplist/internal/algebraic"
	"kplist/internal/baseline"
	"kplist/internal/congest"
	"kplist/internal/core"
	"kplist/internal/graph"
	"kplist/internal/sparselist"
)

// workloads is the graph battery. Each family stresses a different part of
// the machinery: expanders (single all-covering cluster), communities
// (heavy/light classification), extremal clique-free graphs (max load,
// zero output), degenerate shapes (empty phases).
func workloads(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	planted, _ := graph.PlantedCliques(100, 6, 3, 0.06, rng)
	bipartite, _ := graph.BipartitePlusCliques(120, 0.4, 5, 2, rng)
	return map[string]*graph.Graph{
		"erdos-renyi-dense":  graph.ErdosRenyi(90, 0.4, rng),
		"erdos-renyi-sparse": graph.ErdosRenyi(120, 0.05, rng),
		"planted-cliques":    planted,
		"bipartite-planted":  bipartite,
		"noisy-turan":        graph.NoisyTuran(60, 3, 0.15, rng),
		"caveman":            graph.Caveman(5, 8),
		"barbell":            graph.Barbell(12, 4),
		"power-law":          graph.ChungLu(graph.PowerLawWeights(150, 2.5, 5), rng),
		"complete":           graph.Complete(20),
		"cycle":              graph.Cycle(40),
		"empty":              graph.MustNew(30, nil),
		"lower-bound-gadget": mustGadget(200, 300),
	}
}

func mustGadget(n, m int) *graph.Graph {
	g, _ := graph.LowerBoundGadget(n, m)
	return g
}

// TestAllAlgorithmsAgree runs every K4 lister on every workload and
// demands exact agreement with ground truth.
func TestAllAlgorithmsAgree(t *testing.T) {
	for name, g := range workloads(t) {
		g := g
		t.Run(name, func(t *testing.T) {
			want := graph.NewCliqueSet(g.ListCliques(4))
			check := func(algo string, got graph.CliqueSet) {
				if !got.Equal(want) {
					t.Errorf("%s on %s: %d cliques, want %d; missing=%v extra=%v",
						algo, name, got.Len(), want.Len(), want.Minus(got), got.Minus(want))
				}
			}
			var l1 congest.Ledger
			r1, err := core.ListCliques(g, core.Params{P: 4, Seed: 7}, congest.UnitCosts(), &l1)
			if err != nil {
				t.Fatalf("congest: %v", err)
			}
			check("congest", r1.Cliques)

			var l2 congest.Ledger
			r2, err := core.ListCliques(g, core.Params{P: 4, FastK4: true, Seed: 7}, congest.UnitCosts(), &l2)
			if err != nil {
				t.Fatalf("fastk4: %v", err)
			}
			check("fastk4", r2.Cliques)

			var l3 congest.Ledger
			r3, err := sparselist.CongestedCliqueOnGraph(g, 4, 7, 0, congest.UnitCosts(), &l3)
			if err != nil {
				t.Fatalf("cclique: %v", err)
			}
			check("cclique", r3.Cliques)

			var l4 congest.Ledger
			r4, err := baseline.BroadcastListGraph(g, 4, congest.UnitCosts(), &l4)
			if err != nil {
				t.Fatalf("broadcast: %v", err)
			}
			check("broadcast", r4)

			var l5 congest.Ledger
			r5, err := baseline.EdenK4List(g, baseline.EdenK4Params{Seed: 7}, congest.UnitCosts(), &l5)
			if err != nil {
				t.Fatalf("eden: %v", err)
			}
			check("eden", r5)
		})
	}
}

// TestHigherCliquesAgree covers p = 5 and 6 across the three general
// algorithms.
func TestHigherCliquesAgree(t *testing.T) {
	for name, g := range workloads(t) {
		g := g
		for p := 5; p <= 6; p++ {
			t.Run(fmt.Sprintf("%s/p=%d", name, p), func(t *testing.T) {
				want := graph.NewCliqueSet(g.ListCliques(p))
				var l1 congest.Ledger
				r1, err := core.ListCliques(g, core.Params{P: p, Seed: 13}, congest.UnitCosts(), &l1)
				if err != nil {
					t.Fatalf("congest: %v", err)
				}
				if !r1.Cliques.Equal(want) {
					t.Errorf("congest disagrees with ground truth: %d vs %d", r1.Cliques.Len(), want.Len())
				}
				var l2 congest.Ledger
				r2, err := sparselist.CongestedCliqueOnGraph(g, p, 13, 0, congest.UnitCosts(), &l2)
				if err != nil {
					t.Fatalf("cclique: %v", err)
				}
				if !r2.Cliques.Equal(want) {
					t.Errorf("cclique disagrees with ground truth: %d vs %d", r2.Cliques.Len(), want.Len())
				}
			})
		}
	}
}

// TestTriangleRoutesAgree: the algebraic counter, the CC lister, and the
// sequential enumerator give the same triangle count everywhere.
func TestTriangleRoutesAgree(t *testing.T) {
	for name, g := range workloads(t) {
		var lc congest.Ledger
		count, err := algebraic.TriangleCountCC(g, congest.UnitCosts(), &lc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if count != g.CountCliques(3) {
			t.Errorf("%s: algebraic %d vs enumeration %d", name, count, g.CountCliques(3))
		}
		var ll congest.Ledger
		res, err := sparselist.CongestedCliqueOnGraph(g, 3, 5, 0, congest.UnitCosts(), &ll)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if int64(res.Cliques.Len()) != count {
			t.Errorf("%s: lister %d vs counter %d", name, res.Cliques.Len(), count)
		}
	}
}

// TestDeterminismAcrossRuns: identical seeds give identical bills and
// outputs for the full pipeline.
func TestDeterminismAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.ErdosRenyi(100, 0.35, rng)
	run := func() (int64, int64, int) {
		var ledger congest.Ledger
		res, err := core.ListCliques(g, core.Params{P: 4, Seed: 21}, congest.UnitCosts(), &ledger)
		if err != nil {
			t.Fatal(err)
		}
		return ledger.Rounds(), ledger.Messages(), res.Cliques.Len()
	}
	r1, m1, c1 := run()
	r2, m2, c2 := run()
	if r1 != r2 || m1 != m2 || c1 != c2 {
		t.Errorf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)", r1, m1, c1, r2, m2, c2)
	}
}

// TestPaperCostModelMonotone: switching on the paper's log factors never
// reduces any algorithm's bill.
func TestPaperCostModelMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.ErdosRenyi(90, 0.35, rng)
	for _, tc := range []struct {
		name string
		run  func(cm congest.CostModel) (int64, error)
	}{
		{"congest", func(cm congest.CostModel) (int64, error) {
			var l congest.Ledger
			_, err := core.ListCliques(g, core.Params{P: 4, Seed: 3}, cm, &l)
			return l.Rounds(), err
		}},
		{"cclique", func(cm congest.CostModel) (int64, error) {
			var l congest.Ledger
			_, err := sparselist.CongestedCliqueOnGraph(g, 4, 3, 0, cm, &l)
			return l.Rounds(), err
		}},
		{"eden", func(cm congest.CostModel) (int64, error) {
			var l congest.Ledger
			_, err := baseline.EdenK4List(g, baseline.EdenK4Params{Seed: 3}, cm, &l)
			return l.Rounds(), err
		}},
	} {
		unit, err := tc.run(congest.UnitCosts())
		if err != nil {
			t.Fatalf("%s unit: %v", tc.name, err)
		}
		paper, err := tc.run(congest.PaperCosts())
		if err != nil {
			t.Fatalf("%s paper: %v", tc.name, err)
		}
		if paper < unit {
			t.Errorf("%s: paper bill %d below unit bill %d", tc.name, paper, unit)
		}
	}
}
