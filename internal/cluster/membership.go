// Package cluster turns N kplistd processes into one service: a
// deterministic consistent-hash ring (virtual nodes, seeded) maps graph
// IDs to an owner plus R−1 replicas, an embeddable Client routes and
// fails over requests, and the kplistgw gateway daemon fronts the whole
// membership with scatter–gather listing for partitioned graphs. The
// membership is static — a -cluster-peers flag or JSON file — so no
// consensus dependency is needed: the ring is a pure function of the
// config, and every process that loads the same config computes the same
// placement. See DESIGN.md §12.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"regexp"
	"strings"
)

// Member is one kplistd process in the cluster.
type Member struct {
	// Name is the stable identity the ring hashes. It must match the
	// member's own -cluster-self flag; placement depends on names only,
	// never on addresses, so nodes and gateways agree on ownership even
	// when they reach a member through different addresses.
	Name string `json:"name"`
	// Addr is the member's base URL (http://host:port). A bare host:port
	// is normalized to http://.
	Addr string `json:"addr"`
}

// Config is the static cluster membership plus placement parameters.
// Every field that feeds the ring (Members' names, VNodes, Seed) must be
// identical across all nodes and gateways of one cluster.
type Config struct {
	Members []Member `json:"members"`
	// Replication is R: every graph lives on its ring owner plus R−1
	// distinct successor replicas. Default 2, clamped to len(Members).
	Replication int `json:"replication,omitempty"`
	// VNodes is the virtual-node count per member (default 64): more
	// vnodes smooth the key distribution at the cost of a larger ring.
	VNodes int `json:"vnodes,omitempty"`
	// Seed perturbs the ring hash so operators can re-deal placement
	// without renaming members. Default 0.
	Seed int64 `json:"seed,omitempty"`
}

// memberName enforces the same identifier charset graph IDs use, so
// shard-graph IDs derived from member names stay valid path segments.
var memberName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ParseConfig parses a -cluster-peers specification: either "@path" (or a
// bare path ending in .json) naming a JSON Config file, or an inline
// comma-separated list "name=addr,name=addr,...". Inline entries without
// a name get generated names n1, n2, ... in list order.
func ParseConfig(spec string) (Config, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Config{}, errors.New("cluster: empty peers specification")
	}
	if path, ok := strings.CutPrefix(spec, "@"); ok || strings.HasSuffix(spec, ".json") {
		if !ok {
			path = spec
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			return Config{}, fmt.Errorf("cluster: reading peers file: %w", err)
		}
		var cfg Config
		if err := json.Unmarshal(buf, &cfg); err != nil {
			return Config{}, fmt.Errorf("cluster: %s is not a membership config: %w", path, err)
		}
		return cfg, cfg.Validate()
	}
	var cfg Config
	for i, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, addr, found := strings.Cut(entry, "=")
		if !found {
			name, addr = fmt.Sprintf("n%d", i+1), entry
		}
		cfg.Members = append(cfg.Members, Member{Name: name, Addr: addr})
	}
	return cfg, cfg.Validate()
}

// WithDefaults returns the config with Replication/VNodes defaulted and
// clamped and member addresses normalized to URLs.
func (c Config) WithDefaults() Config {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.Replication > len(c.Members) {
		c.Replication = len(c.Members)
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	// Copy before normalizing: callers share Config values (several rings
	// are built from one membership), so the input slice stays untouched.
	ms := make([]Member, len(c.Members))
	copy(ms, c.Members)
	for i, m := range ms {
		ms[i].Addr = normalizeAddr(m.Addr)
	}
	c.Members = ms
	return c
}

// Validate rejects configs the ring cannot be built from: no members,
// duplicate or malformed names, empty addresses.
func (c Config) Validate() error {
	if len(c.Members) == 0 {
		return errors.New("cluster: membership has no members")
	}
	seen := make(map[string]bool, len(c.Members))
	for _, m := range c.Members {
		if !memberName.MatchString(m.Name) {
			return fmt.Errorf("cluster: bad member name %q (want %s)", m.Name, memberName)
		}
		if seen[m.Name] {
			return fmt.Errorf("cluster: duplicate member name %q", m.Name)
		}
		seen[m.Name] = true
		if strings.TrimSpace(m.Addr) == "" {
			return fmt.Errorf("cluster: member %q has no address", m.Name)
		}
	}
	if c.Replication < 0 {
		return fmt.Errorf("cluster: replication %d < 0", c.Replication)
	}
	if c.VNodes < 0 {
		return fmt.Errorf("cluster: vnodes %d < 0", c.VNodes)
	}
	return nil
}

// MemberNamed returns the member carrying name.
func (c Config) MemberNamed(name string) (Member, bool) {
	for _, m := range c.Members {
		if m.Name == name {
			return m, true
		}
	}
	return Member{}, false
}

// normalizeAddr turns host:port into http://host:port and strips a
// trailing slash; full URLs pass through.
func normalizeAddr(addr string) string {
	addr = strings.TrimRight(strings.TrimSpace(addr), "/")
	if addr == "" {
		return addr
	}
	if u, err := url.Parse(addr); err == nil && u.Scheme != "" && u.Host != "" {
		return addr
	}
	return "http://" + addr
}
