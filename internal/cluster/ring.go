package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is the deterministic consistent-hash ring: VNodes points per
// member, placed by a seeded FNV-1a hash of the member NAME (never the
// address), sorted clockwise. A key's owner is the member of the first
// vnode at or after the key's hash; its replica set continues clockwise
// to the next R−1 distinct members. The ring is immutable once built —
// every process that builds it from the same Config computes identical
// placement, which is what lets the gateway, every node's ownership
// check, and offline tools agree without coordination.
type Ring struct {
	cfg     Config
	vnodes  []vnode // sorted by (hash, member index, replica index)
	byName  map[string]int
	indexOf map[string]int // member name -> first vnode index (successor walks)
}

type vnode struct {
	hash   uint64
	member int32
	vn     int32
}

// NewRing builds the ring for cfg (validated, defaults applied).
func NewRing(cfg Config) (*Ring, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.WithDefaults()
	r := &Ring{
		cfg:     cfg,
		vnodes:  make([]vnode, 0, len(cfg.Members)*cfg.VNodes),
		byName:  make(map[string]int, len(cfg.Members)),
		indexOf: make(map[string]int, len(cfg.Members)),
	}
	for i, m := range cfg.Members {
		r.byName[m.Name] = i
		for v := 0; v < cfg.VNodes; v++ {
			h := r.hash(fmt.Sprintf("%s#%d", m.Name, v))
			r.vnodes = append(r.vnodes, vnode{hash: h, member: int32(i), vn: int32(v)})
		}
	}
	// Ties (identical hashes) are broken by (member, vn) so the ring
	// order is a total function of the config, not of build order.
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].hash != r.vnodes[b].hash {
			return r.vnodes[a].hash < r.vnodes[b].hash
		}
		if r.vnodes[a].member != r.vnodes[b].member {
			return r.vnodes[a].member < r.vnodes[b].member
		}
		return r.vnodes[a].vn < r.vnodes[b].vn
	})
	for i := len(r.vnodes) - 1; i >= 0; i-- {
		r.indexOf[cfg.Members[r.vnodes[i].member].Name] = i
	}
	return r, nil
}

// hash is seeded FNV-1a over the seed bytes then s — cheap, stdlib-only,
// and stable across architectures and Go versions.
func (r *Ring) hash(s string) uint64 {
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(uint64(r.cfg.Seed) >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(s))
	return h.Sum64()
}

// Config returns the (defaulted) membership the ring was built from.
func (r *Ring) Config() Config { return r.cfg }

// Members returns the membership in config order.
func (r *Ring) Members() []Member { return r.cfg.Members }

// Replication returns the configured R.
func (r *Ring) Replication() int { return r.cfg.Replication }

// start returns the index of the first vnode whose hash is ≥ h, wrapping.
func (r *Ring) start(h uint64) int {
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return i
}

// walk collects up to count distinct members clockwise from vnode index
// i, optionally skipping one member index.
func (r *Ring) walk(i, count int, skip int32) []Member {
	out := make([]Member, 0, count)
	seen := make(map[int32]bool, count)
	if skip >= 0 {
		seen[skip] = true
	}
	for n := 0; n < len(r.vnodes) && len(out) < count; n++ {
		vn := r.vnodes[(i+n)%len(r.vnodes)]
		if seen[vn.member] {
			continue
		}
		seen[vn.member] = true
		out = append(out, r.cfg.Members[vn.member])
	}
	return out
}

// Owner returns the member owning key.
func (r *Ring) Owner(key string) Member {
	return r.cfg.Members[r.vnodes[r.start(r.hash(key))].member]
}

// ReplicaSet returns the owner of key followed by the next n−1 distinct
// members clockwise — the placement of a graph with replication n.
// n is clamped to [1, len(members)].
func (r *Ring) ReplicaSet(key string, n int) []Member {
	if n < 1 {
		n = 1
	}
	if n > len(r.cfg.Members) {
		n = len(r.cfg.Members)
	}
	return r.walk(r.start(r.hash(key)), n, -1)
}

// SuccessorSet returns member `name` followed by its n−1 distinct
// clockwise successors (from the member's first vnode) — the placement
// of a shard graph pinned to a specific member. Unknown names return nil.
func (r *Ring) SuccessorSet(name string, n int) []Member {
	mi, ok := r.byName[name]
	if !ok {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > len(r.cfg.Members) {
		n = len(r.cfg.Members)
	}
	out := []Member{r.cfg.Members[mi]}
	if n > 1 {
		out = append(out, r.walk(r.indexOf[name], n-1, int32(mi))...)
	}
	return out
}

// IsOwner reports whether the named member owns key.
func (r *Ring) IsOwner(name, key string) bool { return r.Owner(key).Name == name }

// Spread counts, for a sample of keys, how many land on each member —
// the metrics/ring-state view and the balance test hook.
func (r *Ring) Spread(keys []string) map[string]int {
	out := make(map[string]int, len(r.cfg.Members))
	for _, m := range r.cfg.Members {
		out[m.Name] = 0
	}
	for _, k := range keys {
		out[r.Owner(k).Name]++
	}
	return out
}
