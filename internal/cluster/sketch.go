package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"kplist/internal/sketch"
)

// Partitioned estimate path (DESIGN.md §14): a partitioned graph's
// distinct p-clique set is exactly the union of its shard subgraphs'
// clique sets — every clique's signature has an owner, and that owner's
// shard carries all of the clique's edges — so scattering one CliqueHLL
// fetch per shard and merging register-wise (max is idempotent, so the
// overlap between shards never double counts) reproduces the sketch a
// single node holding the whole graph would build, byte for byte. The
// gateway resolves (eps, conf) to an explicit precision before
// scattering so every shard inscribes into an identically-shaped sketch.

// ErrPartitionedEstimate reports an estimate method a partitioned graph
// cannot answer: exact counting and edge sampling need the whole graph on
// one node; only the merged-sketch (hll) path is served.
var ErrPartitionedEstimate = errors.New(
	"cluster: partitioned graphs answer estimates from merged sketches only (method=hll)")

// sketchParams resolves the sketch identity from URL parameters: an
// explicit precision wins; otherwise eps/conf pick one exactly as a
// single node would (PrecisionForEps defaults apply).
func sketchParams(q url.Values) (p, precision int, seed int64, err error) {
	p, err = strconv.Atoi(q.Get("p"))
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad or missing p: %q", q.Get("p"))
	}
	if s := q.Get("seed"); s != "" {
		if seed, err = strconv.ParseInt(s, 10, 64); err != nil {
			return 0, 0, 0, fmt.Errorf("bad seed: %q", s)
		}
	}
	var eps, conf float64
	if s := q.Get("eps"); s != "" {
		if eps, err = strconv.ParseFloat(s, 64); err != nil || eps < 0 {
			return 0, 0, 0, fmt.Errorf("bad eps: %q", s)
		}
	}
	if s := q.Get("conf"); s != "" {
		if conf, err = strconv.ParseFloat(s, 64); err != nil || conf < 0 || conf >= 1 {
			return 0, 0, 0, fmt.Errorf("bad conf: %q", s)
		}
	}
	precision = sketch.PrecisionForEps(eps, conf)
	if s := q.Get("precision"); s != "" {
		if precision, err = strconv.Atoi(s); err != nil {
			return 0, 0, 0, fmt.Errorf("bad precision: %q", s)
		}
	}
	return p, precision, seed, nil
}

// scatterSketch fetches every shard's CliqueHLL for (p, precision, seed)
// — with the usual read failover across each shard's successor placement
// — and merges them register-wise.
func (c *Client) scatterSketch(ctx context.Context, pg *pgraph, p, precision int, seed int64) (*sketch.CliqueHLL, error) {
	if p != pg.p {
		return nil, fmt.Errorf("%w: registered p=%d, queried p=%d", ErrPartitionMismatch, pg.p, p)
	}
	var merged *sketch.CliqueHLL
	for _, m := range c.cfg.Members {
		shardID, ok := pg.shardID[m.Name]
		if !ok {
			continue
		}
		q := fmt.Sprintf("/v1/graphs/%s/sketch?p=%d&precision=%d&seed=%d", shardID, p, precision, seed)
		resp, _, err := c.readFrom(ctx, c.ring.SuccessorSet(m.Name, c.cfg.Replication), m.Name, http.MethodGet, q, nil)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %s sketch: %w", shardID, err)
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return nil, fmt.Errorf("cluster: shard %s sketch: status %d: %s",
				shardID, resp.StatusCode, bytes.TrimSpace(msg))
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %s sketch: %w", shardID, err)
		}
		var h sketch.CliqueHLL
		if err := h.UnmarshalBinary(data); err != nil {
			return nil, fmt.Errorf("cluster: shard %s sketch: %w", shardID, err)
		}
		c.met.addSketchShardFetch()
		if merged == nil {
			merged = &h
			continue
		}
		if err := merged.Merge(&h); err != nil {
			return nil, fmt.Errorf("cluster: shard %s sketch: %w", shardID, err)
		}
	}
	if merged == nil {
		return nil, fmt.Errorf("cluster: partitioned graph %s has no shards", pg.id)
	}
	c.met.addSketchMerge()
	return merged, nil
}

// handleSketch serves GET /v1/graphs/{id}/sketch through the gateway:
// partitioned graphs answer with the scatter-merged shard sketch,
// everything else relays to the owning node with read failover.
func (gw *Gateway) handleSketch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	pg := gw.c.partitionedGraph(id)
	if pg == nil {
		resp, _, err := gw.c.doRead(r.Context(), id, http.MethodGet, "/v1/graphs/"+id+"/sketch?"+r.URL.RawQuery, nil)
		if err != nil {
			gwError(w, http.StatusBadGateway, err)
			return
		}
		relay(w, resp)
		return
	}
	p, precision, seed, err := sketchParams(r.URL.Query())
	if err != nil {
		gwError(w, http.StatusBadRequest, err)
		return
	}
	h, err := gw.c.scatterSketch(r.Context(), pg, p, precision, seed)
	if err != nil {
		gwError(w, statusForSketchErr(err), err)
		return
	}
	data, err := h.MarshalBinary()
	if err != nil {
		gwError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Kplist-Sketch-P", strconv.Itoa(p))
	w.Header().Set("X-Kplist-Sketch-Precision", strconv.Itoa(h.Precision()))
	w.Header().Set("X-Kplist-Sketch-Seed", strconv.FormatInt(h.Seed(), 10))
	_, _ = w.Write(data)
}

// estimateWire mirrors kplistd's mode=estimate response shape so gateway
// clients see the same contract against partitioned graphs.
type estimateWire struct {
	Graph     string  `json:"graph"`
	P         int     `json:"p"`
	Estimate  float64 `json:"estimate"`
	CILo      float64 `json:"ci_lo"`
	CIHi      float64 `json:"ci_hi"`
	Method    string  `json:"method"`
	Exact     bool    `json:"exact"`
	Eps       float64 `json:"eps"`
	Conf      float64 `json:"conf"`
	Precision int     `json:"precision"`
}

// handlePartitionedEstimate answers POST /query?mode=estimate on a
// partitioned graph from the scatter-merged shard sketch. Exact and
// sampling methods are refused: both need the whole edge set on one node.
func (gw *Gateway) handlePartitionedEstimate(w http.ResponseWriter, r *http.Request, pg *pgraph) {
	switch method := r.URL.Query().Get("method"); method {
	case "", "auto", "hll":
	default:
		gwError(w, http.StatusBadRequest, fmt.Errorf("%w: got method=%q", ErrPartitionedEstimate, method))
		return
	}
	var body struct {
		P    int   `json:"p"`
		Seed int64 `json:"seed"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, gw.maxBody)).Decode(&body); err != nil {
		gwError(w, http.StatusBadRequest, fmt.Errorf("bad query body: %w", err))
		return
	}
	q := r.URL.Query()
	q.Set("p", strconv.Itoa(body.P))
	if q.Get("seed") == "" && body.Seed != 0 {
		q.Set("seed", strconv.FormatInt(body.Seed, 10))
	}
	p, precision, seed, err := sketchParams(q)
	if err != nil {
		gwError(w, http.StatusBadRequest, err)
		return
	}
	h, err := gw.c.scatterSketch(r.Context(), pg, p, precision, seed)
	if err != nil {
		gwError(w, statusForSketchErr(err), err)
		return
	}
	conf := sketch.DefaultConf
	if s := q.Get("conf"); s != "" {
		conf, _ = strconv.ParseFloat(s, 64)
	}
	eps := sketch.DefaultEps
	if s := q.Get("eps"); s != "" {
		eps, _ = strconv.ParseFloat(s, 64)
	}
	lo, hi := h.ConfidenceInterval(conf)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(estimateWire{
		Graph:     pg.id,
		P:         p,
		Estimate:  h.Estimate(),
		CILo:      lo,
		CIHi:      hi,
		Method:    "hll",
		Exact:     false,
		Eps:       eps,
		Conf:      conf,
		Precision: h.Precision(),
	})
}

// statusForSketchErr maps scatter-sketch failures onto HTTP statuses:
// caller mistakes (wrong p, bad parameters) are 400, shard-side failures
// 502.
func statusForSketchErr(err error) int {
	if errors.Is(err, ErrPartitionMismatch) || errors.Is(err, ErrPartitionedEstimate) {
		return http.StatusBadRequest
	}
	return http.StatusBadGateway
}
