package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kplist/internal/cluster"
	"kplist/internal/server"
)

// harness is a loopback cluster: n in-process kplistd servers in cluster
// mode behind httptest listeners, plus a gateway (client + HTTP front)
// and a standalone single-node reference server for byte-comparison.
type harness struct {
	t      *testing.T
	names  []string
	nodes  map[string]*httptest.Server
	client *cluster.Client
	gw     *httptest.Server
	ref    *httptest.Server
}

func newHarness(t *testing.T, n, replication int, seed int64) *harness {
	t.Helper()
	h := &harness{t: t, nodes: make(map[string]*httptest.Server)}
	// The node-side ring is built from the same names but placeholder
	// addresses: placement hashes names only, so nodes and gateway agree
	// even though only the gateway knows the real listener URLs.
	placeholder := make([]cluster.Member, n)
	for i := range placeholder {
		placeholder[i] = cluster.Member{Name: fmt.Sprintf("n%d", i+1), Addr: fmt.Sprintf("placeholder%d:1", i+1)}
	}
	nodeCfg := cluster.Config{Members: placeholder, Replication: replication, Seed: seed}
	real := make([]cluster.Member, n)
	for i := range placeholder {
		name := placeholder[i].Name
		ring, err := cluster.NewRing(nodeCfg)
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(server.Config{ClusterSelf: name, ClusterRing: ring})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		h.names = append(h.names, name)
		h.nodes[name] = ts
		real[i] = cluster.Member{Name: name, Addr: ts.URL}
	}
	client, err := cluster.NewClient(
		cluster.Config{Members: real, Replication: replication, Seed: seed},
		cluster.ClientOptions{RetryBackoff: time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	h.client = client
	h.gw = httptest.NewServer(cluster.NewGateway(client))
	t.Cleanup(h.gw.Close)
	h.ref = httptest.NewServer(server.New(server.Config{}).Handler())
	t.Cleanup(h.ref.Close)
	return h
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	raw, _ := io.ReadAll(resp.Body)
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("POST %s: bad JSON %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode, out
}

func do(t *testing.T, method, url string, body []byte) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// stream fetches a clique NDJSON stream and returns the body.
func stream(t *testing.T, base, id string, p int, query string) string {
	t.Helper()
	url := fmt.Sprintf("%s/v1/graphs/%s/cliques?p=%d&stream=1%s", base, id, p, query)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

func workloadBody(family string, n int, seed int64) map[string]any {
	return map[string]any{
		"name":     fmt.Sprintf("%s-%d", family, seed),
		"workload": map[string]any{"family": family, "n": n, "seed": seed},
	}
}

func TestGatewayRegisterAndListMatchesSingleNode(t *testing.T) {
	h := newHarness(t, 3, 2, 7)
	body := workloadBody("planted-clique", 200, 11)
	st, meta := postJSON(t, h.gw.URL+"/v1/graphs", body)
	if st != http.StatusCreated {
		t.Fatalf("gateway register: status %d: %v", st, meta)
	}
	id, _ := meta["id"].(string)
	if id == "" || strings.HasPrefix(id, "g") {
		t.Fatalf("gateway should mint a cluster ID, got %q", id)
	}
	if meta["owner"] == "" || meta["replicas"] == nil {
		t.Fatalf("register response missing placement: %v", meta)
	}
	if acks, ok := meta["replicaAcks"].(float64); !ok || acks != 1 {
		t.Fatalf("want 1 replica ack with R=2, got %v", meta["replicaAcks"])
	}

	st, refMeta := postJSON(t, h.ref.URL+"/v1/graphs", body)
	if st != http.StatusCreated {
		t.Fatalf("reference register: %d", st)
	}
	if meta["n"] != refMeta["n"] || meta["m"] != refMeta["m"] {
		t.Fatalf("cluster graph (n=%v m=%v) differs from single node (n=%v m=%v)",
			meta["n"], meta["m"], refMeta["n"], refMeta["m"])
	}

	// GET through the gateway resolves the same info.
	resp := do(t, http.MethodGet, h.gw.URL+"/v1/graphs/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway GET: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// The merged listing shows the graph exactly once despite R=2 copies.
	resp = do(t, http.MethodGet, h.gw.URL+"/v1/graphs", nil)
	var list struct {
		Graphs []map[string]any `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := 0
	for _, g := range list.Graphs {
		if g["id"] == id {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("graph %s appears %d times in merged listing: %v", id, found, list.Graphs)
	}
}

func TestGatewayCliquesByteIdenticalToSingleNode(t *testing.T) {
	h := newHarness(t, 3, 2, 3)
	body := workloadBody("stochastic-block", 220, 5)
	_, meta := postJSON(t, h.gw.URL+"/v1/graphs", body)
	id := meta["id"].(string)
	_, refMeta := postJSON(t, h.ref.URL+"/v1/graphs", body)
	refID := refMeta["id"].(string)

	for _, q := range []string{"&algo=truth&order=lex", "&algo=truth", "&algo=congest&seed=1", ""} {
		for _, p := range []int{3, 4} {
			if strings.Contains(q, "congest") && p < 4 {
				continue
			}
			got := stream(t, h.gw.URL, id, p, q)
			want := stream(t, h.ref.URL, refID, p, q)
			if got != want {
				t.Fatalf("p=%d query %q: gateway stream (%d bytes) differs from single node (%d bytes)",
					p, q, len(got), len(want))
			}
			if p == 3 && q == "" && len(got) == 0 {
				t.Fatal("empty stream — workload produced no triangles, test is vacuous")
			}
		}
	}
}

func TestGatewayPatchReplicatesAndFailsOver(t *testing.T) {
	h := newHarness(t, 3, 2, 1)
	body := workloadBody("stochastic-block", 150, 9)
	_, meta := postJSON(t, h.gw.URL+"/v1/graphs", body)
	id := meta["id"].(string)
	_, refMeta := postJSON(t, h.ref.URL+"/v1/graphs", body)
	refID := refMeta["id"].(string)

	// Apply identical mutation batches through the gateway and directly to
	// the reference node.
	rng := rand.New(rand.NewSource(99))
	for batch := 0; batch < 10; batch++ {
		muts := make([]map[string]any, 12)
		for i := range muts {
			op := "add"
			if rng.Intn(3) == 0 {
				op = "remove"
			}
			u := int32(rng.Intn(150))
			v := int32(rng.Intn(150))
			if u == v {
				v = (v + 1) % 150
			}
			muts[i] = map[string]any{"op": op, "u": u, "v": v}
		}
		pb, _ := json.Marshal(map[string]any{"mutations": muts})
		resp := do(t, http.MethodPatch, h.gw.URL+"/v1/graphs/"+id+"/edges", pb)
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("gateway patch: %d: %s", resp.StatusCode, raw)
		}
		if acks := resp.Header.Get("X-Kplist-Replica-Acks"); acks != "1" {
			t.Fatalf("want 1 replica ack per batch, got %q", acks)
		}
		resp.Body.Close()
		resp = do(t, http.MethodPatch, h.ref.URL+"/v1/graphs/"+refID+"/edges", pb)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference patch: %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	want := stream(t, h.ref.URL, refID, 3, "&algo=truth&order=lex")
	if got := stream(t, h.gw.URL, id, 3, "&algo=truth&order=lex"); got != want {
		t.Fatal("mutated cluster stream differs from mutated single-node stream")
	}

	// Kill the owner: reads must fail over to the replica and still match.
	owner := h.client.Ring().Owner(id).Name
	h.nodes[owner].Close()
	if got := stream(t, h.gw.URL, id, 3, "&algo=truth&order=lex"); got != want {
		t.Fatal("replica stream after owner death differs from single-node stream")
	}
	if h.client.MemberUp(owner) {
		t.Fatalf("owner %s should be marked down after transport failures", owner)
	}

	// Writes do not fail over: the owner is the only member allowed to
	// acknowledge a mutation batch.
	pb, _ := json.Marshal(map[string]any{"mutations": []map[string]any{{"op": "add", "u": 0, "v": 1}}})
	resp := do(t, http.MethodPatch, h.gw.URL+"/v1/graphs/"+id+"/edges", pb)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("patch with dead owner: status %d, want 502", resp.StatusCode)
	}
	resp.Body.Close()

	// Gateway metrics surface the failover and the member state.
	resp = do(t, http.MethodGet, h.gw.URL+"/metrics", nil)
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(raw)
	for _, want := range []string{
		"kplistgw_failover_reads_total",
		fmt.Sprintf("kplistgw_member_up{member=%q} 0", owner),
		"kplistgw_replica_acks_total 11", // register fan-out + 10 patch batches
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("gateway /metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestClusterGateRefusesMisdirected(t *testing.T) {
	h := newHarness(t, 3, 1, 2) // R=1: exactly one member hosts each graph
	_, meta := postJSON(t, h.gw.URL+"/v1/graphs", workloadBody("grid", 64, 1))
	id := meta["id"].(string)
	owner := h.client.Ring().Owner(id).Name

	for _, name := range h.names {
		if name == owner {
			continue
		}
		// Unmarked external read on a non-hosting node: 421 + owner hint.
		resp := do(t, http.MethodGet, h.nodes[name].URL+"/v1/graphs/"+id, nil)
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("non-owner %s answered %d, want 421", name, resp.StatusCode)
		}
		var hint map[string]any
		json.NewDecoder(resp.Body).Decode(&hint)
		resp.Body.Close()
		if hint["owner"] != owner {
			t.Fatalf("421 hint names %v, want %s", hint["owner"], owner)
		}
		// External registration on a node is refused too.
		st, _ := postJSON(t, h.nodes[name].URL+"/v1/graphs", workloadBody("grid", 32, 2))
		if st != http.StatusMisdirectedRequest {
			t.Fatalf("node-local register answered %d, want 421", st)
		}
	}
	// The owner itself serves unmarked reads.
	resp := do(t, http.MethodGet, h.nodes[owner].URL+"/v1/graphs/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner refused its own graph: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestGatewayDeleteRemovesAllReplicas(t *testing.T) {
	h := newHarness(t, 3, 2, 4)
	_, meta := postJSON(t, h.gw.URL+"/v1/graphs", workloadBody("grid", 49, 3))
	id := meta["id"].(string)
	resp := do(t, http.MethodDelete, h.gw.URL+"/v1/graphs/"+id, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	resp.Body.Close()
	for name, node := range h.nodes {
		r := do(t, http.MethodGet, node.URL+"/v1/graphs", nil)
		raw, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if strings.Contains(string(raw), id) {
			t.Fatalf("node %s still lists %s after cluster delete", name, id)
		}
	}
	resp = do(t, http.MethodDelete, h.gw.URL+"/v1/graphs/"+id, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestGatewayQueryRoutesToOwner(t *testing.T) {
	h := newHarness(t, 3, 2, 6)
	body := workloadBody("planted-clique", 180, 21)
	_, meta := postJSON(t, h.gw.URL+"/v1/graphs", body)
	id := meta["id"].(string)
	_, refMeta := postJSON(t, h.ref.URL+"/v1/graphs", body)
	refID := refMeta["id"].(string)

	q := map[string]any{"p": 4, "algo": "congest"}
	st, got := postJSON(t, h.gw.URL+"/v1/graphs/"+id+"/query", q)
	if st != http.StatusOK {
		t.Fatalf("gateway query: %d: %v", st, got)
	}
	st, want := postJSON(t, h.ref.URL+"/v1/graphs/"+refID+"/query", q)
	if st != http.StatusOK {
		t.Fatalf("reference query: %d", st)
	}
	gr := got["results"].([]any)[0].(map[string]any)
	wr := want["results"].([]any)[0].(map[string]any)
	if gr["cliques"] != wr["cliques"] || gr["rounds"] != wr["rounds"] {
		t.Fatalf("gateway query result %v differs from single node %v", gr, wr)
	}
}

func TestGatewayHealthzAggregation(t *testing.T) {
	h := newHarness(t, 3, 2, 8)
	resp := do(t, http.MethodGet, h.gw.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with all members up: %d", resp.StatusCode)
	}
	var hz map[string]any
	json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if hz["status"] != "ok" || hz["membersUp"].(float64) != 3 {
		t.Fatalf("healthz %v", hz)
	}

	h.nodes[h.names[0]].Close()
	resp = do(t, http.MethodGet, h.gw.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with a dead member: %d, want 503", resp.StatusCode)
	}
	json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if hz["status"] != "degraded" || hz["membersUp"].(float64) != 2 {
		t.Fatalf("degraded healthz %v", hz)
	}
}

func TestEmbeddedClientSurface(t *testing.T) {
	h := newHarness(t, 3, 2, 10)
	ctx := context.Background()
	meta, err := h.client.Register(ctx, workloadBody("stochastic-block", 120, 13))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Owner == "" || len(meta.Replicas) != 1 || meta.ReplicaAcks != 1 {
		t.Fatalf("placement missing from typed register: %+v", meta)
	}
	out, acks, err := h.client.Patch(ctx, meta.ID, map[string]any{
		"mutations": []map[string]any{{"op": "add", "u": 0, "v": 1}},
	})
	if err != nil || acks != 1 {
		t.Fatalf("typed patch: %v (acks=%d)", err, acks)
	}
	if out["graph"] != meta.ID {
		t.Fatalf("patch response %v", out)
	}
	var buf bytes.Buffer
	if err := h.client.StreamCliques(ctx, meta.ID, 3, "truth", &buf); err != nil {
		t.Fatal(err)
	}
	if err := h.client.Delete(ctx, meta.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.client.Patch(ctx, meta.ID, map[string]any{
		"mutations": []map[string]any{{"op": "add", "u": 0, "v": 1}},
	}); err == nil {
		t.Fatal("patch after delete should fail")
	}
}

func TestProberMarksMembers(t *testing.T) {
	h := newHarness(t, 2, 2, 12)
	h.client.Start()
	defer h.client.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if h.client.MemberUp("n1") && h.client.MemberUp("n2") {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	h.nodes["n1"].Close()
	// Force a probe by making a request that fails, then wait for state.
	resp := do(t, http.MethodGet, h.gw.URL+"/healthz", nil)
	resp.Body.Close()
	if h.client.MemberUp("n1") {
		t.Fatal("closed member n1 still marked up after health pass")
	}
	if !h.client.MemberUp("n2") {
		t.Fatal("live member n2 marked down")
	}
}
