package cluster

// Anti-entropy repair (DESIGN.md §13): the background arm of
// self-healing replication. Hinted handoff catches replicas that miss a
// fan-out while briefly down; everything it cannot catch — overflowed
// hint queues, refused applies, failed registrations, divergence with no
// recorded cause — lands here. Each sweep drains outstanding hints,
// enumerates the cluster's graphs, compares every replica's version
// digest against its owner's, and heals mismatches by full-state
// transfer: export the owner's graph (edge set + applied-batch sequence
// number as one consistent cut), drop the replica's stale copy, and
// install the export. The installed replica adopts the owner's sequence
// position, so hinted replay and live fan-out resume seamlessly after
// the transfer.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// SeqHeader carries batch sequence numbers on the replication path; it
// mirrors the kplistd server's header of the same name (the packages do
// not import each other).
const SeqHeader = "X-Kplist-Seq"

// Digest is one node's version fingerprint for one graph, as served by
// GET /v1/graphs/{id}/digest: the applied-batch sequence number plus a
// content hash of the edge set. Owner and replica match iff both fields
// match.
type Digest struct {
	Graph string `json:"graph"`
	Seq   uint64 `json:"seq"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	Hash  string `json:"hash"`
}

// RepairStats summarizes one anti-entropy sweep.
type RepairStats struct {
	// GraphsChecked counts graphs whose owner digest was fetched.
	GraphsChecked int
	// Diverged counts (replica, graph) pairs found out of sync — dirty
	// marks plus fresh digest mismatches.
	Diverged int
	// Repaired counts full-state transfers that completed.
	Repaired int
	// Failed counts repair attempts that did not complete (the pair stays
	// dirty for the next sweep).
	Failed int
}

// RepairNow runs one synchronous anti-entropy sweep and reports what it
// found and fixed. Sweeps are serialized; the background loop and
// on-demand callers share the same mutex. Downed members are skipped —
// their hint queues and dirty marks wait for the prober to flip them up.
func (c *Client) RepairNow(ctx context.Context) RepairStats {
	c.sweepMu.Lock()
	defer c.sweepMu.Unlock()
	c.met.addSweep()
	// Drain hint queues first: a queued batch is cheaper than a full-state
	// transfer, and a replica that is merely behind on replay would read
	// as diverged below.
	for _, m := range c.cfg.Members {
		if c.MemberUp(m.Name) && c.hints.depth(m.Name) > 0 {
			c.replayHints(m.Name)
		}
	}
	var st RepairStats
	for _, id := range c.listAllGraphIDs(ctx) {
		set := c.ring.ReplicaSet(id, c.cfg.Replication)
		if len(set) < 2 {
			continue
		}
		owner := set[0]
		od, err := c.fetchDigest(ctx, owner, id)
		if err != nil {
			// Owner unreachable (repair would install stale state at best)
			// or the graph is mid-delete: compare again next sweep.
			continue
		}
		st.GraphsChecked++
		for _, m := range set[1:] {
			if !c.MemberUp(m.Name) {
				continue
			}
			if c.hints.pendingGraph(m.Name, id) > 0 {
				// Replay is still owed batches; the digests will disagree
				// until it lands, and that is lag, not divergence.
				continue
			}
			if !c.hints.isDirty(m.Name, id) {
				rd, err := c.fetchDigest(ctx, m, id)
				if err == nil && rd.Seq == od.Seq && rd.Hash == od.Hash {
					continue // in sync
				}
				c.markDirtyReplica(m.Name, id)
			}
			st.Diverged++
			if err := c.repairReplica(ctx, owner, m, id); err != nil {
				c.met.addRepairFailure()
				st.Failed++
				continue
			}
			c.met.addRepair()
			st.Repaired++
		}
	}
	return st
}

// fetchDigest asks one member for one graph's version digest.
func (c *Client) fetchDigest(ctx context.Context, m Member, id string) (Digest, error) {
	var d Digest
	resp, err := c.forward(ctx, m, http.MethodGet, "/v1/graphs/"+id+"/digest", nil)
	if err != nil {
		return d, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return d, fmt.Errorf("cluster: digest %s from %s: HTTP %d", id, m.Name, resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&d); err != nil {
		return d, err
	}
	return d, nil
}

// repairReplica heals one (replica, graph) pair by full-state transfer,
// under the graph's fan-out lock so no live batch can straddle the
// export/install boundary. On success the pair's dirty mark and any
// leftover hints are dropped — the transfer subsumed them.
func (c *Client) repairReplica(ctx context.Context, owner, m Member, id string) error {
	muRaw, _ := c.patchLocks.LoadOrStore(id, &sync.Mutex{})
	mu := muRaw.(*sync.Mutex)
	mu.Lock()
	defer mu.Unlock()

	resp, err := c.forward(ctx, owner, http.MethodGet, "/v1/graphs/"+id+"/export", nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		drain(resp)
		return fmt.Errorf("cluster: export %s from %s: HTTP %d", id, owner.Name, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	resp.Body.Close()
	if err != nil {
		return err
	}
	// Drop the replica's copy first: the export document registers a fresh
	// graph, it does not overwrite one. A 404 just means the replica never
	// had the graph (missed registration).
	dr, err := c.forward(ctx, m, http.MethodDelete, "/v1/graphs/"+id, nil)
	if err != nil {
		return err
	}
	drain(dr)
	if dr.StatusCode/100 != 2 && dr.StatusCode != http.StatusNotFound {
		return fmt.Errorf("cluster: repair delete %s on %s: HTTP %d", id, m.Name, dr.StatusCode)
	}
	ir, err := c.forward(ctx, m, http.MethodPost, "/v1/graphs", body)
	if err != nil {
		return err
	}
	drain(ir)
	if ir.StatusCode/100 != 2 {
		return fmt.Errorf("cluster: repair install %s on %s: HTTP %d", id, m.Name, ir.StatusCode)
	}
	c.hints.purgeGraph(m.Name, id)
	c.hints.clearDirty(m.Name, id)
	return nil
}

// listAllGraphIDs unions every reachable member's graph listing,
// skipping scatter-partition shards (each shard is member-local state
// healed by re-partitioning, not replication).
func (c *Client) listAllGraphIDs(ctx context.Context) []string {
	type nodeList struct {
		Graphs []struct {
			ID string `json:"id"`
		} `json:"graphs"`
	}
	seen := make(map[string]bool)
	for _, m := range c.cfg.Members {
		if !c.MemberUp(m.Name) {
			continue
		}
		resp, err := c.forward(ctx, m, http.MethodGet, "/v1/graphs", nil)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			drain(resp)
			continue
		}
		var nl nodeList
		err = json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&nl)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, g := range nl.Graphs {
			if g.ID == "" || strings.Contains(g.ID, ShardIDSuffix) {
				continue
			}
			seen[g.ID] = true
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	return ids
}

// startRepairLoop launches the background sweep loop (no-op when the
// interval is negative). Each pass sleeps a jittered interval so a fleet
// of gateways does not sweep in lockstep.
func (c *Client) startRepairLoop() {
	if c.repairInterval < 0 {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.repairCancel = cancel
	c.repairDone.Add(1)
	go func() {
		defer c.repairDone.Done()
		for {
			t := time.NewTimer(c.jittered(c.repairInterval))
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
			c.RepairNow(ctx)
		}
	}()
}
