package cluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"kplist"
)

// TestDifferentialOwnerRoutedAllFamilies runs every workload family
// through a loopback 3-node cluster (R=2) behind the gateway and demands
// the clique NDJSON stream — and the stream after a mutation batch — be
// byte-identical to a standalone kplistd serving the same spec.
func TestDifferentialOwnerRoutedAllFamilies(t *testing.T) {
	h := newHarness(t, 3, 2, 17)
	for fi, family := range kplist.WorkloadFamilies() {
		family := family
		t.Run(family, func(t *testing.T) {
			n := 120
			seed := int64(100 + fi)
			body := workloadBody(family, n, seed)
			_, meta := postJSON(t, h.gw.URL+"/v1/graphs", body)
			id, _ := meta["id"].(string)
			if id == "" {
				t.Fatalf("cluster register failed: %v", meta)
			}
			_, refMeta := postJSON(t, h.ref.URL+"/v1/graphs", body)
			refID := refMeta["id"].(string)

			for _, p := range []int{3, 4} {
				got := stream(t, h.gw.URL, id, p, "&algo=truth&order=lex")
				want := stream(t, h.ref.URL, refID, p, "&algo=truth&order=lex")
				if got != want {
					t.Fatalf("family %s p=%d: cluster stream differs from single node", family, p)
				}
			}

			// Same mutation batch on both sides, then compare again.
			gn := int(refMeta["n"].(float64))
			rng := rand.New(rand.NewSource(seed))
			muts := make([]map[string]any, 16)
			for i := range muts {
				op := "add"
				if i%4 == 3 {
					op = "remove"
				}
				u, v := rng.Intn(gn), rng.Intn(gn)
				if u == v {
					v = (v + 1) % gn
				}
				muts[i] = map[string]any{"op": op, "u": u, "v": v}
			}
			pb, _ := json.Marshal(map[string]any{"mutations": muts})
			for _, target := range []string{h.gw.URL + "/v1/graphs/" + id, h.ref.URL + "/v1/graphs/" + refID} {
				resp := do(t, http.MethodPatch, target+"/edges", pb)
				if resp.StatusCode != http.StatusOK {
					raw, _ := io.ReadAll(resp.Body)
					t.Fatalf("patch %s: %d: %s", target, resp.StatusCode, raw)
				}
				resp.Body.Close()
			}
			got := stream(t, h.gw.URL, id, 3, "&algo=truth&order=lex")
			want := stream(t, h.ref.URL, refID, 3, "&algo=truth&order=lex")
			if got != want {
				t.Fatalf("family %s: post-mutation cluster stream differs from single node", family)
			}
		})
	}
}

// TestDifferentialPartitionedAllFamilies registers every family in
// partitioned mode at several shard counts and demands the scatter–gather
// merged stream be byte-identical to the single-node stream.
func TestDifferentialPartitionedAllFamilies(t *testing.T) {
	for _, shards := range []int{1, 2, 3} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			h := newHarness(t, shards, 2, int64(20+shards))
			for fi, family := range kplist.WorkloadFamilies() {
				n := 100
				seed := int64(200 + fi)
				body := workloadBody(family, n, seed)
				buf, _ := json.Marshal(body)
				resp := do(t, http.MethodPost, h.gw.URL+"/v1/graphs?partitioned=1&p=3", buf)
				if resp.StatusCode != http.StatusCreated {
					raw, _ := io.ReadAll(resp.Body)
					t.Fatalf("family %s: partitioned register: %d: %s", family, resp.StatusCode, raw)
				}
				var meta map[string]any
				json.NewDecoder(resp.Body).Decode(&meta)
				resp.Body.Close()
				id := meta["id"].(string)
				if part, _ := meta["partitioned"].(bool); !part {
					t.Fatalf("family %s: meta not marked partitioned: %v", family, meta)
				}

				_, refMeta := postJSON(t, h.ref.URL+"/v1/graphs", body)
				refID := refMeta["id"].(string)

				for _, algo := range []string{"truth", ""} {
					q := "&algo=" + algo
					if algo == "" {
						q = ""
					}
					got := stream(t, h.gw.URL, id, 3, q)
					want := stream(t, h.ref.URL, refID, 3, q+"&order=lex")
					if got != want {
						t.Fatalf("family %s shards=%d algo=%q: scatter stream (%d bytes) differs from single node (%d bytes)",
							family, shards, algo, len(got), len(want))
					}
				}

				// Mutations are rejected in partitioned mode.
				pb, _ := json.Marshal(map[string]any{"mutations": []map[string]any{{"op": "add", "u": 0, "v": 1}}})
				resp = do(t, http.MethodPatch, h.gw.URL+"/v1/graphs/"+id+"/edges", pb)
				if resp.StatusCode != http.StatusBadRequest {
					t.Fatalf("family %s: partitioned patch answered %d, want 400", family, resp.StatusCode)
				}
				resp.Body.Close()

				// Wrong p is rejected (the partition is p-specific).
				wrong := do(t, http.MethodGet, fmt.Sprintf("%s/v1/graphs/%s/cliques?p=4&stream=1", h.gw.URL, id), nil)
				raw, _ := io.ReadAll(wrong.Body)
				wrong.Body.Close()
				if !strings.Contains(string(raw), "differs from the partitioned registration") {
					t.Fatalf("family %s: wrong-p query did not report the mismatch: %s", family, raw)
				}
			}
		})
	}
}

// TestDifferentialPartitionedFailover kills one node of a 3-shard
// partitioned graph (R=2, so every shard has a replica) and demands the
// scatter stream stay byte-identical.
func TestDifferentialPartitionedFailover(t *testing.T) {
	h := newHarness(t, 3, 2, 31)
	body := workloadBody("stochastic-block", 140, 41)
	buf, _ := json.Marshal(body)
	resp := do(t, http.MethodPost, h.gw.URL+"/v1/graphs?partitioned=1&p=3", buf)
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("partitioned register: %d: %s", resp.StatusCode, raw)
	}
	var meta map[string]any
	json.NewDecoder(resp.Body).Decode(&meta)
	resp.Body.Close()
	id := meta["id"].(string)

	_, refMeta := postJSON(t, h.ref.URL+"/v1/graphs", body)
	refID := refMeta["id"].(string)
	want := stream(t, h.ref.URL, refID, 3, "&algo=truth&order=lex")
	if got := stream(t, h.gw.URL, id, 3, "&algo=truth"); got != want {
		t.Fatal("scatter stream differs before failover")
	}
	if want == "" {
		t.Fatal("empty stream — failover comparison is vacuous")
	}

	h.nodes[h.names[0]].Close()
	if got := stream(t, h.gw.URL, id, 3, "&algo=truth"); got != want {
		t.Fatal("scatter stream differs after killing one node")
	}

	// Delete cleans up the surviving shard replicas.
	resp = do(t, http.MethodDelete, h.gw.URL+"/v1/graphs/"+id, nil)
	resp.Body.Close()
	for _, name := range h.names[1:] {
		r := do(t, http.MethodGet, h.nodes[name].URL+"/v1/graphs", nil)
		raw, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if strings.Contains(string(raw), id) {
			t.Fatalf("node %s still holds shards of %s after delete", name, id)
		}
	}
}
