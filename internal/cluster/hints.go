package cluster

import "sync"

// hint is one sequence-tagged mutation batch waiting for a member to come
// back: the replica-apply body plus the owner-assigned sequence number the
// replica will be told to apply it at.
type hint struct {
	graph string
	seq   uint64
	body  []byte
}

// hintSet is the hinted-handoff state: one bounded FIFO of hints per
// member, plus the set of (member, graph) replicas marked dirty — beyond
// replay (overflowed queue, refused apply, failed registration) and
// waiting for the anti-entropy sweeper's full-state transfer. Queues
// preserve owner order per graph because every enqueue happens under the
// graph's fan-out lock and replay pops under the same lock.
type hintSet struct {
	mu        sync.Mutex
	limit     int
	queues    map[string][]hint          // member → FIFO
	dirty     map[string]map[string]bool // member → graph → true
	replaying map[string]bool            // member → a replay loop is active
}

func newHintSet(limit int) *hintSet {
	return &hintSet{
		limit:     limit,
		queues:    make(map[string][]hint),
		dirty:     make(map[string]map[string]bool),
		replaying: make(map[string]bool),
	}
}

// enqueue appends h to member's queue, reporting false on overflow (the
// queue keeps what it already holds — an overflowed graph goes dirty and
// its queued prefix is still worth replaying).
func (s *hintSet) enqueue(member string, h hint) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queues[member]) >= s.limit {
		return false
	}
	s.queues[member] = append(s.queues[member], h)
	return true
}

// front peeks member's oldest hint without removing it.
func (s *hintSet) front(member string) (hint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queues[member]
	if len(q) == 0 {
		return hint{}, false
	}
	return q[0], true
}

// pop removes member's oldest hint.
func (s *hintSet) pop(member string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.queues[member]; len(q) > 0 {
		s.queues[member] = q[1:]
	}
}

// depth returns how many hints member has queued.
func (s *hintSet) depth(member string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[member])
}

// depths snapshots every member's queue depth (the /metrics gauges).
func (s *hintSet) depths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.queues))
	for m, q := range s.queues {
		out[m] = len(q)
	}
	return out
}

// pendingGraph counts member's queued hints for one graph — a fan-out
// must queue behind them or batches would reach the replica out of order.
func (s *hintSet) pendingGraph(member, graph string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, h := range s.queues[member] {
		if h.graph == graph {
			n++
		}
	}
	return n
}

// purgeGraph drops member's hints for one graph (a full-state transfer
// subsumed them, or the graph was deleted).
func (s *hintSet) purgeGraph(member, graph string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queues[member]
	kept := q[:0]
	for _, h := range q {
		if h.graph != graph {
			kept = append(kept, h)
		}
	}
	s.queues[member] = kept
}

// purgeAll drops the graph's hints and dirty marks on every member
// (cluster-wide delete).
func (s *hintSet) purgeAll(graph string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for member, q := range s.queues {
		kept := q[:0]
		for _, h := range q {
			if h.graph != graph {
				kept = append(kept, h)
			}
		}
		s.queues[member] = kept
	}
	for _, graphs := range s.dirty {
		delete(graphs, graph)
	}
}

// markDirty flags (member, graph) for full-state repair, reporting
// whether the mark is new.
func (s *hintSet) markDirty(member, graph string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.dirty[member]
	if g == nil {
		g = make(map[string]bool)
		s.dirty[member] = g
	}
	if g[graph] {
		return false
	}
	g[graph] = true
	return true
}

// isDirty reports whether (member, graph) is flagged for repair.
func (s *hintSet) isDirty(member, graph string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dirty[member][graph]
}

// clearDirty removes the repair flag, reporting whether it was set.
func (s *hintSet) clearDirty(member, graph string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.dirty[member]
	if !g[graph] {
		return false
	}
	delete(g, graph)
	return true
}

// dirtyCount returns how many (member, graph) replicas await repair.
func (s *hintSet) dirtyCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, graphs := range s.dirty {
		n += len(graphs)
	}
	return n
}

// beginReplay claims member's replay slot; endReplay releases it. One
// replay loop per member at a time — concurrent replays would race the
// FIFO order the whole scheme exists to preserve.
func (s *hintSet) beginReplay(member string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replaying[member] {
		return false
	}
	s.replaying[member] = true
	return true
}

func (s *hintSet) endReplay(member string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.replaying, member)
}
