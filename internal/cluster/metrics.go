package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// latencyBounds are the per-member latency histogram bucket upper bounds
// in seconds (the same ladder kplistd's /metrics uses, so dashboards can
// overlay gateway and node latency).
var latencyBounds = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

type histogram struct {
	buckets []int64
	sum     float64
	count   int64
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]int64, len(latencyBounds)+1)}
}

func (h *histogram) observe(sec float64) {
	i := sort.SearchFloat64s(latencyBounds, sec)
	h.buckets[i]++
	h.sum += sec
	h.count++
}

// memberStats accumulates one member's request outcomes as seen from the
// gateway: the per-shard half of the observability story.
type memberStats struct {
	requests map[int]int64 // status class ("0" = transport error) → count
	latency  *histogram
}

// Metrics is the gateway-side observability store: per-member request /
// error / latency, replication fan-out outcomes, failover and
// scatter–gather counters. Rendered on the gateway's /metrics in the
// Prometheus text exposition format (hand-rolled, like kplistd's).
type Metrics struct {
	started time.Time

	mu      sync.Mutex
	members map[string]*memberStats

	failoverReads   int64 // reads answered by a non-owner replica
	retries         int64 // candidate attempts beyond the first
	replicaAcks     int64 // successful replica fan-out applies
	replicaFailures int64 // failed replica fan-out applies (the lag counter)
	scatterRequests int64 // scatter–gather listings served
	scatterLines    int64 // merged NDJSON lines across all scatters
	misdirected     int64 // requests refused because no candidate answered

	// Approximate-tier counters (DESIGN.md §14): merged sketch answers
	// served by the gateway, and the per-shard sketch fetches behind them.
	sketchMerges       int64
	sketchShardFetches int64

	// Self-healing replication counters (DESIGN.md §13).
	hintsQueued       int64 // batches queued for a downed replica
	hintsReplayed     int64 // queued batches delivered after recovery
	hintsDropped      int64 // batches lost to queue overflow (replica went dirty)
	divergence        int64 // (replica, graph) pairs newly detected out of sync
	repairs           int64 // full-state transfers completed
	repairFailures    int64 // full-state transfers that did not complete
	sweeps            int64 // anti-entropy sweep passes
	notFoundReprobes  int64 // 404 reads re-probed on the same member
	notFoundRecovered int64 // re-probes that got a non-404 answer
}

// NewMetrics returns an empty metrics store.
func NewMetrics() *Metrics {
	return &Metrics{started: time.Now(), members: make(map[string]*memberStats)}
}

// record accounts one forwarded request to member; status 0 means the
// transport failed before any response.
func (m *Metrics) record(member string, status int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms, ok := m.members[member]
	if !ok {
		ms = &memberStats{requests: make(map[int]int64), latency: newHistogram()}
		m.members[member] = ms
	}
	ms.requests[status]++
	ms.latency.observe(elapsed.Seconds())
}

func (m *Metrics) addFailoverRead()  { m.mu.Lock(); m.failoverReads++; m.mu.Unlock() }
func (m *Metrics) addRetry()         { m.mu.Lock(); m.retries++; m.mu.Unlock() }
func (m *Metrics) addReplicaAck()    { m.mu.Lock(); m.replicaAcks++; m.mu.Unlock() }
func (m *Metrics) addReplicaFailed() { m.mu.Lock(); m.replicaFailures++; m.mu.Unlock() }
func (m *Metrics) addMisdirected()   { m.mu.Lock(); m.misdirected++; m.mu.Unlock() }

func (m *Metrics) addHintQueued()        { m.mu.Lock(); m.hintsQueued++; m.mu.Unlock() }
func (m *Metrics) addHintReplayed()      { m.mu.Lock(); m.hintsReplayed++; m.mu.Unlock() }
func (m *Metrics) addHintDropped()       { m.mu.Lock(); m.hintsDropped++; m.mu.Unlock() }
func (m *Metrics) addDivergence()        { m.mu.Lock(); m.divergence++; m.mu.Unlock() }
func (m *Metrics) addRepair()            { m.mu.Lock(); m.repairs++; m.mu.Unlock() }
func (m *Metrics) addRepairFailure()     { m.mu.Lock(); m.repairFailures++; m.mu.Unlock() }
func (m *Metrics) addSweep()             { m.mu.Lock(); m.sweeps++; m.mu.Unlock() }
func (m *Metrics) addNotFoundReprobe()   { m.mu.Lock(); m.notFoundReprobes++; m.mu.Unlock() }
func (m *Metrics) addNotFoundRecovered() { m.mu.Lock(); m.notFoundRecovered++; m.mu.Unlock() }

// Repairs returns the cumulative completed full-state transfers (tests
// and the convergence harness assert on it).
func (m *Metrics) Repairs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.repairs
}

// HintsDropped returns the cumulative overflow drops.
func (m *Metrics) HintsDropped() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hintsDropped
}

func (m *Metrics) addSketchMerge()      { m.mu.Lock(); m.sketchMerges++; m.mu.Unlock() }
func (m *Metrics) addSketchShardFetch() { m.mu.Lock(); m.sketchShardFetches++; m.mu.Unlock() }

func (m *Metrics) addScatter(lines int64) {
	m.mu.Lock()
	m.scatterRequests++
	m.scatterLines += lines
	m.mu.Unlock()
}

// ReplicationLag returns the cumulative count of replica applies the
// gateway could not deliver — acknowledged writes a replica is missing
// until its owner's WAL is re-replicated (DESIGN.md §12 failure modes).
func (m *Metrics) ReplicationLag() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replicaFailures
}

// Render writes the Prometheus text exposition. gauges carries sampled
// cluster state (member up/down, ring size) keyed by fully-formed metric
// lines; they are emitted sorted.
func (m *Metrics) Render(w *strings.Builder, gauges map[string]float64) {
	fmt.Fprintf(w, "# TYPE kplistgw_uptime_seconds gauge\n")
	fmt.Fprintf(w, "kplistgw_uptime_seconds %.3f\n", time.Since(m.started).Seconds())

	names := make([]string, 0, len(gauges))
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		// name may carry labels ("x{member=\"n1\"}"); the TYPE line wants
		// the bare family name.
		family := name
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", family, name, gauges[name])
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	members := make([]string, 0, len(m.members))
	for name := range m.members {
		members = append(members, name)
	}
	sort.Strings(members)

	fmt.Fprintf(w, "# TYPE kplistgw_member_requests_total counter\n")
	for _, name := range members {
		statuses := make([]int, 0, len(m.members[name].requests))
		for st := range m.members[name].requests {
			statuses = append(statuses, st)
		}
		sort.Ints(statuses)
		for _, st := range statuses {
			label := fmt.Sprintf("%d", st)
			if st == 0 {
				label = "error"
			}
			fmt.Fprintf(w, "kplistgw_member_requests_total{member=%q,status=%q} %d\n",
				name, label, m.members[name].requests[st])
		}
	}
	fmt.Fprintf(w, "# TYPE kplistgw_member_request_duration_seconds histogram\n")
	for _, name := range members {
		h := m.members[name].latency
		var cum int64
		for i, bound := range latencyBounds {
			cum += h.buckets[i]
			fmt.Fprintf(w, "kplistgw_member_request_duration_seconds_bucket{member=%q,le=\"%g\"} %d\n",
				name, bound, cum)
		}
		cum += h.buckets[len(latencyBounds)]
		fmt.Fprintf(w, "kplistgw_member_request_duration_seconds_bucket{member=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "kplistgw_member_request_duration_seconds_sum{member=%q} %g\n", name, h.sum)
		fmt.Fprintf(w, "kplistgw_member_request_duration_seconds_count{member=%q} %d\n", name, h.count)
	}

	for _, c := range []struct {
		name string
		v    int64
	}{
		{"kplistgw_failover_reads_total", m.failoverReads},
		{"kplistgw_retries_total", m.retries},
		{"kplistgw_replica_acks_total", m.replicaAcks},
		{"kplistgw_replication_lag_batches", m.replicaFailures},
		{"kplistgw_scatter_requests_total", m.scatterRequests},
		{"kplistgw_scatter_merged_lines_total", m.scatterLines},
		{"kplistgw_sketch_merges_total", m.sketchMerges},
		{"kplistgw_sketch_shard_fetches_total", m.sketchShardFetches},
		{"kplistgw_unroutable_total", m.misdirected},
		{"kplistgw_hints_queued_total", m.hintsQueued},
		{"kplistgw_hints_replayed_total", m.hintsReplayed},
		{"kplistgw_hints_dropped_total", m.hintsDropped},
		{"kplistgw_divergence_detected_total", m.divergence},
		{"kplistgw_repairs_total", m.repairs},
		{"kplistgw_repair_failures_total", m.repairFailures},
		{"kplistgw_antientropy_sweeps_total", m.sweeps},
		{"kplistgw_notfound_reprobes_total", m.notFoundReprobes},
		{"kplistgw_notfound_reprobes_recovered_total", m.notFoundRecovered},
	} {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.v)
	}
}
