package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Gateway is the scatter–gather HTTP front: it mirrors kplistd's /v1 API
// so existing clients can point at the gateway unchanged, routes every
// request to the owning node through the embedded Client (reads fail
// over to replicas, mutation batches fan out), serves partitioned graphs
// by scatter–gather merge, and exposes cluster-level /metrics and
// /healthz. kplistgw wraps exactly this handler in a daemon.
type Gateway struct {
	c       *Client
	mux     *http.ServeMux
	maxBody int64
}

// NewGateway builds the gateway handler over an existing Client.
func NewGateway(c *Client) *Gateway {
	gw := &Gateway{c: c, mux: http.NewServeMux(), maxBody: 256 << 20}
	gw.mux.HandleFunc("GET /healthz", gw.handleHealthz)
	gw.mux.HandleFunc("GET /metrics", gw.handleMetrics)
	gw.mux.HandleFunc("POST /v1/graphs", gw.handleRegister)
	gw.mux.HandleFunc("GET /v1/graphs", gw.handleList)
	gw.mux.HandleFunc("GET /v1/graphs/{id}", gw.handleGet)
	gw.mux.HandleFunc("DELETE /v1/graphs/{id}", gw.handleDelete)
	gw.mux.HandleFunc("POST /v1/graphs/{id}/query", gw.handleQuery)
	gw.mux.HandleFunc("GET /v1/graphs/{id}/cliques", gw.handleCliques)
	gw.mux.HandleFunc("GET /v1/graphs/{id}/sketch", gw.handleSketch)
	gw.mux.HandleFunc("PATCH /v1/graphs/{id}/edges", gw.handlePatch)
	gw.mux.HandleFunc("GET /v1/graphs/{id}/digest", gw.handleDigest)
	return gw
}

// Client returns the embedded routing client.
func (gw *Gateway) Client() *Client { return gw.c }

func (gw *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	gw.mux.ServeHTTP(w, r)
}

func gwError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// relay copies a node response through to the gateway client: status,
// content headers, the X-Kplist-* result headers, and the body (flushed
// periodically so NDJSON streams keep flowing).
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	for name, vals := range resp.Header {
		if strings.HasPrefix(name, "X-Kplist-") {
			w.Header()[name] = vals
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func (gw *Gateway) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, gw.maxBody))
	if err != nil {
		gwError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if r.URL.Query().Get("partitioned") == "1" {
		p, err := strconv.Atoi(r.URL.Query().Get("p"))
		if err != nil {
			gwError(w, http.StatusBadRequest,
				errors.New("partitioned registration needs an integer p query parameter"))
			return
		}
		meta, err := gw.c.RegisterPartitioned(r.Context(), body, p)
		if err != nil {
			gwError(w, statusForClusterErr(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(meta)
		return
	}

	// Plain registration: mint the cluster ID, inject it into the body,
	// register on owner + replicas, and relay the owner's answer enriched
	// with placement.
	var wire map[string]any
	if err := json.Unmarshal(body, &wire); err != nil {
		gwError(w, http.StatusBadRequest, fmt.Errorf("bad register body: %w", err))
		return
	}
	id := NewGraphID()
	wire["id"] = id
	buf, err := json.Marshal(wire)
	if err != nil {
		gwError(w, http.StatusBadRequest, err)
		return
	}
	resp, acks, err := gw.c.RegisterRaw(r.Context(), id, buf)
	if err != nil {
		gwError(w, http.StatusBadGateway, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		relayBuffered(w, resp)
		return
	}
	var out map[string]any
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		gwError(w, http.StatusBadGateway, fmt.Errorf("decoding owner response: %w", err))
		return
	}
	set := gw.c.ring.ReplicaSet(id, gw.c.cfg.Replication)
	out["owner"] = set[0].Name
	replicas := make([]string, 0, len(set)-1)
	for _, m := range set[1:] {
		replicas = append(replicas, m.Name)
	}
	out["replicas"] = replicas
	out["replicaAcks"] = acks
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	json.NewEncoder(w).Encode(out)
}

// relayBuffered relays a response that is already partially consumed or
// small (error bodies).
func relayBuffered(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, io.LimitReader(resp.Body, 1<<20))
}

// handleList merges every member's graph listing: replicated graphs are
// deduplicated by ID, shard graphs are hidden, and partitioned graphs are
// reported from the gateway's own state.
func (gw *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	type nodeList struct {
		Graphs []map[string]any `json:"graphs"`
	}
	var mu sync.Mutex
	seen := make(map[string]map[string]any)
	var wg sync.WaitGroup
	for _, m := range gw.c.ring.Members() {
		wg.Add(1)
		go func(m Member) {
			defer wg.Done()
			resp, err := gw.c.forward(r.Context(), m, http.MethodGet, "/v1/graphs", nil)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				return
			}
			var nl nodeList
			if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&nl); err != nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			for _, g := range nl.Graphs {
				id, _ := g["id"].(string)
				if id == "" || strings.Contains(id, ShardIDSuffix) {
					continue
				}
				if _, dup := seen[id]; !dup {
					seen[id] = g
				}
			}
		}(m)
	}
	wg.Wait()

	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	graphs := make([]any, 0, len(seen)+4)
	for _, id := range ids {
		graphs = append(graphs, seen[id])
	}
	for _, id := range gw.c.PartitionedIDs() {
		if meta, ok := gw.c.PartitionedMeta(id); ok {
			graphs = append(graphs, meta)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"graphs": graphs})
}

func (gw *Gateway) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if meta, ok := gw.c.PartitionedMeta(id); ok {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(meta)
		return
	}
	resp, _, err := gw.c.doRead(r.Context(), id, http.MethodGet, "/v1/graphs/"+id, nil)
	if err != nil {
		gwError(w, http.StatusBadGateway, err)
		return
	}
	relay(w, resp)
}

// handleDigest relays a graph's version digest (owner-preferred, with
// the usual read failover). Operators diff it across members to check
// replica convergence by hand; the sweeper does the same comparison
// internally.
func (gw *Gateway) handleDigest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	resp, _, err := gw.c.doRead(r.Context(), id, http.MethodGet, "/v1/graphs/"+id+"/digest", nil)
	if err != nil {
		gwError(w, http.StatusBadGateway, err)
		return
	}
	relay(w, resp)
}

func (gw *Gateway) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if pg := gw.c.partitionedGraph(id); pg != nil {
		if err := gw.c.deletePartitioned(r.Context(), pg); err != nil {
			gwError(w, http.StatusBadGateway, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	deleted, err := gw.c.DeleteRaw(r.Context(), id)
	if err != nil {
		gwError(w, http.StatusBadGateway, err)
		return
	}
	if deleted == 0 {
		gwError(w, http.StatusNotFound, fmt.Errorf("graph %s not found on any member", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (gw *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if pg := gw.c.partitionedGraph(id); pg != nil {
		// Partitioned graphs cannot run the query kernel, but the
		// approximate tier works: estimates are answered from the
		// scatter-merged shard sketch (sketch.go).
		if r.URL.Query().Get("mode") == "estimate" {
			gw.handlePartitionedEstimate(w, r, pg)
			return
		}
		gwError(w, http.StatusBadRequest, ErrPartitionedMutation)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, gw.maxBody))
	if err != nil {
		gwError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	resp, _, err := gw.c.doRead(r.Context(), id, http.MethodPost, "/v1/graphs/"+id+"/query", body)
	if err != nil {
		gwError(w, http.StatusBadGateway, err)
		return
	}
	relay(w, resp)
}

func (gw *Gateway) handleCliques(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if pg := gw.c.partitionedGraph(id); pg != nil {
		p, err := strconv.Atoi(r.URL.Query().Get("p"))
		if err != nil {
			gwError(w, http.StatusBadRequest, errors.New("cliques needs an integer p query parameter"))
			return
		}
		algo := r.URL.Query().Get("algo")
		w.Header().Set("Content-Type", "application/x-ndjson")
		if _, err := gw.c.scatterCliques(r.Context(), pg, p, algo, &flushWriter{w: w}); err != nil {
			// Headers are gone; surface the failure where we still can.
			if errors.Is(err, ErrPartitionMismatch) {
				gwError(w, http.StatusBadRequest, err)
				return
			}
			gwError(w, http.StatusBadGateway, err)
		}
		return
	}
	resp, _, err := gw.c.doRead(r.Context(), id, http.MethodGet, "/v1/graphs/"+id+"/cliques?"+r.URL.RawQuery, nil)
	if err != nil {
		gwError(w, http.StatusBadGateway, err)
		return
	}
	relay(w, resp)
}

// flushWriter flushes after every write so merged scatter output streams.
type flushWriter struct{ w http.ResponseWriter }

func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if f, ok := fw.w.(http.Flusher); ok {
		f.Flush()
	}
	return n, err
}

func (gw *Gateway) handlePatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if gw.c.partitionedGraph(id) != nil {
		gwError(w, http.StatusBadRequest, ErrPartitionedMutation)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, gw.maxBody))
	if err != nil {
		gwError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	resp, acks, err := gw.c.PatchRaw(r.Context(), id, body)
	if err != nil {
		gwError(w, http.StatusBadGateway, err)
		return
	}
	w.Header().Set("X-Kplist-Replica-Acks", strconv.Itoa(acks))
	relay(w, resp)
}

// handleHealthz aggregates cluster health: per-member probe verdicts plus
// a live /healthz pass across the membership. 200 when every member is
// up, 503 when any is down (the body says which).
func (gw *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type memberHealthz struct {
		Name string `json:"name"`
		Addr string `json:"addr"`
		Up   bool   `json:"up"`
	}
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	members := gw.c.ring.Members()
	out := make([]memberHealthz, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			up := false
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.Addr+"/healthz", nil)
			if err == nil {
				if resp, err := gw.c.hc.Do(req); err == nil {
					up = resp.StatusCode == http.StatusOK
					drain(resp)
				}
			}
			if up {
				gw.c.noteUp(m.Name)
			} else {
				gw.c.healthOf(m.Name).markDown()
			}
			out[i] = memberHealthz{Name: m.Name, Addr: m.Addr, Up: up}
		}(i, m)
	}
	wg.Wait()
	upCount := 0
	for _, m := range out {
		if m.Up {
			upCount++
		}
	}
	status := "ok"
	code := http.StatusOK
	if upCount < len(out) {
		status = "degraded"
		code = http.StatusServiceUnavailable
		if upCount == 0 {
			status = "down"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":      status,
		"members":     out,
		"membersUp":   upCount,
		"replication": gw.c.cfg.Replication,
		"partitioned": len(gw.c.PartitionedIDs()),
	})
}

func (gw *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	gauges := map[string]float64{
		"kplistgw_ring_members":       float64(len(gw.c.cfg.Members)),
		"kplistgw_ring_vnodes":        float64(gw.c.cfg.VNodes * len(gw.c.cfg.Members)),
		"kplistgw_ring_replication":   float64(gw.c.cfg.Replication),
		"kplistgw_partitioned_graphs": float64(len(gw.c.PartitionedIDs())),
		"kplistgw_dirty_replicas":     float64(gw.c.hints.dirtyCount()),
	}
	for _, m := range gw.c.ring.Members() {
		v := 0.0
		if gw.c.MemberUp(m.Name) {
			v = 1
		}
		gauges[fmt.Sprintf("kplistgw_member_up{member=%q}", m.Name)] = v
		gauges[fmt.Sprintf("kplistgw_hint_queue_depth{member=%q}", m.Name)] =
			float64(gw.c.hints.depth(m.Name))
	}
	var b strings.Builder
	gw.c.met.Render(&b, gauges)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}

// statusForClusterErr maps cluster errors to gateway HTTP statuses.
func statusForClusterErr(err error) int {
	switch {
	case errors.Is(err, ErrNoQuorum):
		return http.StatusBadGateway
	case errors.Is(err, ErrPartitionMismatch), errors.Is(err, ErrPartitionedMutation):
		return http.StatusBadRequest
	default:
		return http.StatusBadRequest
	}
}
