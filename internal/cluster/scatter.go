package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"

	"kplist"
	"kplist/internal/partition"
)

// Partitioned graphs (POST /v1/graphs?partitioned=1&p=<p>) split one
// logical graph's edges across all shards instead of replicating it
// whole. Registration fixes the clique size p; vertices are assigned to
// T = len(members) parts by the paper's random partition (Lemma 2.7,
// seeded, so re-registration reproduces it); each possible clique
// "signature" — the sorted multiset of its vertices' parts — is owned by
// the ring member that owns the key id+"/tuple/"+sig. A member's shard
// subgraph carries exactly the edges whose part pair occurs inside at
// least one of its signatures, so every clique with an owned signature is
// fully present on its owner. Listing scatters to all shards, filters
// each shard's (lexicographically sorted) stream down to the cliques
// whose signature that shard owns — making the shard outputs disjoint —
// and k-way-merges them, which reproduces the single-node NDJSON stream
// byte for byte. See DESIGN.md §12.
//
// ErrPartitionMismatch reports a listing query whose p differs from the
// p the partitioned graph was registered with.
var ErrPartitionMismatch = errors.New("cluster: query p differs from the partitioned registration")

// ErrPartitionedMutation reports a PATCH / POST query against a
// partitioned graph; only listing is supported in partitioned mode.
var ErrPartitionedMutation = errors.New("cluster: partitioned graphs are immutable (listing only)")

// pgraph is the gateway-side state of one partitioned graph.
type pgraph struct {
	id     string
	name   string
	family string
	p      int // clique size fixed at registration
	n, m   int
	parts  int     // T = number of members at registration
	partOf []int32 // vertex → part
	// sigOwner maps a signature key to the member name owning it.
	sigOwner map[string]string
	// shardID maps a member name to its shard graph's cluster-wide ID.
	shardID map[string]string
	// shardM maps a member name to its shard subgraph's edge count.
	shardM map[string]int
}

func (c *Client) partitionedGraph(id string) *pgraph {
	c.pgMu.RLock()
	defer c.pgMu.RUnlock()
	return c.pgraphs[id]
}

// PartitionedMeta returns the cluster-level metadata for a partitioned
// graph, or false when id is not a partitioned graph.
func (c *Client) PartitionedMeta(id string) (GraphMeta, bool) {
	pg := c.partitionedGraph(id)
	if pg == nil {
		return GraphMeta{}, false
	}
	return pg.meta(), true
}

// PartitionedIDs lists the registered partitioned graph IDs, sorted.
func (c *Client) PartitionedIDs() []string {
	c.pgMu.RLock()
	defer c.pgMu.RUnlock()
	ids := make([]string, 0, len(c.pgraphs))
	for id := range c.pgraphs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (pg *pgraph) meta() GraphMeta {
	return GraphMeta{
		ID: pg.id, Name: pg.name, N: pg.n, M: pg.m, Family: pg.family,
		Partitioned: true, Shards: len(pg.shardID), P: pg.p, Parts: pg.parts,
	}
}

// ShardIDSuffix marks shard graph IDs ("<cluster id>.s.<member>"). The
// gateway hides graphs carrying it from cluster-level listings.
const ShardIDSuffix = ".s."

// sigKey renders a sorted part multiset as "a.b.c".
func sigKey(sig []int) string {
	var b []byte
	for i, s := range sig {
		if i > 0 {
			b = append(b, '.')
		}
		b = strconv.AppendInt(b, int64(s), 10)
	}
	return string(b)
}

// signatures enumerates every sorted p-multiset over parts [0,t) — the
// possible clique signatures, C(t+p−1, p) of them.
func signatures(t, p int) [][]int {
	var out [][]int
	sig := make([]int, p)
	var rec func(pos, lo int)
	rec = func(pos, lo int) {
		if pos == p {
			out = append(out, append([]int(nil), sig...))
			return
		}
		for part := lo; part < t; part++ {
			sig[pos] = part
			rec(pos+1, part)
		}
	}
	rec(0, 0)
	return out
}

// registerWire mirrors kplistd's register request body (plus the cluster
// ID extension) without importing internal/server.
type registerWire struct {
	ID       string               `json:"id,omitempty"`
	Name     string               `json:"name,omitempty"`
	N        int                  `json:"n,omitempty"`
	Edges    [][2]int32           `json:"edges,omitempty"`
	Workload *kplist.WorkloadSpec `json:"workload,omitempty"`
}

// RegisterPartitioned registers body as a partitioned graph with clique
// size p: it materializes the edges (generating the workload locally when
// the body carries a spec), partitions the vertices, assigns signatures
// to members through the ring, and registers each member's shard subgraph
// on that member (replicated to its ring successors).
func (c *Client) RegisterPartitioned(ctx context.Context, body []byte, p int) (GraphMeta, error) {
	if p < 2 {
		return GraphMeta{}, fmt.Errorf("cluster: partitioned registration needs p >= 2, got %d", p)
	}
	var req registerWire
	if err := json.Unmarshal(body, &req); err != nil {
		return GraphMeta{}, fmt.Errorf("cluster: bad register body: %w", err)
	}
	id := NewGraphID()
	n, edges, family := req.N, make([]edgePair, 0, len(req.Edges)), ""
	name := req.Name
	if req.Workload != nil {
		inst, err := kplist.GenerateWorkload(*req.Workload)
		if err != nil {
			return GraphMeta{}, err
		}
		n = inst.G.N()
		family = inst.Spec.Family
		for _, e := range inst.G.Edges() {
			edges = append(edges, edgePair{e.U, e.V})
		}
	} else {
		for _, e := range req.Edges {
			edges = append(edges, edgePair{e[0], e[1]})
		}
	}
	if n <= 0 {
		return GraphMeta{}, errors.New("cluster: partitioned registration needs n > 0")
	}

	t := len(c.cfg.Members)
	// Seed the partition from the cluster seed and the graph ID so the
	// split is reproducible but distinct per graph.
	h := fnv.New64a()
	h.Write([]byte(id))
	rng := rand.New(rand.NewSource(c.cfg.Seed ^ int64(h.Sum64())))
	part := partition.Random(n, t, rng)

	pg := &pgraph{
		id: id, name: name, family: family, p: p, n: n, m: len(edges),
		parts:    t,
		partOf:   part.PartOf,
		sigOwner: make(map[string]string),
		shardID:  make(map[string]string, t),
		shardM:   make(map[string]int, t),
	}

	// Assign every signature to a ring member, and derive each member's
	// allowed part-pair matrix: pair (a,b), a≠b, is allowed when some
	// owned signature contains both parts; (a,a) needs multiplicity ≥ 2.
	allowed := make(map[string][]bool, t)
	for _, m := range c.cfg.Members {
		allowed[m.Name] = make([]bool, partition.NumPairs(t))
	}
	for _, sig := range signatures(t, p) {
		key := sigKey(sig)
		owner := c.ring.Owner(id + "/tuple/" + key).Name
		pg.sigOwner[key] = owner
		for i := 0; i < len(sig); i++ {
			for j := i + 1; j < len(sig); j++ {
				allowed[owner][partition.PairIndex(sig[i], sig[j], t)] = true
			}
		}
	}

	// Split the edges: an edge goes to every member whose allowed matrix
	// admits its part pair (members can overlap — the signature filter at
	// merge time restores disjointness of the clique streams).
	shardEdges := make(map[string][]edgePair, t)
	for _, e := range edges {
		pi := partition.PairIndex(int(part.PartOf[e[0]]), int(part.PartOf[e[1]]), t)
		for _, m := range c.cfg.Members {
			if allowed[m.Name][pi] {
				shardEdges[m.Name] = append(shardEdges[m.Name], e)
			}
		}
	}

	// Register each shard subgraph pinned to its member (first), then
	// best-effort on the member's ring successors for failover.
	for _, m := range c.cfg.Members {
		shardID := id + ShardIDSuffix + m.Name
		wire := registerWire{
			ID:    shardID,
			Name:  name + "/shard/" + m.Name,
			N:     n,
			Edges: make([][2]int32, 0, len(shardEdges[m.Name])),
		}
		for _, e := range shardEdges[m.Name] {
			wire.Edges = append(wire.Edges, [2]int32{e[0], e[1]})
		}
		buf, err := json.Marshal(wire)
		if err != nil {
			return GraphMeta{}, err
		}
		placement := c.ring.SuccessorSet(m.Name, c.cfg.Replication)
		for i, host := range placement {
			resp, err := c.forward(ctx, host, http.MethodPost, "/v1/graphs", buf)
			if i == 0 {
				if err != nil {
					return GraphMeta{}, fmt.Errorf("%w: shard %s: %v", ErrNoQuorum, shardID, err)
				}
				if resp.StatusCode/100 != 2 {
					msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
					resp.Body.Close()
					return GraphMeta{}, fmt.Errorf("cluster: shard %s register: status %d: %s",
						shardID, resp.StatusCode, bytes.TrimSpace(msg))
				}
				drain(resp)
				continue
			}
			if err != nil || resp.StatusCode/100 != 2 {
				c.met.addReplicaFailed()
				if resp != nil {
					drain(resp)
				}
				continue
			}
			drain(resp)
			c.met.addReplicaAck()
		}
		pg.shardID[m.Name] = shardID
		pg.shardM[m.Name] = len(shardEdges[m.Name])
	}

	c.pgMu.Lock()
	c.pgraphs[id] = pg
	c.pgMu.Unlock()
	return pg.meta(), nil
}

func (c *Client) deletePartitioned(ctx context.Context, pg *pgraph) error {
	var lastErr error
	for member, shardID := range pg.shardID {
		for _, host := range c.ring.SuccessorSet(member, c.cfg.Replication) {
			resp, err := c.forward(ctx, host, http.MethodDelete, "/v1/graphs/"+shardID, nil)
			if err != nil {
				lastErr = fmt.Errorf("%s: %w", host.Name, err)
				continue
			}
			drain(resp)
			if resp.StatusCode/100 != 2 && resp.StatusCode != http.StatusNotFound {
				lastErr = fmt.Errorf("%s: shard delete status %d", host.Name, resp.StatusCode)
			}
		}
	}
	c.pgMu.Lock()
	delete(c.pgraphs, pg.id)
	c.pgMu.Unlock()
	return lastErr
}

type edgePair = [2]int32

// shardStream pulls one shard's filtered NDJSON clique stream: lines
// arrive lexicographically sorted from the node (the kernel's order), and
// the stream keeps only cliques whose signature this shard owns.
type shardStream struct {
	member string
	resp   *http.Response
	sc     *bufio.Scanner
	pg     *pgraph
	// head is the current (not yet consumed) line and its parsed vertices.
	head     []byte
	verts    []int32
	sigParts []int
	done     bool
}

// advance moves to the next owned line; afterwards done || head is valid.
func (s *shardStream) advance() error {
	for s.sc.Scan() {
		line := s.sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		verts, err := parseCliqueLine(line, s.verts[:0])
		if err != nil {
			return fmt.Errorf("cluster: shard %s stream: %w", s.member, err)
		}
		s.verts = verts
		if s.sigParts == nil {
			s.sigParts = make([]int, 0, len(verts))
		}
		s.sigParts = s.sigParts[:0]
		for _, v := range verts {
			s.sigParts = append(s.sigParts, int(s.pg.partOf[v]))
		}
		sort.Ints(s.sigParts)
		if s.pg.sigOwner[sigKey(s.sigParts)] != s.member {
			continue
		}
		s.head = append(s.head[:0], line...)
		return nil
	}
	s.done = true
	return s.sc.Err()
}

func (s *shardStream) close() {
	if s.resp != nil {
		s.resp.Body.Close()
	}
}

// parseCliqueLine parses "[a,b,c]" into dst.
func parseCliqueLine(line []byte, dst []int32) ([]int32, error) {
	line = bytes.TrimSpace(line)
	if len(line) < 2 || line[0] != '[' || line[len(line)-1] != ']' {
		return nil, fmt.Errorf("bad clique line %q", line)
	}
	body := line[1 : len(line)-1]
	if len(body) > 0 && body[len(body)-1] == ',' {
		return nil, fmt.Errorf("bad clique line %q", line)
	}
	for len(body) > 0 {
		i := bytes.IndexByte(body, ',')
		var tok []byte
		if i < 0 {
			tok, body = body, nil
		} else {
			tok, body = body[:i], body[i+1:]
		}
		v, err := strconv.ParseInt(string(bytes.TrimSpace(tok)), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad clique line %q: %v", line, err)
		}
		dst = append(dst, int32(v))
	}
	return dst, nil
}

// lessVerts is lexicographic comparison of two vertex sequences — the
// kernel's listing order.
func lessVerts(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// scatterCliques streams the partitioned graph's p-clique listing into w:
// one filtered stream per shard (failover across the shard's successor
// placement), k-way merged lexicographically. Returns merged line count.
func (c *Client) scatterCliques(ctx context.Context, pg *pgraph, p int, algo string, w io.Writer) (int64, error) {
	if p != pg.p {
		return 0, fmt.Errorf("%w: registered p=%d, queried p=%d", ErrPartitionMismatch, pg.p, p)
	}
	streams := make([]*shardStream, 0, len(pg.shardID))
	defer func() {
		for _, s := range streams {
			s.close()
		}
	}()
	for _, m := range c.cfg.Members {
		shardID, ok := pg.shardID[m.Name]
		if !ok {
			continue
		}
		q := fmt.Sprintf("/v1/graphs/%s/cliques?p=%d&stream=1", shardID, p)
		if algo != "" {
			q += "&algo=" + algo
		}
		if algo == "" || algo == "truth" {
			// The ground-truth stream defaults to kernel visit order,
			// which depends on the (shard) graph; lexicographic order is
			// the one the shards and the single-node reference share.
			q += "&order=lex"
		}
		resp, _, err := c.readFrom(ctx, c.ring.SuccessorSet(m.Name, c.cfg.Replication), m.Name, http.MethodGet, q, nil)
		if err != nil {
			return 0, fmt.Errorf("cluster: shard %s: %w", shardID, err)
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return 0, fmt.Errorf("cluster: shard %s: status %d: %s", shardID, resp.StatusCode, bytes.TrimSpace(msg))
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		s := &shardStream{member: m.Name, resp: resp, sc: sc, pg: pg}
		if err := s.advance(); err != nil {
			resp.Body.Close()
			return 0, err
		}
		streams = append(streams, s)
	}

	bw := bufio.NewWriter(w)
	var lines int64
	for {
		var best *shardStream
		for _, s := range streams {
			if s.done {
				continue
			}
			if best == nil || lessVerts(s.verts, best.verts) {
				best = s
			}
		}
		if best == nil {
			break
		}
		bw.Write(best.head)
		bw.WriteByte('\n')
		lines++
		if err := best.advance(); err != nil {
			return lines, err
		}
	}
	c.met.addScatter(lines)
	return lines, bw.Flush()
}
