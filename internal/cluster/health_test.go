package cluster

// S4: the health prober's state machine — down → backoff → probe → up —
// plus the backoff cap and the early up-flip on a successful forwarded
// request. These are internal tests: they drive memberHealth, prober,
// and Client.forward directly.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestProbeBackoffDoublesAndCaps(t *testing.T) {
	interval := 100 * time.Millisecond
	for _, tc := range []struct {
		fails int64
		want  time.Duration
	}{
		{0, 100 * time.Millisecond},
		{1, 200 * time.Millisecond},
		{2, 400 * time.Millisecond},
		{3, 800 * time.Millisecond},
		{4, 800 * time.Millisecond},  // capped at 8× interval
		{50, 800 * time.Millisecond}, // shift is clamped, no overflow
	} {
		if got := probeBackoff(interval, tc.fails); got != tc.want {
			t.Errorf("probeBackoff(%v, %d) = %v, want %v", interval, tc.fails, got, tc.want)
		}
	}
}

func TestMarkUpReportsOnlyTransitions(t *testing.T) {
	h := newMemberHealth()
	if h.markUp() {
		t.Fatal("markUp on an already-up member reported a flip")
	}
	h.markDown()
	h.markDown()
	if h.consecFails.Load() != 2 {
		t.Fatalf("consecFails = %d, want 2", h.consecFails.Load())
	}
	if !h.markUp() {
		t.Fatal("markUp after markDown did not report the down→up flip")
	}
	if h.consecFails.Load() != 0 {
		t.Fatal("markUp did not reset consecFails")
	}
	if h.markUp() {
		t.Fatal("second markUp reported a second flip")
	}
}

// toggleServer is a /healthz endpoint whose verdict flips on demand.
type toggleServer struct {
	ok atomic.Bool
	ts *httptest.Server
}

func newToggleServer(t *testing.T) *toggleServer {
	t.Helper()
	s := &toggleServer{}
	s.ok.Store(true)
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if s.ok.Load() {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	t.Cleanup(s.ts.Close)
	return s
}

func newHealthTestClient(t *testing.T, addr string, probeInterval time.Duration) *Client {
	t.Helper()
	c, err := NewClient(
		Config{Members: []Member{{Name: "n1", Addr: addr}}, Replication: 1},
		ClientOptions{ProbeInterval: probeInterval, JitterSeed: 3, RepairInterval: -1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestProberStateMachine walks one member through up → down → backoff →
// probe → up using direct probeAll passes (no timers, no sleep-races).
func TestProberStateMachine(t *testing.T) {
	srv := newToggleServer(t)
	c := newHealthTestClient(t, srv.ts.URL, 40*time.Millisecond)
	ctx := context.Background()

	c.pr.probeAll(ctx)
	if !c.MemberUp("n1") {
		t.Fatal("healthy member not up after first probe pass")
	}

	srv.ok.Store(false)
	c.pr.probeAll(ctx)
	if c.MemberUp("n1") {
		t.Fatal("failing member still up after probe pass")
	}
	fails := c.healthOf("n1").consecFails.Load()
	if fails == 0 {
		t.Fatal("markDown did not count the failure")
	}

	// Inside the backoff window the member is not re-probed: the verdict
	// (and the failure count) must not move even though the server has
	// recovered.
	srv.ok.Store(true)
	c.pr.probeAll(ctx)
	if c.MemberUp("n1") {
		t.Fatal("member re-probed inside its backoff window")
	}

	// Age the last probe past the backoff and the next pass flips it up.
	backoff := probeBackoff(c.pr.interval, c.healthOf("n1").consecFails.Load())
	c.healthOf("n1").lastProbeNs.Store(time.Now().Add(-backoff - time.Millisecond).UnixNano())
	c.pr.probeAll(ctx)
	if !c.MemberUp("n1") {
		t.Fatal("recovered member not up after post-backoff probe")
	}
	if c.healthOf("n1").consecFails.Load() != 0 {
		t.Fatal("up-flip did not reset the failure count")
	}
}

// TestForwardedSuccessFlipsUpEarly pins the fast path: a down-marked
// member that answers a forwarded request flips up immediately, without
// waiting out a probe window.
func TestForwardedSuccessFlipsUpEarly(t *testing.T) {
	srv := newToggleServer(t)
	// An hour-long probe interval: only a forwarded request can flip state.
	c := newHealthTestClient(t, srv.ts.URL, time.Hour)
	c.healthOf("n1").markDown()
	if c.MemberUp("n1") {
		t.Fatal("markDown did not take")
	}
	resp, err := c.forward(context.Background(), Member{Name: "n1", Addr: srv.ts.URL},
		http.MethodGet, "/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	drain(resp)
	if !c.MemberUp("n1") {
		t.Fatal("successful forwarded request did not flip the member up")
	}
}

// TestForwarded4xxStillFlipsUp pins the "a 4xx is the member answering,
// not dying" rule, and that a 5xx marks it down.
func TestForwardedStatusHealthRules(t *testing.T) {
	codes := make(chan int, 2)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(<-codes)
	}))
	t.Cleanup(ts.Close)
	c := newHealthTestClient(t, ts.URL, time.Hour)
	m := Member{Name: "n1", Addr: ts.URL}

	c.healthOf("n1").markDown()
	codes <- http.StatusNotFound
	resp, err := c.forward(context.Background(), m, http.MethodGet, "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	drain(resp)
	if !c.MemberUp("n1") {
		t.Fatal("4xx answer left the member down")
	}

	codes <- http.StatusInternalServerError
	resp, err = c.forward(context.Background(), m, http.MethodGet, "/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	drain(resp)
	if c.MemberUp("n1") {
		t.Fatal("5xx answer left the member up")
	}
}

func TestJitteredStaysInHalfToThreeHalves(t *testing.T) {
	c := newHealthTestClient(t, "http://127.0.0.1:1", time.Hour)
	d := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := c.jittered(d)
		if j < d/2 || j >= d*3/2 {
			t.Fatalf("jittered(%v) = %v outside [d/2, 3d/2)", d, j)
		}
	}
	if c.jittered(0) != 0 {
		t.Fatal("jittered(0) != 0")
	}
	// Same seed → same sequence (determinism is the point of seeding).
	a := newHealthTestClient(t, "http://127.0.0.1:1", time.Hour)
	b := newHealthTestClient(t, "http://127.0.0.1:1", time.Hour)
	for i := 0; i < 32; i++ {
		if a.jittered(d) != b.jittered(d) {
			t.Fatal("identically-seeded clients produced different jitter")
		}
	}
}
