package cluster_test

// The self-healing convergence suite (DESIGN.md §13): durable kplistd
// nodes behind a seeded faultnet fabric, a gateway client doing
// owner-first writes with hinted handoff, and an anti-entropy sweeper.
// The contract under test: after any run of drops, partitions, and
// kill-restarts, once the network heals every replica's digest converges
// to its owner's, and the owner's state contains exactly the batches the
// gateway acknowledged — no acked write lost, no unacked write smuggled
// in (the fabric aborts faulted requests before the backend sees them).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kplist"
	"kplist/internal/cluster"
	"kplist/internal/faultnet"
	"kplist/internal/server"
)

// chaosHarness is a loopback cluster whose members sit behind faultnet
// proxies: n durable (WAL-backed) kplistd nodes, a routing client, a
// gateway front, and a standalone reference server that receives exactly
// the batches the cluster acknowledged.
type chaosHarness struct {
	t       *testing.T
	net     *faultnet.Net
	nodeCfg cluster.Config
	names   []string
	dirs    map[string]string
	proxies map[string]*faultnet.Proxy
	backend map[string]*httptest.Server
	client  *cluster.Client
	gw      *httptest.Server
	ref     *httptest.Server
}

func newChaosHarness(t *testing.T, n, replication int, fabricSeed int64, opts cluster.ClientOptions) *chaosHarness {
	t.Helper()
	h := &chaosHarness{
		t:       t,
		net:     faultnet.New(fabricSeed),
		dirs:    make(map[string]string),
		proxies: make(map[string]*faultnet.Proxy),
		backend: make(map[string]*httptest.Server),
	}
	placeholder := make([]cluster.Member, n)
	for i := range placeholder {
		placeholder[i] = cluster.Member{Name: fmt.Sprintf("n%d", i+1), Addr: fmt.Sprintf("placeholder%d:1", i+1)}
	}
	h.nodeCfg = cluster.Config{Members: placeholder, Replication: replication, Seed: fabricSeed}
	real := make([]cluster.Member, n)
	for i := range placeholder {
		name := placeholder[i].Name
		h.names = append(h.names, name)
		h.dirs[name] = t.TempDir()
		backend := httptest.NewServer(h.openNode(name).Handler())
		h.backend[name] = backend
		px := h.net.Proxy(name, backend.URL)
		h.proxies[name] = px
		front := httptest.NewServer(px)
		t.Cleanup(front.Close)
		real[i] = cluster.Member{Name: name, Addr: front.URL}
	}
	client, err := cluster.NewClient(
		cluster.Config{Members: real, Replication: replication, Seed: fabricSeed}, opts)
	if err != nil {
		t.Fatal(err)
	}
	h.client = client
	client.Start()
	t.Cleanup(client.Close)
	h.gw = httptest.NewServer(cluster.NewGateway(client))
	t.Cleanup(h.gw.Close)
	h.ref = httptest.NewServer(server.New(server.Config{}).Handler())
	t.Cleanup(h.ref.Close)
	return h
}

func (h *chaosHarness) openNode(name string) *server.Server {
	h.t.Helper()
	ring, err := cluster.NewRing(h.nodeCfg)
	if err != nil {
		h.t.Fatal(err)
	}
	srv, err := server.Open(server.Config{
		ClusterSelf: name,
		ClusterRing: ring,
		DataDir:     h.dirs[name],
		Store:       kplist.StoreConfig{NoSync: true},
	})
	if err != nil {
		h.t.Fatalf("open node %s: %v", name, err)
	}
	return srv
}

// killRestart SIGKILLs a member in effigy: the old server instance is
// abandoned mid-flight (no Close, no flush — acknowledged batches must
// survive on the strength of the WAL alone), a fresh instance recovers
// from the same data dir, and the member's faultnet proxy is repointed
// at the replacement listener.
func (h *chaosHarness) killRestart(name string) {
	h.t.Helper()
	h.backend[name].Close() // the listener dies; the server state is never flushed
	backend := httptest.NewServer(h.openNode(name).Handler())
	h.backend[name] = backend
	h.t.Cleanup(backend.Close)
	h.proxies[name].SetBackend(backend.URL)
}

// pickID finds a deterministic graph ID with the wanted placement.
func (h *chaosHarness) pickID(prefix string, pred func(set []cluster.Member) bool) string {
	h.t.Helper()
	for i := 0; i < 100000; i++ {
		id := fmt.Sprintf("%s%05d", prefix, i)
		if pred(h.client.Ring().ReplicaSet(id, h.nodeCfg.Replication)) {
			return id
		}
	}
	h.t.Fatalf("no ID with prefix %s satisfies the placement predicate", prefix)
	return ""
}

// pathGraphBody is a deterministic explicit-edge register body.
func pathGraphBody(id string, n int) []byte {
	edges := make([][2]int, 0, n-1)
	for u := 0; u < n-1; u++ {
		edges = append(edges, [2]int{u, u + 1})
	}
	b, _ := json.Marshal(map[string]any{"id": id, "name": "conv-" + id, "n": n, "edges": edges})
	return b
}

// register registers the body on the cluster and mirrors it to the
// reference server.
func (h *chaosHarness) register(ctx context.Context, id string, body []byte) int {
	h.t.Helper()
	resp, acks, err := h.client.RegisterRaw(ctx, id, body)
	if err != nil {
		h.t.Fatalf("register %s: %v", id, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		h.t.Fatalf("register %s: status %d", id, resp.StatusCode)
	}
	rr, err := http.Post(h.ref.URL+"/v1/graphs", "application/json", strings.NewReader(string(body)))
	if err != nil || rr.StatusCode != http.StatusCreated {
		h.t.Fatalf("reference register %s: %v / %d", id, err, rr.StatusCode)
	}
	rr.Body.Close()
	return acks
}

// patch applies one batch through the cluster; when (and only when) the
// owner acknowledges it, the same batch is applied to the reference
// server. Returns whether the batch was acknowledged.
func (h *chaosHarness) patch(ctx context.Context, id string, body []byte) bool {
	h.t.Helper()
	resp, _, err := h.client.PatchRaw(ctx, id, body)
	if err != nil {
		return false // unacked: the reference must not see it either
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	req, _ := http.NewRequest(http.MethodPatch, h.ref.URL+"/v1/graphs/"+id+"/edges", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	rr, err := http.DefaultClient.Do(req)
	if err != nil || rr.StatusCode != http.StatusOK {
		h.t.Fatalf("reference patch %s: %v / %d", id, err, rr.StatusCode)
	}
	io.Copy(io.Discard, rr.Body)
	rr.Body.Close()
	return true
}

// digest fetches one member's version digest for one graph, straight
// from its (proxied) listener with the cluster forward mark set.
func (h *chaosHarness) digest(member, id string) (cluster.Digest, bool) {
	h.t.Helper()
	var d cluster.Digest
	addr := ""
	for _, m := range h.client.Ring().Members() {
		if m.Name == member {
			addr = m.Addr
		}
	}
	req, _ := http.NewRequest(http.MethodGet, addr+"/v1/graphs/"+id+"/digest", nil)
	req.Header.Set(cluster.ForwardHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return d, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return d, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return d, false
	}
	return d, true
}

// refDigest fetches the reference server's digest for one graph.
func (h *chaosHarness) refDigest(id string) cluster.Digest {
	h.t.Helper()
	resp, err := http.Get(h.ref.URL + "/v1/graphs/" + id + "/digest")
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	var d cluster.Digest
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		h.t.Fatal(err)
	}
	return d
}

// converged reports whether every replica's digest equals the owner's
// for the graph.
func (h *chaosHarness) converged(id string) bool {
	set := h.client.Ring().ReplicaSet(id, h.nodeCfg.Replication)
	od, ok := h.digest(set[0].Name, id)
	if !ok {
		return false
	}
	for _, m := range set[1:] {
		rd, ok := h.digest(m.Name, id)
		if !ok || rd.Seq != od.Seq || rd.Hash != od.Hash {
			return false
		}
	}
	return true
}

func (h *chaosHarness) waitMember(name string, up bool) {
	h.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if h.client.MemberUp(name) == up {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.t.Fatalf("member %s never became up=%v", name, up)
}

func batchBody(rng *rand.Rand, n, muts int) []byte {
	ms := make([]map[string]any, muts)
	for i := range ms {
		op := "add"
		if rng.Intn(3) == 0 {
			op = "remove"
		}
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		ms[i] = map[string]any{"op": op, "u": u, "v": v}
	}
	b, _ := json.Marshal(map[string]any{"mutations": ms})
	return b
}

// TestHintedHandoffReplaysOnRecovery pins the handoff happy path: a
// replica that goes dark mid-stream misses batches into its hint queue,
// and the prober's down→up flip replays them — no full-state transfer.
func TestHintedHandoffReplaysOnRecovery(t *testing.T) {
	h := newChaosHarness(t, 2, 2, 101, cluster.ClientOptions{
		RetryBackoff:   time.Millisecond,
		ProbeInterval:  25 * time.Millisecond,
		JitterSeed:     7,
		HintQueueLimit: 64,
		RepairInterval: -1, // handoff only: repairs would mask a replay bug
	})
	ctx := context.Background()
	id := h.pickID("hh", func(set []cluster.Member) bool {
		return set[0].Name == "n1" && set[1].Name == "n2"
	})
	if acks := h.register(ctx, id, pathGraphBody(id, 32)); acks != 1 {
		t.Fatalf("register acks = %d, want 1", acks)
	}

	h.net.Partition("n2")
	h.waitMember("n2", false)
	rng := rand.New(rand.NewSource(5))
	acked := 0
	for i := 0; i < 5; i++ {
		if h.patch(ctx, id, batchBody(rng, 32, 6)) {
			acked++
		}
	}
	if acked != 5 {
		t.Fatalf("owner-only acks = %d, want 5 (owner n1 is healthy)", acked)
	}
	if h.converged(id) {
		t.Fatal("replica converged while partitioned — the fabric leaked")
	}

	h.net.Heal("n2")
	deadline := time.Now().Add(10 * time.Second)
	for !h.converged(id) {
		if time.Now().After(deadline) {
			t.Fatal("replica digest never converged after heal (hinted replay)")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := h.client.Metrics().Repairs(); got != 0 {
		t.Fatalf("replay path ran %d full-state repairs, want 0", got)
	}
	od, _ := h.digest("n1", id)
	if rd := h.refDigest(id); rd.Hash != od.Hash || rd.Seq != od.Seq {
		t.Fatalf("owner digest %+v diverged from reference %+v", od, rd)
	}
}

// TestAntiEntropyRepairsMissedRegistration pins the sweeper: with
// handoff disabled, a replica that misses the registration and every
// batch is healed by one full-state transfer, adopting the owner's
// sequence position.
func TestAntiEntropyRepairsMissedRegistration(t *testing.T) {
	h := newChaosHarness(t, 2, 2, 202, cluster.ClientOptions{
		RetryBackoff:   time.Millisecond,
		ProbeInterval:  25 * time.Millisecond,
		JitterSeed:     7,
		HintQueueLimit: -1, // handoff disabled: every miss marks the replica dirty
		RepairInterval: -1,
	})
	ctx := context.Background()
	id := h.pickID("ae", func(set []cluster.Member) bool {
		return set[0].Name == "n1" && set[1].Name == "n2"
	})

	h.net.Partition("n2")
	h.waitMember("n2", false)
	if acks := h.register(ctx, id, pathGraphBody(id, 32)); acks != 0 {
		t.Fatalf("register acks = %d, want 0 (replica dark)", acks)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3; i++ {
		if !h.patch(ctx, id, batchBody(rng, 32, 6)) {
			t.Fatal("owner patch failed with healthy owner")
		}
	}

	h.net.Heal("n2")
	h.waitMember("n2", true)
	st := h.client.RepairNow(ctx)
	if st.Diverged == 0 || st.Repaired == 0 {
		t.Fatalf("sweep stats %+v: want at least one divergence and one repair", st)
	}
	if !h.converged(id) {
		t.Fatal("replica digest still diverged after RepairNow")
	}
	od, _ := h.digest("n1", id)
	rd, _ := h.digest("n2", id)
	if rd.Seq != od.Seq {
		t.Fatalf("repaired replica seq %d, want owner's %d (install must carry the seq floor)", rd.Seq, od.Seq)
	}
	if h.client.Metrics().Repairs() == 0 {
		t.Fatal("kplistgw_repairs_total stayed 0 across a repair")
	}
}

// TestConvergenceUnderChaosSchedule is the acceptance scenario: three
// durable nodes; a seeded schedule drops half of one member's replica
// applies; another member is partitioned for a third of the run and
// SIGKILL-restarted at heal. At quiesce every replica digest must equal
// its owner's, the cluster state must match a reference server that
// received exactly the acknowledged batches, and the repair counters
// must show the machinery actually ran.
func TestConvergenceUnderChaosSchedule(t *testing.T) {
	h := newChaosHarness(t, 3, 2, 1234, cluster.ClientOptions{
		RetryBackoff:   time.Millisecond,
		ProbeInterval:  25 * time.Millisecond,
		JitterSeed:     7,
		HintQueueLimit: 4, // small on purpose: overflow must force full-state repair
		RepairInterval: -1,
	})
	ctx := context.Background()

	events, err := faultnet.ParseSchedule(`
		# half of n2's replica applies vanish for the whole run
		@0 drop n2 0.5 path=/replica
	`)
	if err != nil {
		t.Fatal(err)
	}
	h.net.SetSchedule(events)

	// Three placements, each exercising a different failure arm:
	// A: replica behind the lossy link (drops → hints → overflow → repair)
	// B: owner is the partitioned member (writes fail, nothing acked)
	// C: replica is the partitioned member (hints queue, then gap → repair)
	idA := h.pickID("cha", func(set []cluster.Member) bool {
		return set[0].Name == "n1" && set[1].Name == "n2"
	})
	idB := h.pickID("chb", func(set []cluster.Member) bool {
		return set[0].Name == "n3"
	})
	idC := h.pickID("chc", func(set []cluster.Member) bool {
		return set[0].Name != "n3" && set[1].Name == "n3"
	})
	ids := []string{idA, idB, idC}
	for _, id := range ids {
		h.register(ctx, id, pathGraphBody(id, 48))
	}

	rng := rand.New(rand.NewSource(77))
	acked := make(map[string]int)
	for batch := 0; batch < 60; batch++ {
		switch batch {
		case 20:
			h.net.Partition("n3")
			h.waitMember("n3", false)
		case 40:
			h.killRestart("n3")
			h.net.Heal("n3")
			h.waitMember("n3", true)
		}
		id := ids[batch%3]
		if h.patch(ctx, id, batchBody(rng, 48, 8)) {
			acked[id]++
		}
	}
	if acked[idA] != 20 || acked[idC] != 20 {
		t.Fatalf("graphs with healthy owners lost acks: A=%d C=%d, want 20 each", acked[idA], acked[idC])
	}
	if acked[idB] >= 20 || acked[idB] == 0 {
		t.Fatalf("partitioned-owner graph acked %d of 20 batches, want some but not all", acked[idB])
	}

	// Quiesce: heal every fault, then sweep until every digest converges.
	h.net.Heal("*")
	for _, name := range h.names {
		h.waitMember(name, true)
	}
	allConverged := func() bool {
		for _, id := range ids {
			if !h.converged(id) {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(30 * time.Second)
	for !allConverged() {
		if time.Now().After(deadline) {
			t.Fatal("digests never converged at quiesce")
		}
		h.client.RepairNow(ctx)
		time.Sleep(20 * time.Millisecond)
	}

	// Zero acknowledged-write loss (and no phantom writes): each owner's
	// digest and truth stream match a reference that saw exactly the
	// acknowledged batches. B additionally proves the kill-restart kept
	// every batch acked before the partition.
	for _, id := range ids {
		set := h.client.Ring().ReplicaSet(id, 2)
		od, ok := h.digest(set[0].Name, id)
		if !ok {
			t.Fatalf("owner digest for %s unavailable at quiesce", id)
		}
		if rd := h.refDigest(id); rd.Hash != od.Hash || rd.Seq != od.Seq {
			t.Fatalf("graph %s: owner digest %+v != reference %+v — acked-batch mismatch", id, od, rd)
		}
		want := stream(t, h.ref.URL, id, 3, "&algo=truth&order=lex")
		if got := stream(t, h.gw.URL, id, 3, "&algo=truth&order=lex"); got != want {
			t.Fatalf("graph %s: cluster truth stream differs from reference", id)
		}
	}

	// The fabric must have actually bitten, and the healing machinery
	// must have actually run.
	stats := h.net.Stats()
	if stats.Drops < 4 {
		t.Fatalf("fabric dropped only %d replica applies — the schedule did not bite", stats.Drops)
	}
	if stats.Blackhole == 0 {
		t.Fatal("partition never blackholed a request")
	}
	if h.client.Metrics().Repairs() == 0 {
		t.Fatal("kplistgw_repairs_total stayed 0 across the chaos run")
	}

	// The gateway /metrics surface exposes the self-healing counters.
	resp, err := http.Get(h.gw.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(raw)
	for _, want := range []string{
		"kplistgw_hints_queued_total",
		"kplistgw_hints_replayed_total",
		"kplistgw_divergence_detected_total",
		"kplistgw_repairs_total",
		"kplistgw_antientropy_sweeps_total",
		"kplistgw_hint_queue_depth",
		"kplistgw_dirty_replicas 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("gateway /metrics missing %q:\n%s", want, metrics)
		}
	}
	if strings.Contains(metrics, "kplistgw_repairs_total 0\n") {
		t.Fatal("metrics text reports zero repairs despite Repairs() > 0")
	}
}
