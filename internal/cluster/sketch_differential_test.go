package cluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"kplist"
)

// fetchSketch pulls a binary sketch and returns (status, body).
func fetchSketch(t *testing.T, base, id, query string) (int, []byte) {
	t.Helper()
	resp := do(t, http.MethodGet, fmt.Sprintf("%s/v1/graphs/%s/sketch?%s", base, id, query), nil)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestDifferentialPartitionedSketchMerge is the cluster leg of the
// estimate differential suite: for every workload family, the gateway's
// register-wise merge of per-shard sketches over a 3-node partitioned
// graph must be byte-identical to the sketch a standalone node builds over
// the whole graph, and the mode=estimate answers must agree exactly.
func TestDifferentialPartitionedSketchMerge(t *testing.T) {
	h := newHarness(t, 3, 2, 53)
	for fi, family := range kplist.WorkloadFamilies() {
		family := family
		t.Run(family, func(t *testing.T) {
			body := workloadBody(family, 100, int64(300+fi))
			buf, _ := json.Marshal(body)
			resp := do(t, http.MethodPost, h.gw.URL+"/v1/graphs?partitioned=1&p=3", buf)
			var meta map[string]any
			json.NewDecoder(resp.Body).Decode(&meta)
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("partitioned register: %d: %v", resp.StatusCode, meta)
			}
			id := meta["id"].(string)
			_, refMeta := postJSON(t, h.ref.URL+"/v1/graphs", body)
			refID := refMeta["id"].(string)

			// Explicit precision+seed, and the eps/conf-resolved default:
			// both must merge to the single-node bytes.
			for _, q := range []string{"p=3&precision=12&seed=7", "p=3&seed=7&eps=0.05&conf=0.95"} {
				st, got := fetchSketch(t, h.gw.URL, id, q)
				if st != http.StatusOK {
					t.Fatalf("gateway sketch %q: status %d: %s", q, st, got)
				}
				st, want := fetchSketch(t, h.ref.URL, refID, q)
				if st != http.StatusOK {
					t.Fatalf("ref sketch %q: status %d: %s", q, st, want)
				}
				if string(got) != string(want) {
					t.Fatalf("%s %q: gateway-merged sketch (%d bytes) differs from single node (%d bytes)",
						family, q, len(got), len(want))
				}
			}

			// mode=estimate answers must agree field for field (the ref is
			// forced onto its maintained sketch — the same deterministic
			// (p, precision, seed) identity the gateway scatters).
			qb, _ := json.Marshal(map[string]any{"p": 3, "seed": 7})
			gwResp := do(t, http.MethodPost,
				h.gw.URL+"/v1/graphs/"+id+"/query?mode=estimate&eps=0.05&conf=0.95", qb)
			refResp := do(t, http.MethodPost,
				h.ref.URL+"/v1/graphs/"+refID+"/query?mode=estimate&method=hll&eps=0.05&conf=0.95", qb)
			var got, want map[string]any
			json.NewDecoder(gwResp.Body).Decode(&got)
			json.NewDecoder(refResp.Body).Decode(&want)
			gwResp.Body.Close()
			refResp.Body.Close()
			if gwResp.StatusCode != http.StatusOK || refResp.StatusCode != http.StatusOK {
				t.Fatalf("estimate: gateway %d %v, ref %d %v", gwResp.StatusCode, got, refResp.StatusCode, want)
			}
			for _, field := range []string{"estimate", "ci_lo", "ci_hi", "method", "exact", "precision"} {
				if got[field] != want[field] {
					t.Errorf("estimate field %q: gateway %v, single node %v", field, got[field], want[field])
				}
			}

			// Wrong p and non-sketch methods are caller mistakes.
			if st, _ := fetchSketch(t, h.gw.URL, id, "p=4&precision=12"); st != http.StatusBadRequest {
				t.Errorf("wrong-p sketch: status %d, want 400", st)
			}
			resp = do(t, http.MethodPost, h.gw.URL+"/v1/graphs/"+id+"/query?mode=estimate&method=sample", qb)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("partitioned method=sample: status %d, want 400", resp.StatusCode)
			}
		})
	}
}

// TestDifferentialPartitionedSketchFailover kills one node of a 3-shard
// partitioned graph (R=2) and demands the merged sketch stay
// byte-identical through read failover.
func TestDifferentialPartitionedSketchFailover(t *testing.T) {
	h := newHarness(t, 3, 2, 59)
	body := workloadBody("stochastic-block", 120, 61)
	buf, _ := json.Marshal(body)
	resp := do(t, http.MethodPost, h.gw.URL+"/v1/graphs?partitioned=1&p=3", buf)
	var meta map[string]any
	json.NewDecoder(resp.Body).Decode(&meta)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("partitioned register: %d: %v", resp.StatusCode, meta)
	}
	id := meta["id"].(string)
	_, refMeta := postJSON(t, h.ref.URL+"/v1/graphs", body)
	refID := refMeta["id"].(string)

	const q = "p=3&precision=12&seed=7"
	_, want := fetchSketch(t, h.ref.URL, refID, q)
	if st, got := fetchSketch(t, h.gw.URL, id, q); st != http.StatusOK || string(got) != string(want) {
		t.Fatalf("merged sketch differs before failover (status %d)", st)
	}

	h.nodes[h.names[0]].Close()
	st, got := fetchSketch(t, h.gw.URL, id, q)
	if st != http.StatusOK {
		t.Fatalf("post-failover sketch: status %d: %s", st, got)
	}
	if string(got) != string(want) {
		t.Fatal("merged sketch differs after killing one node")
	}
}
