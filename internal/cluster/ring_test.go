package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testConfig(n int) Config {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{Name: fmt.Sprintf("n%d", i+1), Addr: fmt.Sprintf("host%d:9000", i+1)}
	}
	return Config{Members: ms}
}

func TestRingDeterminism(t *testing.T) {
	cfg := testConfig(5)
	cfg.Replication = 3
	cfg.Seed = 42
	a, err := NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("graph-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q differs between identically configured rings", key)
		}
		ra, rb := a.ReplicaSet(key, 3), b.ReplicaSet(key, 3)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("replica set of %q differs at %d: %v vs %v", key, j, ra, rb)
			}
		}
	}
}

func TestRingPlacementIgnoresAddresses(t *testing.T) {
	// Placement must be a function of member names only: nodes and the
	// gateway reach members through different addresses but must agree.
	cfg := testConfig(4)
	a, _ := NewRing(cfg)
	cfg2 := testConfig(4)
	for i := range cfg2.Members {
		cfg2.Members[i].Addr = fmt.Sprintf("http://elsewhere-%d:1234", i)
	}
	b, _ := NewRing(cfg2)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		if a.Owner(key).Name != b.Owner(key).Name {
			t.Fatalf("owner of %q depends on member addresses", key)
		}
	}
}

func TestRingSeedRedeals(t *testing.T) {
	cfg := testConfig(4)
	a, _ := NewRing(cfg)
	cfg.Seed = 99
	b, _ := NewRing(cfg)
	moved := 0
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("k%d", i)
		if a.Owner(key).Name != b.Owner(key).Name {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the ring seed moved no keys")
	}
}

func TestReplicaSetDistinctAndClamped(t *testing.T) {
	r, _ := NewRing(testConfig(3))
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		set := r.ReplicaSet(key, 5) // clamps to 3 members
		if len(set) != 3 {
			t.Fatalf("replica set size %d, want 3", len(set))
		}
		seen := map[string]bool{}
		for _, m := range set {
			if seen[m.Name] {
				t.Fatalf("replica set for %q repeats member %s", key, m.Name)
			}
			seen[m.Name] = true
		}
		if set[0] != r.Owner(key) {
			t.Fatalf("replica set head %s is not the owner %s", set[0].Name, r.Owner(key).Name)
		}
	}
	if got := r.ReplicaSet("x", 0); len(got) != 1 {
		t.Fatalf("n=0 should clamp to 1, got %d members", len(got))
	}
}

func TestSuccessorSet(t *testing.T) {
	r, _ := NewRing(testConfig(4))
	set := r.SuccessorSet("n2", 3)
	if len(set) != 3 || set[0].Name != "n2" {
		t.Fatalf("successor set %v should start at n2 with 3 members", set)
	}
	seen := map[string]bool{}
	for _, m := range set {
		if seen[m.Name] {
			t.Fatalf("successor set repeats %s", m.Name)
		}
		seen[m.Name] = true
	}
	if r.SuccessorSet("nope", 2) != nil {
		t.Fatal("unknown member should return nil")
	}
}

func TestRingSpreadBalance(t *testing.T) {
	r, _ := NewRing(testConfig(4))
	keys := make([]string, 4000)
	for i := range keys {
		keys[i] = fmt.Sprintf("graph-%d", i)
	}
	spread := r.Spread(keys)
	for name, n := range spread {
		// With 64 vnodes/member the split should be within a loose 3x
		// band of perfect balance; this guards against hashing bugs, not
		// statistical variance.
		if n < len(keys)/12 || n > len(keys)/4*3 {
			t.Fatalf("member %s owns %d of %d keys — ring badly unbalanced: %v", name, n, len(keys), spread)
		}
	}
}

func TestIsOwner(t *testing.T) {
	r, _ := NewRing(testConfig(3))
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		owners := 0
		for _, m := range r.Members() {
			if r.IsOwner(m.Name, key) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("key %q has %d owners", key, owners)
		}
	}
}

func TestParseConfigInline(t *testing.T) {
	cfg, err := ParseConfig("a=host1:1000, b=host2:2000,host3:3000")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Members) != 3 {
		t.Fatalf("got %d members", len(cfg.Members))
	}
	if cfg.Members[0].Name != "a" || cfg.Members[1].Name != "b" || cfg.Members[2].Name != "n3" {
		t.Fatalf("bad names: %+v", cfg.Members)
	}
	cfg = cfg.WithDefaults()
	if cfg.Members[2].Addr != "http://host3:3000" {
		t.Fatalf("addr not normalized: %q", cfg.Members[2].Addr)
	}
	if cfg.Replication != 2 || cfg.VNodes != 64 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestParseConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peers.json")
	body := `{"members":[{"name":"x","addr":"h1:1"},{"name":"y","addr":"http://h2:2"}],"replication":1,"vnodes":16,"seed":7}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"@" + path, path} {
		cfg, err := ParseConfig(spec)
		if err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		if len(cfg.Members) != 2 || cfg.Replication != 1 || cfg.VNodes != 16 || cfg.Seed != 7 {
			t.Fatalf("spec %q: parsed %+v", spec, cfg)
		}
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"@/definitely/not/here.json",
		"bad name=addr", // space in name
	} {
		if _, err := ParseConfig(spec); err == nil {
			t.Fatalf("spec %q should fail", spec)
		}
	}
	if err := (Config{Members: []Member{{Name: "a", Addr: "x"}, {Name: "a", Addr: "y"}}}).Validate(); err == nil {
		t.Fatal("duplicate names should fail validation")
	}
	if err := (Config{Members: []Member{{Name: "a", Addr: " "}}}).Validate(); err == nil {
		t.Fatal("empty address should fail validation")
	}
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("empty membership should fail validation")
	}
}

func TestSignatures(t *testing.T) {
	sigs := signatures(3, 2)
	// C(3+2-1, 2) = 6 sorted multisets.
	if len(sigs) != 6 {
		t.Fatalf("got %d signatures, want 6: %v", len(sigs), sigs)
	}
	seen := map[string]bool{}
	for _, s := range sigs {
		k := sigKey(s)
		if seen[k] {
			t.Fatalf("duplicate signature %s", k)
		}
		seen[k] = true
		if !strings.Contains("0.0 0.1 0.2 1.1 1.2 2.2", k) {
			t.Fatalf("unexpected signature %s", k)
		}
	}
}

func TestParseCliqueLine(t *testing.T) {
	got, err := parseCliqueLine([]byte("[3,1,42]"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 1 || got[2] != 42 {
		t.Fatalf("parsed %v", got)
	}
	for _, bad := range []string{"", "3,1", "[a,b]", "[1,]"} {
		if _, err := parseCliqueLine([]byte(bad), nil); err == nil {
			t.Fatalf("line %q should fail", bad)
		}
	}
	if !lessVerts([]int32{1, 2, 3}, []int32{1, 2, 4}) || lessVerts([]int32{2}, []int32{1, 9}) {
		t.Fatal("lessVerts is not lexicographic")
	}
	if !lessVerts([]int32{1, 2}, []int32{1, 2, 0}) {
		t.Fatal("lessVerts should order prefixes first")
	}
}
