package cluster

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// memberHealth is one member's liveness state as observed by a Client:
// flipped down on transport failures (request path or probe), flipped
// back up only by a successful health probe or a successful forwarded
// request. The read path consults it to order failover candidates — a
// down member is tried last, never skipped entirely, so a stale "down"
// verdict costs latency, not availability.
type memberHealth struct {
	up           atomic.Bool
	consecFails  atomic.Int64
	lastProbeNs  atomic.Int64
	transitionNs atomic.Int64
}

func newMemberHealth() *memberHealth {
	h := &memberHealth{}
	h.up.Store(true) // optimistic: everyone starts up
	return h
}

// markUp records a healthy observation and reports whether this was a
// down→up transition — the Client uses the flip to kick hinted-handoff
// replay exactly once per recovery.
func (h *memberHealth) markUp() bool {
	h.consecFails.Store(0)
	if !h.up.Swap(true) {
		h.transitionNs.Store(time.Now().UnixNano())
		return true
	}
	return false
}

func (h *memberHealth) markDown() {
	h.consecFails.Add(1)
	if h.up.Swap(false) {
		h.transitionNs.Store(time.Now().UnixNano())
	}
}

// prober polls every member's /healthz on a fixed interval with
// per-member exponential backoff after consecutive failures, so a dead
// member costs one cheap connection attempt per backoff window instead
// of one per interval.
type prober struct {
	c        *Client
	interval time.Duration
	cancel   context.CancelFunc
	done     sync.WaitGroup
}

// start launches the probe loop; stop with prober.stop. Each pass sleeps
// a jittered interval drawn from the client's seeded RNG, so a fleet of
// gateways probing the same members drifts apart instead of hammering
// them in lockstep.
func (p *prober) start() {
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	p.done.Add(1)
	go func() {
		defer p.done.Done()
		p.probeAll(ctx) // immediate first pass: don't serve blind for a tick
		for {
			t := time.NewTimer(p.c.jittered(p.interval))
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
				p.probeAll(ctx)
			}
		}
	}()
}

func (p *prober) stop() {
	if p.cancel != nil {
		p.cancel()
		p.done.Wait()
	}
}

// probeBackoff is the wait a down member must sit out between probes:
// 2^fails · interval, capped at 8 intervals. A dead member then costs
// one cheap connection attempt per backoff window instead of one per
// interval.
func probeBackoff(interval time.Duration, fails int64) time.Duration {
	backoff := interval << min64(fails, 3)
	if maxBackoff := 8 * interval; backoff > maxBackoff {
		backoff = maxBackoff
	}
	return backoff
}

// probeAll checks every member once, skipping down members still inside
// their backoff window.
func (p *prober) probeAll(ctx context.Context) {
	now := time.Now().UnixNano()
	var wg sync.WaitGroup
	for _, m := range p.c.ring.Members() {
		h := p.c.healthOf(m.Name)
		if !h.up.Load() {
			if now-h.lastProbeNs.Load() < int64(probeBackoff(p.interval, h.consecFails.Load())) {
				continue
			}
		}
		wg.Add(1)
		go func(m Member) {
			defer wg.Done()
			p.probeOne(ctx, m)
		}(m)
	}
	wg.Wait()
}

// probeOne hits m's /healthz with a short timeout and updates its state.
func (p *prober) probeOne(ctx context.Context, m Member) {
	h := p.c.healthOf(m.Name)
	h.lastProbeNs.Store(time.Now().UnixNano())
	pctx, cancel := context.WithTimeout(ctx, p.interval)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, m.Addr+"/healthz", nil)
	if err != nil {
		h.markDown()
		return
	}
	resp, err := p.c.hc.Do(req)
	if err != nil {
		h.markDown()
		return
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		p.c.noteUp(m.Name)
	} else {
		h.markDown()
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
