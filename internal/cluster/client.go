package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ForwardHeader marks intra-cluster traffic. The gateway (and any
// embedded Client) sets it on every forwarded request; kplistd nodes in
// cluster mode refuse unmarked /v1 requests for graphs they do not own
// (421 + owner hint), so a client talking to the wrong node is told where
// to go instead of silently reading a stale replica.
const ForwardHeader = "X-Kplist-Cluster"

// ErrNoQuorum reports a write whose owner could not be reached.
var ErrNoQuorum = errors.New("cluster: graph owner unreachable")

// ClientOptions tune a Client. The zero value is usable.
type ClientOptions struct {
	// HTTPClient overrides the transport (tests inject httptest clients).
	HTTPClient *http.Client
	// RetryBackoff is the pause before each failover attempt beyond the
	// first (default 25ms, scaled linearly by attempt number and
	// jittered).
	RetryBackoff time.Duration
	// ProbeInterval is the health-probe period started by Start
	// (default 2s, jittered per pass).
	ProbeInterval time.Duration
	// JitterSeed seeds the deterministic jitter applied to probe
	// intervals and failover backoff (default 1). Seeding keeps test runs
	// reproducible; distinct seeds keep a fleet of gateways from retrying
	// in lockstep after a member recovers.
	JitterSeed int64
	// HintQueueLimit bounds each member's hinted-handoff queue (default
	// 128 batches; negative disables handoff — every missed fan-out then
	// marks the replica dirty for full-state repair).
	HintQueueLimit int
	// RepairInterval is the anti-entropy sweep period started by Start
	// (default 5s; negative disables the background loop — RepairNow
	// still works on demand).
	RepairInterval time.Duration
}

// Client is the embeddable routing layer: it knows the ring, tracks
// member health, forwards requests to the owning node with read failover
// onto replicas, fans mutation batches out to replicas, and runs
// scatter–gather listing for partitioned graphs. The kplistgw daemon is a
// thin HTTP front over exactly this type.
type Client struct {
	cfg     Config
	ring    *Ring
	hc      *http.Client
	met     *Metrics
	backoff time.Duration
	pr      *prober

	health map[string]*memberHealth // fixed key set; values are atomic

	pgMu    sync.RWMutex
	pgraphs map[string]*pgraph

	patchLocks sync.Map // graph ID → *sync.Mutex (fan-out ordering)

	// hints is the hinted-handoff state (per-member queues + dirty marks);
	// the sweeper fields drive the background anti-entropy loop.
	hints          *hintSet
	repairInterval time.Duration
	repairCancel   context.CancelFunc
	repairDone     sync.WaitGroup
	sweepMu        sync.Mutex // one sweep at a time

	jmu  sync.Mutex
	jrng *mrand.Rand
}

// NewClient builds a Client over the membership. Call Start to begin
// health probing (optional — without it, health state is driven purely
// by request outcomes) and Close when done.
func NewClient(cfg Config, opts ClientOptions) (*Client, error) {
	ring, err := NewRing(cfg)
	if err != nil {
		return nil, err
	}
	c := &Client{
		cfg:     ring.Config(),
		ring:    ring,
		hc:      opts.HTTPClient,
		met:     NewMetrics(),
		backoff: opts.RetryBackoff,
		health:  make(map[string]*memberHealth),
		pgraphs: make(map[string]*pgraph),
	}
	if c.hc == nil {
		c.hc = &http.Client{}
	}
	if c.backoff <= 0 {
		c.backoff = 25 * time.Millisecond
	}
	for _, m := range c.cfg.Members {
		c.health[m.Name] = newMemberHealth()
	}
	interval := opts.ProbeInterval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	c.pr = &prober{c: c, interval: interval}
	seed := opts.JitterSeed
	if seed == 0 {
		seed = 1
	}
	c.jrng = mrand.New(mrand.NewSource(seed))
	hintLimit := opts.HintQueueLimit
	switch {
	case hintLimit == 0:
		hintLimit = 128
	case hintLimit < 0:
		hintLimit = 0 // handoff disabled: every enqueue overflows to dirty
	}
	c.hints = newHintSet(hintLimit)
	c.repairInterval = opts.RepairInterval
	if c.repairInterval == 0 {
		c.repairInterval = 5 * time.Second
	}
	return c, nil
}

// Start launches the background health prober and, unless disabled, the
// anti-entropy repair loop.
func (c *Client) Start() {
	c.pr.start()
	c.startRepairLoop()
}

// Close stops the prober and the repair loop. The Client performs no
// further I/O of its own.
func (c *Client) Close() {
	c.pr.stop()
	if c.repairCancel != nil {
		c.repairCancel()
		c.repairDone.Wait()
	}
}

// jittered returns a duration in [d/2, 3d/2) drawn from the client's
// seeded RNG: deterministic for a fixed seed, desynchronized across
// differently-seeded gateways.
func (c *Client) jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	c.jmu.Lock()
	f := 0.5 + c.jrng.Float64()
	c.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

// Ring exposes placement (tests and the gateway's ring-state gauges).
func (c *Client) Ring() *Ring { return c.ring }

// Metrics exposes the gateway-side observability store.
func (c *Client) Metrics() *Metrics { return c.met }

func (c *Client) healthOf(name string) *memberHealth { return c.health[name] }

// MemberUp reports the current health verdict for a member name.
func (c *Client) MemberUp(name string) bool {
	h, ok := c.health[name]
	return ok && h.up.Load()
}

// NewGraphID mints a cluster-level graph ID: placement hashes it, every
// node registers under it, and it can never collide with a node's own
// auto-assigned "g<n>" namespace.
func NewGraphID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is not a recoverable condition
	}
	return "c" + hex.EncodeToString(b[:])
}

// forward sends one request to one member, recording metrics and health.
// A transport error or 5xx marks the member down; any response marks it
// up (a 4xx is the member answering, not dying). Optional extra headers
// (name, value pairs) ride along — the replication path tags batches
// with their sequence number this way.
func (c *Client) forward(ctx context.Context, m Member, method, pathAndQuery string, body []byte, extra ...[2]string) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, m.Addr+pathAndQuery, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set(ForwardHeader, "1")
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for _, kv := range extra {
		req.Header.Set(kv[0], kv[1])
	}
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		c.met.record(m.Name, 0, time.Since(start))
		c.healthOf(m.Name).markDown()
		return nil, err
	}
	c.met.record(m.Name, resp.StatusCode, time.Since(start))
	if resp.StatusCode >= http.StatusInternalServerError {
		c.healthOf(m.Name).markDown()
	} else {
		c.noteUp(m.Name)
	}
	return resp, nil
}

// noteUp marks a member healthy and, on a down→up flip, kicks a replay
// of its hinted-handoff queue — the moment a member returns is exactly
// when its queued batches should drain.
func (c *Client) noteUp(name string) {
	if c.healthOf(name).markUp() {
		c.kickReplay(name)
	}
}

// orderByHealth stably moves down-marked members behind up-marked ones:
// failover prefers live replicas but never abandons a member outright —
// if everyone is marked down, the original order is the plan.
func (c *Client) orderByHealth(ms []Member) []Member {
	out := make([]Member, 0, len(ms))
	for _, m := range ms {
		if c.MemberUp(m.Name) {
			out = append(out, m)
		}
	}
	for _, m := range ms {
		if !c.MemberUp(m.Name) {
			out = append(out, m)
		}
	}
	return out
}

// Candidates returns the graph's placement (owner first) in failover
// order: the ring's replica set, healthy members first.
func (c *Client) Candidates(id string) []Member {
	return c.orderByHealth(c.ring.ReplicaSet(id, c.cfg.Replication))
}

// retryable reports whether a response status should push a read onto
// the next candidate: server-side failures always; 429 because the
// member shed the request under load and a replica may have headroom;
// 404 only because a lagging replica may not have seen the registration
// yet (the last 404 is returned if every candidate agrees).
func retryable(status int) bool {
	return status >= http.StatusInternalServerError ||
		status == http.StatusNotFound ||
		status == http.StatusTooManyRequests
}

// maxRetryAfterWait caps how long the client honors a Retry-After hint:
// replicas exist precisely so a read need not wait out one member's
// queue, so the hint bounds politeness, not availability.
const maxRetryAfterWait = 2 * time.Second

// retryAfterHint extracts a shed member's Retry-After (whole seconds) on
// 429/503, capped at maxRetryAfterWait; 0 means no hint.
func retryAfterHint(resp *http.Response) time.Duration {
	if resp == nil ||
		(resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable) {
		return 0
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs <= 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfterWait {
		d = maxRetryAfterWait
	}
	return d
}

// doRead forwards a read to the graph's owner, failing over to replicas
// (with backoff) on transport errors, 5xx, or 404. It returns the first
// acceptable response — caller closes its body — plus the member that
// answered. When every candidate fails it returns the last response (if
// any) or the last error.
func (c *Client) doRead(ctx context.Context, id, method, pathAndQuery string, body []byte) (*http.Response, Member, error) {
	set := c.ring.ReplicaSet(id, c.cfg.Replication)
	return c.readFrom(ctx, set, set[0].Name, method, pathAndQuery, body)
}

// readFrom is doRead over an explicit candidate set (owner-name first in
// preference; healthy candidates are tried before down-marked ones).
// Reads answered by a member other than `preferred` count as failovers.
// Backoff between candidates is jittered (so a fleet of gateways does
// not retry in lockstep) and stretched to honor a shed member's
// Retry-After hint. A first 404 gets one short same-member re-probe
// before failing over: a lagging replica often lands the registration
// within a backoff, and the retry is counted separately from real
// not-found.
func (c *Client) readFrom(ctx context.Context, set []Member, preferred, method, pathAndQuery string, body []byte) (*http.Response, Member, error) {
	cands := c.orderByHealth(set)
	var lastResp *http.Response
	var lastMember Member
	var lastErr error
	var hinted time.Duration // Retry-After carried from the previous attempt
	reprobed := false
	for i, m := range cands {
		if i > 0 {
			c.met.addRetry()
			pause := c.jittered(time.Duration(i) * c.backoff)
			if hinted > pause {
				pause = hinted
			}
			select {
			case <-ctx.Done():
				if lastResp != nil {
					return lastResp, lastMember, nil
				}
				return nil, Member{}, ctx.Err()
			case <-time.After(pause):
			}
		}
		hinted = 0
		resp, err := c.forward(ctx, m, method, pathAndQuery, body)
		if err == nil && resp.StatusCode == http.StatusNotFound && !reprobed && method == http.MethodGet {
			// Lagging-replica window: re-ask the same member once after a
			// short pause instead of failing the read over immediately.
			reprobed = true
			c.met.addNotFoundReprobe()
			drain(resp)
			select {
			case <-ctx.Done():
				if lastResp != nil {
					return lastResp, lastMember, nil
				}
				return nil, Member{}, ctx.Err()
			case <-time.After(c.jittered(c.backoff)):
			}
			resp, err = c.forward(ctx, m, method, pathAndQuery, body)
			if err == nil && resp.StatusCode != http.StatusNotFound {
				c.met.addNotFoundRecovered()
			}
		}
		if err != nil {
			lastErr = err
			continue
		}
		if retryable(resp.StatusCode) && i+1 < len(cands) {
			hinted = retryAfterHint(resp)
			if lastResp != nil {
				lastResp.Body.Close()
			}
			lastResp, lastMember = resp, m
			continue
		}
		if lastResp != nil {
			lastResp.Body.Close()
		}
		if m.Name != preferred {
			c.met.addFailoverRead()
		}
		return resp, m, nil
	}
	if lastResp != nil {
		if lastMember.Name != preferred {
			c.met.addFailoverRead()
		}
		return lastResp, lastMember, nil
	}
	c.met.addMisdirected()
	return nil, Member{}, fmt.Errorf("cluster: no member of %d answered %s %s: %w",
		len(cands), method, pathAndQuery, lastErr)
}

// drain reads and closes a fan-out response body.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// RegisterRaw registers body (which must already carry the cluster graph
// ID in its "id" field) on the graph's owner — which must succeed — then
// best-effort on its replicas. It returns the owner's response (caller
// closes) and the number of replicas that acknowledged.
func (c *Client) RegisterRaw(ctx context.Context, id string, body []byte) (*http.Response, int, error) {
	set := c.ring.ReplicaSet(id, c.cfg.Replication)
	resp, err := c.forward(ctx, set[0], http.MethodPost, "/v1/graphs", body)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %s: %v", ErrNoQuorum, set[0].Name, err)
	}
	if resp.StatusCode/100 != 2 {
		return resp, 0, nil // caller relays the owner's refusal verbatim
	}
	acks := 0
	for _, m := range set[1:] {
		rr, err := c.forward(ctx, m, http.MethodPost, "/v1/graphs", body)
		if err != nil || rr.StatusCode/100 != 2 {
			c.met.addReplicaFailed()
			// A replica that missed the registration has nothing to replay
			// batches onto: only a full-state transfer can seed it.
			c.markDirtyReplica(m.Name, id)
			if rr != nil {
				drain(rr)
			}
			continue
		}
		drain(rr)
		c.met.addReplicaAck()
		acks++
	}
	return resp, acks, nil
}

// PatchRaw applies one mutation batch: acknowledged by the owner (which
// appends + fsyncs its WAL before answering), then fanned out
// synchronously but best-effort to every replica through the
// replica-apply endpoint, tagged with the owner-assigned sequence
// number. A replica the fan-out cannot reach gets the batch queued in
// its hinted-handoff queue instead (replayed when the prober flips it
// back up); queue overflow and outright refusals mark the replica dirty
// for the anti-entropy sweeper's full-state repair. Either way the batch
// is committed — the owner acknowledged it. Per-graph fan-out is
// serialized so replicas apply batches in owner order. An owner that
// sheds the PATCH with 429/503 and a Retry-After hint is retried once
// after the hinted wait before the write fails.
func (c *Client) PatchRaw(ctx context.Context, id string, body []byte) (*http.Response, int, error) {
	muRaw, _ := c.patchLocks.LoadOrStore(id, &sync.Mutex{})
	mu := muRaw.(*sync.Mutex)
	mu.Lock()
	defer mu.Unlock()

	set := c.ring.ReplicaSet(id, c.cfg.Replication)
	resp, err := c.forward(ctx, set[0], http.MethodPatch, "/v1/graphs/"+id+"/edges", body)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %s: %v", ErrNoQuorum, set[0].Name, err)
	}
	if d := retryAfterHint(resp); d > 0 {
		// The owner shed under load and told us when to come back: writes
		// have no replica to fail over to, so waiting is the only move.
		drain(resp)
		select {
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		case <-time.After(d):
		}
		c.met.addRetry()
		resp, err = c.forward(ctx, set[0], http.MethodPatch, "/v1/graphs/"+id+"/edges", body)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: %s: %v", ErrNoQuorum, set[0].Name, err)
		}
	}
	if resp.StatusCode/100 != 2 {
		return resp, 0, nil
	}
	seq, _ := strconv.ParseUint(resp.Header.Get(SeqHeader), 10, 64)
	acks := 0
	for _, m := range set[1:] {
		if c.replicate(ctx, m, id, seq, body) {
			acks++
		}
	}
	return resp, acks, nil
}

// replicate delivers one sequence-tagged batch to one replica, or hands
// it to the member's hint queue when the member is down or the graph
// already has queued hints there (a direct send would overtake them).
// Returns true when the replica acknowledged synchronously.
func (c *Client) replicate(ctx context.Context, m Member, id string, seq uint64, body []byte) bool {
	if !c.MemberUp(m.Name) || c.hints.pendingGraph(m.Name, id) > 0 {
		c.met.addReplicaFailed()
		c.enqueueHint(m.Name, id, seq, body)
		return false
	}
	rr, err := c.forward(ctx, m, http.MethodPatch, "/v1/graphs/"+id+"/replica", body,
		[2]string{SeqHeader, strconv.FormatUint(seq, 10)})
	switch {
	case err == nil && rr.StatusCode/100 == 2:
		drain(rr)
		c.met.addReplicaAck()
		return true
	case err != nil || rr.StatusCode >= http.StatusInternalServerError ||
		rr.StatusCode == http.StatusTooManyRequests:
		// Transient: the member (or its admission queue) is unhealthy; the
		// batch waits in the hint queue for the next up-flip.
		if rr != nil {
			drain(rr)
		}
		c.met.addReplicaFailed()
		c.enqueueHint(m.Name, id, seq, body)
	default:
		// The replica answered and refused (seq gap, missing graph): replay
		// cannot fix that — only a full-state transfer can.
		drain(rr)
		c.met.addReplicaFailed()
		c.markDirtyReplica(m.Name, id)
	}
	return false
}

// enqueueHint queues one batch for a downed replica; on overflow the
// batch is dropped and the replica marked dirty (the queued prefix stays
// — it is still a valid replay).
func (c *Client) enqueueHint(member, id string, seq uint64, body []byte) {
	if c.hints.enqueue(member, hint{graph: id, seq: seq, body: body}) {
		c.met.addHintQueued()
		return
	}
	c.met.addHintDropped()
	c.markDirtyReplica(member, id)
}

// markDirtyReplica flags (member, id) for full-state repair, counting
// first-time detections as divergence.
func (c *Client) markDirtyReplica(member, id string) {
	if c.hints.markDirty(member, id) {
		c.met.addDivergence()
	}
}

// kickReplay starts an asynchronous drain of member's hint queue unless
// one is already running (or there is nothing to drain).
func (c *Client) kickReplay(name string) {
	if c.hints.depth(name) == 0 {
		return
	}
	go c.replayHints(name)
}

// replayHints drains member's hint queue in FIFO order, sending each
// batch with its original sequence number (replicas acknowledge
// duplicates idempotently, so a replay racing a probe-triggered replay
// of the same queue cannot double-apply — and beginReplay serializes
// them anyway). Each hint is sent under its graph's fan-out lock so
// replays interleave correctly with live PATCH traffic. A transient
// failure stops the drain — the member flipped back down and the next
// up-flip resumes; a refusal (4xx) abandons the hint and marks the
// replica dirty.
func (c *Client) replayHints(name string) {
	if !c.hints.beginReplay(name) {
		return
	}
	defer c.hints.endReplay(name)
	m, ok := c.cfg.MemberNamed(name)
	if !ok {
		return
	}
	for {
		h, ok := c.hints.front(name)
		if !ok {
			return
		}
		muRaw, _ := c.patchLocks.LoadOrStore(h.graph, &sync.Mutex{})
		mu := muRaw.(*sync.Mutex)
		mu.Lock()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		rr, err := c.forward(ctx, m, http.MethodPatch, "/v1/graphs/"+h.graph+"/replica", h.body,
			[2]string{SeqHeader, strconv.FormatUint(h.seq, 10)})
		cancel()
		switch {
		case err == nil && rr.StatusCode/100 == 2:
			drain(rr)
			c.hints.pop(name)
			c.met.addHintReplayed()
		case err == nil && rr.StatusCode < http.StatusInternalServerError &&
			rr.StatusCode != http.StatusTooManyRequests:
			drain(rr)
			c.hints.pop(name)
			c.markDirtyReplica(name, h.graph)
		default:
			if rr != nil {
				drain(rr)
			}
			mu.Unlock()
			return
		}
		mu.Unlock()
	}
}

// DeleteRaw removes the graph from every member of its replica set. It
// succeeds when at least one member confirmed the delete and no reachable
// member failed it for a reason other than "already gone".
func (c *Client) DeleteRaw(ctx context.Context, id string) (int, error) {
	// Deleted graphs have nothing left to heal: drop their queued hints
	// and dirty marks everywhere before the member fan-out.
	c.hints.purgeAll(id)
	deleted := 0
	var lastErr error
	for _, m := range c.ring.ReplicaSet(id, c.cfg.Replication) {
		resp, err := c.forward(ctx, m, http.MethodDelete, "/v1/graphs/"+id, nil)
		if err != nil {
			lastErr = fmt.Errorf("%s: %w", m.Name, err)
			continue
		}
		if resp.StatusCode/100 == 2 || resp.StatusCode == http.StatusNotFound {
			if resp.StatusCode/100 == 2 {
				deleted++
			}
			drain(resp)
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		lastErr = fmt.Errorf("%s: status %d: %s", m.Name, resp.StatusCode, body)
	}
	if deleted == 0 && lastErr != nil {
		return 0, lastErr
	}
	return deleted, lastErr
}

// --- typed convenience surface (the embeddable in-process client) ---

// GraphMeta is the wire-level description the cluster surfaces for a
// registered graph: the node-side info plus placement.
type GraphMeta struct {
	ID          string   `json:"id"`
	Name        string   `json:"name,omitempty"`
	N           int      `json:"n"`
	M           int      `json:"m"`
	Family      string   `json:"family,omitempty"`
	Planted     int      `json:"planted,omitempty"`
	Owner       string   `json:"owner,omitempty"`
	Replicas    []string `json:"replicas,omitempty"`
	ReplicaAcks int      `json:"replicaAcks,omitempty"`
	Partitioned bool     `json:"partitioned,omitempty"`
	Shards      int      `json:"shards,omitempty"`
	P           int      `json:"p,omitempty"`
	Parts       int      `json:"parts,omitempty"`
}

func decodeMeta(resp *http.Response) (GraphMeta, error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return GraphMeta{}, err
	}
	if resp.StatusCode/100 != 2 {
		return GraphMeta{}, fmt.Errorf("cluster: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var meta GraphMeta
	if err := json.Unmarshal(body, &meta); err != nil {
		return GraphMeta{}, err
	}
	return meta, nil
}

// Register registers a graph cluster-wide from a kplistd register body
// (edges or workload spec) and returns its metadata with placement.
func (c *Client) Register(ctx context.Context, body map[string]any) (GraphMeta, error) {
	id := NewGraphID()
	set := c.ring.ReplicaSet(id, c.cfg.Replication)
	wire := make(map[string]any, len(body)+1)
	for k, v := range body {
		wire[k] = v
	}
	wire["id"] = id
	buf, err := json.Marshal(wire)
	if err != nil {
		return GraphMeta{}, err
	}
	resp, acks, err := c.RegisterRaw(ctx, id, buf)
	if err != nil {
		return GraphMeta{}, err
	}
	meta, err := decodeMeta(resp)
	if err != nil {
		return GraphMeta{}, err
	}
	meta.Owner = set[0].Name
	for _, m := range set[1:] {
		meta.Replicas = append(meta.Replicas, m.Name)
	}
	meta.ReplicaAcks = acks
	return meta, nil
}

// Patch applies a mutation batch (kplistd PATCH /edges wire form) through
// the owner with replica fan-out, returning the owner's decoded response.
func (c *Client) Patch(ctx context.Context, id string, body map[string]any) (map[string]any, int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, 0, err
	}
	resp, acks, err := c.PatchRaw(ctx, id, buf)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, acks, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, acks, fmt.Errorf("cluster: patch %s: status %d: %s", id, resp.StatusCode, bytes.TrimSpace(raw))
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, acks, err
	}
	return out, acks, nil
}

// Delete removes a graph cluster-wide (partitioned graphs drop all their
// shard graphs).
func (c *Client) Delete(ctx context.Context, id string) error {
	if pg := c.partitionedGraph(id); pg != nil {
		return c.deletePartitioned(ctx, pg)
	}
	_, err := c.DeleteRaw(ctx, id)
	return err
}

// StreamCliques streams the graph's NDJSON clique listing into w:
// owner-routed (with replica failover) for plain graphs, scatter–gather
// merged for partitioned ones. The bytes written are identical to a
// single-node kplistd serving the same graph with the same query.
func (c *Client) StreamCliques(ctx context.Context, id string, p int, algo string, w io.Writer) error {
	if pg := c.partitionedGraph(id); pg != nil {
		_, err := c.scatterCliques(ctx, pg, p, algo, w)
		return err
	}
	q := fmt.Sprintf("/v1/graphs/%s/cliques?p=%d&stream=1", id, p)
	if algo != "" {
		q += "&algo=" + algo
	}
	resp, _, err := c.doRead(ctx, id, http.MethodGet, q, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("cluster: cliques %s: status %d: %s", id, resp.StatusCode, bytes.TrimSpace(body))
	}
	_, err = io.Copy(w, resp.Body)
	return err
}
