// Package routing implements the intra-cluster routing black box of
// Theorem 2.4 (Ghaffari–Kuhn–Su / Ghaffari–Li almost-mixing-time routing)
// and the Lemma 2.5 intra-cluster ID assignment contract.
//
// The paper uses routing as a contract: if every node of an n^δ-cluster
// needs to send and receive at most L words, the messages can be delivered
// in Õ(ceil(L/n^δ)) rounds using only cluster edges. Deliver enforces the
// contract mechanically — every message must travel between cluster
// members, loads are computed exactly, an optional hard cap turns overload
// into an error — and charges the ledger accordingly. Data genuinely moves
// through this chokepoint, so listing outputs downstream are real.
package routing

import (
	"fmt"

	"kplist/internal/congest"
	"kplist/internal/expander"
	"kplist/internal/graph"
)

// Envelope is one routed message.
type Envelope[T any] struct {
	From, To graph.V
	Payload  T
}

// Router delivers messages within a single cluster per Theorem 2.4.
type Router struct {
	cluster *expander.Cluster
	cm      congest.CostModel
	n       int // size of the whole communication graph (for polylog factors)
	// LoadCap, when positive, errors any phase in which some node must
	// send or receive more than LoadCap words. Zero means unlimited
	// (the routing theorem batches arbitrarily large loads).
	LoadCap int64
}

// NewRouter creates a router for the given cluster within an n-node graph.
func NewRouter(cluster *expander.Cluster, n int, cm congest.CostModel) *Router {
	return &Router{cluster: cluster, cm: cm, n: n}
}

// Cluster returns the cluster this router serves.
func (r *Router) Cluster() *expander.Cluster { return r.cluster }

// Deliver routes the envelopes inside the cluster: it validates that every
// endpoint is a cluster member, computes the exact per-node send/receive
// loads, charges the ledger `phase` with the Theorem 2.4 bill (using
// ChargeMax so clusters operating in parallel pay the max, not the sum),
// and returns the per-destination inboxes.
func Deliver[T any](r *Router, ledger *congest.Ledger, phase string, envs []Envelope[T]) (map[graph.V][]Envelope[T], error) {
	loads := make(map[graph.V]int64, r.cluster.K())
	inbox := make(map[graph.V][]Envelope[T], r.cluster.K())
	for _, e := range envs {
		if !r.cluster.Contains(e.From) {
			return nil, fmt.Errorf("routing: sender %d not in cluster %d", e.From, r.cluster.ID)
		}
		if !r.cluster.Contains(e.To) {
			return nil, fmt.Errorf("routing: recipient %d not in cluster %d", e.To, r.cluster.ID)
		}
		loads[e.From]++
		loads[e.To]++
		inbox[e.To] = append(inbox[e.To], e)
	}
	var maxLoad int64
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	if r.LoadCap > 0 && maxLoad > r.LoadCap {
		return nil, fmt.Errorf("routing: per-node load %d exceeds cap %d in cluster %d (phase %s)",
			maxLoad, r.LoadCap, r.cluster.ID, phase)
	}
	rounds := r.cm.RouteRounds(r.n, maxLoad, int64(r.cluster.MinDegree))
	ledger.ChargeMax(phase, rounds, int64(len(envs)))
	return inbox, nil
}

// ChargeLoads charges the Theorem 2.4 bill for a phase whose data movement
// was performed by the caller (when building explicit envelopes would be
// wasteful). sent and recv give each member's word counts.
func (r *Router) ChargeLoads(ledger *congest.Ledger, phase string, sent, recv map[graph.V]int64) error {
	var maxLoad int64
	for v, l := range sent {
		if !r.cluster.Contains(v) {
			return fmt.Errorf("routing: sender %d not in cluster %d", v, r.cluster.ID)
		}
		if l+recv[v] > maxLoad {
			maxLoad = l + recv[v]
		}
	}
	for v, l := range recv {
		if !r.cluster.Contains(v) {
			return fmt.Errorf("routing: recipient %d not in cluster %d", v, r.cluster.ID)
		}
		if l+sent[v] > maxLoad {
			maxLoad = l + sent[v]
		}
	}
	if r.LoadCap > 0 && maxLoad > r.LoadCap {
		return fmt.Errorf("routing: per-node load %d exceeds cap %d in cluster %d (phase %s)",
			maxLoad, r.LoadCap, r.cluster.ID, phase)
	}
	var msgs int64
	for _, l := range sent {
		msgs += l
	}
	rounds := r.cm.RouteRounds(r.n, maxLoad, int64(r.cluster.MinDegree))
	ledger.ChargeMax(phase, rounds, msgs)
	return nil
}

// Responsibility implements the §2.4.3 reshuffling ownership map: cluster
// node with new ID i ∈ [k] is responsible for the graph vertices whose ID
// falls in [(i)·n/k, (i+1)·n/k) (0-based form of the paper's ranges).
type Responsibility struct {
	cluster *expander.Cluster
	n       int
}

// NewResponsibility builds the ownership map of a cluster over an n-vertex
// graph.
func NewResponsibility(cluster *expander.Cluster, n int) *Responsibility {
	return &Responsibility{cluster: cluster, n: n}
}

// OwnerOf returns the cluster member responsible for graph vertex w.
func (rs *Responsibility) OwnerOf(w graph.V) graph.V {
	k := rs.cluster.K()
	// Even split of [0,n) into k contiguous ranges.
	idx := int(int64(w) * int64(k) / int64(rs.n))
	if idx >= k {
		idx = k - 1
	}
	return rs.cluster.ByNewID(idx)
}

// Range returns the half-open vertex range [lo, hi) owned by the cluster
// member with new ID i. Consistent with OwnerOf: w is owned by member i
// iff floor(w·k/n) = i, i.e. w ∈ [ceil(i·n/k), ceil((i+1)·n/k)).
func (rs *Responsibility) Range(i int) (lo, hi graph.V) {
	k := int64(rs.cluster.K())
	n := int64(rs.n)
	lo = graph.V((int64(i)*n + k - 1) / k)
	hi = graph.V((int64(i+1)*n + k - 1) / k)
	return lo, hi
}
