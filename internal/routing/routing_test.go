package routing

import (
	"strings"
	"testing"

	"kplist/internal/congest"
	"kplist/internal/expander"
	"kplist/internal/graph"
)

// testCluster builds a decomposition of K_k and returns its single cluster.
func testCluster(t *testing.T, k int) *expander.Cluster {
	t.Helper()
	g := graph.Complete(k)
	var ledger congest.Ledger
	d, err := expander.Decompose(g.N(), graph.NewEdgeList(g.Edges()),
		expander.Params{Threshold: 2, Seed: 1}, congest.UnitCosts(), &ledger)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if len(d.Clusters) != 1 {
		t.Fatalf("want 1 cluster, got %d", len(d.Clusters))
	}
	return d.Clusters[0]
}

func TestDeliverBasic(t *testing.T) {
	cl := testCluster(t, 10)
	r := NewRouter(cl, 10, congest.UnitCosts())
	var ledger congest.Ledger
	envs := []Envelope[int]{
		{From: 0, To: 5, Payload: 42},
		{From: 1, To: 5, Payload: 43},
		{From: 5, To: 0, Payload: 44},
	}
	inbox, err := Deliver(r, &ledger, "test", envs)
	if err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	if len(inbox[5]) != 2 {
		t.Errorf("node 5 got %d messages, want 2", len(inbox[5]))
	}
	if len(inbox[0]) != 1 || inbox[0][0].Payload != 44 {
		t.Errorf("node 0 inbox = %v", inbox[0])
	}
	// Node 5 sends 1 + receives 2 = load 3; minDeg = 9 → 1 round.
	if got := ledger.Phase("test").Rounds; got != 1 {
		t.Errorf("rounds = %d, want 1", got)
	}
	if got := ledger.Phase("test").Messages; got != 3 {
		t.Errorf("messages = %d, want 3", got)
	}
}

func TestDeliverRoundsScaleWithLoad(t *testing.T) {
	cl := testCluster(t, 10) // minDeg 9
	r := NewRouter(cl, 10, congest.UnitCosts())
	var ledger congest.Ledger
	var envs []Envelope[int]
	// Node 0 receives 90 messages: load 90+... senders spread evenly.
	for i := 0; i < 90; i++ {
		envs = append(envs, Envelope[int]{From: graph.V(1 + i%9), To: 0, Payload: i})
	}
	if _, err := Deliver(r, &ledger, "load", envs); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	// Max load = 90 (receiver), minDeg 9 → 10 rounds.
	if got := ledger.Phase("load").Rounds; got != 10 {
		t.Errorf("rounds = %d, want 10", got)
	}
}

func TestDeliverRejectsOutsiders(t *testing.T) {
	cl := testCluster(t, 8)
	r := NewRouter(cl, 20, congest.UnitCosts())
	var ledger congest.Ledger
	if _, err := Deliver(r, &ledger, "x", []Envelope[int]{{From: 15, To: 0}}); err == nil {
		t.Error("outside sender should be rejected")
	}
	if _, err := Deliver(r, &ledger, "x", []Envelope[int]{{From: 0, To: 15}}); err == nil {
		t.Error("outside recipient should be rejected")
	}
}

func TestDeliverLoadCap(t *testing.T) {
	cl := testCluster(t, 6)
	r := NewRouter(cl, 6, congest.UnitCosts())
	r.LoadCap = 3
	var ledger congest.Ledger
	var envs []Envelope[int]
	for i := 0; i < 5; i++ {
		envs = append(envs, Envelope[int]{From: graph.V(1 + (i % 5)), To: 0, Payload: i})
	}
	_, err := Deliver(r, &ledger, "capped", envs)
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("want load-cap error, got %v", err)
	}
}

func TestChargeMaxAcrossParallelClusters(t *testing.T) {
	cl := testCluster(t, 10)
	r := NewRouter(cl, 10, congest.UnitCosts())
	var ledger congest.Ledger
	// Two parallel deliveries under the same phase name: rounds take the
	// max (parallel clusters), messages add.
	if _, err := Deliver(r, &ledger, "par", mkEnvs(30, 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := Deliver(r, &ledger, "par", mkEnvs(90, 9)); err != nil {
		t.Fatal(err)
	}
	pc := ledger.Phase("par")
	if pc.Rounds != 10 {
		t.Errorf("parallel rounds = %d, want max(4,10)=10", pc.Rounds)
	}
	if pc.Messages != 120 {
		t.Errorf("messages = %d, want 120", pc.Messages)
	}
}

func mkEnvs(n, senders int) []Envelope[int] {
	envs := make([]Envelope[int], 0, n)
	for i := 0; i < n; i++ {
		envs = append(envs, Envelope[int]{From: graph.V(1 + i%senders), To: 0, Payload: i})
	}
	return envs
}

func TestChargeLoads(t *testing.T) {
	cl := testCluster(t, 10)
	r := NewRouter(cl, 10, congest.UnitCosts())
	var ledger congest.Ledger
	sent := map[graph.V]int64{0: 45}
	recv := map[graph.V]int64{1: 25, 2: 20}
	if err := r.ChargeLoads(&ledger, "manual", sent, recv); err != nil {
		t.Fatalf("ChargeLoads: %v", err)
	}
	// max load = 45; minDeg 9 → 5 rounds.
	if got := ledger.Phase("manual").Rounds; got != 5 {
		t.Errorf("rounds = %d, want 5", got)
	}
	if err := r.ChargeLoads(&ledger, "bad", map[graph.V]int64{99: 1}, nil); err == nil {
		t.Error("outside sender should be rejected")
	}
}

func TestResponsibilityPartition(t *testing.T) {
	cl := testCluster(t, 8)
	n := 100
	rs := NewResponsibility(cl, n)
	// Every graph vertex has exactly one owner, owners are cluster members,
	// and ranges tile [0, n).
	counts := make(map[graph.V]int)
	for w := 0; w < n; w++ {
		owner := rs.OwnerOf(graph.V(w))
		if !cl.Contains(owner) {
			t.Fatalf("owner %d of %d not in cluster", owner, w)
		}
		counts[owner]++
	}
	total := 0
	for i := 0; i < cl.K(); i++ {
		lo, hi := rs.Range(i)
		member := cl.ByNewID(i)
		if counts[member] != int(hi-lo) {
			t.Errorf("member %d owns %d vertices, range says %d", member, counts[member], hi-lo)
		}
		total += int(hi - lo)
		for w := lo; w < hi; w++ {
			if rs.OwnerOf(w) != member {
				t.Errorf("OwnerOf(%d) = %d, want %d", w, rs.OwnerOf(w), member)
			}
		}
	}
	if total != n {
		t.Errorf("ranges cover %d vertices, want %d", total, n)
	}
	// Balance: every member owns n/k ± 1.
	for _, c := range counts {
		if c < n/8-1 || c > n/8+1 {
			t.Errorf("imbalanced ownership: %d", c)
		}
	}
}
