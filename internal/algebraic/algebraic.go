// Package algebraic implements the matrix-multiplication-based triangle
// counting in the CONGESTED CLIQUE that the paper's §5 discussion
// contrasts with listing (Censor-Hillel, Kaski, Korhonen, Lenzen, Paz,
// Suomela — "Algebraic methods in the congested clique"): the number of
// triangles is tr(A³)/6, computable from A² entries on edges, and the
// distributed semiring matrix product takes O(n^{1/3}) rounds on n nodes.
//
// The paper under reproduction notes (§5) that counting via this route is
// faster than listing on dense graphs but resists the sparsity-aware
// treatment that makes listing implementable in CONGEST — this module
// exists to reproduce that comparison (EXPERIMENTS.md E8).
//
// As with the rest of the pipeline, the computation is performed centrally
// (dense bitset row intersections — exactly the semiring products the
// distributed 3D algorithm would compute shard-wise) and the CONGESTED
// CLIQUE bill O(n^{1/3}) rounds is charged to the ledger.
package algebraic

import (
	"fmt"
	"math"
	"math/bits"

	"kplist/internal/congest"
	"kplist/internal/graph"
)

// bitRow is a dense bitset over the vertex set.
type bitRow []uint64

func newBitRow(n int) bitRow { return make(bitRow, (n+63)/64) }

func (r bitRow) set(i graph.V) { r[i>>6] |= 1 << (uint(i) & 63) }

// andCount returns |r ∧ s|.
func (r bitRow) andCount(s bitRow) int64 {
	var c int64
	for i := range r {
		c += int64(bits.OnesCount64(r[i] & s[i]))
	}
	return c
}

// TriangleCountCC counts the triangles of g and charges the congested
// clique the O(n^{1/3}) semiring matrix-multiplication bill. The count is
// exact: Σ_{edges {u,v}} |N(u) ∩ N(v)| counts every triangle once per
// edge, i.e. three times.
func TriangleCountCC(g *graph.Graph, cm congest.CostModel, ledger *congest.Ledger) (int64, error) {
	n := g.N()
	if n == 0 {
		ledger.Charge("algebraic-triangle-count", 1, 0)
		return 0, nil
	}
	rows := make([]bitRow, n)
	for v := 0; v < n; v++ {
		rows[v] = newBitRow(n)
		for _, w := range g.Neighbors(graph.V(v)) {
			rows[v].set(w)
		}
	}
	var triple int64
	for u := 0; u < n; u++ {
		for _, w := range g.Neighbors(graph.V(u)) {
			if graph.V(u) < w {
				triple += rows[u].andCount(rows[w])
			}
		}
	}
	if triple%3 != 0 {
		return 0, fmt.Errorf("algebraic: inconsistent triple count %d", triple)
	}
	rounds := int64(math.Ceil(math.Cbrt(float64(n)))) * cm.CliquePolylog(n)
	if rounds < 1 {
		rounds = 1
	}
	// Message volume of the 3D algorithm: every node ships its O(n) row
	// shards to O(n^{1/3}) reducers.
	ledger.Charge("algebraic-triangle-count", rounds, int64(n)*rounds)
	return triple / 3, nil
}

// CommonNeighborCounts exposes the A² entries on edges (the per-edge
// triangle supports), used by the local-counting tests: supports[i]
// corresponds to g.Edges()[i].
func CommonNeighborCounts(g *graph.Graph) []int64 {
	n := g.N()
	rows := make([]bitRow, n)
	for v := 0; v < n; v++ {
		rows[v] = newBitRow(n)
		for _, w := range g.Neighbors(graph.V(v)) {
			rows[v].set(w)
		}
	}
	edges := g.Edges()
	out := make([]int64, len(edges))
	for i, e := range edges {
		out[i] = rows[e.U].andCount(rows[e.V])
	}
	return out
}
