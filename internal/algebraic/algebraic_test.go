package algebraic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kplist/internal/congest"
	"kplist/internal/graph"
	"kplist/internal/sparselist"
)

func TestTriangleCountKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"K4", graph.Complete(4), 4},
		{"K6", graph.Complete(6), 20},
		{"C5", graph.Cycle(5), 0},
		{"triangle", graph.MustNew(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}), 1},
		{"empty", graph.MustNew(5, nil), 0},
		{"null", graph.MustNew(0, nil), 0},
	}
	for _, c := range cases {
		var ledger congest.Ledger
		got, err := TriangleCountCC(c.g, congest.UnitCosts(), &ledger)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: count = %d, want %d", c.name, got, c.want)
		}
		if ledger.Rounds() < 1 {
			t.Errorf("%s: no rounds charged", c.name)
		}
	}
}

func TestTriangleCountMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := graph.ErdosRenyi(120, 0.1+0.4*rng.Float64(), rng)
		var ledger congest.Ledger
		got, err := TriangleCountCC(g, congest.UnitCosts(), &ledger)
		if err != nil {
			t.Fatal(err)
		}
		want := g.CountCliques(3)
		if got != want {
			t.Fatalf("trial %d: algebraic count %d, enumeration %d", trial, got, want)
		}
	}
}

// TestCountingCheaperThanListingWhenDense reproduces the §5 comparison:
// on dense graphs the O(n^{1/3})-round algebraic counter beats the
// Θ̃(m/n^{1+2/3})-round sparsity-aware lister, and both agree on the
// triangle count.
func TestCountingCheaperThanListingWhenDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.ErdosRenyi(200, 0.8, rng)
	var lc congest.Ledger
	count, err := TriangleCountCC(g, congest.UnitCosts(), &lc)
	if err != nil {
		t.Fatal(err)
	}
	var ll congest.Ledger
	res, err := sparselist.CongestedCliqueOnGraph(g, 3, 2, 0, congest.UnitCosts(), &ll)
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Cliques.Len()) != count {
		t.Fatalf("lister found %d triangles, counter says %d", res.Cliques.Len(), count)
	}
	if lc.Rounds() >= ll.Rounds() {
		t.Errorf("dense graph: counting (%d rounds) should beat listing (%d rounds)", lc.Rounds(), ll.Rounds())
	}
}

func TestCommonNeighborCounts(t *testing.T) {
	// A diamond: 0-1-2-0, 0-3, 2-3 → edge {0,2} supports 2 triangles.
	g := graph.MustNew(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 2, V: 3}})
	edges := g.Edges()
	counts := CommonNeighborCounts(g)
	var sum int64
	for i, e := range edges {
		if e == (graph.Edge{U: 0, V: 2}) && counts[i] != 2 {
			t.Errorf("edge {0,2} support = %d, want 2", counts[i])
		}
		sum += counts[i]
	}
	if sum != 3*g.CountCliques(3) {
		t.Errorf("supports sum to %d, want 3·triangles = %d", sum, 3*g.CountCliques(3))
	}
}

// Property: tr(A³)/6 equals enumeration for arbitrary random graphs.
func TestQuickAlgebraicCount(t *testing.T) {
	f := func(seed int64, densRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.ErdosRenyi(60, float64(densRaw%90)/100.0, rng)
		var ledger congest.Ledger
		got, err := TriangleCountCC(g, congest.UnitCosts(), &ledger)
		if err != nil {
			return false
		}
		return got == g.CountCliques(3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
