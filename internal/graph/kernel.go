package graph

// The clique-enumeration kernel: a flat CSR representation of the
// degeneracy-oriented DAG with zero-allocation recursion and parallel
// root-vertex fan-out. Every listing surface in the repository bottoms out
// here — Graph.ListCliques/VisitCliques/CountCliques (the GroundTruth the
// distributed engines are verified against), LocalLister (the per-node
// enumeration inside every simulated engine), and the kplistd streaming
// path. See DESIGN.md §8 for the layout and the intersection strategy.

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// The built-in knob defaults, exposed (and overridable per host) through
// Tuning — every kernel captures the process-wide Tuning at construction,
// so these constants are only the DefaultTuning values.
const (
	// kernelRowMaxN bounds the vertex count for which the kernel builds
	// word-packed adjacency-row bitmaps (n·⌈n/64⌉ words ≈ n²/8 bytes;
	// 4096 → 2 MiB). Beyond it every intersection uses the sorted merge.
	kernelRowMaxN = 4096
	// kernelRowMinOut is the max-out-degree floor below which row bitmaps
	// are not worth building: a sorted merge against a ≤ 32-entry list is
	// already a handful of cache lines.
	kernelRowMinOut = 32
	// kernelBitsetCut switches one intersection from sorted merge,
	// O(|C|+|out(w)|), to bitmap probes, O(|C|): probe when out(w) is
	// this many times larger than the candidate set.
	kernelBitsetCut = 2
	// kernelRootChunk is how many root vertices a parallel worker claims
	// per fetch-add; coarse enough to keep contention negligible, fine
	// enough to balance skewed degree distributions.
	kernelRootChunk = 32
)

// kernel is the shared, immutable enumeration structure for one vertex
// set: vertices relabeled by degeneracy rank so that every clique appears
// exactly once as an increasing sequence of relabeled IDs, with the DAG
// out-neighborhoods (bounded by the degeneracy) laid out in one flat CSR.
// A kernel is built once per Graph (or LocalLister) and reused by every
// subsequent enumeration; concurrent visits are safe, each borrowing a
// private arena.
type kernel struct {
	n      int
	orig   []V     // orig[r] = caller-facing vertex ID of rank r
	maxID  V       // max caller-facing ID (radix-sort digit bound)
	off    []int32 // len n+1: CSR offsets into heads
	heads  []V     // DAG out-neighbors in rank space, ascending per row
	maxOut int     // max DAG out-degree = degeneracy of the vertex set

	// rows, when non-nil, are word-packed adjacency bitmaps of the DAG
	// rows (rows[r·rowW : (r+1)·rowW] has bit c set iff c ∈ out(r)),
	// enabling O(|C|) intersections against dense neighborhoods.
	rows []uint64
	rowW int

	// bitsetCut and rootChunk are the process-wide Tuning knobs captured
	// at construction, so one kernel's behavior never changes mid-life.
	bitsetCut int
	rootChunk int

	mu   sync.Mutex
	free []*kernelArena
}

// kernelArena is the per-worker recursion state: candidate buffers
// preallocated per depth and sized by the maximum out-degree, so the
// steady-state enumeration performs no allocation at all.
type kernelArena struct {
	prefix  []V    // current clique prefix, in rank space
	scratch Clique // emitted clique, in caller IDs, sorted
	bufs    [][]V  // bufs[d] backs the candidate set produced at depth d+1
}

// kernelBuilds counts full kernel constructions — the degeneracy peel +
// DAG CSR derivation path. Kernels adopted from a snapshot's stored CSR
// (kernelFromCSR) do not count, which is exactly what the persistence
// tests assert: opening a snapshot must not re-derive the CSR.
var kernelBuilds atomic.Int64

// KernelBuilds returns how many kernels have been constructed from raw
// adjacency since process start (test instrumentation for the snapshot
// zero-rebuild guarantee).
func KernelBuilds() int64 { return kernelBuilds.Load() }

// newKernel builds the kernel for a dense vertex set given its full
// adjacency in CSR form (heads ascending per row) and the mapping from
// dense IDs back to caller-facing IDs (orig[i] for dense vertex i; nil
// means the identity).
func newKernel(n int, adjOff []int32, adjHeads []V, orig []V) *kernel {
	kernelBuilds.Add(1)
	order, rank := degeneracyCSR(n, adjOff, adjHeads)
	tn := CurrentTuning()
	k := &kernel{n: n, bitsetCut: tn.BitsetCut, rootChunk: tn.RootChunk}
	k.orig = make([]V, n)
	for r := 0; r < n; r++ {
		if orig == nil {
			k.orig[r] = order[r]
		} else {
			k.orig[r] = orig[order[r]]
		}
		if k.orig[r] > k.maxID {
			k.maxID = k.orig[r]
		}
	}
	// DAG rows in rank space: edge u→w when rank[u] < rank[w].
	deg := make([]int32, n+1)
	for u := 0; u < n; u++ {
		ru := rank[u]
		for _, w := range adjHeads[adjOff[u]:adjOff[u+1]] {
			if ru < rank[w] {
				deg[ru]++
			}
		}
	}
	k.off = make([]int32, n+1)
	for r := 0; r < n; r++ {
		k.off[r+1] = k.off[r] + deg[r]
	}
	// Fill every DAG row in ascending order without per-row sorts by
	// iterating the target rank ascending: row ru receives rw in
	// increasing order of rw.
	k.heads = make([]V, k.off[n])
	fill := make([]int32, n)
	for rw := 0; rw < n; rw++ {
		w := order[rw]
		for _, u := range adjHeads[adjOff[w]:adjOff[w+1]] {
			if ru := rank[u]; ru < int32(rw) {
				k.heads[k.off[ru]+fill[ru]] = V(rw)
				fill[ru]++
			}
		}
	}
	for r := 0; r < n; r++ {
		if d := int(k.off[r+1] - k.off[r]); d > k.maxOut {
			k.maxOut = d
		}
	}
	k.buildRows()
	return k
}

// buildRows derives the word-packed adjacency-row bitmaps when the graph
// is small and dense enough for bitmap probing to pay off (thresholds
// from the process-wide Tuning). The bitmaps are an acceleration
// structure, not part of the CSR: snapshot files never store them, and
// adopting a stored CSR re-derives them here.
func (k *kernel) buildRows() {
	tn := CurrentTuning()
	if k.n <= tn.RowMaxN && k.maxOut >= tn.RowMinOut {
		k.rowW = (k.n + 63) / 64
		k.rows = make([]uint64, k.n*k.rowW)
		for r := 0; r < k.n; r++ {
			row := k.rows[r*k.rowW : (r+1)*k.rowW]
			for _, c := range k.heads[k.off[r]:k.off[r+1]] {
				row[c>>6] |= 1 << (uint(c) & 63)
			}
		}
	}
}

// kernelFromCSR adopts an already-derived degeneracy-DAG CSR — the
// snapshot load path. The slices are aliased, not copied (they may point
// into a read-only mapping and must not be written), and no degeneracy
// peel or CSR derivation runs: only the in-memory row bitmaps are
// rebuilt.
func kernelFromCSR(n int, off []int32, heads, orig []V, maxOut int, maxID V) *kernel {
	tn := CurrentTuning()
	k := &kernel{
		n: n, orig: orig, maxID: maxID, off: off, heads: heads, maxOut: maxOut,
		bitsetCut: tn.BitsetCut, rootChunk: tn.RootChunk,
	}
	k.buildRows()
	return k
}

// degeneracyCSR is the linear-time Batagelj–Zaveršnik peel over a CSR
// adjacency — flat bin/position arrays, no per-bucket slices: order[i] is
// the i-th vertex peeled (ascending remaining degree), rank its inverse
// permutation.
func degeneracyCSR(n int, off []int32, heads []V) (order []V, rank []int32) {
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = off[v+1] - off[v]
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Counting-sort vertices by degree: bin[d] = start of bucket d.
	bin := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		c := bin[d]
		bin[d] = start
		start += c
	}
	vert := make([]V, n)
	pos := make([]int32, n)
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = V(v)
		bin[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0
	// Peel in place: vert stays sorted by remaining degree, each peeled
	// neighbor swaps to the front of its bucket and the bucket shrinks.
	for i := 0; i < n; i++ {
		v := vert[i]
		dv := deg[v]
		for _, w := range heads[off[v]:off[v+1]] {
			// Only neighbors of strictly larger remaining degree move:
			// equal-degree neighbors belong to the same shell, and their
			// bucket start may lie inside the peeled prefix.
			if pos[w] <= int32(i) || deg[w] <= dv {
				continue
			}
			dw := deg[w]
			fw := bin[dw]
			u := vert[fw]
			if u != w {
				vert[fw], vert[pos[w]] = w, u
				pos[u] = pos[w]
				pos[w] = fw
			}
			bin[dw]++
			deg[w]--
		}
	}
	return vert, pos
}

// newGraphKernel flattens a Graph's adjacency into CSR form and builds the
// kernel over it (identity vertex mapping).
func newGraphKernel(g *Graph) *kernel {
	off := make([]int32, g.n+1)
	for v := 0; v < g.n; v++ {
		off[v+1] = off[v] + int32(len(g.adj[v]))
	}
	heads := make([]V, off[g.n])
	for v := 0; v < g.n; v++ {
		copy(heads[off[v]:off[v+1]], g.adj[v])
	}
	return newKernel(g.n, off, heads, nil)
}

// getArena borrows an arena sized for cliques of up to p vertices; it is
// returned to the kernel's free list by putArena, so steady-state
// enumeration allocates nothing.
func (k *kernel) getArena(p int) *kernelArena {
	k.mu.Lock()
	var a *kernelArena
	if n := len(k.free); n > 0 {
		a = k.free[n-1]
		k.free = k.free[:n-1]
	}
	k.mu.Unlock()
	if a == nil {
		a = &kernelArena{}
	}
	if cap(a.prefix) < p {
		a.prefix = make([]V, p)
		a.scratch = make(Clique, p)
	}
	a.prefix = a.prefix[:p]
	a.scratch = a.scratch[:p]
	for len(a.bufs) < p-2 {
		a.bufs = append(a.bufs, make([]V, 0, k.maxOut))
	}
	return a
}

func (k *kernel) putArena(a *kernelArena) {
	k.mu.Lock()
	k.free = append(k.free, a)
	k.mu.Unlock()
}

// intersectInto writes cands ∩ out(w) into dst[:0] and returns it. Both
// inputs are ascending in rank space; every common element has rank > w,
// so callers may pass the suffix of cands after w. The strategy is
// hybrid: word-packed bitmap probes of w's pre-marked adjacency row when
// out(w) dwarfs the candidate set, sorted merge otherwise.
func (k *kernel) intersectInto(dst, cands []V, w V) []V {
	out := k.heads[k.off[w]:k.off[w+1]]
	dst = dst[:0]
	if k.rows != nil && len(out) > k.bitsetCut*len(cands) {
		row := k.rows[int(w)*k.rowW : (int(w)+1)*k.rowW]
		for _, c := range cands {
			if row[c>>6]&(1<<(uint(c)&63)) != 0 {
				dst = append(dst, c)
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(cands) && j < len(out) {
		a, b := cands[i], out[j]
		if a == b {
			dst = append(dst, a)
			i++
			j++
		} else if a < b {
			i++
		} else {
			j++
		}
	}
	return dst
}

// visitRange enumerates every p-clique (p ≥ 2) whose minimum-rank vertex
// lies in [lo, hi), yielding each with its caller-facing IDs sorted
// ascending into the arena's scratch slice. It returns false iff yield
// aborted the enumeration.
func (k *kernel) visitRange(lo, hi, p int, a *kernelArena, yield func(Clique) bool) bool {
	need := p - 1
	for r := lo; r < hi; r++ {
		c0 := k.heads[k.off[r]:k.off[r+1]]
		if len(c0) < need {
			continue
		}
		a.prefix[0] = V(r)
		if !k.expand(c0, 1, need, a, yield) {
			return false
		}
	}
	return true
}

// expand grows the prefix (depth vertices so far) by every viable
// candidate, needing `need` more vertices to complete a clique.
func (k *kernel) expand(cands []V, depth, need int, a *kernelArena, yield func(Clique) bool) bool {
	if need == 1 {
		for _, w := range cands {
			a.prefix[depth] = w
			if !k.emit(depth+1, a, yield) {
				return false
			}
		}
		return true
	}
	buf := a.bufs[depth-1]
	for i, w := range cands {
		if len(cands)-i < need {
			return true
		}
		next := k.intersectInto(buf, cands[i+1:], w)
		if len(next) < need-1 {
			continue
		}
		a.prefix[depth] = w
		if !k.expand(next, depth+1, need-1, a, yield) {
			return false
		}
	}
	return true
}

// emit maps the completed rank-space prefix back to caller IDs, sorts
// them, and yields. The scratch slice is reused between emissions.
func (k *kernel) emit(size int, a *kernelArena, yield func(Clique) bool) bool {
	s := a.scratch[:size]
	for i := 0; i < size; i++ {
		s[i] = k.orig[a.prefix[i]]
	}
	sortV(s)
	return yield(s)
}

// countRange is visitRange without emission: completed prefixes are
// counted in bulk at the last level, never materialized or sorted, so the
// hot loop is pure intersection work with zero allocation.
func (k *kernel) countRange(lo, hi, p int) int64 {
	if p < 2 {
		return 0
	}
	a := k.getArena(p)
	var total int64
	need := p - 1
	for r := lo; r < hi; r++ {
		c0 := k.heads[k.off[r]:k.off[r+1]]
		if len(c0) < need {
			continue
		}
		total += k.countExpand(c0, 1, need, a)
	}
	k.putArena(a)
	return total
}

func (k *kernel) countExpand(cands []V, depth, need int, a *kernelArena) int64 {
	if need == 1 {
		return int64(len(cands))
	}
	var total int64
	buf := a.bufs[depth-1]
	for i, w := range cands {
		if len(cands)-i < need {
			return total
		}
		next := k.intersectInto(buf, cands[i+1:], w)
		if len(next) < need-1 {
			continue
		}
		total += k.countExpand(next, depth+1, need-1, a)
	}
	return total
}

// visitSeq is the sequential whole-range visit used by the streaming
// surfaces: deterministic enumeration order, abortable via yield.
func (k *kernel) visitSeq(p int, yield func(Clique) bool) bool {
	if p < 2 || k.n == 0 {
		return true
	}
	a := k.getArena(p)
	ok := k.visitRange(0, k.n, p, a, yield)
	k.putArena(a)
	return ok
}

// kernelWorkers resolves a Workers knob: ≤ 0 means GOMAXPROCS, and the
// fan-out never exceeds the root count.
func kernelWorkers(workers, roots int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > roots {
		workers = roots
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// count enumerates in parallel over root vertices and returns the total
// number of p-cliques. workers ≤ 0 means GOMAXPROCS.
func (k *kernel) count(p, workers int) int64 {
	if p < 2 || k.n == 0 {
		return 0
	}
	workers = kernelWorkers(workers, k.n)
	if workers == 1 {
		return k.countRange(0, k.n, p)
	}
	chunk := k.rootChunk
	var total atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sub int64
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= k.n {
					break
				}
				hi := min(lo+chunk, k.n)
				sub += k.countRange(lo, hi, p)
			}
			total.Add(sub)
		}()
	}
	wg.Wait()
	return total.Load()
}

// cliqueCollector accumulates packed clique copies (stride p, no slice
// headers) carved out of slabs, so a million-clique listing costs dozens —
// not millions — of allocations and the merge phase can radix-sort one
// flat backing array.
type cliqueCollector struct {
	full [][]V // filled slabs
	slab []V   // current slab, len = packed cliques so far
	p    int
}

// grab returns the next stride-p slot in the current slab.
func (c *cliqueCollector) grab() []V {
	if cap(c.slab)-len(c.slab) < c.p {
		if len(c.slab) > 0 {
			c.full = append(c.full, c.slab)
		}
		c.slab = make([]V, 0, 8192*c.p)
	}
	n := len(c.slab)
	c.slab = c.slab[:n+c.p]
	return c.slab[n : n+c.p : n+c.p]
}

func (c *cliqueCollector) add(cl Clique) {
	copy(c.grab(), cl)
}

func (c *cliqueCollector) size() int {
	n := len(c.slab)
	for _, s := range c.full {
		n += len(s)
	}
	return n
}

// collectRange enumerates roots [lo, hi) straight into the collector:
// completed cliques are mapped to caller IDs and sorted in place inside
// the slab slot, skipping the visitor indirection and the scratch copy.
func (k *kernel) collectRange(lo, hi, p int, a *kernelArena, c *cliqueCollector) {
	need := p - 1
	for r := lo; r < hi; r++ {
		c0 := k.heads[k.off[r]:k.off[r+1]]
		if len(c0) < need {
			continue
		}
		a.prefix[0] = V(r)
		k.collectExpand(c0, 1, need, a, c)
	}
}

func (k *kernel) collectExpand(cands []V, depth, need int, a *kernelArena, c *cliqueCollector) {
	if need == 1 {
		for _, w := range cands {
			slot := c.grab()
			for i := 0; i < depth; i++ {
				slot[i] = k.orig[a.prefix[i]]
			}
			slot[depth] = k.orig[w]
			sortV(slot)
		}
		return
	}
	buf := a.bufs[depth-1]
	for i, w := range cands {
		if len(cands)-i < need {
			return
		}
		next := k.intersectInto(buf, cands[i+1:], w)
		if len(next) < need-1 {
			continue
		}
		a.prefix[depth] = w
		k.collectExpand(next, depth+1, need-1, a, c)
	}
}

// list enumerates in parallel and returns every p-clique sorted
// lexicographically — byte-identical for every worker count: the clique
// vectors are pairwise distinct, so the final sort fully determines the
// order regardless of how the dynamic root chunks interleaved.
func (k *kernel) list(p, workers int) []Clique {
	if p < 2 || k.n == 0 {
		return nil
	}
	workers = kernelWorkers(workers, k.n)
	collectors := make([]cliqueCollector, workers)
	for i := range collectors {
		collectors[i].p = p
	}
	if workers == 1 {
		a := k.getArena(p)
		k.collectRange(0, k.n, p, a, &collectors[0])
		k.putArena(a)
	} else {
		chunk := k.rootChunk
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(c *cliqueCollector) {
				defer wg.Done()
				a := k.getArena(p)
				for {
					lo := int(next.Add(int64(chunk))) - chunk
					if lo >= k.n {
						break
					}
					hi := min(lo+chunk, k.n)
					k.collectRange(lo, hi, p, a, c)
				}
				k.putArena(a)
			}(&collectors[w])
		}
		wg.Wait()
	}
	total := 0
	for i := range collectors {
		total += collectors[i].size()
	}
	if total == 0 {
		return nil
	}
	count := total / p
	flat := make([]V, 0, total)
	for i := range collectors {
		for _, s := range collectors[i].full {
			flat = append(flat, s...)
		}
		flat = append(flat, collectors[i].slab...)
	}
	k.sortPacked(flat, p, count)
	out := make([]Clique, count)
	for i := 0; i < count; i++ {
		out[i] = Clique(flat[i*p : (i+1)*p : (i+1)*p])
	}
	return out
}

// sortPackedMaxID bounds the vertex-ID range for which the packed sort
// uses LSD radix passes (one counting array of maxID+1 entries per pass).
const sortPackedMaxID = 1 << 18

// sortPacked sorts count stride-p clique vectors packed in flat into
// lexicographic order. Vertex IDs below sortPackedMaxID take the linear
// LSD radix path — p stable counting passes, no comparator — and anything
// larger falls back to a comparison sort on slice views.
func (k *kernel) sortPacked(flat []V, p, count int) {
	if int(k.maxID) >= sortPackedMaxID || count > 1<<30 {
		views := make([]Clique, count)
		for i := range views {
			views[i] = Clique(flat[i*p : (i+1)*p])
		}
		slices.SortFunc(views, cmpClique)
		sorted := make([]V, len(flat))
		for i, v := range views {
			copy(sorted[i*p:], v)
		}
		copy(flat, sorted)
		return
	}
	tmp := make([]V, len(flat))
	cnt := make([]int32, int(k.maxID)+2)
	src, dst := flat, tmp
	for d := p - 1; d >= 0; d-- {
		for i := range cnt {
			cnt[i] = 0
		}
		for i := 0; i < count; i++ {
			cnt[src[i*p+d]]++
		}
		sum := int32(0)
		for i := range cnt {
			c := cnt[i]
			cnt[i] = sum
			sum += c
		}
		for i := 0; i < count; i++ {
			v := src[i*p+d]
			pos := cnt[v]
			cnt[v]++
			copy(dst[int(pos)*p:int(pos)*p+p], src[i*p:i*p+p])
		}
		src, dst = dst, src
	}
	if &src[0] != &flat[0] {
		copy(flat, src)
	}
}

// cmpClique orders cliques lexicographically (shorter prefixes first) for
// slices.SortFunc and the set/diff helpers.
func cmpClique(a, b Clique) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}
