package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Generators for the synthetic workloads used by the experiments. All
// generators take an explicit *rand.Rand so runs are reproducible; none
// touch global state.

// ErdosRenyi samples G(n, prob): each of the n(n-1)/2 edges present
// independently with probability prob. Uses geometric skipping so the cost
// is proportional to the number of edges generated, not n^2.
func ErdosRenyi(n int, prob float64, rng *rand.Rand) *Graph {
	if prob <= 0 || n < 2 {
		return MustNew(maxInt(n, 0), nil)
	}
	if prob >= 1 {
		return Complete(n)
	}
	var edges []Edge
	// Batagelj–Brandes: iterate over pair index k in [0, n(n-1)/2),
	// advancing by geometric skips so the cost is O(m), not O(n^2).
	total := int64(n) * int64(n-1) / 2
	Sprinkle(rng, total, prob, func(k int64) {
		u, v := PairFromIndex(k, n)
		edges = append(edges, Edge{u, v})
	})
	return MustNew(n, edges)
}

// Sprinkle visits each index in [0,total) independently with probability p,
// in ascending order, via geometric skips so the cost is proportional to
// the number of hits — the shared Bernoulli sampler behind every density
// knob (Erdős–Rényi, bipartite, the workload block models).
func Sprinkle(rng *rand.Rand, total int64, p float64, emit func(k int64)) {
	if p <= 0 || total <= 0 {
		return
	}
	if p >= 1 {
		for k := int64(0); k < total; k++ {
			emit(k)
		}
		return
	}
	logq := math.Log1p(-p) // < 0
	k := int64(-1)
	for {
		r := rng.Float64()
		skip := int64(math.Floor(math.Log1p(-r) / logq))
		if skip < 0 {
			skip = 0
		}
		k += 1 + skip
		if k >= total {
			return
		}
		emit(k)
	}
}

// PairFromIndex maps a linear index k in [0, n(n-1)/2) to the k-th pair
// (u,v), u<v, in row-major order.
func PairFromIndex(k int64, n int) (V, V) {
	// Row u contributes n-1-u pairs. Solve for u.
	u := int64(0)
	rem := k
	for {
		row := int64(n) - 1 - u
		if rem < row {
			break
		}
		rem -= row
		u++
	}
	return V(u), V(u + 1 + rem)
}

// GNM samples a uniform graph with exactly m distinct edges (or all edges if
// m exceeds the maximum).
func GNM(n, m int, rng *rand.Rand) *Graph {
	total := int64(n) * int64(n-1) / 2
	if int64(m) >= total {
		return Complete(n)
	}
	seen := make(map[int64]struct{}, m)
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		k := rng.Int63n(total)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		u, v := PairFromIndex(k, n)
		edges = append(edges, Edge{u, v})
	}
	return MustNew(n, edges)
}

// Complete returns K_n.
func Complete(n int) *Graph {
	var edges []Edge
	if n > 1 {
		edges = make([]Edge, 0, n*(n-1)/2)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{V(u), V(v)})
		}
	}
	return MustNew(maxInt(n, 0), edges)
}

// Cycle returns C_n.
func Cycle(n int) *Graph {
	if n < 3 {
		return MustNew(maxInt(n, 0), nil)
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{V(i), V((i + 1) % n)})
	}
	return MustNew(n, edges)
}

// Path returns P_n (n vertices, n-1 edges).
func Path(n int) *Graph {
	edges := make([]Edge, 0, maxInt(n-1, 0))
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{V(i), V(i + 1)})
	}
	return MustNew(maxInt(n, 0), edges)
}

// PlantedCliques overlays count vertex-disjoint cliques of size k on top of
// a sparse Erdős–Rényi background with edge probability bgProb. It returns
// the graph and the planted cliques (each sorted ascending). It panics if
// count*k exceeds n; callers control parameters.
func PlantedCliques(n, k, count int, bgProb float64, rng *rand.Rand) (*Graph, [][]V) {
	if count*k > n {
		panic(fmt.Sprintf("graph: cannot plant %d cliques of size %d in %d vertices", count, k, n))
	}
	perm := rng.Perm(n)
	bg := ErdosRenyi(n, bgProb, rng)
	edges := bg.Edges()
	planted := make([][]V, 0, count)
	at := 0
	for c := 0; c < count; c++ {
		members := make([]V, k)
		for i := 0; i < k; i++ {
			members[i] = V(perm[at])
			at++
		}
		sortV(members)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				edges = append(edges, Edge{members[i], members[j]})
			}
		}
		planted = append(planted, members)
	}
	return MustNew(n, edges), planted
}

// ChungLu samples a graph with expected degree sequence w: edge {u,v}
// appears with probability min(1, w_u w_v / sum(w)).
func ChungLu(weights []float64, rng *rand.Rand) *Graph {
	n := len(weights)
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if sum == 0 {
		return MustNew(n, nil)
	}
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := weights[u] * weights[v] / sum
			if p > 1 {
				p = 1
			}
			if rng.Float64() < p {
				edges = append(edges, Edge{V(u), V(v)})
			}
		}
	}
	return MustNew(n, edges)
}

// PowerLawWeights returns Chung–Lu weights for a power-law degree
// distribution with the given exponent (>2) and average degree.
func PowerLawWeights(n int, exponent, avgDeg float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		w[i] = math.Pow(float64(i+1), -1/(exponent-1))
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	return w
}

// RandomRegular samples an approximately d-regular graph via the
// configuration model with rejection of loops and multi-edges. The result
// has maximum degree ≤ d; a handful of vertices may fall short when stubs
// collide, which is acceptable for expander-ish test inputs.
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	if n*d%2 == 1 {
		d++ // need even stub count
	}
	stubs := make([]V, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, V(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	var edges []Edge
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u != v {
			edges = append(edges, Edge{u, v})
		}
	}
	return MustNew(n, edges)
}

// RandomBipartite samples a bipartite graph on sides {0..n/2-1} and
// {n/2..n-1} with edge probability prob across the cut. Bipartite graphs
// are triangle-free (hence Kp-free for p ≥ 3) while still dense, which
// makes them the round-complexity workload of choice: communication loads
// are as heavy as in a dense graph, but the listing output stays tiny, so
// exact simulation remains tractable at large n (see EXPERIMENTS.md).
func RandomBipartite(n int, prob float64, rng *rand.Rand) *Graph {
	half := n / 2
	var edges []Edge
	if half > 0 {
		// Geometric skipping over the half×(n-half) grid.
		Sprinkle(rng, int64(half)*int64(n-half), prob, func(k int64) {
			u := V(k / int64(n-half))
			v := V(half) + V(k%int64(n-half))
			edges = append(edges, Edge{u, v})
		})
	}
	return MustNew(maxInt(n, 0), edges)
}

// BipartitePlusCliques overlays `count` disjoint k-cliques on a random
// bipartite background: high degeneracy and heavy communication loads, yet
// a clique population that is exactly the planted set plus the few cliques
// the overlay closes. The workload for the E1/E2/E4 round-shape sweeps.
func BipartitePlusCliques(n int, prob float64, k, count int, rng *rand.Rand) (*Graph, [][]V) {
	bg := RandomBipartite(n, prob, rng)
	edges := bg.Edges()
	if count*k > n {
		panic(fmt.Sprintf("graph: cannot plant %d cliques of size %d in %d vertices", count, k, n))
	}
	perm := rng.Perm(n)
	planted := make([][]V, 0, count)
	at := 0
	for c := 0; c < count; c++ {
		members := make([]V, k)
		for i := 0; i < k; i++ {
			members[i] = V(perm[at])
			at++
		}
		sortV(members)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				edges = append(edges, Edge{members[i], members[j]})
			}
		}
		planted = append(planted, members)
	}
	return MustNew(n, edges), planted
}

// Barbell returns two K_k cliques joined by a path of length bridgeLen
// (bridgeLen ≥ 1 edges). Useful as a worst case for mixing-time estimation
// and expander decomposition: the bridge must land in Er or Es.
func Barbell(k, bridgeLen int) *Graph {
	n := 2*k + maxInt(bridgeLen-1, 0)
	var edges []Edge
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			edges = append(edges, Edge{V(u), V(v)})
			edges = append(edges, Edge{V(k + u), V(k + v)})
		}
	}
	// Bridge from vertex 0 of clique A (ID k-1) to vertex 0 of clique B (ID k).
	prev := V(k - 1)
	for i := 0; i < bridgeLen-1; i++ {
		mid := V(2*k + i)
		edges = append(edges, Edge{prev, mid})
		prev = mid
	}
	edges = append(edges, Edge{prev, V(k)})
	return MustNew(n, edges)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sortV(s []V) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
