package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge-list text I/O: the interchange format of cmd/kplist. One "u v" pair
// per line, 0-based vertex IDs, '#' comments and blank lines ignored.

// WriteEdgeList writes g in edge-list format, with a header comment giving
// the vertex count.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# kplist edge list: n=%d m=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses an edge list over n vertices. Lines must hold two
// whitespace-separated non-negative integers; '#' starts a comment.
func ReadEdgeList(r io.Reader, n int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		switch len(fields) {
		case 0:
			continue
		case 2:
			u, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", line, err)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", line, err)
			}
			edges = append(edges, Edge{V(u), V(v)})
		default:
			return nil, fmt.Errorf("graph: line %d: want \"u v\", got %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(n, edges)
}
