package graph

import "math/rand"

// Extremal and adversarial generators: Turán graphs (the densest Kp-free
// graphs — worst-case communication load with zero output), and the dense
// lower-bound gadget family used in the Ω̃(n^{(p-2)/p}) argument of
// Fischer et al. (a Θ(√m)-vertex dense core whose listing output is
// maximal for its edge budget).

// Turan returns the Turán graph T(n, r): the complete r-partite graph on n
// vertices with parts as equal as possible. T(n, r) is the unique densest
// graph with no K_{r+1}; it maximizes communication load per round while
// producing zero K_{r+1} output, which makes it the adversarial workload
// for round-complexity measurements.
func Turan(n, r int) *Graph {
	if r < 1 || n < 1 {
		return MustNew(maxInt(n, 0), nil)
	}
	if r > n {
		r = n
	}
	part := make([]int, n)
	for v := 0; v < n; v++ {
		part[v] = v % r
	}
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if part[u] != part[v] {
				edges = append(edges, Edge{V(u), V(v)})
			}
		}
	}
	return MustNew(n, edges)
}

// LowerBoundGadget returns the Fischer-et-al-style hard instance for
// sparsity-aware Kp listing: a clique core on ⌊√(2m)⌋ vertices embedded in
// an n-vertex graph (the remaining vertices are isolated). The core packs
// Θ(m) edges and Θ(m^{p/2}) Kp instances — the maximum possible for the
// edge budget — forcing any listing algorithm to move Ω̃(m^{p/2}/n)
// information. It returns the graph and the core vertices.
func LowerBoundGadget(n, m int) (*Graph, []V) {
	core := 1
	for (core+1)*core/2 <= m {
		core++
	}
	if core > n {
		core = n
	}
	var edges []Edge
	count := 0
	for u := 0; u < core && count < m; u++ {
		for v := u + 1; v < core && count < m; v++ {
			edges = append(edges, Edge{V(u), V(v)})
			count++
		}
	}
	// Spend any leftover budget attaching the next vertex to the core, so
	// the graph has exactly min(m, C(n,2)) edges.
	for v := core; v < n && count < m; v++ {
		for u := 0; u < core && count < m; u++ {
			edges = append(edges, Edge{V(u), V(v)})
			count++
		}
	}
	members := make([]V, core)
	for i := range members {
		members[i] = V(i)
	}
	return MustNew(n, edges), members
}

// Caveman returns a connected caveman graph: `caves` cliques of size k,
// with one edge per clique rewired to the next clique to form a ring.
// A classic community-structure benchmark: maximal modularity, tiny
// conductance between caves — the decomposition must recover the caves.
func Caveman(caves, k int) *Graph {
	if caves < 1 || k < 2 {
		return MustNew(0, nil)
	}
	n := caves * k
	var edges []Edge
	for c := 0; c < caves; c++ {
		base := c * k
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				// Rewire the (0,1) edge of each cave to the next cave.
				if i == 0 && j == 1 && caves > 1 {
					continue
				}
				edges = append(edges, Edge{V(base + i), V(base + j)})
			}
		}
		if caves > 1 {
			next := ((c + 1) % caves) * k
			edges = append(edges, Edge{V(base), V(next + 1)})
		}
	}
	return MustNew(n, edges)
}

// NoisyTuran perturbs a Turán graph by adding each missing edge with
// probability eps — planting a controllable number of K_{r+1}s into an
// otherwise clique-free dense graph.
func NoisyTuran(n, r int, eps float64, rng *rand.Rand) *Graph {
	base := Turan(n, r)
	edges := base.Edges()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !base.HasEdge(V(u), V(v)) && rng.Float64() < eps {
				edges = append(edges, Edge{V(u), V(v)})
			}
		}
	}
	return MustNew(n, edges)
}

// TuranEdgeCount returns the number of edges of T(n, r) in closed form —
// used by tests as an oracle.
func TuranEdgeCount(n, r int) int {
	if r < 1 || n < 2 {
		return 0
	}
	if r > n {
		r = n
	}
	// Parts have sizes ⌈n/r⌉ (n mod r of them) and ⌊n/r⌋.
	q, rem := n/r, n%r
	inside := rem*(q+1)*q/2 + (r-rem)*q*(q-1)/2
	return n*(n-1)/2 - inside
}
