package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTuranCliqueFree(t *testing.T) {
	for _, tc := range []struct{ n, r int }{{12, 3}, {20, 4}, {15, 2}, {9, 9}} {
		g := Turan(tc.n, tc.r)
		if g.M() != TuranEdgeCount(tc.n, tc.r) {
			t.Errorf("T(%d,%d): m=%d, oracle says %d", tc.n, tc.r, g.M(), TuranEdgeCount(tc.n, tc.r))
		}
		if got := g.CountCliques(tc.r + 1); got != 0 {
			t.Errorf("T(%d,%d) contains %d K%d — should be none", tc.n, tc.r, got, tc.r+1)
		}
		// T(n,r) contains K_r (one vertex per part) whenever n ≥ r.
		if tc.n >= tc.r && g.CountCliques(tc.r) == 0 {
			t.Errorf("T(%d,%d) should contain a K%d", tc.n, tc.r, tc.r)
		}
	}
}

func TestTuranDegenerate(t *testing.T) {
	if Turan(0, 3).N() != 0 {
		t.Error("empty Turán")
	}
	if Turan(5, 0).M() != 0 {
		t.Error("r=0 should be edgeless")
	}
	if Turan(5, 8).M() != 10 {
		t.Error("r>n should clamp to complete graph")
	}
}

// Property: Turán is exactly K_{r+1}-free and its edge count matches the
// closed form.
func TestQuickTuran(t *testing.T) {
	f := func(nRaw, rRaw uint8) bool {
		n := 4 + int(nRaw%16)
		r := 2 + int(rRaw%4)
		g := Turan(n, r)
		return g.M() == TuranEdgeCount(n, r) && g.CountCliques(r+1) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLowerBoundGadget(t *testing.T) {
	g, core := LowerBoundGadget(100, 45)
	// 45 = C(10,2): the core is exactly K10.
	if len(core) != 10 {
		t.Fatalf("core size %d, want 10", len(core))
	}
	if g.M() != 45 {
		t.Errorf("m=%d, want 45", g.M())
	}
	if got := g.CountCliques(10); got != 1 {
		t.Errorf("expected exactly one K10, got %d", got)
	}
	// Tight budget: m that is not a binomial still fits.
	g2, core2 := LowerBoundGadget(100, 50)
	if g2.M() != 50 {
		t.Errorf("m=%d, want 50", g2.M())
	}
	if len(core2) != 10 {
		t.Errorf("core2 size %d, want 10 (C(11,2)=55 > 50)", len(core2))
	}
	// Core larger than n clamps.
	g3, core3 := LowerBoundGadget(5, 1000)
	if len(core3) != 5 || g3.M() != 10 {
		t.Error("clamped gadget wrong")
	}
}

func TestCavemanStructure(t *testing.T) {
	g := Caveman(4, 5)
	if g.N() != 20 {
		t.Fatalf("n=%d, want 20", g.N())
	}
	comps := g.ConnectedComponents()
	if len(comps) != 1 {
		t.Errorf("caveman should be connected, got %d components", len(comps))
	}
	// Each cave keeps its K4s on vertices {2,3,4} plus partial; count K5:
	// the rewired edge removes one edge per cave, so no full K5 remains.
	if got := g.CountCliques(5); got != 0 {
		t.Errorf("rewired caves should not be K5s, got %d", got)
	}
	if got := g.CountCliques(4); got == 0 {
		t.Error("caves should retain K4s")
	}
	if Caveman(0, 5).N() != 0 || Caveman(3, 1).N() != 0 {
		t.Error("degenerate caveman")
	}
	single := Caveman(1, 4)
	if single.CountCliques(4) != 1 {
		t.Error("single cave should be a complete K4")
	}
}

func TestNoisyTuranPlantsCliques(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	clean := Turan(30, 3)
	noisy := NoisyTuran(30, 3, 0.3, rng)
	if noisy.M() <= clean.M() {
		t.Error("noise should add edges")
	}
	if noisy.CountCliques(4) == 0 {
		t.Error("noise at eps=0.3 should create K4s")
	}
	same := NoisyTuran(30, 3, 0, rng)
	if same.M() != clean.M() {
		t.Error("eps=0 should not change the graph")
	}
}

func TestEdgeListIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := ErdosRenyi(50, 0.2, rng)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	back, err := ReadEdgeList(&buf, g.N())
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if back.M() != g.M() {
		t.Fatalf("round trip: m=%d, want %d", back.M(), g.M())
	}
	ea, eb := g.Edges(), back.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("1 2 3\n"), 5); err == nil {
		t.Error("three fields should error")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n"), 5); err == nil {
		t.Error("non-numeric should error")
	}
	if _, err := ReadEdgeList(strings.NewReader("0 9\n"), 5); err == nil {
		t.Error("out-of-range endpoint should error")
	}
	g, err := ReadEdgeList(strings.NewReader("# comment\n\n0 1 # trailing\n"), 3)
	if err != nil || g.M() != 1 {
		t.Errorf("comments/blanks should parse: %v, m=%d", err, g.M())
	}
}
