package graph

// GraphStore orchestrates one graph's durable state: an immutable
// snapshot file (snap-<epoch>.kpsnap) plus a WAL of committed mutation
// batches with sequence numbers above the snapshot epoch. Recovery opens
// the newest valid snapshot and replays the WAL tail through a DynGraph,
// so a restarted process serves exactly the batches it acknowledged —
// never a torn one. Compaction folds the log into a fresh snapshot and
// resets it; the rename is the commit point, so a crash at any step
// leaves either the old snapshot+log or the new snapshot.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"kplist/internal/store"
)

const (
	snapPrefix = "snap-"
	snapSuffix = ".kpsnap"
	walName    = "wal.log"
)

// StoreConfig tunes one graph's durable store.
type StoreConfig struct {
	// CompactRecords and CompactBytes trigger compaction when the WAL
	// exceeds either bound (0 means the built-in default; negative
	// disables that bound).
	CompactRecords int64
	CompactBytes   int64
	// NoSync disables per-append fsync — tests and throughput
	// benchmarks only; a crash may then lose acknowledged batches.
	NoSync bool
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.CompactRecords == 0 {
		c.CompactRecords = 4096
	}
	if c.CompactBytes == 0 {
		c.CompactBytes = 16 << 20
	}
	return c
}

// RecoveryStats describes one store open: what was on disk and what
// replay did with it.
type RecoveryStats struct {
	SnapshotLoaded bool
	SnapshotEpoch  uint64
	WALRecords     int64 // records replayed from the tail
	WALTorn        bool  // a crashed append was truncated
	WALCorrupt     bool  // mid-log corruption was truncated
	Elapsed        time.Duration
}

// GraphStore is one graph's open durable backing. Appends serialize on
// the caller (the server's per-graph mutation lock); GraphStore adds no
// locking of its own. The graph OpenGraphStore returns is heap-owned —
// no mapping outlives the open — so Close is safe at any time, even
// while recovered graphs still serve in-flight reads.
type GraphStore struct {
	dir string
	cfg StoreConfig
	wal *store.WAL
}

// CreateGraphStore initializes dir (creating it) with a snapshot of g at
// epoch 0 and an empty WAL, returning the open store.
func CreateGraphStore(dir string, g *Graph, cfg StoreConfig) (*GraphStore, error) {
	return CreateGraphStoreAt(dir, g, 0, cfg)
}

// CreateGraphStoreAt initializes dir with a snapshot of g at the given
// epoch. A non-zero epoch is the replica-repair install path: the
// snapshot adopts the owner's applied-batch sequence number, so the WAL
// numbers future batches past it and recovery restores the replica at
// the owner's position in the batch stream rather than restarting at 0.
func CreateGraphStoreAt(dir string, g *Graph, epoch uint64, cfg StoreConfig) (*GraphStore, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := WriteGraphSnapshot(snapPath(dir, epoch), g, epoch); err != nil {
		return nil, err
	}
	wal, _, err := store.OpenWAL(filepath.Join(dir, walName), cfg.NoSync)
	if err != nil {
		return nil, err
	}
	wal.AdvanceSeq(epoch)
	return &GraphStore{dir: dir, cfg: cfg, wal: wal}, nil
}

// OpenGraphStore recovers the store in dir: newest valid snapshot, then
// every WAL record past its epoch replayed through a DynGraph. The
// returned graph reflects exactly the acknowledged batches. Snapshots
// that fail validation are skipped (older ones tried in turn); a store
// with no usable snapshot errors.
func OpenGraphStore(dir string, cfg StoreConfig) (*GraphStore, *Graph, RecoveryStats, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	var stats RecoveryStats

	epochs, err := snapshotEpochs(dir)
	if err != nil {
		return nil, nil, stats, err
	}
	var gs *GraphSnapshot
	var openErr error
	for i := len(epochs) - 1; i >= 0; i-- {
		gs, openErr = OpenGraphSnapshot(snapPath(dir, epochs[i]))
		if openErr == nil {
			break
		}
		gs = nil
	}
	if gs == nil {
		if openErr == nil {
			openErr = fmt.Errorf("graph: no snapshot in %s", dir)
		}
		return nil, nil, stats, openErr
	}
	stats.SnapshotLoaded = true
	stats.SnapshotEpoch = gs.Epoch()

	wal, scan, err := store.OpenWAL(filepath.Join(dir, walName), cfg.NoSync)
	if err != nil {
		gs.Close()
		return nil, nil, stats, err
	}
	stats.WALTorn = scan.Torn
	stats.WALCorrupt = scan.Corrupt
	wal.AdvanceSeq(gs.Epoch())

	g := gs.Graph()
	var dyn *DynGraph
	for _, rec := range scan.Records {
		if rec.Seq <= gs.Epoch() {
			continue // already folded into the snapshot
		}
		muts, err := DecodeWALBatch(rec.Payload)
		if err != nil {
			wal.Close()
			gs.Close()
			return nil, nil, stats, fmt.Errorf("graph: WAL record %d: %w", rec.Seq, err)
		}
		if dyn == nil {
			dyn = NewDynGraph(g, DynConfig{})
		}
		if _, err := dyn.ApplyBatch(muts); err != nil {
			wal.Close()
			gs.Close()
			return nil, nil, stats, fmt.Errorf("graph: replaying WAL record %d: %w", rec.Seq, err)
		}
		stats.WALRecords++
	}
	if dyn != nil {
		// Replay rebuilt the graph on the heap (DynGraph clones every row
		// up front); nothing aliases the mapping.
		g = dyn.Snapshot()
	} else {
		// The snapshot-backed graph aliases the mapping, but the store
		// must be closable (DELETE, shutdown) while the recovered graph is
		// still serving in-flight reads — an unmap under a live reader is
		// a segfault, and no layer above tracks the last reader. Hand out
		// a heap copy instead; the stored kernel is still adopted, so
		// recovery never pays the peel.
		g = gs.Materialize()
	}
	gs.Close()
	stats.Elapsed = time.Since(start)
	return &GraphStore{dir: dir, cfg: cfg, wal: wal}, g, stats, nil
}

// AppendBatch logs one effective mutation batch, durably unless the
// store is NoSync. It is the DynGraph commit hook's body.
func (s *GraphStore) AppendBatch(muts []Mutation) error {
	_, err := s.wal.Append(EncodeWALBatch(muts))
	return err
}

// LastSeq returns the WAL's current sequence number.
func (s *GraphStore) LastSeq() uint64 { return s.wal.LastSeq() }

// WALRecords returns how many unfolded records the WAL holds.
func (s *GraphStore) WALRecords() int64 { return s.wal.Records() }

// ShouldCompact reports whether the WAL has outgrown its configured
// bounds and the next quiet moment should fold it into a snapshot.
func (s *GraphStore) ShouldCompact() bool {
	if s.cfg.CompactRecords > 0 && s.wal.Records() >= s.cfg.CompactRecords {
		return true
	}
	return s.cfg.CompactBytes > 0 && s.wal.Size() >= s.cfg.CompactBytes
}

// Compact writes g — which must reflect every logged batch — as a fresh
// snapshot at the WAL's current sequence number, then resets the log and
// removes older snapshots. The snapshot rename is the commit point: a
// crash before it keeps the old snapshot+log; a crash after it recovers
// from the new snapshot, skipping the stale records still in the log.
func (s *GraphStore) Compact(g *Graph) error {
	epoch := s.wal.LastSeq()
	if err := WriteGraphSnapshot(snapPath(s.dir, epoch), g, epoch); err != nil {
		return err
	}
	if err := s.wal.Reset(); err != nil {
		return err
	}
	epochs, err := snapshotEpochs(s.dir)
	if err != nil {
		return err
	}
	for _, e := range epochs {
		if e < epoch {
			if err := os.Remove(snapPath(s.dir, e)); err != nil && !errors.Is(err, os.ErrNotExist) {
				return err
			}
		}
	}
	return nil
}

// Sync flushes the WAL — the graceful-shutdown hook for NoSync stores.
func (s *GraphStore) Sync() error { return s.wal.Sync() }

// Dir returns the store's directory.
func (s *GraphStore) Dir() string { return s.dir }

// Close releases the WAL. The graph returned by OpenGraphStore is
// heap-owned and stays valid after Close.
func (s *GraphStore) Close() error {
	return s.wal.Close()
}

func snapPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", snapPrefix, epoch, snapSuffix))
}

// snapshotEpochs lists the epochs of the snapshot files in dir,
// ascending. Files that merely look like snapshots but do not parse are
// ignored (a crashed temp file never matches the pattern anyway).
func snapshotEpochs(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var epochs []uint64
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		mid := name[len(snapPrefix) : len(name)-len(snapSuffix)]
		e, err := strconv.ParseUint(mid, 10, 64)
		if err != nil {
			continue
		}
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}
