package graph

import (
	"math/rand"
	"testing"
)

func TestNewBasics(t *testing.T) {
	g, err := New(5, []Edge{{0, 1}, {1, 0}, {2, 2}, {3, 4}, {1, 2}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if g.N() != 5 {
		t.Errorf("N = %d, want 5", g.N())
	}
	if g.M() != 3 {
		t.Errorf("M = %d, want 3 (duplicate and self-loop dropped)", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge {0,1} missing")
	}
	if g.HasEdge(2, 2) {
		t.Error("self-loop should not exist")
	}
	if g.HasEdge(0, 4) {
		t.Error("phantom edge {0,4}")
	}
	if d := g.Degree(1); d != 2 {
		t.Errorf("Degree(1) = %d, want 2", d)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(-1, nil); err == nil {
		t.Error("negative n should error")
	}
	if _, err := New(3, []Edge{{0, 5}}); err == nil {
		t.Error("out-of-range endpoint should error")
	}
	if _, err := New(3, []Edge{{-1, 0}}); err == nil {
		t.Error("negative endpoint should error")
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := MustNew(4, []Edge{{3, 1}, {2, 0}, {1, 0}})
	edges := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {1, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges() = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestEdgeCanonAndOther(t *testing.T) {
	e := Edge{5, 2}.Canon()
	if e != (Edge{2, 5}) {
		t.Errorf("Canon = %v", e)
	}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Error("Other endpoints wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other with non-endpoint should panic")
		}
	}()
	e.Other(7)
}

func TestCommonNeighbors(t *testing.T) {
	g := Complete(5)
	cn := g.CommonNeighbors(0, 1)
	want := []V{2, 3, 4}
	if len(cn) != 3 {
		t.Fatalf("CommonNeighbors = %v, want %v", cn, want)
	}
	for i := range want {
		if cn[i] != want[i] {
			t.Errorf("cn[%d] = %d, want %d", i, cn[i], want[i])
		}
	}
}

func TestIntersectSorted(t *testing.T) {
	cases := []struct {
		a, b, want []V
	}{
		{nil, nil, nil},
		{[]V{1, 2, 3}, nil, nil},
		{[]V{1, 2, 3}, []V{2, 3, 4}, []V{2, 3}},
		{[]V{1, 5, 9}, []V{2, 6, 10}, nil},
		{[]V{1, 2, 3}, []V{1, 2, 3}, []V{1, 2, 3}},
	}
	for _, c := range cases {
		got := IntersectSorted(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("Intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("Intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(6)
	sub, orig, err := g.InducedSubgraph([]V{1, 3, 5})
	if err != nil {
		t.Fatalf("InducedSubgraph: %v", err)
	}
	if sub.N() != 3 || sub.M() != 3 {
		t.Errorf("sub has n=%d m=%d, want 3,3", sub.N(), sub.M())
	}
	if orig[0] != 1 || orig[1] != 3 || orig[2] != 5 {
		t.Errorf("orig mapping = %v", orig)
	}
	if _, _, err := g.InducedSubgraph([]V{1, 1}); err == nil {
		t.Error("duplicate vertex should error")
	}
	if _, _, err := g.InducedSubgraph([]V{99}); err == nil {
		t.Error("out-of-range vertex should error")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := MustNew(7, []Edge{{0, 1}, {1, 2}, {3, 4}})
	comps := g.ConnectedComponents()
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4: %v", len(comps), comps)
	}
	sizes := []int{3, 2, 1, 1}
	for i, c := range comps {
		if len(c) != sizes[i] {
			t.Errorf("component %d = %v, want size %d", i, c, sizes[i])
		}
	}
}

func TestMaxAvgDegree(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Errorf("AvgDegree = %v, want 1.5", got)
	}
	empty := MustNew(0, nil)
	if empty.AvgDegree() != 0 || empty.MaxDegree() != 0 {
		t.Error("empty graph degrees should be 0")
	}
}

func TestEdgeListNormalize(t *testing.T) {
	el := NewEdgeList([]Edge{{2, 1}, {1, 2}, {0, 0}, {3, 0}})
	if len(el) != 2 {
		t.Fatalf("normalized length = %d, want 2 (%v)", len(el), el)
	}
	if el[0] != (Edge{0, 3}) || el[1] != (Edge{1, 2}) {
		t.Errorf("normalized = %v", el)
	}
	if !el.Contains(Edge{2, 1}) {
		t.Error("Contains should canonicalize its argument")
	}
	if el.Contains(Edge{0, 1}) {
		t.Error("phantom containment")
	}
}

func TestEdgeListSetOps(t *testing.T) {
	a := NewEdgeList([]Edge{{0, 1}, {1, 2}, {2, 3}})
	b := NewEdgeList([]Edge{{1, 2}, {3, 4}})
	u := Union(a, b)
	if len(u) != 4 {
		t.Errorf("Union = %v", u)
	}
	d := Subtract(a, b)
	if len(d) != 2 || !d.Contains(Edge{0, 1}) || !d.Contains(Edge{2, 3}) {
		t.Errorf("Subtract = %v", d)
	}
	if Disjoint(a, b) {
		t.Error("a,b share {1,2}")
	}
	if !Disjoint(d, b) {
		t.Error("d,b should be disjoint")
	}
}

func TestAdjacencyView(t *testing.T) {
	el := NewEdgeList([]Edge{{0, 1}, {1, 2}, {0, 2}})
	av, err := NewAdjacencyView(4, el)
	if err != nil {
		t.Fatalf("NewAdjacencyView: %v", err)
	}
	if av.Degree(1) != 2 || av.Degree(3) != 0 {
		t.Errorf("degrees wrong: deg1=%d deg3=%d", av.Degree(1), av.Degree(3))
	}
	if !av.HasEdge(0, 2) || av.HasEdge(1, 3) || av.HasEdge(2, 2) {
		t.Error("HasEdge wrong")
	}
	if _, err := NewAdjacencyView(2, el); err == nil {
		t.Error("out-of-range should error")
	}
}

func TestSubtractIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := ErdosRenyi(40, 0.2, rng)
	all := NewEdgeList(g.Edges())
	half := all[:len(all)/2]
	rest := Subtract(all, half)
	if len(rest)+len(half) != len(all) {
		t.Fatalf("partition sizes: %d + %d != %d", len(rest), len(half), len(all))
	}
	if !Disjoint(rest, half) {
		t.Error("Subtract result overlaps subtrahend")
	}
	back := Union(rest, half)
	if len(back) != len(all) {
		t.Error("Union(Subtract) does not restore")
	}
}
