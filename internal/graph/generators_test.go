package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestErdosRenyiEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n, p := 400, 0.05
	g := ErdosRenyi(n, p, rng)
	expect := p * float64(n) * float64(n-1) / 2
	got := float64(g.M())
	if math.Abs(got-expect) > 5*math.Sqrt(expect) {
		t.Errorf("M = %v, expected about %v", got, expect)
	}
	if g.N() != n {
		t.Errorf("N = %d", g.N())
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if g := ErdosRenyi(10, 0, rng); g.M() != 0 {
		t.Error("p=0 should give empty graph")
	}
	if g := ErdosRenyi(10, 1, rng); g.M() != 45 {
		t.Errorf("p=1 should give complete graph, m=%d", g.M())
	}
	if g := ErdosRenyi(1, 0.5, rng); g.N() != 1 || g.M() != 0 {
		t.Error("single vertex graph wrong")
	}
	if g := ErdosRenyi(0, 0.5, rng); g.N() != 0 {
		t.Error("empty graph wrong")
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(100, 0.1, rand.New(rand.NewSource(77)))
	b := ErdosRenyi(100, 0.1, rand.New(rand.NewSource(77)))
	if a.M() != b.M() {
		t.Fatal("same seed should give same graph")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed should give identical edge lists")
		}
	}
}

func TestPairFromIndexCoversAllPairs(t *testing.T) {
	n := 7
	seen := make(map[Edge]bool)
	total := int64(n * (n - 1) / 2)
	for k := int64(0); k < total; k++ {
		u, v := PairFromIndex(k, n)
		if u >= v || v >= V(n) || u < 0 {
			t.Fatalf("PairFromIndex(%d) = (%d,%d) invalid", k, u, v)
		}
		e := Edge{u, v}
		if seen[e] {
			t.Fatalf("pair %v repeated", e)
		}
		seen[e] = true
	}
	if int64(len(seen)) != total {
		t.Fatalf("covered %d pairs, want %d", len(seen), total)
	}
}

func TestGNMExactCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := GNM(50, 300, rng)
	if g.M() != 300 {
		t.Errorf("GNM m = %d, want 300", g.M())
	}
	full := GNM(10, 1000, rng)
	if full.M() != 45 {
		t.Errorf("GNM overflow should clamp to complete graph, m=%d", full.M())
	}
}

func TestCompleteAndCycleAndPath(t *testing.T) {
	if g := Complete(6); g.M() != 15 || g.MaxDegree() != 5 {
		t.Error("K6 wrong")
	}
	if g := Cycle(8); g.M() != 8 || g.MaxDegree() != 2 {
		t.Error("C8 wrong")
	}
	if g := Cycle(2); g.M() != 0 {
		t.Error("C2 should be empty")
	}
	if g := Path(5); g.M() != 4 {
		t.Error("P5 wrong")
	}
	if g := Path(0); g.N() != 0 {
		t.Error("P0 wrong")
	}
}

func TestPlantedCliquesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, planted := PlantedCliques(100, 6, 4, 0.02, rng)
	if len(planted) != 4 {
		t.Fatalf("planted %d cliques, want 4", len(planted))
	}
	used := make(map[V]bool)
	for _, c := range planted {
		if len(c) != 6 {
			t.Fatalf("clique size %d, want 6", len(c))
		}
		for i, u := range c {
			if used[u] {
				t.Fatalf("vertex %d in two planted cliques", u)
			}
			used[u] = true
			for _, v := range c[i+1:] {
				if !g.HasEdge(u, v) {
					t.Fatalf("planted edge {%d,%d} missing", u, v)
				}
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("overfull planting should panic")
		}
	}()
	PlantedCliques(10, 5, 3, 0, rng)
}

func TestChungLuAverageDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 300
	w := make([]float64, n)
	for i := range w {
		w[i] = 10
	}
	g := ChungLu(w, rng)
	// Expected average degree ≈ 10 (w_u w_v / sum over all pairs).
	if got := g.AvgDegree(); math.Abs(got-10) > 2 {
		t.Errorf("ChungLu avg degree = %v, want about 10", got)
	}
	empty := ChungLu([]float64{0, 0, 0}, rng)
	if empty.M() != 0 {
		t.Error("zero weights should give empty graph")
	}
}

func TestPowerLawWeights(t *testing.T) {
	w := PowerLawWeights(1000, 2.5, 8)
	sum := 0.0
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Fatal("weights should be non-increasing")
		}
		sum += w[i]
	}
	sum += w[0]
	avg := sum / float64(len(w))
	if math.Abs(avg-8) > 1e-9 {
		t.Errorf("mean weight = %v, want 8", avg)
	}
}

func TestRandomRegularDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := RandomRegular(200, 8, rng)
	if g.MaxDegree() > 8 {
		t.Errorf("max degree %d exceeds 8", g.MaxDegree())
	}
	if g.AvgDegree() < 7 {
		t.Errorf("avg degree %v too far below 8", g.AvgDegree())
	}
}

func TestBarbellStructure(t *testing.T) {
	g := Barbell(5, 3)
	if g.N() != 12 {
		t.Fatalf("barbell n = %d, want 12", g.N())
	}
	// Two K5s: each contributes C(5,2)=10 edges; bridge adds 3.
	if g.M() != 23 {
		t.Errorf("barbell m = %d, want 23", g.M())
	}
	comps := g.ConnectedComponents()
	if len(comps) != 1 {
		t.Errorf("barbell should be connected, got %d components", len(comps))
	}
	if got := g.CountCliques(5); got != 2 {
		t.Errorf("barbell K5 count = %d, want 2", got)
	}
}
