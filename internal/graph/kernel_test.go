package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestKernelParallelByteIdentical: the listing must be byte-identical for
// every worker count — the acceptance invariant behind all goldens.
func TestKernelParallelByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		n := 30 + rng.Intn(90)
		g := ErdosRenyi(n, 0.1+0.3*rng.Float64(), rng)
		for p := 2; p <= 5; p++ {
			want := g.ListCliquesWorkers(p, 1)
			for _, workers := range []int{2, 3, 8} {
				got := g.ListCliquesWorkers(p, workers)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d n=%d p=%d workers=%d: output differs from sequential",
						trial, n, p, workers)
				}
			}
		}
	}
}

// TestKernelCountMatchesList: the counting mode (which never materializes
// or sorts) must agree with the listing on every graph and worker count.
func TestKernelCountMatchesList(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		g := ErdosRenyi(40+rng.Intn(60), 0.35, rng)
		for p := 2; p <= 5; p++ {
			want := int64(len(g.ListCliques(p)))
			for _, workers := range []int{1, 4} {
				if got := g.CountCliquesWorkers(p, workers); got != want {
					t.Fatalf("trial %d p=%d workers=%d: count %d, list %d", trial, p, workers, got, want)
				}
			}
		}
	}
}

// TestKernelSteadyStateZeroAlloc is the alloc-regression canary the CI
// bench-smoke job pins: once the kernel is built (one warm-up call), the
// single-worker counting enumeration must not allocate at all.
func TestKernelSteadyStateZeroAlloc(t *testing.T) {
	g := ErdosRenyi(128, 0.4, rand.New(rand.NewSource(5)))
	if g.CountCliquesWorkers(4, 1) == 0 {
		t.Fatal("degenerate benchmark graph: no K4s")
	}
	allocs := testing.AllocsPerRun(5, func() {
		g.CountCliquesWorkers(4, 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state kernel count allocated %.1f objects/op, want 0", allocs)
	}
}

// TestVisitCliquesUntil: early termination stops the enumeration and
// reports it; completion reports true.
func TestVisitCliquesUntil(t *testing.T) {
	g := Complete(8)
	seen := 0
	if done := g.VisitCliquesUntil(3, func(Clique) bool {
		seen++
		return seen < 10
	}); done {
		t.Error("aborted enumeration reported completion")
	}
	if seen != 10 {
		t.Errorf("aborted after %d cliques, want 10", seen)
	}
	total := 0
	if done := g.VisitCliquesUntil(3, func(Clique) bool { total++; return true }); !done {
		t.Error("complete enumeration reported abort")
	}
	if total != 56 { // C(8,3)
		t.Errorf("listed %d triangles of K8, want 56", total)
	}
}

// TestLocalListerSparseIDs drives the binary-search remap path (vertex
// IDs far apart) and the radix-sort fallback (IDs beyond the counting
// bound), plus negative-endpoint filtering.
func TestLocalListerSparseIDs(t *testing.T) {
	const big = 1 << 20 // beyond sortPackedMaxID
	edges := []Edge{
		{0, big}, {0, 2 * big}, {big, 2 * big}, // triangle with huge spread
		{0, 7}, {7, big}, // extra edges
		{-3, 4}, {4, -1}, // dropped: negative endpoints
	}
	ll := NewLocalLister(edges)
	tri := ll.ListCliques(3)
	if len(tri) != 2 {
		t.Fatalf("listed %d triangles, want 2 ({0,7,big} and {0,big,2big}): %v", len(tri), tri)
	}
	want := []Clique{{0, 7, big}, {0, big, 2 * big}}
	if !reflect.DeepEqual(tri, want) {
		t.Fatalf("triangles = %v, want %v", tri, want)
	}
	if ll.HasEdge(-3, 4) || ll.HasEdge(4, -1) {
		t.Error("negative-endpoint edges must be dropped")
	}
	if !ll.HasEdge(0, big) || ll.Neighbors(V(big))[0] != 0 {
		t.Error("sparse-ID adjacency broken")
	}
}

// TestLocalListerAddCliques: the keyed fast path must build exactly the
// set VisitCliques + CliqueSet.Add would.
func TestLocalListerAddCliques(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := ErdosRenyi(50, 0.3, rng)
	ll := NewLocalLister(g.Edges())
	for p := 3; p <= 4; p++ {
		fast := make(CliqueSet)
		ll.AddCliques(p, fast)
		slow := make(CliqueSet)
		ll.VisitCliques(p, func(c Clique) { slow.Add(c) })
		if !fast.Equal(slow) {
			t.Fatalf("p=%d: AddCliques diverges from VisitCliques (%d vs %d)", p, fast.Len(), slow.Len())
		}
	}
}

// TestKernelDegenerateInputs: tiny and empty shapes must not panic and
// must agree with first principles.
func TestKernelDegenerateInputs(t *testing.T) {
	empty := MustNew(0, nil)
	if got := empty.ListCliques(3); got != nil {
		t.Errorf("empty graph listed %v", got)
	}
	single := MustNew(1, nil)
	if got := single.CountCliques(2); got != 0 {
		t.Errorf("K1 has %d edges?", got)
	}
	if got := single.ListCliques(1); len(got) != 1 {
		t.Errorf("K1 vertices = %v", got)
	}
	if ll := NewLocalLister(nil); ll.ListCliques(3) != nil {
		t.Error("empty lister listed cliques")
	}
	// p = 2 lists exactly the edge set.
	g := MustNew(5, []Edge{{0, 1}, {1, 2}, {3, 4}})
	if got := g.ListCliques(2); len(got) != 3 {
		t.Errorf("p=2 listed %v, want the 3 edges", got)
	}
}
