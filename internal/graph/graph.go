// Package graph provides the graph substrate used throughout kplist: a
// compact adjacency representation, random-graph generators, degeneracy
// peeling and arboricity-bounded orientations, and exact sequential clique
// enumeration used as ground truth by every integration test.
//
// Vertices are dense integers in [0, N). The representation is immutable
// once built; algorithm phases that remove edges build new Graph values or
// operate on EdgeList views.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// V is a vertex identifier. Vertices are dense in [0, N).
type V = int32

// Edge is an undirected edge in canonical form (U < V).
type Edge struct {
	U, V V
}

// Canon returns e with endpoints swapped if needed so that U < V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Other returns the endpoint of e that is not w. It panics if w is not an
// endpoint; callers hold edges they obtained from the graph, so a mismatch
// is a programming error.
func (e Edge) Other(w V) V {
	switch w {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", w, e))
}

func (e Edge) String() string {
	return fmt.Sprintf("{%d,%d}", e.U, e.V)
}

// Pack packs a canonical edge into one sortable uint64 key (U in the high
// half); UnpackEdge reverses it. Callers must canonicalize first.
func (e Edge) Pack() uint64 { return uint64(uint32(e.U))<<32 | uint64(uint32(e.V)) }

// UnpackEdge reverses Edge.Pack.
func UnpackEdge(k uint64) Edge { return Edge{U: V(k >> 32), V: V(uint32(k))} }

// Graph is an immutable undirected simple graph with vertices [0, n).
// Neighbor lists are sorted ascending, enabling O(log d) adjacency tests
// and linear-time sorted intersections.
type Graph struct {
	n   int
	m   int
	adj [][]V

	// kern caches the clique-enumeration kernel (flat CSR of the
	// degeneracy DAG), built lazily on the first listing call and shared
	// by every subsequent one — the graph is immutable, so the kernel
	// never invalidates.
	kern atomic.Pointer[kernel]
}

// New builds a graph with n vertices from an edge list. Duplicate edges and
// self-loops are ignored. Endpoints outside [0,n) yield an error.
func New(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	deg := make([]int, n)
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge %v out of range [0,%d)", e, n)
		}
		if e.U == e.V {
			continue
		}
		deg[e.U]++
		deg[e.V]++
	}
	adj := make([][]V, n)
	for v := range adj {
		adj[v] = make([]V, 0, deg[v])
	}
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	m := 0
	for v := range adj {
		adj[v] = sortDedup(adj[v])
		m += len(adj[v])
	}
	return &Graph{n: n, m: m / 2, adj: adj}, nil
}

// MustNew is New but panics on error; for tests and literals with known-good
// inputs.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func sortDedup(s []V) []V {
	if len(s) == 0 {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v V) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree in g (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if len(g.adj[v]) > max {
			max = len(g.adj[v])
		}
	}
	return max
}

// Neighbors returns the sorted neighbor list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v V) []V { return g.adj[v] }

// HasEdge reports whether {u,v} is an edge, via binary search on the shorter
// neighbor list.
func (g *Graph) HasEdge(u, v V) bool {
	if u == v {
		return false
	}
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a, v = g.adj[v], u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// Edges returns all edges in canonical form, sorted by (U, V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if V(u) < v {
				out = append(out, Edge{V(u), v})
			}
		}
	}
	return out
}

// AvgDegree returns 2m/n, or 0 for the empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// CommonNeighbors returns the sorted intersection of the neighbor lists of
// u and v.
func (g *Graph) CommonNeighbors(u, v V) []V {
	return IntersectSorted(g.adj[u], g.adj[v])
}

// IntersectSorted returns the intersection of two ascending sorted slices.
func IntersectSorted(a, b []V) []V {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make([]V, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// ContainsSorted reports whether x occurs in the ascending sorted slice s.
func ContainsSorted(s []V, x V) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// InducedSubgraph returns the subgraph induced by the given vertex set,
// along with the mapping from new vertex IDs [0,len(vs)) back to original
// IDs. Duplicate vertices in vs are an error.
func (g *Graph) InducedSubgraph(vs []V) (*Graph, []V, error) {
	idx := make(map[V]V, len(vs))
	orig := make([]V, len(vs))
	for i, v := range vs {
		if v < 0 || int(v) >= g.n {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range", v)
		}
		if _, dup := idx[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		idx[v] = V(i)
		orig[i] = v
	}
	var edges []Edge
	for i, v := range vs {
		for _, w := range g.adj[v] {
			j, ok := idx[w]
			if ok && V(i) < j {
				edges = append(edges, Edge{V(i), j})
			}
		}
	}
	sub, err := New(len(vs), edges)
	if err != nil {
		return nil, nil, err
	}
	return sub, orig, nil
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted ascending, in order of smallest member.
func (g *Graph) ConnectedComponents() [][]V {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]V
	queue := make([]V, 0, g.n)
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(comps)
		comp[s] = id
		queue = append(queue[:0], V(s))
		members := []V{V(s)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[v] {
				if comp[w] == -1 {
					comp[w] = id
					queue = append(queue, w)
					members = append(members, w)
				}
			}
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		comps = append(comps, members)
	}
	return comps
}
