package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// The kernel benchmark workloads: one representative per sparsity regime.
// Sizes are chosen so the full matrix stays in seconds; -short shrinks the
// dense instance, which dominates.
func benchKernelGraphs(short bool) []struct {
	name string
	g    *Graph
} {
	denseN := 256
	if short {
		denseN = 96
	}
	return []struct {
		name string
		g    *Graph
	}{
		{"sparse", ErdosRenyi(1024, 0.02, rand.New(rand.NewSource(1)))},
		{fmt.Sprintf("dense_n%d", denseN), ErdosRenyi(denseN, 0.4, rand.New(rand.NewSource(2)))},
		{"planted", mustPlanted(512, 5, 8, 0.05, 3)},
	}
}

func mustPlanted(n, k, count int, bg float64, seed int64) *Graph {
	g, _ := PlantedCliques(n, k, count, bg, rand.New(rand.NewSource(seed)))
	return g
}

// BenchmarkListCliques is the end-to-end listing path (materialized,
// sorted output) across the sparsity regimes and worker counts. The
// output is byte-identical for every worker count; only wall-clock
// changes.
func BenchmarkListCliques(b *testing.B) {
	for _, tc := range benchKernelGraphs(testing.Short()) {
		for _, p := range []int{3, 4} {
			for _, workers := range []int{1, 8} {
				b.Run(fmt.Sprintf("%s/p=%d/workers=%d", tc.name, p, workers), func(b *testing.B) {
					b.ReportAllocs()
					var total int
					for i := 0; i < b.N; i++ {
						total += len(tc.g.ListCliquesWorkers(p, workers))
					}
					_ = total
				})
			}
		}
	}
}

// BenchmarkKernelCount is the steady-state kernel benchmark the
// alloc-regression canary pins: single worker, counting mode, kernel and
// arenas warm — 0 allocs/op is the contract (see
// TestKernelSteadyStateZeroAlloc for the hard assertion).
func BenchmarkKernelCount(b *testing.B) {
	for _, tc := range benchKernelGraphs(testing.Short()) {
		b.Run(fmt.Sprintf("%s/p=4", tc.name), func(b *testing.B) {
			tc.g.CountCliquesWorkers(4, 1) // build kernel + arena outside the loop
			b.ReportAllocs()
			b.ResetTimer()
			var total int64
			for i := 0; i < b.N; i++ {
				total += tc.g.CountCliquesWorkers(4, 1)
			}
			_ = total
		})
	}
}

// BenchmarkLocalLister measures the per-node local listing path the
// engines run: index an edge list, then enumerate.
func BenchmarkLocalLister(b *testing.B) {
	for _, tc := range benchKernelGraphs(testing.Short()) {
		edges := tc.g.Edges()
		b.Run(fmt.Sprintf("%s/p=4", tc.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ll := NewLocalLister(edges)
				n := 0
				ll.VisitCliques(4, func(Clique) { n++ })
				_ = n
			}
		})
	}
}
