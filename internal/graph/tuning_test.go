package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// The tuning invariant (DESIGN.md §11): every knob is a pure performance
// trade-off, so the listing output is byte-identical under every legal
// profile. These tests pin that with differential runs of the kernel and
// a metamorphic churn run of the incremental engine under profiles chosen
// to force each alternative code path (bitmaps off, bitmaps everywhere,
// merge-only, probe-happy, chunk=1, rebuild-always, rebuild-never).

func TestDefaultTuningMatchesConstants(t *testing.T) {
	d := DefaultTuning()
	if d.RowMaxN != kernelRowMaxN || d.RowMinOut != kernelRowMinOut ||
		d.BitsetCut != kernelBitsetCut || d.RootChunk != kernelRootChunk {
		t.Errorf("kernel defaults drifted from shipped constants: %+v", d)
	}
	if d.RebuildFraction != DefaultRebuildFraction || d.RebuildMinBatch != DefaultRebuildMinBatch {
		t.Errorf("dynamic-engine defaults drifted from shipped constants: %+v", d)
	}
	if d.SessionPoolSize != defaultSessionPoolSize || d.BatchWorkers != defaultBatchWorkers {
		t.Errorf("serving-layer defaults drifted from shipped constants: %+v", d)
	}
}

func TestSetTuningRestoreAndDefaults(t *testing.T) {
	orig := CurrentTuning()
	defer SetTuning(orig)

	prev := SetTuning(Tuning{BitsetCut: 5})
	if prev != orig {
		t.Errorf("SetTuning returned %+v as prev, want %+v", prev, orig)
	}
	got := CurrentTuning()
	if got.BitsetCut != 5 {
		t.Errorf("BitsetCut not applied: %+v", got)
	}
	// Zero fields fill from defaults, so partial profiles compose.
	if got.RowMaxN != DefaultTuning().RowMaxN || got.RebuildMinBatch != DefaultTuning().RebuildMinBatch {
		t.Errorf("zero fields not defaulted: %+v", got)
	}
	// SetTuning(Tuning{}) restores the defaults outright.
	SetTuning(Tuning{})
	if cur := CurrentTuning(); cur != DefaultTuning() {
		t.Errorf("SetTuning(Tuning{}) = %+v, want defaults %+v", cur, DefaultTuning())
	}
}

func TestTuningValidate(t *testing.T) {
	good := []Tuning{{}, DefaultTuning(), {BitsetCut: 1, RootChunk: 128}, {RowMinOut: 1 << 30}}
	for _, tn := range good {
		if err := tn.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", tn, err)
		}
	}
	bad := []Tuning{{RowMaxN: -1}, {RowMinOut: -2}, {BitsetCut: -1}, {RootChunk: -4}, {RebuildMinBatch: -8}, {SessionPoolSize: -1}, {BatchWorkers: -2}}
	for _, tn := range bad {
		if err := tn.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", tn)
		}
	}
}

// extremeProfiles are tunings that force each alternative strategy in the
// kernel: no row bitmaps at all, bitmaps for every row, never probing
// (merge only), probing almost always, and pathological chunking.
func extremeProfiles() map[string]Tuning {
	return map[string]Tuning{
		"rows-off":      {RowMaxN: 1, RowMinOut: 1 << 30},
		"rows-always":   {RowMinOut: 1, BitsetCut: 1},
		"merge-only":    {BitsetCut: 1 << 30},
		"chunk-1":       {RootChunk: 1},
		"chunk-huge":    {RootChunk: 1 << 20},
		"kitchen-sink":  {RowMinOut: 1, BitsetCut: 1, RootChunk: 1},
		"rebuild-never": {RebuildFraction: 2.0, RebuildMinBatch: 1 << 30},
		"rebuild-eager": {RebuildFraction: 1e-9, RebuildMinBatch: 1},
	}
}

// TestKernelByteIdenticalUnderTuningProfiles: the same graph listed under
// every extreme profile must produce exactly the default profile's
// output, sequentially and in parallel. Fresh graphs are built per
// profile because kernels capture the tuning at construction.
func TestKernelByteIdenticalUnderTuningProfiles(t *testing.T) {
	orig := CurrentTuning()
	defer SetTuning(orig)

	type family struct {
		name string
		mk   func(r *rand.Rand) *Graph
	}
	families := []family{
		{"sparse", func(r *rand.Rand) *Graph { return ErdosRenyi(90, 0.06, r) }},
		{"dense", func(r *rand.Rand) *Graph { return ErdosRenyi(60, 0.45, r) }},
		{"planted", func(r *rand.Rand) *Graph {
			g, _ := PlantedCliques(80, 5, 6, 0.05, r)
			return g
		}},
	}
	for _, fam := range families {
		SetTuning(Tuning{})
		want := map[int][]Clique{}
		g := fam.mk(rand.New(rand.NewSource(42)))
		for p := 2; p <= 5; p++ {
			want[p] = g.ListCliquesWorkers(p, 4)
		}
		for name, profile := range extremeProfiles() {
			SetTuning(profile)
			fresh := fam.mk(rand.New(rand.NewSource(42)))
			for p := 2; p <= 5; p++ {
				for _, workers := range []int{1, 4} {
					got := fresh.ListCliquesWorkers(p, workers)
					if len(got) == 0 && len(want[p]) == 0 {
						continue
					}
					if !reflect.DeepEqual(got, want[p]) {
						t.Fatalf("%s/%s p=%d workers=%d: listing differs from default tuning",
							fam.name, name, p, workers)
					}
				}
				if got := fresh.CountCliquesWorkers(p, 2); got != int64(len(want[p])) {
					t.Fatalf("%s/%s p=%d: count %d, want %d", fam.name, name, p, got, len(want[p]))
				}
			}
		}
	}
}

// TestDynGraphMetamorphicUnderTuning: the incremental engine must track
// exactly the from-scratch kernel under the same churn whether the tuning
// forces every batch down the incremental path or the full-rebuild path.
func TestDynGraphMetamorphicUnderTuning(t *testing.T) {
	orig := CurrentTuning()
	defer SetTuning(orig)

	for name, profile := range map[string]Tuning{
		"rebuild-never": {RebuildFraction: 2.0, RebuildMinBatch: 1 << 30},
		"rebuild-eager": {RebuildFraction: 1e-9, RebuildMinBatch: 1},
	} {
		SetTuning(profile)
		rng := rand.New(rand.NewSource(7))
		d := NewDynGraph(ErdosRenyi(28, 0.3, rng), DynConfig{}, 3, 4)
		for batch := 0; batch < 12; batch++ {
			var muts []Mutation
			for j := 0; j < 8; j++ {
				u, v := V(rng.Intn(28)), V(rng.Intn(28))
				if u == v {
					continue
				}
				op := MutAdd
				if rng.Intn(2) == 0 {
					op = MutDel
				}
				muts = append(muts, Mutation{op, Edge{u, v}.Canon()})
			}
			if _, err := d.ApplyBatch(muts); err != nil {
				t.Fatalf("%s batch %d: %v", name, batch, err)
			}
			snap := d.Snapshot()
			for _, p := range []int{3, 4} {
				got, _ := d.Cliques(p)
				want := snap.ListCliquesWorkers(p, 2)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s batch %d p=%d: tracked cliques diverged from rebuild", name, batch, p)
				}
			}
		}
	}
}
