package graph

// Snapshot codec: a Graph serializes to a store snapshot as five flat
// sections — the adjacency CSR ("adjoff"/"adjhead", what mutation and
// Neighbors need) and the derived degeneracy-DAG kernel CSR
// ("koff"/"khead"/"korig", what listing needs). Writing forces the
// kernel so a reader pays the peel exactly zero times: OpenGraphSnapshot
// adopts the stored kernel arrays straight off the mapping and serves
// ListCliques without rebuilding anything but the in-memory row bitmaps.
//
// The WAL batch codec at the bottom is the mutation payload format the
// durable store logs between snapshots.

import (
	"encoding/binary"
	"fmt"
	"slices"

	"kplist/internal/store"
)

// Section names inside a graph snapshot file.
const (
	secAdjOff  = "adjoff"
	secAdjHead = "adjhead"
	secKernOff = "koff"
	secKernHd  = "khead"
	secKernOrg = "korig"
)

// WriteGraphSnapshot writes g to path as an immutable snapshot covering
// WAL records through epoch. The write is crash-atomic. The graph's
// kernel is forced first, so opening the file never re-derives it.
func WriteGraphSnapshot(path string, g *Graph, epoch uint64) error {
	k := g.kernel()
	adjOff := make([]int32, g.n+1)
	adjHead := make([]V, 0, 2*g.m)
	for v := 0; v < g.n; v++ {
		adjOff[v] = int32(len(adjHead))
		adjHead = append(adjHead, g.adj[v]...)
	}
	adjOff[g.n] = int32(len(adjHead))
	meta := store.Meta{
		N:      int64(g.n),
		M:      int64(g.m),
		MaxOut: int32(k.maxOut),
		MaxID:  k.maxID,
		Epoch:  epoch,
	}
	sections := []store.Section{
		{Name: secAdjOff, Data: adjOff},
		{Name: secAdjHead, Data: adjHead},
		{Name: secKernOff, Data: k.off},
		{Name: secKernHd, Data: k.heads},
		{Name: secKernOrg, Data: k.orig},
	}
	return store.WriteSnapshot(path, meta, sections)
}

// GraphSnapshot is an opened snapshot file serving a Graph directly off
// the mapping: adjacency rows and kernel arrays alias the file, so the
// graph is valid only until Close and must never be written (NewDynGraph
// clones rows before mutating, so the mutation path is safe).
type GraphSnapshot struct {
	snap  *store.Snapshot
	g     *Graph
	epoch uint64
}

// OpenGraphSnapshot maps the snapshot at path, validates it, and
// assembles a ready-to-serve Graph whose enumeration kernel is adopted
// from the stored CSR — no degeneracy peel, no CSR derivation.
func OpenGraphSnapshot(path string) (*GraphSnapshot, error) {
	snap, err := store.OpenSnapshot(path)
	if err != nil {
		return nil, err
	}
	gs, err := graphFromSnapshot(snap)
	if err != nil {
		snap.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return gs, nil
}

func graphFromSnapshot(snap *store.Snapshot) (*GraphSnapshot, error) {
	meta := snap.Meta()
	n := int(meta.N)
	if int64(n) != meta.N || meta.M > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("%w: dimensions n=%d m=%d overflow the host int", store.ErrCorruptSnapshot, meta.N, meta.M)
	}
	adjOff, err := csrSection(snap, secAdjOff, secAdjHead, n)
	if err != nil {
		return nil, err
	}
	adjHead, _ := snap.Int32s(secAdjHead)
	if int64(len(adjHead)) != 2*meta.M {
		return nil, fmt.Errorf("%w: %d adjacency heads for m=%d", store.ErrCorruptSnapshot, len(adjHead), meta.M)
	}
	kOff, err := csrSection(snap, secKernOff, secKernHd, n)
	if err != nil {
		return nil, err
	}
	kHead, _ := snap.Int32s(secKernHd)
	kOrig, err := snap.Int32s(secKernOrg)
	if err != nil {
		return nil, err
	}
	if len(kOrig) != n {
		return nil, fmt.Errorf("%w: %d kernel ranks for n=%d", store.ErrCorruptSnapshot, len(kOrig), n)
	}
	for r, v := range kOrig {
		if v < 0 || v > meta.MaxID {
			return nil, fmt.Errorf("%w: kernel rank %d maps to vertex %d outside [0,%d]", store.ErrCorruptSnapshot, r, v, meta.MaxID)
		}
	}
	for _, c := range kHead {
		if c < 0 || int(c) >= n {
			return nil, fmt.Errorf("%w: kernel head %d outside [0,%d)", store.ErrCorruptSnapshot, c, n)
		}
	}
	g := &Graph{n: n, m: int(meta.M), adj: make([][]V, n)}
	for v := 0; v < n; v++ {
		row := adjHead[adjOff[v]:adjOff[v+1]]
		for _, w := range row {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("%w: neighbor %d of vertex %d outside [0,%d)", store.ErrCorruptSnapshot, w, v, n)
			}
		}
		g.adj[v] = row
	}
	g.kern.Store(kernelFromCSR(n, kOff, kHead, kOrig, int(meta.MaxOut), meta.MaxID))
	return &GraphSnapshot{snap: snap, g: g, epoch: meta.Epoch}, nil
}

// csrSection validates the offset array of a CSR pair: length n+1,
// non-decreasing, starting at 0 and ending at the heads length.
func csrSection(snap *store.Snapshot, offName, headName string, n int) ([]int32, error) {
	off, err := snap.Int32s(offName)
	if err != nil {
		return nil, err
	}
	heads, err := snap.Int32s(headName)
	if err != nil {
		return nil, err
	}
	if len(off) != n+1 {
		return nil, fmt.Errorf("%w: %q has %d offsets for n=%d", store.ErrCorruptSnapshot, offName, len(off), n)
	}
	if n >= 0 && (len(off) == 0 || off[0] != 0 || int(off[n]) != len(heads)) {
		return nil, fmt.Errorf("%w: %q span [%d,%d] does not cover %d heads", store.ErrCorruptSnapshot, offName, off[0], off[n], len(heads))
	}
	for i := 0; i < n; i++ {
		if off[i] > off[i+1] {
			return nil, fmt.Errorf("%w: %q decreases at row %d", store.ErrCorruptSnapshot, offName, i)
		}
	}
	return off, nil
}

// Graph returns the snapshot-backed graph. It is immutable and valid
// only until Close.
func (s *GraphSnapshot) Graph() *Graph { return s.g }

// Materialize returns a fully heap-owned copy of the snapshot's graph:
// the adjacency rows and the adopted kernel CSR are copied out of the
// mapping, so the returned graph stays valid after Close. The stored
// kernel is still adopted, never re-derived — materializing costs one
// memcpy of the flat arrays, not a degeneracy peel.
func (s *GraphSnapshot) Materialize() *Graph {
	src := s.g
	total := 0
	for _, row := range src.adj {
		total += len(row)
	}
	flat := make([]V, 0, total)
	adj := make([][]V, src.n)
	for v, row := range src.adj {
		start := len(flat)
		flat = append(flat, row...)
		adj[v] = flat[start:len(flat):len(flat)]
	}
	g := &Graph{n: src.n, m: src.m, adj: adj}
	k := src.kern.Load()
	g.kern.Store(kernelFromCSR(k.n,
		slices.Clone(k.off), slices.Clone(k.heads), slices.Clone(k.orig),
		k.maxOut, k.maxID))
	return g
}

// Epoch returns the WAL sequence number the snapshot covers through.
func (s *GraphSnapshot) Epoch() uint64 { return s.epoch }

// Close unmaps the file; the graph and everything derived from it
// becomes invalid.
func (s *GraphSnapshot) Close() error { return s.snap.Close() }

// WAL batch payload: count u32, then per mutation op u8 + u i32 + v i32,
// all little-endian. The encoded batch is the effective (canonical,
// deduplicated) batch DynGraph commits, so replay is exact.
const walMutBytes = 9

// EncodeWALBatch serializes a mutation batch for the WAL.
func EncodeWALBatch(muts []Mutation) []byte {
	b := make([]byte, 4+walMutBytes*len(muts))
	binary.LittleEndian.PutUint32(b, uint32(len(muts)))
	at := 4
	for _, mu := range muts {
		b[at] = byte(mu.Op)
		binary.LittleEndian.PutUint32(b[at+1:], uint32(mu.Edge.U))
		binary.LittleEndian.PutUint32(b[at+5:], uint32(mu.Edge.V))
		at += walMutBytes
	}
	return b
}

// DecodeWALBatch reverses EncodeWALBatch, validating structure. It never
// panics on malformed input.
func DecodeWALBatch(b []byte) ([]Mutation, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %d-byte batch payload", store.ErrCorruptWAL, len(b))
	}
	count := binary.LittleEndian.Uint32(b)
	if uint64(len(b)-4) != uint64(count)*walMutBytes {
		return nil, fmt.Errorf("%w: %d bytes for a %d-mutation batch", store.ErrCorruptWAL, len(b), count)
	}
	muts := make([]Mutation, count)
	at := 4
	for i := range muts {
		op := MutOp(b[at])
		if op != MutAdd && op != MutDel {
			return nil, fmt.Errorf("%w: unknown mutation op %d", store.ErrCorruptWAL, b[at])
		}
		u := V(binary.LittleEndian.Uint32(b[at+1:]))
		v := V(binary.LittleEndian.Uint32(b[at+5:]))
		muts[i] = Mutation{Op: op, Edge: Edge{U: u, V: v}}
		at += walMutBytes
	}
	return muts, nil
}
