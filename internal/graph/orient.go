package graph

import (
	"fmt"
	"sort"
)

// Orientation assigns a direction to every edge of a working edge set. The
// pipeline maintains the paper's invariant that the out-degree of every
// vertex is bounded by (a constant multiple of) the arboricity, which is
// what makes "send your outgoing edges" phases cheap.
type Orientation struct {
	n   int
	out [][]V // out[v] = heads of edges oriented away from v, sorted
}

// NewOrientation builds an orientation over n vertices from explicit
// out-lists. The lists are canonicalized (sorted, deduped).
func NewOrientation(n int, out [][]V) (*Orientation, error) {
	if len(out) != n {
		return nil, fmt.Errorf("graph: orientation has %d out-lists for %d vertices", len(out), n)
	}
	cp := make([][]V, n)
	for v := range out {
		lst := make([]V, len(out[v]))
		copy(lst, out[v])
		lst = sortDedup(lst)
		for _, w := range lst {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: orientation head %d out of range [0,%d)", w, n)
			}
			if w == V(v) {
				return nil, fmt.Errorf("graph: self-loop in orientation at %d", v)
			}
		}
		cp[v] = lst
	}
	return &Orientation{n: n, out: cp}, nil
}

// N returns the number of vertices.
func (o *Orientation) N() int { return o.n }

// Out returns the sorted heads of edges oriented away from v. The slice is
// shared and must not be modified.
func (o *Orientation) Out(v V) []V { return o.out[v] }

// OutDegree returns the number of edges oriented away from v.
func (o *Orientation) OutDegree(v V) int { return len(o.out[v]) }

// MaxOutDegree returns the maximum out-degree, the quantity the paper's
// arboricity invariants bound.
func (o *Orientation) MaxOutDegree() int {
	max := 0
	for v := range o.out {
		if len(o.out[v]) > max {
			max = len(o.out[v])
		}
	}
	return max
}

// Edges returns the canonical undirected edge list covered by the
// orientation.
func (o *Orientation) Edges() EdgeList {
	var out EdgeList
	for v := range o.out {
		for _, w := range o.out[v] {
			out = append(out, Edge{V(v), w}.Canon())
		}
	}
	out.Normalize()
	return out
}

// EdgeCount returns the number of oriented edges.
func (o *Orientation) EdgeCount() int {
	c := 0
	for v := range o.out {
		c += len(o.out[v])
	}
	return c
}

// Owner returns the tail of edge e, i.e. the vertex that e is oriented away
// from, or -1 if e is not in the orientation.
func (o *Orientation) Owner(e Edge) V {
	if ContainsSorted(o.out[e.U], e.V) {
		return e.U
	}
	if ContainsSorted(o.out[e.V], e.U) {
		return e.V
	}
	return -1
}

// Restrict returns a new orientation containing only edges present in keep
// (which must be normalized).
func (o *Orientation) Restrict(keep EdgeList) *Orientation {
	out := make([][]V, o.n)
	for v := range o.out {
		for _, w := range o.out[v] {
			if keep.Contains(Edge{V(v), w}) {
				out[v] = append(out[v], w)
			}
		}
	}
	or, err := NewOrientation(o.n, out)
	if err != nil {
		panic(err) // restriction of a valid orientation is valid
	}
	return or
}

// Merge returns the union of two orientations over the same vertex set. If
// both orient the same undirected edge, the receiver's direction wins.
func (o *Orientation) Merge(other *Orientation) (*Orientation, error) {
	if o.n != other.n {
		return nil, fmt.Errorf("graph: merging orientations over %d and %d vertices", o.n, other.n)
	}
	have := o.Edges()
	out := make([][]V, o.n)
	for v := range o.out {
		out[v] = append(out[v], o.out[v]...)
	}
	for v := range other.out {
		for _, w := range other.out[v] {
			if !have.Contains(Edge{V(v), w}) {
				out[v] = append(out[v], w)
			}
		}
	}
	return NewOrientation(o.n, out)
}

// DegeneracyResult carries the output of a core-decomposition peel.
type DegeneracyResult struct {
	// Order is the elimination order: Order[i] is the i-th vertex peeled.
	Order []V
	// Rank is the inverse permutation: Rank[v] = position of v in Order.
	Rank []int
	// Coreness[v] is the largest k such that v belongs to the k-core.
	Coreness []int
	// Degeneracy is max over v of Coreness[v]; the arboricity a(G)
	// satisfies a(G) ≤ degeneracy ≤ 2a(G) - 1.
	Degeneracy int
}

// Degeneracy computes the degeneracy ordering of g with the linear-time
// bucket algorithm (Matula–Beck). Orienting each edge from the earlier to
// the later vertex in the order yields out-degree ≤ degeneracy.
func (g *Graph) Degeneracy() *DegeneracyResult {
	n := g.n
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = len(g.adj[v])
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue of vertices by current degree.
	bucket := make([][]V, maxDeg+1)
	pos := make([]int, n) // index of v within bucket[deg[v]]
	for v := 0; v < n; v++ {
		pos[v] = len(bucket[deg[v]])
		bucket[deg[v]] = append(bucket[deg[v]], V(v))
	}
	removed := make([]bool, n)
	order := make([]V, 0, n)
	rank := make([]int, n)
	coreness := make([]int, n)
	degeneracy := 0
	cur := 0
	for len(order) < n {
		for cur <= maxDeg && len(bucket[cur]) == 0 {
			cur++
		}
		if cur > maxDeg {
			break
		}
		v := bucket[cur][len(bucket[cur])-1]
		bucket[cur] = bucket[cur][:len(bucket[cur])-1]
		if removed[v] {
			continue
		}
		removed[v] = true
		if cur > degeneracy {
			degeneracy = cur
		}
		coreness[v] = degeneracy
		rank[v] = len(order)
		order = append(order, v)
		for _, w := range g.adj[v] {
			if removed[w] {
				continue
			}
			d := deg[w]
			// Lazy deletion: remove w from its bucket by swap.
			b := bucket[d]
			pi := pos[w]
			if pi < len(b) && b[pi] == w {
				last := b[len(b)-1]
				b[pi] = last
				pos[last] = pi
				bucket[d] = b[:len(b)-1]
			} else {
				// Find and remove (rare path after swaps).
				for i, x := range b {
					if x == w {
						last := b[len(b)-1]
						b[i] = last
						pos[last] = i
						bucket[d] = b[:len(b)-1]
						break
					}
				}
			}
			deg[w] = d - 1
			pos[w] = len(bucket[d-1])
			bucket[d-1] = append(bucket[d-1], w)
			if d-1 < cur {
				cur = d - 1
			}
		}
	}
	return &DegeneracyResult{Order: order, Rank: rank, Coreness: coreness, Degeneracy: degeneracy}
}

// DegeneracyOrientation orients every edge of g from the endpoint peeled
// earlier to the one peeled later, giving max out-degree = degeneracy ≤
// 2·arboricity − 1. This is the orientation the pipeline threads through
// the paper's Theorems 2.8/2.9.
func (g *Graph) DegeneracyOrientation() *Orientation {
	res := g.Degeneracy()
	out := make([][]V, g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if res.Rank[u] < res.Rank[int(v)] {
				out[u] = append(out[u], v)
			}
		}
	}
	o, err := NewOrientation(g.n, out)
	if err != nil {
		panic(err) // orientation from a valid graph is valid
	}
	return o
}

// ArboricityUpperBound returns a cheap upper bound on the arboricity of g:
// ceil((degeneracy+1)/2) ≤ a(G) ≤ degeneracy, we report the degeneracy
// (a valid out-degree bound for an orientation, which is what the paper's
// machinery actually consumes).
func (g *Graph) ArboricityUpperBound() int {
	return g.Degeneracy().Degeneracy
}

// PeelOrientation peels vertices of degree ≤ threshold repeatedly (the
// "low-degree peel" that the expander decomposition uses to populate Es):
// every peeled vertex contributes its ≤ threshold remaining edges, oriented
// away from it. It returns the orientation of the peeled edges, the peeled
// edge list, and the set of surviving vertices, each of which has degree >
// threshold within the surviving subgraph.
func PeelOrientation(n int, el EdgeList, threshold int) (*Orientation, EdgeList, []V) {
	adj := make(map[V][]V, n)
	for _, e := range el {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	deg := make(map[V]int, len(adj))
	for v, l := range adj {
		deg[v] = len(l)
	}
	removed := make(map[V]bool, len(adj))
	queue := make([]V, 0, len(adj))
	inQueue := make(map[V]bool, len(adj))
	for v, d := range deg {
		if d <= threshold {
			queue = append(queue, v)
			inQueue[v] = true
		}
	}
	// Deterministic processing order for reproducibility.
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	out := make([][]V, n)
	var peeled EdgeList
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if removed[v] {
			continue
		}
		removed[v] = true
		for _, w := range adj[v] {
			if removed[w] {
				continue
			}
			out[v] = append(out[v], w)
			peeled = append(peeled, Edge{v, w}.Canon())
			deg[w]--
			if deg[w] <= threshold && !inQueue[w] {
				queue = append(queue, w)
				inQueue[w] = true
			}
		}
	}
	var survivors []V
	for v := range adj {
		if !removed[v] {
			survivors = append(survivors, v)
		}
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i] < survivors[j] })
	peeled.Normalize()
	or, err := NewOrientation(n, out)
	if err != nil {
		panic(err) // peel of valid edges is valid
	}
	return or, peeled, survivors
}
