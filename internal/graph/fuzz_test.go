package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadEdgeList fuzzes the edge-list text parser: arbitrary input must
// either parse into a graph whose write/read round-trip is the identity,
// or fail with an error — never panic.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("", 0)
	f.Add("", 1)
	f.Add("# comment only\n", 4)
	f.Add("0 1\n1 2\n", 3)
	f.Add("0 1\n0 1\n1 0\n", 2) // duplicate edges, both orders
	f.Add("0 0\n", 1)           // self-loop
	f.Add("3 4\n", 2)           // out of range
	f.Add("a b\n", 2)
	f.Add("1 2 3\n", 4)
	f.Add("0 1 # trailing comment\n", 2)
	f.Add("-1 0\n", 2)
	f.Add("99999999999999999999 1\n", 2)
	f.Fuzz(func(t *testing.T, text string, n int) {
		if n < 0 {
			n = -n
		}
		n %= 512
		g, err := ReadEdgeList(strings.NewReader(text), n)
		if err != nil {
			return
		}
		if g.N() != n {
			t.Fatalf("parsed graph has %d vertices, want %d", g.N(), n)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write: %v", err)
		}
		g2, err := ReadEdgeList(&buf, n)
		if err != nil {
			t.Fatalf("round-trip parse: %v", err)
		}
		if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
			t.Fatalf("round trip changed the edge set: %v vs %v", g.Edges(), g2.Edges())
		}
	})
}

// FuzzNewGraph fuzzes graph construction from raw edge bytes, including
// out-of-range endpoints, self-loops and duplicates: New must error exactly
// when an endpoint is out of range, and otherwise uphold the adjacency
// invariants.
func FuzzNewGraph(f *testing.F) {
	f.Add(0, []byte{})
	f.Add(1, []byte{0, 0})       // self-loop on the only vertex
	f.Add(2, []byte{0, 1, 0, 1}) // duplicate edge
	f.Add(2, []byte{1, 0, 0, 1}) // duplicate, swapped orientation
	f.Add(3, []byte{0, 9})       // out of range
	f.Add(4, []byte{0, 1, 1, 2, 2, 3, 3, 0})
	f.Fuzz(func(t *testing.T, n int, raw []byte) {
		if n < 0 {
			n = -n
		}
		n %= 300
		edges := make([]Edge, 0, len(raw)/2)
		outOfRange := false
		for i := 0; i+1 < len(raw); i += 2 {
			// Spread endpoints beyond [0,n) so the error path is exercised:
			// raw bytes land in [-2, 253].
			u, v := V(int(raw[i])-2), V(int(raw[i+1])-2)
			if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
				outOfRange = true
			}
			edges = append(edges, Edge{u, v})
		}
		g, err := New(n, edges)
		if outOfRange {
			if err == nil {
				t.Fatal("out-of-range endpoint accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("in-range edges rejected: %v", err)
		}
		// Invariants: sorted strictly-increasing adjacency, symmetry,
		// degree sum = 2m, no self-loops.
		total := 0
		for v := 0; v < g.N(); v++ {
			adj := g.Neighbors(V(v))
			total += len(adj)
			for i, u := range adj {
				if u == V(v) {
					t.Fatalf("self-loop survived at %d", v)
				}
				if i > 0 && adj[i-1] >= u {
					t.Fatalf("adjacency of %d not strictly sorted: %v", v, adj)
				}
				if !g.HasEdge(u, V(v)) || !g.HasEdge(V(v), u) {
					t.Fatalf("asymmetric edge {%d,%d}", v, u)
				}
			}
		}
		if total != 2*g.M() {
			t.Fatalf("degree sum %d != 2m %d", total, 2*g.M())
		}
	})
}

// FuzzKernelCliques fuzzes the enumeration kernel against the O(n^p)
// brute-force reference over random edge lists: the listing (sequential
// and parallel), the counting mode, and the LocalLister re-platform must
// all agree exactly for every p.
func FuzzKernelCliques(f *testing.F) {
	f.Add(4, []byte{0, 1, 1, 2, 0, 2})                   // triangle + isolated
	f.Add(5, []byte{0, 1, 0, 2, 0, 3, 1, 2, 1, 3, 2, 3}) // K4 + pendant
	f.Add(1, []byte{})
	f.Add(9, []byte{1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 2, 4, 6, 8})
	f.Fuzz(func(t *testing.T, n int, raw []byte) {
		if n < 0 {
			n = -n
		}
		n = n%20 + 1
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{V(int(raw[i]) % n), V(int(raw[i+1]) % n)})
		}
		g := MustNew(n, edges)
		ll := NewLocalLister(g.Edges())
		for p := 2; p <= 5; p++ {
			want := bruteForceCliques(g, p)
			seq := g.ListCliquesWorkers(p, 1)
			if got := NewCliqueSet(seq); !got.Equal(want) {
				t.Fatalf("p=%d: kernel listed %d cliques, brute force %d", p, got.Len(), want.Len())
			}
			par := g.ListCliquesWorkers(p, 4)
			if !reflect.DeepEqual(par, seq) {
				t.Fatalf("p=%d: parallel listing diverges from sequential", p)
			}
			if got := g.CountCliques(p); got != int64(want.Len()) {
				t.Fatalf("p=%d: count %d, want %d", p, got, want.Len())
			}
			if got := NewCliqueSet(ll.ListCliques(p)); !got.Equal(want) {
				t.Fatalf("p=%d: LocalLister listed %d cliques, want %d", p, got.Len(), want.Len())
			}
		}
	})
}

// FuzzDynGraphApply fuzzes the incremental clique-delta engine: a random
// interleaved add/remove op stream (applied in randomly sized batches)
// must leave every tracked listing exactly equal to a brute-force recount
// of the final graph, for every p, on vertex sets up to 32.
func FuzzDynGraphApply(f *testing.F) {
	f.Add(4, []byte{0, 0, 1, 1, 1, 2, 0, 0, 2})
	f.Add(6, []byte{0, 0, 1, 0, 0, 2, 0, 1, 2, 0, 0, 3, 0, 1, 3, 0, 2, 3, 1, 0, 1})
	f.Add(9, []byte{1, 1, 2, 0, 3, 4, 2, 5, 6, 0, 1, 2, 1, 3, 4})
	f.Add(32, []byte{})
	f.Fuzz(func(t *testing.T, n int, raw []byte) {
		if n < 0 {
			n = -n
		}
		n = n%32 + 1
		// Start from a deterministic sparse seed so deletions bite.
		var seed []Edge
		for v := 1; v < n; v++ {
			seed = append(seed, Edge{V(v / 2), V(v)})
		}
		g := MustNew(n, seed)
		d := NewDynGraph(g, DynConfig{}, 3, 4)
		// Decode ops: 3 bytes each — op parity, two endpoints mod n. Batch
		// boundaries every 5 ops exercise multi-mutation deltas.
		var batch []Mutation
		flush := func() {
			if len(batch) == 0 {
				return
			}
			if _, err := d.ApplyBatch(batch); err != nil {
				t.Fatalf("in-range batch rejected: %v", err)
			}
			batch = batch[:0]
		}
		for i := 0; i+2 < len(raw); i += 3 {
			u, v := V(int(raw[i+1])%n), V(int(raw[i+2])%n)
			if u == v {
				continue
			}
			op := MutAdd
			if raw[i]%2 == 1 {
				op = MutDel
			}
			batch = append(batch, Mutation{op, Edge{u, v}.Canon()})
			if len(batch) == 5 {
				flush()
			}
		}
		flush()
		final := d.Snapshot()
		for _, p := range []int{3, 4} {
			want := bruteForceCliques(final, p)
			got, ok := d.Cliques(p)
			if !ok {
				t.Fatalf("p=%d untracked", p)
			}
			if gs := NewCliqueSet(got); !gs.Equal(want) {
				t.Fatalf("p=%d: maintained %d cliques, brute force %d", p, gs.Len(), want.Len())
			}
			// The maintained listing is byte-deterministic: identical to the
			// static kernel's lexicographic output.
			if kernel := final.ListCliques(p); !reflect.DeepEqual(got, kernel) && len(kernel) > 0 {
				t.Fatalf("p=%d: maintained order diverges from kernel listing", p)
			}
		}
	})
}
