package graph

import (
	"math/rand"
	"testing"
)

// binomial computes C(n, k) exactly for small inputs.
func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	r := int64(1)
	for i := 1; i <= k; i++ {
		r = r * int64(n-k+i) / int64(i)
	}
	return r
}

func TestCountCliquesComplete(t *testing.T) {
	for _, n := range []int{4, 6, 9} {
		g := Complete(n)
		for p := 2; p <= 5; p++ {
			got := g.CountCliques(p)
			want := binomial(n, p)
			if got != want {
				t.Errorf("K_%d: CountCliques(%d) = %d, want %d", n, p, got, want)
			}
		}
	}
}

func TestCountCliquesSparse(t *testing.T) {
	// A triangle plus a pendant: one K3, no K4.
	g := MustNew(4, []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if got := g.CountCliques(3); got != 1 {
		t.Errorf("K3 count = %d, want 1", got)
	}
	if got := g.CountCliques(4); got != 0 {
		t.Errorf("K4 count = %d, want 0", got)
	}
	if got := g.CountCliques(2); got != 4 {
		t.Errorf("K2 count = %d, want 4 (edges)", got)
	}
	if got := g.CountCliques(1); got != 4 {
		t.Errorf("K1 count = %d, want 4 (vertices)", got)
	}
}

func TestListCliquesSortedUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := ErdosRenyi(60, 0.25, rng)
	cs := g.ListCliques(4)
	seen := make(map[string]struct{})
	for _, c := range cs {
		for i := 1; i < len(c); i++ {
			if c[i-1] >= c[i] {
				t.Fatalf("clique %v not strictly sorted", c)
			}
		}
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if !g.HasEdge(c[i], c[j]) {
					t.Fatalf("clique %v has non-edge {%d,%d}", c, c[i], c[j])
				}
			}
		}
		if _, dup := seen[c.Key()]; dup {
			t.Fatalf("duplicate clique %v", c)
		}
		seen[c.Key()] = struct{}{}
	}
}

// bruteForceCliques is an O(n^p) reference used only at tiny sizes.
func bruteForceCliques(g *Graph, p int) CliqueSet {
	s := make(CliqueSet)
	n := g.N()
	var pick func(start int, cur []V)
	pick = func(start int, cur []V) {
		if len(cur) == p {
			s.Add(cur)
			return
		}
		for v := start; v < n; v++ {
			ok := true
			for _, u := range cur {
				if !g.HasEdge(u, V(v)) {
					ok = false
					break
				}
			}
			if ok {
				pick(v+1, append(cur, V(v)))
			}
		}
	}
	pick(0, make([]V, 0, p))
	return s
}

func TestListCliquesVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(8)
		g := ErdosRenyi(n, 0.4+0.3*rng.Float64(), rng)
		for p := 3; p <= 5; p++ {
			want := bruteForceCliques(g, p)
			got := NewCliqueSet(g.ListCliques(p))
			if !got.Equal(want) {
				t.Fatalf("trial %d n=%d p=%d: got %d cliques, want %d; missing=%v extra=%v",
					trial, n, p, got.Len(), want.Len(), want.Minus(got), got.Minus(want))
			}
		}
	}
}

func TestPlantedCliquesAreFound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, planted := PlantedCliques(80, 5, 3, 0.05, rng)
	found := NewCliqueSet(g.ListCliques(5))
	for _, c := range planted {
		if !found.Has(Clique(c)) {
			t.Errorf("planted clique %v not listed", c)
		}
	}
}

func TestCliqueKeyRoundTrip(t *testing.T) {
	c := Clique{0, 7, 123456, 1 << 20}
	got := CliqueFromKey(c.Key())
	if len(got) != len(c) {
		t.Fatalf("round trip length %d", len(got))
	}
	for i := range c {
		if got[i] != c[i] {
			t.Errorf("round trip [%d] = %d, want %d", i, got[i], c[i])
		}
	}
}

func TestCliqueSetOps(t *testing.T) {
	s := NewCliqueSet([]Clique{{3, 1, 2}, {4, 5, 6}})
	if !s.Has(Clique{1, 2, 3}) {
		t.Error("Has should be order-insensitive")
	}
	tset := NewCliqueSet([]Clique{{1, 2, 3}})
	diff := s.Minus(tset)
	if len(diff) != 1 || diff[0].Key() != (Clique{4, 5, 6}).Key() {
		t.Errorf("Minus = %v", diff)
	}
	if s.Equal(tset) {
		t.Error("unequal sets reported equal")
	}
	if !s.Equal(NewCliqueSet([]Clique{{6, 5, 4}, {2, 1, 3}})) {
		t.Error("equal sets reported unequal")
	}
}

func TestLocalLister(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 3}, {0, 3}}
	ll := NewLocalLister(edges)
	got := NewCliqueSet(ll.ListCliques(4))
	if got.Len() != 1 || !got.Has(Clique{0, 1, 2, 3}) {
		t.Errorf("local K4 listing = %v", got.Cliques())
	}
	tri := NewCliqueSet(ll.ListCliques(3))
	if tri.Len() != 4 {
		t.Errorf("local K3 count = %d, want 4", tri.Len())
	}
	if !ll.HasEdge(0, 3) || ll.HasEdge(0, 9) {
		t.Error("LocalLister.HasEdge wrong")
	}
}

func TestLocalListerMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := ErdosRenyi(40, 0.3, rng)
		ll := NewLocalLister(g.Edges())
		for p := 3; p <= 5; p++ {
			want := NewCliqueSet(g.ListCliques(p))
			got := NewCliqueSet(ll.ListCliques(p))
			if !got.Equal(want) {
				t.Fatalf("trial %d p=%d: local lister diverges from graph lister", trial, p)
			}
		}
	}
}

func TestVisitCliquesEdgeCases(t *testing.T) {
	g := Complete(3)
	if g.CountCliques(0) != 0 {
		t.Error("p=0 should yield nothing")
	}
	if g.CountCliques(1) != 3 {
		t.Error("p=1 should yield vertices")
	}
	if g.CountCliques(7) != 0 {
		t.Error("p>n should yield nothing")
	}
	empty := MustNew(0, nil)
	if empty.CountCliques(3) != 0 {
		t.Error("empty graph should yield nothing")
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	cs := []Clique{{}, {0}, {5, 9}, {1, 2, 3, 4}, {7, 123456, 1 << 20, 1<<30 + 17}}
	for _, c := range cs {
		var buf [64]byte
		if got := string(c.AppendKey(buf[:0])); got != c.Key() {
			t.Errorf("AppendKey(%v) != Key()", c)
		}
		// Appending must extend, not clobber.
		pre := []byte("pre")
		ext := c.AppendKey(pre)
		if string(ext[:3]) != "pre" || string(ext[3:]) != c.Key() {
			t.Errorf("AppendKey(%v) with prefix corrupted the buffer", c)
		}
	}
}

func TestCliqueSetAddHasUnsorted(t *testing.T) {
	s := make(CliqueSet)
	s.Add(Clique{9, 1, 5})
	if !s.Has(Clique{5, 9, 1}) || !s.Has(Clique{1, 5, 9}) {
		t.Error("Add/Has must canonicalize order")
	}
	if s.Has(Clique{1, 5}) {
		t.Error("prefix must not be a member")
	}
	// Cliques longer than the stack scratch still work.
	long := make(Clique, 24)
	for i := range long {
		long[i] = V(24 - i)
	}
	s.Add(long)
	rev := make(Clique, 24)
	for i := range rev {
		rev[i] = V(i + 1)
	}
	if !s.Has(rev) {
		t.Error("long cliques must round-trip through Add/Has")
	}
}
