package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// assertTrackedExact checks every tracked size of d against a from-scratch
// listing of an equal static graph, byte for byte.
func assertTrackedExact(t *testing.T, d *DynGraph) {
	t.Helper()
	snap := d.Snapshot()
	for _, p := range d.Tracked() {
		want := snap.ListCliques(p)
		got, ok := d.Cliques(p)
		if !ok {
			t.Fatalf("p=%d not tracked", p)
		}
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("p=%d: maintained listing diverged: %d cliques vs %d from scratch",
				p, len(got), len(want))
		}
		if n, _ := d.Count(p); n != int64(len(want)) {
			t.Fatalf("p=%d: count %d, want %d", p, n, len(want))
		}
	}
}

func TestDynGraphBasicMutations(t *testing.T) {
	// Path 0-1-2; closing the triangle then opening it again.
	d := NewDynGraph(MustNew(4, []Edge{{0, 1}, {1, 2}}), DynConfig{}, 3)
	if n, _ := d.Count(3); n != 0 {
		t.Fatalf("initial triangle count %d", n)
	}
	delta, err := d.AddEdge(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.AddedEdges) != 1 || len(delta.Cliques) != 1 || len(delta.Cliques[0].Added) != 1 {
		t.Fatalf("closing the triangle: %+v", delta)
	}
	if got := delta.Cliques[0].Added[0]; !reflect.DeepEqual(got, Clique{0, 1, 2}) {
		t.Fatalf("added clique %v", got)
	}
	if !reflect.DeepEqual(delta.Touched, []V{0, 2}) {
		t.Fatalf("touched %v", delta.Touched)
	}
	assertTrackedExact(t, d)

	delta, err = d.RemoveEdge(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Cliques[0].Removed) != 1 || len(delta.Cliques[0].Added) != 0 {
		t.Fatalf("opening the triangle: %+v", delta.Cliques[0])
	}
	if d.M() != 2 {
		t.Fatalf("m=%d after add+remove", d.M())
	}
	assertTrackedExact(t, d)
}

func TestDynGraphBatchSemantics(t *testing.T) {
	d := NewDynGraph(MustNew(5, []Edge{{0, 1}}), DynConfig{}, 3)

	// Redundant ops are no-ops; last op per edge wins.
	delta, err := d.ApplyBatch([]Mutation{
		{MutAdd, Edge{0, 1}}, // already present
		{MutDel, Edge{2, 3}}, // already absent
		{MutAdd, Edge{1, 2}}, // effective insert
		{MutAdd, Edge{3, 4}}, // inserted...
		{MutDel, Edge{4, 3}}, // ...then deleted: net no-op
		{MutDel, Edge{0, 1}}, // deleted...
		{MutAdd, Edge{0, 1}}, // ...then re-added: net no-op
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(delta.AddedEdges, []Edge{{1, 2}}) || len(delta.RemovedEdges) != 0 {
		t.Fatalf("effective delta: %+v", delta)
	}
	if delta.Effective() != 1 || !reflect.DeepEqual(delta.Touched, []V{1, 2}) {
		t.Fatalf("effective/touched: %+v", delta)
	}
	assertTrackedExact(t, d)

	// A fully redundant batch is a no-op with an empty (non-nil) delta.
	delta, err = d.ApplyBatch([]Mutation{{MutAdd, Edge{0, 1}}, {MutDel, Edge{0, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Effective() != 0 || len(delta.Touched) != 0 || delta.Rebuilt {
		t.Fatalf("no-op batch delta: %+v", delta)
	}
	if st := d.Stats(); st.Batches != 1 {
		t.Fatalf("no-op batch counted: %+v", st)
	}
}

func TestDynGraphRejectsBadMutations(t *testing.T) {
	d := NewDynGraph(MustNew(3, []Edge{{0, 1}}), DynConfig{}, 3)
	cases := [][]Mutation{
		{{MutAdd, Edge{0, 3}}},                       // out of range
		{{MutDel, Edge{-1, 0}}},                      // negative
		{{MutAdd, Edge{1, 1}}},                       // self-loop
		{{MutOp(9), Edge{0, 1}}},                     // unknown op
		{{MutAdd, Edge{0, 2}}, {MutAdd, Edge{0, 5}}}, // one bad op rejects the batch
	}
	for i, muts := range cases {
		if _, err := d.ApplyBatch(muts); err == nil {
			t.Fatalf("case %d: bad batch accepted", i)
		}
	}
	// The graph is untouched by rejected batches.
	if d.M() != 1 || d.HasEdge(0, 2) {
		t.Fatal("rejected batch modified the graph")
	}
	assertTrackedExact(t, d)
}

func TestDynGraphMultiplePs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := ErdosRenyi(40, 0.25, rng)
	d := NewDynGraph(g, DynConfig{}, 3, 4, 5)
	if !reflect.DeepEqual(d.Tracked(), []int{3, 4, 5}) {
		t.Fatalf("tracked %v", d.Tracked())
	}
	for i := 0; i < 30; i++ {
		var muts []Mutation
		for j := 0; j < 4; j++ {
			u, v := V(rng.Intn(40)), V(rng.Intn(40))
			if u == v {
				continue
			}
			op := MutAdd
			if rng.Intn(2) == 0 {
				op = MutDel
			}
			muts = append(muts, Mutation{op, Edge{u, v}.Canon()})
		}
		if _, err := d.ApplyBatch(muts); err != nil {
			t.Fatal(err)
		}
	}
	assertTrackedExact(t, d)
	st := d.Stats()
	if st.Incremental == 0 || st.Rebuilds != 0 {
		t.Fatalf("small batches should stay incremental: %+v", st)
	}
}

func TestDynGraphRebuildFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ErdosRenyi(64, 0.2, rng)
	d := NewDynGraph(g, DynConfig{}, 3, 4)
	// Delete a large fraction of the edges in one batch: this must cross
	// both the absolute floor and the density fraction.
	edges := g.Edges()
	cut := max(DefaultRebuildMinBatch+1, int(DefaultRebuildFraction*float64(len(edges)))+1)
	var muts []Mutation
	for _, e := range edges[:cut] {
		muts = append(muts, Mutation{MutDel, e})
	}
	delta, err := d.ApplyBatch(muts)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Rebuilt {
		t.Fatalf("batch of %d deletions (m=%d) did not trigger rebuild", cut, len(edges))
	}
	if delta.Cliques[0].Added != nil || delta.Cliques[0].Removed != nil {
		t.Fatal("rebuild fallback should not report per-clique deltas")
	}
	if st := d.Stats(); st.Rebuilds != 1 {
		t.Fatalf("stats %+v", st)
	}
	assertTrackedExact(t, d)

	// With the fallback disabled the same batch size applies incrementally
	// and lands on the identical listing.
	d2 := NewDynGraph(g, DynConfig{RebuildFraction: -1}, 3, 4)
	delta2, err := d2.ApplyBatch(muts)
	if err != nil {
		t.Fatal(err)
	}
	if delta2.Rebuilt {
		t.Fatal("disabled fallback still rebuilt")
	}
	assertTrackedExact(t, d2)
	for _, p := range []int{3, 4} {
		a, _ := d.Cliques(p)
		b, _ := d2.Cliques(p)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("p=%d: rebuild and incremental disagree", p)
		}
	}
}

func TestDynGraphTrackLater(t *testing.T) {
	g := MustNew(4, []Edge{{0, 1}, {0, 2}, {1, 2}})
	d := NewDynGraph(g, DynConfig{})
	if len(d.Tracked()) != 0 {
		t.Fatal("untracked by default")
	}
	if _, ok := d.Count(3); ok {
		t.Fatal("Count on untracked p")
	}
	if _, err := d.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	d.Track(3)
	d.Track(3) // idempotent
	d.Track(1) // ignored
	if !reflect.DeepEqual(d.Tracked(), []int{3}) {
		t.Fatalf("tracked %v", d.Tracked())
	}
	if _, err := d.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	assertTrackedExact(t, d)
}

func TestDynGraphSnapshotIsolation(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1}})
	d := NewDynGraph(g, DynConfig{})
	s1 := d.Snapshot()
	if s2 := d.Snapshot(); s1 != s2 {
		t.Fatal("snapshot not cached between mutations")
	}
	if _, err := d.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	s3 := d.Snapshot()
	if s1.M() != 1 || s3.M() != 2 {
		t.Fatalf("snapshots m: %d then %d", s1.M(), s3.M())
	}
	// The original seed graph is never modified.
	if g.M() != 1 || g.HasEdge(1, 2) {
		t.Fatal("seed graph mutated")
	}
}

func TestVisitCliquesThroughEdge(t *testing.T) {
	// K4 on {0,1,2,3} plus pendant 4.
	g := MustNew(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}})
	var got []Clique
	g.VisitCliquesThroughEdge(Edge{1, 0}, 3, func(c Clique) bool {
		got = append(got, append(Clique(nil), c...))
		return true
	})
	want := []Clique{{0, 1, 2}, {0, 1, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("triangles through {0,1}: %v, want %v", got, want)
	}
	if !g.HasCliqueThroughEdge(Edge{0, 1}, 4) {
		t.Fatal("K4 through {0,1} not found")
	}
	if g.HasCliqueThroughEdge(Edge{3, 4}, 3) {
		t.Fatal("no triangle contains the pendant edge")
	}
	if g.HasCliqueThroughEdge(Edge{0, 4}, 3) {
		t.Fatal("absent edge should yield nothing")
	}
	// p=2: the edge itself.
	n := 0
	g.VisitCliquesThroughEdge(Edge{3, 4}, 2, func(c Clique) bool {
		if !reflect.DeepEqual(append(Clique(nil), c...), Clique{3, 4}) {
			t.Fatalf("p=2 clique %v", c)
		}
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("p=2 yielded %d cliques", n)
	}
	// Early abort propagates.
	if g.VisitCliquesThroughEdge(Edge{0, 1}, 3, func(Clique) bool { return false }) {
		t.Fatal("abort not propagated")
	}
}

// TestDynGraphRandomizedVsRebuild is the in-package metamorphic anchor: a
// long random mutation history over a mid-density graph, checked against
// from-scratch listings (workers 1 and 8) after every batch.
func TestDynGraphRandomizedVsRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := ErdosRenyi(32, 0.3, rng)
	d := NewDynGraph(g, DynConfig{}, 3, 4)
	for batch := 0; batch < 20; batch++ {
		var muts []Mutation
		for j := 0; j < 6; j++ {
			u, v := V(rng.Intn(32)), V(rng.Intn(32))
			if u == v {
				continue
			}
			op := MutAdd
			if rng.Intn(2) == 0 {
				op = MutDel
			}
			muts = append(muts, Mutation{op, Edge{u, v}.Canon()})
		}
		if _, err := d.ApplyBatch(muts); err != nil {
			t.Fatal(err)
		}
		snap := d.Snapshot()
		for _, p := range []int{3, 4} {
			got, _ := d.Cliques(p)
			for _, workers := range []int{1, 8} {
				want := snap.ListCliquesWorkers(p, workers)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("batch %d p=%d workers=%d: diverged", batch, p, workers)
				}
			}
		}
	}
}
