package graph

// Dynamic graphs: a mutable edge set with an incremental clique-delta
// engine. DynGraph keeps the p-clique listing of an evolving graph exact
// under edge insertions and deletions without global re-listing: each
// batch is resolved to its effective edge delta, and the added/removed
// cliques are recovered by local re-enumeration around the touched edges —
// a clique gained (lost) by the batch must contain an inserted (deleted)
// edge, so intersecting the endpoints' sorted neighborhoods confines the
// search to the mutation frontier. Batches too large relative to the
// current edge count fall back to one full kernel rebuild (the same
// enumeration every static listing runs). See DESIGN.md §9.

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
)

// ErrBadMutation reports a mutation outside the graph's domain: an
// endpoint not in [0, N), a self-loop, or an unknown op. The serving layer
// maps it to a 4xx.
var ErrBadMutation = errors.New("graph: bad mutation")

// MutOp is a mutation kind.
type MutOp uint8

const (
	// MutAdd inserts an edge (a no-op if present).
	MutAdd MutOp = iota
	// MutDel removes an edge (a no-op if absent).
	MutDel
)

func (op MutOp) String() string {
	switch op {
	case MutAdd:
		return "add"
	case MutDel:
		return "del"
	}
	return fmt.Sprintf("MutOp(%d)", uint8(op))
}

// Mutation is one edge-level change. Within a batch, mutations apply in
// order, so the last op on an edge wins; the batch's effect is the
// difference between the final and initial edge sets.
type Mutation struct {
	Op   MutOp
	Edge Edge
}

// CliqueDelta is the exact clique-set change of one tracked size p under a
// batch: Added lists the p-cliques present after but not before, Removed
// the reverse, both sorted lexicographically. On the rebuild fallback the
// slices are nil — the whole listing was recomputed, not diffed — and the
// enclosing Delta carries Rebuilt.
type CliqueDelta struct {
	P              int
	Added, Removed []Clique
}

// Delta is the effect of one ApplyBatch: the effective edge changes
// (canonical, sorted), the touched-vertex cover (every clique the batch
// added or removed contains at least one of these vertices), whether the
// rebuild fallback ran, and per tracked p the exact clique delta.
type Delta struct {
	AddedEdges   []Edge
	RemovedEdges []Edge
	// Touched is the sorted set of endpoints of the effective edges; empty
	// means the batch was a no-op.
	Touched []V
	// Rebuilt reports that the batch exceeded the density threshold and the
	// tracked listings were recomputed from scratch instead of patched.
	Rebuilt bool
	// Cliques has one entry per tracked p, ascending.
	Cliques []CliqueDelta
}

// Effective returns the number of effective edge changes.
func (d *Delta) Effective() int { return len(d.AddedEdges) + len(d.RemovedEdges) }

// DynConfig tunes the incremental engine. The zero value takes the
// documented defaults.
type DynConfig struct {
	// RebuildFraction is the density threshold: a batch whose effective
	// edge-change count exceeds RebuildFraction·M (and RebuildMinBatch)
	// recomputes the tracked listings with one kernel rebuild instead of
	// patching around the frontier. Default DefaultRebuildFraction;
	// negative disables the fallback entirely.
	RebuildFraction float64
	// RebuildMinBatch is the absolute floor below which a batch is always
	// applied incrementally, whatever the fraction says — tiny graphs
	// otherwise rebuild on every mutation. Default DefaultRebuildMinBatch.
	RebuildMinBatch int
}

// Defaults for DynConfig; exported so the workload generator can build
// schedules that deliberately cross the threshold.
const (
	DefaultRebuildFraction = 0.10
	DefaultRebuildMinBatch = 32
)

func (c DynConfig) withDefaults() DynConfig {
	// Defaults come from the process-wide Tuning (which itself defaults to
	// DefaultRebuildFraction/DefaultRebuildMinBatch), so an autotuned
	// profile reshapes the rebuild threshold without touching callers.
	t := CurrentTuning()
	if c.RebuildFraction == 0 {
		c.RebuildFraction = t.RebuildFraction
	}
	if c.RebuildMinBatch == 0 {
		c.RebuildMinBatch = t.RebuildMinBatch
	}
	return c
}

// DynStats counts the engine's decisions.
type DynStats struct {
	// Batches is the number of ApplyBatch calls that changed the graph.
	Batches int64
	// Incremental and Rebuilds split Batches by how the tracked listings
	// were maintained. Batches with nothing tracked count as Incremental.
	Incremental, Rebuilds int64
	// AddedEdges and RemovedEdges total the effective edge changes.
	AddedEdges, RemovedEdges int64
}

// cliqueTracker is the maintained listing of one clique size.
type cliqueTracker struct {
	p   int
	set CliqueSet
}

// DynGraph is a mutable simple graph over a fixed vertex set [0, N) with
// optional incremental p-clique maintenance. It is safe for concurrent
// use: mutations serialize, reads run under a shared lock. The maintained
// listing is byte-deterministic — Cliques(p) always equals the static
// ListCliques(p) of an equal graph, whatever mutation history produced it.
type DynGraph struct {
	mu  sync.RWMutex
	n   int
	m   int
	adj [][]V
	cfg DynConfig

	tracked []*cliqueTracker // ascending p
	stats   DynStats

	// commitHook, when set, observes each effective batch just before the
	// adjacency mutates; a hook error aborts the batch untouched. The
	// durable store logs batches to its WAL through this.
	commitHook func([]Mutation) error

	// snap caches the immutable snapshot between mutations.
	snap *Graph
}

// NewDynGraph wraps a copy of g (g itself is never modified) and begins
// tracking the given clique sizes, paying one full listing per size. Sizes
// below 2 or duplicated are ignored.
func NewDynGraph(g *Graph, cfg DynConfig, ps ...int) *DynGraph {
	d := &DynGraph{n: g.n, m: g.m, adj: make([][]V, g.n), cfg: cfg.withDefaults()}
	for v := range d.adj {
		d.adj[v] = slices.Clone(g.adj[v])
	}
	d.snap = g
	ps = slices.Clone(ps)
	slices.Sort(ps)
	for _, p := range slices.Compact(ps) {
		if p < 2 {
			continue
		}
		d.tracked = append(d.tracked, &cliqueTracker{p: p, set: NewCliqueSet(g.ListCliques(p))})
	}
	return d
}

// N returns the (fixed) vertex count.
func (d *DynGraph) N() int { return d.n }

// M returns the current edge count.
func (d *DynGraph) M() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.m
}

// Tracked returns the tracked clique sizes, ascending.
func (d *DynGraph) Tracked() []int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]int, len(d.tracked))
	for i, tr := range d.tracked {
		out[i] = tr.p
	}
	return out
}

// Stats returns a snapshot of the engine counters.
func (d *DynGraph) Stats() DynStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.stats
}

// HasEdge reports whether {u,v} is currently an edge.
func (d *DynGraph) HasEdge(u, v V) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if u < 0 || int(u) >= d.n || v < 0 || int(v) >= d.n || u == v {
		return false
	}
	_, ok := slices.BinarySearch(d.adj[u], v)
	return ok
}

// Count returns the maintained p-clique count; ok is false when p is not
// tracked.
func (d *DynGraph) Count(p int) (n int64, ok bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if tr := d.trackerLocked(p); tr != nil {
		return int64(tr.set.Len()), true
	}
	return 0, false
}

// Cliques returns the maintained p-clique listing sorted lexicographically
// — byte-identical to ListCliques(p) on an equal static graph. ok is false
// when p is not tracked.
func (d *DynGraph) Cliques(p int) (cs []Clique, ok bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if tr := d.trackerLocked(p); tr != nil {
		return tr.set.Cliques(), true
	}
	return nil, false
}

func (d *DynGraph) trackerLocked(p int) *cliqueTracker {
	for _, tr := range d.tracked {
		if tr.p == p {
			return tr
		}
	}
	return nil
}

// Track adds p to the tracked sizes, paying one full listing of the
// current graph; tracking an already-tracked or p < 2 size is a no-op.
func (d *DynGraph) Track(p int) {
	if p < 2 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.trackerLocked(p) != nil {
		return
	}
	tr := &cliqueTracker{p: p, set: NewCliqueSet(d.snapshotLocked().ListCliques(p))}
	d.tracked = append(d.tracked, tr)
	sort.Slice(d.tracked, func(i, j int) bool { return d.tracked[i].p < d.tracked[j].p })
}

// Snapshot returns an immutable Graph equal to the current state. The
// snapshot is cached between mutations, so repeated calls are free; the
// returned graph shares nothing mutable with the DynGraph.
func (d *DynGraph) Snapshot() *Graph {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotLocked()
}

func (d *DynGraph) snapshotLocked() *Graph {
	if d.snap == nil {
		adj := make([][]V, d.n)
		for v := range adj {
			adj[v] = slices.Clone(d.adj[v])
		}
		d.snap = &Graph{n: d.n, m: d.m, adj: adj}
	}
	return d.snap
}

// SetCommitHook installs (or, with nil, removes) the commit hook:
// ApplyBatch invokes it with each batch's effective mutations after
// validation but before the adjacency changes, and a hook error aborts
// the batch untouched. No-op batches never reach the hook.
func (d *DynGraph) SetCommitHook(h func([]Mutation) error) {
	d.mu.Lock()
	d.commitHook = h
	d.mu.Unlock()
}

// AddEdge is ApplyBatch of one insertion.
func (d *DynGraph) AddEdge(u, v V) (*Delta, error) {
	return d.ApplyBatch([]Mutation{{Op: MutAdd, Edge: Edge{U: u, V: v}}})
}

// RemoveEdge is ApplyBatch of one deletion.
func (d *DynGraph) RemoveEdge(u, v V) (*Delta, error) {
	return d.ApplyBatch([]Mutation{{Op: MutDel, Edge: Edge{U: u, V: v}}})
}

// ApplyBatch applies the mutations in order and returns the batch's exact
// effect. The whole batch validates before anything changes: one bad
// mutation rejects the batch with ErrBadMutation and the graph is
// untouched. Redundant mutations (adding a present edge, deleting an
// absent one) are legal no-ops, so the effective delta — and therefore the
// clique delta, the Touched cover and the stats — depend only on the
// initial and final edge sets, never on how the batch spelled them.
func (d *DynGraph) ApplyBatch(muts []Mutation) (*Delta, error) {
	for _, mu := range muts {
		e := mu.Edge
		if mu.Op != MutAdd && mu.Op != MutDel {
			return nil, fmt.Errorf("%w: unknown op %d", ErrBadMutation, mu.Op)
		}
		if e.U < 0 || int(e.U) >= d.n || e.V < 0 || int(e.V) >= d.n {
			return nil, fmt.Errorf("%w: edge %v out of range [0,%d)", ErrBadMutation, e, d.n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("%w: self-loop on %d", ErrBadMutation, e.U)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	// Resolve the batch to its effective edge delta: last op per edge
	// wins, then compare against the current presence.
	final := make(map[uint64]bool, len(muts))
	for _, mu := range muts {
		final[mu.Edge.Canon().Pack()] = mu.Op == MutAdd
	}
	var ins, del []uint64
	for k, want := range final {
		e := UnpackEdge(k)
		_, has := slices.BinarySearch(d.adj[e.U], e.V)
		switch {
		case want && !has:
			ins = append(ins, k)
		case !want && has:
			del = append(del, k)
		}
	}
	slices.Sort(ins)
	slices.Sort(del)

	delta := &Delta{
		AddedEdges:   edgesFromKeys(ins),
		RemovedEdges: edgesFromKeys(del),
	}
	if len(ins) == 0 && len(del) == 0 {
		for _, tr := range d.tracked {
			delta.Cliques = append(delta.Cliques, CliqueDelta{P: tr.p, Added: []Clique{}, Removed: []Clique{}})
		}
		return delta, nil
	}
	delta.Touched = touchedCover(delta.AddedEdges, delta.RemovedEdges)

	// Commit barrier: hand the effective batch (canonical, deduplicated,
	// deterministic order — deletions then insertions, each sorted) to the
	// hook before anything mutates. If it fails — a WAL append that could
	// not be made durable — the batch is rejected with the graph untouched,
	// so the log never lags the served state.
	if d.commitHook != nil {
		eff := make([]Mutation, 0, len(del)+len(ins))
		for _, k := range del {
			eff = append(eff, Mutation{Op: MutDel, Edge: UnpackEdge(k)})
		}
		for _, k := range ins {
			eff = append(eff, Mutation{Op: MutAdd, Edge: UnpackEdge(k)})
		}
		if err := d.commitHook(eff); err != nil {
			return nil, fmt.Errorf("graph: commit hook rejected batch: %w", err)
		}
	}

	effective := len(ins) + len(del)
	rebuild := d.cfg.RebuildFraction >= 0 &&
		effective > d.cfg.RebuildMinBatch &&
		float64(effective) > d.cfg.RebuildFraction*float64(max(d.m, 1))

	// Phase 1 (incremental only): cliques of the OLD graph through each
	// deleted edge — these are exactly the cliques the batch removes. The
	// edge loop is outermost so the endpoints' common neighborhood is
	// intersected once and shared across every tracked clique size.
	var removed []CliqueSet
	if !rebuild {
		removed = d.frontierCliques(delta.RemovedEdges)
	}

	// Phase 2: mutate the adjacency.
	for _, k := range del {
		e := UnpackEdge(k)
		d.adj[e.U] = removeSorted(d.adj[e.U], e.V)
		d.adj[e.V] = removeSorted(d.adj[e.V], e.U)
	}
	for _, k := range ins {
		e := UnpackEdge(k)
		d.adj[e.U] = insertSorted(d.adj[e.U], e.V)
		d.adj[e.V] = insertSorted(d.adj[e.V], e.U)
	}
	d.m += len(ins) - len(del)
	d.snap = nil
	d.stats.Batches++
	d.stats.AddedEdges += int64(len(ins))
	d.stats.RemovedEdges += int64(len(del))

	if rebuild {
		d.stats.Rebuilds++
		delta.Rebuilt = true
		snap := d.snapshotLocked()
		for _, tr := range d.tracked {
			tr.set = NewCliqueSet(snap.ListCliques(tr.p))
			delta.Cliques = append(delta.Cliques, CliqueDelta{P: tr.p})
		}
		return delta, nil
	}
	d.stats.Incremental++

	// Phase 3: cliques of the NEW graph through each inserted edge — these
	// are exactly the cliques the batch adds. Patch the tracked sets.
	added := d.frontierCliques(delta.AddedEdges)
	for i, tr := range d.tracked {
		for k := range removed[i] {
			delete(tr.set, k)
		}
		for k := range added[i] {
			tr.set[k] = struct{}{}
		}
		delta.Cliques = append(delta.Cliques, CliqueDelta{
			P:       tr.p,
			Added:   added[i].Cliques(),
			Removed: removed[i].Cliques(),
		})
	}
	return delta, nil
}

// frontierCliques enumerates, per tracked clique size, the cliques of the
// current adjacency passing through each of the given edges (deduplicated
// — a clique spanning several frontier edges lands once). Each edge's
// common neighborhood is intersected once and reused for every size.
func (d *DynGraph) frontierCliques(edges []Edge) []CliqueSet {
	sets := make([]CliqueSet, len(d.tracked))
	for i := range sets {
		sets[i] = make(CliqueSet)
	}
	if len(d.tracked) == 0 {
		return sets
	}
	for _, e := range edges {
		common := IntersectSorted(d.adj[e.U], d.adj[e.V])
		for i, tr := range d.tracked {
			visitCliquesThroughEdgeCommon(d.adj, e, common, tr.p, func(c Clique) bool {
				sets[i].Add(c)
				return true
			})
		}
	}
	return sets
}

func edgesFromKeys(keys []uint64) []Edge {
	out := make([]Edge, len(keys))
	for i, k := range keys {
		out[i] = UnpackEdge(k)
	}
	return out
}

// touchedCover returns the sorted unique endpoints of the effective edges.
func touchedCover(added, removed []Edge) []V {
	vs := make([]V, 0, 2*(len(added)+len(removed)))
	for _, e := range added {
		vs = append(vs, e.U, e.V)
	}
	for _, e := range removed {
		vs = append(vs, e.U, e.V)
	}
	slices.Sort(vs)
	return slices.Compact(vs)
}

func insertSorted(s []V, v V) []V {
	i, ok := slices.BinarySearch(s, v)
	if ok {
		return s
	}
	return slices.Insert(s, i, v)
}

func removeSorted(s []V, v V) []V {
	i, ok := slices.BinarySearch(s, v)
	if !ok {
		return s
	}
	return slices.Delete(s, i, i+1)
}

// visitCliquesThroughEdge enumerates every p-clique of the graph described
// by adj (sorted rows) that contains the edge {e.U, e.V}, yielding each
// exactly once with vertices sorted ascending (the slice is reused between
// calls). The edge itself must be present. Enumeration confines itself to
// the common neighborhood of the endpoints: candidates are intersected
// against each chosen vertex's sorted row, the same merge the enumeration
// kernel runs, so cost is O(d·(p-2)·|N(u)∩N(v)|) per emitted clique branch
// — independent of the graph's total clique population. Returns false iff
// yield aborted.
func visitCliquesThroughEdge(adj [][]V, e Edge, p int, yield func(Clique) bool) bool {
	if p < 2 {
		return true
	}
	if p == 2 {
		return visitCliquesThroughEdgeCommon(adj, e, nil, p, yield)
	}
	return visitCliquesThroughEdgeCommon(adj, e, IntersectSorted(adj[e.U], adj[e.V]), p, yield)
}

// visitCliquesThroughEdgeCommon is visitCliquesThroughEdge with the
// endpoints' common neighborhood precomputed, so callers enumerating
// several clique sizes through one edge intersect only once.
func visitCliquesThroughEdgeCommon(adj [][]V, e Edge, common []V, p int, yield func(Clique) bool) bool {
	if p < 2 {
		return true
	}
	scratch := make(Clique, p)
	if p == 2 {
		scratch[0], scratch[1] = e.U, e.V
		sortV(scratch)
		return yield(scratch)
	}
	need := p - 2
	if len(common) < need {
		return true
	}
	chosen := make([]V, 0, need)
	// bufs[d] backs the candidate set after the d-th choice.
	bufs := make([][]V, need)
	for i := range bufs {
		bufs[i] = make([]V, 0, len(common))
	}
	var rec func(cands []V, depth int) bool
	rec = func(cands []V, depth int) bool {
		if depth == need {
			scratch = scratch[:0]
			scratch = append(scratch, e.U, e.V)
			scratch = append(scratch, chosen...)
			sortV(scratch)
			return yield(scratch)
		}
		for i, w := range cands {
			if len(cands)-i < need-depth {
				return true
			}
			next := intersectInto(bufs[depth][:0], cands[i+1:], adj[w])
			if len(next) < need-depth-1 {
				continue
			}
			chosen = append(chosen, w)
			ok := rec(next, depth+1)
			chosen = chosen[:len(chosen)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	return rec(common, 0)
}

// intersectInto writes a ∩ b into dst (both ascending) and returns it.
func intersectInto(dst, a, b []V) []V {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// VisitCliquesThroughEdge enumerates every p-clique of g containing the
// edge e, which must be present in g; the yielded slice is reused between
// calls. It returns false iff yield aborted. This is the frontier
// re-enumeration primitive behind the incremental clique-delta engine and
// the Session's selective cache invalidation.
func (g *Graph) VisitCliquesThroughEdge(e Edge, p int, yield func(Clique) bool) bool {
	e = e.Canon()
	if e.U < 0 || int(e.V) >= g.n || e.U == e.V || !g.HasEdge(e.U, e.V) {
		return true
	}
	return visitCliquesThroughEdge(g.adj, e, p, yield)
}

// HasCliqueThroughEdge reports whether g has at least one p-clique
// containing the edge e — the existence short-circuit the serving layer
// uses to decide whether a cached p-listing survives a mutation batch.
func (g *Graph) HasCliqueThroughEdge(e Edge, p int) bool {
	found := false
	g.VisitCliquesThroughEdge(e, p, func(Clique) bool {
		found = true
		return false
	})
	return found
}
