package graph

import (
	"fmt"
	"sort"
)

// EdgeList is a mutable working set of canonical edges. The clique-listing
// pipeline manipulates edge partitions (Em, Es, Er) as EdgeLists and builds
// Graph views on demand.
type EdgeList []Edge

// NewEdgeList canonicalizes, sorts, and dedupes the given edges, dropping
// self-loops.
func NewEdgeList(edges []Edge) EdgeList {
	out := make(EdgeList, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		out = append(out, e.Canon())
	}
	out.Normalize()
	return out
}

// Normalize sorts in place by (U,V) and removes duplicates.
func (el *EdgeList) Normalize() {
	s := *el
	for i := range s {
		s[i] = s[i].Canon()
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].U != s[j].U {
			return s[i].U < s[j].U
		}
		return s[i].V < s[j].V
	})
	w := 0
	for i := range s {
		if i == 0 || s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	*el = s[:w]
}

// Graph materializes the edge list as a Graph over n vertices.
func (el EdgeList) Graph(n int) (*Graph, error) {
	return New(n, el)
}

// Contains reports whether e (canonicalized) is in the normalized list.
// The receiver must be normalized.
func (el EdgeList) Contains(e Edge) bool {
	e = e.Canon()
	i := sort.Search(len(el), func(i int) bool {
		if el[i].U != e.U {
			return el[i].U > e.U
		}
		return el[i].V >= e.V
	})
	return i < len(el) && el[i] == e
}

// Union returns the normalized union of a and b.
func Union(a, b EdgeList) EdgeList {
	out := make(EdgeList, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	out.Normalize()
	return out
}

// Subtract returns the normalized edges of a that are not in b. Both inputs
// must be normalized.
func Subtract(a, b EdgeList) EdgeList {
	out := make(EdgeList, 0, len(a))
	i, j := 0, 0
	less := func(x, y Edge) bool {
		if x.U != y.U {
			return x.U < y.U
		}
		return x.V < y.V
	}
	for i < len(a) {
		switch {
		case j >= len(b) || less(a[i], b[j]):
			out = append(out, a[i])
			i++
		case less(b[j], a[i]):
			j++
		default:
			i++
			j++
		}
	}
	return out
}

// Disjoint reports whether the two normalized lists share no edge.
func Disjoint(a, b EdgeList) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].U < b[j].U || (a[i].U == b[j].U && a[i].V < b[j].V):
			i++
		case b[j].U < a[i].U || (b[j].U == a[i].U && b[j].V < a[i].V):
			j++
		default:
			return false
		}
	}
	return true
}

// AdjacencyView is a lightweight adjacency index over an EdgeList, used by
// phases that query neighborhoods of a working edge set without building a
// full Graph.
type AdjacencyView struct {
	n   int
	adj [][]V
}

// NewAdjacencyView indexes the edges over n vertices.
func NewAdjacencyView(n int, el EdgeList) (*AdjacencyView, error) {
	adj := make([][]V, n)
	for _, e := range el {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge %v out of range [0,%d)", e, n)
		}
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for v := range adj {
		adj[v] = sortDedup(adj[v])
	}
	return &AdjacencyView{n: n, adj: adj}, nil
}

// N returns the number of vertices of the view.
func (av *AdjacencyView) N() int { return av.n }

// Neighbors returns the sorted neighbors of v within the edge list.
func (av *AdjacencyView) Neighbors(v V) []V { return av.adj[v] }

// Degree returns the degree of v within the edge list.
func (av *AdjacencyView) Degree(v V) int { return len(av.adj[v]) }

// HasEdge reports adjacency within the edge list.
func (av *AdjacencyView) HasEdge(u, v V) bool {
	if u == v {
		return false
	}
	a := av.adj[u]
	if len(av.adj[v]) < len(a) {
		a, v = av.adj[v], u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}
