package graph

import (
	"math/rand"
	"testing"
)

// churnPair builds a 1%-of-edges batch and its exact inverse, so a
// benchmark can apply them alternately and keep the graph (and the
// maintained listing) at its starting point across iterations.
func churnPair(g *Graph, frac float64, seed int64) (fwd, rev []Mutation) {
	rng := rand.New(rand.NewSource(seed))
	edges := g.Edges()
	k := max(1, int(float64(len(edges))*frac))
	for _, i := range rng.Perm(len(edges))[:k] {
		fwd = append(fwd, Mutation{MutDel, edges[i]})
		rev = append(rev, Mutation{MutAdd, edges[i]})
	}
	return fwd, rev
}

// BenchmarkDynGraphApplyIncremental times the incremental clique-delta
// engine on the acceptance workload: G(256, 0.4), p = 4, 1%-of-edges
// batches. Compare against BenchmarkDynGraphApplyRebuild — the same
// batches through the full-rebuild fallback — for the E12 speedup.
func BenchmarkDynGraphApplyIncremental(b *testing.B) {
	benchDynApply(b, DynConfig{})
}

// BenchmarkDynGraphApplyRebuild forces every batch through the
// full-rebuild fallback (threshold floored), the cost incremental
// maintenance avoids.
func BenchmarkDynGraphApplyRebuild(b *testing.B) {
	benchDynApply(b, DynConfig{RebuildFraction: 1e-12, RebuildMinBatch: -1})
}

func benchDynApply(b *testing.B, cfg DynConfig) {
	g := ErdosRenyi(256, 0.4, rand.New(rand.NewSource(1)))
	d := NewDynGraph(g, cfg, 4)
	fwd, rev := churnPair(g, 0.01, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := fwd
		if i%2 == 1 {
			batch = rev
		}
		if _, err := d.ApplyBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}
