package graph

// Tuning gathers the performance knobs of the enumeration kernel and the
// incremental clique-delta engine that PR 4/PR 5 landed as hand-picked
// package constants. Every knob is a pure performance trade-off: the
// listing output is byte-identical for every legal setting (the
// differential and metamorphic suites are run under non-default profiles
// to pin that), so an autotuned per-host profile can be applied without
// re-validating correctness. The process-wide tuning is read once per
// kernel construction (and once per DynGraph construction for the rebuild
// thresholds); changing it never touches already-built kernels.

import (
	"fmt"
	"sync/atomic"
)

// Tuning is one coherent set of kernel/dynamic-engine knobs. The zero
// value of any field means "use the built-in default", so partial
// profiles compose with DefaultTuning. See DESIGN.md §11 for how
// `benchrunner -autotune` measures these on the current host.
type Tuning struct {
	// RowMaxN bounds the vertex count for which the kernel builds
	// word-packed adjacency-row bitmaps (n·⌈n/64⌉ words ≈ n²/8 bytes).
	// Beyond it every intersection uses the sorted merge.
	RowMaxN int `json:"rowMaxN,omitempty"`
	// RowMinOut is the max-out-degree floor below which row bitmaps are
	// not worth building: a sorted merge against a tiny list is already a
	// handful of cache lines.
	RowMinOut int `json:"rowMinOut,omitempty"`
	// BitsetCut switches one intersection from sorted merge,
	// O(|C|+|out(w)|), to bitmap probes, O(|C|): probe when out(w) is
	// this many times larger than the candidate set.
	BitsetCut int `json:"bitsetCut,omitempty"`
	// RootChunk is how many root vertices a parallel worker claims per
	// fetch-add; coarse enough to keep contention negligible, fine enough
	// to balance skewed degree distributions.
	RootChunk int `json:"rootChunk,omitempty"`
	// RebuildFraction is the incremental engine's density threshold: a
	// batch whose effective edge-change count exceeds RebuildFraction·M
	// (and RebuildMinBatch) triggers a full kernel rebuild instead of
	// frontier patching.
	RebuildFraction float64 `json:"rebuildFraction,omitempty"`
	// RebuildMinBatch is the absolute batch-size floor below which a
	// batch is always applied incrementally.
	RebuildMinBatch int `json:"rebuildMinBatch,omitempty"`
	// SessionPoolSize is the serving layer's default LRU capacity of open
	// sessions (kplistd -pool overrides per process). More sessions avoid
	// re-peeling graphs on pool misses at the cost of resident kernels.
	SessionPoolSize int `json:"sessionPoolSize,omitempty"`
	// BatchWorkers is the worker floor for Session.QueryBatch: batches run
	// on max(BatchWorkers, 2·MaxConcurrent) goroutines (clamped to the
	// batch length), so coalesced waiters never starve executors.
	BatchWorkers int `json:"batchWorkers,omitempty"`
}

// DefaultTuning returns the built-in knob settings — the constants the
// kernel and dynamic engine shipped with, tuned on the original
// development box.
func DefaultTuning() Tuning {
	return Tuning{
		RowMaxN:         kernelRowMaxN,
		RowMinOut:       kernelRowMinOut,
		BitsetCut:       kernelBitsetCut,
		RootChunk:       kernelRootChunk,
		RebuildFraction: DefaultRebuildFraction,
		RebuildMinBatch: DefaultRebuildMinBatch,
		SessionPoolSize: defaultSessionPoolSize,
		BatchWorkers:    defaultBatchWorkers,
	}
}

// The serving-layer defaults PR 3 shipped as hard-wired constants (pool
// capacity 8, batch-worker floor 8), now autotunable like the kernel knobs.
const (
	defaultSessionPoolSize = 8
	defaultBatchWorkers    = 8
)

// withDefaults fills zero fields from DefaultTuning and clamps the
// positive-integer knobs to legal values.
func (t Tuning) withDefaults() Tuning {
	d := DefaultTuning()
	if t.RowMaxN == 0 {
		t.RowMaxN = d.RowMaxN
	}
	if t.RowMinOut == 0 {
		t.RowMinOut = d.RowMinOut
	}
	if t.BitsetCut == 0 {
		t.BitsetCut = d.BitsetCut
	}
	if t.BitsetCut < 1 {
		t.BitsetCut = 1
	}
	if t.RootChunk == 0 {
		t.RootChunk = d.RootChunk
	}
	if t.RootChunk < 1 {
		t.RootChunk = 1
	}
	if t.RebuildFraction == 0 {
		t.RebuildFraction = d.RebuildFraction
	}
	if t.RebuildMinBatch == 0 {
		t.RebuildMinBatch = d.RebuildMinBatch
	}
	if t.SessionPoolSize == 0 {
		t.SessionPoolSize = d.SessionPoolSize
	}
	if t.SessionPoolSize < 1 {
		t.SessionPoolSize = 1
	}
	if t.BatchWorkers == 0 {
		t.BatchWorkers = d.BatchWorkers
	}
	if t.BatchWorkers < 1 {
		t.BatchWorkers = 1
	}
	return t
}

// Validate rejects settings that are nonsensical rather than merely slow.
// Zero fields are legal (they mean "default").
func (t Tuning) Validate() error {
	if t.RowMaxN < 0 {
		return fmt.Errorf("graph: tuning RowMaxN %d < 0", t.RowMaxN)
	}
	if t.RowMinOut < 0 {
		return fmt.Errorf("graph: tuning RowMinOut %d < 0", t.RowMinOut)
	}
	if t.BitsetCut < 0 {
		return fmt.Errorf("graph: tuning BitsetCut %d < 0", t.BitsetCut)
	}
	if t.RootChunk < 0 {
		return fmt.Errorf("graph: tuning RootChunk %d < 0", t.RootChunk)
	}
	if t.RebuildMinBatch < 0 {
		return fmt.Errorf("graph: tuning RebuildMinBatch %d < 0", t.RebuildMinBatch)
	}
	if t.SessionPoolSize < 0 {
		return fmt.Errorf("graph: tuning SessionPoolSize %d < 0", t.SessionPoolSize)
	}
	if t.BatchWorkers < 0 {
		return fmt.Errorf("graph: tuning BatchWorkers %d < 0", t.BatchWorkers)
	}
	return nil
}

// curTuning holds the process-wide tuning; nil means DefaultTuning.
var curTuning atomic.Pointer[Tuning]

// SetTuning installs t (zero fields defaulted) as the process-wide tuning
// for kernels and DynGraphs constructed from now on; existing structures
// are unaffected. It returns the previous tuning so callers can restore
// it. SetTuning(Tuning{}) restores the defaults.
func SetTuning(t Tuning) (prev Tuning) {
	prev = CurrentTuning()
	filled := t.withDefaults()
	curTuning.Store(&filled)
	return prev
}

// CurrentTuning returns the process-wide tuning with defaults filled in.
func CurrentTuning() Tuning {
	if p := curTuning.Load(); p != nil {
		return *p
	}
	return DefaultTuning()
}
