package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDegeneracyKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"K5", Complete(5), 4},
		{"C6", Cycle(6), 2},
		{"P5", Path(5), 1},
		{"empty", MustNew(5, nil), 0},
		{"star", MustNew(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}}), 1},
	}
	for _, c := range cases {
		got := c.g.Degeneracy().Degeneracy
		if got != c.want {
			t.Errorf("%s: degeneracy = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestDegeneracyOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ErdosRenyi(100, 0.1, rng)
	res := g.Degeneracy()
	if len(res.Order) != g.N() {
		t.Fatalf("order has %d entries, want %d", len(res.Order), g.N())
	}
	seen := make([]bool, g.N())
	for i, v := range res.Order {
		if seen[v] {
			t.Fatalf("vertex %d appears twice in order", v)
		}
		seen[v] = true
		if res.Rank[v] != i {
			t.Fatalf("Rank[%d] = %d, want %d", v, res.Rank[v], i)
		}
	}
}

func TestDegeneracyOrientationOutDegreeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := ErdosRenyi(80, 0.05+0.2*rng.Float64(), rng)
		res := g.Degeneracy()
		o := g.DegeneracyOrientation()
		if o.MaxOutDegree() > res.Degeneracy {
			t.Fatalf("max out-degree %d exceeds degeneracy %d", o.MaxOutDegree(), res.Degeneracy)
		}
		if o.EdgeCount() != g.M() {
			t.Fatalf("orientation covers %d edges, graph has %d", o.EdgeCount(), g.M())
		}
		// Every oriented edge is a real edge.
		for v := 0; v < g.N(); v++ {
			for _, w := range o.Out(V(v)) {
				if !g.HasEdge(V(v), w) {
					t.Fatalf("oriented non-edge %d->%d", v, w)
				}
			}
		}
	}
}

// Property: degeneracy orientation out-degree bound holds on arbitrary
// random graphs (testing/quick drives the seed and density).
func TestQuickOrientationBound(t *testing.T) {
	f := func(seed int64, densityRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		density := 0.02 + float64(densityRaw%100)/250.0
		g := ErdosRenyi(50, density, rng)
		o := g.DegeneracyOrientation()
		return o.MaxOutDegree() <= g.Degeneracy().Degeneracy && o.EdgeCount() == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOrientationOwner(t *testing.T) {
	o, err := NewOrientation(4, [][]V{{1, 2}, {3}, nil, nil})
	if err != nil {
		t.Fatalf("NewOrientation: %v", err)
	}
	if o.Owner(Edge{0, 1}) != 0 {
		t.Error("owner of {0,1} should be 0")
	}
	if o.Owner(Edge{3, 1}) != 1 {
		t.Error("owner of {1,3} should be 1")
	}
	if o.Owner(Edge{2, 3}) != -1 {
		t.Error("owner of absent edge should be -1")
	}
	if o.OutDegree(0) != 2 || o.MaxOutDegree() != 2 {
		t.Error("out-degrees wrong")
	}
}

func TestOrientationErrors(t *testing.T) {
	if _, err := NewOrientation(2, [][]V{{1}}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NewOrientation(2, [][]V{{5}, nil}); err == nil {
		t.Error("out-of-range head should error")
	}
	if _, err := NewOrientation(2, [][]V{{0}, nil}); err == nil {
		t.Error("self-loop should error")
	}
}

func TestOrientationRestrictMerge(t *testing.T) {
	o, _ := NewOrientation(4, [][]V{{1, 2}, {3}, {3}, nil})
	keep := NewEdgeList([]Edge{{0, 1}, {2, 3}})
	r := o.Restrict(keep)
	if r.EdgeCount() != 2 {
		t.Fatalf("restricted count = %d, want 2", r.EdgeCount())
	}
	if r.Owner(Edge{0, 1}) != 0 || r.Owner(Edge{2, 3}) != 2 {
		t.Error("restriction changed owners")
	}
	o2, _ := NewOrientation(4, [][]V{nil, {0}, nil, {1}})
	m, err := r.Merge(o2)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	// {0,1} exists in both; receiver direction (0->1) must win.
	if m.Owner(Edge{0, 1}) != 0 {
		t.Error("merge should keep receiver direction for shared edge")
	}
	if m.EdgeCount() != 3 {
		t.Errorf("merged count = %d, want 3", m.EdgeCount())
	}
}

func TestPeelOrientation(t *testing.T) {
	// Barbell: two K6 joined by a path. Peeling with threshold 2 removes
	// only the path; cliques survive.
	g := Barbell(6, 4)
	el := NewEdgeList(g.Edges())
	o, peeled, survivors := PeelOrientation(g.N(), el, 2)
	if o.MaxOutDegree() > 2 {
		t.Errorf("peel out-degree %d exceeds threshold 2", o.MaxOutDegree())
	}
	if len(survivors) != 12 {
		t.Errorf("survivors = %d, want 12 clique vertices", len(survivors))
	}
	// Surviving edges = all minus peeled; every survivor must have degree > 2 there.
	rest := Subtract(el, peeled)
	av, err := NewAdjacencyView(g.N(), rest)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range survivors {
		if av.Degree(v) <= 2 {
			t.Errorf("survivor %d has residual degree %d", v, av.Degree(v))
		}
	}
	// Peeled + rest = all.
	if len(peeled)+len(rest) != len(el) {
		t.Errorf("peel does not partition: %d + %d != %d", len(peeled), len(rest), len(el))
	}
}

func TestPeelOrientationFullPeel(t *testing.T) {
	// Threshold ≥ max degree peels everything.
	g := Cycle(10)
	el := NewEdgeList(g.Edges())
	o, peeled, survivors := PeelOrientation(g.N(), el, 2)
	if len(survivors) != 0 {
		t.Errorf("cycle should fully peel at threshold 2, survivors=%v", survivors)
	}
	if len(peeled) != g.M() {
		t.Errorf("peeled %d edges, want %d", len(peeled), g.M())
	}
	if o.EdgeCount() != g.M() {
		t.Errorf("orientation has %d edges, want %d", o.EdgeCount(), g.M())
	}
}

// Property: for any random graph and threshold, PeelOrientation's
// orientation out-degree respects the threshold and the peeled+rest
// partition is exact.
func TestQuickPeelInvariants(t *testing.T) {
	f := func(seed int64, thrRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(40, 0.15, rng)
		el := NewEdgeList(g.Edges())
		thr := 1 + int(thrRaw%8)
		o, peeled, survivors := PeelOrientation(g.N(), el, thr)
		if o.MaxOutDegree() > thr {
			return false
		}
		rest := Subtract(el, peeled)
		av, err := NewAdjacencyView(g.N(), rest)
		if err != nil {
			return false
		}
		for _, v := range survivors {
			if av.Degree(v) <= thr {
				return false
			}
		}
		return len(peeled)+len(rest) == len(el) && Disjoint(peeled, rest)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
