package graph

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Clique is a set of p vertices, stored sorted ascending. It is the unit of
// output of every listing algorithm in this repository.
type Clique []V

// Key packs the clique into a string usable as a map key. The clique must
// already be sorted (all producers in this repository sort).
func (c Clique) Key() string {
	buf := make([]byte, 4*len(c))
	for i, v := range c {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return string(buf)
}

// CliqueFromKey reverses Clique.Key.
func CliqueFromKey(k string) Clique {
	c := make(Clique, len(k)/4)
	for i := range c {
		c[i] = V(binary.LittleEndian.Uint32([]byte(k[4*i : 4*i+4])))
	}
	return c
}

func (c Clique) String() string {
	return fmt.Sprintf("%v", []V(c))
}

// CliqueSet is a set of cliques, used to compare algorithm output against
// ground truth exactly.
type CliqueSet map[string]struct{}

// NewCliqueSet builds a set from a list of cliques, sorting each.
func NewCliqueSet(cs []Clique) CliqueSet {
	s := make(CliqueSet, len(cs))
	for _, c := range cs {
		s.Add(c)
	}
	return s
}

// Add inserts a copy of c (sorted) into the set.
func (s CliqueSet) Add(c Clique) {
	cp := make(Clique, len(c))
	copy(cp, c)
	sortV(cp)
	s[cp.Key()] = struct{}{}
}

// Has reports membership of c (order-insensitive).
func (s CliqueSet) Has(c Clique) bool {
	cp := make(Clique, len(c))
	copy(cp, c)
	sortV(cp)
	_, ok := s[cp.Key()]
	return ok
}

// Len returns the number of cliques in the set.
func (s CliqueSet) Len() int { return len(s) }

// Equal reports exact set equality.
func (s CliqueSet) Equal(t CliqueSet) bool {
	if len(s) != len(t) {
		return false
	}
	for k := range s {
		if _, ok := t[k]; !ok {
			return false
		}
	}
	return true
}

// Minus returns the cliques in s that are not in t, sorted.
func (s CliqueSet) Minus(t CliqueSet) []Clique {
	var out []Clique
	for k := range s {
		if _, ok := t[k]; !ok {
			out = append(out, CliqueFromKey(k))
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessClique(out[i], out[j]) })
	return out
}

// Cliques returns the members sorted lexicographically.
func (s CliqueSet) Cliques() []Clique {
	out := make([]Clique, 0, len(s))
	for k := range s {
		out = append(out, CliqueFromKey(k))
	}
	sort.Slice(out, func(i, j int) bool { return lessClique(out[i], out[j]) })
	return out
}

func lessClique(a, b Clique) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// ListCliques enumerates every clique of exactly p vertices in g, returning
// them sorted. This is the sequential ground truth: it uses the degeneracy
// order so each clique is produced exactly once from its earliest vertex,
// with running time O(m · d^{p-2}) where d is the degeneracy.
func (g *Graph) ListCliques(p int) []Clique {
	var out []Clique
	g.VisitCliques(p, func(c Clique) {
		cp := make(Clique, len(c))
		copy(cp, c)
		out = append(out, cp)
	})
	sort.Slice(out, func(i, j int) bool { return lessClique(out[i], out[j]) })
	return out
}

// CountCliques counts cliques of exactly p vertices without materializing
// them.
func (g *Graph) CountCliques(p int) int64 {
	var count int64
	g.VisitCliques(p, func(Clique) { count++ })
	return count
}

// VisitCliques calls yield once per p-clique. The clique slice is reused
// between calls; yield must copy it to retain it. Vertices within each
// yielded clique are sorted ascending.
func (g *Graph) VisitCliques(p int, yield func(Clique)) {
	if p <= 0 {
		return
	}
	if p == 1 {
		c := make(Clique, 1)
		for v := 0; v < g.n; v++ {
			c[0] = V(v)
			yield(c)
		}
		return
	}
	res := g.Degeneracy()
	rank := res.Rank
	// laterAdj[v] = neighbors of v with larger rank, sorted by vertex ID.
	laterAdj := make([][]V, g.n)
	for v := 0; v < g.n; v++ {
		for _, w := range g.adj[v] {
			if rank[v] < rank[w] {
				laterAdj[v] = append(laterAdj[v], w)
			}
		}
	}
	prefix := make(Clique, 0, p)
	scratch := make(Clique, p)
	// Root level: each vertex with its later-rank neighborhood, so every
	// clique is produced exactly once, rooted at its earliest-rank vertex.
	for v := 0; v < g.n; v++ {
		if len(laterAdj[v]) < p-1 {
			continue
		}
		prefix = append(prefix, V(v))
		recurse(g, laterAdj[v], p-1, &prefix, scratch, yield)
		prefix = prefix[:0]
	}
}

// recurse extends the current prefix with vertices from cands (sorted by ID,
// all adjacent to every prefix vertex), needing `need` more vertices. The
// prefix is in rank-then-ID order, not ID order, so completed cliques are
// copied into scratch and sorted there; the prefix itself is never mutated
// except by push/pop.
func recurse(g *Graph, cands []V, need int, prefix *Clique, scratch Clique, yield func(Clique)) {
	for i, v := range cands {
		if len(cands)-i < need {
			return
		}
		*prefix = append(*prefix, v)
		if need == 1 {
			copy(scratch, *prefix)
			sortV(scratch)
			yield(scratch)
		} else {
			next := IntersectSorted(cands[i+1:], g.adj[v])
			recurse(g, next, need-1, prefix, scratch, yield)
		}
		*prefix = (*prefix)[:len(*prefix)-1]
	}
}

// LocalLister enumerates p-cliques inside an arbitrary locally-known edge
// set — this is what a single simulated node runs over the edges it has
// learned. The adjacency is built once from the provided edges.
type LocalLister struct {
	adj map[V][]V
}

// NewLocalLister indexes the given edges (canonicalized, deduped).
func NewLocalLister(edges []Edge) *LocalLister {
	adj := make(map[V][]V)
	seen := make(map[Edge]struct{}, len(edges))
	for _, e := range edges {
		e = e.Canon()
		if e.U == e.V {
			continue
		}
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for v := range adj {
		adj[v] = sortDedup(adj[v])
	}
	return &LocalLister{adj: adj}
}

// Neighbors returns the known sorted neighbors of v.
func (ll *LocalLister) Neighbors(v V) []V { return ll.adj[v] }

// HasEdge reports whether the lister knows edge {u,v}.
func (ll *LocalLister) HasEdge(u, v V) bool {
	a, ok := ll.adj[u]
	if !ok {
		return false
	}
	return ContainsSorted(a, v)
}

// VisitCliques enumerates every p-clique within the known edges, yielding
// each exactly once (sorted ascending; the slice is reused between calls).
func (ll *LocalLister) VisitCliques(p int, yield func(Clique)) {
	if p < 2 {
		return
	}
	verts := make([]V, 0, len(ll.adj))
	for v := range ll.adj {
		verts = append(verts, v)
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	prefix := make(Clique, 0, p)
	var rec func(cands []V, need int)
	rec = func(cands []V, need int) {
		if need == 0 {
			yield(prefix)
			return
		}
		for i, v := range cands {
			if len(cands)-i < need {
				return
			}
			prefix = append(prefix, v)
			if need == 1 {
				yield(prefix)
			} else {
				rec(IntersectSorted(cands[i+1:], ll.adj[v]), need-1)
			}
			prefix = prefix[:len(prefix)-1]
		}
	}
	for _, v := range verts {
		later := ll.adj[v]
		// Only neighbors with larger ID, so each clique is rooted at its
		// minimum vertex and produced once.
		idx := sort.Search(len(later), func(i int) bool { return later[i] > v })
		prefix = append(prefix, v)
		rec(later[idx:], p-1)
		prefix = prefix[:0]
	}
}

// ListCliques returns all p-cliques known to the lister, sorted.
func (ll *LocalLister) ListCliques(p int) []Clique {
	var out []Clique
	ll.VisitCliques(p, func(c Clique) {
		cp := make(Clique, len(c))
		copy(cp, c)
		out = append(out, cp)
	})
	sort.Slice(out, func(i, j int) bool { return lessClique(out[i], out[j]) })
	return out
}
