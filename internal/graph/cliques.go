package graph

import (
	"encoding/binary"
	"fmt"
	"slices"
)

// Clique is a set of p vertices, stored sorted ascending. It is the unit of
// output of every listing algorithm in this repository.
type Clique []V

// AppendKey appends the clique's canonical key bytes to dst and returns
// the extended slice. The clique must already be sorted; this is the
// allocation-free form of Key for hot paths that own a scratch buffer.
func (c Clique) AppendKey(dst []byte) []byte {
	for _, v := range c {
		dst = append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return dst
}

// Key packs the clique into a string usable as a map key. The clique must
// already be sorted (all producers in this repository sort).
func (c Clique) Key() string {
	return string(c.AppendKey(make([]byte, 0, 4*len(c))))
}

// CliqueFromKey reverses Clique.Key.
func CliqueFromKey(k string) Clique {
	c := make(Clique, len(k)/4)
	for i := range c {
		c[i] = V(binary.LittleEndian.Uint32([]byte(k[4*i : 4*i+4])))
	}
	return c
}

func (c Clique) String() string {
	return fmt.Sprintf("%v", []V(c))
}

// CliqueSet is a set of cliques, used to compare algorithm output against
// ground truth exactly.
type CliqueSet map[string]struct{}

// NewCliqueSet builds a set from a list of cliques, sorting each.
func NewCliqueSet(cs []Clique) CliqueSet {
	s := make(CliqueSet, len(cs))
	for _, c := range cs {
		s.Add(c)
	}
	return s
}

// keyInto canonicalizes c (copy + sort) into the provided scratch buffers
// and returns its key bytes; no heap allocation for cliques up to 16
// vertices (every p this repository lists).
func keyInto(c Clique, vbuf []V, kbuf []byte) []byte {
	cp := Clique(vbuf[:0])
	if len(c) > cap(vbuf) {
		cp = make(Clique, 0, len(c))
	}
	cp = append(cp, c...)
	sortV(cp)
	return cp.AppendKey(kbuf[:0])
}

// Add inserts a copy of c (sorted) into the set.
func (s CliqueSet) Add(c Clique) {
	var vbuf [16]V
	var kbuf [64]byte
	s[string(keyInto(c, vbuf[:], kbuf[:]))] = struct{}{}
}

// Has reports membership of c (order-insensitive).
func (s CliqueSet) Has(c Clique) bool {
	var vbuf [16]V
	var kbuf [64]byte
	_, ok := s[string(keyInto(c, vbuf[:], kbuf[:]))]
	return ok
}

// Len returns the number of cliques in the set.
func (s CliqueSet) Len() int { return len(s) }

// Equal reports exact set equality.
func (s CliqueSet) Equal(t CliqueSet) bool {
	if len(s) != len(t) {
		return false
	}
	for k := range s {
		if _, ok := t[k]; !ok {
			return false
		}
	}
	return true
}

// Minus returns the cliques in s that are not in t, sorted.
func (s CliqueSet) Minus(t CliqueSet) []Clique {
	var out []Clique
	for k := range s {
		if _, ok := t[k]; !ok {
			out = append(out, CliqueFromKey(k))
		}
	}
	slices.SortFunc(out, cmpClique)
	return out
}

// Cliques returns the members sorted lexicographically.
func (s CliqueSet) Cliques() []Clique {
	out := make([]Clique, 0, len(s))
	for k := range s {
		out = append(out, CliqueFromKey(k))
	}
	slices.SortFunc(out, cmpClique)
	return out
}

// kernel returns the graph's enumeration kernel, built once on first use
// and shared by every subsequent listing (the Graph is immutable).
func (g *Graph) kernel() *kernel {
	if k := g.kern.Load(); k != nil {
		return k
	}
	k := newGraphKernel(g)
	if g.kern.CompareAndSwap(nil, k) {
		return k
	}
	return g.kern.Load()
}

// ListCliques enumerates every clique of exactly p vertices in g, returning
// them sorted lexicographically. It runs the enumeration kernel with
// parallel root fan-out over GOMAXPROCS workers; the output is byte-
// identical for every worker count. Sequential-order time is
// O(m · d^{p-2}) where d is the degeneracy.
func (g *Graph) ListCliques(p int) []Clique {
	return g.ListCliquesWorkers(p, 0)
}

// ListCliquesWorkers is ListCliques with an explicit host-parallelism
// bound: 0 means GOMAXPROCS, 1 forces the sequential kernel. The output
// is identical for every value.
func (g *Graph) ListCliquesWorkers(p, workers int) []Clique {
	if p == 1 {
		var out []Clique
		for v := 0; v < g.n; v++ {
			out = append(out, Clique{V(v)})
		}
		return out
	}
	if p <= 0 {
		return nil
	}
	return g.kernel().list(p, workers)
}

// CountCliques counts cliques of exactly p vertices without materializing
// them, in parallel over GOMAXPROCS workers.
func (g *Graph) CountCliques(p int) int64 {
	return g.CountCliquesWorkers(p, 0)
}

// CountCliquesWorkers is CountCliques with an explicit worker bound
// (0 = GOMAXPROCS). With workers = 1 the count runs entirely on the
// caller's goroutine and, once the kernel is built, performs zero heap
// allocations — this is the steady-state path the alloc-regression canary
// pins.
func (g *Graph) CountCliquesWorkers(p, workers int) int64 {
	if p == 1 {
		return int64(g.n)
	}
	if p <= 0 {
		return 0
	}
	return g.kernel().count(p, workers)
}

// VisitCliques calls yield once per p-clique, in the kernel's
// deterministic sequential enumeration order. The clique slice is reused
// between calls; yield must copy it to retain it. Vertices within each
// yielded clique are sorted ascending.
func (g *Graph) VisitCliques(p int, yield func(Clique)) {
	g.VisitCliquesUntil(p, func(c Clique) bool {
		yield(c)
		return true
	})
}

// VisitCliquesUntil is VisitCliques with early termination: enumeration
// stops as soon as yield returns false, and the return value reports
// whether the enumeration ran to completion. This is the streaming
// surface — no clique is ever materialized beyond the reused yield slice.
func (g *Graph) VisitCliquesUntil(p int, yield func(Clique) bool) bool {
	if p <= 0 {
		return true
	}
	if p == 1 {
		c := make(Clique, 1)
		for v := 0; v < g.n; v++ {
			c[0] = V(v)
			if !yield(c) {
				return false
			}
		}
		return true
	}
	return g.kernel().visitSeq(p, yield)
}

// LocalLister enumerates p-cliques inside an arbitrary locally-known edge
// set — this is what a single simulated node runs over the edges it has
// learned. The vertex IDs are remapped onto a dense range and the edges
// indexed once into a flat CSR; enumeration runs on the same kernel as
// Graph.ListCliques.
type LocalLister struct {
	verts []V     // sorted unique vertex IDs appearing in the edge set
	off   []int32 // CSR offsets, len(verts)+1
	heads []V     // neighbor IDs (original space), ascending per row
	kern  *kernel
}

// NewLocalLister indexes the given edges (canonicalized, deduped on a
// private packed copy — no per-edge map allocation). Edges are packed
// into uint64 keys so the sort/dedup runs on the ordered fast path.
func NewLocalLister(edges []Edge) *LocalLister {
	keys := make([]uint64, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V || e.U < 0 || e.V < 0 {
			continue // vertices are dense in [0, N) throughout the repo
		}
		e = e.Canon()
		keys = append(keys, uint64(uint32(e.U))<<32|uint64(uint32(e.V)))
	}
	slices.Sort(keys)
	keys = slices.Compact(keys)

	// Dense vertex remap: position in the sorted unique endpoint list.
	// The relabeling is monotone, so neighbor rows sorted in dense space
	// are sorted in original space too. When the raw ID range is within a
	// constant factor of the edge count (the common case: engine-local
	// edge sets over a dense parent graph), the unique endpoints are
	// collected by a presence table — no endpoint sort — and the same
	// table then serves as an O(1) remap; sparse ID ranges fall back to
	// sort + binary search.
	var maxRaw V
	for _, k := range keys {
		if v := V(uint32(k)); v > maxRaw {
			maxRaw = v // canonical edges: the low half holds the larger ID
		}
	}
	var verts []V
	var table []int32
	if int(maxRaw) <= 4*len(keys)+1024 {
		table = make([]int32, int(maxRaw)+1)
		for _, k := range keys {
			table[V(k>>32)] = 1
			table[V(uint32(k))] = 1
		}
		verts = make([]V, 0, len(keys))
		for v := V(0); v <= maxRaw; v++ {
			if table[v] != 0 {
				table[v] = int32(len(verts))
				verts = append(verts, v)
			}
		}
	} else {
		verts = make([]V, 0, 2*len(keys))
		for _, k := range keys {
			verts = append(verts, V(k>>32), V(uint32(k)))
		}
		slices.Sort(verts)
		verts = slices.Compact(verts)
	}
	n := len(verts)
	idx := func(v V) int32 {
		if table != nil {
			return table[v]
		}
		i, _ := slices.BinarySearch(verts, v)
		return int32(i)
	}

	ll := &LocalLister{verts: verts, off: make([]int32, n+1)}
	deg := make([]int32, n)
	du := make([]int32, len(keys)) // memoized dense endpoints
	dv := make([]int32, len(keys))
	for i, k := range keys {
		du[i], dv[i] = idx(V(k>>32)), idx(V(uint32(k)))
		deg[du[i]]++
		deg[dv[i]]++
	}
	for v := 0; v < n; v++ {
		ll.off[v+1] = ll.off[v] + deg[v]
	}
	// Fill each CSR row in ascending order without per-row sorts: row v
	// first receives its smaller-ID neighbors (the U side of canonical
	// edges, ascending because keys are sorted), then its larger-ID
	// neighbors (the V side, likewise ascending).
	dense := make([]V, ll.off[n]) // dense-space heads for the kernel
	fill := make([]int32, n)
	for i := range keys {
		v := dv[i]
		dense[ll.off[v]+fill[v]] = V(du[i])
		fill[v]++
	}
	for i := range keys {
		u := du[i]
		dense[ll.off[u]+fill[u]] = V(dv[i])
		fill[u]++
	}
	ll.heads = make([]V, len(dense))
	for i, d := range dense {
		ll.heads[i] = verts[d]
	}
	ll.kern = newKernel(n, ll.off, dense, verts)
	return ll
}

// Neighbors returns the known sorted neighbors of v. The slice is shared
// and must not be modified.
func (ll *LocalLister) Neighbors(v V) []V {
	i, ok := slices.BinarySearch(ll.verts, v)
	if !ok {
		return nil
	}
	return ll.heads[ll.off[i]:ll.off[i+1]]
}

// HasEdge reports whether the lister knows edge {u,v}.
func (ll *LocalLister) HasEdge(u, v V) bool {
	return ContainsSorted(ll.Neighbors(u), v)
}

// VisitCliques enumerates every p-clique within the known edges, yielding
// each exactly once (sorted ascending; the slice is reused between calls).
func (ll *LocalLister) VisitCliques(p int, yield func(Clique)) {
	if p < 2 {
		return
	}
	ll.kern.visitSeq(p, func(c Clique) bool {
		yield(c)
		return true
	})
}

// AddCliques enumerates every p-clique and inserts them into set; the
// engines' local-listing hot path.
func (ll *LocalLister) AddCliques(p int, set CliqueSet) {
	if p < 2 {
		return
	}
	var kbuf [64]byte
	ll.kern.visitSeq(p, func(c Clique) bool {
		// Kernel output is already sorted: key it directly.
		set[string(c.AppendKey(kbuf[:0]))] = struct{}{}
		return true
	})
}

// ListCliques returns all p-cliques known to the lister, sorted.
func (ll *LocalLister) ListCliques(p int) []Clique {
	if p < 2 {
		return nil
	}
	return ll.kern.list(p, 1)
}
